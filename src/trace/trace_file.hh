/**
 * @file
 * Binary serialization of run traces.
 *
 * In the paper's deployment model the production machine appends traces
 * to files that dedicated analysis machines consume later; this module is
 * that file format. The format is versioned and self-describing enough to
 * reject foreign files.
 */

#ifndef PRORACE_TRACE_TRACE_FILE_HH
#define PRORACE_TRACE_TRACE_FILE_HH

#include <string>

#include "trace/records.hh"

namespace prorace::trace {

/** Magic bytes at the head of every trace file. */
inline constexpr uint32_t kTraceMagic = 0x50524354; // "PRCT"

/** Current format version. */
inline constexpr uint32_t kTraceVersion = 3;

/** Write @p trace to @p path; fatal on I/O errors. */
void saveTrace(const RunTrace &trace, const std::string &path);

/** Read a trace from @p path; fatal on I/O or format errors. */
RunTrace loadTrace(const std::string &path);

/** Serialize to an in-memory buffer (used by tests and size metering). */
std::vector<uint8_t> serializeTrace(const RunTrace &trace);

/** Deserialize from an in-memory buffer; fatal on format errors. */
RunTrace deserializeTrace(const std::vector<uint8_t> &bytes);

} // namespace prorace::trace

#endif // PRORACE_TRACE_TRACE_FILE_HH

/**
 * @file
 * Binary serialization of run traces.
 *
 * In the paper's deployment model the production machine appends traces
 * to files that dedicated analysis machines consume later; this module is
 * that file format. Since version 4 the payload is split into
 * CRC-checksummed segments behind a sync magic, so a reader facing a
 * damaged file skips the broken segments and reports what was lost
 * (trace/trace_error.hh) instead of aborting the analysis:
 *
 *   file   := u32 magic, u32 version, segment...
 *   segment:= u32 seg_magic, u8 kind, u32 seq, u64 payload_size,
 *             u32 header_crc, u32 payload_crc, payload
 *
 * Segment kinds: one meta segment (run counters + expected record
 * counts), PEBS records in chunks, sync records in chunks, one PT
 * segment per core, and an end marker whose absence flags truncation.
 * PEBS/sync segments failing their CRC are dropped (a garbage sample
 * would poison replay); PT segments failing their CRC are salvaged with
 * clamped bounds, because the PT decoder has its own packet-level
 * resynchronization (pmu/pt_decode) and can mine intact packets out of
 * a damaged stream.
 */

#ifndef PRORACE_TRACE_TRACE_FILE_HH
#define PRORACE_TRACE_TRACE_FILE_HH

#include <string>

#include "support/expected.hh"
#include "trace/records.hh"
#include "trace/trace_error.hh"

namespace prorace::trace {

/** Magic bytes at the head of every trace file. */
inline constexpr uint32_t kTraceMagic = 0x50524354; // "PRCT"

/**
 * Current format version. Bumped to 4 for the segmented format; older
 * flat-format traces are rejected with a clear error (re-trace the
 * workload — the production side always writes the current version).
 */
inline constexpr uint32_t kTraceVersion = 4;

/** Magic introducing every segment; the resync scan target. */
inline constexpr uint32_t kSegmentMagic = 0x34474553; // "SEG4"

/** PEBS records per segment; the unit of loss under corruption. */
inline constexpr uint32_t kPebsChunkRecords = 256;

/** Sync records per segment. */
inline constexpr uint32_t kSyncChunkRecords = 1024;

/** A successfully ingested trace plus whatever the reader discarded. */
struct LoadedTrace {
    RunTrace trace;
    SegmentLoss loss;
};

/**
 * Ingest a serialized trace, skipping damaged segments. Returns the
 * trace with loss accounting, or a TraceError when the buffer is not
 * interpretable at all. @p context names the source in errors
 * (defaults to "<memory>" for in-memory buffers).
 */
Result<LoadedTrace, TraceError>
readTrace(const std::vector<uint8_t> &bytes,
          const std::string &context = "<memory>");

/** readTrace() over a file; I/O failures become TraceError{kIo}. */
Result<LoadedTrace, TraceError> readTraceFile(const std::string &path);

/** Write @p trace to @p path; fatal on I/O errors. */
void saveTrace(const RunTrace &trace, const std::string &path);

/**
 * Read a trace from @p path; fatal on I/O or format errors, warns on
 * segment loss. Prefer readTraceFile() in code that can handle a
 * Result.
 */
RunTrace loadTrace(const std::string &path);

/** Serialize to an in-memory buffer (used by tests and size metering). */
std::vector<uint8_t> serializeTrace(const RunTrace &trace);

/**
 * Deserialize from an in-memory buffer; fatal on format errors, warns
 * on segment loss. Prefer readTrace() in code that can handle a
 * Result.
 */
RunTrace deserializeTrace(const std::vector<uint8_t> &bytes);

} // namespace prorace::trace

#endif // PRORACE_TRACE_TRACE_FILE_HH

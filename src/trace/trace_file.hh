/**
 * @file
 * Binary serialization of run traces.
 *
 * In the paper's deployment model the production machine appends traces
 * to files that dedicated analysis machines consume later; this module is
 * that file format. Since version 4 the payload is split into
 * CRC-checksummed segments behind a sync magic, so a reader facing a
 * damaged file skips the broken segments and reports what was lost
 * (trace/trace_error.hh) instead of aborting the analysis:
 *
 *   file   := u32 magic, u32 version, segment...
 *   segment:= u32 seg_magic, u8 kind, u32 seq, u64 payload_size,
 *             u32 header_crc, u32 payload_crc, payload
 *
 * Segment kinds: one meta segment (run counters + expected record
 * counts + compression accounting), PEBS records in chunks, sync
 * records in chunks, one PT segment per core, and an end marker whose
 * absence flags truncation. PEBS/sync segments failing their CRC are
 * dropped (a garbage sample would poison replay); PT segments failing
 * their CRC are salvaged with clamped bounds, because the PT decoder
 * has its own packet-level resynchronization (pmu/pt_decode) and can
 * mine intact packets out of a damaged stream.
 *
 * Version 5 keeps the v4 framing byte-for-byte (same header layout,
 * CRC spans, and salvage rules) but replaces the fixed-width PEBS/sync
 * payloads with per-field *columns*: each record field is delta-encoded
 * against a predictor (global previous record for tid/core/tsc,
 * previous same-tid record for insn_index/addr/regs) and written as a
 * LEB128 varint of the zigzagged delta; register files are
 * dictionary-coded as a 16-bit changed-register mask plus one delta per
 * set bit. On top of the columns, the encoder detects *run blocks* —
 * consecutive record blocks that repeat modulo a per-position stride on
 * addr/tsc/regs (a sampled loop) — and stores the block once with an
 * iteration count and strides. All predictor state resets at segment
 * boundaries so every segment still decodes standalone, which is what
 * keeps the v4 salvage semantics: a damaged segment is dropped without
 * poisoning its neighbours. v4 traces are rejected with a version error
 * naming both versions, exactly as v4 did to v3.
 */

#ifndef PRORACE_TRACE_TRACE_FILE_HH
#define PRORACE_TRACE_TRACE_FILE_HH

#include <optional>
#include <string>

#include "support/expected.hh"
#include "trace/records.hh"
#include "trace/trace_error.hh"

namespace prorace::trace {

/** Magic bytes at the head of every trace file. */
inline constexpr uint32_t kTraceMagic = 0x50524354; // "PRCT"

/**
 * Current format version. Bumped to 5 for the columnar compressed
 * payloads; older fixed-width traces are rejected with a clear error
 * (re-trace the workload — the production side always writes the
 * current version).
 */
inline constexpr uint32_t kTraceVersion = 5;

/** Magic introducing every segment; the resync scan target. */
inline constexpr uint32_t kSegmentMagic = 0x35474553; // "SEG5"

/** PEBS records per segment; the unit of loss under corruption. */
inline constexpr uint32_t kPebsChunkRecords = 256;

/** Sync records per segment. */
inline constexpr uint32_t kSyncChunkRecords = 1024;

/**
 * Longest repeated block the run detector considers. Short on purpose:
 * the PEBS stream samples loops at a period much larger than the loop
 * body, so observed repeats are short tuples; quadratic detection cost
 * stays bounded per chunk.
 */
inline constexpr uint32_t kMaxRunBlockLen = 4;

/** A successfully ingested trace plus whatever the reader discarded. */
struct LoadedTrace {
    RunTrace trace;
    SegmentLoss loss;
};

/**
 * Incremental, resumable reader over a segmented trace stream.
 *
 * A long-running analysis service tails traces that are still being
 * written: bytes arrive in arbitrary chunks, and segments must be
 * parsed as soon as they are complete without re-scanning the stream
 * from byte 0. TraceReader keeps a cursor: feed() appends bytes,
 * poll() consumes every complete segment currently buffered (the
 * consumed prefix is compacted away, so resident memory is bounded by
 * the largest in-flight segment), and finish() applies the end-of-
 * stream rules — truncation accounting, clipped-PT salvage,
 * record-count reconciliation — and yields the LoadedTrace.
 *
 * The incremental path is semantics-identical to the one-shot
 * readTrace(): feeding a buffer in any chunking (including one byte at
 * a time) produces the same trace, the same SegmentLoss, and the same
 * hard errors as handing the whole buffer over at once. readTrace()
 * itself is implemented on top of this class.
 */
class TraceReader
{
  public:
    explicit TraceReader(std::string context = "<stream>");

    /** Append @p size bytes of the stream; parses nothing by itself. */
    void feed(const uint8_t *data, size_t size);

    void
    feed(const std::vector<uint8_t> &bytes)
    {
        feed(bytes.data(), bytes.size());
    }

    /**
     * Parse every segment that is now complete. Returns the number of
     * segments consumed by this call (damaged segments that were
     * skipped count too). Cheap when nothing new is parseable.
     */
    size_t poll();

    /**
     * The stream is uninterpretable (bad magic, bad version, destroyed
     * meta). Once set, further bytes are ignored and finish() returns
     * this error.
     */
    bool hardFailed() const { return error_.has_value(); }

    /** The latched hard error, if any. */
    const TraceError *error() const
    {
        return error_ ? &*error_ : nullptr;
    }

    /** True once the end-marker segment has been parsed. */
    bool sawEnd() const { return saw_end_; }

    /** Segments consumed so far (parsed or skipped as damaged). */
    uint64_t segmentsParsed() const { return loaded_.loss.segments_seen; }

    /** Total stream bytes the cursor has advanced past. */
    uint64_t bytesConsumed() const { return origin_ + pos_; }

    /**
     * Total bytes accepted by feed() so far: the stream-identity
     * length. Unlike bytesConsumed(), this includes buffered bytes the
     * cursor has not parsed yet.
     */
    uint64_t streamBytes() const { return stream_bytes_; }

    /**
     * Running CRC-32 over every byte accepted by feed(), independent
     * of chunking. Together with streamBytes() this identifies the
     * byte stream, which is how the analysis service matches a
     * re-streamed session against a saved detector checkpoint.
     */
    uint32_t streamCrc() const { return stream_crc_; }

    /** Bytes buffered but not yet consumed (in-flight segment tail). */
    size_t bytesBuffered() const { return buf_.size() - pos_; }

    /** Loss accounting so far (finish() adds the reconciliation). */
    const SegmentLoss &loss() const { return loaded_.loss; }

    /**
     * Declare end-of-stream: handle any truncated tail, reconcile
     * salvaged record counts against the meta expectations, and return
     * the trace. The reader must not be fed or polled afterwards.
     */
    Result<LoadedTrace, TraceError> finish();

  private:
    /** Parse one complete segment at the cursor; false = need bytes. */
    bool consumeOne();

    /** Enter/continue resync: scan forward for the next segment magic. */
    void resync();

    /** Drop the consumed prefix once it dominates the buffer. */
    void compact();

    TraceError makeError(TraceErrorKind kind, std::string msg,
                         uint64_t offset) const;

    std::string context_;
    std::vector<uint8_t> buf_;
    size_t pos_ = 0;       ///< cursor into buf_
    uint64_t origin_ = 0;  ///< stream offset of buf_[0] (compaction)
    uint64_t stream_bytes_ = 0; ///< bytes accepted by feed()
    uint32_t stream_crc_ = 0;   ///< running CRC of the fed stream
    bool header_done_ = false;
    bool resyncing_ = false;
    bool have_meta_ = false;
    bool saw_end_ = false;
    bool finished_ = false;
    std::optional<TraceError> error_;
    LoadedTrace loaded_;
    uint64_t expected_pebs_ = 0;
    uint64_t expected_sync_ = 0;
    uint32_t expected_pt_ = 0;
    std::vector<bool> pt_assigned_;
};

/**
 * Ingest a serialized trace, skipping damaged segments. Returns the
 * trace with loss accounting, or a TraceError when the buffer is not
 * interpretable at all. @p context names the source in errors
 * (defaults to "<memory>" for in-memory buffers).
 */
Result<LoadedTrace, TraceError>
readTrace(const std::vector<uint8_t> &bytes,
          const std::string &context = "<memory>");

/** readTrace() over a file; I/O failures become TraceError{kIo}. */
Result<LoadedTrace, TraceError> readTraceFile(const std::string &path);

/** Write @p trace to @p path; fatal on I/O errors. */
void saveTrace(const RunTrace &trace, const std::string &path);

/**
 * Read a trace from @p path; fatal on I/O or format errors, warns on
 * segment loss. Prefer readTraceFile() in code that can handle a
 * Result.
 */
RunTrace loadTrace(const std::string &path);

/** Serialize to an in-memory buffer (used by tests and size metering). */
std::vector<uint8_t> serializeTrace(const RunTrace &trace);

/**
 * Deserialize from an in-memory buffer; fatal on format errors, warns
 * on segment loss. Prefer readTrace() in code that can handle a
 * Result.
 */
RunTrace deserializeTrace(const std::vector<uint8_t> &bytes);

} // namespace prorace::trace

#endif // PRORACE_TRACE_TRACE_FILE_HH

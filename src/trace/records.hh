/**
 * @file
 * On-"disk" trace record types produced by the online phase.
 *
 * These mirror what the paper's online stack emits: PEBS records with the
 * full architectural register file, per-core PT packet streams, and the
 * per-thread synchronization log collected by libc interposition.
 */

#ifndef PRORACE_TRACE_RECORDS_HH
#define PRORACE_TRACE_RECORDS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "vm/cpu.hh"
#include "vm/hooks.hh"

namespace prorace::trace {

/**
 * One PEBS sample: the sampled instruction, its data address, the TSC,
 * and the complete register file captured *before* the instruction
 * executes (the state the replayer restores).
 */
struct PebsRecord {
    uint32_t tid = 0;
    uint32_t core = 0;
    uint32_t insn_index = 0;
    uint64_t addr = 0;
    uint8_t width = 8;
    bool is_write = false;
    bool is_atomic = false;
    uint64_t tsc = 0;
    vm::RegFile regs;
};

/** One synchronization record (same payload as the VM event). */
using SyncRecord = vm::SyncEvent;

/** The raw PT packet stream of one core. */
struct PtCoreStream {
    std::vector<uint8_t> bytes;
    uint64_t bit_count = 0;
};

/**
 * Compression accounting computed by the v5 columnar encoder and
 * embedded in the meta segment. "Raw" bytes are the v4 fixed-width
 * equivalents (what a decompress-then-scan pipeline would have stored);
 * "encoded" bytes are the columnar payload sizes actually written. Run
 * blocks are repeated record blocks stored once with an iteration
 * count; folded iterations are the records they elide.
 */
struct CompressionStats {
    uint64_t pebs_raw_bytes = 0;
    uint64_t pebs_encoded_bytes = 0;
    uint64_t sync_raw_bytes = 0;
    uint64_t sync_encoded_bytes = 0;
    uint64_t run_blocks = 0;            ///< repeated blocks stored once
    uint64_t run_iterations_folded = 0; ///< records elided by run blocks

    /** Raw/encoded ratio of the PEBS columns (0 when nothing encoded). */
    double
    pebsRatio() const
    {
        return pebs_encoded_bytes
                   ? static_cast<double>(pebs_raw_bytes) /
                         static_cast<double>(pebs_encoded_bytes)
                   : 0.0;
    }

    void
    merge(const CompressionStats &o)
    {
        pebs_raw_bytes += o.pebs_raw_bytes;
        pebs_encoded_bytes += o.pebs_encoded_bytes;
        sync_raw_bytes += o.sync_raw_bytes;
        sync_encoded_bytes += o.sync_encoded_bytes;
        run_blocks += o.run_blocks;
        run_iterations_folded += o.run_iterations_folded;
    }
};

/** Per-thread metadata the offline phase needs. */
struct ThreadMeta {
    uint32_t tid = 0;
    uint32_t entry_index = 0; ///< first instruction of the thread
};

/** Run-level metadata. */
struct TraceMeta {
    uint32_t num_cores = 0;
    uint64_t wall_cycles = 0;      ///< traced run wall time
    uint64_t baseline_cycles = 0;  ///< untraced run wall time (if known)
    uint64_t total_insns = 0;
    uint64_t total_mem_ops = 0;
    uint64_t pebs_period = 0;
    uint64_t samples_taken = 0;
    uint64_t samples_dropped = 0;
    uint64_t pebs_bytes = 0;
    uint64_t pt_bytes = 0;
    uint64_t sync_bytes = 0;
    /** Initial PEBS counter value per core (the driver logs the
     *  randomized first window so offline alignment can anchor the
     *  first sample). */
    std::vector<uint64_t> first_periods;
    std::vector<ThreadMeta> threads;
    /** Filled by the v5 encoder at serialization time; on a decoded
     *  trace it reflects what the file's encoder measured. */
    CompressionStats compression;
};

/** Everything the online phase hands to the offline phase. */
struct RunTrace {
    TraceMeta meta;
    std::vector<PebsRecord> pebs;      ///< in file-commit order
    std::vector<SyncRecord> sync;      ///< in TSC order per thread
    std::vector<PtCoreStream> pt;      ///< indexed by core

    /** Total committed trace bytes (PEBS + PT + sync). */
    uint64_t
    totalBytes() const
    {
        return meta.pebs_bytes + meta.pt_bytes + meta.sync_bytes;
    }
};

} // namespace prorace::trace

#endif // PRORACE_TRACE_RECORDS_HH

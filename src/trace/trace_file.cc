#include "trace/trace_file.hh"

#include <cstdio>
#include <cstring>

#include "support/log.hh"

namespace prorace::trace {

namespace {

/** Little-endian append-only byte sink. */
class Writer
{
  public:
    void
    u8(uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    bytes(const std::vector<uint8_t> &b)
    {
        buf_.insert(buf_.end(), b.begin(), b.end());
    }

    std::vector<uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<uint8_t> buf_;
};

/** Sequential reader with bounds checking. */
class Reader
{
  public:
    explicit Reader(const std::vector<uint8_t> &buf) : buf_(buf) {}

    uint8_t
    u8()
    {
        need(1);
        return buf_[pos_++];
    }

    uint32_t
    u32()
    {
        need(4);
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(buf_[pos_++]) << (8 * i);
        return v;
    }

    uint64_t
    u64()
    {
        need(8);
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(buf_[pos_++]) << (8 * i);
        return v;
    }

    std::vector<uint8_t>
    bytes(size_t n)
    {
        need(n);
        std::vector<uint8_t> out(buf_.begin() + pos_,
                                 buf_.begin() + pos_ + n);
        pos_ += n;
        return out;
    }

  private:
    void
    need(size_t n)
    {
        if (pos_ + n > buf_.size())
            PRORACE_FATAL("truncated trace file");
    }

    const std::vector<uint8_t> &buf_;
    size_t pos_ = 0;
};

void
writePebs(Writer &w, const PebsRecord &r)
{
    w.u32(r.tid);
    w.u32(r.core);
    w.u32(r.insn_index);
    w.u64(r.addr);
    w.u8(r.width);
    w.u8(r.is_write);
    w.u8(r.is_atomic);
    w.u64(r.tsc);
    for (uint64_t g : r.regs.gpr)
        w.u64(g);
}

PebsRecord
readPebs(Reader &r)
{
    PebsRecord rec;
    rec.tid = r.u32();
    rec.core = r.u32();
    rec.insn_index = r.u32();
    rec.addr = r.u64();
    rec.width = r.u8();
    rec.is_write = r.u8() != 0;
    rec.is_atomic = r.u8() != 0;
    rec.tsc = r.u64();
    for (uint64_t &g : rec.regs.gpr)
        g = r.u64();
    return rec;
}

void
writeSync(Writer &w, const SyncRecord &s)
{
    w.u32(s.tid);
    w.u8(static_cast<uint8_t>(s.kind));
    w.u64(s.object);
    w.u64(s.aux);
    w.u64(s.tsc);
    w.u32(s.insn_index);
}

SyncRecord
readSync(Reader &r)
{
    SyncRecord s;
    s.tid = r.u32();
    s.kind = static_cast<vm::SyncKind>(r.u8());
    s.object = r.u64();
    s.aux = r.u64();
    s.tsc = r.u64();
    s.insn_index = r.u32();
    return s;
}

} // namespace

std::vector<uint8_t>
serializeTrace(const RunTrace &trace)
{
    Writer w;
    w.u32(kTraceMagic);
    w.u32(kTraceVersion);

    const TraceMeta &m = trace.meta;
    w.u32(m.num_cores);
    w.u64(m.wall_cycles);
    w.u64(m.baseline_cycles);
    w.u64(m.total_insns);
    w.u64(m.total_mem_ops);
    w.u64(m.pebs_period);
    w.u64(m.samples_taken);
    w.u64(m.samples_dropped);
    w.u64(m.pebs_bytes);
    w.u64(m.pt_bytes);
    w.u64(m.sync_bytes);
    w.u32(static_cast<uint32_t>(m.first_periods.size()));
    for (uint64_t fp : m.first_periods)
        w.u64(fp);
    w.u32(static_cast<uint32_t>(m.threads.size()));
    for (const ThreadMeta &t : m.threads) {
        w.u32(t.tid);
        w.u32(t.entry_index);
    }

    w.u64(trace.pebs.size());
    for (const PebsRecord &r : trace.pebs)
        writePebs(w, r);

    w.u64(trace.sync.size());
    for (const SyncRecord &s : trace.sync)
        writeSync(w, s);

    w.u32(static_cast<uint32_t>(trace.pt.size()));
    for (const PtCoreStream &s : trace.pt) {
        w.u64(s.bit_count);
        w.u64(s.bytes.size());
        w.bytes(s.bytes);
    }
    return w.take();
}

RunTrace
deserializeTrace(const std::vector<uint8_t> &bytes)
{
    Reader r(bytes);
    if (r.u32() != kTraceMagic)
        PRORACE_FATAL("not a ProRace trace file (bad magic)");
    const uint32_t version = r.u32();
    if (version != kTraceVersion)
        PRORACE_FATAL("unsupported trace version ", version);

    RunTrace trace;
    TraceMeta &m = trace.meta;
    m.num_cores = r.u32();
    m.wall_cycles = r.u64();
    m.baseline_cycles = r.u64();
    m.total_insns = r.u64();
    m.total_mem_ops = r.u64();
    m.pebs_period = r.u64();
    m.samples_taken = r.u64();
    m.samples_dropped = r.u64();
    m.pebs_bytes = r.u64();
    m.pt_bytes = r.u64();
    m.sync_bytes = r.u64();
    const uint32_t nfp = r.u32();
    for (uint32_t i = 0; i < nfp; ++i)
        m.first_periods.push_back(r.u64());
    const uint32_t nthreads = r.u32();
    for (uint32_t i = 0; i < nthreads; ++i) {
        ThreadMeta t;
        t.tid = r.u32();
        t.entry_index = r.u32();
        m.threads.push_back(t);
    }

    const uint64_t npebs = r.u64();
    trace.pebs.reserve(npebs);
    for (uint64_t i = 0; i < npebs; ++i)
        trace.pebs.push_back(readPebs(r));

    const uint64_t nsync = r.u64();
    trace.sync.reserve(nsync);
    for (uint64_t i = 0; i < nsync; ++i)
        trace.sync.push_back(readSync(r));

    const uint32_t ncores = r.u32();
    for (uint32_t i = 0; i < ncores; ++i) {
        PtCoreStream s;
        s.bit_count = r.u64();
        const uint64_t nbytes = r.u64();
        s.bytes = r.bytes(nbytes);
        trace.pt.push_back(std::move(s));
    }
    return trace;
}

void
saveTrace(const RunTrace &trace, const std::string &path)
{
    const std::vector<uint8_t> bytes = serializeTrace(trace);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        PRORACE_FATAL("cannot open trace file for writing: ", path);
    const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (written != bytes.size())
        PRORACE_FATAL("short write to trace file: ", path);
}

RunTrace
loadTrace(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        PRORACE_FATAL("cannot open trace file: ", path);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<uint8_t> bytes(static_cast<size_t>(size));
    const size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (got != bytes.size())
        PRORACE_FATAL("short read from trace file: ", path);
    return deserializeTrace(bytes);
}

} // namespace prorace::trace

#include "trace/trace_file.hh"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <unordered_map>

#include "support/crc32.hh"
#include "support/log.hh"

namespace prorace::trace {

namespace {

/// kind..payload_size bytes covered by the header CRC.
constexpr size_t kSegmentHeaderCrcSpan = 1 + 4 + 8;

/// magic, kind, seq, payload_size, header_crc, payload_crc.
constexpr size_t kSegmentHeaderSize = 4 + kSegmentHeaderCrcSpan + 4 + 4;

/// v4 fixed-width bytes per PEBS record: tid, core, insn_index, addr,
/// width, is_write, is_atomic, tsc, 16 GPRs. The raw-bytes baseline the
/// compression counters are measured against.
constexpr uint64_t kPebsRawRecordBytes = 4 + 4 + 4 + 8 + 1 + 1 + 1 + 8 +
                                         8ull * isa::kNumGprs;

/// v4 fixed-width bytes per sync record: tid, kind, object, aux, tsc,
/// insn_index.
constexpr uint64_t kSyncRawRecordBytes = 4 + 1 + 8 + 8 + 8 + 4;

static_assert(isa::kNumGprs <= 16,
              "v5 regfile dictionary uses a 16-bit changed-register mask");

/** Segment payload kinds. New kinds are skipped by older readers. */
enum SegmentKind : uint8_t {
    kSegMeta = 1,
    kSegPebs = 2,
    kSegSync = 3,
    kSegPt = 4,
    kSegEnd = 5,
};

/** Zigzag a signed delta so small magnitudes get short varints. */
inline uint64_t
zigzag(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63);
}

inline int64_t
unzigzag(uint64_t z)
{
    return static_cast<int64_t>((z >> 1) ^ (0ull - (z & 1)));
}

/** Zigzagged wraparound delta @p now - @p prev (exact for any u64). */
inline uint64_t
deltaOf(uint64_t now, uint64_t prev)
{
    return zigzag(static_cast<int64_t>(now - prev));
}

inline uint64_t
applyDelta(uint64_t prev, uint64_t z)
{
    return prev + static_cast<uint64_t>(unzigzag(z));
}

/** Little-endian append-only byte sink. */
class Writer
{
  public:
    void
    u8(uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u16(uint16_t v)
    {
        for (int i = 0; i < 2; ++i)
            buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    /** LEB128 varint, 7 bits per byte, low group first. */
    void
    varint(uint64_t v)
    {
        while (v >= 0x80) {
            buf_.push_back(static_cast<uint8_t>(v) | 0x80u);
            v >>= 7;
        }
        buf_.push_back(static_cast<uint8_t>(v));
    }

    void
    bytes(const std::vector<uint8_t> &b)
    {
        buf_.insert(buf_.end(), b.begin(), b.end());
    }

    size_t size() const { return buf_.size(); }

    std::vector<uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<uint8_t> buf_;
};

/**
 * Sequential reader over untrusted bytes. Reads past the end do not
 * abort: they return zero and latch the fail flag, so segment parsers
 * can run over damaged payloads and report failure as a value.
 */
class Reader
{
  public:
    Reader(const uint8_t *data, size_t size) : data_(data), size_(size) {}

    explicit Reader(const std::vector<uint8_t> &buf)
        : data_(buf.data()), size_(buf.size())
    {
    }

    uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return data_[pos_++];
    }

    uint16_t
    u16()
    {
        if (!need(2))
            return 0;
        uint16_t v = 0;
        for (int i = 0; i < 2; ++i)
            v = static_cast<uint16_t>(
                v | static_cast<uint16_t>(data_[pos_++]) << (8 * i));
        return v;
    }

    uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    /** LEB128 varint; >10 bytes (or a truncated tail) latches failure. */
    uint64_t
    varint()
    {
        uint64_t v = 0;
        for (int shift = 0; shift < 70; shift += 7) {
            if (!need(1))
                return 0;
            const uint8_t b = data_[pos_++];
            v |= static_cast<uint64_t>(b & 0x7Fu) << shift;
            if (!(b & 0x80u))
                return v;
        }
        failed_ = true;
        return 0;
    }

    std::vector<uint8_t>
    bytes(size_t n)
    {
        if (!need(n))
            return {};
        std::vector<uint8_t> out(data_ + pos_, data_ + pos_ + n);
        pos_ += n;
        return out;
    }

    /** Borrow @p n bytes as a sub-reader without copying. */
    Reader
    sub(size_t n)
    {
        if (!need(n))
            return Reader(data_, 0);
        Reader r(data_ + pos_, n);
        pos_ += n;
        return r;
    }

    size_t remaining() const { return failed_ ? 0 : size_ - pos_; }

    /** True once any read has run past the end. */
    bool failed() const { return failed_; }

    /** True iff every byte was consumed and nothing overran. */
    bool exhausted() const { return !failed_ && pos_ == size_; }

  private:
    bool
    need(size_t n)
    {
        if (failed_ || n > size_ - pos_) {
            failed_ = true;
            return false;
        }
        return true;
    }

    const uint8_t *data_;
    size_t size_;
    size_t pos_ = 0;
    bool failed_ = false;
};

// ---------------------------------------------------------------------
// v5 columnar PEBS codec.
//
// A chunk of records is first *deflated* by the run detector (repeated
// blocks stored once with an iteration count and per-position strides),
// then the surviving records are split into per-field columns, each
// delta-encoded against a predictor. Predictors reset per segment so
// segments decode standalone — the property the salvage path relies on.
// ---------------------------------------------------------------------

/** Per-position stride of a run block (wraparound u64 differences). */
struct RunStride {
    uint64_t addr = 0;
    uint64_t tsc = 0;
    uint16_t reg_mask = 0; ///< GPRs that step between iterations
    std::array<uint64_t, isa::kNumGprs> reg{};
};

/**
 * Derive the stride taking record @p a to record @p b, or return false
 * when the invariant fields (tid/core/insn/width/flags) differ — such a
 * pair can never be consecutive iterations of one run.
 */
bool
deriveStride(const PebsRecord &a, const PebsRecord &b, RunStride &s)
{
    if (a.tid != b.tid || a.core != b.core ||
        a.insn_index != b.insn_index || a.width != b.width ||
        a.is_write != b.is_write || a.is_atomic != b.is_atomic)
        return false;
    s.addr = b.addr - a.addr;
    s.tsc = b.tsc - a.tsc;
    s.reg_mask = 0;
    for (unsigned g = 0; g < isa::kNumGprs; ++g) {
        s.reg[g] = b.regs.gpr[g] - a.regs.gpr[g];
        if (s.reg[g] != 0)
            s.reg_mask = static_cast<uint16_t>(s.reg_mask | (1u << g));
    }
    return true;
}

/** True when @p b is exactly @p a advanced by stride @p s. */
bool
matchesStride(const PebsRecord &a, const PebsRecord &b, const RunStride &s)
{
    if (a.tid != b.tid || a.core != b.core ||
        a.insn_index != b.insn_index || a.width != b.width ||
        a.is_write != b.is_write || a.is_atomic != b.is_atomic)
        return false;
    if (b.addr - a.addr != s.addr || b.tsc - a.tsc != s.tsc)
        return false;
    for (unsigned g = 0; g < isa::kNumGprs; ++g) {
        const uint64_t want = (s.reg_mask >> g) & 1u ? s.reg[g] : 0;
        if (b.regs.gpr[g] - a.regs.gpr[g] != want)
            return false;
    }
    return true;
}

/** One encoded item: a literal record or a run block. */
struct RunItem {
    uint32_t len = 1;   ///< records per iteration (1 for literals)
    uint32_t iters = 1; ///< 1 = literal, >= 2 = run block
    std::vector<RunStride> strides;
};

/**
 * Greedy run detection over one chunk. Deterministic: at each position
 * the block length with the largest elision wins, ties to the shortest
 * block. Runs must elide at least two records to pay for their
 * descriptor.
 */
std::vector<RunItem>
detectRuns(const PebsRecord *recs, size_t n)
{
    std::vector<RunItem> items;
    size_t i = 0;
    while (i < n) {
        size_t best_len = 0, best_iters = 0, best_elided = 0;
        std::vector<RunStride> best_strides;
        for (size_t len = 1; len <= kMaxRunBlockLen && i + 2 * len <= n;
             ++len) {
            std::vector<RunStride> strides(len);
            bool ok = true;
            for (size_t j = 0; j < len && ok; ++j)
                ok = deriveStride(recs[i + j], recs[i + len + j],
                                  strides[j]);
            if (!ok)
                continue;
            size_t iters = 2;
            while (i + (iters + 1) * len <= n) {
                bool cong = true;
                for (size_t j = 0; j < len && cong; ++j)
                    cong = matchesStride(recs[i + (iters - 1) * len + j],
                                         recs[i + iters * len + j],
                                         strides[j]);
                if (!cong)
                    break;
                ++iters;
            }
            const size_t elided = len * (iters - 1);
            if (elided > best_elided) {
                best_len = len;
                best_iters = iters;
                best_elided = elided;
                best_strides = std::move(strides);
            }
        }
        if (best_elided >= 2) {
            RunItem item;
            item.len = static_cast<uint32_t>(best_len);
            item.iters = static_cast<uint32_t>(best_iters);
            item.strides = std::move(best_strides);
            items.push_back(std::move(item));
            i += best_len * best_iters;
        } else {
            items.emplace_back(); // literal
            i += 1;
        }
    }
    return items;
}

/** Encoder/decoder predictor state; reset at every segment boundary. */
struct PebsPredictor {
    struct PerTid {
        uint32_t insn_index = 0;
        uint64_t addr = 0;
        vm::RegFile regs;
    };
    std::unordered_map<uint32_t, PerTid> per_tid;
    uint32_t prev_tid = 0;
    uint32_t prev_core = 0;
    uint64_t prev_tsc = 0;
};

/// Column order of a PEBS segment payload.
enum PebsColumn {
    kColTid = 0,
    kColCore,
    kColInsn,
    kColAddr,
    kColWidth,
    kColFlags,
    kColTsc,
    kColRegs,
    kNumPebsColumns,
};

std::vector<uint8_t>
encodePebsChunk(const PebsRecord *recs, size_t base, size_t count,
                CompressionStats &cs)
{
    const std::vector<RunItem> items = detectRuns(recs, count);

    Writer w;
    w.u64(base);
    w.varint(count);
    w.varint(items.size());
    for (const RunItem &item : items) {
        if (item.iters == 1) {
            w.varint(0);
            continue;
        }
        ++cs.run_blocks;
        cs.run_iterations_folded += uint64_t{item.len} * (item.iters - 1);
        w.varint(item.len);
        w.varint(item.iters);
        for (const RunStride &s : item.strides) {
            w.varint(zigzag(static_cast<int64_t>(s.addr)));
            w.varint(zigzag(static_cast<int64_t>(s.tsc)));
            w.u16(s.reg_mask);
            for (unsigned g = 0; g < isa::kNumGprs; ++g)
                if ((s.reg_mask >> g) & 1u)
                    w.varint(zigzag(static_cast<int64_t>(s.reg[g])));
        }
    }

    // Columnize the deflated record stream (literals plus the first
    // iteration of each run).
    std::array<Writer, kNumPebsColumns> col;
    PebsPredictor p;
    size_t pos = 0;
    for (const RunItem &item : items) {
        for (uint32_t j = 0; j < item.len; ++j) {
            const PebsRecord &r = recs[pos + j];
            PebsPredictor::PerTid &pt = p.per_tid[r.tid];
            col[kColTid].varint(deltaOf(r.tid, p.prev_tid));
            col[kColCore].varint(deltaOf(r.core, p.prev_core));
            col[kColInsn].varint(deltaOf(r.insn_index, pt.insn_index));
            col[kColAddr].varint(deltaOf(r.addr, pt.addr));
            col[kColWidth].u8(r.width);
            col[kColFlags].u8(static_cast<uint8_t>((r.is_write ? 1 : 0) |
                                                   (r.is_atomic ? 2 : 0)));
            col[kColTsc].varint(deltaOf(r.tsc, p.prev_tsc));
            uint16_t mask = 0;
            for (unsigned g = 0; g < isa::kNumGprs; ++g)
                if (r.regs.gpr[g] != pt.regs.gpr[g])
                    mask = static_cast<uint16_t>(mask | (1u << g));
            col[kColRegs].u16(mask);
            for (unsigned g = 0; g < isa::kNumGprs; ++g)
                if ((mask >> g) & 1u)
                    col[kColRegs].varint(
                        deltaOf(r.regs.gpr[g], pt.regs.gpr[g]));
            p.prev_tid = r.tid;
            p.prev_core = r.core;
            p.prev_tsc = r.tsc;
            pt.insn_index = r.insn_index;
            pt.addr = r.addr;
            pt.regs = r.regs;
        }
        pos += size_t{item.len} * item.iters;
    }

    for (Writer &c : col) {
        std::vector<uint8_t> bytes = c.take();
        w.varint(bytes.size());
        w.bytes(bytes);
    }
    std::vector<uint8_t> payload = w.take();
    cs.pebs_raw_bytes += kPebsRawRecordBytes * count;
    cs.pebs_encoded_bytes += payload.size();
    return payload;
}

/**
 * Decode one PEBS segment payload; false = damaged (caller drops the
 * segment). Every count is bounds-checked against the chunk limits
 * before allocation so a CRC-colliding garbage payload cannot blow up
 * memory or crash.
 */
bool
decodePebsChunk(const uint8_t *data, size_t size,
                std::vector<PebsRecord> &out)
{
    Reader r(data, size);
    r.u64(); // first record index (diagnostic only)
    const uint64_t expanded = r.varint();
    if (r.failed() || expanded > kPebsChunkRecords)
        return false;
    const uint64_t n_items = r.varint();
    if (r.failed() || n_items > expanded)
        return false;

    std::vector<RunItem> items;
    items.reserve(n_items);
    uint64_t deflated = 0, total = 0;
    for (uint64_t i = 0; i < n_items; ++i) {
        RunItem item;
        const uint64_t code = r.varint();
        if (r.failed() || code > kMaxRunBlockLen)
            return false;
        if (code != 0) {
            item.len = static_cast<uint32_t>(code);
            const uint64_t iters = r.varint();
            if (r.failed() || iters < 2 || iters > kPebsChunkRecords)
                return false;
            item.iters = static_cast<uint32_t>(iters);
            item.strides.resize(item.len);
            for (RunStride &s : item.strides) {
                s.addr = static_cast<uint64_t>(unzigzag(r.varint()));
                s.tsc = static_cast<uint64_t>(unzigzag(r.varint()));
                s.reg_mask = r.u16();
                for (unsigned g = 0; g < isa::kNumGprs; ++g)
                    if ((s.reg_mask >> g) & 1u)
                        s.reg[g] =
                            static_cast<uint64_t>(unzigzag(r.varint()));
            }
        }
        deflated += item.len;
        total += uint64_t{item.len} * item.iters;
        if (r.failed() || total > expanded)
            return false;
        items.push_back(std::move(item));
    }
    if (total != expanded)
        return false;

    std::array<Reader, kNumPebsColumns> col = {
        Reader(nullptr, 0), Reader(nullptr, 0), Reader(nullptr, 0),
        Reader(nullptr, 0), Reader(nullptr, 0), Reader(nullptr, 0),
        Reader(nullptr, 0), Reader(nullptr, 0)};
    for (Reader &c : col) {
        const uint64_t len = r.varint();
        if (r.failed() || len > r.remaining())
            return false;
        c = r.sub(static_cast<size_t>(len));
    }
    if (!r.exhausted())
        return false;

    std::vector<PebsRecord> deflated_recs;
    deflated_recs.reserve(deflated);
    PebsPredictor p;
    for (uint64_t i = 0; i < deflated; ++i) {
        PebsRecord rec;
        rec.tid = static_cast<uint32_t>(
            applyDelta(p.prev_tid, col[kColTid].varint()));
        PebsPredictor::PerTid &pt = p.per_tid[rec.tid];
        rec.core = static_cast<uint32_t>(
            applyDelta(p.prev_core, col[kColCore].varint()));
        rec.insn_index = static_cast<uint32_t>(
            applyDelta(pt.insn_index, col[kColInsn].varint()));
        rec.addr = applyDelta(pt.addr, col[kColAddr].varint());
        rec.width = col[kColWidth].u8();
        const uint8_t flags = col[kColFlags].u8();
        rec.is_write = (flags & 1u) != 0;
        rec.is_atomic = (flags & 2u) != 0;
        rec.tsc = applyDelta(p.prev_tsc, col[kColTsc].varint());
        rec.regs = pt.regs;
        const uint16_t mask = col[kColRegs].u16();
        for (unsigned g = 0; g < isa::kNumGprs; ++g)
            if ((mask >> g) & 1u)
                rec.regs.gpr[g] =
                    applyDelta(pt.regs.gpr[g], col[kColRegs].varint());
        for (const Reader &c : col)
            if (c.failed())
                return false;
        p.prev_tid = rec.tid;
        p.prev_core = rec.core;
        p.prev_tsc = rec.tsc;
        pt.insn_index = rec.insn_index;
        pt.addr = rec.addr;
        pt.regs = rec.regs;
        deflated_recs.push_back(rec);
    }
    for (const Reader &c : col)
        if (!c.exhausted())
            return false;

    // Expand run blocks: iteration k is iteration 0 advanced k strides.
    out.reserve(out.size() + expanded);
    size_t di = 0;
    for (const RunItem &item : items) {
        for (uint32_t k = 0; k < item.iters; ++k) {
            for (uint32_t j = 0; j < item.len; ++j) {
                PebsRecord rec = deflated_recs[di + j];
                if (k != 0) {
                    const RunStride &s = item.strides[j];
                    rec.addr += s.addr * k;
                    rec.tsc += s.tsc * k;
                    for (unsigned g = 0; g < isa::kNumGprs; ++g)
                        if ((s.reg_mask >> g) & 1u)
                            rec.regs.gpr[g] += s.reg[g] * k;
                }
                out.push_back(rec);
            }
        }
        di += item.len;
    }
    return true;
}

// ---------------------------------------------------------------------
// v5 columnar sync codec. Same column treatment, no run table: sync
// records are orders of magnitude rarer than PEBS samples and rarely
// stride-repeat.
// ---------------------------------------------------------------------

/// Column order of a sync segment payload.
enum SyncColumn {
    kColSyncTid = 0,
    kColSyncKind,
    kColSyncObject,
    kColSyncAux,
    kColSyncTsc,
    kColSyncInsn,
    kNumSyncColumns,
};

struct SyncPredictor {
    struct PerTid {
        uint64_t object = 0;
        uint64_t aux = 0;
        uint32_t insn_index = 0;
    };
    std::unordered_map<uint32_t, PerTid> per_tid;
    uint32_t prev_tid = 0;
    uint64_t prev_tsc = 0;
};

std::vector<uint8_t>
encodeSyncChunk(const SyncRecord *recs, size_t base, size_t count,
                CompressionStats &cs)
{
    Writer w;
    w.u64(base);
    w.varint(count);
    std::array<Writer, kNumSyncColumns> col;
    SyncPredictor p;
    for (size_t i = 0; i < count; ++i) {
        const SyncRecord &s = recs[i];
        SyncPredictor::PerTid &pt = p.per_tid[s.tid];
        col[kColSyncTid].varint(deltaOf(s.tid, p.prev_tid));
        col[kColSyncKind].u8(static_cast<uint8_t>(s.kind));
        col[kColSyncObject].varint(deltaOf(s.object, pt.object));
        col[kColSyncAux].varint(deltaOf(s.aux, pt.aux));
        col[kColSyncTsc].varint(deltaOf(s.tsc, p.prev_tsc));
        col[kColSyncInsn].varint(deltaOf(s.insn_index, pt.insn_index));
        p.prev_tid = s.tid;
        p.prev_tsc = s.tsc;
        pt.object = s.object;
        pt.aux = s.aux;
        pt.insn_index = s.insn_index;
    }
    for (Writer &c : col) {
        std::vector<uint8_t> bytes = c.take();
        w.varint(bytes.size());
        w.bytes(bytes);
    }
    std::vector<uint8_t> payload = w.take();
    cs.sync_raw_bytes += kSyncRawRecordBytes * count;
    cs.sync_encoded_bytes += payload.size();
    return payload;
}

bool
decodeSyncChunk(const uint8_t *data, size_t size,
                std::vector<SyncRecord> &out)
{
    Reader r(data, size);
    r.u64(); // first record index (diagnostic only)
    const uint64_t count = r.varint();
    if (r.failed() || count > kSyncChunkRecords)
        return false;
    std::array<Reader, kNumSyncColumns> col = {
        Reader(nullptr, 0), Reader(nullptr, 0), Reader(nullptr, 0),
        Reader(nullptr, 0), Reader(nullptr, 0), Reader(nullptr, 0)};
    for (Reader &c : col) {
        const uint64_t len = r.varint();
        if (r.failed() || len > r.remaining())
            return false;
        c = r.sub(static_cast<size_t>(len));
    }
    if (!r.exhausted())
        return false;

    std::vector<SyncRecord> records;
    records.reserve(count);
    SyncPredictor p;
    for (uint64_t i = 0; i < count; ++i) {
        SyncRecord s;
        s.tid = static_cast<uint32_t>(
            applyDelta(p.prev_tid, col[kColSyncTid].varint()));
        SyncPredictor::PerTid &pt = p.per_tid[s.tid];
        const uint8_t kind_raw = col[kColSyncKind].u8();
        if (kind_raw > vm::kMaxSyncKind) {
            // A corrupt kind byte would otherwise dispatch as garbage;
            // dropping the segment routes the loss through salvage,
            // which disables epoch GC for the affected window.
            return false;
        }
        s.kind = static_cast<vm::SyncKind>(kind_raw);
        s.object = applyDelta(pt.object, col[kColSyncObject].varint());
        s.aux = applyDelta(pt.aux, col[kColSyncAux].varint());
        s.tsc = applyDelta(p.prev_tsc, col[kColSyncTsc].varint());
        s.insn_index = static_cast<uint32_t>(
            applyDelta(pt.insn_index, col[kColSyncInsn].varint()));
        for (const Reader &c : col)
            if (c.failed())
                return false;
        p.prev_tid = s.tid;
        p.prev_tsc = s.tsc;
        pt.object = s.object;
        pt.aux = s.aux;
        pt.insn_index = s.insn_index;
        records.push_back(s);
    }
    for (const Reader &c : col)
        if (!c.exhausted())
            return false;
    out.insert(out.end(), records.begin(), records.end());
    return true;
}

/** Frame @p payload as segment number @p seq of @p kind onto @p out. */
void
appendSegment(Writer &out, SegmentKind kind, uint32_t seq,
              const std::vector<uint8_t> &payload)
{
    Writer header;
    header.u8(kind);
    header.u32(seq);
    header.u64(payload.size());
    const std::vector<uint8_t> header_bytes = header.take();

    out.u32(kSegmentMagic);
    out.bytes(header_bytes);
    out.u32(crc32(header_bytes));
    out.u32(crc32(payload));
    out.bytes(payload);
}

std::vector<uint8_t>
serializeMeta(const RunTrace &trace, const CompressionStats &cs)
{
    Writer w;
    const TraceMeta &m = trace.meta;
    w.u32(m.num_cores);
    w.u64(m.wall_cycles);
    w.u64(m.baseline_cycles);
    w.u64(m.total_insns);
    w.u64(m.total_mem_ops);
    w.u64(m.pebs_period);
    w.u64(m.samples_taken);
    w.u64(m.samples_dropped);
    w.u64(m.pebs_bytes);
    w.u64(m.pt_bytes);
    w.u64(m.sync_bytes);
    w.u32(static_cast<uint32_t>(m.first_periods.size()));
    for (uint64_t fp : m.first_periods)
        w.u64(fp);
    w.u32(static_cast<uint32_t>(m.threads.size()));
    for (const ThreadMeta &t : m.threads) {
        w.u32(t.tid);
        w.u32(t.entry_index);
    }
    // Expected record counts: the reader reconciles what it salvaged
    // against these to quantify loss.
    w.u64(trace.pebs.size());
    w.u64(trace.sync.size());
    w.u32(static_cast<uint32_t>(trace.pt.size()));
    // Compression accounting, freshly measured by this serialization
    // (never copied from the input meta, so decode->encode round trips
    // stay byte-identical).
    w.u64(cs.pebs_raw_bytes);
    w.u64(cs.pebs_encoded_bytes);
    w.u64(cs.sync_raw_bytes);
    w.u64(cs.sync_encoded_bytes);
    w.u64(cs.run_blocks);
    w.u64(cs.run_iterations_folded);
    return w.take();
}

/**
 * Parse a meta payload. Returns false (leaving the outputs partially
 * filled) when the payload is short or its counts point past its end.
 */
bool
parseMeta(const std::vector<uint8_t> &payload, TraceMeta &m,
          uint64_t &expected_pebs, uint64_t &expected_sync,
          uint32_t &expected_pt)
{
    Reader r(payload);
    m.num_cores = r.u32();
    m.wall_cycles = r.u64();
    m.baseline_cycles = r.u64();
    m.total_insns = r.u64();
    m.total_mem_ops = r.u64();
    m.pebs_period = r.u64();
    m.samples_taken = r.u64();
    m.samples_dropped = r.u64();
    m.pebs_bytes = r.u64();
    m.pt_bytes = r.u64();
    m.sync_bytes = r.u64();
    const uint32_t nfp = r.u32();
    if (r.failed() || nfp * 8ull > r.remaining())
        return false;
    for (uint32_t i = 0; i < nfp; ++i)
        m.first_periods.push_back(r.u64());
    const uint32_t nthreads = r.u32();
    if (r.failed() || nthreads * 8ull > r.remaining())
        return false;
    for (uint32_t i = 0; i < nthreads; ++i) {
        ThreadMeta t;
        t.tid = r.u32();
        t.entry_index = r.u32();
        m.threads.push_back(t);
    }
    expected_pebs = r.u64();
    expected_sync = r.u64();
    expected_pt = r.u32();
    m.compression.pebs_raw_bytes = r.u64();
    m.compression.pebs_encoded_bytes = r.u64();
    m.compression.sync_raw_bytes = r.u64();
    m.compression.sync_encoded_bytes = r.u64();
    m.compression.run_blocks = r.u64();
    m.compression.run_iterations_folded = r.u64();
    return !r.failed();
}

/** Next offset >= @p from where kSegmentMagic occurs, or buffer size. */
size_t
scanForSegmentMagic(const std::vector<uint8_t> &buf, size_t from)
{
    if (buf.size() < 4)
        return buf.size();
    for (size_t pos = from; pos + 4 <= buf.size(); ++pos) {
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(buf[pos + i]) << (8 * i);
        if (v == kSegmentMagic)
            return pos;
    }
    return buf.size();
}

uint64_t
saturatingLoss(uint64_t expected, uint64_t got)
{
    return expected > got ? expected - got : 0;
}

} // namespace

std::vector<uint8_t>
serializeTrace(const RunTrace &trace)
{
    // Encode the record payloads first: the compression counters they
    // produce ride in the meta segment, which is written at the head of
    // the file.
    CompressionStats cs;
    std::vector<std::vector<uint8_t>> pebs_payloads;
    for (size_t base = 0; base < trace.pebs.size();
         base += kPebsChunkRecords) {
        const size_t count = std::min<size_t>(kPebsChunkRecords,
                                              trace.pebs.size() - base);
        pebs_payloads.push_back(
            encodePebsChunk(trace.pebs.data() + base, base, count, cs));
    }
    std::vector<std::vector<uint8_t>> sync_payloads;
    for (size_t base = 0; base < trace.sync.size();
         base += kSyncChunkRecords) {
        const size_t count = std::min<size_t>(kSyncChunkRecords,
                                              trace.sync.size() - base);
        sync_payloads.push_back(
            encodeSyncChunk(trace.sync.data() + base, base, count, cs));
    }

    Writer out;
    out.u32(kTraceMagic);
    out.u32(kTraceVersion);

    uint32_t seq = 0;
    appendSegment(out, kSegMeta, seq++, serializeMeta(trace, cs));
    for (const std::vector<uint8_t> &payload : pebs_payloads)
        appendSegment(out, kSegPebs, seq++, payload);
    for (const std::vector<uint8_t> &payload : sync_payloads)
        appendSegment(out, kSegSync, seq++, payload);

    for (size_t core = 0; core < trace.pt.size(); ++core) {
        const PtCoreStream &s = trace.pt[core];
        Writer w;
        w.u32(static_cast<uint32_t>(core));
        w.u64(s.bit_count);
        w.u64(s.bytes.size());
        w.bytes(s.bytes);
        appendSegment(out, kSegPt, seq++, w.take());
    }

    {
        Writer w;
        w.u32(seq); // segments preceding the end marker
        appendSegment(out, kSegEnd, seq, w.take());
    }
    return out.take();
}

TraceReader::TraceReader(std::string context)
    : context_(std::move(context))
{
}

TraceError
TraceReader::makeError(TraceErrorKind kind, std::string msg,
                       uint64_t offset) const
{
    return TraceError{kind, std::move(msg), offset, context_};
}

void
TraceReader::feed(const uint8_t *data, size_t size)
{
    // A hard-failed stream is uninterpretable; buffering more of it
    // would only grow memory without ever parsing anything.
    if (error_ || finished_)
        return;
    // Stream identity for checkpoint validation: a reconnecting tenant
    // re-streaming the same bytes must hash to the same (length, CRC)
    // pair regardless of chunking.
    stream_crc_ = crc32(data, size, stream_crc_);
    stream_bytes_ += size;
    buf_.insert(buf_.end(), data, data + size);
}

void
TraceReader::compact()
{
    // Drop the consumed prefix once it dominates the buffer, so a
    // tailing reader's resident memory is bounded by the largest
    // in-flight segment, not the stream length.
    if (pos_ >= (64u << 10) && pos_ * 2 >= buf_.size()) {
        origin_ += pos_;
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<ptrdiff_t>(pos_));
        pos_ = 0;
    }
}

void
TraceReader::resync()
{
    // Damaged header or a payload byte pattern that happened to look
    // like the magic: scan forward for the next segment magic. The
    // last 3 bytes can hold a partial magic that the next feed()
    // completes, so they stay pending rather than being skipped.
    const size_t found = scanForSegmentMagic(buf_, pos_);
    if (found < buf_.size()) {
        loaded_.loss.bytes_skipped += found - pos_;
        pos_ = found;
        resyncing_ = false;
        return;
    }
    const size_t keep = buf_.size() >= 3 ? buf_.size() - 3 : 0;
    if (keep > pos_) {
        loaded_.loss.bytes_skipped += keep - pos_;
        pos_ = keep;
    }
}

bool
TraceReader::consumeOne()
{
    RunTrace &trace = loaded_.trace;
    SegmentLoss &loss = loaded_.loss;

    const size_t avail = buf_.size() - pos_;
    if (avail < kSegmentHeaderSize)
        return false;
    {
        uint32_t seg_magic = 0;
        for (int i = 0; i < 4; ++i)
            seg_magic |= static_cast<uint32_t>(buf_[pos_ + i]) << (8 * i);
        if (seg_magic != kSegmentMagic) {
            ++loss.bytes_skipped;
            ++pos_;
            resyncing_ = true;
            return true;
        }
    }
    Reader r(buf_.data() + pos_ + 4, kSegmentHeaderSize - 4);
    const uint8_t kind = r.u8();
    r.u32(); // seq (diagnostic only)
    const uint64_t payload_size = r.u64();
    const uint32_t header_crc = r.u32();
    const uint32_t payload_crc = r.u32();
    if (crc32(buf_.data() + pos_ + 4, kSegmentHeaderCrcSpan) !=
        header_crc) {
        ++loss.bytes_skipped;
        ++pos_;
        resyncing_ = true;
        return true;
    }
    if (payload_size > avail - kSegmentHeaderSize) {
        // Authentic header whose payload has not fully arrived yet:
        // wait. finish() turns a still-pending segment into the
        // truncation/salvage outcome.
        return false;
    }

    const size_t payload_pos = pos_ + kSegmentHeaderSize;
    ++loss.segments_seen;
    const uint8_t *payload_data = buf_.data() + payload_pos;
    const bool crc_ok = crc32(payload_data, payload_size) == payload_crc;
    pos_ = payload_pos + static_cast<size_t>(payload_size);

    switch (kind) {
    case kSegMeta: {
        if (have_meta_) {
            ++loss.segments_dropped;
            break;
        }
        std::vector<uint8_t> payload(payload_data,
                                     payload_data + payload_size);
        if (!crc_ok ||
            !parseMeta(payload, trace.meta, expected_pebs_,
                       expected_sync_, expected_pt_)) {
            error_ = makeError(TraceErrorKind::kCorruptMeta,
                               "trace meta segment is corrupt",
                               origin_ + payload_pos);
            return false;
        }
        trace.pt.resize(expected_pt_);
        pt_assigned_.assign(expected_pt_, false);
        have_meta_ = true;
        break;
    }
    case kSegPebs: {
        if (!crc_ok || !have_meta_ ||
            !decodePebsChunk(payload_data, payload_size, trace.pebs)) {
            ++loss.segments_dropped;
            break;
        }
        break;
    }
    case kSegSync: {
        if (!crc_ok || !have_meta_ ||
            !decodeSyncChunk(payload_data, payload_size, trace.sync)) {
            ++loss.segments_dropped;
            break;
        }
        break;
    }
    case kSegPt: {
        if (!have_meta_) {
            ++loss.segments_dropped;
            break;
        }
        Reader tr(payload_data, payload_size);
        const uint32_t core = tr.u32();
        uint64_t bit_count = tr.u64();
        uint64_t nbytes = tr.u64();
        if (tr.failed() || core >= trace.pt.size() ||
            pt_assigned_[core]) {
            ++loss.segments_dropped;
            break;
        }
        if (!crc_ok) {
            // Salvage: clamp the length fields to what is actually
            // present and hand the damaged stream to the PT decoder,
            // whose PSB resynchronization recovers the intact packet
            // runs.
            ++loss.pt_streams_damaged;
            nbytes = std::min<uint64_t>(nbytes, tr.remaining());
        } else if (nbytes > tr.remaining()) {
            ++loss.segments_dropped;
            break;
        }
        PtCoreStream &stream = trace.pt[core];
        stream.bytes = tr.bytes(static_cast<size_t>(nbytes));
        stream.bit_count =
            std::min<uint64_t>(bit_count, stream.bytes.size() * 8);
        pt_assigned_[core] = true;
        break;
    }
    case kSegEnd:
        saw_end_ = crc_ok;
        if (!crc_ok)
            ++loss.segments_dropped;
        break;
    default:
        // Unknown kind: written by a newer minor revision; skip.
        ++loss.segments_dropped;
        break;
    }
    return true;
}

size_t
TraceReader::poll()
{
    if (error_ || finished_)
        return 0;
    if (!header_done_) {
        if (buf_.size() < 8)
            return 0;
        Reader header(buf_.data(), 8);
        const uint32_t magic = header.u32();
        const uint32_t version = header.u32();
        if (magic != kTraceMagic) {
            error_ = makeError(TraceErrorKind::kBadMagic,
                               "not a ProRace trace file (bad magic)", 0);
            return 0;
        }
        if (version != kTraceVersion) {
            error_ = makeError(
                TraceErrorKind::kBadVersion,
                detail::concat("found trace format version ", version,
                               " but this reader expects version ",
                               kTraceVersion, "; re-trace the workload"),
                4);
            return 0;
        }
        header_done_ = true;
        pos_ = 8;
    }

    const uint64_t seen_before = loaded_.loss.segments_seen;
    while (!error_) {
        if (resyncing_) {
            resync();
            if (resyncing_)
                break;
            continue;
        }
        if (!consumeOne())
            break;
    }
    compact();
    return static_cast<size_t>(loaded_.loss.segments_seen - seen_before);
}

Result<LoadedTrace, TraceError>
TraceReader::finish()
{
    poll();
    finished_ = true;
    if (error_)
        return *error_;
    if (!header_done_)
        return makeError(TraceErrorKind::kBadMagic,
                         "not a ProRace trace file (bad magic)", 0);

    RunTrace &trace = loaded_.trace;
    SegmentLoss &loss = loaded_.loss;
    const size_t avail = buf_.size() - pos_;
    if (avail > 0) {
        loss.truncated = true;
        if (resyncing_ || avail < kSegmentHeaderSize) {
            loss.bytes_skipped += avail;
        } else {
            // poll() leaves a full, CRC-valid header behind only when
            // its payload ran past the end of the stream: collection
            // was clipped mid-segment. A clipped PT stream is still
            // worth salvaging — the decoder handles mid-packet
            // truncation — so hand over whatever bytes remain;
            // anything else is dropped.
            Reader r(buf_.data() + pos_ + 4, kSegmentHeaderSize - 4);
            const uint8_t kind = r.u8();
            ++loss.segments_seen;
            bool salvaged = false;
            if (kind == kSegPt && have_meta_) {
                const size_t payload_pos = pos_ + kSegmentHeaderSize;
                Reader tr(buf_.data() + payload_pos,
                          buf_.size() - payload_pos);
                const uint32_t core = tr.u32();
                const uint64_t bit_count = tr.u64();
                uint64_t nbytes = tr.u64();
                if (!tr.failed() && core < trace.pt.size() &&
                    !pt_assigned_[core]) {
                    ++loss.pt_streams_damaged;
                    nbytes = std::min<uint64_t>(nbytes, tr.remaining());
                    PtCoreStream &stream = trace.pt[core];
                    stream.bytes = tr.bytes(static_cast<size_t>(nbytes));
                    stream.bit_count = std::min<uint64_t>(
                        bit_count, stream.bytes.size() * 8);
                    pt_assigned_[core] = true;
                    salvaged = true;
                }
            }
            if (!salvaged)
                ++loss.segments_dropped;
        }
    }

    if (!have_meta_)
        return makeError(TraceErrorKind::kCorruptMeta,
                         "no readable meta segment",
                         origin_ + buf_.size());
    if (!saw_end_)
        loss.truncated = true;
    loss.pebs_dropped = saturatingLoss(expected_pebs_, trace.pebs.size());
    loss.sync_dropped = saturatingLoss(expected_sync_, trace.sync.size());
    for (uint32_t core = 0; core < expected_pt_; ++core) {
        if (!pt_assigned_[core])
            ++loss.pt_streams_dropped;
    }
    buf_.clear();
    return std::move(loaded_);
}

Result<LoadedTrace, TraceError>
readTrace(const std::vector<uint8_t> &bytes, const std::string &context)
{
    TraceReader reader(context);
    reader.feed(bytes);
    return reader.finish();
}

Result<LoadedTrace, TraceError>
readTraceFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return TraceError{TraceErrorKind::kIo,
                          "cannot open trace file", 0, path};
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<uint8_t> bytes(static_cast<size_t>(size > 0 ? size : 0));
    const size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (got != bytes.size())
        return TraceError{TraceErrorKind::kIo,
                          detail::concat("short read (got ", got, " of ",
                                         bytes.size(), " bytes)"),
                          got, path};
    return readTrace(bytes, path);
}

RunTrace
deserializeTrace(const std::vector<uint8_t> &bytes)
{
    auto result = readTrace(bytes);
    if (!result.ok())
        PRORACE_FATAL(result.error().format());
    if (result.value().loss.hasLoss())
        warn("trace loaded with loss: ", result.value().loss.summary());
    return std::move(result.value().trace);
}

void
saveTrace(const RunTrace &trace, const std::string &path)
{
    const std::vector<uint8_t> bytes = serializeTrace(trace);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        PRORACE_FATAL("cannot open trace file for writing: ", path);
    const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (written != bytes.size())
        PRORACE_FATAL("short write to trace file ", path, ": wrote ",
                      written, " of ", bytes.size(),
                      " bytes (failed at byte offset ", written, ")");
}

RunTrace
loadTrace(const std::string &path)
{
    auto result = readTraceFile(path);
    if (!result.ok())
        PRORACE_FATAL(result.error().format());
    if (result.value().loss.hasLoss())
        warn("trace ", path, " loaded with loss: ",
             result.value().loss.summary());
    return std::move(result.value().trace);
}

} // namespace prorace::trace

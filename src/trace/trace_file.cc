#include "trace/trace_file.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "support/crc32.hh"
#include "support/log.hh"

namespace prorace::trace {

namespace {

/// kind..payload_size bytes covered by the header CRC.
constexpr size_t kSegmentHeaderCrcSpan = 1 + 4 + 8;

/// magic, kind, seq, payload_size, header_crc, payload_crc.
constexpr size_t kSegmentHeaderSize = 4 + kSegmentHeaderCrcSpan + 4 + 4;

/** Segment payload kinds. New kinds are skipped by older readers. */
enum SegmentKind : uint8_t {
    kSegMeta = 1,
    kSegPebs = 2,
    kSegSync = 3,
    kSegPt = 4,
    kSegEnd = 5,
};

/** Little-endian append-only byte sink. */
class Writer
{
  public:
    void
    u8(uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    bytes(const std::vector<uint8_t> &b)
    {
        buf_.insert(buf_.end(), b.begin(), b.end());
    }

    size_t size() const { return buf_.size(); }

    std::vector<uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<uint8_t> buf_;
};

/**
 * Sequential reader over untrusted bytes. Reads past the end do not
 * abort: they return zero and latch the fail flag, so segment parsers
 * can run over damaged payloads and report failure as a value.
 */
class Reader
{
  public:
    Reader(const uint8_t *data, size_t size) : data_(data), size_(size) {}

    explicit Reader(const std::vector<uint8_t> &buf)
        : data_(buf.data()), size_(buf.size())
    {
    }

    uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return data_[pos_++];
    }

    uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    std::vector<uint8_t>
    bytes(size_t n)
    {
        if (!need(n))
            return {};
        std::vector<uint8_t> out(data_ + pos_, data_ + pos_ + n);
        pos_ += n;
        return out;
    }

    size_t remaining() const { return failed_ ? 0 : size_ - pos_; }

    /** True once any read has run past the end. */
    bool failed() const { return failed_; }

  private:
    bool
    need(size_t n)
    {
        if (failed_ || n > size_ - pos_) {
            failed_ = true;
            return false;
        }
        return true;
    }

    const uint8_t *data_;
    size_t size_;
    size_t pos_ = 0;
    bool failed_ = false;
};

void
writePebs(Writer &w, const PebsRecord &r)
{
    w.u32(r.tid);
    w.u32(r.core);
    w.u32(r.insn_index);
    w.u64(r.addr);
    w.u8(r.width);
    w.u8(r.is_write);
    w.u8(r.is_atomic);
    w.u64(r.tsc);
    for (uint64_t g : r.regs.gpr)
        w.u64(g);
}

PebsRecord
readPebs(Reader &r)
{
    PebsRecord rec;
    rec.tid = r.u32();
    rec.core = r.u32();
    rec.insn_index = r.u32();
    rec.addr = r.u64();
    rec.width = r.u8();
    rec.is_write = r.u8() != 0;
    rec.is_atomic = r.u8() != 0;
    rec.tsc = r.u64();
    for (uint64_t &g : rec.regs.gpr)
        g = r.u64();
    return rec;
}

void
writeSync(Writer &w, const SyncRecord &s)
{
    w.u32(s.tid);
    w.u8(static_cast<uint8_t>(s.kind));
    w.u64(s.object);
    w.u64(s.aux);
    w.u64(s.tsc);
    w.u32(s.insn_index);
}

SyncRecord
readSync(Reader &r)
{
    SyncRecord s;
    s.tid = r.u32();
    s.kind = static_cast<vm::SyncKind>(r.u8());
    s.object = r.u64();
    s.aux = r.u64();
    s.tsc = r.u64();
    s.insn_index = r.u32();
    return s;
}

/** Frame @p payload as segment number @p seq of @p kind onto @p out. */
void
appendSegment(Writer &out, SegmentKind kind, uint32_t seq,
              const std::vector<uint8_t> &payload)
{
    Writer header;
    header.u8(kind);
    header.u32(seq);
    header.u64(payload.size());
    const std::vector<uint8_t> header_bytes = header.take();

    out.u32(kSegmentMagic);
    out.bytes(header_bytes);
    out.u32(crc32(header_bytes.data(), header_bytes.size()));
    out.u32(crc32(payload.data(), payload.size()));
    out.bytes(payload);
}

std::vector<uint8_t>
serializeMeta(const RunTrace &trace)
{
    Writer w;
    const TraceMeta &m = trace.meta;
    w.u32(m.num_cores);
    w.u64(m.wall_cycles);
    w.u64(m.baseline_cycles);
    w.u64(m.total_insns);
    w.u64(m.total_mem_ops);
    w.u64(m.pebs_period);
    w.u64(m.samples_taken);
    w.u64(m.samples_dropped);
    w.u64(m.pebs_bytes);
    w.u64(m.pt_bytes);
    w.u64(m.sync_bytes);
    w.u32(static_cast<uint32_t>(m.first_periods.size()));
    for (uint64_t fp : m.first_periods)
        w.u64(fp);
    w.u32(static_cast<uint32_t>(m.threads.size()));
    for (const ThreadMeta &t : m.threads) {
        w.u32(t.tid);
        w.u32(t.entry_index);
    }
    // Expected record counts: the reader reconciles what it salvaged
    // against these to quantify loss.
    w.u64(trace.pebs.size());
    w.u64(trace.sync.size());
    w.u32(static_cast<uint32_t>(trace.pt.size()));
    return w.take();
}

/**
 * Parse a meta payload. Returns false (leaving the outputs partially
 * filled) when the payload is short or its counts point past its end.
 */
bool
parseMeta(const std::vector<uint8_t> &payload, TraceMeta &m,
          uint64_t &expected_pebs, uint64_t &expected_sync,
          uint32_t &expected_pt)
{
    Reader r(payload);
    m.num_cores = r.u32();
    m.wall_cycles = r.u64();
    m.baseline_cycles = r.u64();
    m.total_insns = r.u64();
    m.total_mem_ops = r.u64();
    m.pebs_period = r.u64();
    m.samples_taken = r.u64();
    m.samples_dropped = r.u64();
    m.pebs_bytes = r.u64();
    m.pt_bytes = r.u64();
    m.sync_bytes = r.u64();
    const uint32_t nfp = r.u32();
    if (r.failed() || nfp * 8ull > r.remaining())
        return false;
    for (uint32_t i = 0; i < nfp; ++i)
        m.first_periods.push_back(r.u64());
    const uint32_t nthreads = r.u32();
    if (r.failed() || nthreads * 8ull > r.remaining())
        return false;
    for (uint32_t i = 0; i < nthreads; ++i) {
        ThreadMeta t;
        t.tid = r.u32();
        t.entry_index = r.u32();
        m.threads.push_back(t);
    }
    expected_pebs = r.u64();
    expected_sync = r.u64();
    expected_pt = r.u32();
    return !r.failed();
}

/** Next offset >= @p from where kSegmentMagic occurs, or buffer size. */
size_t
scanForSegmentMagic(const std::vector<uint8_t> &buf, size_t from)
{
    if (buf.size() < 4)
        return buf.size();
    for (size_t pos = from; pos + 4 <= buf.size(); ++pos) {
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(buf[pos + i]) << (8 * i);
        if (v == kSegmentMagic)
            return pos;
    }
    return buf.size();
}

uint64_t
saturatingLoss(uint64_t expected, uint64_t got)
{
    return expected > got ? expected - got : 0;
}

} // namespace

std::vector<uint8_t>
serializeTrace(const RunTrace &trace)
{
    Writer out;
    out.u32(kTraceMagic);
    out.u32(kTraceVersion);

    uint32_t seq = 0;
    appendSegment(out, kSegMeta, seq++, serializeMeta(trace));

    for (size_t base = 0; base < trace.pebs.size();
         base += kPebsChunkRecords) {
        const size_t count = std::min<size_t>(kPebsChunkRecords,
                                              trace.pebs.size() - base);
        Writer w;
        w.u64(base);
        w.u32(static_cast<uint32_t>(count));
        for (size_t i = 0; i < count; ++i)
            writePebs(w, trace.pebs[base + i]);
        appendSegment(out, kSegPebs, seq++, w.take());
    }

    for (size_t base = 0; base < trace.sync.size();
         base += kSyncChunkRecords) {
        const size_t count = std::min<size_t>(kSyncChunkRecords,
                                              trace.sync.size() - base);
        Writer w;
        w.u64(base);
        w.u32(static_cast<uint32_t>(count));
        for (size_t i = 0; i < count; ++i)
            writeSync(w, trace.sync[base + i]);
        appendSegment(out, kSegSync, seq++, w.take());
    }

    for (size_t core = 0; core < trace.pt.size(); ++core) {
        const PtCoreStream &s = trace.pt[core];
        Writer w;
        w.u32(static_cast<uint32_t>(core));
        w.u64(s.bit_count);
        w.u64(s.bytes.size());
        w.bytes(s.bytes);
        appendSegment(out, kSegPt, seq++, w.take());
    }

    {
        Writer w;
        w.u32(seq); // segments preceding the end marker
        appendSegment(out, kSegEnd, seq, w.take());
    }
    return out.take();
}

TraceReader::TraceReader(std::string context)
    : context_(std::move(context))
{
}

TraceError
TraceReader::makeError(TraceErrorKind kind, std::string msg,
                       uint64_t offset) const
{
    return TraceError{kind, std::move(msg), offset, context_};
}

void
TraceReader::feed(const uint8_t *data, size_t size)
{
    // A hard-failed stream is uninterpretable; buffering more of it
    // would only grow memory without ever parsing anything.
    if (error_ || finished_)
        return;
    buf_.insert(buf_.end(), data, data + size);
}

void
TraceReader::compact()
{
    // Drop the consumed prefix once it dominates the buffer, so a
    // tailing reader's resident memory is bounded by the largest
    // in-flight segment, not the stream length.
    if (pos_ >= (64u << 10) && pos_ * 2 >= buf_.size()) {
        origin_ += pos_;
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<ptrdiff_t>(pos_));
        pos_ = 0;
    }
}

void
TraceReader::resync()
{
    // Damaged header or a payload byte pattern that happened to look
    // like the magic: scan forward for the next segment magic. The
    // last 3 bytes can hold a partial magic that the next feed()
    // completes, so they stay pending rather than being skipped.
    const size_t found = scanForSegmentMagic(buf_, pos_);
    if (found < buf_.size()) {
        loaded_.loss.bytes_skipped += found - pos_;
        pos_ = found;
        resyncing_ = false;
        return;
    }
    const size_t keep = buf_.size() >= 3 ? buf_.size() - 3 : 0;
    if (keep > pos_) {
        loaded_.loss.bytes_skipped += keep - pos_;
        pos_ = keep;
    }
}

bool
TraceReader::consumeOne()
{
    RunTrace &trace = loaded_.trace;
    SegmentLoss &loss = loaded_.loss;

    const size_t avail = buf_.size() - pos_;
    if (avail < kSegmentHeaderSize)
        return false;
    {
        uint32_t seg_magic = 0;
        for (int i = 0; i < 4; ++i)
            seg_magic |= static_cast<uint32_t>(buf_[pos_ + i]) << (8 * i);
        if (seg_magic != kSegmentMagic) {
            ++loss.bytes_skipped;
            ++pos_;
            resyncing_ = true;
            return true;
        }
    }
    Reader r(buf_.data() + pos_ + 4, kSegmentHeaderSize - 4);
    const uint8_t kind = r.u8();
    r.u32(); // seq (diagnostic only)
    const uint64_t payload_size = r.u64();
    const uint32_t header_crc = r.u32();
    const uint32_t payload_crc = r.u32();
    if (crc32(buf_.data() + pos_ + 4, kSegmentHeaderCrcSpan) !=
        header_crc) {
        ++loss.bytes_skipped;
        ++pos_;
        resyncing_ = true;
        return true;
    }
    if (payload_size > avail - kSegmentHeaderSize) {
        // Authentic header whose payload has not fully arrived yet:
        // wait. finish() turns a still-pending segment into the
        // truncation/salvage outcome.
        return false;
    }

    const size_t payload_pos = pos_ + kSegmentHeaderSize;
    ++loss.segments_seen;
    const uint8_t *payload_data = buf_.data() + payload_pos;
    const bool crc_ok = crc32(payload_data, payload_size) == payload_crc;
    pos_ = payload_pos + static_cast<size_t>(payload_size);

    switch (kind) {
    case kSegMeta: {
        if (have_meta_) {
            ++loss.segments_dropped;
            break;
        }
        std::vector<uint8_t> payload(payload_data,
                                     payload_data + payload_size);
        if (!crc_ok ||
            !parseMeta(payload, trace.meta, expected_pebs_,
                       expected_sync_, expected_pt_)) {
            error_ = makeError(TraceErrorKind::kCorruptMeta,
                               "trace meta segment is corrupt",
                               origin_ + payload_pos);
            return false;
        }
        trace.pt.resize(expected_pt_);
        pt_assigned_.assign(expected_pt_, false);
        have_meta_ = true;
        break;
    }
    case kSegPebs: {
        if (!crc_ok || !have_meta_) {
            ++loss.segments_dropped;
            break;
        }
        Reader pr(payload_data, payload_size);
        pr.u64(); // first record index (diagnostic only)
        const uint32_t count = pr.u32();
        std::vector<PebsRecord> records;
        records.reserve(count);
        for (uint32_t i = 0; i < count && !pr.failed(); ++i)
            records.push_back(readPebs(pr));
        if (pr.failed()) {
            ++loss.segments_dropped;
            break;
        }
        trace.pebs.insert(trace.pebs.end(), records.begin(),
                          records.end());
        break;
    }
    case kSegSync: {
        if (!crc_ok || !have_meta_) {
            ++loss.segments_dropped;
            break;
        }
        Reader sr(payload_data, payload_size);
        sr.u64(); // first record index (diagnostic only)
        const uint32_t count = sr.u32();
        std::vector<SyncRecord> records;
        records.reserve(count);
        for (uint32_t i = 0; i < count && !sr.failed(); ++i)
            records.push_back(readSync(sr));
        if (sr.failed()) {
            ++loss.segments_dropped;
            break;
        }
        trace.sync.insert(trace.sync.end(), records.begin(),
                          records.end());
        break;
    }
    case kSegPt: {
        if (!have_meta_) {
            ++loss.segments_dropped;
            break;
        }
        Reader tr(payload_data, payload_size);
        const uint32_t core = tr.u32();
        uint64_t bit_count = tr.u64();
        uint64_t nbytes = tr.u64();
        if (tr.failed() || core >= trace.pt.size() ||
            pt_assigned_[core]) {
            ++loss.segments_dropped;
            break;
        }
        if (!crc_ok) {
            // Salvage: clamp the length fields to what is actually
            // present and hand the damaged stream to the PT decoder,
            // whose PSB resynchronization recovers the intact packet
            // runs.
            ++loss.pt_streams_damaged;
            nbytes = std::min<uint64_t>(nbytes, tr.remaining());
        } else if (nbytes > tr.remaining()) {
            ++loss.segments_dropped;
            break;
        }
        PtCoreStream &stream = trace.pt[core];
        stream.bytes = tr.bytes(static_cast<size_t>(nbytes));
        stream.bit_count =
            std::min<uint64_t>(bit_count, stream.bytes.size() * 8);
        pt_assigned_[core] = true;
        break;
    }
    case kSegEnd:
        saw_end_ = crc_ok;
        if (!crc_ok)
            ++loss.segments_dropped;
        break;
    default:
        // Unknown kind: written by a newer minor revision; skip.
        ++loss.segments_dropped;
        break;
    }
    return true;
}

size_t
TraceReader::poll()
{
    if (error_ || finished_)
        return 0;
    if (!header_done_) {
        if (buf_.size() < 8)
            return 0;
        Reader header(buf_.data(), 8);
        const uint32_t magic = header.u32();
        const uint32_t version = header.u32();
        if (magic != kTraceMagic) {
            error_ = makeError(TraceErrorKind::kBadMagic,
                               "not a ProRace trace file (bad magic)", 0);
            return 0;
        }
        if (version != kTraceVersion) {
            error_ = makeError(
                TraceErrorKind::kBadVersion,
                detail::concat("unsupported trace format version ",
                               version, " (current ", kTraceVersion,
                               "); re-trace the workload"),
                4);
            return 0;
        }
        header_done_ = true;
        pos_ = 8;
    }

    const uint64_t seen_before = loaded_.loss.segments_seen;
    while (!error_) {
        if (resyncing_) {
            resync();
            if (resyncing_)
                break;
            continue;
        }
        if (!consumeOne())
            break;
    }
    compact();
    return static_cast<size_t>(loaded_.loss.segments_seen - seen_before);
}

Result<LoadedTrace, TraceError>
TraceReader::finish()
{
    poll();
    finished_ = true;
    if (error_)
        return *error_;
    if (!header_done_)
        return makeError(TraceErrorKind::kBadMagic,
                         "not a ProRace trace file (bad magic)", 0);

    RunTrace &trace = loaded_.trace;
    SegmentLoss &loss = loaded_.loss;
    const size_t avail = buf_.size() - pos_;
    if (avail > 0) {
        loss.truncated = true;
        if (resyncing_ || avail < kSegmentHeaderSize) {
            loss.bytes_skipped += avail;
        } else {
            // poll() leaves a full, CRC-valid header behind only when
            // its payload ran past the end of the stream: collection
            // was clipped mid-segment. A clipped PT stream is still
            // worth salvaging — the decoder handles mid-packet
            // truncation — so hand over whatever bytes remain;
            // anything else is dropped.
            Reader r(buf_.data() + pos_ + 4, kSegmentHeaderSize - 4);
            const uint8_t kind = r.u8();
            ++loss.segments_seen;
            bool salvaged = false;
            if (kind == kSegPt && have_meta_) {
                const size_t payload_pos = pos_ + kSegmentHeaderSize;
                Reader tr(buf_.data() + payload_pos,
                          buf_.size() - payload_pos);
                const uint32_t core = tr.u32();
                const uint64_t bit_count = tr.u64();
                uint64_t nbytes = tr.u64();
                if (!tr.failed() && core < trace.pt.size() &&
                    !pt_assigned_[core]) {
                    ++loss.pt_streams_damaged;
                    nbytes = std::min<uint64_t>(nbytes, tr.remaining());
                    PtCoreStream &stream = trace.pt[core];
                    stream.bytes = tr.bytes(static_cast<size_t>(nbytes));
                    stream.bit_count = std::min<uint64_t>(
                        bit_count, stream.bytes.size() * 8);
                    pt_assigned_[core] = true;
                    salvaged = true;
                }
            }
            if (!salvaged)
                ++loss.segments_dropped;
        }
    }

    if (!have_meta_)
        return makeError(TraceErrorKind::kCorruptMeta,
                         "no readable meta segment",
                         origin_ + buf_.size());
    if (!saw_end_)
        loss.truncated = true;
    loss.pebs_dropped = saturatingLoss(expected_pebs_, trace.pebs.size());
    loss.sync_dropped = saturatingLoss(expected_sync_, trace.sync.size());
    for (uint32_t core = 0; core < expected_pt_; ++core) {
        if (!pt_assigned_[core])
            ++loss.pt_streams_dropped;
    }
    buf_.clear();
    return std::move(loaded_);
}

Result<LoadedTrace, TraceError>
readTrace(const std::vector<uint8_t> &bytes, const std::string &context)
{
    TraceReader reader(context);
    reader.feed(bytes);
    return reader.finish();
}

Result<LoadedTrace, TraceError>
readTraceFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return TraceError{TraceErrorKind::kIo,
                          "cannot open trace file", 0, path};
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<uint8_t> bytes(static_cast<size_t>(size > 0 ? size : 0));
    const size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (got != bytes.size())
        return TraceError{TraceErrorKind::kIo,
                          detail::concat("short read (got ", got, " of ",
                                         bytes.size(), " bytes)"),
                          got, path};
    return readTrace(bytes, path);
}

RunTrace
deserializeTrace(const std::vector<uint8_t> &bytes)
{
    auto result = readTrace(bytes);
    if (!result.ok())
        PRORACE_FATAL(result.error().format());
    if (result.value().loss.hasLoss())
        warn("trace loaded with loss: ", result.value().loss.summary());
    return std::move(result.value().trace);
}

void
saveTrace(const RunTrace &trace, const std::string &path)
{
    const std::vector<uint8_t> bytes = serializeTrace(trace);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        PRORACE_FATAL("cannot open trace file for writing: ", path);
    const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (written != bytes.size())
        PRORACE_FATAL("short write to trace file ", path, ": wrote ",
                      written, " of ", bytes.size(),
                      " bytes (failed at byte offset ", written, ")");
}

RunTrace
loadTrace(const std::string &path)
{
    auto result = readTraceFile(path);
    if (!result.ok())
        PRORACE_FATAL(result.error().format());
    if (result.value().loss.hasLoss())
        warn("trace ", path, " loaded with loss: ",
             result.value().loss.summary());
    return std::move(result.value().trace);
}

} // namespace prorace::trace

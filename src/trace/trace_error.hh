/**
 * @file
 * Error and loss reporting for fault-tolerant trace ingestion.
 *
 * Production traces arrive damaged: aux-buffer segments dropped under
 * load, files clipped at collection shutdown, bytes flipped in
 * transit. The reader's contract is that damage inside the file
 * degrades the analysis (recorded in SegmentLoss) while only damage
 * that makes the file uninterpretable — unreadable path, foreign
 * magic, unsupported version, no readable meta segment — is an error
 * (TraceError). Callers get both through Result<LoadedTrace,
 * TraceError> instead of a fatal abort.
 */

#ifndef PRORACE_TRACE_TRACE_ERROR_HH
#define PRORACE_TRACE_TRACE_ERROR_HH

#include <cstdint>
#include <sstream>
#include <string>

namespace prorace::trace {

/** Why a trace could not be ingested at all. */
enum class TraceErrorKind : uint8_t {
    kIo,          ///< file unreadable (open/short read)
    kBadMagic,    ///< not a ProRace trace file
    kBadVersion,  ///< produced by an incompatible format version
    kCorruptMeta, ///< the meta segment is damaged or missing
};

/** A trace that could not be ingested, with enough context to act on. */
struct TraceError {
    TraceErrorKind kind = TraceErrorKind::kIo;
    std::string message;
    uint64_t offset = 0;  ///< byte offset the failure was detected at
    std::string path;     ///< file path or "<memory>" for buffers

    /** One-line human-readable rendering. */
    std::string
    format() const
    {
        std::ostringstream os;
        os << path << ": " << message << " (at byte " << offset << ")";
        return os.str();
    }
};

/**
 * What the reader had to discard to produce a usable trace. All-zero
 * (hasLoss() false) for an intact file; the analysis layer surfaces
 * these so degraded results are never silently mistaken for complete
 * ones.
 */
struct SegmentLoss {
    uint64_t segments_seen = 0;     ///< segment headers parsed
    uint64_t segments_dropped = 0;  ///< segments discarded (CRC/parse)
    uint64_t bytes_skipped = 0;     ///< bytes scanned over to resync
    uint64_t pebs_dropped = 0;      ///< PEBS records lost vs meta count
    uint64_t sync_dropped = 0;      ///< sync records lost vs meta count
    uint64_t pt_streams_dropped = 0; ///< per-core PT streams lost
    uint64_t pt_streams_damaged = 0; ///< PT streams salvaged despite CRC
    bool truncated = false;          ///< file ended before the end marker

    bool
    hasLoss() const
    {
        return segments_dropped || bytes_skipped || pebs_dropped ||
               sync_dropped || pt_streams_dropped || pt_streams_damaged ||
               truncated;
    }

    /** One-line summary for logs and CLI output. */
    std::string
    summary() const
    {
        std::ostringstream os;
        os << segments_dropped << "/" << segments_seen
           << " segments dropped, " << bytes_skipped << " bytes skipped, "
           << pebs_dropped << " samples lost, " << sync_dropped
           << " sync events lost, " << pt_streams_dropped
           << " PT streams lost, " << pt_streams_damaged
           << " PT streams damaged"
           << (truncated ? ", file truncated" : "");
        return os.str();
    }
};

} // namespace prorace::trace

#endif // PRORACE_TRACE_TRACE_ERROR_HH

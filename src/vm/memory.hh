/**
 * @file
 * Sparse paged data memory for the simulated machine.
 */

#ifndef PRORACE_VM_MEMORY_HH
#define PRORACE_VM_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace prorace::vm {

/**
 * Byte-addressed sparse memory backed by 4 KiB pages allocated on first
 * touch. Reads of untouched memory return zero, matching zero-initialized
 * BSS/heap semantics.
 */
class Memory
{
  public:
    static constexpr uint64_t kPageShift = 12;
    static constexpr uint64_t kPageSize = 1ull << kPageShift;

    /** Read @p width bytes (1/2/4/8) little-endian at @p addr. */
    uint64_t read(uint64_t addr, uint8_t width) const;

    /** Write the low @p width bytes of @p value at @p addr. */
    void write(uint64_t addr, uint64_t value, uint8_t width);

    /** Bulk copy @p bytes into memory at @p addr. */
    void writeBytes(uint64_t addr, const std::vector<uint8_t> &bytes);

    /** Number of pages materialized so far. */
    size_t pageCount() const { return pages_.size(); }

  private:
    using Page = std::array<uint8_t, kPageSize>;

    uint8_t readByte(uint64_t addr) const;
    void writeByte(uint64_t addr, uint8_t value);
    Page &pageFor(uint64_t addr);

    std::unordered_map<uint64_t, std::unique_ptr<Page>> pages_;
};

} // namespace prorace::vm

#endif // PRORACE_VM_MEMORY_HH

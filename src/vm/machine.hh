/**
 * @file
 * The simulated multicore machine: scheduler, sync objects, heap, I/O
 * timing, and the interpreter loop with tracing hooks.
 */

#ifndef PRORACE_VM_MACHINE_HH
#define PRORACE_VM_MACHINE_HH

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "asmkit/program.hh"
#include "support/rng.hh"
#include "vm/cpu.hh"
#include "vm/hooks.hh"
#include "vm/memory.hh"

namespace prorace::vm {

/** Machine configuration. */
struct MachineConfig {
    unsigned num_cores = 4;       ///< evaluation machine: quad-core Skylake
    uint64_t seed = 1;            ///< scheduler randomness seed
    uint64_t max_instructions = 500'000'000; ///< runaway-loop safety stop
    uint64_t quantum_min = 64;    ///< min scheduling quantum (instructions)
    uint64_t quantum_max = 512;   ///< max scheduling quantum
    uint64_t context_switch_cost = 400; ///< cycles per context switch
    bool timing_jitter = true;    ///< model cache-miss-like timing noise
    bool record_memory_log = false; ///< keep the oracle access log
    bool record_path_log = false; ///< keep the oracle instruction path
};

/** One entry of the oracle memory-access log (testing/ground truth). */
struct MemoryLogEntry {
    uint32_t tid = 0;
    uint64_t retire_index = 0; ///< per-thread retirement position
    uint32_t insn_index = 0;
    uint64_t addr = 0;
    uint8_t width = 8;
    bool is_write = false;
    bool is_atomic = false;
    uint64_t tsc = 0;
};

/** Terminal status of a run. */
enum class RunStatus : uint8_t {
    kFinished,        ///< every thread halted
    kDeadlock,        ///< live threads, none can make progress
    kInsnLimit,       ///< hit max_instructions
};

/**
 * A deterministic multicore interpreter for assembled programs.
 *
 * Cores have private clocks advanced by instruction and tracing costs;
 * the run loop always steps the laggard core, which keeps the clocks
 * (our invariant-TSC model) closely synchronized. Threads are pinned
 * round-robin to cores and scheduled with seeded random quanta, so data
 * races manifest through genuine interleavings that vary with the seed.
 */
class Machine
{
  public:
    Machine(const asmkit::Program &program, const MachineConfig &config);

    /** Attach the tracing observer (may be null). */
    void setObserver(ExecutionObserver *observer) { observer_ = observer; }

    /** Create a thread before run(); @return its tid. */
    uint32_t addThread(uint32_t entry_index, uint64_t arg = 0);

    /** Create a thread at a named label. */
    uint32_t addThread(const std::string &entry_label, uint64_t arg = 0);

    /** Execute until every thread halts (or deadlock / insn limit). */
    RunStatus run();

    /** Wall time of the run: the maximum core clock, in cycles. */
    uint64_t wallTime() const;

    /** Total retired instructions across all threads. */
    uint64_t totalInstructions() const { return total_insns_; }

    /** Total retired loads+stores across all threads. */
    uint64_t totalMemOps() const { return total_mem_ops_; }

    /** Total retired conditional + indirect branches. */
    uint64_t totalBranches() const { return total_branches_; }

    /** The oracle access log (empty unless record_memory_log). */
    const std::vector<MemoryLogEntry> &memoryLog() const { return mem_log_; }

    /** The oracle retirement path (empty unless record_path_log). */
    const std::vector<std::pair<uint32_t, uint32_t>> &pathLog() const
    {
        return path_log_;
    }

    /** Data memory (inspectable after the run). */
    Memory &memory() { return memory_; }
    const Memory &memory() const { return memory_; }

    /** Thread context by tid. */
    const ThreadContext &thread(uint32_t tid) const;

    /** Number of threads ever created. */
    uint32_t numThreads() const
    {
        return static_cast<uint32_t>(threads_.size());
    }

    /** The program being executed. */
    const asmkit::Program &program() const { return program_; }

    /** The configuration this machine was built with. */
    const MachineConfig &config() const { return config_; }

  private:
    struct MutexState {
        int64_t owner = -1;
        std::deque<uint32_t> waiters;
    };
    struct RwLockState {
        int64_t writer = -1;            ///< exclusive holder or -1
        uint32_t readers = 0;           ///< live shared holders
        std::deque<std::pair<uint32_t, bool>> waiters; ///< (tid, wants write)
    };
    struct SemState {
        int64_t value = 0;
        std::deque<uint32_t> waiters;
    };
    struct CondVarState {
        std::deque<uint32_t> waiters;
    };
    struct BarrierState {
        uint32_t arrived = 0;
        std::deque<uint32_t> waiters;
    };
    struct Core {
        uint64_t clock = 0;
        int64_t current = -1;        ///< running tid or -1
        int64_t last_tid = -1;       ///< last tid that ran here
        uint64_t quantum_left = 0;
        std::vector<uint32_t> threads; ///< tids pinned here
        bool executed_anything = false;
    };

    /** Pick and run one instruction on core @p core_id. */
    bool stepCore(unsigned core_id);

    /** Choose the next runnable thread on a core; -1 if none. */
    int64_t pickThread(Core &core);

    /** Execute one instruction of @p t; returns cycles consumed. */
    uint64_t executeInsn(ThreadContext &t, Core &core);

    uint64_t readReg(const ThreadContext &t, isa::Reg r) const;
    uint64_t effectiveAddr(const ThreadContext &t,
                           const isa::MemOperand &mem) const;

    uint64_t reportLoad(ThreadContext &t, Core &core, uint32_t index,
                        uint64_t addr, uint8_t width, bool atomic);
    uint64_t reportStore(ThreadContext &t, Core &core, uint32_t index,
                         uint64_t addr, uint8_t width, bool atomic);
    uint64_t reportSync(ThreadContext &t, Core &core, SyncKind kind,
                        uint64_t object, uint64_t aux, uint32_t index);

    void makeRunnable(uint32_t tid, uint64_t at_time);
    void grantMutex(MutexState &m, uint32_t tid, uint64_t at_time);
    void releaseMutex(uint64_t addr, ThreadContext &t, uint64_t now);
    void wakeFromCond(uint32_t tid, uint64_t mutex_addr, uint64_t now);
    void drainRwWaiters(RwLockState &rw, uint64_t at_time);

    uint64_t heapAlloc(uint64_t size);
    void heapFree(uint64_t addr);

    const asmkit::Program &program_;
    MachineConfig config_;
    Rng rng_;
    Memory memory_;
    ExecutionObserver *observer_ = nullptr;

    // A deque keeps ThreadContext references stable while kSpawn adds
    // threads mid-execution.
    std::deque<ThreadContext> threads_;
    std::vector<Core> cores_;
    std::vector<bool> lock_granted_;    ///< per-tid: mutex handed over
    std::vector<bool> cond_resuming_;   ///< per-tid: waking from cond wait
    std::vector<bool> barrier_resuming_;///< per-tid: released from barrier
    std::vector<bool> rw_granted_;      ///< per-tid: rwlock handed over
    std::vector<bool> sem_granted_;     ///< per-tid: semaphore count handed
    std::vector<bool> spin_granted_;    ///< per-tid: spinlock handed over
    std::vector<bool> started_;         ///< per-tid: ThreadStart emitted
    std::vector<uint32_t> parent_;      ///< per-tid: spawning thread

    std::map<uint64_t, MutexState> mutexes_;
    std::map<uint64_t, CondVarState> condvars_;
    std::map<uint64_t, BarrierState> barriers_;
    std::map<uint64_t, RwLockState> rwlocks_;
    std::map<uint64_t, SemState> semaphores_;
    std::map<uint64_t, MutexState> spinlocks_;

    uint64_t heap_cursor_ = 0;
    std::map<uint64_t, std::vector<uint64_t>> free_lists_; ///< size -> LIFO
    std::unordered_map<uint64_t, uint64_t> alloc_sizes_;

    uint64_t total_insns_ = 0;
    uint64_t total_mem_ops_ = 0;
    uint64_t total_branches_ = 0;
    uint32_t live_threads_ = 0;
    std::vector<MemoryLogEntry> mem_log_;
    std::vector<std::pair<uint32_t, uint32_t>> path_log_; ///< (tid, insn)
};

} // namespace prorace::vm

#endif // PRORACE_VM_MACHINE_HH

#include "vm/machine.hh"

#include <algorithm>

#include "asmkit/layout.hh"
#include "isa/disasm.hh"
#include "isa/semantics.hh"
#include "support/log.hh"

namespace prorace::vm {

using isa::AluOp;
using isa::Insn;
using isa::Op;
using isa::Reg;
using isa::SyscallNo;

Machine::Machine(const asmkit::Program &program, const MachineConfig &config)
    : program_(program), config_(config), rng_(config.seed)
{
    PRORACE_ASSERT(config_.num_cores >= 1, "machine needs at least one core");
    cores_.resize(config_.num_cores);
    for (const auto &[name, sym] : program_.symbols()) {
        if (!sym.init.empty())
            memory_.writeBytes(sym.addr, sym.init);
    }
}

uint32_t
Machine::addThread(uint32_t entry_index, uint64_t arg)
{
    PRORACE_ASSERT(entry_index < program_.size(),
                   "thread entry out of range");
    const uint32_t tid = static_cast<uint32_t>(threads_.size());
    ThreadContext t;
    t.tid = tid;
    t.core = tid % config_.num_cores;
    t.ip = entry_index;
    t.entry_ip = entry_index;
    t.regs.set(Reg::rdi, arg);
    t.regs.set(Reg::rsp, asmkit::stackTopFor(tid));
    t.state = ThreadState::kRunnable;
    threads_.push_back(t);
    cores_[t.core].threads.push_back(tid);
    lock_granted_.push_back(false);
    cond_resuming_.push_back(false);
    barrier_resuming_.push_back(false);
    rw_granted_.push_back(false);
    sem_granted_.push_back(false);
    spin_granted_.push_back(false);
    started_.push_back(false);
    parent_.push_back(tid); // root threads are their own parent
    ++live_threads_;
    return tid;
}

uint32_t
Machine::addThread(const std::string &entry_label, uint64_t arg)
{
    return addThread(program_.labelAddr(entry_label), arg);
}

const ThreadContext &
Machine::thread(uint32_t tid) const
{
    PRORACE_ASSERT(tid < threads_.size(), "tid out of range");
    return threads_[tid];
}

uint64_t
Machine::wallTime() const
{
    uint64_t t = 0;
    for (const Core &c : cores_)
        t = std::max(t, c.clock);
    return t;
}

uint64_t
Machine::readReg(const ThreadContext &t, Reg r) const
{
    if (r == Reg::rip)
        return t.ip;
    PRORACE_ASSERT(isGpr(r), "read of invalid register");
    return t.regs.get(r);
}

uint64_t
Machine::effectiveAddr(const ThreadContext &t,
                       const isa::MemOperand &mem) const
{
    return isa::effectiveAddress(mem,
                                 [&](Reg r) { return readReg(t, r); });
}

uint64_t
Machine::reportLoad(ThreadContext &t, Core &core, uint32_t index,
                    uint64_t addr, uint8_t width, bool atomic)
{
    ++t.retired_mem_ops;
    ++total_mem_ops_;
    if (config_.record_memory_log) {
        mem_log_.push_back({t.tid, t.retired_insns, index, addr, width,
                            false, atomic, core.clock});
    }
    if (!observer_)
        return 0;
    MemOpEvent ev{t.core, t.tid, index, addr, width, false, atomic,
                  core.clock, &t.regs};
    return observer_->onMemOp(ev);
}

uint64_t
Machine::reportStore(ThreadContext &t, Core &core, uint32_t index,
                     uint64_t addr, uint8_t width, bool atomic)
{
    ++t.retired_mem_ops;
    ++total_mem_ops_;
    if (config_.record_memory_log) {
        mem_log_.push_back({t.tid, t.retired_insns, index, addr, width,
                            true, atomic, core.clock});
    }
    if (!observer_)
        return 0;
    MemOpEvent ev{t.core, t.tid, index, addr, width, true, atomic,
                  core.clock, &t.regs};
    return observer_->onMemOp(ev);
}

uint64_t
Machine::reportSync(ThreadContext &t, Core &core, SyncKind kind,
                    uint64_t object, uint64_t aux, uint32_t index)
{
    ++t.sync_ops;
    if (!observer_)
        return 0;
    SyncEvent ev{t.tid, kind, object, aux, core.clock, index};
    return observer_->onSync(ev);
}

void
Machine::makeRunnable(uint32_t tid, uint64_t at_time)
{
    ThreadContext &t = threads_[tid];
    t.state = ThreadState::kRunnable;
    t.ready_time = std::max(t.ready_time, at_time);
}

void
Machine::grantMutex(MutexState &m, uint32_t tid, uint64_t at_time)
{
    m.owner = tid;
    lock_granted_[tid] = true;
    makeRunnable(tid, at_time);
}

void
Machine::releaseMutex(uint64_t addr, ThreadContext &t, uint64_t now)
{
    MutexState &m = mutexes_[addr];
    PRORACE_ASSERT(m.owner == static_cast<int64_t>(t.tid),
                   "thread ", t.tid, " releasing mutex it does not own");
    if (!m.waiters.empty()) {
        const uint32_t next = m.waiters.front();
        m.waiters.pop_front();
        grantMutex(m, next, now);
    } else {
        m.owner = -1;
    }
}

void
Machine::drainRwWaiters(RwLockState &rw, uint64_t at_time)
{
    // FIFO handoff: a writer at the head takes the lock alone; a run of
    // readers at the head is admitted together.
    while (!rw.waiters.empty()) {
        const auto [tid, wants_write] = rw.waiters.front();
        if (wants_write) {
            if (rw.writer >= 0 || rw.readers > 0)
                break;
            rw.writer = tid;
            rw.waiters.pop_front();
            rw_granted_[tid] = true;
            makeRunnable(tid, at_time);
            break;
        }
        if (rw.writer >= 0)
            break;
        ++rw.readers;
        rw.waiters.pop_front();
        rw_granted_[tid] = true;
        makeRunnable(tid, at_time);
    }
}

void
Machine::wakeFromCond(uint32_t tid, uint64_t mutex_addr, uint64_t now)
{
    // The woken thread must reacquire the mutex before returning from
    // pthread_cond_wait.
    cond_resuming_[tid] = true;
    MutexState &m = mutexes_[mutex_addr];
    if (m.owner < 0 && m.waiters.empty()) {
        grantMutex(m, tid, now);
    } else {
        threads_[tid].state = ThreadState::kBlockedMutex;
        threads_[tid].blocked_on = mutex_addr;
        threads_[tid].ready_time = now;
        m.waiters.push_back(tid);
    }
}

uint64_t
Machine::heapAlloc(uint64_t size)
{
    const uint64_t rounded = std::max<uint64_t>((size + 15) & ~15ull, 16);
    auto it = free_lists_.find(rounded);
    uint64_t addr;
    if (it != free_lists_.end() && !it->second.empty()) {
        // LIFO reuse: a freshly freed block is handed right back, which is
        // exactly the address-reuse hazard the malloc/free tracking in the
        // detector exists to suppress.
        addr = it->second.back();
        it->second.pop_back();
    } else {
        addr = asmkit::kHeapBase + heap_cursor_;
        heap_cursor_ += rounded;
        PRORACE_ASSERT(asmkit::kHeapBase + heap_cursor_ < asmkit::kHeapLimit,
                       "simulated heap exhausted");
    }
    alloc_sizes_[addr] = rounded;
    return addr;
}

void
Machine::heapFree(uint64_t addr)
{
    if (addr == 0)
        return;
    auto it = alloc_sizes_.find(addr);
    if (it == alloc_sizes_.end()) {
        // Double free or invalid free: real allocators may corrupt state
        // here; the simulated one just notes it (the bug's *race* is what
        // the detector must catch, not the crash).
        warn("invalid or double free of 0x", std::hex, addr, std::dec);
        return;
    }
    free_lists_[it->second].push_back(addr);
    alloc_sizes_.erase(it);
}

int64_t
Machine::pickThread(Core &core)
{
    int64_t best = -1;
    uint64_t best_ready = 0;
    for (uint32_t tid : core.threads) {
        const ThreadContext &t = threads_[tid];
        if (t.state != ThreadState::kRunnable)
            continue;
        if (best < 0 || t.ready_time < best_ready) {
            best = tid;
            best_ready = t.ready_time;
        }
    }
    return best;
}

bool
Machine::stepCore(unsigned core_id)
{
    Core &core = cores_[core_id];

    if (core.current >= 0 &&
        threads_[core.current].state == ThreadState::kRunning &&
        core.quantum_left == 0) {
        // Quantum expiry: preempt only if someone else is waiting.
        ThreadContext &t = threads_[core.current];
        bool other_waiting = false;
        for (uint32_t tid : core.threads) {
            if (tid != t.tid &&
                threads_[tid].state == ThreadState::kRunnable) {
                other_waiting = true;
                break;
            }
        }
        if (other_waiting) {
            t.state = ThreadState::kRunnable;
            t.ready_time = core.clock;
            core.current = -1;
        } else {
            core.quantum_left = rng_.range(config_.quantum_min,
                                           config_.quantum_max);
        }
    }

    if (core.current < 0 ||
        threads_[core.current].state != ThreadState::kRunning) {
        const int64_t next = pickThread(core);
        if (next < 0)
            return false;
        ThreadContext &t = threads_[next];
        core.clock = std::max(core.clock, t.ready_time);
        if (core.last_tid >= 0 && core.last_tid != next)
            core.clock += config_.context_switch_cost;
        core.current = next;
        core.last_tid = next;
        t.state = ThreadState::kRunning;
        core.quantum_left = rng_.range(config_.quantum_min,
                                       config_.quantum_max);
        if (observer_)
            observer_->onContextSwitch(core_id, next, core.clock, t.ip);
        if (!started_[next]) {
            started_[next] = true;
            core.clock += reportSync(t, core, SyncKind::kThreadStart,
                                     0, parent_[next], t.ip);
        }
    }

    ThreadContext &t = threads_[core.current];
    const uint64_t cost = executeInsn(t, core);
    core.clock += cost;
    core.executed_anything = true;
    if (core.quantum_left > 0)
        --core.quantum_left;
    return true;
}

RunStatus
Machine::run()
{
    PRORACE_ASSERT(!threads_.empty(), "run() with no threads");
    for (;;) {
        if (live_threads_ == 0)
            return RunStatus::kFinished;
        if (total_insns_ >= config_.max_instructions)
            return RunStatus::kInsnLimit;

        // Step the laggard core that has runnable work.
        int best_core = -1;
        for (unsigned c = 0; c < cores_.size(); ++c) {
            const Core &core = cores_[c];
            bool has_work = core.current >= 0 &&
                threads_[core.current].state == ThreadState::kRunning;
            if (!has_work) {
                for (uint32_t tid : core.threads) {
                    if (threads_[tid].state == ThreadState::kRunnable) {
                        has_work = true;
                        break;
                    }
                }
            }
            if (!has_work)
                continue;
            if (best_core < 0 ||
                core.clock < cores_[best_core].clock) {
                best_core = static_cast<int>(c);
            }
        }

        // Earliest pending I/O completion.
        int64_t io_tid = -1;
        for (const ThreadContext &t : threads_) {
            if (t.state != ThreadState::kBlockedIo)
                continue;
            if (io_tid < 0 || t.wake_time < threads_[io_tid].wake_time)
                io_tid = t.tid;
        }

        // I/O completions must be delivered *before* any core advances
        // past them; deferring a wakeup would let the woken thread run
        // "in the past" relative to cores that raced ahead, producing
        // causality-violating sync timestamps.
        if (io_tid >= 0 &&
            (best_core < 0 ||
             threads_[io_tid].wake_time <= cores_[best_core].clock)) {
            ThreadContext &t = threads_[io_tid];
            Core &core = cores_[t.core];
            // The core slept until the completion; do not bill the idle
            // gap as compute.
            core.clock = std::max(core.clock, t.wake_time);
            makeRunnable(t.tid, t.wake_time);
            continue;
        }
        if (best_core >= 0) {
            stepCore(static_cast<unsigned>(best_core));
            continue;
        }
        return RunStatus::kDeadlock;
    }
}

uint64_t
Machine::executeInsn(ThreadContext &t, Core &core)
{
    const uint32_t index = t.ip;
    const Insn &insn = program_.insnAt(index);
    uint64_t cost = 1;
    // Cache-miss-like timing noise keeps interleavings seed-dependent
    // even when each core runs a single pinned thread.
    if (config_.timing_jitter && (rng_.next() & 0x3f) == 0)
        cost += rng_.below(30);
    uint32_t next_ip = index + 1;
    bool retire = true;

    auto block = [&](ThreadState state, uint64_t on) {
        t.state = state;
        t.blocked_on = on;
        core.current = -1;
        retire = false;
        next_ip = index; // re-execute on wake
    };

    switch (insn.op) {
      case Op::kNop:
        break;

      case Op::kHalt: {
        t.state = ThreadState::kDone;
        core.current = -1;
        --live_threads_;
        cost += reportSync(t, core, SyncKind::kThreadExit, 0, 0, index);
        // Wake joiners.
        for (ThreadContext &other : threads_) {
            if (other.state == ThreadState::kBlockedJoin &&
                other.blocked_on == t.tid) {
                makeRunnable(other.tid, core.clock);
            }
        }
        break;
      }

      case Op::kMovRI:
        t.regs.set(insn.dst, static_cast<uint64_t>(insn.imm));
        break;

      case Op::kMovRR:
        t.regs.set(insn.dst, readReg(t, insn.src));
        break;

      case Op::kLoad: {
        const uint64_t addr = effectiveAddr(t, insn.mem);
        cost += reportLoad(t, core, index, addr, insn.width, false);
        const uint64_t raw = memory_.read(addr, insn.width);
        t.regs.set(insn.dst,
                   isa::extendFromWidth(raw, insn.width, insn.sign_extend));
        break;
      }

      case Op::kStore: {
        const uint64_t addr = effectiveAddr(t, insn.mem);
        cost += reportStore(t, core, index, addr, insn.width, false);
        memory_.write(addr, isa::truncateToWidth(readReg(t, insn.src),
                                                 insn.width), insn.width);
        break;
      }

      case Op::kStoreI: {
        const uint64_t addr = effectiveAddr(t, insn.mem);
        cost += reportStore(t, core, index, addr, insn.width, false);
        memory_.write(addr,
                      isa::truncateToWidth(static_cast<uint64_t>(insn.imm),
                                           insn.width), insn.width);
        break;
      }

      case Op::kLea:
        t.regs.set(insn.dst, effectiveAddr(t, insn.mem));
        break;

      case Op::kAluRR: {
        const auto r = isa::evalAlu(insn.alu, readReg(t, insn.dst),
                                    readReg(t, insn.src));
        t.regs.set(insn.dst, r.value);
        t.flags = r.flags;
        break;
      }

      case Op::kAluRI: {
        const auto r = isa::evalAlu(insn.alu, readReg(t, insn.dst),
                                    static_cast<uint64_t>(insn.imm));
        t.regs.set(insn.dst, r.value);
        t.flags = r.flags;
        break;
      }

      case Op::kCmpRR:
        t.flags = isa::evalCmp(readReg(t, insn.dst), readReg(t, insn.src));
        break;

      case Op::kCmpRI:
        t.flags = isa::evalCmp(readReg(t, insn.dst),
                               static_cast<uint64_t>(insn.imm));
        break;

      case Op::kTestRR:
        t.flags = isa::evalTest(readReg(t, insn.dst), readReg(t, insn.src));
        break;

      case Op::kTestRI:
        t.flags = isa::evalTest(readReg(t, insn.dst),
                                static_cast<uint64_t>(insn.imm));
        break;

      case Op::kJcc: {
        const bool taken = isa::condHolds(insn.cond, t.flags);
        if (taken)
            next_ip = insn.target;
        ++total_branches_;
        if (observer_) {
            BranchEvent ev{t.core, t.tid, index, taken, next_ip,
                           core.clock};
            cost += observer_->onCondBranch(ev);
        }
        break;
      }

      case Op::kJmp:
        next_ip = insn.target;
        break;

      case Op::kJmpInd: {
        next_ip = static_cast<uint32_t>(readReg(t, insn.src));
        ++total_branches_;
        if (observer_) {
            BranchEvent ev{t.core, t.tid, index, true, next_ip, core.clock};
            cost += observer_->onIndirectBranch(ev);
        }
        break;
      }

      case Op::kCall: {
        const uint64_t sp = t.regs.get(Reg::rsp) - 8;
        cost += reportStore(t, core, index, sp, 8, false);
        memory_.write(sp, index + 1, 8);
        t.regs.set(Reg::rsp, sp);
        next_ip = insn.target;
        break;
      }

      case Op::kCallInd: {
        const uint32_t target = static_cast<uint32_t>(readReg(t, insn.src));
        const uint64_t sp = t.regs.get(Reg::rsp) - 8;
        cost += reportStore(t, core, index, sp, 8, false);
        memory_.write(sp, index + 1, 8);
        t.regs.set(Reg::rsp, sp);
        next_ip = target;
        ++total_branches_;
        if (observer_) {
            BranchEvent ev{t.core, t.tid, index, true, target, core.clock};
            cost += observer_->onIndirectBranch(ev);
        }
        break;
      }

      case Op::kRet: {
        const uint64_t sp = t.regs.get(Reg::rsp);
        cost += reportLoad(t, core, index, sp, 8, false);
        next_ip = static_cast<uint32_t>(memory_.read(sp, 8));
        t.regs.set(Reg::rsp, sp + 8);
        ++total_branches_;
        if (observer_) {
            BranchEvent ev{t.core, t.tid, index, true, next_ip, core.clock};
            cost += observer_->onIndirectBranch(ev);
        }
        break;
      }

      case Op::kPush: {
        const uint64_t sp = t.regs.get(Reg::rsp) - 8;
        cost += reportStore(t, core, index, sp, 8, false);
        memory_.write(sp, readReg(t, insn.src), 8);
        t.regs.set(Reg::rsp, sp);
        break;
      }

      case Op::kPop: {
        const uint64_t sp = t.regs.get(Reg::rsp);
        cost += reportLoad(t, core, index, sp, 8, false);
        t.regs.set(insn.dst, memory_.read(sp, 8));
        t.regs.set(Reg::rsp, sp + 8);
        break;
      }

      case Op::kAtomicRmw: {
        const uint64_t addr = effectiveAddr(t, insn.mem);
        cost += reportLoad(t, core, index, addr, insn.width, true);
        const uint64_t old =
            isa::extendFromWidth(memory_.read(addr, insn.width), insn.width,
                                 false);
        const uint64_t neu =
            isa::evalAlu(insn.alu, old, readReg(t, insn.src)).value;
        cost += reportStore(t, core, index, addr, insn.width, true);
        memory_.write(addr, isa::truncateToWidth(neu, insn.width),
                      insn.width);
        t.regs.set(insn.dst, old);
        cost += 10; // lock-prefix penalty
        break;
      }

      case Op::kCas: {
        const uint64_t addr = effectiveAddr(t, insn.mem);
        cost += reportLoad(t, core, index, addr, insn.width, true);
        const uint64_t old =
            isa::extendFromWidth(memory_.read(addr, insn.width), insn.width,
                                 false);
        const uint64_t expected =
            isa::truncateToWidth(readReg(t, insn.dst), insn.width);
        if (old == expected) {
            cost += reportStore(t, core, index, addr, insn.width, true);
            memory_.write(addr,
                          isa::truncateToWidth(readReg(t, insn.src),
                                               insn.width), insn.width);
            t.flags.zf = true;
        } else {
            t.regs.set(insn.dst, old);
            t.flags.zf = false;
        }
        cost += 10;
        break;
      }

      case Op::kLock: {
        const uint64_t addr = effectiveAddr(t, insn.mem);
        MutexState &m = mutexes_[addr];
        if (lock_granted_[t.tid] &&
            m.owner == static_cast<int64_t>(t.tid)) {
            // Wake-up path: ownership was transferred while blocked.
            lock_granted_[t.tid] = false;
            cost += reportSync(t, core, SyncKind::kLock, addr, 0, index);
            cost += 20;
        } else if (m.owner < 0) {
            m.owner = t.tid;
            cost += reportSync(t, core, SyncKind::kLock, addr, 0, index);
            cost += 20;
        } else {
            // Mutexes are non-recursive: a re-acquisition by the owner
            // self-deadlocks, as PTHREAD_MUTEX_NORMAL does.
            m.waiters.push_back(t.tid);
            block(ThreadState::kBlockedMutex, addr);
        }
        break;
      }

      case Op::kUnlock: {
        const uint64_t addr = effectiveAddr(t, insn.mem);
        cost += reportSync(t, core, SyncKind::kUnlock, addr, 0, index);
        releaseMutex(addr, t, core.clock + cost);
        cost += 20;
        break;
      }

      case Op::kCondWait: {
        const uint64_t cv = effectiveAddr(t, insn.mem);
        const uint64_t mtx = readReg(t, insn.src);
        if (cond_resuming_[t.tid]) {
            // Woken and holding the mutex again: the wait retires now.
            PRORACE_ASSERT(mutexes_[mtx].owner ==
                           static_cast<int64_t>(t.tid),
                           "cond wake without mutex ownership");
            cond_resuming_[t.tid] = false;
            lock_granted_[t.tid] = false;
            cost += reportSync(t, core, SyncKind::kCondWake, cv, mtx,
                               index);
            cost += 30;
        } else {
            cost += reportSync(t, core, SyncKind::kCondWaitBegin, cv, mtx,
                               index);
            releaseMutex(mtx, t, core.clock + cost);
            t.cond_mutex = mtx;
            condvars_[cv].waiters.push_back(t.tid);
            block(ThreadState::kBlockedCond, cv);
        }
        break;
      }

      case Op::kCondSignal: {
        const uint64_t cv = effectiveAddr(t, insn.mem);
        cost += reportSync(t, core, SyncKind::kCondSignal, cv, 0, index);
        CondVarState &c = condvars_[cv];
        if (!c.waiters.empty()) {
            const uint32_t w = c.waiters.front();
            c.waiters.pop_front();
            wakeFromCond(w, threads_[w].cond_mutex, core.clock + cost);
        }
        cost += 25;
        break;
      }

      case Op::kCondBcast: {
        const uint64_t cv = effectiveAddr(t, insn.mem);
        cost += reportSync(t, core, SyncKind::kCondBroadcast, cv, 0, index);
        CondVarState &c = condvars_[cv];
        while (!c.waiters.empty()) {
            const uint32_t w = c.waiters.front();
            c.waiters.pop_front();
            wakeFromCond(w, threads_[w].cond_mutex, core.clock + cost);
        }
        cost += 25;
        break;
      }

      case Op::kBarrier: {
        const uint64_t addr = effectiveAddr(t, insn.mem);
        BarrierState &b = barriers_[addr];
        if (barrier_resuming_[t.tid]) {
            barrier_resuming_[t.tid] = false;
            cost += reportSync(t, core, SyncKind::kBarrierExit, addr, 0,
                               index);
        } else {
            cost += reportSync(t, core, SyncKind::kBarrierEnter, addr, 0,
                               index);
            ++b.arrived;
            if (b.arrived >= static_cast<uint32_t>(insn.imm)) {
                // Last arrival releases everyone.
                b.arrived = 0;
                while (!b.waiters.empty()) {
                    const uint32_t w = b.waiters.front();
                    b.waiters.pop_front();
                    barrier_resuming_[w] = true;
                    makeRunnable(w, core.clock + cost);
                }
                cost += reportSync(t, core, SyncKind::kBarrierExit, addr, 0,
                                   index);
            } else {
                b.waiters.push_back(t.tid);
                block(ThreadState::kBlockedBarrier, addr);
            }
        }
        break;
      }

      case Op::kSpawn: {
        const uint64_t arg = readReg(t, insn.src);
        const uint32_t child = addThread(insn.target, arg);
        parent_[child] = t.tid;
        threads_[child].ready_time = core.clock + cost;
        t.regs.set(insn.dst, child);
        cost += reportSync(t, core, SyncKind::kSpawn, 0, child, index);
        cost += 100; // thread-creation expense
        break;
      }

      case Op::kJoin: {
        const uint32_t target = static_cast<uint32_t>(readReg(t, insn.src));
        PRORACE_ASSERT(target < threads_.size(), "join of unknown tid ",
                       target);
        if (threads_[target].state == ThreadState::kDone) {
            cost += reportSync(t, core, SyncKind::kJoin, 0, target, index);
        } else {
            block(ThreadState::kBlockedJoin, target);
        }
        break;
      }

      case Op::kMalloc: {
        const uint64_t size = readReg(t, insn.src);
        const uint64_t addr = heapAlloc(size);
        t.regs.set(insn.dst, addr);
        cost += reportSync(t, core, SyncKind::kMalloc, addr, size, index);
        cost += 30;
        break;
      }

      case Op::kFree: {
        const uint64_t addr = readReg(t, insn.src);
        cost += reportSync(t, core, SyncKind::kFree, addr, 0, index);
        heapFree(addr);
        cost += 30;
        break;
      }

      case Op::kRwRdLock: {
        const uint64_t addr = effectiveAddr(t, insn.mem);
        RwLockState &rw = rwlocks_[addr];
        if (rw_granted_[t.tid]) {
            // Wake-up path: admitted while blocked (readers/writer
            // already updated by drainRwWaiters).
            rw_granted_[t.tid] = false;
            cost += reportSync(t, core, SyncKind::kRwRdLock, addr, 0,
                               index);
            cost += 20;
        } else if (rw.writer < 0 && rw.waiters.empty()) {
            ++rw.readers;
            cost += reportSync(t, core, SyncKind::kRwRdLock, addr, 0,
                               index);
            cost += 20;
        } else {
            // A pending writer blocks new readers (writer preference
            // keeps the FIFO fair).
            rw.waiters.emplace_back(t.tid, false);
            block(ThreadState::kBlockedRwLock, addr);
        }
        break;
      }

      case Op::kRwWrLock: {
        const uint64_t addr = effectiveAddr(t, insn.mem);
        RwLockState &rw = rwlocks_[addr];
        if (rw_granted_[t.tid]) {
            rw_granted_[t.tid] = false;
            cost += reportSync(t, core, SyncKind::kRwWrLock, addr, 0,
                               index);
            cost += 20;
        } else if (rw.writer < 0 && rw.readers == 0 &&
                   rw.waiters.empty()) {
            rw.writer = t.tid;
            cost += reportSync(t, core, SyncKind::kRwWrLock, addr, 0,
                               index);
            cost += 20;
        } else {
            rw.waiters.emplace_back(t.tid, true);
            block(ThreadState::kBlockedRwLock, addr);
        }
        break;
      }

      case Op::kRwUnlock: {
        const uint64_t addr = effectiveAddr(t, insn.mem);
        RwLockState &rw = rwlocks_[addr];
        const bool was_writer = rw.writer == static_cast<int64_t>(t.tid);
        if (was_writer) {
            rw.writer = -1;
        } else {
            PRORACE_ASSERT(rw.readers > 0, "thread ", t.tid,
                           " releasing rwlock it does not hold");
            --rw.readers;
        }
        cost += reportSync(t, core, SyncKind::kRwUnlock, addr,
                           was_writer ? 1 : 0, index);
        drainRwWaiters(rw, core.clock + cost);
        cost += 20;
        break;
      }

      case Op::kSemInit: {
        const uint64_t addr = effectiveAddr(t, insn.mem);
        semaphores_[addr].value = insn.imm;
        cost += reportSync(t, core, SyncKind::kSemInit, addr,
                           static_cast<uint64_t>(insn.imm), index);
        cost += 20;
        break;
      }

      case Op::kSemWait: {
        const uint64_t addr = effectiveAddr(t, insn.mem);
        SemState &s = semaphores_[addr];
        if (sem_granted_[t.tid]) {
            // A post handed this thread its count directly.
            sem_granted_[t.tid] = false;
            cost += reportSync(t, core, SyncKind::kSemWait, addr, 0,
                               index);
            cost += 20;
        } else if (s.value > 0) {
            --s.value;
            cost += reportSync(t, core, SyncKind::kSemWait, addr, 0,
                               index);
            cost += 20;
        } else {
            s.waiters.push_back(t.tid);
            block(ThreadState::kBlockedSem, addr);
        }
        break;
      }

      case Op::kSemPost: {
        const uint64_t addr = effectiveAddr(t, insn.mem);
        SemState &s = semaphores_[addr];
        cost += reportSync(t, core, SyncKind::kSemPost, addr, 0, index);
        if (!s.waiters.empty()) {
            const uint32_t w = s.waiters.front();
            s.waiters.pop_front();
            sem_granted_[w] = true;
            makeRunnable(w, core.clock + cost);
        } else {
            ++s.value;
        }
        cost += 20;
        break;
      }

      case Op::kSpinLock: {
        const uint64_t addr = effectiveAddr(t, insn.mem);
        MutexState &m = spinlocks_[addr];
        if (spin_granted_[t.tid] &&
            m.owner == static_cast<int64_t>(t.tid)) {
            spin_granted_[t.tid] = false;
            cost += reportSync(t, core, SyncKind::kSpinLock, addr, 0,
                               index);
            cost += 5;
        } else if (m.owner < 0) {
            m.owner = t.tid;
            cost += reportSync(t, core, SyncKind::kSpinLock, addr, 0,
                               index);
            cost += 5;
        } else {
            // Spinning is modeled as blocking with handoff: the cycles a
            // real spinner would burn are charged as contention latency
            // without flooding the trace with retried CAS loops.
            m.waiters.push_back(t.tid);
            block(ThreadState::kBlockedSpin, addr);
        }
        break;
      }

      case Op::kSpinUnlock: {
        const uint64_t addr = effectiveAddr(t, insn.mem);
        MutexState &m = spinlocks_[addr];
        PRORACE_ASSERT(m.owner == static_cast<int64_t>(t.tid), "thread ",
                       t.tid, " releasing spinlock it does not own");
        cost += reportSync(t, core, SyncKind::kSpinUnlock, addr, 0,
                           index);
        if (!m.waiters.empty()) {
            const uint32_t next = m.waiters.front();
            m.waiters.pop_front();
            m.owner = next;
            spin_granted_[next] = true;
            makeRunnable(next, core.clock + cost);
        } else {
            m.owner = -1;
        }
        cost += 5;
        break;
      }

      case Op::kLoadAcq: {
        const uint64_t addr = effectiveAddr(t, insn.mem);
        cost += reportSync(t, core, SyncKind::kAtomicAcquire, addr, 0,
                           index);
        cost += reportLoad(t, core, index, addr, insn.width, true);
        const uint64_t raw = memory_.read(addr, insn.width);
        t.regs.set(insn.dst, isa::extendFromWidth(raw, insn.width, false));
        cost += 2; // acquire fence
        break;
      }

      case Op::kStoreRel: {
        const uint64_t addr = effectiveAddr(t, insn.mem);
        cost += reportStore(t, core, index, addr, insn.width, true);
        memory_.write(addr, isa::truncateToWidth(readReg(t, insn.src),
                                                 insn.width), insn.width);
        cost += reportSync(t, core, SyncKind::kAtomicRelease, addr, 0,
                           index);
        cost += 2; // release fence
        break;
      }

      case Op::kAtomicRmwAcqRel: {
        const uint64_t addr = effectiveAddr(t, insn.mem);
        cost += reportLoad(t, core, index, addr, insn.width, true);
        const uint64_t old =
            isa::extendFromWidth(memory_.read(addr, insn.width), insn.width,
                                 false);
        const uint64_t neu =
            isa::evalAlu(insn.alu, old, readReg(t, insn.src)).value;
        cost += reportStore(t, core, index, addr, insn.width, true);
        memory_.write(addr, isa::truncateToWidth(neu, insn.width),
                      insn.width);
        t.regs.set(insn.dst, old);
        cost += reportSync(t, core, SyncKind::kAtomicAcqRel, addr, 0,
                           index);
        cost += 10; // lock-prefix penalty
        break;
      }

      case Op::kSyscall: {
        t.regs.set(Reg::rax, static_cast<uint64_t>(insn.imm));
        switch (insn.sysno) {
          case SyscallNo::kYield:
            core.quantum_left = 1;
            cost += 50;
            break;
          case SyscallNo::kNone:
            cost += 50;
            break;
          case SyscallNo::kRead:
          case SyscallNo::kWrite: {
            uint64_t latency = static_cast<uint64_t>(insn.imm);
            if (observer_) {
                latency += observer_->onIoSyscall(t.tid, insn.sysno,
                                                  latency);
            }
            t.state = ThreadState::kBlockedIo;
            t.wake_time = core.clock + cost + latency;
            t.ready_time = t.wake_time;
            core.current = -1;
            break;
          }
          case SyscallNo::kNetSend:
          case SyscallNo::kNetRecv:
          case SyscallNo::kSleep: {
            const uint64_t latency = static_cast<uint64_t>(insn.imm);
            t.state = ThreadState::kBlockedIo;
            t.wake_time = core.clock + cost + latency;
            t.ready_time = t.wake_time;
            core.current = -1;
            break;
          }
        }
        break;
      }
    }

    if (retire) {
        t.ip = next_ip;
        ++t.retired_insns;
        ++total_insns_;
        if (config_.record_path_log)
            path_log_.emplace_back(t.tid, index);
    }
    return cost;
}

} // namespace prorace::vm

#include "vm/hooks.hh"

namespace prorace::vm {

const char *
syncKindName(SyncKind kind)
{
    switch (kind) {
      case SyncKind::kLock:          return "lock";
      case SyncKind::kUnlock:        return "unlock";
      case SyncKind::kCondWaitBegin: return "cond-wait";
      case SyncKind::kCondWake:      return "cond-wake";
      case SyncKind::kCondSignal:    return "cond-signal";
      case SyncKind::kCondBroadcast: return "cond-broadcast";
      case SyncKind::kBarrierEnter:  return "barrier-enter";
      case SyncKind::kBarrierExit:   return "barrier-exit";
      case SyncKind::kSpawn:         return "spawn";
      case SyncKind::kThreadStart:   return "thread-start";
      case SyncKind::kThreadExit:    return "thread-exit";
      case SyncKind::kJoin:          return "join";
      case SyncKind::kMalloc:        return "malloc";
      case SyncKind::kFree:          return "free";
      case SyncKind::kRwRdLock:      return "rw-rdlock";
      case SyncKind::kRwWrLock:      return "rw-wrlock";
      case SyncKind::kRwUnlock:      return "rw-unlock";
      case SyncKind::kSemInit:       return "sem-init";
      case SyncKind::kSemWait:       return "sem-wait";
      case SyncKind::kSemPost:       return "sem-post";
      case SyncKind::kSpinLock:      return "spin-lock";
      case SyncKind::kSpinUnlock:    return "spin-unlock";
      case SyncKind::kAtomicAcquire: return "atomic-acquire";
      case SyncKind::kAtomicRelease: return "atomic-release";
      case SyncKind::kAtomicAcqRel:  return "atomic-acqrel";
    }
    return "?";
}

} // namespace prorace::vm

#include "vm/memory.hh"

#include "support/log.hh"

namespace prorace::vm {

uint8_t
Memory::readByte(uint64_t addr) const
{
    auto it = pages_.find(addr >> kPageShift);
    if (it == pages_.end())
        return 0;
    return (*it->second)[addr & (kPageSize - 1)];
}

void
Memory::writeByte(uint64_t addr, uint8_t value)
{
    pageFor(addr)[addr & (kPageSize - 1)] = value;
}

Memory::Page &
Memory::pageFor(uint64_t addr)
{
    auto &slot = pages_[addr >> kPageShift];
    if (!slot)
        slot = std::make_unique<Page>();
    return *slot;
}

uint64_t
Memory::read(uint64_t addr, uint8_t width) const
{
    uint64_t value = 0;
    for (unsigned i = 0; i < width; ++i)
        value |= static_cast<uint64_t>(readByte(addr + i)) << (8 * i);
    return value;
}

void
Memory::write(uint64_t addr, uint64_t value, uint8_t width)
{
    for (unsigned i = 0; i < width; ++i)
        writeByte(addr + i, static_cast<uint8_t>(value >> (8 * i)));
}

void
Memory::writeBytes(uint64_t addr, const std::vector<uint8_t> &bytes)
{
    for (size_t i = 0; i < bytes.size(); ++i)
        writeByte(addr + i, bytes[i]);
}

} // namespace prorace::vm

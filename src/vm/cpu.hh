/**
 * @file
 * Per-thread architectural state: register file, flags, thread status.
 */

#ifndef PRORACE_VM_CPU_HH
#define PRORACE_VM_CPU_HH

#include <array>
#include <cstdint>

#include "isa/flags.hh"
#include "isa/reg.hh"

namespace prorace::vm {

/** The sixteen general-purpose registers of one thread. */
struct RegFile {
    std::array<uint64_t, isa::kNumGprs> gpr{};

    uint64_t
    get(isa::Reg r) const
    {
        return gpr[isa::gprIndex(r)];
    }

    void
    set(isa::Reg r, uint64_t value)
    {
        gpr[isa::gprIndex(r)] = value;
    }

    bool operator==(const RegFile &) const = default;
};

/** Scheduling state of a thread. */
enum class ThreadState : uint8_t {
    kRunnable,      ///< ready to execute
    kRunning,       ///< currently scheduled on a core
    kBlockedMutex,  ///< waiting to acquire a mutex
    kBlockedCond,   ///< waiting on a condition variable
    kBlockedBarrier,///< waiting at a barrier
    kBlockedRwLock, ///< waiting to acquire a reader/writer lock
    kBlockedSem,    ///< waiting for a semaphore count
    kBlockedSpin,   ///< spinning on a held spinlock
    kBlockedJoin,   ///< waiting for another thread to exit
    kBlockedIo,     ///< waiting for a modeled I/O completion
    kDone,          ///< exited
};

/** Full per-thread context maintained by the machine. */
struct ThreadContext {
    uint32_t tid = 0;
    unsigned core = 0;          ///< core the thread is pinned to
    RegFile regs;
    isa::Flags flags;
    uint32_t ip = 0;            ///< next instruction index
    uint32_t entry_ip = 0;      ///< first instruction of the thread
    ThreadState state = ThreadState::kRunnable;

    uint64_t blocked_on = 0;    ///< sync object address or joined tid
    uint64_t cond_mutex = 0;    ///< mutex to reacquire after a cond wait
    uint64_t wake_time = 0;     ///< earliest cycle an I/O block may end
    uint64_t ready_time = 0;    ///< cycle the thread last became runnable

    uint64_t retired_insns = 0;
    uint64_t retired_mem_ops = 0;
    uint64_t sync_ops = 0;
};

} // namespace prorace::vm

#endif // PRORACE_VM_CPU_HH

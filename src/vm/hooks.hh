/**
 * @file
 * Observation interface between the machine and the tracing stack.
 *
 * The machine knows nothing about PEBS, PT, drivers, or sync tracing; it
 * reports retirement events through this interface and charges whatever
 * extra cycles the observer returns (the tracing overhead model).
 */

#ifndef PRORACE_VM_HOOKS_HH
#define PRORACE_VM_HOOKS_HH

#include <cstdint>

#include "isa/opcode.hh"
#include "vm/cpu.hh"

namespace prorace::vm {

/** A retired load or store (PEBS-visible event). */
struct MemOpEvent {
    unsigned core = 0;
    uint32_t tid = 0;
    uint32_t insn_index = 0;   ///< sampled instruction address
    uint64_t addr = 0;         ///< effective data address
    uint8_t width = 8;
    bool is_write = false;
    bool is_atomic = false;
    uint64_t tsc = 0;
    const RegFile *regs = nullptr; ///< state *before* the instruction
};

/** A retired control transfer (PT-visible event). */
struct BranchEvent {
    unsigned core = 0;
    uint32_t tid = 0;
    uint32_t insn_index = 0;
    bool taken = false;        ///< for conditional branches
    uint32_t target = 0;       ///< for taken/indirect transfers
    uint64_t tsc = 0;
};

/** Kinds of synchronization records (libc-interposition-visible). */
enum class SyncKind : uint8_t {
    kLock = 0,
    kUnlock,
    kCondWaitBegin,  ///< releases the mutex, blocks on the condvar
    kCondWake,       ///< woken: has reacquired the mutex
    kCondSignal,
    kCondBroadcast,
    kBarrierEnter,
    kBarrierExit,
    kSpawn,          ///< aux = child tid
    kThreadStart,    ///< first event of a thread; aux = parent tid
    kThreadExit,
    kJoin,           ///< aux = joined tid
    kMalloc,         ///< object = block address, aux = size
    kFree,           ///< object = block address
    kRwRdLock,       ///< acquired rwlock for reading
    kRwWrLock,       ///< acquired rwlock for writing
    kRwUnlock,       ///< released rwlock; aux = 1 when write mode
    kSemInit,        ///< semaphore initialized; aux = initial count
    kSemWait,        ///< P completed (count taken)
    kSemPost,        ///< V completed
    kSpinLock,       ///< acquired spinlock
    kSpinUnlock,     ///< released spinlock
    kAtomicAcquire,  ///< acquire-ordered atomic load
    kAtomicRelease,  ///< release-ordered atomic store
    kAtomicAcqRel,   ///< acquire+release atomic RMW
};

/** Largest valid SyncKind value (decode-time range check). */
inline constexpr uint8_t kMaxSyncKind =
    static_cast<uint8_t>(SyncKind::kAtomicAcqRel);

/** Printable sync-kind name. */
const char *syncKindName(SyncKind kind);

/** A synchronization or allocation event. */
struct SyncEvent {
    uint32_t tid = 0;
    SyncKind kind = SyncKind::kLock;
    uint64_t object = 0;   ///< sync object / block address
    uint64_t aux = 0;      ///< kind-specific payload
    uint64_t tsc = 0;
    uint32_t insn_index = 0;
};

/**
 * Machine observer. Default implementations observe nothing and charge
 * no cycles; the tracing stack overrides what it needs.
 */
class ExecutionObserver
{
  public:
    virtual ~ExecutionObserver() = default;

    /** A load/store retired. @return extra cycles charged to the core. */
    virtual uint64_t onMemOp(const MemOpEvent &) { return 0; }

    /** A conditional branch retired. @return extra cycles. */
    virtual uint64_t onCondBranch(const BranchEvent &) { return 0; }

    /** An indirect jmp, indirect call, or ret retired. @return extra. */
    virtual uint64_t onIndirectBranch(const BranchEvent &) { return 0; }

    /**
     * A core switched to a (possibly new) thread; @p ip is the
     * instruction index the thread resumes at (PT context packets
     * carry it as a decoder re-anchor point).
     */
    virtual void onContextSwitch(unsigned core, uint32_t tid, uint64_t tsc,
                                 uint32_t ip)
    {
        (void)core; (void)tid; (void)tsc; (void)ip;
    }

    /** A sync/allocation op retired. @return extra cycles. */
    virtual uint64_t onSync(const SyncEvent &) { return 0; }

    /**
     * Extra latency added to a file-I/O syscall (models contention with
     * trace-file writes sharing the storage device).
     */
    virtual uint64_t
    onIoSyscall(uint32_t tid, isa::SyscallNo no, uint64_t latency)
    {
        (void)tid; (void)no; (void)latency;
        return 0;
    }
};

} // namespace prorace::vm

#endif // PRORACE_VM_HOOKS_HH

/**
 * @file
 * Oracle scorer: joins ProRace race reports against the generator's
 * ground truth (oracle/generator.hh) and computes recall, precision,
 * and false-positive counts for one (workload, pipeline config) run.
 *
 * Pairs are compared at the same normalized (min insn, max insn)
 * granularity RaceReport deduplicates on, so the join is exact: a
 * reported pair either is a planted race or it is spurious.
 */

#ifndef PRORACE_ORACLE_SCORER_HH
#define PRORACE_ORACLE_SCORER_HH

#include <cstddef>

#include "detect/report.hh"
#include "oracle/generator.hh"

namespace prorace::oracle {

/** Join of one race report against one ground truth. */
struct OracleScore {
    size_t truth_pairs = 0;     ///< planted racy pairs
    size_t detected_pairs = 0;  ///< planted pairs present in the report
    size_t reported_pairs = 0;  ///< distinct pairs the report contains
    size_t false_positives = 0; ///< reported pairs not in the truth

    RacePairSet missed;   ///< planted pairs the report lacks
    RacePairSet spurious; ///< reported pairs the truth lacks

    /** detected / truth; 1.0 for an empty truth. */
    double recall() const;
    /** detected / reported; 1.0 for an empty report. */
    double precision() const;
};

/** Distinct normalized instruction pairs in @p report. */
RacePairSet reportPairs(const detect::RaceReport &report);

/** Score @p report against @p truth. */
OracleScore scoreReport(const GroundTruth &truth,
                        const detect::RaceReport &report);

/** Running aggregate over many scored runs. */
struct ScoreAccumulator {
    size_t runs = 0;
    size_t truth_pairs = 0;
    size_t detected_pairs = 0;
    size_t reported_pairs = 0;
    size_t false_positives = 0;

    void add(const OracleScore &score);
    /** Pair-weighted mean recall across all added runs. */
    double recall() const;
    /** Pair-weighted mean precision across all added runs. */
    double precision() const;
};

} // namespace prorace::oracle

#endif // PRORACE_ORACLE_SCORER_HH

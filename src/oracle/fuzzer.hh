/**
 * @file
 * Differential fuzzers for the execution core.
 *
 * Three oracles, all seeded and deterministic:
 *
 *  - fuzzAluSemantics: isa/semantics.cc (evalAlu/evalCmp/evalTest,
 *    truncate/extend, effectiveAddress, invertAlu) against the
 *    independent reference formulas in oracle/ref_interp.hh, over
 *    boundary-heavy random operands.
 *
 *  - fuzzMachineForward: whole random straight-line programs (ALU,
 *    flag probes, loads/stores of every width, push/pop, atomics)
 *    executed by vm::Machine and by RefInterp, comparing final
 *    registers, flags, and every written memory byte. On divergence
 *    the failing program is shrunk by greedy unit removal and the
 *    minimized listing embedded in FuzzStats::failure.
 *
 *  - fuzzReverseExecution: forward chains of ALU operations inverted
 *    step by step with isa::invertAlu — the primitive backward replay
 *    rests on — checking every intermediate register value round-trips,
 *    and that non-invertible operations are refused.
 *
 * A failure message always contains the options seed, so any CI hit
 * reproduces locally with PRORACE_TEST_SEED=<seed>.
 */

#ifndef PRORACE_ORACLE_FUZZER_HH
#define PRORACE_ORACLE_FUZZER_HH

#include <cstdint>
#include <string>

namespace prorace::oracle {

/** Fuzz campaign knobs. */
struct FuzzOptions {
    uint64_t seed = 1;
    /** Stop once this many instructions/checks have executed. */
    uint64_t min_instructions = 10'000;
    /** Generated units per forward-fuzz program (~1–3 insns each). */
    uint32_t units_per_program = 24;
};

/** Campaign outcome. */
struct FuzzStats {
    uint64_t programs = 0;     ///< programs (or operand batches) run
    uint64_t instructions = 0; ///< instructions executed / checks made
    uint64_t mismatches = 0;   ///< divergences found
    std::string failure;       ///< first failure, minimized, with seed
};

FuzzStats fuzzAluSemantics(const FuzzOptions &options);
FuzzStats fuzzMachineForward(const FuzzOptions &options);
FuzzStats fuzzReverseExecution(const FuzzOptions &options);

} // namespace prorace::oracle

#endif // PRORACE_ORACLE_FUZZER_HH

#include "oracle/ref_interp.hh"

#include "isa/opcode.hh"

namespace prorace::oracle {

using isa::AluOp;
using isa::CondCode;
using isa::Flags;
using isa::Insn;
using isa::MemOperand;
using isa::Op;
using isa::Reg;

// All value/flag math below is written independently of
// isa/semantics.cc: 128-bit arithmetic for carries, xor masks for
// signed overflow, and cast-based narrowing — so a shared bug cannot
// hide in shared code.

Flags
refLogicFlags(uint64_t value)
{
    Flags f;
    f.zf = value == 0;
    f.sf = (value >> 63) != 0;
    return f;
}

RefAluResult
refAlu(AluOp op, uint64_t a, uint64_t b)
{
    RefAluResult r;
    switch (op) {
      case AluOp::kAdd: {
        const unsigned __int128 wide =
            static_cast<unsigned __int128>(a) + b;
        r.value = static_cast<uint64_t>(wide);
        r.flags = refLogicFlags(r.value);
        r.flags.cf = (wide >> 64) != 0;
        r.flags.of = ((~(a ^ b) & (a ^ r.value)) >> 63) != 0;
        break;
      }
      case AluOp::kSub: {
        const unsigned __int128 wide =
            static_cast<unsigned __int128>(a) - b;
        r.value = static_cast<uint64_t>(wide);
        r.flags = refLogicFlags(r.value);
        r.flags.cf = (wide >> 64) != 0;
        r.flags.of = (((a ^ b) & (a ^ r.value)) >> 63) != 0;
        break;
      }
      case AluOp::kAnd:
        r.value = a & b;
        r.flags = refLogicFlags(r.value);
        break;
      case AluOp::kOr:
        r.value = a | b;
        r.flags = refLogicFlags(r.value);
        break;
      case AluOp::kXor:
        r.value = a ^ b;
        r.flags = refLogicFlags(r.value);
        break;
      case AluOp::kMul:
        r.value = static_cast<uint64_t>(
            static_cast<unsigned __int128>(a) * b);
        r.flags = refLogicFlags(r.value);
        break;
      case AluOp::kShl:
        r.value = a << (b & 63);
        r.flags = refLogicFlags(r.value);
        break;
      case AluOp::kShr:
        r.value = a >> (b & 63);
        r.flags = refLogicFlags(r.value);
        break;
      case AluOp::kSar: {
        const unsigned count = b & 63;
        uint64_t v = a >> count;
        if (count != 0 && (a >> 63) != 0)
            v |= ~0ull << (64 - count);
        r.value = v;
        r.flags = refLogicFlags(r.value);
        break;
      }
    }
    return r;
}

uint64_t
refNarrow(uint64_t value, uint8_t width)
{
    switch (width) {
      case 1: return static_cast<uint8_t>(value);
      case 2: return static_cast<uint16_t>(value);
      case 4: return static_cast<uint32_t>(value);
      default: return value;
    }
}

uint64_t
refWiden(uint64_t value, uint8_t width, bool sign_extend)
{
    if (!sign_extend)
        return refNarrow(value, width);
    switch (width) {
      case 1:
        return static_cast<uint64_t>(
            static_cast<int64_t>(static_cast<int8_t>(value)));
      case 2:
        return static_cast<uint64_t>(
            static_cast<int64_t>(static_cast<int16_t>(value)));
      case 4:
        return static_cast<uint64_t>(
            static_cast<int64_t>(static_cast<int32_t>(value)));
      default:
        return value;
    }
}

namespace {

bool
refCond(CondCode cc, const Flags &f)
{
    switch (cc) {
      case CondCode::kEq: return f.zf;
      case CondCode::kNe: return !f.zf;
      case CondCode::kLt: return f.sf != f.of;
      case CondCode::kLe: return f.zf || f.sf != f.of;
      case CondCode::kGt: return !(f.zf || f.sf != f.of);
      case CondCode::kGe: return f.sf == f.of;
      case CondCode::kB:  return f.cf;
      case CondCode::kBe: return f.cf || f.zf;
      case CondCode::kA:  return !(f.cf || f.zf);
      case CondCode::kAe: return !f.cf;
      case CondCode::kS:  return f.sf;
      case CondCode::kNs: return !f.sf;
    }
    return false;
}

} // namespace

RefInterp::RefInterp(std::vector<Insn> code) : code_(std::move(code)) {}

uint64_t
RefInterp::reg(Reg r) const
{
    return gpr_[isa::gprIndex(r)];
}

void
RefInterp::setReg(Reg r, uint64_t value)
{
    gpr_[isa::gprIndex(r)] = value;
}

uint64_t
RefInterp::readMem(uint64_t addr, uint8_t width) const
{
    uint64_t value = 0;
    for (unsigned i = 0; i < width; ++i) {
        const auto it = bytes_.find(addr + i);
        const uint64_t byte = it == bytes_.end() ? 0 : it->second;
        value |= byte << (8 * i);
    }
    return value;
}

void
RefInterp::writeMem(uint64_t addr, uint64_t value, uint8_t width)
{
    for (unsigned i = 0; i < width; ++i)
        bytes_[addr + i] = static_cast<uint8_t>(value >> (8 * i));
}

RefStatus
RefInterp::run(uint32_t entry, uint64_t max_steps)
{
    uint32_t ip = entry;
    steps_ = 0;
    error_.clear();

    const auto ea = [this](const MemOperand &mem) -> uint64_t {
        if (mem.rip_relative)
            return static_cast<uint64_t>(mem.disp);
        uint64_t addr = static_cast<uint64_t>(mem.disp);
        if (mem.base != Reg::none)
            addr += reg(mem.base);
        if (mem.index != Reg::none)
            addr += reg(mem.index) * mem.scale;
        return addr;
    };

    while (steps_ < max_steps) {
        if (ip >= code_.size()) {
            error_ = "ip " + std::to_string(ip) + " out of range";
            return RefStatus::kUnsupported;
        }
        const Insn &insn = code_[ip];
        uint32_t next_ip = ip + 1;
        ++steps_;

        switch (insn.op) {
          case Op::kNop:
            break;
          case Op::kHalt:
            return RefStatus::kHalted;
          case Op::kMovRI:
            setReg(insn.dst, static_cast<uint64_t>(insn.imm));
            break;
          case Op::kMovRR:
            setReg(insn.dst, reg(insn.src));
            break;
          case Op::kLoad:
            setReg(insn.dst, refWiden(readMem(ea(insn.mem), insn.width),
                                      insn.width, insn.sign_extend));
            break;
          case Op::kStore:
            writeMem(ea(insn.mem), refNarrow(reg(insn.src), insn.width),
                     insn.width);
            break;
          case Op::kStoreI:
            writeMem(ea(insn.mem),
                     refNarrow(static_cast<uint64_t>(insn.imm),
                               insn.width),
                     insn.width);
            break;
          case Op::kLea:
            setReg(insn.dst, ea(insn.mem));
            break;
          case Op::kAluRR: {
            const RefAluResult r = refAlu(insn.alu, reg(insn.dst),
                                    reg(insn.src));
            setReg(insn.dst, r.value);
            flags_ = r.flags;
            break;
          }
          case Op::kAluRI: {
            const RefAluResult r = refAlu(insn.alu, reg(insn.dst),
                                    static_cast<uint64_t>(insn.imm));
            setReg(insn.dst, r.value);
            flags_ = r.flags;
            break;
          }
          case Op::kCmpRR:
            flags_ = refAlu(AluOp::kSub, reg(insn.dst),
                            reg(insn.src)).flags;
            break;
          case Op::kCmpRI:
            flags_ = refAlu(AluOp::kSub, reg(insn.dst),
                            static_cast<uint64_t>(insn.imm)).flags;
            break;
          case Op::kTestRR:
            flags_ = refLogicFlags(reg(insn.dst) & reg(insn.src));
            break;
          case Op::kTestRI:
            flags_ = refLogicFlags(reg(insn.dst) &
                                   static_cast<uint64_t>(insn.imm));
            break;
          case Op::kJcc:
            if (refCond(insn.cond, flags_))
                next_ip = insn.target;
            break;
          case Op::kJmp:
            next_ip = insn.target;
            break;
          case Op::kPush: {
            const uint64_t sp = reg(Reg::rsp) - 8;
            writeMem(sp, reg(insn.src), 8);
            setReg(Reg::rsp, sp);
            break;
          }
          case Op::kPop: {
            const uint64_t sp = reg(Reg::rsp);
            setReg(insn.dst, readMem(sp, 8));
            setReg(Reg::rsp, sp + 8);
            break;
          }
          case Op::kAtomicRmw:
          case Op::kAtomicRmwAcqRel: {
            // Single-threaded, so atomicity and ordering are moot:
            // plain RMW that leaves the flags alone and returns the
            // old value.
            const uint64_t addr = ea(insn.mem);
            const uint64_t old =
                refWiden(readMem(addr, insn.width), insn.width, false);
            const uint64_t neu =
                refAlu(insn.alu, old, reg(insn.src)).value;
            writeMem(addr, refNarrow(neu, insn.width), insn.width);
            setReg(insn.dst, old);
            break;
          }
          case Op::kLoadAcq:
            // Acquire ordering is invisible single-threaded; the value
            // semantics are a zero-extending load.
            setReg(insn.dst, refWiden(readMem(ea(insn.mem), insn.width),
                                      insn.width, false));
            break;
          case Op::kStoreRel:
            writeMem(ea(insn.mem), refNarrow(reg(insn.src), insn.width),
                     insn.width);
            break;
          case Op::kRwRdLock:
          case Op::kRwWrLock:
          case Op::kRwUnlock:
          case Op::kSpinLock:
          case Op::kSpinUnlock:
            // Uncontended single-threaded locking has no data effect.
            break;
          case Op::kSemInit:
            sems_[ea(insn.mem)] = insn.imm;
            break;
          case Op::kSemPost:
            ++sems_[ea(insn.mem)];
            break;
          case Op::kSemWait: {
            int64_t &value = sems_[ea(insn.mem)];
            if (value <= 0) {
                // No other thread can post: this is a self-deadlock.
                error_ = "sem_wait on empty semaphore would block";
                return RefStatus::kUnsupported;
            }
            --value;
            break;
          }
          case Op::kCas: {
            const uint64_t addr = ea(insn.mem);
            const uint64_t old =
                refWiden(readMem(addr, insn.width), insn.width, false);
            if (old == refNarrow(reg(insn.dst), insn.width)) {
                writeMem(addr, refNarrow(reg(insn.src), insn.width),
                         insn.width);
                flags_.zf = true; // only zf is defined by cas
            } else {
                setReg(insn.dst, old);
                flags_.zf = false;
            }
            break;
          }
          default:
            error_ = std::string("unsupported op ") + isa::opName(insn.op);
            return RefStatus::kUnsupported;
        }
        ip = next_ip;
    }
    return RefStatus::kStepLimit;
}

} // namespace prorace::oracle

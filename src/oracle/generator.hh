/**
 * @file
 * Seeded planted-race workload generator.
 *
 * Hand-written racy scenarios (workload/racybugs.cc) cover twelve bug
 * shapes; measuring detector *quality* — recall under a sampling
 * budget — needs arbitrarily many scenarios with exact ground truth.
 * This generator synthesizes parameterized multi-threaded programs
 * over the same code-generation kernels the curated workloads use and
 * emits, alongside each program, the exact set of racy instruction
 * pairs it planted. The pair set is the oracle the scorer
 * (oracle/scorer.hh) joins race reports against.
 *
 * Generation is a pure function of GeneratorConfig: the same config
 * (and in particular the same seed) always yields a byte-identical
 * program and ground truth, so a (config, machine seed) pair names one
 * exact experiment.
 */

#ifndef PRORACE_ORACLE_GENERATOR_HH
#define PRORACE_ORACLE_GENERATOR_HH

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "workload/workload.hh"

namespace prorace::oracle {

/** Synchronization discipline of one shared site. */
enum class SiteDiscipline : uint8_t {
    kRacy,   ///< plain unsynchronized load + store (the planted race)
    kLocked, ///< same update under the global stats lock (no race)
    kAtomic, ///< atomic read-modify-write (no race)

    // Rich-sync-vocabulary families. The racy ones are constructed so
    // the planted pairs are happens-before races under EVERY schedule
    // (no seed-dependent edge can serialize them), which is what lets
    // the scorer demand 100% recall at sampling period 1.

    /** rdlock; counter++; unlock — readers never synchronize (racy). */
    kRwUpgradeRacy,
    /** wait on a pre-credited semaphore "for ordering"; no edge (racy). */
    kSemMisuseRacy,
    /** counter++ outside the spinlock that guards a nearby flag (racy). */
    kSpinPubRacy,
    /** relaxed atomic RMW vs a plain load of the same cell (racy). */
    kAtomicRelaxedRacy,
    /** mixed rdlock readers / wrlock writer; read-shared path (clean). */
    kRwLocked,
    /** binary semaphore used as a mutex: post/wait chain (clean). */
    kSemSignal,
    /** the same counter++ inside the spinlock (clean). */
    kSpinLocked,
    /** once-only store-release publication + load-acquire (clean). */
    kAtomicRelAcq,
};

/** Printable discipline name. */
const char *siteDisciplineName(SiteDiscipline d);

/** True for the disciplines that plant a race. */
bool siteDisciplineRacy(SiteDiscipline d);

/** Ground truth for one generated shared site. */
struct SiteTruth {
    std::string symbol;            ///< global backing the site's storage
    SiteDiscipline discipline = SiteDiscipline::kRacy;
    workload::AddressKind kind = workload::AddressKind::kPcRelative;
    uint64_t addr = 0;             ///< racy/shared location
    uint8_t width = 8;             ///< access width in bytes
    uint32_t load_insn = 0;        ///< the site's load instruction
    uint32_t store_insn = 0;       ///< the site's store instruction
};

/** Normalized (min, max) instruction pairs. */
using RacePairSet = std::set<std::pair<uint32_t, uint32_t>>;

/** Exact ground truth emitted beside a generated program. */
struct GroundTruth {
    /**
     * Every racy instruction pair the program contains, at the same
     * (min, max) granularity RaceReport deduplicates on. For a racy
     * site with load L and store S this is {(L,S), (S,S)}: the store
     * races with concurrent loads and with itself across threads; two
     * loads never race.
     */
    RacePairSet racy_pairs;

    /** Per-site detail (racy and non-racy alike, for precision checks). */
    std::vector<SiteTruth> sites;

    /** Racy pairs planted at @p site (empty for non-racy sites). */
    static RacePairSet pairsOf(const SiteTruth &site);
};

/** Knobs of one generated workload. */
struct GeneratorConfig {
    uint64_t seed = 1;        ///< sole source of generation randomness
    unsigned threads = 3;     ///< worker threads (>= 2 for races)
    uint32_t items = 100;     ///< requests per worker
    unsigned racy_sites = 3;  ///< planted racy locations
    unsigned locked_sites = 2;///< lock-protected shared locations
    unsigned atomic_sites = 1;///< atomic-RMW shared locations

    // Rich-sync-vocabulary site counts (default 0: legacy configs and
    // their byte-identical programs are unchanged).
    unsigned rw_racy_sites = 0;     ///< kRwUpgradeRacy
    unsigned sem_racy_sites = 0;    ///< kSemMisuseRacy
    unsigned spin_racy_sites = 0;   ///< kSpinPubRacy
    unsigned relaxed_racy_sites = 0;///< kAtomicRelaxedRacy
    unsigned rw_locked_sites = 0;   ///< kRwLocked
    unsigned sem_signal_sites = 0;  ///< kSemSignal
    unsigned spin_locked_sites = 0; ///< kSpinLocked
    unsigned relacq_sites = 0;      ///< kAtomicRelAcq
    bool mixed_widths = true; ///< widths drawn from {1,2,4,8} (else 8)
    bool heap_churn = true;   ///< per-request malloc/store/load/free
    uint32_t work_before = 12;///< compute padding before the sites
    uint32_t work_after = 12; ///< compute padding after them
    uint32_t sweep_elems = 6; ///< private-array sweep length
    /** The stats lock is taken every this many requests (power of 2). */
    uint32_t lock_every = 8;

    /** Canonical workload name, e.g. "oracle-s42-t3". */
    std::string name() const;
};

/** A generated program with its exact oracle. */
struct GeneratedWorkload {
    workload::Workload workload; ///< bugs[] filled from the racy sites
    GroundTruth truth;
    GeneratorConfig config;
};

/**
 * Synthesize a workload from @p config. Deterministic: equal configs
 * yield byte-identical programs (same listing, symbols, and truth).
 */
GeneratedWorkload generate(const GeneratorConfig &config);

/**
 * A small battery of diverse configs derived from @p base_seed —
 * varying thread counts, site mixes, widths, and heap churn — for
 * recall curves and CI floors (bench/fig14_oracle_recall).
 */
std::vector<GeneratorConfig> standardBattery(uint64_t base_seed,
                                             size_t count);

/**
 * Like standardBattery, but every config plants sites from the
 * rich-sync-vocabulary families (rwlock / semaphore / spinlock /
 * atomics), cycling the family emphasis with the index. Drives
 * bench/fig19_sync_vocabulary and the sync-family CI floors.
 */
std::vector<GeneratorConfig> syncBattery(uint64_t base_seed,
                                         size_t count);

} // namespace prorace::oracle

#endif // PRORACE_ORACLE_GENERATOR_HH

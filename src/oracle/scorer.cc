#include "oracle/scorer.hh"

#include <algorithm>

namespace prorace::oracle {

double
OracleScore::recall() const
{
    if (truth_pairs == 0)
        return 1.0;
    return static_cast<double>(detected_pairs) /
        static_cast<double>(truth_pairs);
}

double
OracleScore::precision() const
{
    if (reported_pairs == 0)
        return 1.0;
    return static_cast<double>(detected_pairs) /
        static_cast<double>(reported_pairs);
}

RacePairSet
reportPairs(const detect::RaceReport &report)
{
    RacePairSet pairs;
    for (const detect::DataRace &race : report.races())
        pairs.insert(std::minmax(race.prior.insn_index,
                                 race.current.insn_index));
    return pairs;
}

OracleScore
scoreReport(const GroundTruth &truth, const detect::RaceReport &report)
{
    OracleScore score;
    const RacePairSet reported = reportPairs(report);
    score.truth_pairs = truth.racy_pairs.size();
    score.reported_pairs = reported.size();
    for (const auto &pair : truth.racy_pairs) {
        if (reported.count(pair))
            ++score.detected_pairs;
        else
            score.missed.insert(pair);
    }
    for (const auto &pair : reported) {
        if (!truth.racy_pairs.count(pair))
            score.spurious.insert(pair);
    }
    score.false_positives = score.spurious.size();
    return score;
}

void
ScoreAccumulator::add(const OracleScore &score)
{
    ++runs;
    truth_pairs += score.truth_pairs;
    detected_pairs += score.detected_pairs;
    reported_pairs += score.reported_pairs;
    false_positives += score.false_positives;
}

double
ScoreAccumulator::recall() const
{
    if (truth_pairs == 0)
        return 1.0;
    return static_cast<double>(detected_pairs) /
        static_cast<double>(truth_pairs);
}

double
ScoreAccumulator::precision() const
{
    if (reported_pairs == 0)
        return 1.0;
    return static_cast<double>(detected_pairs) /
        static_cast<double>(reported_pairs);
}

} // namespace prorace::oracle

#include "oracle/fuzzer.hh"

#include <vector>

#include "asmkit/layout.hh"
#include "asmkit/program.hh"
#include "isa/disasm.hh"
#include "isa/semantics.hh"
#include "oracle/ref_interp.hh"
#include "support/rng.hh"
#include "vm/machine.hh"

namespace prorace::oracle {

using isa::AluOp;
using isa::CondCode;
using isa::Flags;
using isa::Insn;
using isa::MemOperand;
using isa::Op;
using isa::Reg;

namespace {

constexpr uint64_t kArenaBase = 0x40000000ull;

/** Boundary-heavy operand pool; the tail positions draw fresh randoms. */
uint64_t
interestingValue(Rng &rng)
{
    static const uint64_t kPool[] = {
        0,
        1,
        2,
        0x7full,
        0x80ull,
        0xffull,
        0x7fffull,
        0x8000ull,
        0xffffull,
        0x7fffffffull,
        0x80000000ull,
        0xffffffffull,
        0x7fffffffffffffffull,
        0x8000000000000000ull,
        0xffffffffffffffffull,
        0x0123456789abcdefull,
        0x5555555555555555ull,
        0xaaaaaaaaaaaaaaaaull,
    };
    constexpr size_t kPoolSize = sizeof(kPool) / sizeof(kPool[0]);
    const uint64_t pick = rng.below(kPoolSize + 6);
    if (pick < kPoolSize)
        return kPool[pick];
    return rng.next();
}

AluOp
randomAluOp(Rng &rng)
{
    static const AluOp kOps[] = {AluOp::kAdd, AluOp::kSub, AluOp::kAnd,
                                 AluOp::kOr,  AluOp::kXor, AluOp::kMul,
                                 AluOp::kShl, AluOp::kShr, AluOp::kSar};
    return kOps[rng.below(9)];
}

uint8_t
randomWidth(Rng &rng)
{
    static const uint8_t kWidths[] = {1, 2, 4, 8};
    return kWidths[rng.below(4)];
}

std::string
describeFlags(const Flags &f)
{
    std::string s;
    s += f.zf ? 'Z' : '-';
    s += f.sf ? 'S' : '-';
    s += f.cf ? 'C' : '-';
    s += f.of ? 'O' : '-';
    return s;
}

std::string
seedSuffix(uint64_t seed)
{
    return " [seed " + std::to_string(seed) +
        "; reproduce with PRORACE_TEST_SEED=" + std::to_string(seed) +
        "]";
}

// ---------------------------------------------------------------------
// fuzzAluSemantics
// ---------------------------------------------------------------------

bool
checkAluCase(AluOp op, uint64_t a, uint64_t b, std::string &failure)
{
    const isa::AluResult got = isa::evalAlu(op, a, b);
    const RefAluResult want = refAlu(op, a, b);
    if (got.value != want.value || !(got.flags == want.flags)) {
        failure = std::string("evalAlu(") + isa::aluName(op) + ", " +
            std::to_string(a) + ", " + std::to_string(b) + ") = " +
            std::to_string(got.value) + "/" + describeFlags(got.flags) +
            ", reference " + std::to_string(want.value) + "/" +
            describeFlags(want.flags);
        return false;
    }
    // Round-trip through the reverse-execution primitive.
    uint64_t recovered = 0;
    const bool invertible =
        op == AluOp::kAdd || op == AluOp::kSub || op == AluOp::kXor;
    const bool inverted = isa::invertAlu(op, got.value, b, recovered);
    if (inverted != invertible || (invertible && recovered != a)) {
        failure = std::string("invertAlu(") + isa::aluName(op) + ", " +
            std::to_string(got.value) + ", " + std::to_string(b) +
            ") -> " + (inverted ? std::to_string(recovered) : "refused") +
            ", expected " +
            (invertible ? std::to_string(a) : std::string("refusal"));
        return false;
    }
    return true;
}

bool
checkWidthCase(uint64_t v, std::string &failure)
{
    static const uint8_t kWidths[] = {1, 2, 4, 8};
    for (const uint8_t w : kWidths) {
        if (isa::truncateToWidth(v, w) != refNarrow(v, w)) {
            failure = "truncateToWidth(" + std::to_string(v) + ", " +
                std::to_string(int(w)) + ") diverges";
            return false;
        }
        for (const bool sign : {false, true}) {
            if (isa::extendFromWidth(v, w, sign) != refWiden(v, w, sign)) {
                failure = "extendFromWidth(" + std::to_string(v) + ", " +
                    std::to_string(int(w)) + ", " +
                    (sign ? "signed" : "unsigned") + ") diverges";
                return false;
            }
        }
    }
    return true;
}

bool
checkAddressCase(Rng &rng, std::string &failure)
{
    uint64_t regs[isa::kNumGprs];
    for (uint64_t &r : regs)
        r = interestingValue(rng);
    MemOperand mem;
    if (rng.chance(0.2)) {
        mem = MemOperand::ripRel(static_cast<int64_t>(rng.next()));
    } else {
        mem.base = rng.chance(0.8)
            ? isa::gprFromIndex(static_cast<unsigned>(rng.below(16)))
            : Reg::none;
        mem.index = rng.chance(0.5)
            ? isa::gprFromIndex(static_cast<unsigned>(rng.below(16)))
            : Reg::none;
        static const uint8_t kScales[] = {1, 2, 4, 8};
        mem.scale = kScales[rng.below(4)];
        mem.disp = static_cast<int64_t>(interestingValue(rng));
    }
    const uint64_t got = isa::effectiveAddress(
        mem, [&](Reg r) { return regs[isa::gprIndex(r)]; });
    uint64_t want;
    if (mem.rip_relative) {
        want = static_cast<uint64_t>(mem.disp);
    } else {
        want = static_cast<uint64_t>(mem.disp);
        if (mem.base != Reg::none)
            want += regs[isa::gprIndex(mem.base)];
        if (mem.index != Reg::none)
            want += regs[isa::gprIndex(mem.index)] * mem.scale;
    }
    if (got != want) {
        failure = "effectiveAddress diverges: got " + std::to_string(got) +
            ", reference " + std::to_string(want);
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// fuzzMachineForward
// ---------------------------------------------------------------------

/**
 * One generated unit: 1–3 instructions with any internal jcc target
 * expressed unit-locally, patched to an absolute index at assembly.
 * Units are the shrink granule — removing any unit leaves a valid
 * program.
 */
using Unit = std::vector<Insn>;

Insn
movri(Reg dst, int64_t imm)
{
    Insn i;
    i.op = Op::kMovRI;
    i.dst = dst;
    i.imm = imm;
    return i;
}

/** Registers the generator may clobber: every GPR but rsp. */
Reg
randomDst(Rng &rng)
{
    Reg r;
    do {
        r = isa::gprFromIndex(static_cast<unsigned>(rng.below(16)));
    } while (r == Reg::rsp);
    return r;
}

/** Operand-read pool: any GPR including rsp (reads are harmless). */
Reg
randomSrc(Rng &rng)
{
    return isa::gprFromIndex(static_cast<unsigned>(rng.below(16)));
}

/**
 * A memory operand that usually lands in a small arena window (so
 * loads observe earlier stores) and occasionally uses raw register
 * values as wild addresses (both memories are sparse, untouched
 * bytes read as zero on each side).
 */
MemOperand
randomMem(Rng &rng)
{
    if (rng.chance(0.5))
        return MemOperand::ripRel(
            static_cast<int64_t>(kArenaBase + rng.below(192)));
    if (rng.chance(0.6)) {
        MemOperand m = MemOperand::baseDisp(
            randomSrc(rng), static_cast<int64_t>(rng.below(128)));
        return m;
    }
    static const uint8_t kScales[] = {1, 2, 4, 8};
    return MemOperand::baseIndex(randomSrc(rng), randomSrc(rng),
                                 kScales[rng.below(4)],
                                 static_cast<int64_t>(rng.below(64)));
}

Unit
randomUnit(Rng &rng)
{
    Unit unit;
    switch (rng.below(12)) {
      case 0: { // constant load
        unit.push_back(movri(
            randomDst(rng), static_cast<int64_t>(interestingValue(rng))));
        break;
      }
      case 1: { // reg-reg ALU
        Insn i;
        i.op = Op::kAluRR;
        i.alu = randomAluOp(rng);
        i.dst = randomDst(rng);
        i.src = randomSrc(rng);
        unit.push_back(i);
        break;
      }
      case 2: { // reg-imm ALU
        Insn i;
        i.op = Op::kAluRI;
        i.alu = randomAluOp(rng);
        i.dst = randomDst(rng);
        i.imm = static_cast<int64_t>(interestingValue(rng));
        unit.push_back(i);
        break;
      }
      case 3: { // compare or test, then materialize flags into a reg
        Insn c;
        if (rng.chance(0.5)) {
            c.op = rng.chance(0.5) ? Op::kCmpRR : Op::kTestRR;
            c.dst = randomSrc(rng);
            c.src = randomSrc(rng);
        } else {
            c.op = rng.chance(0.5) ? Op::kCmpRI : Op::kTestRI;
            c.dst = randomSrc(rng);
            c.imm = static_cast<int64_t>(interestingValue(rng));
        }
        unit.push_back(c);
        Insn j;
        j.op = Op::kJcc;
        j.cond = static_cast<CondCode>(rng.below(12));
        j.target = 3; // unit-local: skip the probe write
        unit.push_back(j);
        unit.push_back(movri(randomDst(rng),
                             static_cast<int64_t>(rng.below(1 << 20))));
        break;
      }
      case 4: { // flag probe of whatever flags are live
        Insn j;
        j.op = Op::kJcc;
        j.cond = static_cast<CondCode>(rng.below(12));
        j.target = 2;
        unit.push_back(j);
        unit.push_back(movri(randomDst(rng),
                             static_cast<int64_t>(rng.below(1 << 20))));
        break;
      }
      case 5: { // lea
        Insn i;
        i.op = Op::kLea;
        i.dst = randomDst(rng);
        i.mem = randomMem(rng);
        unit.push_back(i);
        break;
      }
      case 6: { // store
        Insn i;
        i.op = Op::kStore;
        i.src = randomSrc(rng);
        i.mem = randomMem(rng);
        i.width = randomWidth(rng);
        unit.push_back(i);
        break;
      }
      case 7: { // load, both extensions
        Insn i;
        i.op = Op::kLoad;
        i.dst = randomDst(rng);
        i.mem = randomMem(rng);
        i.width = randomWidth(rng);
        i.sign_extend = i.width != 8 && rng.chance(0.5);
        unit.push_back(i);
        break;
      }
      case 8: { // immediate store
        Insn i;
        i.op = Op::kStoreI;
        i.mem = randomMem(rng);
        i.width = randomWidth(rng);
        i.imm = static_cast<int64_t>(interestingValue(rng));
        unit.push_back(i);
        break;
      }
      case 9: { // balanced push/pop pair
        Insn p;
        p.op = Op::kPush;
        p.src = randomSrc(rng);
        unit.push_back(p);
        Insn q;
        q.op = Op::kPop;
        q.dst = randomDst(rng);
        unit.push_back(q);
        break;
      }
      case 10: { // atomic RMW
        Insn i;
        i.op = Op::kAtomicRmw;
        i.alu = randomAluOp(rng);
        i.dst = randomDst(rng);
        i.src = randomSrc(rng);
        i.mem = randomMem(rng);
        i.width = randomWidth(rng);
        unit.push_back(i);
        break;
      }
      default: { // compare-and-swap
        Insn i;
        i.op = Op::kCas;
        i.dst = randomDst(rng);
        i.src = randomSrc(rng);
        i.mem = randomMem(rng);
        i.width = randomWidth(rng);
        unit.push_back(i);
        break;
      }
    }
    return unit;
}

std::vector<Insn>
assemble(const std::vector<Unit> &units)
{
    std::vector<Insn> code;
    for (const Unit &unit : units) {
        const uint32_t base = static_cast<uint32_t>(code.size());
        for (Insn insn : unit) {
            if (insn.op == Op::kJcc || insn.op == Op::kJmp)
                insn.target += base;
            code.push_back(insn);
        }
    }
    Insn halt;
    halt.op = Op::kHalt;
    code.push_back(halt);
    return code;
}

/** Non-empty when machine and reference disagree on the program. */
std::string
diffOneProgram(const std::vector<Unit> &units, uint64_t &executed)
{
    const std::vector<Insn> code = assemble(units);

    asmkit::Program program(code, {{"main", 0}}, {},
                            {{"main", 0, static_cast<uint32_t>(
                                             code.size())}});
    vm::MachineConfig config;
    config.num_cores = 1;
    config.seed = 1;
    config.timing_jitter = false;
    config.max_instructions = code.size() * 4 + 64;
    vm::Machine machine(program, config);
    machine.addThread(0u, 0);
    const vm::RunStatus status = machine.run();

    RefInterp ref(code);
    ref.setReg(Reg::rsp, asmkit::stackTopFor(0));
    const RefStatus ref_status = ref.run(0, code.size() * 4 + 64);
    executed += ref.steps();

    if (status != vm::RunStatus::kFinished)
        return "machine did not finish a straight-line program";
    if (ref_status != RefStatus::kHalted)
        return "reference did not halt: " + ref.error();

    const vm::ThreadContext &t = machine.thread(0);
    for (unsigned i = 0; i < isa::kNumGprs; ++i) {
        const Reg r = isa::gprFromIndex(i);
        if (t.regs.get(r) != ref.reg(r))
            return std::string(isa::regName(r)) + ": machine " +
                std::to_string(t.regs.get(r)) + ", reference " +
                std::to_string(ref.reg(r));
    }
    if (!(t.flags == ref.flags()))
        return "flags: machine " + describeFlags(t.flags) +
            ", reference " + describeFlags(ref.flags());
    for (const auto &[addr, byte] : ref.bytes()) {
        const uint64_t got = machine.memory().read(addr, 1);
        if (got != byte)
            return "byte at " + std::to_string(addr) + ": machine " +
                std::to_string(got) + ", reference " +
                std::to_string(byte);
    }
    return {};
}

std::string
listingOf(const std::vector<Unit> &units)
{
    std::string s;
    const std::vector<Insn> code = assemble(units);
    for (size_t i = 0; i < code.size(); ++i)
        s += "  " + std::to_string(i) + ": " + isa::disassemble(code[i]) +
            "\n";
    return s;
}

/** Greedy unit removal: drop any unit whose removal keeps the diff. */
std::vector<Unit>
shrink(std::vector<Unit> units)
{
    bool progress = true;
    while (progress && units.size() > 1) {
        progress = false;
        for (size_t i = 0; i < units.size(); ++i) {
            std::vector<Unit> candidate = units;
            candidate.erase(candidate.begin() +
                            static_cast<ptrdiff_t>(i));
            uint64_t scratch = 0;
            if (!diffOneProgram(candidate, scratch).empty()) {
                units = std::move(candidate);
                progress = true;
                break;
            }
        }
    }
    return units;
}

} // namespace

FuzzStats
fuzzAluSemantics(const FuzzOptions &options)
{
    FuzzStats stats;
    Rng rng(options.seed);
    while (stats.instructions < options.min_instructions) {
        ++stats.programs;
        std::string failure;
        bool ok = true;
        switch (rng.below(4)) {
          case 0:
          case 1: {
            const AluOp op = randomAluOp(rng);
            const uint64_t a = interestingValue(rng);
            const uint64_t b = interestingValue(rng);
            ok = checkAluCase(op, a, b, failure);
            // evalCmp and evalTest are flag projections of the same
            // operands; check them in the same batch.
            if (ok) {
                const Flags cmp_got = isa::evalCmp(a, b);
                const Flags cmp_want = refAlu(AluOp::kSub, a, b).flags;
                if (!(cmp_got == cmp_want)) {
                    ok = false;
                    failure = "evalCmp(" + std::to_string(a) + ", " +
                        std::to_string(b) + ") = " +
                        describeFlags(cmp_got) + ", reference " +
                        describeFlags(cmp_want);
                }
            }
            if (ok) {
                const Flags test_got = isa::evalTest(a, b);
                const Flags test_want = refLogicFlags(a & b);
                if (!(test_got == test_want)) {
                    ok = false;
                    failure = "evalTest(" + std::to_string(a) + ", " +
                        std::to_string(b) + ") diverges";
                }
            }
            stats.instructions += 3;
            break;
          }
          case 2:
            ok = checkWidthCase(interestingValue(rng), failure);
            stats.instructions += 12;
            break;
          default:
            ok = checkAddressCase(rng, failure);
            ++stats.instructions;
            break;
        }
        if (!ok) {
            ++stats.mismatches;
            if (stats.failure.empty())
                stats.failure = failure + seedSuffix(options.seed);
        }
    }
    return stats;
}

FuzzStats
fuzzMachineForward(const FuzzOptions &options)
{
    FuzzStats stats;
    Rng rng(options.seed);
    while (stats.instructions < options.min_instructions) {
        ++stats.programs;
        std::vector<Unit> units;
        // A few seeded registers so ALU ops have material to chew on.
        for (int i = 0; i < 4; ++i)
            units.push_back({movri(
                randomDst(rng),
                static_cast<int64_t>(interestingValue(rng)))});
        for (uint32_t i = 0; i < options.units_per_program; ++i)
            units.push_back(randomUnit(rng));

        const std::string diff = diffOneProgram(units, stats.instructions);
        if (diff.empty())
            continue;
        ++stats.mismatches;
        if (stats.failure.empty()) {
            const std::vector<Unit> minimal = shrink(units);
            uint64_t scratch = 0;
            stats.failure = "program " + std::to_string(stats.programs) +
                ": " + diffOneProgram(minimal, scratch) +
                seedSuffix(options.seed) + "\nminimized program:\n" +
                listingOf(minimal);
        }
    }
    return stats;
}

FuzzStats
fuzzReverseExecution(const FuzzOptions &options)
{
    FuzzStats stats;
    Rng rng(options.seed);
    while (stats.instructions < options.min_instructions) {
        ++stats.programs;
        // Forward chain of invertible ALU ops, then recover every
        // intermediate value backwards — the register-history walk
        // backward replay performs between two samples.
        static const AluOp kInvertible[] = {AluOp::kAdd, AluOp::kSub,
                                            AluOp::kXor};
        const size_t steps = 8 + rng.below(25);
        std::vector<uint64_t> values = {interestingValue(rng)};
        std::vector<AluOp> ops;
        std::vector<uint64_t> operands;
        for (size_t i = 0; i < steps; ++i) {
            const AluOp op = kInvertible[rng.below(3)];
            const uint64_t b = interestingValue(rng);
            ops.push_back(op);
            operands.push_back(b);
            values.push_back(isa::evalAlu(op, values.back(), b).value);
        }
        stats.instructions += steps;

        uint64_t cursor = values.back();
        for (size_t i = steps; i-- > 0;) {
            uint64_t recovered = 0;
            if (!isa::invertAlu(ops[i], cursor, operands[i], recovered) ||
                recovered != values[i]) {
                ++stats.mismatches;
                if (stats.failure.empty())
                    stats.failure = std::string("reverse step ") +
                        std::to_string(i) + " (" + isa::aluName(ops[i]) +
                        " " + std::to_string(operands[i]) +
                        "): recovered " + std::to_string(recovered) +
                        ", executed " + std::to_string(values[i]) +
                        seedSuffix(options.seed);
                break;
            }
            cursor = recovered;
        }

        // Non-invertible operations must be refused, never guessed.
        static const AluOp kLossy[] = {AluOp::kAnd, AluOp::kOr,
                                       AluOp::kMul, AluOp::kShl,
                                       AluOp::kShr, AluOp::kSar};
        const AluOp lossy = kLossy[rng.below(6)];
        uint64_t ignored = 0;
        ++stats.instructions;
        if (isa::invertAlu(lossy, rng.next(), rng.next(), ignored)) {
            ++stats.mismatches;
            if (stats.failure.empty())
                stats.failure = std::string("invertAlu accepted lossy ") +
                    isa::aluName(lossy) + seedSuffix(options.seed);
        }
    }
    return stats;
}

} // namespace prorace::oracle

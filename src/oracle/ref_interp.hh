/**
 * @file
 * Independent reference interpreter for the differential ISA fuzzer.
 *
 * Executes the single-threaded, non-sync subset of the ISA over a
 * byte-map memory, computing values and flags with formulas written
 * independently of isa/semantics.cc (128-bit carries, xor-based
 * overflow tests, cast-based widening). Any divergence from
 * vm::Machine on the same program is a bug in one of the two — the
 * same oracle structure tests/byte_map_model.hh gives the shadow
 * memory.
 *
 * Deliberately simple: O(1) code, no scheduling, no observers. Ops
 * outside the supported subset stop execution with an error string
 * rather than guessing.
 */

#ifndef PRORACE_ORACLE_REF_INTERP_HH
#define PRORACE_ORACLE_REF_INTERP_HH

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/flags.hh"
#include "isa/insn.hh"

namespace prorace::oracle {

/**
 * Reference ALU result. The ref* functions below are the independent
 * re-implementations of isa/semantics.cc the differential fuzzer
 * compares against; RefInterp is built on them.
 */
struct RefAluResult {
    uint64_t value = 0;
    isa::Flags flags;
};

/** zf/sf from a value, cf/of cleared (logic-op flags). */
isa::Flags refLogicFlags(uint64_t value);

/** Independent ALU evaluation (128-bit carries, xor overflow masks). */
RefAluResult refAlu(isa::AluOp op, uint64_t a, uint64_t b);

/** Independent width truncation via unsigned casts. */
uint64_t refNarrow(uint64_t value, uint8_t width);

/** Independent widening via signed/unsigned casts. */
uint64_t refWiden(uint64_t value, uint8_t width, bool sign_extend);

/** Outcome of a reference run. */
enum class RefStatus : uint8_t {
    kHalted,      ///< executed a kHalt
    kStepLimit,   ///< max_steps exhausted (likely a runaway loop)
    kUnsupported, ///< hit an op outside the modeled subset
};

class RefInterp
{
  public:
    explicit RefInterp(std::vector<isa::Insn> code);

    /** Run from @p entry until halt, step limit, or unsupported op. */
    RefStatus run(uint32_t entry, uint64_t max_steps);

    uint64_t reg(isa::Reg r) const;
    void setReg(isa::Reg r, uint64_t value);
    const isa::Flags &flags() const { return flags_; }

    /** Little-endian read; untouched bytes read as zero. */
    uint64_t readMem(uint64_t addr, uint8_t width) const;

    /** Every byte the program wrote, for exhaustive comparison. */
    const std::unordered_map<uint64_t, uint8_t> &bytes() const
    {
        return bytes_;
    }

    /** Human-readable detail when run() returned kUnsupported. */
    const std::string &error() const { return error_; }

    /** Steps actually executed by the last run(). */
    uint64_t steps() const { return steps_; }

  private:
    void writeMem(uint64_t addr, uint64_t value, uint8_t width);

    std::vector<isa::Insn> code_;
    std::array<uint64_t, isa::kNumGprs> gpr_{};
    isa::Flags flags_;
    std::unordered_map<uint64_t, uint8_t> bytes_;
    std::unordered_map<uint64_t, int64_t> sems_; ///< single-threaded counts
    std::string error_;
    uint64_t steps_ = 0;
};

} // namespace prorace::oracle

#endif // PRORACE_ORACLE_REF_INTERP_HH

#include "oracle/generator.hh"

#include <algorithm>

#include "support/log.hh"
#include "support/rng.hh"
#include "workload/kernels.hh"

namespace prorace::oracle {

using workload::AddressKind;
using workload::ProgramBuilder;
using isa::AluOp;
using isa::CondCode;
using isa::MemOperand;
using isa::Reg;

const char *
siteDisciplineName(SiteDiscipline d)
{
    switch (d) {
      case SiteDiscipline::kRacy:   return "racy";
      case SiteDiscipline::kLocked: return "locked";
      case SiteDiscipline::kAtomic: return "atomic";
      case SiteDiscipline::kRwUpgradeRacy:     return "rw-upgrade-racy";
      case SiteDiscipline::kSemMisuseRacy:     return "sem-misuse-racy";
      case SiteDiscipline::kSpinPubRacy:       return "spin-pub-racy";
      case SiteDiscipline::kAtomicRelaxedRacy: return "relaxed-racy";
      case SiteDiscipline::kRwLocked:          return "rw-locked";
      case SiteDiscipline::kSemSignal:         return "sem-signal";
      case SiteDiscipline::kSpinLocked:        return "spin-locked";
      case SiteDiscipline::kAtomicRelAcq:      return "rel-acq";
    }
    return "?";
}

bool
siteDisciplineRacy(SiteDiscipline d)
{
    switch (d) {
      case SiteDiscipline::kRacy:
      case SiteDiscipline::kRwUpgradeRacy:
      case SiteDiscipline::kSemMisuseRacy:
      case SiteDiscipline::kSpinPubRacy:
      case SiteDiscipline::kAtomicRelaxedRacy:
        return true;
      case SiteDiscipline::kLocked:
      case SiteDiscipline::kAtomic:
      case SiteDiscipline::kRwLocked:
      case SiteDiscipline::kSemSignal:
      case SiteDiscipline::kSpinLocked:
      case SiteDiscipline::kAtomicRelAcq:
        return false;
    }
    return false;
}

RacePairSet
GroundTruth::pairsOf(const SiteTruth &site)
{
    if (!siteDisciplineRacy(site.discipline))
        return {};
    const uint32_t lo = std::min(site.load_insn, site.store_insn);
    const uint32_t hi = std::max(site.load_insn, site.store_insn);
    if (site.discipline == SiteDiscipline::kAtomicRelaxedRacy) {
        // The plain load races with the RMW's write; RMW-vs-RMW is
        // atomic on both sides and correctly suppressed.
        return {{lo, hi}};
    }
    // The load races with the store, and the store races with itself
    // across threads; two loads never race.
    return {{lo, hi}, {site.store_insn, site.store_insn}};
}

std::string
GeneratorConfig::name() const
{
    std::string n = "oracle-s" + std::to_string(seed) + "-t" +
        std::to_string(threads);
    const unsigned sync_sites = rw_racy_sites + sem_racy_sites +
        spin_racy_sites + relaxed_racy_sites + rw_locked_sites +
        sem_signal_sites + spin_locked_sites + relacq_sites;
    if (sync_sites > 0)
        n += "-x" + std::to_string(sync_sites);
    return n;
}

namespace {

/** Codegen-time description of one site, fixed before emission. */
struct SitePlan {
    SiteDiscipline discipline = SiteDiscipline::kRacy;
    AddressKind kind = AddressKind::kPcRelative;
    uint8_t width = 8;
    std::string value_sym; ///< pc-relative storage, when kind == pcrel
    std::string obj_sym;   ///< pointed-to object, for indirect kinds
    std::string ptr_sym;   ///< global holding &obj, for indirect kinds
    std::string sync_sym;  ///< the site's own sync object, if any
    std::string gate_sym;  ///< second sync object (rel-acq gate)
    unsigned id = 0;
};

uint8_t
pickWidth(Rng &rng, bool mixed)
{
    static const uint8_t kWidths[] = {1, 2, 4, 8};
    return mixed ? kWidths[rng.below(4)] : 8;
}

/**
 * Emit one site's per-request access code inside the worker loop.
 * Fills load/store instruction indices for racy sites.
 */
void
emitSite(ProgramBuilder &b, const SitePlan &plan,
         const GeneratorConfig &config, uint32_t &load_insn,
         uint32_t &store_insn)
{
    const std::string tag = "site" + std::to_string(plan.id);
    switch (plan.discipline) {
      case SiteDiscipline::kRacy:
        switch (plan.kind) {
          case AddressKind::kPcRelative:
            // counter++ through %rip addressing, no lock.
            load_insn = b.load(Reg::rax, b.symRef(plan.value_sym),
                               plan.width);
            b.addri(Reg::rax, 1);
            store_insn = b.store(b.symRef(plan.value_sym), Reg::rax,
                                 plan.width);
            break;
          case AddressKind::kRegisterIndirect:
            // The handle is fetched once and stays live in rbx across
            // intervening work, as a request handler keeps its object
            // pointer in a callee-saved register.
            b.load(Reg::rbx, b.symRef(plan.ptr_sym));
            workload::emitArraySweep(b, tag + "_live", Reg::r15, 2,
                                     false);
            load_insn = b.load(
                Reg::rax, MemOperand::baseDisp(Reg::rbx, 8), plan.width);
            b.addri(Reg::rax, 1);
            store_insn = b.store(MemOperand::baseDisp(Reg::rbx, 8),
                                 Reg::rax, plan.width);
            b.movri(Reg::rbx, 0); // end the handle's live range
            break;
          case AddressKind::kMemoryIndirect:
            // The pointer is reloaded immediately before the access and
            // killed right after: the hardest reconstruction case.
            b.load(Reg::rsi, b.symRef(plan.ptr_sym));
            load_insn = b.load(
                Reg::rax, MemOperand::baseDisp(Reg::rsi, 8), plan.width);
            b.addri(Reg::rax, 1);
            store_insn = b.store(MemOperand::baseDisp(Reg::rsi, 8),
                                 Reg::rax, plan.width);
            b.movri(Reg::rsi, 0);
            break;
        }
        break;

      case SiteDiscipline::kLocked: {
        // The same update under the global stats lock, taken only every
        // lock_every requests — a per-request global lock would
        // serialize the racy sites away.
        b.movrr(Reg::rax, Reg::r13);
        b.aluri(AluOp::kAnd, Reg::rax, config.lock_every - 1);
        b.cmpri(Reg::rax, config.lock_every - 1);
        b.jcc(CondCode::kNe, tag + "_skip");
        b.lock(b.symRef("mtx"));
        load_insn = b.load(Reg::rax, b.symRef(plan.value_sym),
                           plan.width);
        b.addri(Reg::rax, 1);
        store_insn = b.store(b.symRef(plan.value_sym), Reg::rax,
                             plan.width);
        b.unlock(b.symRef("mtx"));
        b.label(tag + "_skip");
        break;
      }

      case SiteDiscipline::kAtomic:
        // Atomic fetch-add: concurrent but never a data race.
        b.movri(Reg::rdx, 1);
        load_insn = store_insn =
            b.atomicRmw(AluOp::kAdd, Reg::rax, b.symRef(plan.value_sym),
                        Reg::rdx, plan.width);
        break;

      case SiteDiscipline::kRwUpgradeRacy:
        // The classic upgrade bug: counter++ under a READ lock. Readers
        // hold the lock concurrently and never synchronize, so the pair
        // is a happens-before race under every schedule.
        b.rdlock(b.symRef(plan.sync_sym));
        load_insn = b.load(Reg::rax, b.symRef(plan.value_sym),
                           plan.width);
        b.addri(Reg::rax, 1);
        store_insn = b.store(b.symRef(plan.value_sym), Reg::rax,
                             plan.width);
        b.rwunlock(b.symRef(plan.sync_sym));
        break;

      case SiteDiscipline::kSemMisuseRacy:
        // Semaphore-as-signal misuse: the wait always consumes one of
        // the initial credits main deposited (nobody posts), so it
        // creates no happens-before edge at all.
        b.semWait(b.symRef(plan.sync_sym));
        load_insn = b.load(Reg::rax, b.symRef(plan.value_sym),
                           plan.width);
        b.addri(Reg::rax, 1);
        store_insn = b.store(b.symRef(plan.value_sym), Reg::rax,
                             plan.width);
        break;

      case SiteDiscipline::kSpinPubRacy:
        // Broken publication: the counter is updated OUTSIDE the
        // spinlock that guards the adjacent flag. The flag traffic is
        // properly locked (precision check within the same site); the
        // counter races.
        load_insn = b.load(Reg::rax, b.symRef(plan.value_sym),
                           plan.width);
        b.addri(Reg::rax, 1);
        store_insn = b.store(b.symRef(plan.value_sym), Reg::rax,
                             plan.width);
        b.spinLock(b.symRef(plan.sync_sym));
        b.load(Reg::rdx, b.symRef(plan.gate_sym));
        b.addri(Reg::rdx, 1);
        b.store(b.symRef(plan.gate_sym), Reg::rdx);
        b.spinUnlock(b.symRef(plan.sync_sym));
        break;

      case SiteDiscipline::kAtomicRelaxedRacy:
        // A relaxed RMW is atomic but orders nothing: the plain load of
        // the same cell races with the RMW's write in every schedule.
        b.movri(Reg::rdx, 1);
        store_insn = b.atomicRmw(AluOp::kAdd, Reg::rax,
                                 b.symRef(plan.value_sym), Reg::rdx,
                                 plan.width);
        load_insn = b.load(Reg::rcx, b.symRef(plan.value_sym),
                           plan.width);
        break;

      case SiteDiscipline::kRwLocked: {
        // Every fourth request writes under the write lock; the rest
        // read under the read lock. Concurrent readers inflate the
        // read-shared clock, and the writer's wrlock must absorb every
        // accumulated read-unlock — the read-shared detector path.
        b.movrr(Reg::rax, Reg::r13);
        b.aluri(AluOp::kAnd, Reg::rax, 3);
        b.cmpri(Reg::rax, 3);
        b.jcc(CondCode::kNe, tag + "_rd");
        b.wrlock(b.symRef(plan.sync_sym));
        load_insn = b.load(Reg::rax, b.symRef(plan.value_sym),
                           plan.width);
        b.addri(Reg::rax, 1);
        store_insn = b.store(b.symRef(plan.value_sym), Reg::rax,
                             plan.width);
        b.rwunlock(b.symRef(plan.sync_sym));
        b.jmp(tag + "_done");
        b.label(tag + "_rd");
        b.rdlock(b.symRef(plan.sync_sym));
        b.load(Reg::rdx, b.symRef(plan.value_sym), plan.width);
        b.rwunlock(b.symRef(plan.sync_sym));
        b.label(tag + "_done");
        break;
      }

      case SiteDiscipline::kSemSignal:
        // A binary semaphore (initial value 1) used as a mutex: each
        // wait pops the previous holder's post snapshot, chaining the
        // critical sections race-free.
        b.semWait(b.symRef(plan.sync_sym));
        load_insn = b.load(Reg::rax, b.symRef(plan.value_sym),
                           plan.width);
        b.addri(Reg::rax, 1);
        store_insn = b.store(b.symRef(plan.value_sym), Reg::rax,
                             plan.width);
        b.semPost(b.symRef(plan.sync_sym));
        break;

      case SiteDiscipline::kSpinLocked:
        b.spinLock(b.symRef(plan.sync_sym));
        load_insn = b.load(Reg::rax, b.symRef(plan.value_sym),
                           plan.width);
        b.addri(Reg::rax, 1);
        store_insn = b.store(b.symRef(plan.value_sym), Reg::rax,
                             plan.width);
        b.spinUnlock(b.symRef(plan.sync_sym));
        break;

      case SiteDiscipline::kAtomicRelAcq: {
        // Once-only publication: the single thread whose acq_rel
        // fetch-add returns 0 plain-stores the payload and raises the
        // gate with a store-release; everyone else load-acquires the
        // gate and reads the payload only once it is up. Race-free in
        // every schedule — if the reader's acquire precedes the
        // release, the gate still reads 0 and the payload load is
        // skipped.
        b.movri(Reg::rdx, 1);
        b.atomicRmwAcqRel(AluOp::kAdd, Reg::rax, b.symRef(plan.sync_sym),
                          Reg::rdx);
        b.cmpri(Reg::rax, 0);
        b.jcc(CondCode::kNe, tag + "_sub");
        b.movri(Reg::rcx, 97);
        store_insn = b.store(b.symRef(plan.value_sym), Reg::rcx,
                             plan.width);
        b.movri(Reg::rdx, 1);
        b.storeRel(b.symRef(plan.gate_sym), Reg::rdx);
        b.jmp(tag + "_done");
        b.label(tag + "_sub");
        b.loadAcq(Reg::rdx, b.symRef(plan.gate_sym));
        b.cmpri(Reg::rdx, 0);
        b.jcc(CondCode::kEq, tag + "_done");
        load_insn = b.load(Reg::rax, b.symRef(plan.value_sym),
                           plan.width);
        b.label(tag + "_done");
        break;
      }
    }
}

} // namespace

GeneratedWorkload
generate(const GeneratorConfig &config)
{
    PRORACE_ASSERT(config.threads >= 2,
                   "a race needs at least two threads");
    PRORACE_ASSERT((config.lock_every & (config.lock_every - 1)) == 0 &&
                       config.lock_every > 0,
                   "lock_every must be a power of two");

    Rng rng(config.seed);
    const std::pair<SiteDiscipline, unsigned> site_mix[] = {
        {SiteDiscipline::kRacy, config.racy_sites},
        {SiteDiscipline::kLocked, config.locked_sites},
        {SiteDiscipline::kAtomic, config.atomic_sites},
        {SiteDiscipline::kRwUpgradeRacy, config.rw_racy_sites},
        {SiteDiscipline::kSemMisuseRacy, config.sem_racy_sites},
        {SiteDiscipline::kSpinPubRacy, config.spin_racy_sites},
        {SiteDiscipline::kAtomicRelaxedRacy, config.relaxed_racy_sites},
        {SiteDiscipline::kRwLocked, config.rw_locked_sites},
        {SiteDiscipline::kSemSignal, config.sem_signal_sites},
        {SiteDiscipline::kSpinLocked, config.spin_locked_sites},
        {SiteDiscipline::kAtomicRelAcq, config.relacq_sites},
    };

    // Plan the sites, then shuffle their emission order so programs
    // from different seeds differ structurally, not just in data.
    std::vector<SitePlan> plans;
    static const AddressKind kKinds[] = {
        AddressKind::kPcRelative, AddressKind::kRegisterIndirect,
        AddressKind::kMemoryIndirect};
    unsigned next_id = 0;
    for (const auto &[discipline, count] : site_mix) {
        for (unsigned i = 0; i < count; ++i) {
            SitePlan plan;
            plan.id = next_id++;
            plan.discipline = discipline;
            plan.kind = discipline == SiteDiscipline::kRacy
                ? kKinds[rng.below(3)]
                : AddressKind::kPcRelative;
            plan.width = pickWidth(rng, config.mixed_widths);
            const std::string base = "site" + std::to_string(plan.id);
            if (plan.kind == AddressKind::kPcRelative) {
                plan.value_sym = base;
            } else {
                plan.obj_sym = base + "_obj";
                plan.ptr_sym = base + "_ptr";
            }
            switch (discipline) {
              case SiteDiscipline::kRwUpgradeRacy:
              case SiteDiscipline::kRwLocked:
                plan.sync_sym = base + "_rw";
                break;
              case SiteDiscipline::kSemMisuseRacy:
              case SiteDiscipline::kSemSignal:
                plan.sync_sym = base + "_sem";
                break;
              case SiteDiscipline::kSpinPubRacy:
                plan.sync_sym = base + "_spin";
                plan.gate_sym = base + "_flag";
                break;
              case SiteDiscipline::kSpinLocked:
                plan.sync_sym = base + "_spin";
                break;
              case SiteDiscipline::kAtomicRelAcq:
                plan.sync_sym = base + "_ctr";
                plan.gate_sym = base + "_gate";
                break;
              default:
                break;
            }
            plans.push_back(plan);
        }
    }
    const unsigned total_sites = next_id;
    // Fisher-Yates with the generator's own rng (std::shuffle's
    // distribution is implementation-defined; this must be stable).
    for (size_t i = plans.size(); i > 1; --i)
        std::swap(plans[i - 1], plans[rng.below(i)]);

    ProgramBuilder b;
    b.global("mtx", 8);
    b.globalU64("input_seed", 0);
    for (const SitePlan &plan : plans) {
        if (plan.kind == AddressKind::kPcRelative) {
            b.global(plan.value_sym, 8);
        } else {
            b.global(plan.obj_sym, 16);
            b.globalU64(plan.ptr_sym, 0);
        }
        if (!plan.sync_sym.empty())
            b.global(plan.sync_sym, 8);
        if (!plan.gate_sym.empty())
            b.global(plan.gate_sym, 8);
    }
    b.global("scratch",
             static_cast<uint64_t>(config.threads) *
                 std::max<uint32_t>(config.sweep_elems, 2) * 8);

    // main: publish the indirect sites' handles, then spawn/join the
    // workers exactly as the curated racy workloads do.
    b.label("main");
    for (const SitePlan &plan : plans) {
        if (plan.kind == AddressKind::kPcRelative)
            continue;
        b.lea(Reg::rax, b.symRef(plan.obj_sym));
        b.store(b.symRef(plan.ptr_sym), Reg::rax);
    }
    for (const SitePlan &plan : plans) {
        if (plan.discipline == SiteDiscipline::kSemMisuseRacy) {
            // Enough initial credits that no wait ever blocks (or
            // creates an edge): one per wait the whole run performs.
            b.semInit(b.symRef(plan.sync_sym),
                      static_cast<int64_t>(config.threads) * config.items);
        } else if (plan.discipline == SiteDiscipline::kSemSignal) {
            b.semInit(b.symRef(plan.sync_sym), 1);
        }
    }
    b.movri(Reg::rcx, 0);
    b.label("main_spawn");
    b.movrr(Reg::r12, Reg::rcx);
    b.spawn(Reg::rax, "worker", Reg::r12);
    b.push(Reg::rax);
    b.addri(Reg::rcx, 1);
    b.cmpri(Reg::rcx, config.threads);
    b.jcc(CondCode::kLt, "main_spawn");
    b.movri(Reg::rcx, 0);
    b.label("main_join");
    b.pop(Reg::rax);
    b.join(Reg::rax);
    b.addri(Reg::rcx, 1);
    b.cmpri(Reg::rcx, config.threads);
    b.jcc(CondCode::kLt, "main_join");
    b.halt();

    const uint32_t sweep = std::max<uint32_t>(config.sweep_elems, 2);
    b.beginFunction("worker");
    b.movrr(Reg::r14, Reg::rdi); // tid
    b.load(Reg::r10, b.symRef("input_seed"));
    b.lea(Reg::r15, b.symRef("scratch"));
    b.movri(Reg::rax, sweep * 8);
    b.alurr(AluOp::kMul, Reg::rax, Reg::r14);
    b.alurr(AluOp::kAdd, Reg::r15, Reg::rax);
    b.movri(Reg::r13, 0); // request index
    b.label("req");

    // Input- and request-dependent work length, so PEBS periods don't
    // phase-lock onto the loop structure.
    b.movrr(Reg::r9, Reg::r13);
    b.alurr(AluOp::kXor, Reg::r9, Reg::r10);
    b.aluri(AluOp::kMul, Reg::r9, 2654435761ll);
    b.aluri(AluOp::kShr, Reg::r9, 24);
    b.aluri(AluOp::kAnd, Reg::r9, 31);
    b.aluri(AluOp::kAdd, Reg::r9, config.work_before);
    workload::emitVariableComputeLoop(b, "pre", Reg::r9);

    std::vector<std::pair<uint32_t, uint32_t>> site_insns(total_sites);
    for (const SitePlan &plan : plans) {
        uint32_t ld = 0, st = 0;
        emitSite(b, plan, config, ld, st);
        site_insns[plan.id] = {ld, st};
    }

    if (config.heap_churn) {
        // Thread-private allocation churn: opens and closes a heap
        // lifetime every request (FastTrack must not report the block's
        // reuse across threads as a race).
        b.movri(Reg::rdi, 64);
        b.mallocCall(Reg::rax, Reg::rdi);
        b.store(MemOperand::baseDisp(Reg::rax, 8), Reg::r13);
        b.load(Reg::rdx, MemOperand::baseDisp(Reg::rax, 8));
        b.freeCall(Reg::rax);
    }

    workload::emitComputeLoop(b, "post", config.work_after);
    // Library call with all handles dead: PT gaps like real libc calls.
    b.movrr(Reg::rdi, Reg::r15);
    b.movri(Reg::rsi, sweep);
    b.call("lib_sum");

    b.addri(Reg::r13, 1);
    b.cmpri(Reg::r13, config.items);
    b.jcc(CondCode::kLt, "req");
    b.halt();
    b.endFunction();

    workload::emitLibHelpers(b);

    GeneratedWorkload out;
    out.config = config;
    out.workload.name = config.name();
    out.workload.description =
        std::to_string(config.racy_sites) + " racy / " +
        std::to_string(config.locked_sites) + " locked / " +
        std::to_string(config.atomic_sites) + " atomic sites, " +
        std::to_string(config.threads) + " threads";
    out.workload.program = std::make_shared<asmkit::Program>(b.build());

    for (const SitePlan &plan : plans) {
        SiteTruth site;
        site.discipline = plan.discipline;
        site.kind = plan.kind;
        site.width = plan.width;
        if (plan.kind == AddressKind::kPcRelative) {
            site.symbol = plan.value_sym;
            site.addr = out.workload.program->symbol(plan.value_sym).addr;
        } else {
            site.symbol = plan.obj_sym;
            site.addr =
                out.workload.program->symbol(plan.obj_sym).addr + 8;
        }
        site.load_insn = site_insns[plan.id].first;
        site.store_insn = site_insns[plan.id].second;
        out.truth.sites.push_back(site);

        const RacePairSet pairs = GroundTruth::pairsOf(site);
        out.truth.racy_pairs.insert(pairs.begin(), pairs.end());

        if (siteDisciplineRacy(plan.discipline)) {
            workload::RacyBug bug;
            bug.id = out.workload.name + "/site" +
                std::to_string(plan.id);
            bug.manifestation = std::string("planted race (") +
                siteDisciplineName(plan.discipline) + ")";
            bug.kind = plan.kind;
            bug.racy_insns = {site.load_insn, site.store_insn};
            bug.racy_addr = site.addr;
            bug.racy_size = site.width;
            out.workload.bugs.push_back(bug);
        }
    }
    // Sites were emitted in shuffled order; keep the truth listing in
    // site-id order for stable reporting.
    std::sort(out.truth.sites.begin(), out.truth.sites.end(),
              [](const SiteTruth &a, const SiteTruth &b_) {
                  return a.symbol < b_.symbol;
              });

    const uint64_t input_addr =
        out.workload.program->symbol("input_seed").addr;
    out.workload.setup = [input_addr](vm::Machine &m) {
        m.memory().write(input_addr, m.config().seed * 0x9e3779b9, 8);
        m.addThread("main");
    };
    out.workload.pt_filter =
        workload::mainExecutableFilter(*out.workload.program);
    return out;
}

std::vector<GeneratorConfig>
standardBattery(uint64_t base_seed, size_t count)
{
    std::vector<GeneratorConfig> configs;
    Rng rng(base_seed ^ 0x0f14c3a11ull);
    for (size_t i = 0; i < count; ++i) {
        GeneratorConfig cfg;
        cfg.seed = base_seed + i;
        cfg.threads = 2 + static_cast<unsigned>(i % 3);
        cfg.racy_sites = 2 + static_cast<unsigned>(rng.below(3));
        cfg.locked_sites = 1 + static_cast<unsigned>(rng.below(2));
        cfg.atomic_sites = static_cast<unsigned>(rng.below(2));
        cfg.mixed_widths = (i % 2) == 0;
        cfg.heap_churn = (i % 3) != 2;
        cfg.items = 80 + static_cast<uint32_t>(rng.below(60));
        configs.push_back(cfg);
    }
    return configs;
}

std::vector<GeneratorConfig>
syncBattery(uint64_t base_seed, size_t count)
{
    std::vector<GeneratorConfig> configs;
    Rng rng(base_seed ^ 0x51bca77e5ull);
    for (size_t i = 0; i < count; ++i) {
        GeneratorConfig cfg;
        cfg.seed = base_seed + 1000 + i;
        cfg.threads = 2 + static_cast<unsigned>(i % 3);
        // One legacy racy + locked site keeps the mix honest; the
        // emphasized family cycles with the index so a battery of >= 4
        // covers every primitive.
        cfg.racy_sites = 1;
        cfg.locked_sites = 1;
        cfg.atomic_sites = 0;
        switch (i % 4) {
          case 0:
            cfg.rw_racy_sites = 1 + static_cast<unsigned>(rng.below(2));
            cfg.rw_locked_sites = 1;
            break;
          case 1:
            cfg.sem_racy_sites = 1 + static_cast<unsigned>(rng.below(2));
            cfg.sem_signal_sites = 1;
            break;
          case 2:
            cfg.spin_racy_sites = 1 + static_cast<unsigned>(rng.below(2));
            cfg.spin_locked_sites = 1;
            break;
          case 3:
            cfg.relaxed_racy_sites =
                1 + static_cast<unsigned>(rng.below(2));
            cfg.relacq_sites = 1;
            break;
        }
        cfg.mixed_widths = (i % 2) == 0;
        cfg.heap_churn = (i % 3) != 2;
        cfg.items = 60 + static_cast<uint32_t>(rng.below(40));
        configs.push_back(cfg);
    }
    return configs;
}

} // namespace prorace::oracle

#include "replay/replayer.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <array>
#include <optional>

#include "analysis/analysis.hh"
#include "isa/semantics.hh"
#include "replay/static_info.hh"
#include "support/log.hh"

namespace prorace::replay {

using detect::AccessOrigin;
using isa::AluOp;
using isa::Insn;
using isa::Op;
using isa::Reg;
using pmu::kPathGap;

const char *
replayModeName(ReplayMode mode)
{
    switch (mode) {
      case ReplayMode::kBasicBlock:      return "basic-block";
      case ReplayMode::kForwardOnly:     return "forward";
      case ReplayMode::kForwardBackward: return "forward+backward";
    }
    return "?";
}

namespace {

/** Try to invert an ALU op used as reverse execution. */
bool
invertibleAlu(AluOp op)
{
    return op == AluOp::kAdd || op == AluOp::kSub || op == AluOp::kXor;
}

} // namespace

Replayer::Replayer(const asmkit::Program &program,
                   const ReplayConfig &config)
    : program_(program), config_(config)
{
}

void
Replayer::forwardPass(const Window &win, const pmu::ThreadPath &path,
                      const trace::RunTrace &run, const FactList &facts,
                      AccessOrigin tag, EmitMap &emit, FactList *hints_out,
                      bool *consistent_out, uint64_t *bad_pos_out)
{
    size_t fact_cursor = 0;
    while (fact_cursor < facts.size() &&
           facts[fact_cursor].pos < win.start) {
        ++fact_cursor;
    }
    (void)run;
    ProgramMap pm;
    if (win.s1)
        pm.restoreRegs(win.s1->regs);
    for (const auto &[addr, size] : config_.mem_blacklist)
        pm.blacklistMem(addr, size);
    // Emulated condition flags, where computable. Every conditional
    // branch whose flags are known is cross-checked against the
    // PT-recorded direction: a contradiction proves the window's
    // register state is wrong (misaligned sample), and the window is
    // discarded.
    isa::Flags flags_value;
    bool flags_known = false;

    // Constant recovery (points-to consumer 3): a load whose resolved
    // address lies in a provably-immutable global yields its init-image
    // bytes even when the location is not emulated. Registers holding
    // such values are *tainted*: the extra knowledge must not perturb
    // anything the stock replay does — not the hints, not the
    // violation checks, not emulated memory (no tainted value is ever
    // written), not the consumed set, and not any kForward/kBackward
    // emission. A tainted-address load may emit a kConstant event only
    // when its whole shadow granule is immutable, so the event is inert
    // to the detector (no write anywhere in the feed can share its
    // granule) and the race report stays byte-identical with the layer
    // off.
    const analysis::PointsTo *pt_const = nullptr;
    if (config_.analysis && config_.analysis->pointsTo() &&
        config_.analysis->pointsTo()->anyImmutable()) {
        pt_const = config_.analysis->pointsTo();
    }
    uint16_t taint = 0;
    auto reg_tainted = [&](Reg r) {
        return isGpr(r) && ((taint >> gprIndex(r)) & 1u);
    };
    auto mem_tainted = [&](const isa::MemOperand &mem) {
        return !mem.rip_relative &&
            (reg_tainted(mem.base) || reg_tainted(mem.index));
    };
    auto granule_immutable = [&](uint64_t addr, uint8_t width) {
        if (!pt_const || width == 0)
            return false;
        const uint64_t lo = addr & ~7ull;
        const uint64_t hi = ((addr + width - 1) | 7ull) + 1;
        return pt_const->immutableCovers(lo, hi - lo);
    };

    // A consistency violation proves the replayed state is wrong at
    // this point (usually a sample matched to the wrong loop iteration).
    // Repair locally: discard the reconstructions of the current loop
    // body, invalidate the registers that produced the contradiction,
    // and continue — but give up on the window beyond a violation
    // budget (alignment is then hopeless).
    constexpr uint64_t kViolationScope = 24; // positions erased backwards
    constexpr unsigned kViolationBudget = 8;
    unsigned violations = 0;
    uint16_t flag_src_mask = 0; // regs feeding the live flags
    auto violation = [&](uint64_t pos) {
        ++violations;
        if (consistent_out && violations > kViolationBudget)
            *consistent_out = false;
        if (bad_pos_out && violations > kViolationBudget)
            *bad_pos_out = std::min(*bad_pos_out, pos);
        // Erase suspect reconstructions of the enclosing loop body.
        const uint64_t lo = pos > kViolationScope ? pos - kViolationScope
                                                  : 0;
        auto it = emit.entries.lower_bound(lo * 4);
        while (it != emit.entries.end() && it->first <= pos * 4 + 3) {
            const AccessOrigin origin = it->second.origin;
            if (origin == AccessOrigin::kForward ||
                origin == AccessOrigin::kBackward) {
                if (origin == AccessOrigin::kForward)
                    --stats_.recovered_forward;
                else
                    --stats_.recovered_backward;
                it = emit.entries.erase(it);
            } else {
                ++it;
            }
        }
        // Invalidate the registers behind the contradiction.
        for (unsigned r = 0; r < isa::kNumGprs; ++r) {
            if ((flag_src_mask >> r) & 1u)
                pm.invalidateReg(isa::gprFromIndex(r));
        }
        taint &= static_cast<uint16_t>(~flag_src_mask);
    };

    auto try_ea = [&](const isa::MemOperand &mem)
        -> std::optional<uint64_t> {
        if (mem.rip_relative)
            return static_cast<uint64_t>(mem.disp);
        if (mem.base != Reg::none && !pm.regAvailable(mem.base))
            return std::nullopt;
        if (mem.index != Reg::none && !pm.regAvailable(mem.index))
            return std::nullopt;
        uint64_t addr = static_cast<uint64_t>(mem.disp);
        if (mem.base != Reg::none)
            addr += pm.regValue(mem.base);
        if (mem.index != Reg::none)
            addr += pm.regValue(mem.index) * mem.scale;
        return addr;
    };

    auto src_val = [&](Reg r) -> std::optional<uint64_t> {
        if (!isGpr(r) || !pm.regAvailable(r))
            return std::nullopt;
        return pm.regValue(r);
    };

    for (uint64_t pos = win.start; pos < win.end; ++pos) {
        while (fact_cursor < facts.size() &&
               facts[fact_cursor].pos == pos) {
            const ReplayFact &fact = facts[fact_cursor];
            // Where forward and backward knowledge overlap they must
            // agree; disagreement reveals misaligned samples. A tainted
            // register is unavailable to the stock replay, so it takes
            // the fact silently (and is untainted by it).
            if (!reg_tainted(fact.reg) && pm.regAvailable(fact.reg) &&
                pm.regValue(fact.reg) != fact.val) {
                ++stats_.violations_fact;
                violation(pos);
            }
            pm.setReg(fact.reg, fact.val);
            if (isGpr(fact.reg)) {
                taint &=
                    static_cast<uint16_t>(~(1u << gprIndex(fact.reg)));
            }
            ++fact_cursor;
        }
        const uint32_t idx = path.insns[pos];
        if (idx == kPathGap) {
            // Untraced code ran here: nothing survives.
            pm.invalidateAllRegs();
            pm.invalidateMemory();
            flags_known = false;
            taint = 0;
            continue;
        }
        const Insn &insn = program_.insnAt(idx);
        const bool is_sample = pos == win.start && win.s1;

        auto origin_for = [&](bool rip_rel) {
            if (is_sample)
                return AccessOrigin::kSampled;
            if (rip_rel)
                return AccessOrigin::kPcRelative;
            return tag;
        };

        auto emit_access = [&](unsigned slot, uint64_t addr, uint8_t width,
                               bool is_write, bool atomic, bool rip_rel) {
            ReconstructedAccess acc;
            acc.tid = win.tid;
            acc.position = pos;
            acc.insn_index = idx;
            acc.addr = addr;
            acc.width = width;
            acc.is_write = is_write;
            acc.is_atomic = atomic;
            acc.origin = origin_for(rip_rel);
            if (emit.add(pos, slot, acc)) {
                switch (acc.origin) {
                  case AccessOrigin::kSampled:
                    ++stats_.sampled;
                    break;
                  case AccessOrigin::kPcRelative:
                    ++stats_.recovered_pcrel;
                    ++stats_.recovered_forward;
                    break;
                  case AccessOrigin::kForward:
                    ++stats_.recovered_forward;
                    break;
                  case AccessOrigin::kBackward:
                    ++stats_.recovered_backward;
                    break;
                  default:
                    break;
                }
            }
        };

        // Record forward hints at memory instructions we cannot resolve,
        // so the next backward round can extend its knowledge.
        auto note_hint = [&]() {
            if (!hints_out)
                return;
            for (unsigned r = 0; r < isa::kNumGprs; ++r) {
                const Reg reg = isa::gprFromIndex(r);
                // Tainted registers are invisible here: the backward
                // scan must see exactly the stock forward knowledge.
                if (pm.regAvailable(reg) && !((taint >> r) & 1u))
                    hints_out->push_back({pos, reg, pm.regValue(reg)});
            }
        };

        // Emit a constant-derived read: its address came through
        // tainted registers, so it may only reach the detector when its
        // whole shadow granule is immutable (the event is then inert —
        // nothing in any feed writes that granule).
        auto emit_constant = [&](unsigned slot, uint64_t addr,
                                 uint8_t width, bool atomic) {
            ReconstructedAccess acc;
            acc.tid = win.tid;
            acc.position = pos;
            acc.insn_index = idx;
            acc.addr = addr;
            acc.width = width;
            acc.is_write = false;
            acc.is_atomic = atomic;
            acc.origin = AccessOrigin::kConstant;
            if (emit.add(pos, slot, acc))
                ++stats_.recovered_constant;
        };

        uint16_t taint_new = 0;
        auto taint_dst = [&](Reg r) {
            if (isGpr(r))
                taint_new |= static_cast<uint16_t>(1u << gprIndex(r));
        };

        switch (insn.op) {
          case Op::kNop:
          case Op::kHalt:
          case Op::kJmp:
          case Op::kJmpInd:
            break;

          case Op::kCmpRR: {
            auto a = src_val(insn.dst);
            auto bv = src_val(insn.src);
            flags_known = a && bv && !reg_tainted(insn.dst) &&
                !reg_tainted(insn.src);
            if (flags_known)
                flags_value = isa::evalCmp(*a, *bv);
            flag_src_mask = static_cast<uint16_t>(
                (1u << gprIndex(insn.dst)) | (1u << gprIndex(insn.src)));
            break;
          }
          case Op::kCmpRI: {
            auto a = src_val(insn.dst);
            flags_known = a.has_value() && !reg_tainted(insn.dst);
            if (flags_known)
                flags_value = isa::evalCmp(*a,
                                           static_cast<uint64_t>(insn.imm));
            flag_src_mask =
                static_cast<uint16_t>(1u << gprIndex(insn.dst));
            break;
          }
          case Op::kTestRR: {
            auto a = src_val(insn.dst);
            auto bv = src_val(insn.src);
            flags_known = a && bv && !reg_tainted(insn.dst) &&
                !reg_tainted(insn.src);
            if (flags_known)
                flags_value = isa::evalTest(*a, *bv);
            flag_src_mask = static_cast<uint16_t>(
                (1u << gprIndex(insn.dst)) | (1u << gprIndex(insn.src)));
            break;
          }
          case Op::kTestRI: {
            auto a = src_val(insn.dst);
            flags_known = a.has_value() && !reg_tainted(insn.dst);
            if (flags_known)
                flags_value = isa::evalTest(*a,
                                            static_cast<uint64_t>(insn.imm));
            flag_src_mask =
                static_cast<uint16_t>(1u << gprIndex(insn.dst));
            break;
          }
          case Op::kJcc: {
            if (flags_known && insn.target != idx + 1 &&
                pos + 1 < path.insns.size() &&
                path.insns[pos + 1] != kPathGap) {
                const bool expected = isa::condHolds(insn.cond,
                                                     flags_value);
                const bool actual = path.insns[pos + 1] == insn.target;
                if (expected != actual) {
                    ++stats_.violations_branch;
                    violation(pos);
                    flags_known = false;
                }
            }
            break;
          }

          case Op::kMovRI:
            pm.setReg(insn.dst, static_cast<uint64_t>(insn.imm));
            break;

          case Op::kMovRR:
            if (auto v = src_val(insn.src)) {
                pm.setReg(insn.dst, *v);
                if (reg_tainted(insn.src))
                    taint_dst(insn.dst);
            } else {
                pm.invalidateReg(insn.dst);
            }
            break;

          case Op::kLoad: {
            uint64_t addr;
            if (is_sample) {
                addr = win.s1->addr;
            } else if (auto ea = try_ea(insn.mem)) {
                addr = *ea;
                if (mem_tainted(insn.mem)) {
                    // The stock replay could not resolve this address.
                    note_hint();
                    if (granule_immutable(addr, insn.width)) {
                        emit_constant(0, addr, insn.width, false);
                        pm.setReg(insn.dst,
                                  isa::extendFromWidth(
                                      pt_const->constantAt(addr,
                                                           insn.width),
                                      insn.width, insn.sign_extend));
                        taint_dst(insn.dst);
                    } else {
                        pm.invalidateReg(insn.dst);
                    }
                    break;
                }
            } else {
                note_hint();
                pm.invalidateReg(insn.dst);
                break;
            }
            if (is_sample) {
                if (auto ea = try_ea(insn.mem);
                    ea && !mem_tainted(insn.mem) && *ea != addr) {
                    ++stats_.violations_sample;
                    violation(pos);
                }
            }
            emit_access(0, addr, insn.width, false, false,
                        insn.mem.rip_relative);
            if (auto v = pm.readMem(addr, insn.width)) {
                pm.setReg(insn.dst, isa::extendFromWidth(*v, insn.width,
                                                         insn.sign_extend));
            } else if (pt_const &&
                       pt_const->immutableCovers(addr, insn.width)) {
                // The location is not emulated, but no store in the
                // program can reach it: it still holds its init bytes.
                pm.setReg(insn.dst,
                          isa::extendFromWidth(
                              pt_const->constantAt(addr, insn.width),
                              insn.width, insn.sign_extend));
                taint_dst(insn.dst);
            } else {
                pm.invalidateReg(insn.dst);
            }
            break;
          }

          case Op::kStore:
          case Op::kStoreI: {
            uint64_t addr;
            if (is_sample) {
                addr = win.s1->addr;
            } else if (auto ea = try_ea(insn.mem);
                       ea && !mem_tainted(insn.mem)) {
                addr = *ea;
            } else {
                // Unknown (or only tainted-known) address: never emit a
                // write from constant-derived knowledge.
                note_hint();
                // A store to an unknown address may clobber any emulated
                // location.
                pm.invalidateMemory();
                break;
            }
            emit_access(0, addr, insn.width, true, false,
                        insn.mem.rip_relative);
            std::optional<uint64_t> value;
            if (insn.op == Op::kStoreI)
                value = static_cast<uint64_t>(insn.imm);
            else if (!reg_tainted(insn.src))
                value = src_val(insn.src);
            if (value) {
                pm.writeMem(addr, isa::truncateToWidth(*value, insn.width),
                            insn.width);
            } else {
                pm.invalidateMem(addr, insn.width);
            }
            break;
          }

          case Op::kLea:
            if (auto ea = try_ea(insn.mem)) {
                pm.setReg(insn.dst, *ea);
                if (mem_tainted(insn.mem))
                    taint_dst(insn.dst);
            } else {
                pm.invalidateReg(insn.dst);
            }
            break;

          case Op::kAluRR: {
            auto a = src_val(insn.dst);
            auto b = src_val(insn.src);
            if (a && b) {
                const auto r = isa::evalAlu(insn.alu, *a, *b);
                pm.setReg(insn.dst, r.value);
                if (reg_tainted(insn.dst) || reg_tainted(insn.src)) {
                    // A tainted input is unavailable to the stock
                    // replay, which leaves the flags unknown here.
                    taint_dst(insn.dst);
                    flags_known = false;
                } else {
                    flags_value = r.flags;
                    flags_known = true;
                    flag_src_mask = static_cast<uint16_t>(
                        (1u << gprIndex(insn.dst)) |
                        (1u << gprIndex(insn.src)));
                }
            } else {
                pm.invalidateReg(insn.dst);
                flags_known = false;
            }
            break;
          }

          case Op::kAluRI: {
            if (auto a = src_val(insn.dst)) {
                const auto r = isa::evalAlu(
                    insn.alu, *a, static_cast<uint64_t>(insn.imm));
                pm.setReg(insn.dst, r.value);
                if (reg_tainted(insn.dst)) {
                    taint_dst(insn.dst);
                    flags_known = false;
                } else {
                    flags_value = r.flags;
                    flags_known = true;
                    flag_src_mask =
                        static_cast<uint16_t>(1u << gprIndex(insn.dst));
                }
            } else {
                pm.invalidateReg(insn.dst);
                flags_known = false;
            }
            break;
          }

          case Op::kCall:
          case Op::kCallInd:
          case Op::kPush: {
            uint64_t value_known = insn.op != Op::kPush;
            uint64_t value = idx + 1;
            if (insn.op == Op::kPush) {
                if (auto v = src_val(insn.src);
                    v && !reg_tainted(insn.src)) {
                    value = *v;
                    value_known = true;
                }
            }
            if (auto rsp = src_val(Reg::rsp);
                rsp && !reg_tainted(Reg::rsp)) {
                const uint64_t addr = *rsp - 8;
                const bool sampled_here = is_sample;
                emit_access(0, sampled_here ? win.s1->addr : addr, 8, true,
                            false, false);
                if (value_known)
                    pm.writeMem(addr, value, 8);
                else
                    pm.invalidateMem(addr, 8);
                pm.setReg(Reg::rsp, addr);
            } else {
                note_hint();
                pm.invalidateMemory();
                // A tainted rsp becomes plain-unavailable, as it is to
                // the stock replay.
                pm.invalidateReg(Reg::rsp);
            }
            break;
          }

          case Op::kRet: {
            if (auto rsp = src_val(Reg::rsp);
                rsp && !reg_tainted(Reg::rsp)) {
                emit_access(0, is_sample ? win.s1->addr : *rsp, 8, false,
                            false, false);
                pm.setReg(Reg::rsp, *rsp + 8);
            } else {
                note_hint();
                pm.invalidateReg(Reg::rsp);
            }
            break;
          }

          case Op::kPop: {
            if (auto rsp = src_val(Reg::rsp);
                rsp && !reg_tainted(Reg::rsp)) {
                emit_access(0, is_sample ? win.s1->addr : *rsp, 8, false,
                            false, false);
                if (auto v = pm.readMem(*rsp, 8))
                    pm.setReg(insn.dst, *v);
                else
                    pm.invalidateReg(insn.dst);
                pm.setReg(Reg::rsp, *rsp + 8);
            } else {
                note_hint();
                pm.invalidateReg(insn.dst);
                pm.invalidateReg(Reg::rsp);
            }
            break;
          }

          case Op::kAtomicRmw: {
            uint64_t addr;
            if (is_sample) {
                addr = win.s1->addr;
            } else if (auto ea = try_ea(insn.mem);
                       ea && !mem_tainted(insn.mem)) {
                addr = *ea;
            } else {
                note_hint();
                pm.invalidateReg(insn.dst);
                pm.invalidateMemory();
                break;
            }
            emit_access(0, addr, insn.width, false, true,
                        insn.mem.rip_relative);
            emit_access(1, addr, insn.width, true, true,
                        insn.mem.rip_relative);
            auto old = pm.readMem(addr, insn.width);
            auto rhs = src_val(insn.src);
            if (reg_tainted(insn.src))
                rhs = std::nullopt;
            if (old) {
                pm.setReg(insn.dst,
                          isa::extendFromWidth(*old, insn.width, false));
            } else {
                pm.invalidateReg(insn.dst);
            }
            if (old && rhs) {
                pm.writeMem(addr,
                            isa::truncateToWidth(
                                isa::evalAlu(insn.alu, *old, *rhs).value,
                                insn.width),
                            insn.width);
            } else {
                pm.invalidateMem(addr, insn.width);
            }
            break;
          }

          case Op::kCas: {
            uint64_t addr;
            if (is_sample) {
                addr = win.s1->addr;
            } else if (auto ea = try_ea(insn.mem);
                       ea && !mem_tainted(insn.mem)) {
                addr = *ea;
            } else {
                note_hint();
                pm.invalidateReg(insn.dst);
                pm.invalidateMemory();
                break;
            }
            emit_access(0, addr, insn.width, false, true,
                        insn.mem.rip_relative);
            auto old = pm.readMem(addr, insn.width);
            auto expected = src_val(insn.dst);
            auto desired = src_val(insn.src);
            if (reg_tainted(insn.dst))
                expected = std::nullopt;
            if (reg_tainted(insn.src))
                desired = std::nullopt;
            if (old && expected && desired) {
                if (*old == isa::truncateToWidth(*expected, insn.width)) {
                    emit_access(1, addr, insn.width, true, true,
                                insn.mem.rip_relative);
                    pm.writeMem(addr,
                                isa::truncateToWidth(*desired, insn.width),
                                insn.width);
                } else {
                    pm.setReg(insn.dst,
                              isa::extendFromWidth(*old, insn.width,
                                                   false));
                }
            } else {
                // Outcome unknown: the destination and the location both
                // become unavailable.
                pm.invalidateReg(insn.dst);
                pm.invalidateMem(addr, insn.width);
            }
            flags_known = false;
            break;
          }

          case Op::kLoadAcq: {
            uint64_t addr;
            if (is_sample) {
                addr = win.s1->addr;
            } else if (auto ea = try_ea(insn.mem)) {
                addr = *ea;
                if (mem_tainted(insn.mem)) {
                    note_hint();
                    if (granule_immutable(addr, insn.width)) {
                        emit_constant(0, addr, insn.width, true);
                        pm.setReg(insn.dst,
                                  isa::extendFromWidth(
                                      pt_const->constantAt(addr,
                                                           insn.width),
                                      insn.width, false));
                        taint_dst(insn.dst);
                    } else {
                        pm.invalidateReg(insn.dst);
                    }
                    break;
                }
            } else {
                note_hint();
                pm.invalidateReg(insn.dst);
                break;
            }
            emit_access(0, addr, insn.width, false, true,
                        insn.mem.rip_relative);
            // Another thread published this location: the emulated value
            // (if any) may be stale, so only the register is refreshed
            // when the location is still trusted.
            if (auto v = pm.readMem(addr, insn.width)) {
                pm.setReg(insn.dst,
                          isa::extendFromWidth(*v, insn.width, false));
            } else if (pt_const &&
                       pt_const->immutableCovers(addr, insn.width)) {
                pm.setReg(insn.dst,
                          isa::extendFromWidth(
                              pt_const->constantAt(addr, insn.width),
                              insn.width, false));
                taint_dst(insn.dst);
            } else {
                pm.invalidateReg(insn.dst);
            }
            break;
          }

          case Op::kStoreRel: {
            uint64_t addr;
            if (is_sample) {
                addr = win.s1->addr;
            } else if (auto ea = try_ea(insn.mem);
                       ea && !mem_tainted(insn.mem)) {
                addr = *ea;
            } else {
                note_hint();
                pm.invalidateMemory();
                break;
            }
            emit_access(0, addr, insn.width, true, true,
                        insn.mem.rip_relative);
            if (auto value = src_val(insn.src);
                value && !reg_tainted(insn.src)) {
                pm.writeMem(addr, isa::truncateToWidth(*value, insn.width),
                            insn.width);
            } else {
                pm.invalidateMem(addr, insn.width);
            }
            break;
          }

          case Op::kAtomicRmwAcqRel: {
            uint64_t addr;
            if (is_sample) {
                addr = win.s1->addr;
            } else if (auto ea = try_ea(insn.mem);
                       ea && !mem_tainted(insn.mem)) {
                addr = *ea;
            } else {
                note_hint();
                pm.invalidateReg(insn.dst);
                pm.invalidateMemory();
                break;
            }
            emit_access(0, addr, insn.width, false, true,
                        insn.mem.rip_relative);
            emit_access(1, addr, insn.width, true, true,
                        insn.mem.rip_relative);
            auto old = pm.readMem(addr, insn.width);
            auto rhs = src_val(insn.src);
            if (reg_tainted(insn.src))
                rhs = std::nullopt;
            if (old) {
                pm.setReg(insn.dst,
                          isa::extendFromWidth(*old, insn.width, false));
            } else {
                pm.invalidateReg(insn.dst);
            }
            if (old && rhs) {
                pm.writeMem(addr,
                            isa::truncateToWidth(
                                isa::evalAlu(insn.alu, *old, *rhs).value,
                                insn.width),
                            insn.width);
            } else {
                pm.invalidateMem(addr, insn.width);
            }
            break;
          }

          // Synchronization and allocation routines run library/kernel
          // code: emulated memory does not survive them (the scheduler
          // may have run other threads meanwhile).
          case Op::kLock:
          case Op::kUnlock:
          case Op::kCondWait:
          case Op::kCondSignal:
          case Op::kCondBcast:
          case Op::kBarrier:
          case Op::kJoin:
          case Op::kFree:
          case Op::kRwRdLock:
          case Op::kRwWrLock:
          case Op::kRwUnlock:
          case Op::kSemInit:
          case Op::kSemWait:
          case Op::kSemPost:
          case Op::kSpinLock:
          case Op::kSpinUnlock:
            pm.invalidateMemory();
            break;

          case Op::kSpawn:
          case Op::kMalloc: {
            pm.invalidateMemory();
            // The sync trace logs the result (child tid / block address),
            // so the offline replay knows this call's return value.
            const trace::SyncRecord *rec = nullptr;
            if (win.sync_at) {
                if (auto it = win.sync_at->find(pos);
                    it != win.sync_at->end()) {
                    rec = it->second;
                }
            }
            if (rec) {
                pm.setReg(insn.dst, insn.op == Op::kMalloc ? rec->object
                                                           : rec->aux);
            } else {
                pm.invalidateReg(insn.dst);
            }
            break;
          }

          case Op::kSyscall:
            pm.invalidateMemory();
            pm.invalidateReg(Reg::rax);
            break;
        }
        // Any register this instruction may write sheds its taint unless
        // the case above explicitly re-tainted the destination.
        taint = static_cast<uint16_t>(
            (taint &
             static_cast<uint16_t>(~analysis::regWriteMask(insn))) |
            taint_new);
    }

    // consumedAddresses() is rebuilt from the per-page consumed bitmaps,
    // so materialize it once per pass.
    const std::unordered_set<uint64_t> consumed = pm.consumedAddresses();
    consumed_.insert(consumed.begin(), consumed.end());
    stats_.program_map.merge(pm.memStats());

    if (win.s2) {
        for (unsigned r = 0; r < isa::kNumGprs; ++r) {
            const Reg reg = isa::gprFromIndex(r);
            // Tainted registers carry knowledge the stock replay lacks;
            // they take no part in the closing-sample cross-check.
            if ((taint >> r) & 1u)
                continue;
            if (pm.regAvailable(reg) &&
                pm.regValue(reg) != win.s2->regs.gpr[r]) {
                ++stats_.violations_end;
                violation(win.end ? win.end - 1 : 0);
            }
        }
    }
}

void
Replayer::backwardScan(const Window &win, const pmu::ThreadPath &path,
                       const FactList &hints, FactList &facts_out,
                       bool *consistent_out)
{
    size_t hint_cursor = hints.size(); // consumed in descending order

    PRORACE_ASSERT(win.s2, "backward scan requires an ending sample");
    // K[r]: value of register r at the *pre-state* of the current
    // position, where known.
    std::array<std::optional<uint64_t>, isa::kNumGprs> know;
    for (unsigned r = 0; r < isa::kNumGprs; ++r)
        know[r] = win.s2->regs.gpr[r];

    auto record_fact = [&](uint64_t pos, Reg reg, uint64_t value) {
        if (pos >= win.end)
            return;
        facts_out.push_back({pos, reg, value});
    };

    // Fast path over straight-line block runs: run_start[rel] is the
    // lowest position of the maximal same-block consecutive-index run
    // containing position win.start + rel. When the whole block's kill
    // mask misses every known register, no instruction of the run can
    // record a fact, invert, learn, or contradict anything — the scan
    // state is provably unchanged across the run, so it is skipped in
    // one step (down to the nearest forward hint, which still must be
    // merged).
    const analysis::ProgramAnalysis *pa = config_.analysis;
    std::vector<uint64_t> run_start;
    if (pa && win.end > win.start) {
        run_start.resize(win.end - win.start);
        for (uint64_t rel = 0; rel < run_start.size(); ++rel) {
            const uint64_t p = win.start + rel;
            const uint32_t i = path.insns[p];
            run_start[rel] = p;
            if (rel == 0 || i == kPathGap)
                continue;
            const uint32_t prev = path.insns[p - 1];
            if (prev != kPathGap && prev + 1 == i &&
                program_.blockOf(prev) == program_.blockOf(i)) {
                run_start[rel] = run_start[rel - 1];
            }
        }
    }

    // Registers that survive all the way to the window end are injected
    // wherever their validity begins; writes terminate validity.
    for (uint64_t pp = win.end; pp-- > win.start;) {
        const uint32_t idx = path.insns[pp];
        if (idx == kPathGap) {
            // Unknown code: nothing is known before this point; inject
            // the survivors right after the gap.
            for (unsigned r = 0; r < isa::kNumGprs; ++r) {
                if (know[r]) {
                    record_fact(pp + 1, isa::gprFromIndex(r), *know[r]);
                    know[r] = std::nullopt;
                }
            }
            continue;
        }
        if (pa) {
            const uint64_t run_lo = run_start[pp - win.start];
            uint16_t known_mask = 0;
            for (unsigned r = 0; r < isa::kNumGprs; ++r) {
                if (know[r])
                    known_mask |= static_cast<uint16_t>(1u << r);
            }
            if (run_lo < pp &&
                (known_mask & pa->blockKill(program_.blockOf(idx))) == 0) {
                // Stop early at the highest pending hint in the run so
                // its merge into the known set is not lost.
                size_t c = hint_cursor;
                while (c > 0 && hints[c - 1].pos > pp)
                    --c;
                uint64_t stop = run_lo;
                if (c > 0 && hints[c - 1].pos >= run_lo)
                    stop = hints[c - 1].pos;
                if (stop < pp) {
                    hint_cursor = c;
                    pp = stop + 1; // loop decrement lands on stop
                    continue;
                }
            }
        }
        const Insn &insn = program_.insnAt(idx);
        const uint16_t wmask = pa ? pa->facts(idx).kill
                                  : regWriteMask(insn);

        std::array<std::optional<uint64_t>, isa::kNumGprs> next = know;
        // Default: a write makes the pre-state unknown; the surviving
        // post-state value is injected just after the write (backward
        // propagation, §5.2.1).
        for (unsigned r = 0; r < isa::kNumGprs; ++r) {
            if ((wmask >> r) & 1u) {
                if (know[r])
                    record_fact(pp + 1, isa::gprFromIndex(r), *know[r]);
                next[r] = std::nullopt;
            }
        }

        // Reverse execution (§5.2.2): invert what can be inverted and
        // learn operands from copies.
        switch (insn.op) {
          case Op::kMovRI:
            // The post-state of an immediate move is statically known:
            // a derived value that contradicts it means the closing
            // sample was matched to the wrong path position, and the
            // whole window is suspect.
            if (know[gprIndex(insn.dst)] &&
                *know[gprIndex(insn.dst)] !=
                    static_cast<uint64_t>(insn.imm) &&
                consistent_out) {
                ++stats_.violations_backward;
                *consistent_out = false;
            }
            break;
          case Op::kLea:
            if (insn.mem.rip_relative) {
                if (know[gprIndex(insn.dst)] &&
                    *know[gprIndex(insn.dst)] !=
                        static_cast<uint64_t>(insn.mem.disp) &&
                    consistent_out) {
                    ++stats_.violations_backward;
                    *consistent_out = false;
                }
                break;
            }
            // dst_post = base_pre + disp (single-base operands only).
            if (know[gprIndex(insn.dst)] &&
                insn.mem.base != Reg::none &&
                insn.mem.index == Reg::none) {
                const uint64_t base_pre = *know[gprIndex(insn.dst)] -
                    static_cast<uint64_t>(insn.mem.disp);
                if (!next[gprIndex(insn.mem.base)]) {
                    next[gprIndex(insn.mem.base)] = base_pre;
                    record_fact(pp, insn.mem.base, base_pre);
                }
            }
            break;
          case Op::kAluRI:
            if (invertibleAlu(insn.alu) && know[gprIndex(insn.dst)]) {
                uint64_t pre = 0;
                if (isa::invertAlu(insn.alu, *know[gprIndex(insn.dst)],
                                   static_cast<uint64_t>(insn.imm), pre)) {
                    next[gprIndex(insn.dst)] = pre;
                }
            }
            break;
          case Op::kAluRR:
            if (invertibleAlu(insn.alu) && insn.src != insn.dst &&
                know[gprIndex(insn.dst)] && know[gprIndex(insn.src)]) {
                uint64_t pre = 0;
                if (isa::invertAlu(insn.alu, *know[gprIndex(insn.dst)],
                                   *know[gprIndex(insn.src)], pre)) {
                    next[gprIndex(insn.dst)] = pre;
                }
            }
            break;
          case Op::kMovRR:
            // dst_post == src_pre == src_post: learn the source.
            if (know[gprIndex(insn.dst)] && insn.src != insn.dst) {
                if (!next[gprIndex(insn.src)]) {
                    next[gprIndex(insn.src)] = *know[gprIndex(insn.dst)];
                    record_fact(pp, insn.src, *know[gprIndex(insn.dst)]);
                }
            }
            break;
          case Op::kPush:
          case Op::kCall:
          case Op::kCallInd:
            if (know[gprIndex(Reg::rsp)])
                next[gprIndex(Reg::rsp)] = *know[gprIndex(Reg::rsp)] + 8;
            break;
          case Op::kPop:
          case Op::kRet:
            if (know[gprIndex(Reg::rsp)])
                next[gprIndex(Reg::rsp)] = *know[gprIndex(Reg::rsp)] - 8;
            break;
          default:
            break;
        }

        know = next;

        // Forward hints: registers the previous forward pass knew at
        // this position extend the backward knowledge (fixed-point
        // iteration between the two directions).
        while (hint_cursor > 0 && hints[hint_cursor - 1].pos > pp)
            --hint_cursor;
        for (size_t i = hint_cursor; i > 0 && hints[i - 1].pos == pp;
             --i) {
            const ReplayFact &hint = hints[i - 1];
            if (!know[gprIndex(hint.reg)])
                know[gprIndex(hint.reg)] = hint.val;
        }
    }

    // Survivors reach the window start.
    for (unsigned r = 0; r < isa::kNumGprs; ++r) {
        if (know[r])
            record_fact(win.start, isa::gprFromIndex(r), *know[r]);
    }
}

void
Replayer::replayWindow(const Window &win, const pmu::ThreadPath &path,
                       const ThreadAlignment &alignment,
                       const trace::RunTrace &run, EmitMap &emit_out)
{
    (void)alignment;
    ++stats_.windows;
    // Reconstruct into a window-local buffer. Consistency violations
    // (branch directions or known immediates contradicting the replayed
    // state, forward/backward disagreement, closing-sample mismatch)
    // mean part of the window is suspect: forward-derived events past
    // the first forward violation are dropped, and backward-derived
    // events are dropped whenever the backward side is implicated —
    // FastTrack's no-false-positive guarantee is worth more than the
    // extra coverage.
    EmitMap emit;
    bool fwd_ok = true;
    uint64_t fwd_bad_pos = ~0ull;
    bool bwd_ok = true;

    if (config_.mode == ReplayMode::kForwardOnly || !win.s2) {
        forwardPass(win, path, run, {}, AccessOrigin::kForward, emit,
                    nullptr, &fwd_ok, &fwd_bad_pos);
    } else {
        // Round 0: plain forward replay; collects hints at unresolved
        // memory instructions and classifies forward-recoverable
        // accesses.
        FactList hints;
        forwardPass(win, path, run, {}, AccessOrigin::kForward, emit,
                    &hints, &fwd_ok, &fwd_bad_pos);

        auto by_pos = [](const ReplayFact &a, const ReplayFact &b) {
            return a.pos < b.pos;
        };
        size_t emitted = emit.entries.size();
        for (int round = 0; round < config_.max_backward_rounds; ++round) {
            ++stats_.backward_rounds;
            FactList facts;
            backwardScan(win, path, hints, facts, &bwd_ok);
            if (facts.empty())
                break;
            std::stable_sort(facts.begin(), facts.end(), by_pos);
            hints.clear();
            bool mixed_ok = true;
            uint64_t mixed_bad_pos = ~0ull;
            forwardPass(win, path, run, facts, AccessOrigin::kBackward,
                        emit, &hints, &mixed_ok, &mixed_bad_pos);
            if (!mixed_ok && mixed_bad_pos < fwd_bad_pos) {
                // A violation in a region the plain forward pass had
                // validated implicates the injected backward facts.
                bwd_ok = false;
            }
            if (emit.entries.size() == emitted)
                break;
            emitted = emit.entries.size();
        }
    }

    if (!fwd_ok || !bwd_ok)
        ++stats_.inconsistent_windows;

    for (const auto &[key, acc] : emit.entries) {
        // PC-relative addresses derive from the PT path alone and
        // sampled accesses from the hardware record; both always
        // survive.
        bool keep = true;
        switch (acc.origin) {
          case AccessOrigin::kForward:
            keep = acc.position < fwd_bad_pos;
            break;
          case AccessOrigin::kBackward:
            keep = bwd_ok && acc.position < fwd_bad_pos;
            break;
          default:
            break;
        }
        if (!keep) {
            if (acc.origin == AccessOrigin::kForward)
                --stats_.recovered_forward;
            else
                --stats_.recovered_backward;
            continue;
        }
        emit_out.entries.insert({key, acc});
    }
}

void
Replayer::replayBasicBlock(const trace::PebsRecord &rec, EmitMap &emit)
{
    const uint32_t block = program_.blockOf(rec.insn_index);
    const uint32_t begin = program_.blockBegin(block);
    const uint32_t end = program_.blockEnd(block);

    // Synthetic path covering exactly this basic block; the sample's
    // position within it anchors the register file.
    pmu::ThreadPath bb_path;
    bb_path.tid = rec.tid;
    for (uint32_t i = begin; i < end; ++i)
        bb_path.insns.push_back(i);
    const uint64_t sample_pos = rec.insn_index - begin;

    // Forward part: from the sample to the end of the block.
    Window fwd;
    fwd.tid = rec.tid;
    fwd.start = sample_pos;
    fwd.end = bb_path.insns.size();
    fwd.s1 = &rec;
    bool consistent = true;
    forwardPass(fwd, bb_path, {}, {}, AccessOrigin::kForward, emit,
                nullptr, &consistent, nullptr);

    // Trivial backward propagation: registers not written between a
    // block position and the sample hold their sampled values there
    // (RaceZ's single-basic-block scheme).
    if (sample_pos > 0) {
        const analysis::ProgramAnalysis *pa = config_.analysis;
        FactList facts;
        uint16_t written = 0;
        std::vector<uint16_t> mask_from(sample_pos);
        for (uint64_t p = sample_pos; p-- > 0;) {
            const uint32_t i = bb_path.insns[p];
            written |= pa ? pa->facts(i).kill
                          : regWriteMask(program_.insnAt(i));
            mask_from[p] = written;
        }
        for (uint64_t p = 0; p < sample_pos; ++p) {
            for (unsigned r = 0; r < isa::kNumGprs; ++r) {
                if (!((mask_from[p] >> r) & 1u))
                    facts.push_back({p, isa::gprFromIndex(r),
                                     rec.regs.gpr[r]});
            }
        }
        Window bwd;
        bwd.tid = rec.tid;
        bwd.start = 0;
        bwd.end = sample_pos;
        forwardPass(bwd, bb_path, {}, facts, AccessOrigin::kForward, emit,
                    nullptr, nullptr, nullptr);
    }
}

std::map<uint64_t, const trace::SyncRecord *>
Replayer::syncAtMap(const ThreadAlignment &alignment,
                    const trace::RunTrace &run)
{
    // malloc/pthread_create results are visible to the offline phase via
    // the sync trace; map them to path positions for register recovery.
    std::map<uint64_t, const trace::SyncRecord *> sync_at;
    for (const AlignedSync &s : alignment.syncs) {
        const trace::SyncRecord &rec = run.sync[s.record_index];
        if (rec.kind == vm::SyncKind::kMalloc ||
            rec.kind == vm::SyncKind::kSpawn) {
            sync_at[s.position] = &rec;
        }
    }
    return sync_at;
}

std::vector<Replayer::Window>
Replayer::buildWindows(
    const pmu::ThreadPath &path, const ThreadAlignment &alignment,
    const trace::RunTrace &run,
    const std::map<uint64_t, const trace::SyncRecord *> &sync_at)
{
    std::vector<Window> windows;
    const auto &samples = alignment.samples;
    if (samples.empty()) {
        Window w;
        w.tid = path.tid;
        w.start = 0;
        w.end = path.insns.size();
        w.sync_at = &sync_at;
        windows.push_back(w);
    } else {
        if (samples.front().position > 0) {
            Window w;
            w.tid = path.tid;
            w.start = 0;
            w.end = samples.front().position;
            w.s2 = &run.pebs[samples.front().record_index];
            w.sync_at = &sync_at;
            windows.push_back(w);
        }
        for (size_t i = 0; i < samples.size(); ++i) {
            Window w;
            w.tid = path.tid;
            w.start = samples[i].position;
            w.end = i + 1 < samples.size() ? samples[i + 1].position
                                           : path.insns.size();
            w.s1 = &run.pebs[samples[i].record_index];
            w.s2 = i + 1 < samples.size()
                ? &run.pebs[samples[i + 1].record_index]
                : nullptr;
            w.sync_at = &sync_at;
            windows.push_back(w);
        }
    }
    return windows;
}

void
Replayer::replayThread(const pmu::ThreadPath &path,
                       const ThreadAlignment &alignment,
                       const trace::RunTrace &run,
                       std::vector<ReconstructedAccess> &out)
{
    const std::map<uint64_t, const trace::SyncRecord *> sync_at =
        syncAtMap(alignment, run);
    EmitMap emit;
    for (const Window &w : buildWindows(path, alignment, run, sync_at))
        replayWindow(w, path, alignment, run, emit);
    finalizeThread(path, alignment, run, emit, out);
}

void
Replayer::finalizeThread(const pmu::ThreadPath &path,
                         const ThreadAlignment &alignment,
                         const trace::RunTrace &run, EmitMap &emit,
                         std::vector<ReconstructedAccess> &out)
{
    for (auto &[key, acc] : emit.entries) {
        acc.tsc = alignment.tscAt(acc.position);
        out.push_back(acc);
    }

    // Samples that could not be located on the path (typically taken
    // inside untraced library code) still carry an exact access.
    std::unordered_set<size_t> matched;
    for (const AlignedSample &s : alignment.samples)
        matched.insert(s.record_index);
    for (size_t i = 0; i < run.pebs.size(); ++i) {
        const trace::PebsRecord &rec = run.pebs[i];
        if (rec.tid != path.tid || matched.count(i))
            continue;
        ReconstructedAccess acc;
        acc.tid = rec.tid;
        acc.insn_index = rec.insn_index;
        acc.addr = rec.addr;
        acc.width = rec.width;
        acc.is_write = rec.is_write;
        acc.is_atomic = rec.is_atomic;
        acc.tsc = rec.tsc;
        acc.origin = detect::AccessOrigin::kSampled;
        // Position is unknown; use the nearest path position by time so
        // the detector's same-thread ordering stays sane.
        acc.position = 0;
        ++stats_.sampled;
        out.push_back(acc);
    }
}

std::vector<ReconstructedAccess>
Replayer::replayAll(const std::map<uint32_t, pmu::ThreadPath> &paths,
                    const std::map<uint32_t, ThreadAlignment> &alignments,
                    const trace::RunTrace &run)
{
    std::vector<ReconstructedAccess> out;

    if (config_.mode == ReplayMode::kBasicBlock) {
        // RaceZ does not use PT: every sample is reconstructed within
        // its static basic block, ordered by sample time.
        for (const trace::PebsRecord &rec : run.pebs) {
            EmitMap emit;
            replayBasicBlock(rec, emit);
            for (auto &[key, acc] : emit.entries) {
                // Order accesses around the sample's timestamp while
                // preserving intra-block program order.
                const int64_t delta =
                    static_cast<int64_t>(acc.position) -
                    static_cast<int64_t>(rec.insn_index -
                                         program_.blockBegin(
                                             program_.blockOf(
                                                 rec.insn_index)));
                acc.tsc = rec.tsc + delta;
                out.push_back(acc);
            }
        }
    } else {
        for (const auto &[tid, path] : paths) {
            auto it = alignments.find(tid);
            if (it == alignments.end())
                continue;
            replayThread(path, it->second, run, out);
        }
        // Samples of threads without decoded paths still contribute
        // their own access.
        for (const trace::PebsRecord &rec : run.pebs) {
            if (paths.count(rec.tid))
                continue;
            ReconstructedAccess acc;
            acc.tid = rec.tid;
            acc.insn_index = rec.insn_index;
            acc.addr = rec.addr;
            acc.width = rec.width;
            acc.is_write = rec.is_write;
            acc.is_atomic = rec.is_atomic;
            acc.tsc = rec.tsc;
            acc.origin = AccessOrigin::kSampled;
            ++stats_.sampled;
            out.push_back(acc);
        }
    }

    sortByTsc(out);
    return out;
}

void
Replayer::sortByTsc(std::vector<ReconstructedAccess> &out)
{
    // stable_sort: ties — e.g. an atomic RMW's read and write halves at
    // the same (tsc, tid, position) — keep their construction order, so
    // any path that assembles the same pre-sort sequence gets the same
    // post-sort sequence regardless of sort internals.
    std::stable_sort(out.begin(), out.end(),
                     [](const ReconstructedAccess &a,
                        const ReconstructedAccess &b) {
                         if (a.tsc != b.tsc)
                             return a.tsc < b.tsc;
                         if (a.tid != b.tid)
                             return a.tid < b.tid;
                         return a.position < b.position;
                     });
}

} // namespace prorace::replay

#include "replay/align.hh"

#include <algorithm>

#include "analysis/analysis.hh"
#include "replay/static_info.hh"
#include "support/log.hh"

namespace prorace::replay {

using isa::Op;
using pmu::kPathGap;
using pmu::PathAnchor;
using vm::SyncKind;

uint64_t
ThreadAlignment::tscAt(uint64_t position) const
{
    if (anchors.empty())
        return 0;
    // First anchor at or after the position.
    auto it = std::lower_bound(anchors.begin(), anchors.end(), position,
                               [](const PathAnchor &a, uint64_t pos) {
                                   return a.position < pos;
                               });
    if (it == anchors.begin())
        return it->tsc;
    if (it == anchors.end())
        return anchors.back().tsc;
    const PathAnchor &hi = *it;
    const PathAnchor &lo = *(it - 1);
    if (hi.position == lo.position)
        return lo.tsc;
    const double frac =
        static_cast<double>(position - lo.position) /
        static_cast<double>(hi.position - lo.position);
    uint64_t t = lo.tsc +
        static_cast<uint64_t>(frac * static_cast<double>(hi.tsc - lo.tsc));
    // Keep strictly inside the bracket where possible, so interpolated
    // events never tie with (exactly-timestamped) anchor events.
    if (t == lo.tsc && position > lo.position && hi.tsc > lo.tsc)
        ++t;
    if (t == hi.tsc && position < hi.position && t > lo.tsc + 1)
        --t;
    return t;
}

namespace {

/** How many sync records one retired sync instruction produces. */
int
recordsForSyncOp(Op op)
{
    switch (op) {
      case Op::kCondWait: // CondWaitBegin + CondWake
      case Op::kBarrier:  // BarrierEnter + BarrierExit
        return 2;
      default:
        return 1;
    }
}

/** Sort anchors by position and force TSC monotonicity. */
void
canonicalizeAnchors(std::vector<PathAnchor> &anchors)
{
    std::stable_sort(anchors.begin(), anchors.end(),
                     [](const PathAnchor &a, const PathAnchor &b) {
                         return a.position < b.position;
                     });
    uint64_t cummax = 0;
    for (PathAnchor &a : anchors) {
        cummax = std::max(cummax, a.tsc);
        a.tsc = cummax;
    }
}

} // namespace

std::map<uint32_t, ThreadAlignment>
alignTrace(const asmkit::Program &program,
           const std::map<uint32_t, pmu::ThreadPath> &paths,
           const trace::RunTrace &run, AlignStats *stats,
           const analysis::ProgramAnalysis *analysis)
{
    std::map<uint32_t, ThreadAlignment> out;

    // Group sync and PEBS records per thread, preserving order.
    std::map<uint32_t, std::vector<size_t>> sync_by_tid;
    for (size_t i = 0; i < run.sync.size(); ++i)
        sync_by_tid[run.sync[i].tid].push_back(i);
    std::map<uint32_t, std::vector<size_t>> pebs_by_tid;
    for (size_t i = 0; i < run.pebs.size(); ++i)
        pebs_by_tid[run.pebs[i].tid].push_back(i);
    for (auto &[tid, indices] : pebs_by_tid) {
        std::stable_sort(indices.begin(), indices.end(),
                         [&](size_t a, size_t b) {
                             return run.pebs[a].tsc < run.pebs[b].tsc;
                         });
    }

    for (const auto &[tid, path] : paths) {
        ThreadAlignment align;
        align.tid = tid;

        // --- match sync records to sync instructions on the path ---
        const auto &sync_ids = sync_by_tid[tid];
        size_t cursor = 0;
        // Leading ThreadStart record anchors the path start.
        if (cursor < sync_ids.size() &&
            run.sync[sync_ids[cursor]].kind == SyncKind::kThreadStart) {
            align.anchors.push_back({0, run.sync[sync_ids[cursor]].tsc});
            align.syncs.push_back({sync_ids[cursor], 0});
            ++cursor;
        }
        for (uint64_t pos = 0; pos < path.insns.size(); ++pos) {
            const uint32_t index = path.insns[pos];
            if (index == kPathGap)
                continue;
            const isa::Insn &insn = program.insnAt(index);
            int expect = 0;
            if (isa::isSyncOp(insn.op))
                expect = recordsForSyncOp(insn.op);
            else if (insn.op == Op::kHalt)
                expect = 1; // ThreadExit
            for (int k = 0; k < expect && cursor < sync_ids.size(); ++k) {
                const trace::SyncRecord &rec = run.sync[sync_ids[cursor]];
                if (rec.insn_index != index) {
                    warn("sync record desync for tid ", tid, ": record at #",
                         rec.insn_index, " vs path #", index);
                    break;
                }
                align.syncs.push_back({sync_ids[cursor], pos});
                align.anchors.push_back({pos, rec.tsc});
                ++cursor;
            }
        }
        canonicalizeAnchors(align.anchors);

        // PT timing anchors are conservative bounds (the decoder proves
        // retirement only up to the last applied packet), so they are
        // admitted only where they fit monotonically between the exact
        // synchronization anchors.
        {
            std::vector<PathAnchor> accepted_pt;
            for (const PathAnchor &pa : path.anchors) {
                auto next = std::lower_bound(
                    align.anchors.begin(), align.anchors.end(),
                    pa.position,
                    [](const PathAnchor &a, uint64_t pos) {
                        return a.position < pos;
                    });
                const bool ok_next =
                    next == align.anchors.end() || pa.tsc <= next->tsc;
                const bool ok_prev = next == align.anchors.begin() ||
                    (next - 1)->tsc <= pa.tsc;
                if (ok_prev && ok_next)
                    accepted_pt.push_back(pa);
            }
            align.anchors.insert(align.anchors.end(),
                                 accepted_pt.begin(), accepted_pt.end());
            canonicalizeAnchors(align.anchors);
        }

        // --- match PEBS samples to path positions ---
        const auto &sample_ids = pebs_by_tid[tid];
        std::vector<PathAnchor> sample_anchors;

        // Prefix counts of PEBS-countable memory events along the path:
        // two samples taken back-to-back on one core are exactly one
        // period of memory events apart, a powerful disambiguator when
        // the core ran a single thread in between.
        std::vector<uint64_t> memop_prefix(path.insns.size() + 1, 0);
        std::vector<uint32_t> gap_prefix(path.insns.size() + 1, 0);
        for (uint64_t i = 0; i < path.insns.size(); ++i) {
            const uint32_t pi = path.insns[i];
            memop_prefix[i + 1] = memop_prefix[i] +
                (pi == kPathGap ? 0
                 : analysis    ? analysis->facts(pi).mem_ops
                               : memOpCount(program.insnAt(pi)));
            gap_prefix[i + 1] = gap_prefix[i] + (pi == kPathGap ? 1 : 0);
        }
        const uint64_t period = run.meta.pebs_period;
        constexpr uint64_t kDistanceSlack = 2;

        // True when no other thread's sample landed on this core between
        // the two records (the counter then counted only this thread).
        auto exclusive_on_core = [&](const trace::PebsRecord &a,
                                     const trace::PebsRecord &b) {
            if (a.core != b.core)
                return false;
            for (const trace::PebsRecord &other : run.pebs) {
                if (other.core == a.core && other.tid != tid &&
                    other.tsc > a.tsc && other.tsc < b.tsc) {
                    return false;
                }
            }
            return true;
        };

        // Candidate positions for sample @p si given the previous match,
        // ordered by timing plausibility.
        auto candidates_for = [&](size_t si, int64_t prev_si,
                                  uint64_t prev_pos, uint64_t min_pos) {
            const trace::PebsRecord &rec = run.pebs[sample_ids[si]];
            const trace::PebsRecord *prev_rec =
                prev_si >= 0 ? &run.pebs[sample_ids[prev_si]] : nullptr;

            // Timing bracket from the anchors (with one-anchor slack for
            // the decoder's walk-ahead imprecision).
            uint64_t lo = min_pos, hi = path.insns.size();
            const auto &as = align.anchors;
            auto it = std::lower_bound(as.begin(), as.end(), rec.tsc,
                                       [](const PathAnchor &a, uint64_t t) {
                                           return a.tsc < t;
                                       });
            if (it != as.end()) {
                auto next = it + 1;
                hi = std::min<uint64_t>(
                    (next != as.end() ? next->position : hi) + 1,
                    path.insns.size());
            }
            if (it != as.begin()) {
                auto prev = it - 1;
                if (prev != as.begin())
                    --prev;
                lo = std::max<uint64_t>(lo, prev->position);
            }

            bool use_distance =
                prev_rec && period >= 1 && exclusive_on_core(*prev_rec, rec);

            // First sample in the chain: the driver logged the initial
            // counter value, so when this thread had its core to itself
            // the absolute event count pins the position.
            uint64_t first_window = 0;
            bool use_first = false;
            if (!prev_rec && period >= 1 &&
                rec.core < run.meta.first_periods.size() &&
                run.meta.first_periods[rec.core] >= 1) {
                use_first = true;
                first_window = run.meta.first_periods[rec.core];
                for (const trace::PebsRecord &other : run.pebs) {
                    if (other.core == rec.core && other.tid != tid &&
                        other.tsc < rec.tsc) {
                        use_first = false;
                        break;
                    }
                }
            }

            uint16_t written = 0;
            uint64_t mask_pos = prev_pos;
            std::vector<std::pair<uint64_t, uint64_t>> found; // (diff, pos)
            for (uint64_t pos = lo; pos < hi; ++pos) {
                if (prev_rec && mask_pos <= pos) {
                    while (mask_pos < pos) {
                        const uint32_t pi = path.insns[mask_pos];
                        written |= (pi == kPathGap) ? kGapWriteMask
                            : analysis ? analysis->facts(pi).kill
                                       : regWriteMask(program.insnAt(pi));
                        ++mask_pos;
                    }
                }
                if (path.insns[pos] != rec.insn_index)
                    continue;
                // Untraced (gap) code also retires memory events the
                // counter saw but the path cannot show; the distance
                // filter only applies to gap-free spans.
                const bool gap_free = use_distance
                    ? gap_prefix[pos + 1] == gap_prefix[prev_pos + 1]
                    : gap_prefix[pos + 1] == 0;
                if ((use_distance || use_first) && gap_free) {
                    // Memory events since the reference point must land
                    // on a counter-overflow boundary (dropped samples
                    // skip whole periods).
                    uint64_t d, want;
                    if (use_distance) {
                        d = memop_prefix[pos + 1] -
                            memop_prefix[prev_pos + 1];
                        want = period;
                    } else {
                        d = memop_prefix[pos + 1];
                        want = first_window;
                    }
                    if (d + kDistanceSlack < want) {
                        if (stats)
                            ++stats->candidates_rejected;
                        continue;
                    }
                    const uint64_t rem = (d - want) % period;
                    if (rem > kDistanceSlack &&
                        period - rem > kDistanceSlack) {
                        if (stats)
                            ++stats->candidates_rejected;
                        continue;
                    }
                }
                if (prev_rec) {
                    bool consistent = true;
                    for (unsigned r = 0; r < isa::kNumGprs; ++r) {
                        if ((written >> r) & 1u)
                            continue;
                        if (prev_rec->regs.gpr[r] != rec.regs.gpr[r]) {
                            consistent = false;
                            break;
                        }
                    }
                    if (!consistent) {
                        if (stats)
                            ++stats->candidates_rejected;
                        continue;
                    }
                }
                const uint64_t est = align.tscAt(pos);
                const uint64_t diff =
                    est > rec.tsc ? est - rec.tsc : rec.tsc - est;
                found.emplace_back(diff, pos);
            }
            std::sort(found.begin(), found.end());
            return found;
        };

        uint64_t prev_match_end = 0; ///< one past the previous match
        int64_t prev_sample = -1;    ///< index into sample_ids
        uint64_t prev_pos = 0;
        for (size_t si = 0; si < sample_ids.size(); ++si) {
            auto cands =
                candidates_for(si, prev_sample, prev_pos, prev_match_end);
            if (cands.empty()) {
                if (stats)
                    ++stats->samples_unmatched;
                continue;
            }

            uint64_t chosen = cands.front().second;
            if (prev_sample < 0 && si + 1 < sample_ids.size() &&
                cands.size() > 1) {
                // First sample of the chain: prefer the candidate that
                // leaves the next sample a counter-consistent landing
                // spot (one-step lookahead).
                for (const auto &[diff, pos] : cands) {
                    if (!candidates_for(si + 1, static_cast<int64_t>(si),
                                        pos, pos + 1)
                             .empty()) {
                        chosen = pos;
                        break;
                    }
                }
            }

            align.samples.push_back({sample_ids[si], chosen});
            sample_anchors.push_back({chosen, run.pebs[sample_ids[si]].tsc});
            prev_match_end = chosen + 1;
            prev_sample = static_cast<int64_t>(si);
            prev_pos = chosen;
            if (stats)
                ++stats->samples_matched;
        }

        // Matched samples are exact timing anchors — but a *misplaced*
        // match would poison interpolation for every later position, so
        // accept a sample anchor only if it fits monotonically into the
        // trusted (sync + PT) timeline.
        std::vector<PathAnchor> accepted;
        for (const PathAnchor &sa : sample_anchors) {
            auto next = std::lower_bound(
                align.anchors.begin(), align.anchors.end(), sa.position,
                [](const PathAnchor &a, uint64_t pos) {
                    return a.position < pos;
                });
            const bool ok_next =
                next == align.anchors.end() || sa.tsc <= next->tsc;
            const bool ok_prev = next == align.anchors.begin() ||
                (next - 1)->tsc <= sa.tsc;
            if (ok_prev && ok_next)
                accepted.push_back(sa);
        }
        align.anchors.insert(align.anchors.end(), accepted.begin(),
                             accepted.end());
        canonicalizeAnchors(align.anchors);

        out.emplace(tid, std::move(align));
    }
    return out;
}

} // namespace prorace::replay

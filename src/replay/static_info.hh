/**
 * @file
 * Static per-instruction facts shared by the aligner and the replayer.
 *
 * Thin forwarding layer: the facts themselves live in
 * `analysis/insn_facts.hh`, the single source of truth also used by
 * the CFG/dataflow/escape passes, so the replay layer can never drift
 * from what the analysis layer believes an opcode may touch.
 */

#ifndef PRORACE_REPLAY_STATIC_INFO_HH
#define PRORACE_REPLAY_STATIC_INFO_HH

#include <cstdint>

#include "analysis/insn_facts.hh"
#include "isa/insn.hh"

namespace prorace::replay {

/**
 * Bitmask of GPRs an instruction may write (bit i = gpr i).
 * "May write" is what matters: backward propagation of a register value
 * is valid only across instructions that definitely do not write it.
 */
inline uint16_t
regWriteMask(const isa::Insn &insn)
{
    return analysis::regWriteMask(insn);
}

/** The write mask of a path gap: untraced code may clobber anything. */
inline constexpr uint16_t kGapWriteMask = analysis::kGapWriteMask;

/**
 * Number of PEBS-countable memory events one instruction retires.
 * kCas may retire one or two (the store happens only on success);
 * callers using this for distance arithmetic must allow slack.
 */
inline unsigned
memOpCount(const isa::Insn &insn)
{
    return analysis::memOpCount(insn);
}

} // namespace prorace::replay

#endif // PRORACE_REPLAY_STATIC_INFO_HH

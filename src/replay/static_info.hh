/**
 * @file
 * Static per-instruction facts shared by the aligner and the replayer.
 */

#ifndef PRORACE_REPLAY_STATIC_INFO_HH
#define PRORACE_REPLAY_STATIC_INFO_HH

#include <cstdint>

#include "isa/insn.hh"

namespace prorace::replay {

/**
 * Bitmask of GPRs an instruction may write (bit i = gpr i).
 * "May write" is what matters: backward propagation of a register value
 * is valid only across instructions that definitely do not write it.
 */
inline uint16_t
regWriteMask(const isa::Insn &insn)
{
    using isa::Op;
    using isa::Reg;
    uint16_t mask = 0;
    if (isa::writesDst(insn.op) && isa::isGpr(insn.dst))
        mask |= static_cast<uint16_t>(1u << isa::gprIndex(insn.dst));
    switch (insn.op) {
      case Op::kPush:
      case Op::kPop:
      case Op::kCall:
      case Op::kCallInd:
      case Op::kRet:
        mask |= static_cast<uint16_t>(1u << isa::gprIndex(Reg::rsp));
        break;
      case Op::kSyscall:
        mask |= static_cast<uint16_t>(1u << isa::gprIndex(Reg::rax));
        break;
      default:
        break;
    }
    return mask;
}

/** The write mask of a path gap: untraced code may clobber anything. */
inline constexpr uint16_t kGapWriteMask = 0xffff;

/**
 * Number of PEBS-countable memory events one instruction retires.
 * kCas may retire one or two (the store happens only on success);
 * callers using this for distance arithmetic must allow slack.
 */
inline unsigned
memOpCount(const isa::Insn &insn)
{
    using isa::Op;
    switch (insn.op) {
      case Op::kLoad:
      case Op::kStore:
      case Op::kStoreI:
      case Op::kPush:
      case Op::kPop:
      case Op::kCall:
      case Op::kCallInd:
      case Op::kRet:
        return 1;
      case Op::kAtomicRmw:
      case Op::kCas:
        return 2;
      default:
        return 0;
    }
}

} // namespace prorace::replay

#endif // PRORACE_REPLAY_STATIC_INFO_HH

#include "replay/program_map.hh"

#include <bit>

#include "support/log.hh"

namespace prorace::replay {

using isa::Reg;

namespace {

/** splitmix64 finalizer, same mix as support/flat_map.hh. */
uint64_t
mixHash(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

// --- registers ---

void
ProgramMap::restoreRegs(const vm::RegFile &regs)
{
    values_ = regs.gpr;
    avail_mask_ = 0xffff;
}

bool
ProgramMap::regAvailable(Reg reg) const
{
    PRORACE_ASSERT(isGpr(reg), "availability of non-GPR");
    return (avail_mask_ >> gprIndex(reg)) & 1u;
}

uint64_t
ProgramMap::regValue(Reg reg) const
{
    PRORACE_ASSERT(regAvailable(reg), "read of unavailable register ",
                   isa::regName(reg));
    return values_[gprIndex(reg)];
}

void
ProgramMap::setReg(Reg reg, uint64_t value)
{
    PRORACE_ASSERT(isGpr(reg), "set of non-GPR");
    values_[gprIndex(reg)] = value;
    avail_mask_ |= static_cast<uint16_t>(1u << gprIndex(reg));
}

void
ProgramMap::invalidateReg(Reg reg)
{
    PRORACE_ASSERT(isGpr(reg), "invalidate of non-GPR");
    avail_mask_ &= static_cast<uint16_t>(~(1u << gprIndex(reg)));
}

void
ProgramMap::invalidateAllRegs()
{
    avail_mask_ = 0;
}

unsigned
ProgramMap::availableRegCount() const
{
    return static_cast<unsigned>(std::popcount(avail_mask_));
}

// --- bitmap helpers ---

void
ProgramMap::setBits(uint64_t *bm, unsigned off, unsigned len)
{
    while (len) {
        const unsigned w = off >> 6;
        const unsigned b = off & 63;
        const unsigned n = std::min(64u - b, len);
        const uint64_t mask =
            (n == 64 ? ~0ull : ((1ull << n) - 1)) << b;
        bm[w] |= mask;
        off += n;
        len -= n;
    }
}

void
ProgramMap::clearBits(uint64_t *bm, unsigned off, unsigned len)
{
    while (len) {
        const unsigned w = off >> 6;
        const unsigned b = off & 63;
        const unsigned n = std::min(64u - b, len);
        const uint64_t mask =
            (n == 64 ? ~0ull : ((1ull << n) - 1)) << b;
        bm[w] &= ~mask;
        off += n;
        len -= n;
    }
}

bool
ProgramMap::allSet(const uint64_t *bm, unsigned off, unsigned len)
{
    while (len) {
        const unsigned w = off >> 6;
        const unsigned b = off & 63;
        const unsigned n = std::min(64u - b, len);
        const uint64_t mask =
            (n == 64 ? ~0ull : ((1ull << n) - 1)) << b;
        if ((bm[w] & mask) != mask)
            return false;
        off += n;
        len -= n;
    }
    return true;
}

void
ProgramMap::setBitsExcept(uint64_t *dst, const uint64_t *veto,
                          unsigned off, unsigned len)
{
    while (len) {
        const unsigned w = off >> 6;
        const unsigned b = off & 63;
        const unsigned n = std::min(64u - b, len);
        const uint64_t mask =
            (n == 64 ? ~0ull : ((1ull << n) - 1)) << b;
        dst[w] |= mask & ~veto[w];
        off += n;
        len -= n;
    }
}

// --- page table ---

void
ProgramMap::growTable(size_t new_cap)
{
    std::vector<std::unique_ptr<Page>> old = std::move(table_);
    table_.clear();
    table_.resize(new_cap);
    const size_t mask = new_cap - 1;
    for (auto &slot : old) {
        if (!slot)
            continue;
        size_t i = mixHash(slot->index) & mask;
        while (table_[i])
            i = (i + 1) & mask;
        table_[i] = std::move(slot);
    }
    last_page_ = nullptr; // slots moved
}

ProgramMap::Page *
ProgramMap::findPage(uint64_t page_index)
{
    ++mstats_.page_lookups;
    if (last_page_ && last_page_->index == page_index) {
        ++mstats_.cache_hits;
        refreshAvail(*last_page_);
        return last_page_;
    }
    if (table_.empty())
        return nullptr;
    const size_t mask = table_.size() - 1;
    size_t i = mixHash(page_index) & mask;
    while (table_[i]) {
        ++mstats_.probe_steps;
        if (table_[i]->index == page_index) {
            last_page_ = table_[i].get();
            refreshAvail(*last_page_);
            return last_page_;
        }
        i = (i + 1) & mask;
    }
    return nullptr;
}

ProgramMap::Page &
ProgramMap::getPage(uint64_t page_index)
{
    if (Page *page = findPage(page_index))
        return *page;

    // Pages are never removed (invalidation is an epoch bump), so the
    // table needs no tombstones; keep load under 1/2 for short probes.
    if (table_.empty()) {
        growTable(16);
    } else if ((page_count_ + 1) * 2 >= table_.size()) {
        growTable(table_.size() * 2);
    }

    const size_t mask = table_.size() - 1;
    size_t i = mixHash(page_index) & mask;
    while (table_[i]) {
        ++mstats_.probe_steps;
        i = (i + 1) & mask;
    }
    table_[i] = std::make_unique<Page>();
    table_[i]->index = page_index;
    table_[i]->avail_epoch = epoch_;
    ++page_count_;
    ++mstats_.pages_allocated;
    last_page_ = table_[i].get();
    return *last_page_;
}

// --- emulated memory ---

void
ProgramMap::checkSpan(uint64_t addr, uint8_t width)
{
    PRORACE_ASSERT(width == 1 || width == 2 || width == 4 || width == 8,
                   "degenerate memory-access width ", unsigned(width));
    PRORACE_ASSERT(addr <= ~uint64_t{0} - width,
                   "memory span wraps the address space at ", addr);
}

void
ProgramMap::writeMem(uint64_t addr, uint64_t value, uint8_t width)
{
    checkSpan(addr, width);
    unsigned done = 0;
    while (done < width) {
        const uint64_t a = addr + done;
        const unsigned off = static_cast<unsigned>(a & kOffsetMask);
        const unsigned n = std::min<unsigned>(width - done,
                                              kPageBytes - off);
        Page &page = getPage(a >> kPageShift);
        for (unsigned i = 0; i < n; ++i) {
            page.bytes[off + i] =
                static_cast<uint8_t>(value >> (8 * (done + i)));
        }
        // Blacklisted bytes never become available again.
        setBitsExcept(page.avail.data(), page.blacklist.data(), off, n);
        done += n;
    }
}

void
ProgramMap::invalidateMem(uint64_t addr, uint8_t width)
{
    checkSpan(addr, width);
    unsigned done = 0;
    while (done < width) {
        const uint64_t a = addr + done;
        const unsigned off = static_cast<unsigned>(a & kOffsetMask);
        const unsigned n = std::min<unsigned>(width - done,
                                              kPageBytes - off);
        if (Page *page = findPage(a >> kPageShift))
            clearBits(page->avail.data(), off, n);
        done += n;
    }
}

std::optional<uint64_t>
ProgramMap::readMem(uint64_t addr, uint8_t width)
{
    checkSpan(addr, width);

    // An access spans at most two pages (width <= 8 << page size).
    struct Chunk {
        Page *page;
        unsigned off;
        unsigned len;
        unsigned byte_shift; ///< position of the chunk in the value
    };
    Chunk chunks[2];
    unsigned num_chunks = 0;

    // Pass 1: every byte must be available before anything is consumed.
    unsigned done = 0;
    while (done < width) {
        const uint64_t a = addr + done;
        const unsigned off = static_cast<unsigned>(a & kOffsetMask);
        const unsigned n = std::min<unsigned>(width - done,
                                              kPageBytes - off);
        Page *page = findPage(a >> kPageShift);
        if (!page || !allSet(page->avail.data(), off, n))
            return std::nullopt;
        chunks[num_chunks++] = {page, off, n, done};
        done += n;
    }

    // Pass 2: assemble the value and mark the span consumed.
    uint64_t value = 0;
    for (unsigned c = 0; c < num_chunks; ++c) {
        const Chunk &chunk = chunks[c];
        for (unsigned i = 0; i < chunk.len; ++i) {
            value |= static_cast<uint64_t>(chunk.page->bytes[chunk.off + i])
                << (8 * (chunk.byte_shift + i));
        }
        setBits(chunk.page->consumed.data(), chunk.off, chunk.len);
    }
    return value;
}

void
ProgramMap::invalidateMemory()
{
    // O(1): stale pages refresh their availability bitmap on first
    // touch. Value bytes, blacklist, and consumed marks all survive.
    ++epoch_;
    ++mstats_.mem_invalidations;
}

void
ProgramMap::blacklistMem(uint64_t addr, uint64_t size)
{
    uint64_t done = 0;
    while (done < size) {
        const uint64_t a = addr + done;
        const unsigned off = static_cast<unsigned>(a & kOffsetMask);
        const unsigned n = static_cast<unsigned>(
            std::min<uint64_t>(size - done, kPageBytes - off));
        Page &page = getPage(a >> kPageShift);
        setBits(page.blacklist.data(), off, n);
        clearBits(page.avail.data(), off, n);
        done += n;
    }
}

std::unordered_set<uint64_t>
ProgramMap::consumedAddresses() const
{
    std::unordered_set<uint64_t> out;
    for (const auto &slot : table_) {
        if (!slot)
            continue;
        const uint64_t base = slot->index << kPageShift;
        for (unsigned w = 0; w < kWordsPerPage; ++w) {
            uint64_t bits = slot->consumed[w];
            while (bits) {
                const unsigned b =
                    static_cast<unsigned>(std::countr_zero(bits));
                out.insert(base + 64ull * w + b);
                bits &= bits - 1;
            }
        }
    }
    return out;
}

} // namespace prorace::replay

#include "replay/program_map.hh"

#include <bit>

#include "support/log.hh"

namespace prorace::replay {

using isa::Reg;

void
ProgramMap::restoreRegs(const vm::RegFile &regs)
{
    values_ = regs.gpr;
    avail_mask_ = 0xffff;
}

bool
ProgramMap::regAvailable(Reg reg) const
{
    PRORACE_ASSERT(isGpr(reg), "availability of non-GPR");
    return (avail_mask_ >> gprIndex(reg)) & 1u;
}

uint64_t
ProgramMap::regValue(Reg reg) const
{
    PRORACE_ASSERT(regAvailable(reg), "read of unavailable register ",
                   isa::regName(reg));
    return values_[gprIndex(reg)];
}

void
ProgramMap::setReg(Reg reg, uint64_t value)
{
    PRORACE_ASSERT(isGpr(reg), "set of non-GPR");
    values_[gprIndex(reg)] = value;
    avail_mask_ |= static_cast<uint16_t>(1u << gprIndex(reg));
}

void
ProgramMap::invalidateReg(Reg reg)
{
    PRORACE_ASSERT(isGpr(reg), "invalidate of non-GPR");
    avail_mask_ &= static_cast<uint16_t>(~(1u << gprIndex(reg)));
}

void
ProgramMap::invalidateAllRegs()
{
    avail_mask_ = 0;
}

void
ProgramMap::writeMem(uint64_t addr, uint64_t value, uint8_t width)
{
    for (unsigned i = 0; i < width; ++i) {
        const uint64_t byte_addr = addr + i;
        if (blacklist_.count(byte_addr))
            continue;
        mem_[byte_addr] = static_cast<uint8_t>(value >> (8 * i));
    }
}

void
ProgramMap::invalidateMem(uint64_t addr, uint8_t width)
{
    for (unsigned i = 0; i < width; ++i)
        mem_.erase(addr + i);
}

std::optional<uint64_t>
ProgramMap::readMem(uint64_t addr, uint8_t width)
{
    uint64_t value = 0;
    for (unsigned i = 0; i < width; ++i) {
        auto it = mem_.find(addr + i);
        if (it == mem_.end())
            return std::nullopt;
        value |= static_cast<uint64_t>(it->second) << (8 * i);
    }
    for (unsigned i = 0; i < width; ++i)
        consumed_.insert(addr + i);
    return value;
}

void
ProgramMap::invalidateMemory()
{
    mem_.clear();
}

void
ProgramMap::blacklistMem(uint64_t addr, uint64_t size)
{
    for (uint64_t i = 0; i < size; ++i) {
        blacklist_.insert(addr + i);
        mem_.erase(addr + i);
    }
}

unsigned
ProgramMap::availableRegCount() const
{
    return static_cast<unsigned>(std::popcount(avail_mask_));
}

} // namespace prorace::replay

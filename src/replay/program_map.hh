/**
 * @file
 * The "program map" of the paper's replay engine (§5.1): an
 * availability-tracked model of the architectural state used while
 * re-executing the binary offline.
 *
 * Every register is either available (value known) or unavailable.
 * Memory is emulated opportunistically: a store of a known value to a
 * known address makes that location available; loads from unavailable
 * locations poison their destination register; syscalls and other
 * scheduling points conservatively invalidate all emulated memory.
 *
 * Emulated memory is a sanitizer-style paged shadow (DESIGN.md §9):
 * fixed 4 KiB pages carry the value bytes plus per-byte availability,
 * blacklist, and consumed bitmaps, behind an open-addressing page table
 * with a one-entry last-page cache. An aligned 8-byte load or store is
 * one page lookup plus word-wide bitmap ops, and invalidateMemory() is
 * an O(1) epoch bump instead of a hash-map rehash.
 */

#ifndef PRORACE_REPLAY_PROGRAM_MAP_HH
#define PRORACE_REPLAY_PROGRAM_MAP_HH

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "isa/reg.hh"
#include "vm/cpu.hh"

namespace prorace::replay {

/** Shadow-page and page-table behavior counters. */
struct ProgramMapStats {
    uint64_t pages_allocated = 0;
    uint64_t page_lookups = 0;    ///< page-resolutions (incl. cache hits)
    uint64_t cache_hits = 0;      ///< served by the last-page cache
    uint64_t probe_steps = 0;     ///< table slots inspected on misses
    uint64_t mem_invalidations = 0; ///< invalidateMemory() epoch bumps

    void
    merge(const ProgramMapStats &o)
    {
        pages_allocated += o.pages_allocated;
        page_lookups += o.page_lookups;
        cache_hits += o.cache_hits;
        probe_steps += o.probe_steps;
        mem_invalidations += o.mem_invalidations;
    }
};

/** Availability-tracked registers + paged emulated memory. */
class ProgramMap
{
  public:
    /** Start with every register and all memory unavailable. */
    ProgramMap() = default;

    /** Restore the full register file from a PEBS sample. */
    void restoreRegs(const vm::RegFile &regs);

    /** True when @p reg holds a known value. */
    bool regAvailable(isa::Reg reg) const;

    /** Value of an available register (assert-checked). */
    uint64_t regValue(isa::Reg reg) const;

    /** Make @p reg available with @p value. */
    void setReg(isa::Reg reg, uint64_t value);

    /** Mark @p reg unavailable. */
    void invalidateReg(isa::Reg reg);

    /** Mark every register unavailable (library-code gaps). */
    void invalidateAllRegs();

    /** Emulate a store of a known value (marks bytes available). */
    void writeMem(uint64_t addr, uint64_t value, uint8_t width);

    /** Mark [addr, addr+width) unavailable (store of unknown value). */
    void invalidateMem(uint64_t addr, uint8_t width);

    /**
     * Emulated load: the value if every byte is available. A successful
     * read records the address range as *consumed*, so the pipeline can
     * later regenerate the trace if a race is found on it (§5.1).
     */
    std::optional<uint64_t> readMem(uint64_t addr, uint8_t width);

    /** Drop all emulated memory (syscall / scheduling point). */
    void invalidateMemory();

    /**
     * Blacklist an address range: it is never emulated again (used when
     * regenerating after a race on an emulated location).
     */
    void blacklistMem(uint64_t addr, uint64_t size);

    /**
     * Emulated byte addresses whose values were consumed by reads,
     * rebuilt lazily from the per-page consumed bitmaps. Consumed marks
     * survive invalidateMemory(), as before the paged rewrite.
     */
    std::unordered_set<uint64_t> consumedAddresses() const;

    /** Number of registers currently available. */
    unsigned availableRegCount() const;

    /** Shadow-structure counters (merged into ReplayStats). */
    const ProgramMapStats &memStats() const { return mstats_; }

  private:
    static constexpr unsigned kPageShift = 12; ///< 4 KiB value bytes
    static constexpr uint64_t kPageBytes = 1ull << kPageShift;
    static constexpr uint64_t kOffsetMask = kPageBytes - 1;
    static constexpr unsigned kWordsPerPage =
        static_cast<unsigned>(kPageBytes / 64);

    /**
     * One shadow page: value bytes plus per-byte bitmaps. Availability
     * is epoch-validated — a page whose avail_epoch is stale logically
     * has an all-zero availability bitmap and is refreshed on first
     * touch, which is what makes invalidateMemory() O(1).
     */
    struct Page {
        uint64_t index = 0; ///< page number (addr >> kPageShift)
        uint64_t avail_epoch = 0;
        std::array<uint8_t, kPageBytes> bytes{};
        std::array<uint64_t, kWordsPerPage> avail{};
        std::array<uint64_t, kWordsPerPage> blacklist{};
        std::array<uint64_t, kWordsPerPage> consumed{};
    };

    /** Page for @p page_index, or nullptr; refreshes stale epochs. */
    Page *findPage(uint64_t page_index);

    /** Page for @p page_index, created on demand; epoch-fresh. */
    Page &getPage(uint64_t page_index);

    /** Zero a stale availability bitmap and stamp the current epoch. */
    void
    refreshAvail(Page &page)
    {
        if (page.avail_epoch != epoch_) {
            page.avail.fill(0);
            page.avail_epoch = epoch_;
        }
    }

    void growTable(size_t new_cap);

    /** Width must be a power-of-two load/store size with no wraparound. */
    static void checkSpan(uint64_t addr, uint8_t width);

    // --- bitmap helpers over [off, off+len) bit ranges ---
    static void setBits(uint64_t *bm, unsigned off, unsigned len);
    static void clearBits(uint64_t *bm, unsigned off, unsigned len);
    static bool allSet(const uint64_t *bm, unsigned off, unsigned len);
    /** dst |= range-mask & ~veto (availability respecting blacklist). */
    static void setBitsExcept(uint64_t *dst, const uint64_t *veto,
                              unsigned off, unsigned len);

    std::array<uint64_t, isa::kNumGprs> values_{};
    uint16_t avail_mask_ = 0;

    /** Open-addressing page table (power-of-two, never shrinks). */
    std::vector<std::unique_ptr<Page>> table_;
    size_t page_count_ = 0;
    Page *last_page_ = nullptr; ///< one-entry lookup cache
    uint64_t epoch_ = 1;
    mutable ProgramMapStats mstats_;
};

} // namespace prorace::replay

#endif // PRORACE_REPLAY_PROGRAM_MAP_HH

/**
 * @file
 * The "program map" of the paper's replay engine (§5.1): an
 * availability-tracked model of the architectural state used while
 * re-executing the binary offline.
 *
 * Every register is either available (value known) or unavailable.
 * Memory is emulated opportunistically: a store of a known value to a
 * known address makes that location available; loads from unavailable
 * locations poison their destination register; syscalls and other
 * scheduling points conservatively invalidate all emulated memory.
 */

#ifndef PRORACE_REPLAY_PROGRAM_MAP_HH
#define PRORACE_REPLAY_PROGRAM_MAP_HH

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "isa/reg.hh"
#include "vm/cpu.hh"

namespace prorace::replay {

/** Availability-tracked registers + emulated memory. */
class ProgramMap
{
  public:
    /** Start with every register and all memory unavailable. */
    ProgramMap() = default;

    /** Restore the full register file from a PEBS sample. */
    void restoreRegs(const vm::RegFile &regs);

    /** True when @p reg holds a known value. */
    bool regAvailable(isa::Reg reg) const;

    /** Value of an available register (assert-checked). */
    uint64_t regValue(isa::Reg reg) const;

    /** Make @p reg available with @p value. */
    void setReg(isa::Reg reg, uint64_t value);

    /** Mark @p reg unavailable. */
    void invalidateReg(isa::Reg reg);

    /** Mark every register unavailable (library-code gaps). */
    void invalidateAllRegs();

    /** Emulate a store of a known value (marks bytes available). */
    void writeMem(uint64_t addr, uint64_t value, uint8_t width);

    /** Mark [addr, addr+width) unavailable (store of unknown value). */
    void invalidateMem(uint64_t addr, uint8_t width);

    /**
     * Emulated load: the value if every byte is available. A successful
     * read records the address range as *consumed*, so the pipeline can
     * later regenerate the trace if a race is found on it (§5.1).
     */
    std::optional<uint64_t> readMem(uint64_t addr, uint8_t width);

    /** Drop all emulated memory (syscall / scheduling point). */
    void invalidateMemory();

    /**
     * Blacklist an address range: it is never emulated again (used when
     * regenerating after a race on an emulated location).
     */
    void blacklistMem(uint64_t addr, uint64_t size);

    /** Emulated addresses whose values were consumed by reads. */
    const std::unordered_set<uint64_t> &consumedAddresses() const
    {
        return consumed_;
    }

    /** Number of registers currently available. */
    unsigned availableRegCount() const;

  private:
    std::array<uint64_t, isa::kNumGprs> values_{};
    uint16_t avail_mask_ = 0;
    std::unordered_map<uint64_t, uint8_t> mem_;      ///< byte -> value
    std::unordered_set<uint64_t> blacklist_;         ///< poisoned bytes
    std::unordered_set<uint64_t> consumed_;          ///< read-back bytes
};

} // namespace prorace::replay

#endif // PRORACE_REPLAY_PROGRAM_MAP_HH

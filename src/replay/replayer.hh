/**
 * @file
 * The memory-trace reconstruction engine (paper §5).
 *
 * For every pair of adjacent PEBS samples of a thread, the replayer
 * re-executes the program binary along the PT-observed path:
 *
 *  - *Forward replay* restores the first sample's register file and
 *    emulates forward, tracking operand availability in a ProgramMap
 *    and recovering the addresses of unsampled loads and stores.
 *  - *Backward replay* runs a reverse sweep from the next sample's
 *    register file: a register's sampled value is valid backwards until
 *    its most recent update (backward propagation), and invertible
 *    instructions (add/sub/xor, reg-reg moves, lea, push/pop rsp
 *    arithmetic) extend validity across updates (reverse execution).
 *    Facts recovered backward are injected into another forward pass;
 *    the two alternate to a fixed point.
 *
 * Three modes reproduce the paper's comparison: kBasicBlock limits
 * reconstruction to the sampled basic block (RaceZ), kForwardOnly runs
 * forward replay alone, and kForwardBackward is full ProRace.
 */

#ifndef PRORACE_REPLAY_REPLAYER_HH
#define PRORACE_REPLAY_REPLAYER_HH

#include <cstdint>
#include <map>
#include <unordered_set>
#include <vector>

#include "asmkit/program.hh"
#include "detect/report.hh"
#include "pmu/pt_decode.hh"
#include "replay/align.hh"
#include "replay/program_map.hh"
#include "trace/records.hh"

namespace prorace::analysis {
class ProgramAnalysis;
} // namespace prorace::analysis

namespace prorace::replay {

/** Reconstruction scope. */
enum class ReplayMode : uint8_t {
    kBasicBlock,      ///< RaceZ: within the sampled basic block only
    kForwardOnly,     ///< PT-guided forward replay
    kForwardBackward, ///< full ProRace: forward + backward replay
};

/** Printable mode name. */
const char *replayModeName(ReplayMode mode);

/** One entry of the extended memory trace. */
struct ReconstructedAccess {
    uint32_t tid = 0;
    uint64_t position = 0; ///< path position (BB mode: synthetic order)
    uint32_t insn_index = 0;
    uint64_t addr = 0;
    uint8_t width = 8;
    bool is_write = false;
    bool is_atomic = false;
    uint64_t tsc = 0;      ///< interpolated retirement time
    detect::AccessOrigin origin = detect::AccessOrigin::kSampled;
};

/** Reconstruction statistics (drives Fig 11). */
struct ReplayStats {
    uint64_t sampled = 0;            ///< accesses straight from PEBS
    uint64_t recovered_forward = 0;  ///< new in forward replay
    uint64_t recovered_backward = 0; ///< new only with backward replay
    uint64_t recovered_pcrel = 0;    ///< PC-relative subset (of the above)
    uint64_t recovered_constant = 0; ///< via points-to constant values
    uint64_t windows = 0;
    uint64_t inconsistent_windows = 0;
    uint64_t backward_rounds = 0;
    uint64_t violations_branch = 0;   ///< branch-direction contradictions
    uint64_t violations_fact = 0;     ///< forward/backward disagreements
    uint64_t violations_sample = 0;   ///< sampled-address EA mismatches
    uint64_t violations_end = 0;      ///< closing-sample register mismatches
    uint64_t violations_backward = 0; ///< backward immediate contradictions

    /** Paged-ProgramMap shadow counters, summed over all replay passes. */
    ProgramMapStats program_map;

    uint64_t
    totalAccesses() const
    {
        return sampled + recovered_forward + recovered_backward +
            recovered_constant;
    }

    /**
     * Fold another accumulator in. Window replays are independent, so
     * summing per-task stats reproduces the serial accumulation
     * exactly (every counter is a plain sum of window-local deltas).
     */
    void
    merge(const ReplayStats &o)
    {
        sampled += o.sampled;
        recovered_forward += o.recovered_forward;
        recovered_backward += o.recovered_backward;
        recovered_pcrel += o.recovered_pcrel;
        recovered_constant += o.recovered_constant;
        windows += o.windows;
        inconsistent_windows += o.inconsistent_windows;
        backward_rounds += o.backward_rounds;
        violations_branch += o.violations_branch;
        violations_fact += o.violations_fact;
        violations_sample += o.violations_sample;
        violations_end += o.violations_end;
        violations_backward += o.violations_backward;
        program_map.merge(o.program_map);
    }

    /** Recovered+sampled accesses per sampled access (paper Fig 11). */
    double
    recoveryRatio() const
    {
        if (sampled == 0)
            return 0;
        return static_cast<double>(totalAccesses()) /
            static_cast<double>(sampled);
    }
};

/** One backward-recovered register fact: reg = val before @p pos. */
struct ReplayFact {
    uint64_t pos = 0;
    isa::Reg reg = isa::Reg::none;
    uint64_t val = 0;
};

/** A position-sorted flat list of facts. */
using FactList = std::vector<ReplayFact>;

/** Replayer configuration. */
struct ReplayConfig {
    ReplayMode mode = ReplayMode::kForwardBackward;
    int max_backward_rounds = 3;
    /** Address ranges never emulated (racy-location regeneration). */
    std::vector<std::pair<uint64_t, uint64_t>> mem_blacklist;
    /**
     * Precomputed static analysis of the program being replayed, or
     * nullptr to fall back to per-instruction fact derivation. When
     * set, the backward scan skips whole basic-block runs via the
     * block kill masks and the aligner indexes the flat fact table;
     * results are bit-identical either way. The analysis (owned by the
     * offline analyzer) must outlive every replayer holding this
     * config.
     */
    const analysis::ProgramAnalysis *analysis = nullptr;
};

/**
 * Reconstructs the extended memory trace for one run.
 */
class Replayer
{
  public:
    /** Deduplicating per-window emission buffer keyed by (position, slot). */
    struct EmitMap {
        std::map<uint64_t, ReconstructedAccess> entries;

        bool
        add(uint64_t position, unsigned slot,
            const ReconstructedAccess &acc)
        {
            return entries.try_emplace(position * 4 + slot, acc).second;
        }
    };

    /**
     * A replay window between two adjacent samples of one thread.
     *
     * The boundary samples are the only state adjacent windows share:
     * window i's closing sample (s2, the source of backward
     * propagation) is window i+1's opening sample (s1, the restored
     * register file). Both are immutable PEBS records in the run
     * trace, which is what makes windows replayable in parallel — the
     * handoff between adjacent window tasks is these two pointers, not
     * mutable replay state.
     */
    struct Window {
        uint32_t tid = 0;
        uint64_t start = 0; ///< path position (inclusive)
        uint64_t end = 0;   ///< path position (exclusive)
        const trace::PebsRecord *s1 = nullptr; ///< sample at start, if any
        const trace::PebsRecord *s2 = nullptr; ///< sample at end, if any
        const std::map<uint64_t, const trace::SyncRecord *> *sync_at =
            nullptr;
    };

    Replayer(const asmkit::Program &program, const ReplayConfig &config);

    /**
     * Replay one thread. Appends reconstructed accesses (including the
     * sampled ones) to @p out in program order.
     */
    void replayThread(const pmu::ThreadPath &path,
                      const ThreadAlignment &alignment,
                      const trace::RunTrace &run,
                      std::vector<ReconstructedAccess> &out);

    /**
     * Replay every aligned thread; returns the extended memory trace
     * sorted by estimated TSC.
     */
    std::vector<ReconstructedAccess>
    replayAll(const std::map<uint32_t, pmu::ThreadPath> &paths,
              const std::map<uint32_t, ThreadAlignment> &alignments,
              const trace::RunTrace &run);

    /** Accumulated statistics. */
    const ReplayStats &stats() const { return stats_; }

    // --- window planning (shared by the serial and parallel paths) ---

    /** malloc/spawn sync records mapped to their path positions. */
    static std::map<uint64_t, const trace::SyncRecord *>
    syncAtMap(const ThreadAlignment &alignment,
              const trace::RunTrace &run);

    /**
     * Build one thread's inter-sample window list. Windows cover
     * disjoint [start, end) path ranges; @p sync_at must outlive the
     * returned windows.
     */
    static std::vector<Window>
    buildWindows(const pmu::ThreadPath &path,
                 const ThreadAlignment &alignment,
                 const trace::RunTrace &run,
                 const std::map<uint64_t,
                                const trace::SyncRecord *> &sync_at);

    /**
     * Post-window per-thread work: timestamp the emitted accesses and
     * append them in position order, then append this thread's
     * path-unlocatable samples in record order. Appending per-thread
     * results in ascending-tid order reproduces the serial replayAll
     * sequence exactly.
     */
    void finalizeThread(const pmu::ThreadPath &path,
                        const ThreadAlignment &alignment,
                        const trace::RunTrace &run, EmitMap &emit,
                        std::vector<ReconstructedAccess> &out);

    /**
     * The final deterministic ordering of the extended trace. Both
     * analyzer paths build the pre-sort sequence identically, so this
     * shared sort yields bit-identical extended traces.
     */
    static void sortByTsc(std::vector<ReconstructedAccess> &out);

    void replayWindow(const Window &win, const pmu::ThreadPath &path,
                      const ThreadAlignment &alignment,
                      const trace::RunTrace &run, EmitMap &emit);

    void forwardPass(const Window &win, const pmu::ThreadPath &path,
                     const trace::RunTrace &run, const FactList &facts,
                     detect::AccessOrigin tag, EmitMap &emit,
                     FactList *hints_out, bool *consistent_out,
                     uint64_t *bad_pos_out);

    void backwardScan(const Window &win, const pmu::ThreadPath &path,
                      const FactList &hints, FactList &facts_out,
                      bool *consistent_out);

    void replayBasicBlock(const trace::PebsRecord &rec, EmitMap &emit);

    /** Emulated-memory byte addresses whose values were consumed. */
    const std::unordered_set<uint64_t> &consumedAddresses() const
    {
        return consumed_;
    }

  private:
    const asmkit::Program &program_;
    ReplayConfig config_;
    ReplayStats stats_;
    std::unordered_set<uint64_t> consumed_;
};

} // namespace prorace::replay

#endif // PRORACE_REPLAY_REPLAYER_HH

/**
 * @file
 * The memory-trace reconstruction engine (paper §5).
 *
 * For every pair of adjacent PEBS samples of a thread, the replayer
 * re-executes the program binary along the PT-observed path:
 *
 *  - *Forward replay* restores the first sample's register file and
 *    emulates forward, tracking operand availability in a ProgramMap
 *    and recovering the addresses of unsampled loads and stores.
 *  - *Backward replay* runs a reverse sweep from the next sample's
 *    register file: a register's sampled value is valid backwards until
 *    its most recent update (backward propagation), and invertible
 *    instructions (add/sub/xor, reg-reg moves, lea, push/pop rsp
 *    arithmetic) extend validity across updates (reverse execution).
 *    Facts recovered backward are injected into another forward pass;
 *    the two alternate to a fixed point.
 *
 * Three modes reproduce the paper's comparison: kBasicBlock limits
 * reconstruction to the sampled basic block (RaceZ), kForwardOnly runs
 * forward replay alone, and kForwardBackward is full ProRace.
 */

#ifndef PRORACE_REPLAY_REPLAYER_HH
#define PRORACE_REPLAY_REPLAYER_HH

#include <cstdint>
#include <map>
#include <unordered_set>
#include <vector>

#include "asmkit/program.hh"
#include "detect/report.hh"
#include "pmu/pt_decode.hh"
#include "replay/align.hh"
#include "replay/program_map.hh"
#include "trace/records.hh"

namespace prorace::replay {

/** Reconstruction scope. */
enum class ReplayMode : uint8_t {
    kBasicBlock,      ///< RaceZ: within the sampled basic block only
    kForwardOnly,     ///< PT-guided forward replay
    kForwardBackward, ///< full ProRace: forward + backward replay
};

/** Printable mode name. */
const char *replayModeName(ReplayMode mode);

/** One entry of the extended memory trace. */
struct ReconstructedAccess {
    uint32_t tid = 0;
    uint64_t position = 0; ///< path position (BB mode: synthetic order)
    uint32_t insn_index = 0;
    uint64_t addr = 0;
    uint8_t width = 8;
    bool is_write = false;
    bool is_atomic = false;
    uint64_t tsc = 0;      ///< interpolated retirement time
    detect::AccessOrigin origin = detect::AccessOrigin::kSampled;
};

/** Reconstruction statistics (drives Fig 11). */
struct ReplayStats {
    uint64_t sampled = 0;            ///< accesses straight from PEBS
    uint64_t recovered_forward = 0;  ///< new in forward replay
    uint64_t recovered_backward = 0; ///< new only with backward replay
    uint64_t recovered_pcrel = 0;    ///< PC-relative subset (of the above)
    uint64_t windows = 0;
    uint64_t inconsistent_windows = 0;
    uint64_t backward_rounds = 0;
    uint64_t violations_branch = 0;   ///< branch-direction contradictions
    uint64_t violations_fact = 0;     ///< forward/backward disagreements
    uint64_t violations_sample = 0;   ///< sampled-address EA mismatches
    uint64_t violations_end = 0;      ///< closing-sample register mismatches
    uint64_t violations_backward = 0; ///< backward immediate contradictions

    uint64_t
    totalAccesses() const
    {
        return sampled + recovered_forward + recovered_backward;
    }

    /** Recovered+sampled accesses per sampled access (paper Fig 11). */
    double
    recoveryRatio() const
    {
        if (sampled == 0)
            return 0;
        return static_cast<double>(totalAccesses()) /
            static_cast<double>(sampled);
    }
};

/** One backward-recovered register fact: reg = val before @p pos. */
struct ReplayFact {
    uint64_t pos = 0;
    isa::Reg reg = isa::Reg::none;
    uint64_t val = 0;
};

/** A position-sorted flat list of facts. */
using FactList = std::vector<ReplayFact>;

/** Replayer configuration. */
struct ReplayConfig {
    ReplayMode mode = ReplayMode::kForwardBackward;
    int max_backward_rounds = 3;
    /** Address ranges never emulated (racy-location regeneration). */
    std::vector<std::pair<uint64_t, uint64_t>> mem_blacklist;
};

/**
 * Reconstructs the extended memory trace for one run.
 */
class Replayer
{
  public:
    Replayer(const asmkit::Program &program, const ReplayConfig &config);

    /**
     * Replay one thread. Appends reconstructed accesses (including the
     * sampled ones) to @p out in program order.
     */
    void replayThread(const pmu::ThreadPath &path,
                      const ThreadAlignment &alignment,
                      const trace::RunTrace &run,
                      std::vector<ReconstructedAccess> &out);

    /**
     * Replay every aligned thread; returns the extended memory trace
     * sorted by estimated TSC.
     */
    std::vector<ReconstructedAccess>
    replayAll(const std::map<uint32_t, pmu::ThreadPath> &paths,
              const std::map<uint32_t, ThreadAlignment> &alignments,
              const trace::RunTrace &run);

    /** Accumulated statistics. */
    const ReplayStats &stats() const { return stats_; }

    struct Window;
    struct EmitMap;

    void replayWindow(const Window &win, const pmu::ThreadPath &path,
                      const ThreadAlignment &alignment,
                      const trace::RunTrace &run, EmitMap &emit);

    void forwardPass(const Window &win, const pmu::ThreadPath &path,
                     const trace::RunTrace &run, const FactList &facts,
                     detect::AccessOrigin tag, EmitMap &emit,
                     FactList *hints_out, bool *consistent_out,
                     uint64_t *bad_pos_out);

    void backwardScan(const Window &win, const pmu::ThreadPath &path,
                      const FactList &hints, FactList &facts_out,
                      bool *consistent_out);

    void replayBasicBlock(const trace::PebsRecord &rec, EmitMap &emit);

    /** Emulated-memory byte addresses whose values were consumed. */
    const std::unordered_set<uint64_t> &consumedAddresses() const
    {
        return consumed_;
    }

  private:
    const asmkit::Program &program_;
    ReplayConfig config_;
    ReplayStats stats_;
    std::unordered_set<uint64_t> consumed_;
};

} // namespace prorace::replay

#endif // PRORACE_REPLAY_REPLAYER_HH

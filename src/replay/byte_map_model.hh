/**
 * @file
 * Reference model of ProgramMap's emulated memory with the
 * pre-overhaul byte-granular containers: one hash-map entry per byte
 * for values, and hash sets for the blacklist and consumed marks.
 *
 * This is NOT used by the pipeline (that is replay::ProgramMap's paged
 * shadow). It exists so that
 *
 *  - the randomized differential test (tests/test_shadow.cc) can drive
 *    the paged shadow against an obviously-correct model across page
 *    boundaries, and
 *  - the bm_components microbenchmarks can quantify the paged shadow's
 *    speedup over the old structures (acceptance: >= 2x random access).
 *
 * Mirrors the observable memory semantics of ProgramMap exactly:
 * register tracking is out of scope.
 */

#ifndef PRORACE_REPLAY_BYTE_MAP_MODEL_HH
#define PRORACE_REPLAY_BYTE_MAP_MODEL_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>

namespace prorace::replay {

/** Byte-granular emulated-memory model (the pre-paging structures). */
class ByteMapModel
{
  public:
    void
    writeMem(uint64_t addr, uint64_t value, uint8_t width)
    {
        for (unsigned i = 0; i < width; ++i) {
            const uint64_t byte_addr = addr + i;
            if (blacklist_.count(byte_addr))
                continue;
            mem_[byte_addr] = static_cast<uint8_t>(value >> (8 * i));
        }
    }

    void
    invalidateMem(uint64_t addr, uint8_t width)
    {
        for (unsigned i = 0; i < width; ++i)
            mem_.erase(addr + i);
    }

    std::optional<uint64_t>
    readMem(uint64_t addr, uint8_t width)
    {
        uint64_t value = 0;
        for (unsigned i = 0; i < width; ++i) {
            auto it = mem_.find(addr + i);
            if (it == mem_.end())
                return std::nullopt;
            value |= static_cast<uint64_t>(it->second) << (8 * i);
        }
        for (unsigned i = 0; i < width; ++i)
            consumed_.insert(addr + i);
        return value;
    }

    void
    invalidateMemory()
    {
        mem_.clear();
    }

    void
    blacklistMem(uint64_t addr, uint64_t size)
    {
        for (uint64_t i = 0; i < size; ++i) {
            blacklist_.insert(addr + i);
            mem_.erase(addr + i);
        }
    }

    const std::unordered_set<uint64_t> &
    consumedAddresses() const
    {
        return consumed_;
    }

  private:
    std::unordered_map<uint64_t, uint8_t> mem_;
    std::unordered_set<uint64_t> blacklist_;
    std::unordered_set<uint64_t> consumed_;
};

} // namespace prorace::replay

#endif // PRORACE_REPLAY_BYTE_MAP_MODEL_HH

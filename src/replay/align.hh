/**
 * @file
 * Trace alignment: time-synchronize the PEBS sample trace and the sync
 * trace with the PT-decoded instruction paths (the paper's "Decode &
 * Synthesis" step).
 *
 * Both traces carry per-core TSC values (invariant TSC), so samples can
 * be located on the path by time. Within a timing bracket a sampled
 * instruction may occur several times (loops); candidates are
 * disambiguated by register consistency: registers not written between
 * two samples must hold identical values in both samples' register
 * files.
 */

#ifndef PRORACE_REPLAY_ALIGN_HH
#define PRORACE_REPLAY_ALIGN_HH

#include <cstdint>
#include <map>
#include <vector>

#include "asmkit/program.hh"
#include "pmu/pt_decode.hh"
#include "trace/records.hh"

namespace prorace::analysis {
class ProgramAnalysis;
} // namespace prorace::analysis

namespace prorace::replay {

/** A PEBS record located on its thread's path. */
struct AlignedSample {
    size_t record_index = 0; ///< index into RunTrace::pebs
    uint64_t position = 0;   ///< path index of the sampled instruction
};

/** A sync record located on its thread's path. */
struct AlignedSync {
    size_t record_index = 0; ///< index into RunTrace::sync
    uint64_t position = 0;
};

/** Alignment of one thread. */
struct ThreadAlignment {
    uint32_t tid = 0;
    std::vector<AlignedSample> samples; ///< ascending by position
    std::vector<AlignedSync> syncs;     ///< ascending by position
    std::vector<pmu::PathAnchor> anchors; ///< merged, ascending by position

    /** Estimated TSC of a path position (anchor interpolation). */
    uint64_t tscAt(uint64_t position) const;
};

/** Alignment statistics. */
struct AlignStats {
    uint64_t samples_matched = 0;
    uint64_t samples_unmatched = 0;
    uint64_t candidates_rejected = 0; ///< register-inconsistent candidates
};

/**
 * Align every thread's samples and sync records against its decoded
 * path. When @p analysis is set, per-instruction fact lookups come
 * from its precomputed flat table instead of being re-derived per
 * call; the alignment is bit-identical either way.
 */
std::map<uint32_t, ThreadAlignment>
alignTrace(const asmkit::Program &program,
           const std::map<uint32_t, pmu::ThreadPath> &paths,
           const trace::RunTrace &run, AlignStats *stats = nullptr,
           const analysis::ProgramAnalysis *analysis = nullptr);

} // namespace prorace::replay

#endif // PRORACE_REPLAY_ALIGN_HH

#include "isa/insn.hh"

namespace prorace::isa {

namespace {

bool
validScale(uint8_t s)
{
    return s == 1 || s == 2 || s == 4 || s == 8;
}

bool
validWidth(uint8_t w)
{
    return w == 1 || w == 2 || w == 4 || w == 8;
}

const char *
validateMem(const MemOperand &m)
{
    if (!validScale(m.scale))
        return "memory operand scale must be 1/2/4/8";
    if (m.rip_relative && (m.base != Reg::none || m.index != Reg::none))
        return "rip-relative operand must not use base/index registers";
    if (m.base != Reg::none && !isGpr(m.base))
        return "memory base must be a GPR";
    if (m.index != Reg::none && !isGpr(m.index))
        return "memory index must be a GPR";
    return nullptr;
}

} // namespace

const char *
validateInsn(const Insn &insn)
{
    if (insn.hasMemOperand()) {
        if (const char *err = validateMem(insn.mem))
            return err;
    }
    if (accessesMemory(insn.op) && !validWidth(insn.width))
        return "memory access width must be 1/2/4/8";
    if (writesDst(insn.op) && !isGpr(insn.dst))
        return "instruction requires a GPR destination";
    switch (insn.op) {
      case Op::kMovRR:
      case Op::kStore:
      case Op::kPush:
      case Op::kJmpInd:
      case Op::kCallInd:
      case Op::kFree:
      case Op::kJoin:
      case Op::kCondWait:
        if (!isGpr(insn.src))
            return "instruction requires a GPR source";
        break;
      case Op::kStoreRel:
        if (!isGpr(insn.src))
            return "instruction requires a GPR source";
        break;
      case Op::kAluRR:
      case Op::kCmpRR:
      case Op::kTestRR:
      case Op::kAtomicRmw:
      case Op::kCas:
      case Op::kAtomicRmwAcqRel:
        if (!isGpr(insn.src))
            return "instruction requires a GPR source";
        if (!isGpr(insn.dst))
            return "instruction requires a GPR left operand";
        break;
      case Op::kCmpRI:
      case Op::kTestRI:
        if (!isGpr(insn.dst))
            return "compare requires a GPR left operand";
        break;
      case Op::kMalloc:
        if (!isGpr(insn.src))
            return "malloc requires the size in a GPR source";
        break;
      case Op::kBarrier:
        if (insn.imm < 1)
            return "barrier requires a positive party count";
        break;
      case Op::kSemInit:
        if (insn.imm < 0)
            return "semaphore initial count must be non-negative";
        break;
      default:
        break;
    }
    return nullptr;
}

} // namespace prorace::isa

/**
 * @file
 * Architectural register set of the ProRace reference ISA.
 *
 * The ISA is a compact x86-64 analogue: sixteen 64-bit general-purpose
 * registers plus an instruction pointer. PEBS samples capture the entire
 * general-purpose file, exactly as Intel PEBS does.
 */

#ifndef PRORACE_ISA_REG_HH
#define PRORACE_ISA_REG_HH

#include <cstdint>

namespace prorace::isa {

/** General-purpose registers, the instruction pointer, and "none". */
enum class Reg : uint8_t {
    rax = 0, rbx, rcx, rdx, rsi, rdi, rbp, rsp,
    r8, r9, r10, r11, r12, r13, r14, r15,
    rip,    ///< instruction pointer; always reconstructible during replay
    none,   ///< absent operand marker
};

/** Number of general-purpose registers (excluding rip). */
inline constexpr unsigned kNumGprs = 16;

/** True for a real general-purpose register (not rip / none). */
constexpr bool
isGpr(Reg r)
{
    return static_cast<uint8_t>(r) < kNumGprs;
}

/** Numeric index of a GPR; callers must check isGpr() first. */
constexpr unsigned
gprIndex(Reg r)
{
    return static_cast<unsigned>(r);
}

/** GPR for a numeric index in [0, kNumGprs). */
constexpr Reg
gprFromIndex(unsigned idx)
{
    return static_cast<Reg>(idx);
}

/** Printable register name ("rax", "r12", "rip", "-"). */
const char *regName(Reg r);

} // namespace prorace::isa

#endif // PRORACE_ISA_REG_HH

#include "isa/opcode.hh"

namespace prorace::isa {

bool
isLoad(Op op)
{
    switch (op) {
      case Op::kLoad:
      case Op::kPop:
      case Op::kAtomicRmw:
      case Op::kCas:
      case Op::kRet:
      case Op::kLoadAcq:
      case Op::kAtomicRmwAcqRel:
        return true;
      default:
        return false;
    }
}

bool
isStore(Op op)
{
    switch (op) {
      case Op::kStore:
      case Op::kStoreI:
      case Op::kPush:
      case Op::kAtomicRmw:
      case Op::kCas:
      case Op::kCall:
      case Op::kCallInd:
      case Op::kStoreRel:
      case Op::kAtomicRmwAcqRel:
        return true;
      default:
        return false;
    }
}

bool
accessesMemory(Op op)
{
    return isLoad(op) || isStore(op);
}

bool
isCondBranch(Op op)
{
    return op == Op::kJcc;
}

bool
isIndirectBranch(Op op)
{
    return op == Op::kJmpInd || op == Op::kCallInd || op == Op::kRet;
}

bool
isControlFlow(Op op)
{
    switch (op) {
      case Op::kJcc:
      case Op::kJmp:
      case Op::kJmpInd:
      case Op::kCall:
      case Op::kCallInd:
      case Op::kRet:
        return true;
      default:
        return false;
    }
}

bool
isSyncOp(Op op)
{
    switch (op) {
      case Op::kLock:
      case Op::kUnlock:
      case Op::kCondWait:
      case Op::kCondSignal:
      case Op::kCondBcast:
      case Op::kBarrier:
      case Op::kSpawn:
      case Op::kJoin:
      case Op::kMalloc:
      case Op::kFree:
      case Op::kRwRdLock:
      case Op::kRwWrLock:
      case Op::kRwUnlock:
      case Op::kSemInit:
      case Op::kSemWait:
      case Op::kSemPost:
      case Op::kSpinLock:
      case Op::kSpinUnlock:
      case Op::kLoadAcq:
      case Op::kStoreRel:
      case Op::kAtomicRmwAcqRel:
        return true;
      default:
        return false;
    }
}

bool
writesDst(Op op)
{
    switch (op) {
      case Op::kMovRI:
      case Op::kMovRR:
      case Op::kLoad:
      case Op::kLea:
      case Op::kAluRR:
      case Op::kAluRI:
      case Op::kPop:
      case Op::kAtomicRmw:
      case Op::kCas:
      case Op::kSpawn:
      case Op::kMalloc:
      case Op::kLoadAcq:
      case Op::kAtomicRmwAcqRel:
        return true;
      default:
        return false;
    }
}

bool
writesFlags(Op op)
{
    switch (op) {
      case Op::kAluRR:
      case Op::kAluRI:
      case Op::kCmpRR:
      case Op::kCmpRI:
      case Op::kTestRR:
      case Op::kTestRI:
      case Op::kCas:
        return true;
      default:
        return false;
    }
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::kNop:        return "nop";
      case Op::kHalt:       return "halt";
      case Op::kMovRI:      return "mov";
      case Op::kMovRR:      return "mov";
      case Op::kLoad:       return "mov";
      case Op::kStore:      return "mov";
      case Op::kStoreI:     return "movi";
      case Op::kLea:        return "lea";
      case Op::kAluRR:      return "alu";
      case Op::kAluRI:      return "alui";
      case Op::kCmpRR:      return "cmp";
      case Op::kCmpRI:      return "cmpi";
      case Op::kTestRR:     return "test";
      case Op::kTestRI:     return "testi";
      case Op::kJcc:        return "j";
      case Op::kJmp:        return "jmp";
      case Op::kJmpInd:     return "jmp*";
      case Op::kCall:       return "call";
      case Op::kCallInd:    return "call*";
      case Op::kRet:        return "ret";
      case Op::kPush:       return "push";
      case Op::kPop:        return "pop";
      case Op::kAtomicRmw:  return "lock-rmw";
      case Op::kCas:        return "cmpxchg";
      case Op::kLock:       return "pthread_mutex_lock";
      case Op::kUnlock:     return "pthread_mutex_unlock";
      case Op::kCondWait:   return "pthread_cond_wait";
      case Op::kCondSignal: return "pthread_cond_signal";
      case Op::kCondBcast:  return "pthread_cond_broadcast";
      case Op::kBarrier:    return "pthread_barrier_wait";
      case Op::kSpawn:      return "pthread_create";
      case Op::kJoin:       return "pthread_join";
      case Op::kMalloc:     return "malloc";
      case Op::kFree:       return "free";
      case Op::kSyscall:    return "syscall";
      case Op::kRwRdLock:   return "pthread_rwlock_rdlock";
      case Op::kRwWrLock:   return "pthread_rwlock_wrlock";
      case Op::kRwUnlock:   return "pthread_rwlock_unlock";
      case Op::kSemInit:    return "sem_init";
      case Op::kSemWait:    return "sem_wait";
      case Op::kSemPost:    return "sem_post";
      case Op::kSpinLock:   return "pthread_spin_lock";
      case Op::kSpinUnlock: return "pthread_spin_unlock";
      case Op::kLoadAcq:    return "mov-acq";
      case Op::kStoreRel:   return "mov-rel";
      case Op::kAtomicRmwAcqRel: return "lock-rmw-acqrel";
    }
    return "?";
}

const char *
aluName(AluOp op)
{
    switch (op) {
      case AluOp::kAdd: return "add";
      case AluOp::kSub: return "sub";
      case AluOp::kAnd: return "and";
      case AluOp::kOr:  return "or";
      case AluOp::kXor: return "xor";
      case AluOp::kMul: return "imul";
      case AluOp::kShl: return "shl";
      case AluOp::kShr: return "shr";
      case AluOp::kSar: return "sar";
    }
    return "?";
}

const char *
syscallName(SyscallNo no)
{
    switch (no) {
      case SyscallNo::kNone:    return "none";
      case SyscallNo::kRead:    return "read";
      case SyscallNo::kWrite:   return "write";
      case SyscallNo::kNetSend: return "send";
      case SyscallNo::kNetRecv: return "recv";
      case SyscallNo::kSleep:   return "nanosleep";
      case SyscallNo::kYield:   return "sched_yield";
    }
    return "?";
}

} // namespace prorace::isa

/**
 * @file
 * Pure instruction semantics shared by the VM interpreter and the offline
 * replay engine.
 *
 * Keeping value/flag/address computation in one place guarantees that the
 * replayer reconstructs exactly what the machine executed — a correctness
 * property ProRace's forward/backward replay depends on.
 */

#ifndef PRORACE_ISA_SEMANTICS_HH
#define PRORACE_ISA_SEMANTICS_HH

#include <cstdint>
#include <functional>

#include "isa/flags.hh"
#include "isa/insn.hh"

namespace prorace::isa {

/** Value and resulting flags of an ALU operation. */
struct AluResult {
    uint64_t value = 0;
    Flags flags;
};

/** Compute a aluop b with x86-style flag semantics (64-bit). */
AluResult evalAlu(AluOp op, uint64_t a, uint64_t b);

/** Flags of the comparison a - b (value discarded). */
Flags evalCmp(uint64_t a, uint64_t b);

/** Flags of the bit test a & b (value discarded). */
Flags evalTest(uint64_t a, uint64_t b);

/**
 * Effective address of a memory operand given a register reader.
 * The reader is only consulted for registers the operand actually uses.
 */
uint64_t effectiveAddress(const MemOperand &mem,
                          const std::function<uint64_t(Reg)> &read_reg);

/** Truncate a 64-bit value to an access width (1/2/4/8 bytes). */
uint64_t truncateToWidth(uint64_t value, uint8_t width);

/**
 * Widen a loaded sub-width value to 64 bits, sign- or zero-extending.
 */
uint64_t extendFromWidth(uint64_t value, uint8_t width, bool sign_extend);

/**
 * Try to invert an ALU operation: given the result and operand b, recover
 * operand a such that a aluop b == result. Supports the integer
 * operations ProRace's reverse execution handles (add, sub, xor).
 *
 * @return true and sets a_out on success.
 */
bool invertAlu(AluOp op, uint64_t result, uint64_t b, uint64_t &a_out);

} // namespace prorace::isa

#endif // PRORACE_ISA_SEMANTICS_HH

/**
 * @file
 * Condition flags and condition codes of the ProRace reference ISA.
 */

#ifndef PRORACE_ISA_FLAGS_HH
#define PRORACE_ISA_FLAGS_HH

#include <cstdint>

namespace prorace::isa {

/** The four x86-style condition flags the ISA models. */
struct Flags {
    bool zf = false; ///< zero
    bool sf = false; ///< sign
    bool cf = false; ///< carry (unsigned borrow/overflow)
    bool of = false; ///< signed overflow

    bool operator==(const Flags &) const = default;
};

/** Condition codes for kJcc, mirroring x86 Jcc mnemonics. */
enum class CondCode : uint8_t {
    kEq,    ///< je  : zf
    kNe,    ///< jne : !zf
    kLt,    ///< jl  : sf != of
    kLe,    ///< jle : zf || sf != of
    kGt,    ///< jg  : !zf && sf == of
    kGe,    ///< jge : sf == of
    kB,     ///< jb  : cf
    kBe,    ///< jbe : cf || zf
    kA,     ///< ja  : !cf && !zf
    kAe,    ///< jae : !cf
    kS,     ///< js  : sf
    kNs,    ///< jns : !sf
};

/** Evaluate a condition code against a flags state. */
constexpr bool
condHolds(CondCode cc, const Flags &f)
{
    switch (cc) {
      case CondCode::kEq: return f.zf;
      case CondCode::kNe: return !f.zf;
      case CondCode::kLt: return f.sf != f.of;
      case CondCode::kLe: return f.zf || (f.sf != f.of);
      case CondCode::kGt: return !f.zf && (f.sf == f.of);
      case CondCode::kGe: return f.sf == f.of;
      case CondCode::kB:  return f.cf;
      case CondCode::kBe: return f.cf || f.zf;
      case CondCode::kA:  return !f.cf && !f.zf;
      case CondCode::kAe: return !f.cf;
      case CondCode::kS:  return f.sf;
      case CondCode::kNs: return !f.sf;
    }
    return false;
}

/** Printable condition-code mnemonic suffix ("e", "ne", "l", ...). */
const char *condName(CondCode cc);

} // namespace prorace::isa

#endif // PRORACE_ISA_FLAGS_HH

#include "isa/flags.hh"

namespace prorace::isa {

const char *
condName(CondCode cc)
{
    switch (cc) {
      case CondCode::kEq: return "e";
      case CondCode::kNe: return "ne";
      case CondCode::kLt: return "l";
      case CondCode::kLe: return "le";
      case CondCode::kGt: return "g";
      case CondCode::kGe: return "ge";
      case CondCode::kB:  return "b";
      case CondCode::kBe: return "be";
      case CondCode::kA:  return "a";
      case CondCode::kAe: return "ae";
      case CondCode::kS:  return "s";
      case CondCode::kNs: return "ns";
    }
    return "?";
}

} // namespace prorace::isa

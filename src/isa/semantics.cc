#include "isa/semantics.hh"

#include "support/log.hh"

namespace prorace::isa {

namespace {

Flags
logicFlags(uint64_t value)
{
    Flags f;
    f.zf = value == 0;
    f.sf = static_cast<int64_t>(value) < 0;
    f.cf = false;
    f.of = false;
    return f;
}

} // namespace

AluResult
evalAlu(AluOp op, uint64_t a, uint64_t b)
{
    AluResult r;
    switch (op) {
      case AluOp::kAdd: {
        r.value = a + b;
        r.flags.zf = r.value == 0;
        r.flags.sf = static_cast<int64_t>(r.value) < 0;
        r.flags.cf = r.value < a;
        const bool same_sign_in =
            (static_cast<int64_t>(a) < 0) == (static_cast<int64_t>(b) < 0);
        r.flags.of = same_sign_in &&
            ((static_cast<int64_t>(a) < 0) !=
             (static_cast<int64_t>(r.value) < 0));
        break;
      }
      case AluOp::kSub: {
        r.value = a - b;
        r.flags.zf = r.value == 0;
        r.flags.sf = static_cast<int64_t>(r.value) < 0;
        r.flags.cf = a < b;
        const bool diff_sign_in =
            (static_cast<int64_t>(a) < 0) != (static_cast<int64_t>(b) < 0);
        r.flags.of = diff_sign_in &&
            ((static_cast<int64_t>(a) < 0) !=
             (static_cast<int64_t>(r.value) < 0));
        break;
      }
      case AluOp::kAnd:
        r.value = a & b;
        r.flags = logicFlags(r.value);
        break;
      case AluOp::kOr:
        r.value = a | b;
        r.flags = logicFlags(r.value);
        break;
      case AluOp::kXor:
        r.value = a ^ b;
        r.flags = logicFlags(r.value);
        break;
      case AluOp::kMul:
        r.value = a * b;
        r.flags = logicFlags(r.value);
        break;
      case AluOp::kShl:
        r.value = (b % 64) ? (a << (b % 64)) : a;
        r.flags = logicFlags(r.value);
        break;
      case AluOp::kShr:
        r.value = (b % 64) ? (a >> (b % 64)) : a;
        r.flags = logicFlags(r.value);
        break;
      case AluOp::kSar:
        r.value = (b % 64)
            ? static_cast<uint64_t>(static_cast<int64_t>(a) >> (b % 64))
            : a;
        r.flags = logicFlags(r.value);
        break;
    }
    return r;
}

Flags
evalCmp(uint64_t a, uint64_t b)
{
    return evalAlu(AluOp::kSub, a, b).flags;
}

Flags
evalTest(uint64_t a, uint64_t b)
{
    return logicFlags(a & b);
}

uint64_t
effectiveAddress(const MemOperand &mem,
                 const std::function<uint64_t(Reg)> &read_reg)
{
    if (mem.rip_relative)
        return static_cast<uint64_t>(mem.disp);
    uint64_t addr = static_cast<uint64_t>(mem.disp);
    if (mem.base != Reg::none)
        addr += read_reg(mem.base);
    if (mem.index != Reg::none)
        addr += read_reg(mem.index) * mem.scale;
    return addr;
}

uint64_t
truncateToWidth(uint64_t value, uint8_t width)
{
    switch (width) {
      case 1: return value & 0xffull;
      case 2: return value & 0xffffull;
      case 4: return value & 0xffffffffull;
      case 8: return value;
      default:
        PRORACE_PANIC("invalid access width ", int(width));
    }
}

uint64_t
extendFromWidth(uint64_t value, uint8_t width, bool sign_extend)
{
    value = truncateToWidth(value, width);
    if (!sign_extend || width == 8)
        return value;
    const unsigned bits = width * 8;
    const uint64_t sign_bit = uint64_t{1} << (bits - 1);
    if (value & sign_bit)
        value |= ~((uint64_t{1} << bits) - 1);
    return value;
}

bool
invertAlu(AluOp op, uint64_t result, uint64_t b, uint64_t &a_out)
{
    switch (op) {
      case AluOp::kAdd:
        a_out = result - b;
        return true;
      case AluOp::kSub:
        a_out = result + b;
        return true;
      case AluOp::kXor:
        a_out = result ^ b;
        return true;
      default:
        return false;
    }
}

} // namespace prorace::isa

/**
 * @file
 * Instruction representation: addressing modes and the Insn struct.
 */

#ifndef PRORACE_ISA_INSN_HH
#define PRORACE_ISA_INSN_HH

#include <cstdint>

#include "isa/flags.hh"
#include "isa/opcode.hh"
#include "isa/reg.hh"

namespace prorace::isa {

/**
 * An x86-style memory operand: base + index*scale + displacement, or a
 * PC-relative reference.
 *
 * PC-relative operands resolve to the displacement alone (the simulated
 * data address space is disjoint from code); what matters for the paper's
 * reconstruction story is that such addresses are computable from %rip,
 * which the replayer always has.
 */
struct MemOperand {
    Reg base = Reg::none;   ///< base register, or none
    Reg index = Reg::none;  ///< index register, or none
    uint8_t scale = 1;      ///< 1, 2, 4 or 8
    int64_t disp = 0;       ///< signed displacement
    bool rip_relative = false; ///< address = disp, independent of registers

    bool operator==(const MemOperand &) const = default;

    /** A direct absolute/PC-relative reference to a known address. */
    static MemOperand
    ripRel(int64_t addr)
    {
        MemOperand m;
        m.disp = addr;
        m.rip_relative = true;
        return m;
    }

    /** [base + disp]. */
    static MemOperand
    baseDisp(Reg base, int64_t disp = 0)
    {
        MemOperand m;
        m.base = base;
        m.disp = disp;
        return m;
    }

    /** [base + index*scale + disp]. */
    static MemOperand
    baseIndex(Reg base, Reg index, uint8_t scale = 1, int64_t disp = 0)
    {
        MemOperand m;
        m.base = base;
        m.index = index;
        m.scale = scale;
        m.disp = disp;
        return m;
    }
};

/**
 * One decoded instruction.
 *
 * A flat tagged struct rather than a class hierarchy: instructions are
 * stored by the hundreds of thousands in program and path vectors, and
 * both the VM and the replayer switch on op.
 */
struct Insn {
    Op op = Op::kNop;
    Reg dst = Reg::none;       ///< destination register
    Reg src = Reg::none;       ///< source register
    AluOp alu = AluOp::kAdd;   ///< sub-operation for kAluRR/kAluRI/kAtomicRmw
    CondCode cond = CondCode::kEq; ///< condition for kJcc
    uint8_t width = 8;         ///< memory access width in bytes (1/2/4/8)
    bool sign_extend = false;  ///< sign-extend sub-width loads (movslq etc.)
    SyscallNo sysno = SyscallNo::kNone; ///< for kSyscall
    int64_t imm = 0;           ///< immediate operand
    MemOperand mem;            ///< memory operand where applicable
    uint32_t target = 0;       ///< branch/call target (instruction index)

    /** True when this instruction has an explicit memory operand. */
    bool
    hasMemOperand() const
    {
        switch (op) {
          case Op::kLoad:
          case Op::kStore:
          case Op::kStoreI:
          case Op::kLea:
          case Op::kAtomicRmw:
          case Op::kCas:
          case Op::kLock:
          case Op::kUnlock:
          case Op::kCondWait:
          case Op::kCondSignal:
          case Op::kCondBcast:
          case Op::kBarrier:
          case Op::kRwRdLock:
          case Op::kRwWrLock:
          case Op::kRwUnlock:
          case Op::kSemInit:
          case Op::kSemWait:
          case Op::kSemPost:
          case Op::kSpinLock:
          case Op::kSpinUnlock:
          case Op::kLoadAcq:
          case Op::kStoreRel:
          case Op::kAtomicRmwAcqRel:
            return true;
          default:
            return false;
        }
    }

    /** True when the memory address depends on no register (PC-relative). */
    bool
    pcRelative() const
    {
        return hasMemOperand() && mem.rip_relative;
    }
};

/**
 * Check structural well-formedness of one instruction (register fields
 * present where required, scale is a power of two, width is sane).
 * Returns nullptr when valid, else a static description of the problem.
 */
const char *validateInsn(const Insn &insn);

} // namespace prorace::isa

#endif // PRORACE_ISA_INSN_HH

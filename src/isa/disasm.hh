/**
 * @file
 * Textual disassembler for debugging and race-report rendering.
 */

#ifndef PRORACE_ISA_DISASM_HH
#define PRORACE_ISA_DISASM_HH

#include <string>

#include "isa/insn.hh"

namespace prorace::isa {

/** Render a memory operand as "[rax + rbx*4 + 0x10]" or "[rip + 0x40]". */
std::string formatMemOperand(const MemOperand &mem);

/** Render one instruction in an AT&T-flavoured syntax. */
std::string disassemble(const Insn &insn);

} // namespace prorace::isa

#endif // PRORACE_ISA_DISASM_HH

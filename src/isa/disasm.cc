#include "isa/disasm.hh"

#include <sstream>

namespace prorace::isa {

std::string
formatMemOperand(const MemOperand &mem)
{
    std::ostringstream os;
    os << "[";
    if (mem.rip_relative) {
        os << "rip:0x" << std::hex << mem.disp << std::dec;
    } else {
        bool first = true;
        if (mem.base != Reg::none) {
            os << regName(mem.base);
            first = false;
        }
        if (mem.index != Reg::none) {
            if (!first)
                os << " + ";
            os << regName(mem.index) << "*" << int(mem.scale);
            first = false;
        }
        if (mem.disp != 0 || first) {
            if (!first)
                os << (mem.disp >= 0 ? " + " : " - ");
            os << "0x" << std::hex
               << (mem.disp >= 0 ? mem.disp : -mem.disp) << std::dec;
        }
    }
    os << "]";
    return os.str();
}

std::string
disassemble(const Insn &insn)
{
    std::ostringstream os;
    switch (insn.op) {
      case Op::kNop:
      case Op::kHalt:
      case Op::kRet:
        os << opName(insn.op);
        break;
      case Op::kMovRI:
        os << "mov $" << insn.imm << ", %" << regName(insn.dst);
        break;
      case Op::kMovRR:
        os << "mov %" << regName(insn.src) << ", %" << regName(insn.dst);
        break;
      case Op::kLoad:
        os << "mov" << (insn.sign_extend ? "sx" : "") << int(insn.width)
           << " " << formatMemOperand(insn.mem) << ", %"
           << regName(insn.dst);
        break;
      case Op::kStore:
        os << "mov" << int(insn.width) << " %" << regName(insn.src)
           << ", " << formatMemOperand(insn.mem);
        break;
      case Op::kStoreI:
        os << "mov" << int(insn.width) << " $" << insn.imm << ", "
           << formatMemOperand(insn.mem);
        break;
      case Op::kLea:
        os << "lea " << formatMemOperand(insn.mem) << ", %"
           << regName(insn.dst);
        break;
      case Op::kAluRR:
        os << aluName(insn.alu) << " %" << regName(insn.src) << ", %"
           << regName(insn.dst);
        break;
      case Op::kAluRI:
        os << aluName(insn.alu) << " $" << insn.imm << ", %"
           << regName(insn.dst);
        break;
      case Op::kCmpRR:
        os << "cmp %" << regName(insn.src) << ", %" << regName(insn.dst);
        break;
      case Op::kCmpRI:
        os << "cmp $" << insn.imm << ", %" << regName(insn.dst);
        break;
      case Op::kTestRR:
        os << "test %" << regName(insn.src) << ", %" << regName(insn.dst);
        break;
      case Op::kTestRI:
        os << "test $" << insn.imm << ", %" << regName(insn.dst);
        break;
      case Op::kJcc:
        os << "j" << condName(insn.cond) << " #" << insn.target;
        break;
      case Op::kJmp:
        os << "jmp #" << insn.target;
        break;
      case Op::kJmpInd:
        os << "jmp *%" << regName(insn.src);
        break;
      case Op::kCall:
        os << "call #" << insn.target;
        break;
      case Op::kCallInd:
        os << "call *%" << regName(insn.src);
        break;
      case Op::kPush:
        os << "push %" << regName(insn.src);
        break;
      case Op::kPop:
        os << "pop %" << regName(insn.dst);
        break;
      case Op::kAtomicRmw:
        os << "lock " << aluName(insn.alu) << int(insn.width) << " %"
           << regName(insn.src) << ", " << formatMemOperand(insn.mem)
           << " -> %" << regName(insn.dst);
        break;
      case Op::kCas:
        os << "lock cmpxchg" << int(insn.width) << " %"
           << regName(insn.src) << ", " << formatMemOperand(insn.mem)
           << " (expected %" << regName(insn.dst) << ")";
        break;
      case Op::kLock:
      case Op::kUnlock:
      case Op::kCondSignal:
      case Op::kCondBcast:
        os << opName(insn.op) << "(" << formatMemOperand(insn.mem) << ")";
        break;
      case Op::kCondWait:
        os << "pthread_cond_wait(" << formatMemOperand(insn.mem)
           << ", mutex=%" << regName(insn.src) << ")";
        break;
      case Op::kBarrier:
        os << "pthread_barrier_wait(" << formatMemOperand(insn.mem)
           << ", parties=" << insn.imm << ")";
        break;
      case Op::kSpawn:
        os << "pthread_create(entry=#" << insn.target << ", arg=%"
           << regName(insn.src) << ") -> %" << regName(insn.dst);
        break;
      case Op::kJoin:
        os << "pthread_join(%" << regName(insn.src) << ")";
        break;
      case Op::kMalloc:
        os << "malloc(%" << regName(insn.src) << ") -> %"
           << regName(insn.dst);
        break;
      case Op::kFree:
        os << "free(%" << regName(insn.src) << ")";
        break;
      case Op::kSyscall:
        os << "syscall " << syscallName(insn.sysno) << "($" << insn.imm
           << ")";
        break;
      case Op::kRwRdLock:
      case Op::kRwWrLock:
      case Op::kRwUnlock:
      case Op::kSemWait:
      case Op::kSemPost:
      case Op::kSpinLock:
      case Op::kSpinUnlock:
        os << opName(insn.op) << "(" << formatMemOperand(insn.mem) << ")";
        break;
      case Op::kSemInit:
        os << "sem_init(" << formatMemOperand(insn.mem) << ", value="
           << insn.imm << ")";
        break;
      case Op::kLoadAcq:
        os << "mov.acq" << int(insn.width) << " "
           << formatMemOperand(insn.mem) << ", %" << regName(insn.dst);
        break;
      case Op::kStoreRel:
        os << "mov.rel" << int(insn.width) << " %" << regName(insn.src)
           << ", " << formatMemOperand(insn.mem);
        break;
      case Op::kAtomicRmwAcqRel:
        os << "lock.acqrel " << aluName(insn.alu) << int(insn.width)
           << " %" << regName(insn.src) << ", "
           << formatMemOperand(insn.mem) << " -> %" << regName(insn.dst);
        break;
    }
    return os.str();
}

} // namespace prorace::isa

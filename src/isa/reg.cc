#include "isa/reg.hh"

namespace prorace::isa {

const char *
regName(Reg r)
{
    switch (r) {
      case Reg::rax:  return "rax";
      case Reg::rbx:  return "rbx";
      case Reg::rcx:  return "rcx";
      case Reg::rdx:  return "rdx";
      case Reg::rsi:  return "rsi";
      case Reg::rdi:  return "rdi";
      case Reg::rbp:  return "rbp";
      case Reg::rsp:  return "rsp";
      case Reg::r8:   return "r8";
      case Reg::r9:   return "r9";
      case Reg::r10:  return "r10";
      case Reg::r11:  return "r11";
      case Reg::r12:  return "r12";
      case Reg::r13:  return "r13";
      case Reg::r14:  return "r14";
      case Reg::r15:  return "r15";
      case Reg::rip:  return "rip";
      case Reg::none: return "-";
    }
    return "?";
}

} // namespace prorace::isa

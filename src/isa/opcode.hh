/**
 * @file
 * Opcodes, ALU sub-operations, syscall numbers, and opcode traits.
 */

#ifndef PRORACE_ISA_OPCODE_HH
#define PRORACE_ISA_OPCODE_HH

#include <cstdint>

namespace prorace::isa {

/**
 * Instruction opcodes.
 *
 * The set covers what matters for memory-trace reconstruction: data
 * movement with x86 addressing modes, flag-producing arithmetic,
 * direct/conditional/indirect control flow, calls/returns via an
 * architectural stack, atomics, pthread-style synchronization, heap
 * management, and modeled syscalls.
 */
enum class Op : uint8_t {
    kNop = 0,
    kHalt,       ///< terminate the executing thread

    kMovRI,      ///< dst <- imm
    kMovRR,      ///< dst <- src
    kLoad,       ///< dst <- [mem]     (width, optional sign extension)
    kStore,      ///< [mem] <- src     (width)
    kStoreI,     ///< [mem] <- imm     (width)
    kLea,        ///< dst <- effective address of mem

    kAluRR,      ///< dst <- dst aluop src        ; sets flags
    kAluRI,      ///< dst <- dst aluop imm        ; sets flags
    kCmpRR,      ///< flags of dst - src
    kCmpRI,      ///< flags of dst - imm
    kTestRR,     ///< flags of dst & src
    kTestRI,     ///< flags of dst & imm

    kJcc,        ///< conditional direct branch to target
    kJmp,        ///< unconditional direct branch to target
    kJmpInd,     ///< unconditional indirect branch to [src register]
    kCall,       ///< direct call: push return ip, jump to target
    kCallInd,    ///< indirect call through src register
    kRet,        ///< pop return ip, jump there

    kPush,       ///< rsp -= 8; [rsp] <- src
    kPop,        ///< dst <- [rsp]; rsp += 8

    kAtomicRmw,  ///< dst <- old [mem]; [mem] <- old aluop src (atomic)
    kCas,        ///< compare-and-swap: if [mem]==dst then [mem]<-src,zf=1
                 ///< else dst<-[mem],zf=0

    kLock,       ///< acquire mutex whose variable lives at [mem]
    kUnlock,     ///< release mutex at [mem]
    kCondWait,   ///< wait on condvar at [mem]; mutex var addr in src reg
    kCondSignal, ///< signal condvar at [mem]
    kCondBcast,  ///< broadcast condvar at [mem]
    kBarrier,    ///< wait at barrier at [mem]; imm = party count

    kSpawn,      ///< dst <- new thread id; entry = target; arg reg = src
    kJoin,       ///< join thread whose id is in src

    kMalloc,     ///< dst <- allocate src bytes
    kFree,       ///< free block at address in src

    kSyscall,    ///< modeled OS call (sysno field); clobbers rax

    kRwRdLock,   ///< acquire rwlock at [mem] for reading (shared)
    kRwWrLock,   ///< acquire rwlock at [mem] for writing (exclusive)
    kRwUnlock,   ///< release rwlock at [mem] (either mode)
    kSemInit,    ///< initialize semaphore at [mem]; imm = initial count
    kSemWait,    ///< P: decrement semaphore at [mem], blocking at zero
    kSemPost,    ///< V: increment semaphore at [mem], waking one waiter
    kSpinLock,   ///< acquire spinlock at [mem] (busy-wait acquire)
    kSpinUnlock, ///< release spinlock at [mem]
    kLoadAcq,    ///< dst <- [mem] with acquire ordering
    kStoreRel,   ///< [mem] <- src with release ordering
    kAtomicRmwAcqRel, ///< kAtomicRmw with acquire+release ordering
};

/** ALU sub-operations for kAluRR/kAluRI/kAtomicRmw. */
enum class AluOp : uint8_t {
    kAdd = 0,
    kSub,
    kAnd,
    kOr,
    kXor,
    kMul,
    kShl,
    kShr,  ///< logical right shift
    kSar,  ///< arithmetic right shift
};

/** Modeled syscalls; used for I/O timing and replay invalidation. */
enum class SyscallNo : uint8_t {
    kNone = 0,
    kRead,     ///< file read; blocks per the workload's I/O model
    kWrite,    ///< file write
    kNetSend,  ///< network send
    kNetRecv,  ///< network receive
    kSleep,    ///< sleep for imm cycles
    kYield,    ///< scheduler hint, no blocking
};

/** True for instructions that read data memory (PEBS "load" events). */
bool isLoad(Op op);

/** True for instructions that write data memory (PEBS "store" events). */
bool isStore(Op op);

/** True when the op reads or writes data memory at a computed address. */
bool accessesMemory(Op op);

/** True for conditional branches (one PT TNT bit each). */
bool isCondBranch(Op op);

/**
 * True for transfers whose target is not statically known
 * (indirect jumps/calls and returns; one PT TIP packet each).
 */
bool isIndirectBranch(Op op);

/** True for any instruction that may redirect control flow. */
bool isControlFlow(Op op);

/** True for synchronization operations logged by the sync tracer. */
bool isSyncOp(Op op);

/** True when the op writes its dst register. */
bool writesDst(Op op);

/** True when executing the op updates the flags register. */
bool writesFlags(Op op);

/** Printable mnemonic. */
const char *opName(Op op);

/** Printable ALU mnemonic. */
const char *aluName(AluOp op);

/** Printable syscall name. */
const char *syscallName(SyscallNo no);

} // namespace prorace::isa

#endif // PRORACE_ISA_OPCODE_HH

/**
 * @file
 * A work-stealing thread-pool executor for the offline-analysis engine.
 *
 * Each worker owns a deque (task_queue.hh); submissions are distributed
 * round-robin across the workers, the owner services its deque LIFO,
 * and an idle worker steals the oldest task of the busiest victim.
 * Results travel through exec::Future, which also carries exceptions:
 * a task that throws never kills a worker thread — the error is
 * rethrown on whichever thread calls get() (panic-safe shutdown).
 *
 * The destructor drains nothing: it wakes every worker, waits for
 * in-flight tasks to finish, and joins. Callers that care about
 * results hold the futures.
 *
 * Per-stage observability: ExecutorStats counts submissions,
 * executions, steals, and queue-depth high-water, and aggregates task
 * latency into a support::RunningStat (steady-clock based, like every
 * timer in the offline pipeline).
 */

#ifndef PRORACE_EXEC_EXECUTOR_HH
#define PRORACE_EXEC_EXECUTOR_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "exec/future.hh"
#include "exec/task_queue.hh"
#include "support/stats.hh"

namespace prorace::exec {

/** Executor counters (merged across workers on demand). */
struct ExecutorStats {
    uint64_t submitted = 0;
    uint64_t executed = 0;
    uint64_t stolen = 0;          ///< executions that came from a steal
    uint64_t max_queue_depth = 0; ///< high-water mark of any worker deque
    RunningStat task_seconds;     ///< per-task execution latency
};

class Executor
{
  public:
    /**
     * Start @p num_threads workers. 0 asks for
     * std::thread::hardware_concurrency() (at least 1).
     */
    explicit Executor(unsigned num_threads);

    /** Waits for in-flight tasks, then joins every worker. */
    ~Executor();

    Executor(const Executor &) = delete;
    Executor &operator=(const Executor &) = delete;

    unsigned numThreads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Submit a callable; returns a Future of its result. The callable
     * runs exactly once on some worker thread.
     */
    template <typename Fn, typename R = std::invoke_result_t<Fn>>
    Future<R>
    submit(Fn fn)
    {
        Promise<R> promise;
        Future<R> future = promise.future();
        // The latency is recorded before the promise resolves, so a
        // stats() call after Future::get() always sees this task.
        enqueue([this, promise = std::move(promise),
                 fn = std::move(fn)]() mutable {
            const auto t0 = std::chrono::steady_clock::now();
            try {
                if constexpr (std::is_void_v<R>) {
                    fn();
                    recordTaskSeconds(t0);
                    promise.setValue();
                } else {
                    R result = fn();
                    recordTaskSeconds(t0);
                    promise.setValue(std::move(result));
                }
            } catch (...) {
                recordTaskSeconds(t0);
                promise.setError(std::current_exception());
            }
        });
        return future;
    }

    /**
     * Run fn(i) for i in [0, count) across the pool and wait for all;
     * the first captured exception is rethrown.
     */
    void parallelFor(uint64_t count,
                     const std::function<void(uint64_t)> &fn);

    /** Snapshot of the counters (merges per-worker state). */
    ExecutorStats stats() const;

  private:
    struct Worker {
        TaskQueue<std::function<void()>> queue;
        std::thread thread;
        // Worker-local counters, merged under stats_mu_ by stats().
        uint64_t executed = 0;
        uint64_t stolen = 0;
        uint64_t max_queue_depth = 0;
    };

    void enqueue(std::function<void()> task);
    void workerLoop(unsigned index);
    bool runOneTask(unsigned index);
    void recordTaskSeconds(std::chrono::steady_clock::time_point t0);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::mutex wake_mu_;
    std::condition_variable wake_cv_;
    std::atomic<bool> shutdown_{false};
    std::atomic<uint64_t> pending_{0};   ///< queued but not yet started
    std::atomic<uint64_t> submitted_{0};
    std::atomic<uint64_t> next_worker_{0};
    mutable std::mutex stats_mu_; ///< guards worker counters cross-thread
    RunningStat task_seconds_;    ///< pool-wide, under stats_mu_
};

} // namespace prorace::exec

#endif // PRORACE_EXEC_EXECUTOR_HH

/**
 * @file
 * Per-worker work-stealing deque.
 *
 * The owner pushes and pops at the back; thieves steal from the front,
 * so a steal always takes the oldest task (FIFO across the pool while
 * the owner runs its most recent work cache-hot). A mutex per deque is
 * plenty here: tasks in the offline pipeline are window- or
 * stream-sized (micro- to milliseconds), so queue operations are not
 * the contended path, and the lock keeps the structure trivially
 * correct under ThreadSanitizer.
 */

#ifndef PRORACE_EXEC_TASK_QUEUE_HH
#define PRORACE_EXEC_TASK_QUEUE_HH

#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace prorace::exec {

template <typename T> class TaskQueue
{
  public:
    /** Owner side: enqueue at the back. Returns the new depth. */
    size_t
    push(T task)
    {
        std::lock_guard<std::mutex> lock(mu_);
        tasks_.push_back(std::move(task));
        return tasks_.size();
    }

    /** Owner side: take the most recently pushed task. */
    std::optional<T>
    pop()
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (tasks_.empty())
            return std::nullopt;
        T task = std::move(tasks_.back());
        tasks_.pop_back();
        return task;
    }

    /** Thief side: take the oldest task. */
    std::optional<T>
    steal()
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (tasks_.empty())
            return std::nullopt;
        T task = std::move(tasks_.front());
        tasks_.pop_front();
        return task;
    }

    bool
    empty() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return tasks_.empty();
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return tasks_.size();
    }

  private:
    mutable std::mutex mu_;
    std::deque<T> tasks_;
};

} // namespace prorace::exec

#endif // PRORACE_EXEC_TASK_QUEUE_HH

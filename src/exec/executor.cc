#include "exec/executor.hh"

#include <chrono>

#include "support/log.hh"

namespace prorace::exec {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - t0).count();
}

} // namespace

Executor::Executor(unsigned num_threads)
{
    if (num_threads == 0) {
        num_threads = std::thread::hardware_concurrency();
        if (num_threads == 0)
            num_threads = 1;
    }
    workers_.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        workers_.push_back(std::make_unique<Worker>());
    for (unsigned i = 0; i < num_threads; ++i)
        workers_[i]->thread = std::thread([this, i] { workerLoop(i); });
}

Executor::~Executor()
{
    {
        std::lock_guard<std::mutex> lock(wake_mu_);
        shutdown_.store(true, std::memory_order_release);
    }
    wake_cv_.notify_all();
    for (auto &w : workers_) {
        if (w->thread.joinable())
            w->thread.join();
    }
}

void
Executor::enqueue(std::function<void()> task)
{
    PRORACE_ASSERT(!shutdown_.load(std::memory_order_acquire),
                   "submit() on a shut-down executor");
    const uint64_t n = next_worker_.fetch_add(1, std::memory_order_relaxed);
    Worker &w = *workers_[n % workers_.size()];
    pending_.fetch_add(1, std::memory_order_release);
    submitted_.fetch_add(1, std::memory_order_relaxed);
    const size_t depth = w.queue.push(std::move(task));
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        if (depth > w.max_queue_depth)
            w.max_queue_depth = depth;
    }
    wake_cv_.notify_one();
}

bool
Executor::runOneTask(unsigned index)
{
    Worker &self = *workers_[index];
    std::optional<std::function<void()>> task = self.queue.pop();
    bool was_steal = false;
    if (!task) {
        // Steal the oldest task of the deepest victim, so the pool
        // retires work roughly in submission order when idle.
        size_t best_depth = 0;
        size_t victim = index;
        for (size_t v = 0; v < workers_.size(); ++v) {
            if (v == index)
                continue;
            const size_t depth = workers_[v]->queue.size();
            if (depth > best_depth) {
                best_depth = depth;
                victim = v;
            }
        }
        if (victim != index) {
            task = workers_[victim]->queue.steal();
            was_steal = task.has_value();
        }
    }
    if (!task)
        return false;

    pending_.fetch_sub(1, std::memory_order_acq_rel);
    // Count before running: the task resolves its future, and a
    // stats() reader synchronized by that future must see this task.
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++self.executed;
        if (was_steal)
            ++self.stolen;
    }
    (*task)();
    return true;
}

void
Executor::recordTaskSeconds(std::chrono::steady_clock::time_point t0)
{
    const double seconds = secondsSince(t0);
    std::lock_guard<std::mutex> lock(stats_mu_);
    task_seconds_.add(seconds);
}

void
Executor::workerLoop(unsigned index)
{
    for (;;) {
        if (runOneTask(index))
            continue;
        std::unique_lock<std::mutex> lock(wake_mu_);
        if (shutdown_.load(std::memory_order_acquire) &&
            pending_.load(std::memory_order_acquire) == 0) {
            return;
        }
        if (pending_.load(std::memory_order_acquire) != 0)
            continue; // raced with a submit; retry before sleeping
        wake_cv_.wait(lock, [this] {
            return shutdown_.load(std::memory_order_acquire) ||
                pending_.load(std::memory_order_acquire) != 0;
        });
    }
}

void
Executor::parallelFor(uint64_t count,
                      const std::function<void(uint64_t)> &fn)
{
    std::vector<Future<void>> futures;
    futures.reserve(count);
    for (uint64_t i = 0; i < count; ++i)
        futures.push_back(submit([&fn, i] { fn(i); }));
    std::exception_ptr first_error;
    for (auto &f : futures) {
        try {
            f.get();
        } catch (...) {
            if (!first_error)
                first_error = std::current_exception();
        }
    }
    if (first_error)
        std::rethrow_exception(first_error);
}

ExecutorStats
Executor::stats() const
{
    ExecutorStats out;
    out.submitted = submitted_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(stats_mu_);
    for (const auto &w : workers_) {
        out.executed += w->executed;
        out.stolen += w->stolen;
        if (w->max_queue_depth > out.max_queue_depth)
            out.max_queue_depth = w->max_queue_depth;
    }
    out.task_seconds = task_seconds_;
    return out;
}

} // namespace prorace::exec

/**
 * @file
 * Bounded reorder buffer: the ordered-commit stage of the parallel
 * offline pipeline.
 *
 * Producers finish sequence-numbered work items in any order and
 * commit() them; a single consumer pop()s them strictly in sequence
 * order. The capacity bounds how far ahead of the commit frontier a
 * producer may run: commit(seq) blocks while seq >= frontier +
 * capacity, which caps memory held for out-of-order completions.
 *
 * The parallel analyzer additionally throttles *submission* to the
 * capacity, so under the work-stealing executor (whose owners pop
 * LIFO) a late-sequence task can never occupy every worker while an
 * early-sequence task is still queued — the blocking commit path is a
 * genuine bound, not a liveness hazard.
 */

#ifndef PRORACE_EXEC_REORDER_BUFFER_HH
#define PRORACE_EXEC_REORDER_BUFFER_HH

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>

#include "support/log.hh"

namespace prorace::exec {

template <typename T> class ReorderBuffer
{
  public:
    explicit ReorderBuffer(uint64_t capacity) : capacity_(capacity)
    {
        PRORACE_ASSERT(capacity >= 1, "reorder buffer needs capacity");
    }

    /** Producer: deliver item @p seq; blocks while the buffer is full. */
    void
    commit(uint64_t seq, T value)
    {
        std::unique_lock<std::mutex> lock(mu_);
        PRORACE_ASSERT(seq >= next_, "reorder buffer sequence reused");
        space_cv_.wait(lock,
                       [&] { return seq < next_ + capacity_; });
        held_.emplace(seq, std::move(value));
        if (seq == next_)
            ready_cv_.notify_one();
    }

    /** Consumer: take the next item in sequence order. */
    T
    pop()
    {
        std::unique_lock<std::mutex> lock(mu_);
        ready_cv_.wait(lock, [&] {
            return !held_.empty() && held_.begin()->first == next_;
        });
        auto it = held_.begin();
        T value = std::move(it->second);
        held_.erase(it);
        ++next_;
        space_cv_.notify_all();
        return value;
    }

    /** Sequence number the consumer will pop next. */
    uint64_t
    frontier() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return next_;
    }

    /** Items currently parked out of order. */
    uint64_t
    held() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return held_.size();
    }

  private:
    const uint64_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable ready_cv_;
    std::condition_variable space_cv_;
    std::map<uint64_t, T> held_;
    uint64_t next_ = 0;
};

} // namespace prorace::exec

#endif // PRORACE_EXEC_REORDER_BUFFER_HH

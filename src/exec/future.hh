/**
 * @file
 * A minimal future/promise pair for executor tasks.
 *
 * std::future would do, but a self-contained shared state keeps the
 * executor dependency-light, lets the worker loop observe task
 * completion uniformly for its latency counters, and gives us a void
 * specialization without packaged_task indirection. Exceptions thrown
 * by a task are captured and rethrown from get() on the waiting thread
 * (panic-safe: a throwing task never takes down a worker).
 */

#ifndef PRORACE_EXEC_FUTURE_HH
#define PRORACE_EXEC_FUTURE_HH

#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

namespace prorace::exec {

namespace detail {

template <typename T> struct SharedState {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<T> value;
    std::exception_ptr error;
    bool ready = false;
};

template <> struct SharedState<void> {
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr error;
    bool ready = false;
};

} // namespace detail

template <typename T> class Promise;

/** The consumer half: wait for and take a task's result. */
template <typename T> class Future
{
  public:
    Future() = default;

    /** True when bound to a task (moved-from futures are invalid). */
    bool valid() const { return state_ != nullptr; }

    /** True once the producer delivered a value or an exception. */
    bool
    ready() const
    {
        std::lock_guard<std::mutex> lock(state_->mu);
        return state_->ready;
    }

    /** Block for the result; rethrows the task's exception, if any. */
    T
    get()
    {
        std::unique_lock<std::mutex> lock(state_->mu);
        state_->cv.wait(lock, [this] { return state_->ready; });
        if (state_->error)
            std::rethrow_exception(state_->error);
        if constexpr (!std::is_void_v<T>)
            return std::move(*state_->value);
    }

    /** Block until ready without consuming the value. */
    void
    wait() const
    {
        std::unique_lock<std::mutex> lock(state_->mu);
        state_->cv.wait(lock, [this] { return state_->ready; });
    }

  private:
    friend class Promise<T>;
    explicit Future(std::shared_ptr<detail::SharedState<T>> state)
        : state_(std::move(state))
    {
    }

    std::shared_ptr<detail::SharedState<T>> state_;
};

/** The producer half, held by the task wrapper. */
template <typename T> class Promise
{
  public:
    Promise() : state_(std::make_shared<detail::SharedState<T>>()) {}

    Future<T> future() const { return Future<T>(state_); }

    template <typename U>
    void
    setValue(U &&value)
    {
        {
            std::lock_guard<std::mutex> lock(state_->mu);
            state_->value.emplace(std::forward<U>(value));
            state_->ready = true;
        }
        state_->cv.notify_all();
    }

    void
    setError(std::exception_ptr error)
    {
        {
            std::lock_guard<std::mutex> lock(state_->mu);
            state_->error = error;
            state_->ready = true;
        }
        state_->cv.notify_all();
    }

  private:
    std::shared_ptr<detail::SharedState<T>> state_;
};

template <> class Promise<void>
{
  public:
    Promise() : state_(std::make_shared<detail::SharedState<void>>()) {}

    Future<void> future() const { return Future<void>(state_); }

    void
    setValue()
    {
        {
            std::lock_guard<std::mutex> lock(state_->mu);
            state_->ready = true;
        }
        state_->cv.notify_all();
    }

    void
    setError(std::exception_ptr error)
    {
        {
            std::lock_guard<std::mutex> lock(state_->mu);
            state_->error = error;
            state_->ready = true;
        }
        state_->cv.notify_all();
    }

  private:
    std::shared_ptr<detail::SharedState<void>> state_;
};

} // namespace prorace::exec

#endif // PRORACE_EXEC_FUTURE_HH

#include "support/bitstream.hh"

#include "support/log.hh"

namespace prorace {

void
BitWriter::putBit(bool bit)
{
    const unsigned offset = bit_count_ % 8;
    if (offset == 0)
        bytes_.push_back(0);
    if (bit)
        bytes_.back() |= static_cast<uint8_t>(1u << offset);
    ++bit_count_;
}

void
BitWriter::putBits(uint64_t value, unsigned nbits)
{
    PRORACE_ASSERT(nbits <= 64, "putBits width out of range: ", nbits);
    for (unsigned i = 0; i < nbits; ++i)
        putBit((value >> i) & 1u);
}

void
BitWriter::clear()
{
    bytes_.clear();
    bit_count_ = 0;
}

BitReader::BitReader(const std::vector<uint8_t> &bytes, uint64_t bit_count)
    : bytes_(bytes), bit_count_(bit_count)
{
    PRORACE_ASSERT(bit_count <= bytes.size() * 8,
                   "BitReader bit count exceeds buffer");
}

bool
BitReader::getBit()
{
    PRORACE_ASSERT(pos_ < bit_count_, "BitReader read past end");
    const bool bit = (bytes_[pos_ / 8] >> (pos_ % 8)) & 1u;
    ++pos_;
    return bit;
}

uint64_t
BitReader::getBits(unsigned nbits)
{
    PRORACE_ASSERT(nbits <= 64, "getBits width out of range: ", nbits);
    uint64_t value = 0;
    for (unsigned i = 0; i < nbits; ++i) {
        if (getBit())
            value |= (uint64_t{1} << i);
    }
    return value;
}

bool
BitReader::tryGetBit(bool &bit)
{
    if (pos_ >= bit_count_)
        return false;
    bit = (bytes_[pos_ / 8] >> (pos_ % 8)) & 1u;
    ++pos_;
    return true;
}

bool
BitReader::tryGetBits(uint64_t &value, unsigned nbits)
{
    PRORACE_ASSERT(nbits <= 64, "tryGetBits width out of range: ", nbits);
    if (remaining() < nbits)
        return false;
    value = getBits(nbits);
    return true;
}

} // namespace prorace

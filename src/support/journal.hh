/**
 * @file
 * Write-ahead journal: crash-durable append-only record log.
 *
 * The fleet service must survive the process dying at any instruction:
 * the cross-tenant report store is rebuilt on restart by replaying this
 * journal, so the durability contract is the classic WAL one — after a
 * crash, the recovered state is byte-identical to the state at the last
 * record that reached the disk, and a torn tail (a record the crash cut
 * mid-write) is silently truncated rather than poisoning recovery.
 *
 * On-disk format, repeated per record:
 *
 *   record := u32 magic "JRNL", u32 type, u32 payload_size,
 *             u32 crc, payload
 *
 * where crc is the CRC-32 of (type, payload_size, payload) as one
 * stream, so a flipped byte anywhere in the record — header or payload
 * — invalidates it. Validity is prefix-shaped: open() replays records
 * from byte 0 and stops at the first one that fails its magic, bounds,
 * or CRC check, truncating the file there. A record is therefore
 * recoverable iff every record before it is.
 *
 * Appends write() the framed record immediately and fsync() in batches
 * (every sync_every_records appends, configurable; sync() forces one).
 * A crash can lose at most the unsynced suffix; it can never corrupt
 * the synced prefix, because records are strictly appended and the
 * header of record N+1 lands after the last byte of record N.
 *
 * ByteWriter/ByteReader are the little-endian payload codec shared by
 * every journal payload (report-store ingest records, detector
 * checkpoints): length-prefixed strings, fixed-width integers, nested
 * blobs. ByteReader never reads out of bounds; any malformed payload
 * turns every subsequent read into zero/empty and latches ok() false.
 */

#ifndef PRORACE_SUPPORT_JOURNAL_HH
#define PRORACE_SUPPORT_JOURNAL_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace prorace::support {

/** Little-endian payload encoder for journal records and checkpoints. */
class ByteWriter
{
  public:
    void
    u8(uint8_t v)
    {
        bytes_.push_back(v);
    }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    /** Length-prefixed string. */
    void
    str(const std::string &s)
    {
        u32(static_cast<uint32_t>(s.size()));
        bytes_.insert(bytes_.end(), s.begin(), s.end());
    }

    /** Length-prefixed nested blob. */
    void
    blob(const std::vector<uint8_t> &b)
    {
        u32(static_cast<uint32_t>(b.size()));
        bytes_.insert(bytes_.end(), b.begin(), b.end());
    }

    const std::vector<uint8_t> &bytes() const { return bytes_; }
    std::vector<uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<uint8_t> bytes_;
};

/** Bounds-checked decoder; reads past the end latch ok() false. */
class ByteReader
{
  public:
    ByteReader(const uint8_t *data, size_t size)
        : data_(data), size_(size)
    {
    }

    explicit ByteReader(const std::vector<uint8_t> &bytes)
        : ByteReader(bytes.data(), bytes.size())
    {
    }

    uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return data_[pos_++];
    }

    uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    std::string
    str()
    {
        const uint32_t n = u32();
        if (!need(n))
            return {};
        std::string s(reinterpret_cast<const char *>(data_ + pos_), n);
        pos_ += n;
        return s;
    }

    std::vector<uint8_t>
    blob()
    {
        const uint32_t n = u32();
        if (!need(n))
            return {};
        std::vector<uint8_t> b(data_ + pos_, data_ + pos_ + n);
        pos_ += n;
        return b;
    }

    /** No read ran out of bounds so far. */
    bool ok() const { return ok_; }

    /** ok() and every byte was consumed (strict whole-payload parse). */
    bool exhausted() const { return ok_ && pos_ == size_; }

  private:
    bool
    need(size_t n)
    {
        if (!ok_ || n > size_ - pos_) {
            ok_ = false;
            return false;
        }
        return true;
    }

    const uint8_t *data_;
    size_t size_;
    size_t pos_ = 0;
    bool ok_ = true;
};

/** Magic bytes opening every journal record. */
inline constexpr uint32_t kJournalRecordMagic = 0x4C4E524A; // "JRNL"

/** Journal observability counters. */
struct JournalStats {
    uint64_t recovered_records = 0; ///< records replayed by open()
    uint64_t recovered_bytes = 0;   ///< valid prefix length at open()
    uint64_t truncated_bytes = 0;   ///< torn/corrupt tail cut by open()
    uint64_t appended_records = 0;  ///< records appended this process
    uint64_t appended_bytes = 0;
    uint64_t syncs = 0;             ///< fsync() calls issued
};

/** One record as seen by a replay callback or a scan. */
struct JournalRecord {
    uint32_t type = 0;
    std::vector<uint8_t> payload;
    uint64_t offset = 0;   ///< file offset of the record's magic
    uint64_t end_offset = 0; ///< file offset one past the payload
};

/**
 * Result of scanning a journal image without opening it for append:
 * the records of the valid prefix and where that prefix ends. Used by
 * the chaos harness and `prorace_cli store --verify` to check the
 * recovery invariant through an independent code path.
 */
struct JournalScan {
    std::vector<JournalRecord> records;
    uint64_t valid_prefix_bytes = 0;
    /** False when bytes past the valid prefix exist (torn/corrupt). */
    bool clean = true;
};

/** Decode the valid record prefix of a journal image. */
JournalScan scanJournal(const std::vector<uint8_t> &bytes);

/** scanJournal() over a file; missing file = empty clean journal. */
JournalScan scanJournalFile(const std::string &path);

/**
 * The append side. open() recovers (replay + torn-tail truncation),
 * append() frames and writes, sync() makes everything written durable.
 * Not internally locked: the service serializes appends under its own
 * mutex, which is also what keeps journal order identical to store
 * ingest order.
 */
class Journal
{
  public:
    struct Options {
        /** fsync after every Nth append (1 = every append, 0 = only on
         *  sync()/close()). */
        uint32_t sync_every_records = 8;
    };

    Journal() = default;
    ~Journal();

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /**
     * Open @p path for append, creating it if absent. Existing records
     * of the valid prefix are handed to @p replay in append order; the
     * torn/corrupt tail (if any) is truncated away before the first new
     * append. Returns false (with *error set) only when the file cannot
     * be opened or truncated — a damaged tail is recovery, not an
     * error.
     */
    bool open(const std::string &path, const Options &options,
              const std::function<void(const JournalRecord &)> &replay,
              std::string *error);

    bool isOpen() const { return fd_ >= 0; }

    /**
     * Append one record. Returns false when the write failed (disk
     * full, fd gone) — the caller keeps running; durability degrades
     * but the in-memory store stays correct.
     */
    bool append(uint32_t type, const std::vector<uint8_t> &payload);

    /** fsync everything appended so far. */
    void sync();

    /** sync and close; reopenable via open(). */
    void close();

    /** Current journal size in bytes (valid prefix + appends). */
    uint64_t sizeBytes() const { return size_bytes_; }

    const JournalStats &stats() const { return stats_; }

  private:
    int fd_ = -1;
    uint64_t size_bytes_ = 0;
    uint32_t appends_since_sync_ = 0;
    Options options_;
    JournalStats stats_;
};

} // namespace prorace::support

#endif // PRORACE_SUPPORT_JOURNAL_HH

/**
 * @file
 * Logging and error-reporting helpers shared across ProRace.
 *
 * Follows the gem5 convention: panic() marks internal invariant violations
 * (a ProRace bug), fatal() marks user errors (bad configuration), warn()
 * and inform() are advisory.
 */

#ifndef PRORACE_SUPPORT_LOG_HH
#define PRORACE_SUPPORT_LOG_HH

#include <cstdint>
#include <sstream>
#include <string>

namespace prorace {

/** Severity of a log message. */
enum class LogLevel : uint8_t { kDebug = 0, kInfo, kWarn, kError };

/**
 * Set the global minimum level below which messages are suppressed.
 * Defaults to LogLevel::kWarn so library users are not spammed.
 */
void setLogLevel(LogLevel level);

/** Current global minimum log level. */
LogLevel logLevel();

namespace detail {

/** Emit a message to stderr with a severity tag. */
void logMessage(LogLevel level, const std::string &msg);

/** Abort with an internal-error message (ProRace bug). */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);

/** Exit with a user-error message (bad configuration or input). */
[[noreturn]] void fatalImpl(const std::string &msg);

/** Fold a list of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Log an informational message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::logMessage(LogLevel::kInfo,
                       detail::concat(std::forward<Args>(args)...));
}

/** Log a warning. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::logMessage(LogLevel::kWarn,
                       detail::concat(std::forward<Args>(args)...));
}

/** Log a debug message (suppressed unless the level is lowered). */
template <typename... Args>
void
debug(Args &&...args)
{
    detail::logMessage(LogLevel::kDebug,
                       detail::concat(std::forward<Args>(args)...));
}

} // namespace prorace

/** Abort on an internal invariant violation. */
#define PRORACE_PANIC(...)                                                   \
    ::prorace::detail::panicImpl(__FILE__, __LINE__,                         \
                                 ::prorace::detail::concat(__VA_ARGS__))

/** Exit on a user error. */
#define PRORACE_FATAL(...)                                                   \
    ::prorace::detail::fatalImpl(::prorace::detail::concat(__VA_ARGS__))

/** Assert an invariant that must hold unless ProRace itself is buggy. */
#define PRORACE_ASSERT(cond, ...)                                            \
    do {                                                                     \
        if (!(cond)) {                                                       \
            PRORACE_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__);    \
        }                                                                    \
    } while (0)

#endif // PRORACE_SUPPORT_LOG_HH

#include "support/rng.hh"

#include "support/log.hh"

namespace prorace {

namespace {

uint64_t
splitmix64(uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::below(uint64_t bound)
{
    PRORACE_ASSERT(bound >= 1, "Rng::below requires bound >= 1");
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
        const uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

uint64_t
Rng::range(uint64_t lo, uint64_t hi)
{
    PRORACE_ASSERT(lo <= hi, "Rng::range requires lo <= hi");
    return lo + below(hi - lo + 1);
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace prorace

#include "support/journal.hh"

#include <cerrno>
#include <cstring>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

#include "support/crc32.hh"

namespace prorace::support {

namespace {

/** Fixed bytes before the payload: magic, type, size, crc. */
constexpr size_t kRecordHeaderSize = 16;

/** Sane per-record payload bound; a larger size field is corruption. */
constexpr uint32_t kMaxPayloadSize = 256u << 20;

uint32_t
readLe32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(p[i]) << (8 * i);
    return v;
}

void
writeLe32(uint8_t *p, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<uint8_t>(v >> (8 * i));
}

/** CRC over (type, size, payload) — the whole record minus magic+crc. */
uint32_t
recordCrc(uint32_t type, const uint8_t *payload, size_t size)
{
    uint8_t head[8];
    writeLe32(head, type);
    writeLe32(head + 4, static_cast<uint32_t>(size));
    return crc32(payload, size, crc32(head, sizeof head));
}

} // namespace

JournalScan
scanJournal(const std::vector<uint8_t> &bytes)
{
    JournalScan scan;
    size_t pos = 0;
    while (bytes.size() - pos >= kRecordHeaderSize) {
        const uint8_t *head = bytes.data() + pos;
        if (readLe32(head) != kJournalRecordMagic)
            break;
        const uint32_t type = readLe32(head + 4);
        const uint32_t size = readLe32(head + 8);
        const uint32_t crc = readLe32(head + 12);
        if (size > kMaxPayloadSize ||
            size > bytes.size() - pos - kRecordHeaderSize)
            break;
        const uint8_t *payload = head + kRecordHeaderSize;
        if (recordCrc(type, payload, size) != crc)
            break;
        JournalRecord record;
        record.type = type;
        record.payload.assign(payload, payload + size);
        record.offset = pos;
        record.end_offset = pos + kRecordHeaderSize + size;
        pos = static_cast<size_t>(record.end_offset);
        scan.records.push_back(std::move(record));
    }
    scan.valid_prefix_bytes = pos;
    scan.clean = pos == bytes.size();
    return scan;
}

JournalScan
scanJournalFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    return scanJournal(bytes);
}

Journal::~Journal()
{
    close();
}

bool
Journal::open(const std::string &path, const Options &options,
              const std::function<void(const JournalRecord &)> &replay,
              std::string *error)
{
    close();
    options_ = options;
    stats_ = JournalStats{};

    // Recover first from a plain read of the current image, then open
    // for append and cut the invalid tail.
    JournalScan scan = scanJournalFile(path);

    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0) {
        if (error)
            *error = path + ": " + std::strerror(errno);
        return false;
    }
    const off_t end = ::lseek(fd_, 0, SEEK_END);
    const uint64_t file_size = end < 0 ? 0 : static_cast<uint64_t>(end);
    if (file_size > scan.valid_prefix_bytes) {
        stats_.truncated_bytes = file_size - scan.valid_prefix_bytes;
        if (::ftruncate(fd_, static_cast<off_t>(
                                 scan.valid_prefix_bytes)) != 0) {
            if (error)
                *error = path + ": ftruncate: " + std::strerror(errno);
            ::close(fd_);
            fd_ = -1;
            return false;
        }
    }
    size_bytes_ = scan.valid_prefix_bytes;
    stats_.recovered_records = scan.records.size();
    stats_.recovered_bytes = scan.valid_prefix_bytes;

    if (replay) {
        for (const JournalRecord &record : scan.records)
            replay(record);
    }
    return true;
}

bool
Journal::append(uint32_t type, const std::vector<uint8_t> &payload)
{
    if (fd_ < 0)
        return false;
    std::vector<uint8_t> frame(kRecordHeaderSize + payload.size());
    writeLe32(frame.data(), kJournalRecordMagic);
    writeLe32(frame.data() + 4, type);
    writeLe32(frame.data() + 8, static_cast<uint32_t>(payload.size()));
    writeLe32(frame.data() + 12,
              recordCrc(type, payload.data(), payload.size()));
    std::memcpy(frame.data() + kRecordHeaderSize, payload.data(),
                payload.size());

    size_t written = 0;
    while (written < frame.size()) {
        const ssize_t n = ::write(fd_, frame.data() + written,
                                  frame.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        written += static_cast<size_t>(n);
    }
    size_bytes_ += frame.size();
    ++stats_.appended_records;
    stats_.appended_bytes += frame.size();
    if (options_.sync_every_records &&
        ++appends_since_sync_ >= options_.sync_every_records)
        sync();
    return true;
}

void
Journal::sync()
{
    if (fd_ < 0)
        return;
    ::fsync(fd_);
    ++stats_.syncs;
    appends_since_sync_ = 0;
}

void
Journal::close()
{
    if (fd_ < 0)
        return;
    sync();
    ::close(fd_);
    fd_ = -1;
}

} // namespace prorace::support

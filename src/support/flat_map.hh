/**
 * @file
 * A flat open-addressing hash table keyed by uint64_t.
 *
 * The offline hot loops (FastTrack shadow lookups, lock/exit clocks,
 * allocation lifetimes) are dominated by metadata-table probes; node
 * containers (std::map, std::unordered_map) pay a pointer chase and an
 * allocation per entry on exactly those paths. FlatMap stores values
 * inline in a power-of-two slot array with linear probing, a one-byte
 * control word per slot, and tombstone deletion, so the common lookup
 * is one hash, one control-byte load, and one key compare in the same
 * cache line neighborhood.
 *
 * Not a general-purpose container: keys are uint64_t, values must be
 * default-constructible and movable, and references returned by
 * operator[]/find are invalidated by any later insertion (rehash).
 * Iteration order is capacity-dependent and must never influence
 * report output (see DESIGN.md §9.3).
 */

#ifndef PRORACE_SUPPORT_FLAT_MAP_HH
#define PRORACE_SUPPORT_FLAT_MAP_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace prorace {

/** Probe-behavior counters of one FlatMap instance. */
struct FlatMapStats {
    uint64_t lookups = 0;     ///< find/insert operations
    uint64_t probe_steps = 0; ///< slots inspected across all lookups
    uint64_t rehashes = 0;

    double
    meanProbe() const
    {
        return lookups ? static_cast<double>(probe_steps) /
                static_cast<double>(lookups)
                       : 0.0;
    }
};

/** Open-addressing uint64_t -> Value table with inline storage. */
template <typename Value>
class FlatMap
{
  public:
    FlatMap() = default;

    /** Value for @p key, default-constructed and inserted if absent. */
    Value &
    operator[](uint64_t key)
    {
        reserveForInsert();
        ++stats_.lookups;
        const size_t mask = ctrl_.size() - 1;
        size_t i = mixHash(key) & mask;
        size_t tomb = kNoSlot;
        for (;;) {
            ++stats_.probe_steps;
            const uint8_t c = ctrl_[i];
            if (c == kEmpty) {
                const size_t slot = tomb != kNoSlot ? tomb : i;
                ctrl_[slot] = kFull;
                keys_[slot] = key;
                if (tomb == kNoSlot)
                    ++used_;
                ++size_;
                return vals_[slot];
            }
            if (c == kTomb) {
                if (tomb == kNoSlot)
                    tomb = i;
            } else if (keys_[i] == key) {
                return vals_[i];
            }
            i = (i + 1) & mask;
        }
    }

    /** Pointer to the value for @p key, or nullptr. */
    Value *
    find(uint64_t key)
    {
        return const_cast<Value *>(
            static_cast<const FlatMap *>(this)->find(key));
    }

    const Value *
    find(uint64_t key) const
    {
        if (ctrl_.empty())
            return nullptr;
        ++stats_.lookups;
        const size_t mask = ctrl_.size() - 1;
        size_t i = mixHash(key) & mask;
        for (;;) {
            ++stats_.probe_steps;
            const uint8_t c = ctrl_[i];
            if (c == kEmpty)
                return nullptr;
            if (c == kFull && keys_[i] == key)
                return &vals_[i];
            i = (i + 1) & mask;
        }
    }

    /** Remove @p key; returns whether it was present. */
    bool
    erase(uint64_t key)
    {
        if (ctrl_.empty())
            return false;
        ++stats_.lookups;
        const size_t mask = ctrl_.size() - 1;
        size_t i = mixHash(key) & mask;
        for (;;) {
            ++stats_.probe_steps;
            const uint8_t c = ctrl_[i];
            if (c == kEmpty)
                return false;
            if (c == kFull && keys_[i] == key) {
                ctrl_[i] = kTomb;
                vals_[i] = Value(); // release any owned resources
                --size_;
                return true;
            }
            i = (i + 1) & mask;
        }
    }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    size_t capacity() const { return ctrl_.size(); }

    void
    clear()
    {
        ctrl_.clear();
        keys_.clear();
        vals_.clear();
        size_ = used_ = 0;
    }

    /** Visit every (key, value) pair; order is not meaningful. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (size_t i = 0; i < ctrl_.size(); ++i) {
            if (ctrl_[i] == kFull)
                fn(keys_[i], vals_[i]);
        }
    }

    const FlatMapStats &probeStats() const { return stats_; }

  private:
    static constexpr uint8_t kEmpty = 0;
    static constexpr uint8_t kFull = 1;
    static constexpr uint8_t kTomb = 2;
    static constexpr size_t kNoSlot = ~size_t{0};
    static constexpr size_t kInitialCapacity = 16;

    /** splitmix64 finalizer: full-avalanche mix of the raw key. */
    static uint64_t
    mixHash(uint64_t x)
    {
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    }

    /** Keep load (live + tombstones) under 7/8 before an insert. */
    void
    reserveForInsert()
    {
        if (ctrl_.empty()) {
            rehash(kInitialCapacity);
            return;
        }
        if ((used_ + 1) * 8 >= ctrl_.size() * 7) {
            // Grow only when live entries dominate; otherwise the same
            // capacity flushes accumulated tombstones.
            rehash(size_ * 8 >= ctrl_.size() * 3 ? ctrl_.size() * 2
                                                 : ctrl_.size());
        }
    }

    void
    rehash(size_t new_cap)
    {
        ++stats_.rehashes;
        std::vector<uint8_t> old_ctrl = std::move(ctrl_);
        std::vector<uint64_t> old_keys = std::move(keys_);
        std::vector<Value> old_vals = std::move(vals_);
        ctrl_.assign(new_cap, kEmpty);
        keys_.assign(new_cap, 0);
        vals_.clear();
        vals_.resize(new_cap);
        size_ = used_ = 0;
        const size_t mask = new_cap - 1;
        for (size_t i = 0; i < old_ctrl.size(); ++i) {
            if (old_ctrl[i] != kFull)
                continue;
            size_t j = mixHash(old_keys[i]) & mask;
            while (ctrl_[j] == kFull)
                j = (j + 1) & mask;
            ctrl_[j] = kFull;
            keys_[j] = old_keys[i];
            vals_[j] = std::move(old_vals[i]);
            ++size_;
            ++used_;
        }
    }

    std::vector<uint8_t> ctrl_;
    std::vector<uint64_t> keys_;
    std::vector<Value> vals_;
    size_t size_ = 0; ///< live entries
    size_t used_ = 0; ///< live entries + tombstones
    mutable FlatMapStats stats_;
};

} // namespace prorace

#endif // PRORACE_SUPPORT_FLAT_MAP_HH

/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Everything stochastic in ProRace (scheduler quanta, the randomized first
 * PEBS period, workload data) draws from an explicitly seeded Rng so that
 * every experiment is reproducible and trials are varied by seed alone.
 */

#ifndef PRORACE_SUPPORT_RNG_HH
#define PRORACE_SUPPORT_RNG_HH

#include <cstdint>

namespace prorace {

/**
 * A small, fast, deterministic PRNG (xoshiro256** seeded via splitmix64).
 *
 * Not cryptographic; plenty for simulation purposes. Copyable so derived
 * streams can be forked with fork().
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds yield equal streams. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform value in [0, bound) for bound >= 1. */
    uint64_t below(uint64_t bound);

    /** Uniform value in [lo, hi] inclusive; requires lo <= hi. */
    uint64_t range(uint64_t lo, uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

    /**
     * Fork an independent child stream. The child is seeded from this
     * stream's output, so forking advances this stream by one draw.
     */
    Rng fork();

  private:
    uint64_t s_[4];
};

} // namespace prorace

#endif // PRORACE_SUPPORT_RNG_HH

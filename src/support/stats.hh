/**
 * @file
 * Small statistics helpers used by the evaluation harnesses.
 */

#ifndef PRORACE_SUPPORT_STATS_HH
#define PRORACE_SUPPORT_STATS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace prorace {

/** Arithmetic mean of a sample; 0 for an empty sample. */
double mean(const std::vector<double> &xs);

/**
 * Geometric mean of a sample of positive values; 0 for an empty sample.
 * The paper reports geometric means for its overhead figures.
 */
double geomean(const std::vector<double> &xs);

/** Population standard deviation; 0 for fewer than two points. */
double stddev(const std::vector<double> &xs);

/** Minimum of a non-empty sample. */
double minOf(const std::vector<double> &xs);

/** Maximum of a non-empty sample. */
double maxOf(const std::vector<double> &xs);

/**
 * Running accumulator for a stream of observations.
 *
 * Collects count/sum/min/max without storing the stream.
 */
class RunningStat
{
  public:
    /** Fold one observation into the accumulator. */
    void add(double x);

    /** Fold another accumulator in (per-worker counter merging). */
    void merge(const RunningStat &other);

    /** Number of observations so far. */
    size_t count() const { return count_; }

    /** Sum of observations. */
    double sum() const { return sum_; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** Smallest observation; 0 when empty. */
    double min() const;

    /** Largest observation; 0 when empty. */
    double max() const;

  private:
    size_t count_ = 0;
    double sum_ = 0;
    double min_ = 0;
    double max_ = 0;
};

/**
 * Render a ratio as the paper does: percentages below 2x
 * ("34%"), multipliers above ("2.85x").
 */
std::string formatOverhead(double ratio);

/** Fixed-precision helper, e.g. formatDouble(1.2345, 2) == "1.23". */
std::string formatDouble(double value, int precision);

} // namespace prorace

#endif // PRORACE_SUPPORT_STATS_HH

#include "support/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/log.hh"

namespace prorace {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0;
    double sum = 0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0;
    double log_sum = 0;
    for (double x : xs) {
        PRORACE_ASSERT(x > 0, "geomean requires positive values, got ", x);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0;
    const double m = mean(xs);
    double acc = 0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size()));
}

double
minOf(const std::vector<double> &xs)
{
    PRORACE_ASSERT(!xs.empty(), "minOf on empty sample");
    return *std::min_element(xs.begin(), xs.end());
}

double
maxOf(const std::vector<double> &xs)
{
    PRORACE_ASSERT(!xs.empty(), "maxOf on empty sample");
    return *std::max_element(xs.begin(), xs.end());
}

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    sum_ += x;
    ++count_;
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
    count_ += other.count_;
}

double
RunningStat::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0;
}

double
RunningStat::min() const
{
    return min_;
}

double
RunningStat::max() const
{
    return max_;
}

std::string
formatOverhead(double ratio)
{
    char buf[32];
    if (ratio < 1.0) {
        std::snprintf(buf, sizeof(buf), "%.1f%%", ratio * 100.0);
    } else {
        std::snprintf(buf, sizeof(buf), "%.2fx", ratio + 1.0);
    }
    return buf;
}

std::string
formatDouble(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

} // namespace prorace

/**
 * @file
 * Steady-clock stopwatch for pipeline cost accounting.
 *
 * Every offline-phase timer (the Fig 12 decode/reconstruct/detect
 * breakdown, executor task latencies) goes through this type so the
 * measurements are monotonic by construction — std::chrono::steady_clock
 * never jumps under NTP slew or manual clock adjustments, which
 * wall-clock timers (system_clock, gettimeofday) do.
 */

#ifndef PRORACE_SUPPORT_TIMER_HH
#define PRORACE_SUPPORT_TIMER_HH

#include <chrono>

namespace prorace {

class Stopwatch
{
  public:
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}

    /** Seconds elapsed since construction or the last restart(). */
    double
    seconds() const
    {
        const auto now = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(now - start_).count();
    }

    /** Reset the origin to now. */
    void restart() { start_ = std::chrono::steady_clock::now(); }

    /** seconds() then restart() — for phase-to-phase accounting. */
    double
    lap()
    {
        const double s = seconds();
        restart();
        return s;
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace prorace

#endif // PRORACE_SUPPORT_TIMER_HH

/**
 * @file
 * Bit-granular writer/reader used by the PT packet codec.
 *
 * Intel PT compresses conditional-branch outcomes into TNT packets of
 * single bits; our encoder needs a compact bit-level stream with byte
 * framing for multi-bit fields (packet headers, addresses).
 */

#ifndef PRORACE_SUPPORT_BITSTREAM_HH
#define PRORACE_SUPPORT_BITSTREAM_HH

#include <cstdint>
#include <vector>

namespace prorace {

/** Append-only bit stream writer (LSB-first within each byte). */
class BitWriter
{
  public:
    /** Append a single bit. */
    void putBit(bool bit);

    /** Append the low @p nbits bits of @p value, LSB first; nbits <= 64. */
    void putBits(uint64_t value, unsigned nbits);

    /** Append a whole byte (8 bits). */
    void putByte(uint8_t byte) { putBits(byte, 8); }

    /** Append a 64-bit little-endian word. */
    void putU64(uint64_t value) { putBits(value, 64); }

    /** Number of bits written so far. */
    uint64_t bitCount() const { return bit_count_; }

    /** Number of bytes the stream occupies (rounded up). */
    uint64_t byteCount() const { return (bit_count_ + 7) / 8; }

    /** The backing buffer; the final byte may be partially filled. */
    const std::vector<uint8_t> &bytes() const { return bytes_; }

    /** Reset to an empty stream. */
    void clear();

  private:
    std::vector<uint8_t> bytes_;
    uint64_t bit_count_ = 0;
};

/** Sequential reader over a bit stream produced by BitWriter. */
class BitReader
{
  public:
    /** View over @p bytes holding @p bit_count valid bits. */
    BitReader(const std::vector<uint8_t> &bytes, uint64_t bit_count);

    /** Read one bit; it is an error to read past the end. */
    bool getBit();

    /** Read @p nbits bits LSB-first; nbits <= 64. */
    uint64_t getBits(unsigned nbits);

    /**
     * Non-asserting read for untrusted streams: stores one bit in
     * @p bit and returns true, or returns false (position unchanged)
     * when the stream is exhausted.
     */
    bool tryGetBit(bool &bit);

    /**
     * Non-asserting multi-bit read: false (position unchanged) when
     * fewer than @p nbits bits remain — the caller decides whether a
     * short stream is corruption or a clean end.
     */
    bool tryGetBits(uint64_t &value, unsigned nbits);

    /** Current bit position from the start of the stream. */
    uint64_t position() const { return pos_; }

    /** Jump to absolute bit position @p bitpos (clamped to the end). */
    void seek(uint64_t bitpos)
    {
        pos_ = bitpos < bit_count_ ? bitpos : bit_count_;
    }

    /** Read a whole byte. */
    uint8_t getByte() { return static_cast<uint8_t>(getBits(8)); }

    /** Read a 64-bit little-endian word. */
    uint64_t getU64() { return getBits(64); }

    /** Bits remaining. */
    uint64_t remaining() const { return bit_count_ - pos_; }

    /** True when all bits have been consumed. */
    bool atEnd() const { return pos_ >= bit_count_; }

  private:
    const std::vector<uint8_t> &bytes_;
    uint64_t bit_count_;
    uint64_t pos_ = 0;
};

} // namespace prorace

#endif // PRORACE_SUPPORT_BITSTREAM_HH

/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) used to checksum
 * trace-file segments.
 *
 * A per-segment CRC is what lets the reader distinguish "segment
 * damaged, skip it" from "segment fine, trust its payload"; the choice
 * of CRC-32 matches what perf and other trace tooling use for the same
 * job. Table-driven, one table built on first use.
 */

#ifndef PRORACE_SUPPORT_CRC32_HH
#define PRORACE_SUPPORT_CRC32_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace prorace {

namespace detail {

inline const std::array<uint32_t, 256> &
crc32Table()
{
    static const std::array<uint32_t, 256> table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int bit = 0; bit < 8; ++bit)
                c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
            t[i] = c;
        }
        return t;
    }();
    return table;
}

} // namespace detail

/**
 * CRC-32 of @p size bytes at @p data, continuing from @p seed (pass the
 * previous return value to checksum discontiguous pieces as one
 * stream; the default starts a fresh checksum).
 */
inline uint32_t
crc32(const void *data, size_t size, uint32_t seed = 0)
{
    const auto &table = detail::crc32Table();
    const uint8_t *bytes = static_cast<const uint8_t *>(data);
    uint32_t c = seed ^ 0xFFFFFFFFu;
    for (size_t i = 0; i < size; ++i)
        c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

/**
 * CRC-32 of a whole byte buffer. Convenience overload so every segment
 * checksummer goes through this one implementation instead of re-rolling
 * the data/size plumbing.
 */
inline uint32_t
crc32(const std::vector<uint8_t> &bytes, uint32_t seed = 0)
{
    return crc32(bytes.data(), bytes.size(), seed);
}

} // namespace prorace

#endif // PRORACE_SUPPORT_CRC32_HH

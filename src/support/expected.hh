/**
 * @file
 * Minimal Result<T, E> for fallible operations that must not abort.
 *
 * The offline pipeline ingests traces produced on machines we do not
 * control; a flipped byte in the input must surface as a value the
 * caller can inspect, not as a PRORACE_FATAL that kills the whole
 * analysis. This is the `std::expected` shape reduced to what the
 * trace-ingestion layer needs: construction from either side, ok(),
 * and accessors that assert on misuse.
 */

#ifndef PRORACE_SUPPORT_EXPECTED_HH
#define PRORACE_SUPPORT_EXPECTED_HH

#include <utility>
#include <variant>

#include "support/log.hh"

namespace prorace {

/**
 * Holds either a success value T or an error E. T and E must be
 * distinct types (enforced by the variant-based construction).
 */
template <typename T, typename E> class Result
{
  public:
    Result(T value) : storage_(std::in_place_index<0>, std::move(value))
    {
    }

    Result(E error) : storage_(std::in_place_index<1>, std::move(error))
    {
    }

    /** True when this holds a success value. */
    bool ok() const { return storage_.index() == 0; }

    explicit operator bool() const { return ok(); }

    /** The success value; asserts when this holds an error. */
    T &value()
    {
        PRORACE_ASSERT(ok(), "Result::value() on error result");
        return std::get<0>(storage_);
    }

    const T &value() const
    {
        PRORACE_ASSERT(ok(), "Result::value() on error result");
        return std::get<0>(storage_);
    }

    /** The error; asserts when this holds a success value. */
    E &error()
    {
        PRORACE_ASSERT(!ok(), "Result::error() on success result");
        return std::get<1>(storage_);
    }

    const E &error() const
    {
        PRORACE_ASSERT(!ok(), "Result::error() on success result");
        return std::get<1>(storage_);
    }

  private:
    std::variant<T, E> storage_;
};

} // namespace prorace

#endif // PRORACE_SUPPORT_EXPECTED_HH

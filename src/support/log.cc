#include "support/log.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace prorace {

namespace {

LogLevel g_level = LogLevel::kWarn;

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "debug";
      case LogLevel::kInfo:  return "info";
      case LogLevel::kWarn:  return "warn";
      case LogLevel::kError: return "error";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

namespace detail {

void
logMessage(LogLevel level, const std::string &msg)
{
    if (level < g_level)
        return;
    std::fprintf(stderr, "prorace: %s: %s\n", levelTag(level), msg.c_str());
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "prorace: panic: %s:%d: %s\n", file, line,
                 msg.c_str());
    // Throwing keeps panics testable; uncaught, it still terminates.
    throw std::logic_error("prorace panic: " + msg);
}

void
fatalImpl(const std::string &msg)
{
    std::fprintf(stderr, "prorace: fatal: %s\n", msg.c_str());
    throw std::runtime_error("prorace fatal: " + msg);
}

} // namespace detail

} // namespace prorace

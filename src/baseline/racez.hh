/**
 * @file
 * The RaceZ baseline (Sheng et al., ICSE 2011), as the paper models it
 * for comparison: PEBS sampling through the stock Linux driver, no PT,
 * and memory-trace reconstruction limited to the sampled instruction's
 * basic block with only trivial in-block backward propagation.
 */

#ifndef PRORACE_BASELINE_RACEZ_HH
#define PRORACE_BASELINE_RACEZ_HH

#include "core/pipeline.hh"

namespace prorace::baseline {

/**
 * RaceZ pipeline configuration.
 *
 * @param period  PEBS sampling period
 * @param seed    machine + tracing randomness seed
 */
core::PipelineConfig raceZConfig(uint64_t period, uint64_t seed);

} // namespace prorace::baseline

#endif // PRORACE_BASELINE_RACEZ_HH

#include "baseline/racez.hh"

namespace prorace::baseline {

core::PipelineConfig
raceZConfig(uint64_t period, uint64_t seed)
{
    core::PipelineConfig cfg;
    cfg.session.machine.seed = seed;
    cfg.session.run_baseline = false;
    cfg.session.tracing.pebs_period = period;
    // RaceZ rides the stock Linux PEBS driver (no randomized first
    // window, per-record kernel processing) and does not use PT.
    cfg.session.tracing.driver = driver::DriverKind::kVanilla;
    cfg.session.tracing.enable_pt = false;
    cfg.session.tracing.seed = seed ^ 0x2545f4914f6cdd1dull;
    cfg.offline.replay.mode = replay::ReplayMode::kBasicBlock;
    return cfg;
}

} // namespace prorace::baseline

/**
 * @file
 * PT hardware model: per-core control-flow trace encoder with code-region
 * filters.
 */

#ifndef PRORACE_PMU_PT_HH
#define PRORACE_PMU_PT_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "pmu/pt_packet.hh"
#include "trace/records.hh"

namespace prorace::pmu {

/**
 * Code-region filter: up to four [begin, end) instruction-index ranges,
 * matching the four address-range filter pairs of the PT hardware.
 */
class PtFilter
{
  public:
    /** Maximum ranges the hardware supports. */
    static constexpr size_t kMaxRanges = 4;

    /** A filter admitting every instruction. */
    static PtFilter all();

    /** An empty filter admits nothing; add ranges with addRange(). */
    PtFilter() = default;

    /** Add a [begin, end) range; fatal beyond four ranges. */
    void addRange(uint32_t begin, uint32_t end);

    /** True when @p index lies in some range. */
    bool contains(uint32_t index) const;

    /** True for the match-everything filter. */
    bool isAll() const { return all_; }

    const std::vector<std::pair<uint32_t, uint32_t>> &ranges() const
    {
        return ranges_;
    }

  private:
    std::vector<std::pair<uint32_t, uint32_t>> ranges_;
    bool all_ = false;
};

/** PT configuration. */
struct PtConfig {
    PtFilter filter = PtFilter::all();
    /** Emit a standalone TSC packet every this many packets. */
    uint32_t tsc_packet_period = 32;
    /**
     * Emit a PSB sync packet before a context switch once this many
     * stream bytes have accumulated since the last one. PSBs are what
     * the offline decoder scans for to re-acquire a damaged stream;
     * the first context switch of a stream always gets one.
     */
    uint32_t psb_byte_period = 4096;
};

/**
 * The PT encoder of one core. The machine reports every retired branch;
 * the encoder applies the code-region filter and emits the compressed
 * packet stream.
 */
class PtEncoder
{
  public:
    explicit PtEncoder(const PtConfig &config);

    /** A conditional branch retired at @p src. */
    void onCondBranch(uint32_t src, bool taken, uint64_t tsc);

    /** An indirect transfer retired at @p src jumping to @p target. */
    void onIndirect(uint32_t src, uint32_t target, uint64_t tsc);

    /**
     * The core switched to thread @p tid, resuming at instruction
     * index @p ip. The resume ip rides in the context packet so the
     * decoder can re-anchor a thread after a resynchronization gap.
     */
    void onContextSwitch(uint32_t tid, uint64_t tsc, uint32_t ip);

    /** Close the stream with an end packet and return it. */
    trace::PtCoreStream finish();

    /**
     * Billable bytes emitted so far, for the bandwidth cost model.
     * Excludes the robustness framing (PSB packets, context resume
     * ips, the end-marker discriminator bit): hardware PT emits PSBs
     * from a dedicated generator off the critical path, and keeping
     * them out of the per-branch cost keeps traced-run timing — and
     * therefore every downstream TSC — independent of the sync-point
     * cadence.
     */
    uint64_t bytesEmitted() const
    {
        return (writer_.bitCount() - overhead_bits_ + 7) / 8;
    }

  private:
    void maybeEmitTsc(uint64_t tsc);

    PtConfig config_;
    BitWriter writer_;
    uint32_t packets_since_tsc_ = 0;
    uint64_t last_tsc_ = 0;
    uint64_t overhead_bits_ = 0;
    uint64_t last_psb_byte_ = 0;
    bool psb_emitted_ = false;
    bool finished_ = false;
};

} // namespace prorace::pmu

#endif // PRORACE_PMU_PT_HH

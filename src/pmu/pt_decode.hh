/**
 * @file
 * Offline PT decoder: turns per-core packet streams back into exact
 * per-thread instruction paths.
 *
 * This is the "Decode & Synthesis" stage of the paper's offline pipeline.
 * The decoder statically walks the program between packets, consuming a
 * TNT bit at each conditional branch and a TIP target at each indirect
 * transfer; context packets demultiplex the per-core stream into
 * per-thread paths; TSC and context packets yield (path position, TSC)
 * anchors used later to time-align PEBS samples with path positions.
 *
 * Malformed input does not abort the decode: like a hardware PT
 * decoder, on an inconsistent packet (walker-state mismatch,
 * out-of-range target, truncation) the decoder marks a kPathGap in
 * every path fed by the stream, scans forward to the next PSB sync
 * packet, and re-anchors each thread at its next context packet's
 * resume ip. Replay already treats kPathGap like a syscall boundary
 * (registers and emulated memory invalidated), so damage degrades
 * coverage instead of poisoning reconstruction.
 */

#ifndef PRORACE_PMU_PT_DECODE_HH
#define PRORACE_PMU_PT_DECODE_HH

#include <cstdint>
#include <map>
#include <vector>

#include "asmkit/program.hh"
#include "pmu/pt.hh"
#include "trace/records.hh"

namespace prorace::pmu {

/** Marker in a decoded path standing for untraced (filtered-out) code. */
inline constexpr uint32_t kPathGap = 0xffffffffu;

/** A (path position, TSC) timing anchor. */
struct PathAnchor {
    uint64_t position = 0; ///< path index such that insns before it retired
                           ///< no later than tsc (approximately)
    uint64_t tsc = 0;
};

/** The reconstructed execution path of one thread. */
struct ThreadPath {
    uint32_t tid = 0;
    std::vector<uint32_t> insns;     ///< instruction indices / kPathGap
    std::vector<PathAnchor> anchors; ///< sorted by position
    bool complete = false;           ///< the walk reached a halt
};

/** Decoder statistics (offline-cost and loss reporting). */
struct PtDecodeStats {
    uint64_t packets = 0;
    uint64_t path_entries = 0;
    uint64_t psb_packets = 0;    ///< sync points seen
    uint64_t resyncs = 0;        ///< recoveries from malformed input
    uint64_t bits_skipped = 0;   ///< bits scanned over while resyncing
    uint64_t dropped_packets = 0;///< packets with no walker to apply to
    uint64_t truncated_streams = 0; ///< streams ending mid-packet

    /** Accumulate @p other (sharded decode merges per-core stats). */
    void
    merge(const PtDecodeStats &other)
    {
        packets += other.packets;
        path_entries += other.path_entries;
        psb_packets += other.psb_packets;
        resyncs += other.resyncs;
        bits_skipped += other.bits_skipped;
        dropped_packets += other.dropped_packets;
        truncated_streams += other.truncated_streams;
    }
};

/**
 * Decode every core stream of @p run against @p program.
 *
 * @param program   the traced binary
 * @param filter    the PT filter the encoder ran with
 * @param run       trace with PT streams and thread entry metadata
 * @param stats     optional output statistics
 * @return per-tid reconstructed paths
 */
std::map<uint32_t, ThreadPath>
decodePt(const asmkit::Program &program, const PtFilter &filter,
         const trace::RunTrace &run, PtDecodeStats *stats = nullptr);

/**
 * Decode a single core's packet stream in isolation (sharded decode).
 *
 * The machine pins each thread to one core, so every thread's packets
 * live in exactly one stream and the per-core decodes are independent:
 * decoding all streams and merging the per-tid maps yields the same
 * paths as the serial decodePt(). The parallel analyzer runs one such
 * task per stream. Callers must verify on merge that no tid appears in
 * two shards (a migrating-thread trace) and fall back to the serial
 * decoder when one does.
 *
 * @param core index into run.pt
 */
std::map<uint32_t, ThreadPath>
decodePtStream(const asmkit::Program &program, const PtFilter &filter,
               const trace::RunTrace &run, size_t core,
               PtDecodeStats *stats = nullptr);

} // namespace prorace::pmu

#endif // PRORACE_PMU_PT_DECODE_HH

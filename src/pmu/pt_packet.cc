#include "pmu/pt_packet.hh"

#include "support/log.hh"

namespace prorace::pmu {

void
writePtPacket(BitWriter &w, const PtPacket &p)
{
    switch (p.kind) {
      case PtPacketKind::kTnt:
        w.putBit(false);
        w.putBit(p.taken);
        break;
      case PtPacketKind::kTip:
        w.putBit(true);
        w.putBit(false);
        w.putBit(p.short_target);
        w.putBits(p.target, p.short_target ? 16 : 32);
        break;
      case PtPacketKind::kPge:
        w.putBit(true);
        w.putBit(true);
        w.putBit(false);
        w.putBit(p.short_target);
        w.putBits(p.target, p.short_target ? 16 : 32);
        break;
      case PtPacketKind::kContext:
        w.putBit(true);
        w.putBit(true);
        w.putBit(true);
        w.putBit(false);
        w.putBits(p.tid, 32);
        w.putU64(p.tsc);
        w.putBits(p.ip, 32);
        break;
      case PtPacketKind::kTsc:
        w.putBit(true);
        w.putBit(true);
        w.putBit(true);
        w.putBit(true);
        w.putBit(false);
        w.putBit(p.tsc_is_delta);
        w.putBits(p.tsc, p.tsc_is_delta ? 32 : 64);
        break;
      case PtPacketKind::kEnd:
        for (int i = 0; i < 5; ++i)
            w.putBit(true);
        w.putBit(false);
        break;
      case PtPacketKind::kPsb:
        for (int i = 0; i < 6; ++i)
            w.putBit(true);
        w.putBits(kPsbMagic, 32);
        break;
    }
}

bool
tryReadPtPacket(BitReader &r, PtPacket &p)
{
    bool bit = false;
    if (!r.tryGetBit(bit))
        return false;
    if (!bit) {
        p.kind = PtPacketKind::kTnt;
        return r.tryGetBit(p.taken);
    }
    if (!r.tryGetBit(bit))
        return false;
    if (!bit) {
        p.kind = PtPacketKind::kTip;
        if (!r.tryGetBit(p.short_target))
            return false;
        uint64_t target = 0;
        if (!r.tryGetBits(target, p.short_target ? 16 : 32))
            return false;
        p.target = static_cast<uint32_t>(target);
        return true;
    }
    if (!r.tryGetBit(bit))
        return false;
    if (!bit) {
        p.kind = PtPacketKind::kPge;
        if (!r.tryGetBit(p.short_target))
            return false;
        uint64_t target = 0;
        if (!r.tryGetBits(target, p.short_target ? 16 : 32))
            return false;
        p.target = static_cast<uint32_t>(target);
        return true;
    }
    if (!r.tryGetBit(bit))
        return false;
    if (!bit) {
        p.kind = PtPacketKind::kContext;
        uint64_t tid = 0, ip = 0;
        if (!r.tryGetBits(tid, 32) || !r.tryGetBits(p.tsc, 64) ||
            !r.tryGetBits(ip, 32)) {
            return false;
        }
        p.tid = static_cast<uint32_t>(tid);
        p.ip = static_cast<uint32_t>(ip);
        return true;
    }
    if (!r.tryGetBit(bit))
        return false;
    if (!bit) {
        p.kind = PtPacketKind::kTsc;
        if (!r.tryGetBit(p.tsc_is_delta))
            return false;
        return r.tryGetBits(p.tsc, p.tsc_is_delta ? 32 : 64);
    }
    if (!r.tryGetBit(bit))
        return false;
    if (!bit) {
        p.kind = PtPacketKind::kEnd;
        return true;
    }
    p.kind = PtPacketKind::kPsb;
    uint64_t magic = 0;
    if (!r.tryGetBits(magic, 32))
        return false;
    p.target = static_cast<uint32_t>(magic);
    return true;
}

PtPacket
readPtPacket(BitReader &r)
{
    PtPacket p;
    if (!tryReadPtPacket(r, p))
        PRORACE_PANIC("PT stream truncated mid-packet");
    return p;
}

bool
scanToPsb(BitReader &r)
{
    // The PSB pattern is 6 header one-bits followed by the 32-bit
    // magic, LSB first — 38 bits that the encoder never produces as
    // the *start* of any other packet.
    while (r.remaining() >= 38) {
        const uint64_t start = r.position();
        uint64_t header = 0, magic = 0;
        if (r.tryGetBits(header, 6) && header == 0x3f &&
            r.tryGetBits(magic, 32) && magic == kPsbMagic) {
            r.seek(start);
            return true;
        }
        r.seek(start + 1);
    }
    r.seek(r.position() + r.remaining());
    return false;
}

} // namespace prorace::pmu

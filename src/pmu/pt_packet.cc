#include "pmu/pt_packet.hh"

#include "support/log.hh"

namespace prorace::pmu {

void
writePtPacket(BitWriter &w, const PtPacket &p)
{
    switch (p.kind) {
      case PtPacketKind::kTnt:
        w.putBit(false);
        w.putBit(p.taken);
        break;
      case PtPacketKind::kTip:
        w.putBit(true);
        w.putBit(false);
        w.putBit(p.short_target);
        w.putBits(p.target, p.short_target ? 16 : 32);
        break;
      case PtPacketKind::kPge:
        w.putBit(true);
        w.putBit(true);
        w.putBit(false);
        w.putBit(p.short_target);
        w.putBits(p.target, p.short_target ? 16 : 32);
        break;
      case PtPacketKind::kContext:
        w.putBit(true);
        w.putBit(true);
        w.putBit(true);
        w.putBit(false);
        w.putBits(p.tid, 32);
        w.putU64(p.tsc);
        break;
      case PtPacketKind::kTsc:
        w.putBit(true);
        w.putBit(true);
        w.putBit(true);
        w.putBit(true);
        w.putBit(false);
        w.putBit(p.tsc_is_delta);
        w.putBits(p.tsc, p.tsc_is_delta ? 32 : 64);
        break;
      case PtPacketKind::kEnd:
        for (int i = 0; i < 5; ++i)
            w.putBit(true);
        break;
    }
}

PtPacket
readPtPacket(BitReader &r)
{
    PtPacket p;
    if (!r.getBit()) {
        p.kind = PtPacketKind::kTnt;
        p.taken = r.getBit();
        return p;
    }
    if (!r.getBit()) {
        p.kind = PtPacketKind::kTip;
        p.short_target = r.getBit();
        p.target = static_cast<uint32_t>(r.getBits(p.short_target ? 16 : 32));
        return p;
    }
    if (!r.getBit()) {
        p.kind = PtPacketKind::kPge;
        p.short_target = r.getBit();
        p.target = static_cast<uint32_t>(r.getBits(p.short_target ? 16 : 32));
        return p;
    }
    if (!r.getBit()) {
        p.kind = PtPacketKind::kContext;
        p.tid = static_cast<uint32_t>(r.getBits(32));
        p.tsc = r.getU64();
        return p;
    }
    if (!r.getBit()) {
        p.kind = PtPacketKind::kTsc;
        p.tsc_is_delta = r.getBit();
        p.tsc = r.getBits(p.tsc_is_delta ? 32 : 64);
        return p;
    }
    p.kind = PtPacketKind::kEnd;
    return p;
}

} // namespace prorace::pmu

#include "pmu/pt.hh"

#include "support/log.hh"

namespace prorace::pmu {

PtFilter
PtFilter::all()
{
    PtFilter f;
    f.all_ = true;
    return f;
}

void
PtFilter::addRange(uint32_t begin, uint32_t end)
{
    PRORACE_ASSERT(begin <= end, "inverted PT filter range");
    if (ranges_.size() >= kMaxRanges) {
        PRORACE_FATAL("PT hardware supports at most ", kMaxRanges,
                      " code-region filters");
    }
    ranges_.emplace_back(begin, end);
}

bool
PtFilter::contains(uint32_t index) const
{
    if (all_)
        return true;
    for (const auto &[begin, end] : ranges_) {
        if (index >= begin && index < end)
            return true;
    }
    return false;
}

PtEncoder::PtEncoder(const PtConfig &config) : config_(config)
{
}

void
PtEncoder::maybeEmitTsc(uint64_t tsc)
{
    ++packets_since_tsc_;
    if (packets_since_tsc_ >= config_.tsc_packet_period) {
        packets_since_tsc_ = 0;
        PtPacket p;
        p.kind = PtPacketKind::kTsc;
        const uint64_t delta = tsc - last_tsc_;
        if (delta <= 0xffffffffull) {
            p.tsc_is_delta = true;
            p.tsc = delta;
        } else {
            p.tsc = tsc;
        }
        writePtPacket(writer_, p);
        last_tsc_ = tsc;
    }
}

void
PtEncoder::onCondBranch(uint32_t src, bool taken, uint64_t tsc)
{
    if (!config_.filter.contains(src))
        return;
    PtPacket p;
    p.kind = PtPacketKind::kTnt;
    p.taken = taken;
    writePtPacket(writer_, p);
    maybeEmitTsc(tsc);
}

void
PtEncoder::onIndirect(uint32_t src, uint32_t target, uint64_t tsc)
{
    const bool src_in = config_.filter.contains(src);
    const bool dst_in = config_.filter.contains(target);
    if (src_in) {
        PtPacket p;
        p.kind = PtPacketKind::kTip;
        p.short_target = target <= 0xffffu;
        p.target = target;
        writePtPacket(writer_, p);
        maybeEmitTsc(tsc);
    } else if (dst_in) {
        // Trace generation re-enables on entry into a filtered region.
        PtPacket p;
        p.kind = PtPacketKind::kPge;
        p.short_target = target <= 0xffffu;
        p.target = target;
        writePtPacket(writer_, p);
        maybeEmitTsc(tsc);
    }
}

void
PtEncoder::onContextSwitch(uint32_t tid, uint64_t tsc, uint32_t ip)
{
    // A PSB ahead of the context packet gives the offline decoder a
    // scannable sync point followed immediately by a full re-anchor
    // (tid + tsc + resume ip). Emitted on the first switch and then
    // every psb_byte_period stream bytes.
    if (!psb_emitted_ ||
        writer_.byteCount() - last_psb_byte_ >= config_.psb_byte_period) {
        PtPacket psb;
        psb.kind = PtPacketKind::kPsb;
        writePtPacket(writer_, psb);
        overhead_bits_ += 38; // 6 header bits + 32 magic bits
        psb_emitted_ = true;
        last_psb_byte_ = writer_.byteCount();
    }
    PtPacket p;
    p.kind = PtPacketKind::kContext;
    p.tid = tid;
    p.tsc = tsc;
    p.ip = ip;
    writePtPacket(writer_, p);
    overhead_bits_ += 32; // the resume-ip field is robustness framing
    packets_since_tsc_ = 0;
    last_tsc_ = tsc;
}

trace::PtCoreStream
PtEncoder::finish()
{
    PRORACE_ASSERT(!finished_, "PT stream finished twice");
    finished_ = true;
    PtPacket end;
    end.kind = PtPacketKind::kEnd;
    writePtPacket(writer_, end);
    overhead_bits_ += 1; // the end marker's discriminator bit
    trace::PtCoreStream s;
    s.bytes = writer_.bytes();
    s.bit_count = writer_.bitCount();
    return s;
}

} // namespace prorace::pmu

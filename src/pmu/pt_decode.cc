#include "pmu/pt_decode.hh"

#include <algorithm>

#include "support/log.hh"

namespace prorace::pmu {

using isa::Insn;
using isa::Op;

namespace {

/** Safety bound against malformed streams producing unbounded paths. */
constexpr uint64_t kMaxPathEntries = 200'000'000;

/** Per-thread walk state. */
struct Walker {
    enum class Need : uint8_t {
        kAdvance, ///< can walk statically
        kTnt,     ///< parked at a conditional branch
        kTip,     ///< parked at an indirect transfer
        kPge,     ///< parked outside the filtered region
        kDone,    ///< reached halt
    };

    uint32_t ip = 0;
    Need need = Need::kAdvance;
    ThreadPath path;
    /**
     * One past the last path position *proven* retired by the packets
     * applied so far. The walker speculatively walks straight-line code
     * ahead of the packets, so timing anchors must use this bound, not
     * the walked-ahead path length — otherwise instructions executed
     * after a blocking call could be timestamped before it.
     */
    uint64_t proven = 0;
    /**
     * Set when the stream feeding this walker lost synchronization:
     * the speculative suffix has been rolled back to `proven` and a
     * kPathGap appended; packets are refused until a context packet
     * re-anchors the walker at its resume ip.
     */
    bool desynced = false;
};

/**
 * Walk statically from the walker's ip, appending path entries, until a
 * packet is required or the thread halts.
 */
void
advance(Walker &w, const asmkit::Program &program, const PtFilter &filter,
        uint64_t &total_entries)
{
    PRORACE_ASSERT(w.need == Walker::Need::kAdvance,
                   "advance() on a parked walker");
    for (;;) {
        if (!filter.contains(w.ip)) {
            // Execution left the traced region; a PGE packet will tell us
            // where it comes back.
            w.path.insns.push_back(kPathGap);
            ++total_entries;
            w.need = Walker::Need::kPge;
            return;
        }
        const Insn &insn = program.insnAt(w.ip);
        w.path.insns.push_back(w.ip);
        if (++total_entries > kMaxPathEntries)
            PRORACE_FATAL("PT decode exceeded the path-length bound");

        switch (insn.op) {
          case Op::kHalt:
            w.need = Walker::Need::kDone;
            w.path.complete = true;
            return;
          case Op::kJcc:
            w.need = Walker::Need::kTnt;
            return;
          case Op::kJmp:
          case Op::kCall:
            w.ip = insn.target;
            break;
          case Op::kJmpInd:
          case Op::kCallInd:
          case Op::kRet:
            w.need = Walker::Need::kTip;
            return;
          default:
            ++w.ip;
            break;
        }
    }
}

/**
 * Roll @p w back to its proven prefix and mark the loss with a
 * kPathGap. The speculative walk-ahead past `proven` was predicated on
 * packets that are now untrusted, so it is discarded rather than kept
 * as plausible-but-unproven path.
 */
void
markDesynced(Walker &w, uint64_t &total_entries)
{
    if (w.desynced || w.need == Walker::Need::kDone)
        return;
    w.path.insns.resize(w.proven);
    w.path.insns.push_back(kPathGap);
    ++total_entries;
    w.desynced = true;
}

/** Apply one stream's packets to a (possibly shared) walker set. */
void
decodeStreamInto(const asmkit::Program &program, const PtFilter &filter,
                 const trace::PtCoreStream &stream,
                 const std::map<uint32_t, uint32_t> &entries,
                 std::map<uint32_t, Walker> &walkers,
                 PtDecodeStats &stats)
{
    if (stream.bit_count == 0)
        return;
    BitReader reader(stream.bytes, stream.bit_count);
    Walker *current = nullptr;
    uint64_t stream_tsc = 0;
    // Walkers this stream has fed: the blast radius of a
    // desynchronization. (Threads are core-pinned, so walkers never
    // span streams.)
    std::vector<Walker *> stream_walkers;

    // Lose synchronization: gap every walker this stream feeds, then
    // scan forward for the next PSB. Returns false when the rest of
    // the stream holds no sync point and decoding must stop.
    auto resync = [&]() -> bool {
        for (Walker *w : stream_walkers)
            markDesynced(*w, stats.path_entries);
        current = nullptr;
        ++stats.resyncs;
        const uint64_t from = reader.position();
        const bool found = scanToPsb(reader);
        stats.bits_skipped += reader.position() - from;
        return found;
    };

    for (;;) {
        PtPacket p;
        if (!tryReadPtPacket(reader, p)) {
            // Out of bits without a clean end packet: the stream was
            // clipped (buffer wrap / salvaged segment); everything it
            // was still proving ends here.
            for (Walker *w : stream_walkers)
                markDesynced(*w, stats.path_entries);
            ++stats.truncated_streams;
            break;
        }
        ++stats.packets;
        if (p.kind == PtPacketKind::kEnd)
            break;

        switch (p.kind) {
          case PtPacketKind::kPsb: {
            ++stats.psb_packets;
            if (p.target != kPsbMagic && !resync())
                return;
            break;
          }
          case PtPacketKind::kContext: {
            auto [it, inserted] = walkers.try_emplace(p.tid);
            Walker &w = it->second;
            if (inserted) {
                auto entry = entries.find(p.tid);
                uint32_t start_ip;
                if (entry != entries.end()) {
                    start_ip = entry->second;
                } else if (p.ip < program.size()) {
                    // Thread metadata lost with its trace segment; the
                    // context packet's resume ip is the fallback
                    // anchor.
                    start_ip = p.ip;
                } else {
                    walkers.erase(it);
                    ++stats.dropped_packets;
                    current = nullptr;
                    break;
                }
                w.ip = start_ip;
                w.path.tid = p.tid;
                advance(w, program, filter, stats.path_entries);
            } else if (w.desynced) {
                // Re-anchor after a gap at the packet's resume ip, the
                // same recovery replay applies at syscall boundaries.
                if (p.ip >= program.size() ||
                    w.need == Walker::Need::kDone) {
                    ++stats.dropped_packets;
                    current = nullptr;
                    break;
                }
                w.ip = p.ip;
                w.need = Walker::Need::kAdvance;
                w.proven = w.path.insns.size();
                w.desynced = false;
                advance(w, program, filter, stats.path_entries);
            }
            w.path.anchors.push_back({w.proven, p.tsc});
            stream_tsc = p.tsc;
            current = &w;
            if (std::find(stream_walkers.begin(), stream_walkers.end(),
                          &w) == stream_walkers.end()) {
                stream_walkers.push_back(&w);
            }
            break;
          }
          case PtPacketKind::kTsc: {
            stream_tsc = p.tsc_is_delta ? stream_tsc + p.tsc : p.tsc;
            if (current) {
                current->path.anchors.push_back(
                    {current->proven, stream_tsc});
            }
            break;
          }
          case PtPacketKind::kTnt: {
            if (!current) {
                ++stats.dropped_packets;
                break;
            }
            Walker &w = *current;
            if (w.need != Walker::Need::kTnt) {
                if (!resync())
                    return;
                break;
            }
            const Insn &insn = program.insnAt(w.ip);
            w.ip = p.taken ? insn.target : w.ip + 1;
            w.need = Walker::Need::kAdvance;
            w.proven = w.path.insns.size(); // the branch retired
            advance(w, program, filter, stats.path_entries);
            break;
          }
          case PtPacketKind::kTip: {
            if (!current) {
                ++stats.dropped_packets;
                break;
            }
            Walker &w = *current;
            if (w.need != Walker::Need::kTip ||
                p.target >= program.size()) {
                if (!resync())
                    return;
                break;
            }
            w.ip = p.target;
            w.need = Walker::Need::kAdvance;
            w.proven = w.path.insns.size();
            advance(w, program, filter, stats.path_entries);
            break;
          }
          case PtPacketKind::kPge: {
            if (!current) {
                ++stats.dropped_packets;
                break;
            }
            Walker &w = *current;
            if (w.need != Walker::Need::kPge ||
                p.target >= program.size()) {
                if (!resync())
                    return;
                break;
            }
            w.ip = p.target;
            w.need = Walker::Need::kAdvance;
            w.proven = w.path.insns.size();
            advance(w, program, filter, stats.path_entries);
            break;
          }
          case PtPacketKind::kEnd:
            break;
        }
    }
}

std::map<uint32_t, uint32_t>
entryMap(const trace::RunTrace &run)
{
    std::map<uint32_t, uint32_t> entries;
    for (const trace::ThreadMeta &t : run.meta.threads)
        entries[t.tid] = t.entry_index;
    return entries;
}

} // namespace

std::map<uint32_t, ThreadPath>
decodePt(const asmkit::Program &program, const PtFilter &filter,
         const trace::RunTrace &run, PtDecodeStats *stats)
{
    const std::map<uint32_t, uint32_t> entries = entryMap(run);
    std::map<uint32_t, Walker> walkers;
    PtDecodeStats local_stats;

    for (const trace::PtCoreStream &stream : run.pt) {
        decodeStreamInto(program, filter, stream, entries, walkers,
                         local_stats);
    }

    std::map<uint32_t, ThreadPath> paths;
    for (auto &[tid, w] : walkers)
        paths.emplace(tid, std::move(w.path));

    if (stats)
        *stats = local_stats;
    return paths;
}

std::map<uint32_t, ThreadPath>
decodePtStream(const asmkit::Program &program, const PtFilter &filter,
               const trace::RunTrace &run, size_t core,
               PtDecodeStats *stats)
{
    PRORACE_ASSERT(core < run.pt.size(), "PT stream index out of range");
    const std::map<uint32_t, uint32_t> entries = entryMap(run);
    std::map<uint32_t, Walker> walkers;
    PtDecodeStats local_stats;
    decodeStreamInto(program, filter, run.pt[core], entries, walkers,
                     local_stats);

    std::map<uint32_t, ThreadPath> paths;
    for (auto &[tid, w] : walkers)
        paths.emplace(tid, std::move(w.path));

    if (stats)
        *stats = local_stats;
    return paths;
}

} // namespace prorace::pmu

#include "pmu/pt_decode.hh"

#include "support/log.hh"

namespace prorace::pmu {

using isa::Insn;
using isa::Op;

namespace {

/** Safety bound against malformed streams producing unbounded paths. */
constexpr uint64_t kMaxPathEntries = 200'000'000;

/** Per-thread walk state. */
struct Walker {
    enum class Need : uint8_t {
        kAdvance, ///< can walk statically
        kTnt,     ///< parked at a conditional branch
        kTip,     ///< parked at an indirect transfer
        kPge,     ///< parked outside the filtered region
        kDone,    ///< reached halt
    };

    uint32_t ip = 0;
    Need need = Need::kAdvance;
    ThreadPath path;
    /**
     * One past the last path position *proven* retired by the packets
     * applied so far. The walker speculatively walks straight-line code
     * ahead of the packets, so timing anchors must use this bound, not
     * the walked-ahead path length — otherwise instructions executed
     * after a blocking call could be timestamped before it.
     */
    uint64_t proven = 0;
};

/**
 * Walk statically from the walker's ip, appending path entries, until a
 * packet is required or the thread halts.
 */
void
advance(Walker &w, const asmkit::Program &program, const PtFilter &filter,
        uint64_t &total_entries)
{
    PRORACE_ASSERT(w.need == Walker::Need::kAdvance,
                   "advance() on a parked walker");
    for (;;) {
        if (!filter.contains(w.ip)) {
            // Execution left the traced region; a PGE packet will tell us
            // where it comes back.
            w.path.insns.push_back(kPathGap);
            ++total_entries;
            w.need = Walker::Need::kPge;
            return;
        }
        const Insn &insn = program.insnAt(w.ip);
        w.path.insns.push_back(w.ip);
        if (++total_entries > kMaxPathEntries)
            PRORACE_FATAL("PT decode exceeded the path-length bound");

        switch (insn.op) {
          case Op::kHalt:
            w.need = Walker::Need::kDone;
            w.path.complete = true;
            return;
          case Op::kJcc:
            w.need = Walker::Need::kTnt;
            return;
          case Op::kJmp:
          case Op::kCall:
            w.ip = insn.target;
            break;
          case Op::kJmpInd:
          case Op::kCallInd:
          case Op::kRet:
            w.need = Walker::Need::kTip;
            return;
          default:
            ++w.ip;
            break;
        }
    }
}

/** Apply one stream's packets to a (possibly shared) walker set. */
void
decodeStreamInto(const asmkit::Program &program, const PtFilter &filter,
                 const trace::PtCoreStream &stream,
                 const std::map<uint32_t, uint32_t> &entries,
                 std::map<uint32_t, Walker> &walkers,
                 uint64_t &total_entries, uint64_t &total_packets)
{
    if (stream.bit_count == 0)
        return;
    BitReader reader(stream.bytes, stream.bit_count);
    Walker *current = nullptr;
    uint64_t stream_tsc = 0;

    for (;;) {
        const PtPacket p = readPtPacket(reader);
        ++total_packets;
        if (p.kind == PtPacketKind::kEnd)
            break;

        switch (p.kind) {
          case PtPacketKind::kContext: {
            auto [it, inserted] = walkers.try_emplace(p.tid);
            Walker &w = it->second;
            if (inserted) {
                auto entry = entries.find(p.tid);
                if (entry == entries.end()) {
                    PRORACE_FATAL("PT context packet for unknown tid ",
                                  p.tid);
                }
                w.ip = entry->second;
                w.path.tid = p.tid;
                advance(w, program, filter, total_entries);
            }
            w.path.anchors.push_back({w.proven, p.tsc});
            stream_tsc = p.tsc;
            current = &w;
            break;
          }
          case PtPacketKind::kTsc: {
            stream_tsc = p.tsc_is_delta ? stream_tsc + p.tsc : p.tsc;
            if (current) {
                current->path.anchors.push_back(
                    {current->proven, stream_tsc});
            }
            break;
          }
          case PtPacketKind::kTnt: {
            PRORACE_ASSERT(current, "TNT packet before any context");
            Walker &w = *current;
            PRORACE_ASSERT(w.need == Walker::Need::kTnt,
                           "unexpected TNT packet (walker state ",
                           int(w.need), ")");
            const Insn &insn = program.insnAt(w.ip);
            w.ip = p.taken ? insn.target : w.ip + 1;
            w.need = Walker::Need::kAdvance;
            w.proven = w.path.insns.size(); // the branch retired
            advance(w, program, filter, total_entries);
            break;
          }
          case PtPacketKind::kTip: {
            PRORACE_ASSERT(current, "TIP packet before any context");
            Walker &w = *current;
            PRORACE_ASSERT(w.need == Walker::Need::kTip,
                           "unexpected TIP packet");
            w.ip = p.target;
            w.need = Walker::Need::kAdvance;
            w.proven = w.path.insns.size();
            advance(w, program, filter, total_entries);
            break;
          }
          case PtPacketKind::kPge: {
            PRORACE_ASSERT(current, "PGE packet before any context");
            Walker &w = *current;
            PRORACE_ASSERT(w.need == Walker::Need::kPge,
                           "unexpected PGE packet");
            w.ip = p.target;
            w.need = Walker::Need::kAdvance;
            w.proven = w.path.insns.size();
            advance(w, program, filter, total_entries);
            break;
          }
          case PtPacketKind::kEnd:
            break;
        }
    }
}

std::map<uint32_t, uint32_t>
entryMap(const trace::RunTrace &run)
{
    std::map<uint32_t, uint32_t> entries;
    for (const trace::ThreadMeta &t : run.meta.threads)
        entries[t.tid] = t.entry_index;
    return entries;
}

} // namespace

std::map<uint32_t, ThreadPath>
decodePt(const asmkit::Program &program, const PtFilter &filter,
         const trace::RunTrace &run, PtDecodeStats *stats)
{
    const std::map<uint32_t, uint32_t> entries = entryMap(run);
    std::map<uint32_t, Walker> walkers;
    uint64_t total_entries = 0;
    uint64_t total_packets = 0;

    for (const trace::PtCoreStream &stream : run.pt) {
        decodeStreamInto(program, filter, stream, entries, walkers,
                         total_entries, total_packets);
    }

    std::map<uint32_t, ThreadPath> paths;
    for (auto &[tid, w] : walkers)
        paths.emplace(tid, std::move(w.path));

    if (stats) {
        stats->packets = total_packets;
        stats->path_entries = total_entries;
    }
    return paths;
}

std::map<uint32_t, ThreadPath>
decodePtStream(const asmkit::Program &program, const PtFilter &filter,
               const trace::RunTrace &run, size_t core,
               PtDecodeStats *stats)
{
    PRORACE_ASSERT(core < run.pt.size(), "PT stream index out of range");
    const std::map<uint32_t, uint32_t> entries = entryMap(run);
    std::map<uint32_t, Walker> walkers;
    uint64_t total_entries = 0;
    uint64_t total_packets = 0;
    decodeStreamInto(program, filter, run.pt[core], entries, walkers,
                     total_entries, total_packets);

    std::map<uint32_t, ThreadPath> paths;
    for (auto &[tid, w] : walkers)
        paths.emplace(tid, std::move(w.path));

    if (stats) {
        stats->packets = total_packets;
        stats->path_entries = total_entries;
    }
    return paths;
}

} // namespace prorace::pmu

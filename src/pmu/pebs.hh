/**
 * @file
 * PEBS hardware model: a per-core counter over retired user-level
 * loads/stores that fires every @c period events.
 */

#ifndef PRORACE_PMU_PEBS_HH
#define PRORACE_PMU_PEBS_HH

#include <cstdint>

#include "support/log.hh"
#include "support/rng.hh"

namespace prorace::pmu {

/**
 * The PEBS counter of one core.
 *
 * The ProRace driver arms the first period with a random value in
 * [1, period] so each run samples at different offsets per thread
 * (paper §4.1.2); the vanilla driver always arms the full period.
 */
class PebsCounter
{
  public:
    /**
     * @param period        sampling period k (fires every k-th event)
     * @param randomize_first arm the first window with a random count
     * @param rng           randomness source for the first window
     */
    PebsCounter(uint64_t period, bool randomize_first, Rng &rng)
        : period_(period)
    {
        PRORACE_ASSERT(period >= 1, "PEBS period must be >= 1");
        countdown_ = randomize_first ? rng.range(1, period) : period;
        first_window_ = countdown_;
    }

    /**
     * Count one retired memory event.
     * @return true when this event is sampled (counter overflowed).
     */
    bool
    tick()
    {
        if (--countdown_ == 0) {
            countdown_ = period_;
            return true;
        }
        return false;
    }

    uint64_t period() const { return period_; }

    /** The value the counter was first armed with. */
    uint64_t firstWindow() const { return first_window_; }

  private:
    uint64_t period_;
    uint64_t countdown_;
    uint64_t first_window_;
};

} // namespace prorace::pmu

#endif // PRORACE_PMU_PEBS_HH

/**
 * @file
 * PT packet format.
 *
 * A compact analogue of Intel PT's packet vocabulary, bit-packed and
 * prefix-free. Conditional-branch outcomes cost ~2 bits (header + TNT
 * bit); indirect transfers carry an explicit target (TIP); re-entry into
 * a filtered code region after untraced code carries the resume target
 * (TIP.PGE); context-switch packets identify the scheduled thread (PIP)
 * and double as timing anchors; standalone TSC packets are emitted
 * periodically for offline time synchronization.
 */

#ifndef PRORACE_PMU_PT_PACKET_HH
#define PRORACE_PMU_PT_PACKET_HH

#include <cstdint>

#include "support/bitstream.hh"

namespace prorace::pmu {

/** Packet kinds, in header order. */
enum class PtPacketKind : uint8_t {
    kTnt,     ///< header "0"     + 1 taken/not-taken bit
    kTip,     ///< header "10"    + 32-bit target
    kPge,     ///< header "110"   + 32-bit target (trace re-enable)
    kContext, ///< header "1110"  + 32-bit tid + 64-bit TSC
    kTsc,     ///< header "11110" + 64-bit TSC
    kEnd,     ///< header "11111"
};

/** A decoded packet. */
struct PtPacket {
    PtPacketKind kind = PtPacketKind::kEnd;
    bool taken = false;       ///< kTnt
    bool short_target = false;///< kTip / kPge: 16-bit compressed target
    bool tsc_is_delta = false;///< kTsc: 32-bit delta vs 64-bit absolute
    uint32_t target = 0;      ///< kTip / kPge
    uint32_t tid = 0;         ///< kContext
    uint64_t tsc = 0;         ///< kContext; kTsc: delta or absolute
};

/** Append one packet to a bit stream. */
void writePtPacket(BitWriter &w, const PtPacket &p);

/** Read the next packet; panics on a malformed stream. */
PtPacket readPtPacket(BitReader &r);

} // namespace prorace::pmu

#endif // PRORACE_PMU_PT_PACKET_HH

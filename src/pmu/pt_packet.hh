/**
 * @file
 * PT packet format.
 *
 * A compact analogue of Intel PT's packet vocabulary, bit-packed and
 * prefix-free. Conditional-branch outcomes cost ~2 bits (header + TNT
 * bit); indirect transfers carry an explicit target (TIP); re-entry into
 * a filtered code region after untraced code carries the resume target
 * (TIP.PGE); context-switch packets identify the scheduled thread (PIP)
 * and double as timing anchors; standalone TSC packets are emitted
 * periodically for offline time synchronization.
 */

#ifndef PRORACE_PMU_PT_PACKET_HH
#define PRORACE_PMU_PT_PACKET_HH

#include <cstdint>

#include "support/bitstream.hh"

namespace prorace::pmu {

/** Packet kinds, in header order. */
enum class PtPacketKind : uint8_t {
    kTnt,     ///< header "0"      + 1 taken/not-taken bit
    kTip,     ///< header "10"     + 32-bit target
    kPge,     ///< header "110"    + 32-bit target (trace re-enable)
    kContext, ///< header "1110"   + 32-bit tid + 64-bit TSC + 32-bit ip
    kTsc,     ///< header "11110"  + 64-bit TSC
    kEnd,     ///< header "111110"
    kPsb,     ///< header "111111" + 32-bit sync magic
};

/**
 * Payload of every PSB packet. Header plus magic form a fixed 38-bit
 * pattern the decoder scans for to re-acquire a damaged stream, the
 * way hardware PT decoders resynchronize at PSB boundaries.
 */
inline constexpr uint32_t kPsbMagic = 0x50545342; // "PTSB"

/** A decoded packet. */
struct PtPacket {
    PtPacketKind kind = PtPacketKind::kEnd;
    bool taken = false;       ///< kTnt
    bool short_target = false;///< kTip / kPge: 16-bit compressed target
    bool tsc_is_delta = false;///< kTsc: 32-bit delta vs 64-bit absolute
    uint32_t target = 0;      ///< kTip / kPge; kPsb: magic as read
    uint32_t tid = 0;         ///< kContext
    uint64_t tsc = 0;         ///< kContext; kTsc: delta or absolute
    uint32_t ip = 0;          ///< kContext: resume instruction index
};

/** Append one packet to a bit stream. */
void writePtPacket(BitWriter &w, const PtPacket &p);

/** Read the next packet; panics on a malformed stream. */
PtPacket readPtPacket(BitReader &r);

/**
 * Bounds-checked read for untrusted streams: false when the stream
 * runs out mid-packet (reader position is then unspecified), true with
 * @p p filled otherwise. Every bit pattern decodes to *some* packet —
 * corruption shows up as decoder-state mismatches, out-of-range
 * targets, or a kPsb whose magic is wrong, all handled by the
 * decoder's resynchronization (pmu/pt_decode).
 */
bool tryReadPtPacket(BitReader &r, PtPacket &p);

/**
 * Scan forward from the reader's position for the next PSB bit
 * pattern, leaving the reader positioned at its first header bit.
 * Returns false (reader at end) when no PSB remains.
 */
bool scanToPsb(BitReader &r);

} // namespace prorace::pmu

#endif // PRORACE_PMU_PT_PACKET_HH

/**
 * @file
 * Workload framework: assembled programs modeling the paper's
 * evaluation subjects, with ground-truth annotations for racy bugs.
 */

#ifndef PRORACE_WORKLOAD_WORKLOAD_HH
#define PRORACE_WORKLOAD_WORKLOAD_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "asmkit/program.hh"
#include "detect/report.hh"
#include "pmu/pt.hh"
#include "vm/machine.hh"

namespace prorace::workload {

/** Addressing kind of a racy access (Table 2's third column). */
enum class AddressKind : uint8_t {
    kPcRelative,      ///< global addressed via %rip
    kRegisterIndirect,///< pointer held in a register
    kMemoryIndirect,  ///< pointer loaded from memory before the access
};

/** Printable addressing-kind name (matches the paper's wording). */
const char *addressKindName(AddressKind kind);

/** Ground truth for one injected race bug. */
struct RacyBug {
    std::string id;            ///< e.g. "apache-21287"
    std::string manifestation; ///< e.g. "double free"
    AddressKind kind = AddressKind::kPcRelative;
    std::vector<uint32_t> racy_insns; ///< the racing instructions
    uint64_t racy_addr = 0;    ///< racy variable (0 for heap objects)
    uint64_t racy_size = 8;
};

/**
 * True when the report names this specific bug: some reported race
 * pairs two of the bug's racy instructions.
 */
bool bugDetected(const RacyBug &bug, const detect::RaceReport &report);

/** A ready-to-run evaluation subject. */
struct Workload {
    std::string name;
    std::string description;
    std::shared_ptr<asmkit::Program> program;
    /** Creates the initial threads ("the command line"). */
    std::function<void(vm::Machine &)> setup;
    /** PT code-region filter (main executable only, per the paper). */
    pmu::PtFilter pt_filter = pmu::PtFilter::all();
    /** Injected bugs, when this is a racy workload. */
    std::vector<RacyBug> bugs;
};

/**
 * Build a PT filter covering the whole program except functions whose
 * name starts with "lib_" — the paper traces only the main executable's
 * code regions and skips library code (§4.2). Uses at most the four
 * ranges the hardware provides; fatal if the layout needs more.
 */
pmu::PtFilter mainExecutableFilter(const asmkit::Program &program);

} // namespace prorace::workload

#endif // PRORACE_WORKLOAD_WORKLOAD_HH

#include "workload/workload.hh"

#include <algorithm>

#include "support/log.hh"

namespace prorace::workload {

const char *
addressKindName(AddressKind kind)
{
    switch (kind) {
      case AddressKind::kPcRelative:       return "pc relative";
      case AddressKind::kRegisterIndirect: return "register indirect";
      case AddressKind::kMemoryIndirect:   return "memory indirect";
    }
    return "?";
}

bool
bugDetected(const RacyBug &bug, const detect::RaceReport &report)
{
    for (size_t i = 0; i < bug.racy_insns.size(); ++i) {
        for (size_t j = i; j < bug.racy_insns.size(); ++j) {
            if (report.containsPair(bug.racy_insns[i], bug.racy_insns[j]))
                return true;
        }
    }
    return false;
}

pmu::PtFilter
mainExecutableFilter(const asmkit::Program &program)
{
    // Collect the library ranges (functions named lib_*), then cover
    // the complement with up to four filter ranges.
    std::vector<std::pair<uint32_t, uint32_t>> lib;
    for (const asmkit::Function &fn : program.functions()) {
        if (fn.name.rfind("lib_", 0) == 0)
            lib.emplace_back(fn.begin, fn.end);
    }
    if (lib.empty())
        return pmu::PtFilter::all();
    std::sort(lib.begin(), lib.end());

    pmu::PtFilter filter;
    uint32_t cursor = 0;
    for (const auto &[begin, end] : lib) {
        if (begin > cursor)
            filter.addRange(cursor, begin);
        cursor = std::max(cursor, end);
    }
    if (cursor < program.size())
        filter.addRange(cursor, program.size());
    return filter;
}

} // namespace prorace::workload

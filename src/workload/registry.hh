/**
 * @file
 * Name-based workload lookup across all suites.
 */

#ifndef PRORACE_WORKLOAD_REGISTRY_HH
#define PRORACE_WORKLOAD_REGISTRY_HH

#include <optional>
#include <string>
#include <vector>

#include "workload/workload.hh"

namespace prorace::workload {

/** All workload names, grouped: PARSEC, real apps, racy bugs. */
std::vector<std::string> allWorkloadNames();

/**
 * Build a workload by name from any suite.
 * @param scale shrinks/extends the run length (1.0 = evaluation size).
 */
std::optional<Workload> findWorkload(const std::string &name,
                                     double scale = 1.0);

} // namespace prorace::workload

#endif // PRORACE_WORKLOAD_REGISTRY_HH

#include "workload/racybugs.hh"

#include <algorithm>

#include "support/log.hh"
#include "workload/kernels.hh"

namespace prorace::workload {

namespace {

/** Racy idioms by addressing kind. */
enum class Idiom : uint8_t {
    kPcRelCounter,     ///< unlocked global counter via %rip
    kRegIndirectField, ///< shared pointer live across the request
    kMemIndirectField, ///< pointer reloaded right before the access
};

/** Shape of one bug scenario. */
struct BugProfile {
    const char *id;
    const char *manifestation;
    Idiom idiom;
    unsigned threads = 4;
    uint32_t items = 200;       ///< requests per worker
    uint32_t work_before = 30;  ///< compute before the racy section
    uint32_t work_after = 30;   ///< compute after it
    uint32_t live_sweep = 0;    ///< accesses inside the pointer's live
                                ///< range (register-indirect only)
    /** The shared stats lock is taken every this many requests (a
     *  per-request global lock would serialize the bug away). */
    uint32_t lock_every = 16;
    bool racy_write_both = true;///< both read and write race (vs read)
};

AddressKind
kindOf(Idiom idiom)
{
    switch (idiom) {
      case Idiom::kPcRelCounter:     return AddressKind::kPcRelative;
      case Idiom::kRegIndirectField: return AddressKind::kRegisterIndirect;
      case Idiom::kMemIndirectField: return AddressKind::kMemoryIndirect;
    }
    return AddressKind::kPcRelative;
}

const BugProfile kBugs[] = {
    // apache-21287: a cache object's reference count is decremented
    // without the cache lock; two concurrent decrements free it twice.
    {"apache-21287", "double free", Idiom::kMemIndirectField, 4, 260,
     35, 25},
    // apache-25520: worker threads append to the shared per-child log
    // buffer through its handle without serialization.
    {"apache-25520", "corrupted log", Idiom::kRegIndirectField, 4, 240,
     30, 20, 14},
    // apache-45605: the listener's queue-info "idlers" field is
    // updated by workers while the listener reads it.
    {"apache-45605", "assertion", Idiom::kRegIndirectField, 4, 240,
     25, 30, 10},
    // mysql-3596: the active-THD list pointer is read while another
    // connection tears it down.
    {"mysql-3596", "crash", Idiom::kMemIndirectField, 4, 280, 40, 20},
    // mysql-644: the table-cache entry is invalidated concurrently
    // with a lookup.
    {"mysql-644", "crash", Idiom::kMemIndirectField, 4, 280, 30, 30},
    // mysql-791: a binlog status flag is toggled while the dump thread
    // tests it, losing output.
    {"mysql-791", "missing output", Idiom::kMemIndirectField, 4, 260,
     35, 25},
    // cherokee-0.9.2: concurrent writes to the shared access-log
    // buffer handle.
    {"cherokee-0.9.2", "corrupted log", Idiom::kRegIndirectField, 4, 240,
     28, 22, 12},
    // cherokee-bug326: the logger's time-cache string is rebuilt by one
    // thread while another formats with it.
    {"cherokee-bug326", "corrupted log", Idiom::kRegIndirectField, 4,
     240, 32, 18, 12},
    // pbzip2-0.9.4: the main thread frees the FIFO while a consumer
    // still polls its "empty" field.
    {"pbzip2-0.9.4", "crash", Idiom::kMemIndirectField, 4, 220, 45, 15},
    // pbzip2-0.9.5: the global allDone flag is read/written unlocked
    // (benign by intent, still a data race).
    {"pbzip2-0.9.5", "benign", Idiom::kPcRelCounter, 4, 220, 40, 20},
    // pfscan: the matches counter is updated unlocked; a stale read
    // keeps the scanner looping.
    {"pfscan", "infinite loop", Idiom::kPcRelCounter, 4, 240, 30, 30},
    // aget-bug2: the global bwritten byte counter is updated unlocked,
    // logging a wrong resume record.
    {"aget-bug2", "wrong record in log", Idiom::kPcRelCounter, 4, 220,
     26, 34},
};

Workload
buildBug(const BugProfile &p, double scale)
{
    const uint32_t items = std::max<uint32_t>(
        1, static_cast<uint32_t>(p.items * scale));

    ProgramBuilder b;
    b.global("mtx", 8);
    b.globalU64("input_seed", 0); // per-run input, written at startup
    b.globalU64("safe_counter", 0);
    b.globalU64("racy_global", 0);    // pc-relative idiom target
    b.globalU64("shared_ptr", 0);     // points at shared_obj
    b.global("shared_obj", 64);       // racy field at +0x18
    b.global("scratch", 4 * 32 * 8);  // per-thread private regions

    RacyBug bug;
    bug.id = p.id;
    bug.manifestation = p.manifestation;
    bug.kind = kindOf(p.idiom);

    b.label("main");
    // Publish the shared object's address (the "handle" the bug
    // involves), then start the workers.
    b.lea(Reg::rax, b.symRef("shared_obj"));
    b.store(b.symRef("shared_ptr"), Reg::rax);
    b.movri(Reg::rcx, 0);
    b.label("main_spawn");
    b.movrr(Reg::r12, Reg::rcx);
    b.spawn(Reg::rax, "worker", Reg::r12);
    b.push(Reg::rax);
    b.addri(Reg::rcx, 1);
    b.cmpri(Reg::rcx, p.threads);
    b.jcc(CondCode::kLt, "main_spawn");
    b.movri(Reg::rcx, 0);
    b.label("main_join");
    b.pop(Reg::rax);
    b.join(Reg::rax);
    b.addri(Reg::rcx, 1);
    b.cmpri(Reg::rcx, p.threads);
    b.jcc(CondCode::kLt, "main_join");
    b.halt();

    b.beginFunction("worker");
    b.movrr(Reg::r14, Reg::rdi); // tid
    b.load(Reg::r10, b.symRef("input_seed"));
    b.lea(Reg::r15, b.symRef("scratch"));
    b.movri(Reg::rax, 32 * 8);
    b.alurr(AluOp::kMul, Reg::rax, Reg::r14);
    b.alurr(AluOp::kAdd, Reg::r15, Reg::rax);
    b.movri(Reg::r13, 0);
    b.label("req");

    // Per-request work varies with the request index *and* the run's
    // input, as real request handlers' paths do (and as production runs
    // differ between customers) — without this, a driver with a fixed
    // first sampling window phase-locks onto the loop structure.
    b.movrr(Reg::r9, Reg::r13);
    b.alurr(AluOp::kXor, Reg::r9, Reg::r10);
    b.aluri(AluOp::kMul, Reg::r9, 2654435761ll);
    b.aluri(AluOp::kShr, Reg::r9, 24);
    b.aluri(AluOp::kAnd, Reg::r9, 31);
    b.aluri(AluOp::kAdd, Reg::r9, p.work_before);
    emitVariableComputeLoop(b, "pre", Reg::r9);

    switch (p.idiom) {
      case Idiom::kPcRelCounter: {
        // counter++ without the lock, through %rip addressing — executed
        // only when the request "matches" (as pfscan bumps its counter
        // only on pattern hits). The rarity is why RaceZ, which needs a
        // sample inside this very basic block, almost never sees it,
        // while ProRace needs only the PT path (paper §7.4).
        b.movrr(Reg::rax, Reg::r9);
        b.aluri(AluOp::kAnd, Reg::rax, 7);
        b.cmpri(Reg::rax, 3);
        b.jcc(CondCode::kNe, "req_nomatch");
        const uint32_t rd = b.load(Reg::rax, b.symRef("racy_global"));
        b.addri(Reg::rax, 1);
        const uint32_t wr = b.store(b.symRef("racy_global"), Reg::rax);
        b.label("req_nomatch");
        bug.racy_insns = {rd, wr};
        bug.racy_addr = b.symbolAddr("racy_global");
        break;
      }
      case Idiom::kRegIndirectField: {
        // The handle is fetched once per request; the racy update
        // happens midway through the request while the handle is still
        // live in rbx.
        b.load(Reg::rbx, b.symRef("shared_ptr")); // handle (value unknown
                                                  // to offline replay)
        // Request work that keeps rbx live: sweep the private region.
        emitArraySweep(b, "liv", Reg::r15,
                       std::max<uint32_t>(p.live_sweep, 2), true);
        const uint32_t rd =
            b.load(Reg::rax, MemOperand::baseDisp(Reg::rbx, 0x18));
        b.addri(Reg::rax, 1);
        const uint32_t wr =
            b.store(MemOperand::baseDisp(Reg::rbx, 0x18), Reg::rax);
        // More work under the live handle.
        emitArraySweep(b, "liv2", Reg::r15,
                       std::max<uint32_t>(p.live_sweep / 2, 2), false);
        // The handle register is reused by the next expression, ending
        // its live range (as a compiler would).
        b.movri(Reg::rbx, 0);
        bug.racy_insns = {rd, wr};
        bug.racy_addr = b.symbolAddr("shared_obj") + 0x18;
        break;
      }
      case Idiom::kMemIndirectField: {
        // The pointer is re-loaded from memory immediately before the
        // racy access: the hardest case for reconstruction.
        b.load(Reg::rsi, b.symRef("shared_ptr"));
        // A handful of benign field reads precede the racy update, as
        // in the real code (checking object state before mutating it).
        b.load(Reg::rdx, MemOperand::baseDisp(Reg::rsi, 0x08));
        b.alurr(AluOp::kXor, Reg::rdx, Reg::rdx);
        const uint32_t rd =
            b.load(Reg::rax, MemOperand::baseDisp(Reg::rsi, 0x18));
        b.load(Reg::rdx, MemOperand::baseDisp(Reg::rsi, 0x10));
        b.testrr(Reg::rdx, Reg::rdx);
        b.addri(Reg::rax, 1);
        const uint32_t wr =
            b.store(MemOperand::baseDisp(Reg::rsi, 0x18), Reg::rax);
        // rsi is immediately reused (short live range: this is what
        // makes the memory-indirect bugs hard to reconstruct).
        b.movri(Reg::rsi, 0);
        bug.racy_insns = {rd, wr};
        bug.racy_addr = b.symbolAddr("shared_obj") + 0x18;
        break;
      }
    }

    // Correctly synchronized shared work (the detector must not confuse
    // it with the bug): a periodic stats flush under the global lock.
    b.movrr(Reg::rax, Reg::r13);
    b.aluri(AluOp::kAnd, Reg::rax, p.lock_every - 1);
    b.cmpri(Reg::rax, p.lock_every - 1);
    b.jcc(CondCode::kNe, "req_noflush");
    emitLockedAdd(b, "mtx", "safe_counter");
    b.label("req_noflush");
    emitComputeLoop(b, "post", p.work_after);
    // Library call with the racy handle dead: creates PT gaps like the
    // real binaries' libc calls.
    b.movrr(Reg::rdi, Reg::r15);
    b.movri(Reg::rsi, 8);
    b.call("lib_sum");

    b.addri(Reg::r13, 1);
    b.cmpri(Reg::r13, items);
    b.jcc(CondCode::kLt, "req");
    b.halt();
    b.endFunction();

    emitLibHelpers(b);

    Workload w;
    w.name = p.id;
    w.description = std::string(p.manifestation) + " (" +
        addressKindName(bug.kind) + ")";
    w.program = std::make_shared<asmkit::Program>(b.build());
    const uint64_t input_addr = w.program->symbol("input_seed").addr;
    w.setup = [input_addr](vm::Machine &m) {
        // The run's "input": derived from the seed, as production runs
        // see different request streams.
        m.memory().write(input_addr, m.config().seed * 0x9e3779b9, 8);
        m.addThread("main");
    };
    w.pt_filter = mainExecutableFilter(*w.program);
    w.bugs = {bug};
    return w;
}

} // namespace

Workload
makeRacyBug(const std::string &id, double scale)
{
    for (const BugProfile &p : kBugs) {
        if (id == p.id)
            return buildBug(p, scale);
    }
    PRORACE_FATAL("unknown racy bug id: ", id);
}

std::vector<Workload>
racyBugWorkloads(double scale)
{
    std::vector<Workload> out;
    for (const BugProfile &p : kBugs)
        out.push_back(buildBug(p, scale));
    return out;
}

std::vector<std::string>
racyBugIds()
{
    std::vector<std::string> out;
    for (const BugProfile &p : kBugs)
        out.emplace_back(p.id);
    return out;
}

} // namespace prorace::workload

/**
 * @file
 * Profile-driven application models: the 13 PARSEC benchmarks and the
 * paper's seven-plus-one real-world applications (Table 1), rebuilt as
 * synthetic programs whose compute / memory / branch / synchronization
 * / I/O mixes model each subject's published characteristics.
 */

#ifndef PRORACE_WORKLOAD_APPS_HH
#define PRORACE_WORKLOAD_APPS_HH

#include <cstdint>
#include <vector>

#include "workload/workload.hh"

namespace prorace::workload {

/** Behavioural profile of one application model. */
struct AppProfile {
    const char *name = "";
    const char *description = "";
    unsigned threads = 4;        ///< worker threads
    uint32_t items = 200;        ///< work items per thread
    uint32_t compute_iters = 100;///< ALU loop length per item
    uint32_t sweep_elems = 50;   ///< private array sweep length
    bool sweep_writes = true;
    uint32_t chase_steps = 0;    ///< shared read-only pointer chase
    bool locked_update = true;   ///< shared locked counter per item
    uint32_t barrier_every = 0;  ///< barrier period in items (0 = none)
    uint32_t lib_every = 1;      ///< library (untraced) call period
    uint32_t net_recv_cycles = 0;///< network receive latency per item
    uint32_t net_send_cycles = 0;///< network send latency per item
    uint32_t file_read_cycles = 0;
    uint32_t file_write_cycles = 0;
    /** Scale factor applied to items (used to shrink test runs). */
    double scale = 1.0;
    /**
     * Advance the private sweep window by sweep_elems each item
     * instead of revisiting one fixed region, so the touched footprint
     * grows with run length (the arena is sized items x sweep_elems
     * per thread). Models allocation churn in a long-running service:
     * exactly the shape whose shadow state an analyzer must retire to
     * keep residency bounded (fig16).
     */
    bool streaming_sweep = false;
};

/** Build a runnable workload from a profile. */
Workload makeAppWorkload(AppProfile profile);

/** The 13 PARSEC benchmark profiles (simlarge, 4 threads). */
std::vector<AppProfile> parsecProfiles();

/** The real-application profiles of Table 1. */
std::vector<AppProfile> realAppProfiles();

/**
 * Long-running service shapes (beyond the paper): growing live sets
 * that exercise the streaming detector's shadow-state GC.
 */
std::vector<AppProfile> streamingProfiles();

/** Convenience: build every PARSEC workload, scaled by @p scale. */
std::vector<Workload> parsecWorkloads(double scale = 1.0);

/** Convenience: build every real-app workload, scaled by @p scale. */
std::vector<Workload> realAppWorkloads(double scale = 1.0);

/** Convenience: build every streaming workload, scaled by @p scale. */
std::vector<Workload> streamingWorkloads(double scale = 1.0);

} // namespace prorace::workload

#endif // PRORACE_WORKLOAD_APPS_HH

/**
 * @file
 * Concurrency archetypes built on the rich sync vocabulary: a lock-free
 * MPMC ticket queue (acquire/release atomics), an RCU-style
 * reader/writer table (rwlock, read-shared clocks at scale), and an
 * event-loop server (semaphore job signaling + spinlock queue) under
 * simulated load, and a pointer-dispatch server (runtime handler table,
 * private heap buffers) exercising the points-to consumers. All are
 * race-free by construction except the "-racy" MPMC variant, whose
 * broken publication carries exact ground truth.
 */

#ifndef PRORACE_WORKLOAD_ARCHETYPES_HH
#define PRORACE_WORKLOAD_ARCHETYPES_HH

#include <string>
#include <vector>

#include "workload/workload.hh"

namespace prorace::workload {

/**
 * Lock-free multi-producer/multi-consumer queue: threads/2 producers
 * claim tickets with an acq_rel fetch-add on head, plain-store the slot,
 * and raise the slot's flag with a store-release; threads/2 consumers
 * claim tickets from tail and spin on a load-acquire of the flag before
 * plain-loading the slot. Producer and consumer roles are disjoint so
 * the per-cell flag is the ONLY producer->consumer edge. With
 * @p racy_publish the flag traffic is plain loads/stores — the classic
 * broken publication, racy in every schedule, reported with exact truth
 * (slot store vs slot load, flag store vs flag load).
 * @p items is per producer; @p threads must be even.
 */
Workload makeMpmcQueue(unsigned threads, uint32_t items,
                       bool racy_publish, double scale = 1.0);

/**
 * RCU-style shared table: thread 0 updates cells and an epoch counter
 * under the write lock; every other thread sweeps the table under the
 * read lock. Long concurrent-reader phases keep granules in the
 * read-shared representation, punctuated by writer joins of the
 * accumulated read clock.
 */
Workload makeRcuTable(unsigned threads, uint32_t items,
                      double scale = 1.0);

/**
 * Event-loop server: main dispatches jobs by pushing onto a
 * spinlock-protected ring and posting a counting semaphore; workers
 * wait on the semaphore, pop under the spinlock, and process. Jobs
 * flow dispatcher -> worker entirely through semaphore + spinlock
 * edges.
 */
Workload makeEventLoop(unsigned threads, uint32_t items,
                       double scale = 1.0);

/**
 * Pointer-dispatch server: main installs a handler table at runtime
 * (movLabel + store) and each worker calls through it indirectly.
 * Handlers are read-only on shared state; every worker fills and reads
 * a private malloc'd buffer that never escapes its thread. Exercises
 * all three points-to consumers at once: heap-local pruning (the
 * buffers), indirect-branch sharpening (the two callind sites resolve
 * to exact target sets), and constant recovery (coeff reached through
 * the coeffp second-level pointer). Race-free by construction.
 */
Workload makePtrDispatch(unsigned threads, uint32_t items,
                         double scale = 1.0);

/** Registry names of all archetypes. */
std::vector<std::string> archetypeNames();

/** Build an archetype by registry name (nullopt handled by caller). */
bool isArchetypeName(const std::string &name);

/** Build an archetype by registry name; name must be from the list. */
Workload makeArchetype(const std::string &name, double scale = 1.0);

} // namespace prorace::workload

#endif // PRORACE_WORKLOAD_ARCHETYPES_HH

#include "workload/kernels.hh"

namespace prorace::workload {

void
emitLibHelpers(ProgramBuilder &b)
{
    // uint64_t lib_sum(const uint64_t *p /*rdi*/, uint64_t n /*rsi*/)
    b.beginFunction("lib_sum");
    b.movri(Reg::rax, 0);
    b.movri(Reg::rcx, 0);
    b.cmprr(Reg::rcx, Reg::rsi);
    b.jcc(CondCode::kGe, "lib_sum_done");
    b.label("lib_sum_loop");
    b.load(Reg::rdx, MemOperand::baseIndex(Reg::rdi, Reg::rcx, 8));
    b.alurr(AluOp::kAdd, Reg::rax, Reg::rdx);
    b.aluri(AluOp::kXor, Reg::rax, 0x5a5a);
    b.addri(Reg::rcx, 1);
    b.cmprr(Reg::rcx, Reg::rsi);
    b.jcc(CondCode::kLt, "lib_sum_loop");
    b.label("lib_sum_done");
    b.ret();
    b.endFunction();

    // void lib_fill(uint64_t *p /*rdi*/, uint64_t n /*rsi*/)
    b.beginFunction("lib_fill");
    b.movri(Reg::rcx, 0);
    b.cmprr(Reg::rcx, Reg::rsi);
    b.jcc(CondCode::kGe, "lib_fill_done");
    b.movri(Reg::rdx, 0x1234);
    b.label("lib_fill_loop");
    b.store(MemOperand::baseIndex(Reg::rdi, Reg::rcx, 8), Reg::rdx);
    b.aluri(AluOp::kAdd, Reg::rdx, 0x9e37);
    b.addri(Reg::rcx, 1);
    b.cmprr(Reg::rcx, Reg::rsi);
    b.jcc(CondCode::kLt, "lib_fill_loop");
    b.label("lib_fill_done");
    b.ret();
    b.endFunction();
}

void
emitComputeLoop(ProgramBuilder &b, const std::string &prefix,
                uint32_t iters)
{
    // Mixed ALU + stack traffic: compiled code keeps ~1/3 of its
    // instructions touching memory (spills, locals), and the PEBS
    // load/store counters see exactly that traffic.
    b.movri(Reg::rax, 0x243f6a88);
    b.movri(Reg::rcx, 0);
    b.label(prefix + "_compute");
    b.aluri(AluOp::kMul, Reg::rax, 6364136223846793005ll);
    b.aluri(AluOp::kAdd, Reg::rax, 1442695040888963407ll);
    b.store(MemOperand::baseDisp(Reg::rsp, -8), Reg::rax); // spill
    b.movrr(Reg::rdx, Reg::rax);
    b.aluri(AluOp::kShr, Reg::rdx, 33);
    b.load(Reg::rdx, MemOperand::baseDisp(Reg::rsp, -8));  // reload
    b.alurr(AluOp::kXor, Reg::rax, Reg::rdx);
    b.load(Reg::rdx, MemOperand::baseDisp(Reg::rsp, -16)); // local var
    b.alurr(AluOp::kOr, Reg::rax, Reg::rdx);
    b.addri(Reg::rcx, 1);
    b.cmpri(Reg::rcx, iters);
    b.jcc(CondCode::kLt, prefix + "_compute");
}

void
emitVariableComputeLoop(ProgramBuilder &b, const std::string &prefix,
                        Reg bound_reg)
{
    b.movri(Reg::rax, 0x9e3779b9);
    b.movri(Reg::rcx, 0);
    b.cmprr(Reg::rcx, bound_reg);
    b.jcc(CondCode::kGe, prefix + "_vdone");
    b.label(prefix + "_vloop");
    b.aluri(AluOp::kMul, Reg::rax, 6364136223846793005ll);
    b.store(MemOperand::baseDisp(Reg::rsp, -8), Reg::rax);
    b.movrr(Reg::rdx, Reg::rax);
    b.aluri(AluOp::kShr, Reg::rdx, 29);
    b.load(Reg::rdx, MemOperand::baseDisp(Reg::rsp, -8));
    b.alurr(AluOp::kXor, Reg::rax, Reg::rdx);
    b.addri(Reg::rcx, 1);
    b.cmprr(Reg::rcx, bound_reg);
    b.jcc(CondCode::kLt, prefix + "_vloop");
    b.label(prefix + "_vdone");
}

void
emitArraySweep(ProgramBuilder &b, const std::string &prefix, Reg base_reg,
               uint32_t elems, bool write_back)
{
    b.movri(Reg::rax, 0);
    b.movri(Reg::rcx, 0);
    b.label(prefix + "_sweep");
    b.load(Reg::rdx, MemOperand::baseIndex(base_reg, Reg::rcx, 8));
    b.alurr(AluOp::kAdd, Reg::rax, Reg::rdx);
    if (write_back) {
        b.aluri(AluOp::kAdd, Reg::rdx, 3);
        b.store(MemOperand::baseIndex(base_reg, Reg::rcx, 8), Reg::rdx);
    }
    b.addri(Reg::rcx, 1);
    b.cmpri(Reg::rcx, elems);
    b.jcc(CondCode::kLt, prefix + "_sweep");
}

void
emitPointerChase(ProgramBuilder &b, const std::string &prefix,
                 Reg node_reg, uint32_t steps)
{
    b.movri(Reg::rcx, 0);
    b.label(prefix + "_chase");
    b.load(node_reg, MemOperand::baseDisp(node_reg, 0));
    b.addri(Reg::rcx, 1);
    b.cmpri(Reg::rcx, steps);
    b.jcc(CondCode::kLt, prefix + "_chase");
}

void
emitLockedAdd(ProgramBuilder &b, const std::string &mutex_sym,
              const std::string &var_sym)
{
    b.lock(b.symRef(mutex_sym));
    b.load(Reg::rax, b.symRef(var_sym));
    b.addri(Reg::rax, 1);
    b.store(b.symRef(var_sym), Reg::rax);
    b.unlock(b.symRef(mutex_sym));
}

void
emitRingInit(ProgramBuilder &b, const std::string &prefix,
             const std::string &ring_sym, uint32_t nodes)
{
    b.lea(Reg::r8, b.symRef(ring_sym));
    b.movri(Reg::rcx, 0);
    b.label(prefix + "_ring");
    b.lea(Reg::rdx, MemOperand::baseIndex(Reg::r8, Reg::rcx, 8, 8));
    b.store(MemOperand::baseIndex(Reg::r8, Reg::rcx, 8), Reg::rdx);
    b.addri(Reg::rcx, 1);
    b.cmpri(Reg::rcx, nodes - 1);
    b.jcc(CondCode::kLt, prefix + "_ring");
    // Close the ring.
    b.store(MemOperand::baseIndex(Reg::r8, Reg::rcx, 8), Reg::r8);
}

} // namespace prorace::workload

#include "workload/apps.hh"

#include <algorithm>

#include "support/log.hh"
#include "workload/kernels.hh"

namespace prorace::workload {

using isa::SyscallNo;

Workload
makeAppWorkload(AppProfile p)
{
    PRORACE_ASSERT(p.threads >= 1, "app needs at least one worker");
    const uint32_t items = std::max<uint32_t>(
        1, static_cast<uint32_t>(p.items * p.scale));
    const uint32_t barrier_every =
        p.barrier_every ? std::max<uint32_t>(1, p.barrier_every) : 0;

    ProgramBuilder b;
    const uint32_t ring_nodes = 64;
    b.global("mtx", 8);
    b.globalU64("shared_counter", 0);
    b.global("bar", 8);
    b.global("ring", ring_nodes * 8);
    // Streaming subjects get a fresh window per item; everything else
    // revisits one fixed window, so the arena is just that window.
    const uint32_t window = std::max<uint32_t>(p.sweep_elems, 1);
    const uint64_t arena_elems =
        p.streaming_sweep ? static_cast<uint64_t>(window) * items : window;
    b.global("arrays",
             static_cast<uint64_t>(p.threads) * arena_elems * 8);

    // main: initialize shared structures, spawn workers, join.
    b.label("main");
    emitRingInit(b, "main", "ring", ring_nodes);
    b.movri(Reg::rcx, 0);
    b.label("main_spawn");
    b.movrr(Reg::r12, Reg::rcx);
    b.spawn(Reg::rax, "worker", Reg::r12);
    b.push(Reg::rax);
    b.addri(Reg::rcx, 1);
    b.cmpri(Reg::rcx, p.threads);
    b.jcc(CondCode::kLt, "main_spawn");
    // Streaming subjects: main joins the periodic barriers too.
    // Otherwise it would sit in join() with its fork-time clock for
    // the whole run, and no worker write could ever become provably
    // quiescent (main might still read it unsynchronized) — the
    // epoch GC's clock floor would be pinned at zero. A service main
    // loop that checkpoints with its workers is also the realistic
    // shape for a long-running daemon.
    if (p.streaming_sweep && barrier_every && items / barrier_every) {
        b.movri(Reg::rcx, 0);
        b.label("main_bar");
        b.barrier(b.symRef("bar"), p.threads + 1);
        b.addri(Reg::rcx, 1);
        b.cmpri(Reg::rcx, items / barrier_every);
        b.jcc(CondCode::kLt, "main_bar");
    }
    b.movri(Reg::rcx, 0);
    b.label("main_join");
    b.pop(Reg::rax);
    b.join(Reg::rax);
    b.addri(Reg::rcx, 1);
    b.cmpri(Reg::rcx, p.threads);
    b.jcc(CondCode::kLt, "main_join");
    b.halt();

    // worker(tid in rdi)
    b.beginFunction("worker");
    b.movrr(Reg::r14, Reg::rdi);          // tid
    // r15 = arrays + tid * arena_elems * 8 (private region)
    b.lea(Reg::r15, b.symRef("arrays"));
    b.movri(Reg::rax, arena_elems * 8);
    b.alurr(AluOp::kMul, Reg::rax, Reg::r14);
    b.alurr(AluOp::kAdd, Reg::r15, Reg::rax);
    b.movri(Reg::r13, 0);                 // item counter
    b.label("worker_item");

    if (p.net_recv_cycles)
        b.syscall(SyscallNo::kNetRecv, p.net_recv_cycles);
    if (p.file_read_cycles)
        b.syscall(SyscallNo::kRead, p.file_read_cycles);

    if (p.compute_iters)
        emitComputeLoop(b, "worker_c", p.compute_iters);
    if (p.sweep_elems)
        emitArraySweep(b, "worker_s", Reg::r15, p.sweep_elems,
                       p.sweep_writes);
    if (p.chase_steps) {
        b.lea(Reg::rbx, b.symRef("ring"));
        emitPointerChase(b, "worker_p", Reg::rbx, p.chase_steps);
    }
    if (p.lib_every) {
        // Call the untraced library on a subset of items.
        b.movrr(Reg::rax, Reg::r13);
        b.aluri(AluOp::kAnd, Reg::rax, p.lib_every - 1);
        b.cmpri(Reg::rax, 0);
        b.jcc(CondCode::kNe, "worker_nolib");
        b.movrr(Reg::rdi, Reg::r15);
        b.movri(Reg::rsi, std::max<uint32_t>(p.sweep_elems, 4));
        b.call("lib_sum");
        b.label("worker_nolib");
    }
    if (p.locked_update) {
        // Shared-state updates are amortized over several items, as in
        // the real applications (per-item global locking would both
        // serialize the app and overstate sync-tracing cost).
        b.movrr(Reg::rax, Reg::r13);
        b.aluri(AluOp::kAnd, Reg::rax, 7);
        b.cmpri(Reg::rax, 7);
        b.jcc(CondCode::kNe, "worker_nolock");
        emitLockedAdd(b, "mtx", "shared_counter");
        b.label("worker_nolock");
    }
    if (barrier_every) {
        b.movrr(Reg::rax, Reg::r13);
        b.aluri(AluOp::kAnd, Reg::rax, barrier_every - 1);
        b.cmpri(Reg::rax, barrier_every - 1);
        b.jcc(CondCode::kNe, "worker_nobar");
        b.barrier(b.symRef("bar"),
                  p.threads + (p.streaming_sweep ? 1 : 0));
        b.label("worker_nobar");
    }
    if (p.net_send_cycles)
        b.syscall(SyscallNo::kNetSend, p.net_send_cycles);
    if (p.file_write_cycles)
        b.syscall(SyscallNo::kWrite, p.file_write_cycles);

    if (p.streaming_sweep)
        b.addri(Reg::r15, window * 8); // next item gets a fresh window
    b.addri(Reg::r13, 1);
    b.cmpri(Reg::r13, items);
    b.jcc(CondCode::kLt, "worker_item");
    b.halt();
    b.endFunction();

    // Library last, so the PT filter complement is a single range.
    emitLibHelpers(b);

    Workload w;
    w.name = p.name;
    w.description = p.description;
    w.program = std::make_shared<asmkit::Program>(b.build());
    w.setup = [](vm::Machine &m) { m.addThread("main"); };
    w.pt_filter = mainExecutableFilter(*w.program);
    return w;
}

std::vector<AppProfile>
parsecProfiles()
{
    // CPU-bound, no I/O; mixes chosen to model each benchmark's
    // published character (compute-, memory-, lock-, or barrier-bound).
    std::vector<AppProfile> ps;
    ps.push_back({.name = "blackscholes",
                  .description = "data-parallel option pricing",
                  .items = 260, .compute_iters = 220, .sweep_elems = 40,
                  .chase_steps = 0, .locked_update = false,
                  .barrier_every = 0, .lib_every = 2});
    ps.push_back({.name = "bodytrack",
                  .description = "computer-vision body tracking",
                  .items = 240, .compute_iters = 110, .sweep_elems = 60,
                  .chase_steps = 8, .barrier_every = 64});
    ps.push_back({.name = "canneal",
                  .description = "cache-hostile simulated annealing",
                  .items = 220, .compute_iters = 30, .sweep_elems = 12,
                  .chase_steps = 90, .lib_every = 4});
    ps.push_back({.name = "dedup",
                  .description = "pipelined compression/deduplication",
                  .items = 240, .compute_iters = 70, .sweep_elems = 90,
                  .chase_steps = 6, .lib_every = 1});
    ps.push_back({.name = "facesim",
                  .description = "physics simulation of a face",
                  .items = 200, .compute_iters = 210, .sweep_elems = 85,
                  .barrier_every = 32});
    ps.push_back({.name = "ferret",
                  .description = "content-based similarity search",
                  .items = 230, .compute_iters = 95, .sweep_elems = 55,
                  .chase_steps = 28});
    ps.push_back({.name = "fluidanimate",
                  .description = "lock-intensive fluid dynamics",
                  .items = 260, .compute_iters = 55, .sweep_elems = 45,
                  .chase_steps = 4, .barrier_every = 16});
    ps.push_back({.name = "freqmine",
                  .description = "frequent itemset mining",
                  .items = 230, .compute_iters = 150, .sweep_elems = 70,
                  .chase_steps = 18, .locked_update = false});
    ps.push_back({.name = "raytrace",
                  .description = "real-time raytracing",
                  .items = 220, .compute_iters = 190, .sweep_elems = 25,
                  .chase_steps = 36, .locked_update = false});
    ps.push_back({.name = "streamcluster",
                  .description = "barrier-synchronized online clustering",
                  .items = 256, .compute_iters = 100, .sweep_elems = 65,
                  .barrier_every = 8});
    ps.push_back({.name = "swaptions",
                  .description = "Monte-Carlo swaption pricing",
                  .items = 240, .compute_iters = 280, .sweep_elems = 30,
                  .locked_update = false, .lib_every = 4});
    ps.push_back({.name = "vips",
                  .description = "image processing pipeline",
                  .items = 230, .compute_iters = 85, .sweep_elems = 100});
    ps.push_back({.name = "x264",
                  .description = "H.264 video encoding",
                  .items = 240, .compute_iters = 115, .sweep_elems = 95,
                  .chase_steps = 10, .barrier_every = 32});
    return ps;
}

std::vector<AppProfile>
realAppProfiles()
{
    // Thread counts follow Table 1; the network-bound services hide
    // tracing overhead behind I/O waits (Fig 7), while mysql,
    // transmission, pfscan, and pbzip2 have enough CPU/file-I/O work to
    // expose it.
    std::vector<AppProfile> ps;
    ps.push_back({.name = "apache",
                  .description = "web server, ApacheBench 100K requests",
                  .threads = 4, .items = 260, .compute_iters = 75,
                  .sweep_elems = 30, .chase_steps = 6,
                  .net_recv_cycles = 9000, .net_send_cycles = 5000});
    ps.push_back({.name = "cherokee",
                  .description = "web server, 38 threads",
                  .threads = 38, .items = 30, .compute_iters = 60,
                  .sweep_elems = 24, .net_recv_cycles = 22000,
                  .net_send_cycles = 9000});
    ps.push_back({.name = "mysql",
                  .description = "database server, SysBench OLTP",
                  .threads = 20, .items = 46, .compute_iters = 150,
                  .sweep_elems = 110, .chase_steps = 40,
                  .net_recv_cycles = 2600, .net_send_cycles = 1400,
                  .file_read_cycles = 1500, .file_write_cycles = 900});
    ps.push_back({.name = "memcached",
                  .description = "in-memory KV store, YCSB",
                  .threads = 5, .items = 240, .compute_iters = 40,
                  .sweep_elems = 26, .chase_steps = 10,
                  .net_recv_cycles = 6500, .net_send_cycles = 3000});
    ps.push_back({.name = "transmission",
                  .description = "BitTorrent client, 4.48 GB file",
                  .threads = 4, .items = 210, .compute_iters = 85,
                  .sweep_elems = 95, .net_recv_cycles = 2400,
                  .file_write_cycles = 2100});
    ps.push_back({.name = "pfscan",
                  .description = "parallel file scanner, 6.8 GB",
                  .threads = 4, .items = 240, .compute_iters = 40,
                  .sweep_elems = 190, .sweep_writes = false,
                  .file_read_cycles = 1100});
    ps.push_back({.name = "pbzip2",
                  .description = "parallel bzip2, 1 GB file",
                  .threads = 4, .items = 120, .compute_iters = 520,
                  .sweep_elems = 150, .file_read_cycles = 1400,
                  .file_write_cycles = 1100});
    ps.push_back({.name = "aget",
                  .description = "parallel web downloader, 2.1 GB",
                  .threads = 4, .items = 210, .compute_iters = 30,
                  .sweep_elems = 42, .net_recv_cycles = 11000,
                  .file_write_cycles = 700});
    return ps;
}

std::vector<AppProfile>
streamingProfiles()
{
    // Fleet-service shapes (beyond the paper): every item touches a
    // fresh slice of a large arena, so the live footprint grows
    // linearly with run length. Barriers retire old slices under the
    // happens-before order, which is what lets the incremental
    // detector's epoch GC keep residency flat (fig16 Part B).
    std::vector<AppProfile> ps;
    ps.push_back({.name = "kvchurn",
                  .description = "KV service with growing live set",
                  .items = 192, .compute_iters = 20, .sweep_elems = 24,
                  .chase_steps = 0, .barrier_every = 16, .lib_every = 4,
                  .streaming_sweep = true});
    return ps;
}

namespace {

std::vector<Workload>
buildAll(std::vector<AppProfile> profiles, double scale)
{
    std::vector<Workload> out;
    for (AppProfile &p : profiles) {
        p.scale = scale;
        out.push_back(makeAppWorkload(p));
    }
    return out;
}

} // namespace

std::vector<Workload>
parsecWorkloads(double scale)
{
    return buildAll(parsecProfiles(), scale);
}

std::vector<Workload>
realAppWorkloads(double scale)
{
    return buildAll(realAppProfiles(), scale);
}

std::vector<Workload>
streamingWorkloads(double scale)
{
    return buildAll(streamingProfiles(), scale);
}

} // namespace prorace::workload

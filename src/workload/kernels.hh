/**
 * @file
 * Reusable code-generation building blocks for workload programs:
 * compute loops, array sweeps, pointer chases, locked updates, and
 * "library" helper functions (excluded from PT filters, like libc).
 */

#ifndef PRORACE_WORKLOAD_KERNELS_HH
#define PRORACE_WORKLOAD_KERNELS_HH

#include <cstdint>
#include <string>

#include "asmkit/builder.hh"

namespace prorace::workload {

using asmkit::ProgramBuilder;
using isa::AluOp;
using isa::CondCode;
using isa::MemOperand;
using isa::Reg;

/**
 * Emit the shared "library": lib_sum (checksum a region) and lib_fill
 * (fill a region). Call once per program, after all application
 * functions, so the PT filter complement stays within four ranges.
 *
 * Calling convention: rdi = pointer, rsi = length in quadwords; result
 * in rax; rcx/rdx clobbered.
 */
void emitLibHelpers(ProgramBuilder &b);

/**
 * An ALU-only inner loop of @p iters iterations; clobbers rax/rcx and
 * leaves a value in rax.
 */
void emitComputeLoop(ProgramBuilder &b, const std::string &prefix,
                     uint32_t iters);

/**
 * An ALU + stack loop whose iteration count is data-dependent:
 * bound_reg holds the bound. Clobbers rax/rcx/rdx; preserves bound_reg.
 * Real request handlers have irregular lengths; this keeps PEBS
 * counters from phase-locking onto loop structure.
 */
void emitVariableComputeLoop(ProgramBuilder &b, const std::string &prefix,
                             Reg bound_reg);

/**
 * Sequential sweep over @p elems quadwords at [base_reg]: loads each,
 * accumulates into rax, optionally writes back. Clobbers rax/rcx/rdx.
 */
void emitArraySweep(ProgramBuilder &b, const std::string &prefix,
                    Reg base_reg, uint32_t elems, bool write_back);

/**
 * Pointer chase: node_reg = [node_reg] repeated @p steps times
 * (memory-indirect accesses, the hardest case for reconstruction).
 */
void emitPointerChase(ProgramBuilder &b, const std::string &prefix,
                      Reg node_reg, uint32_t steps);

/**
 * Lock-protected read-modify-write of a shared counter:
 * lock(mutex_sym); [var_sym] += 1; unlock(mutex_sym). Clobbers rax.
 */
void emitLockedAdd(ProgramBuilder &b, const std::string &mutex_sym,
                   const std::string &var_sym);

/**
 * Initialize a ring of pointers in global data: ring[i] -> ring[i+1],
 * last -> first. Emitted inline (typically in main, before spawning).
 * Clobbers r8/rcx/rdx.
 */
void emitRingInit(ProgramBuilder &b, const std::string &prefix,
                  const std::string &ring_sym, uint32_t nodes);

} // namespace prorace::workload

#endif // PRORACE_WORKLOAD_KERNELS_HH

/**
 * @file
 * The twelve real-world data-race bugs of the paper's Table 2, rebuilt
 * as synthetic scenarios that reproduce each bug's documented racy
 * idiom and — crucially for detection probability — its addressing
 * kind:
 *
 *  - *pc relative*: an unprotected global accessed through %rip
 *    (pbzip2-0.9.5, pfscan, aget-bug2); recoverable from the PT path
 *    alone.
 *  - *register indirect*: a shared pointer loaded once per request and
 *    then live across the request's work (apache-25520, apache-45605,
 *    both cherokee bugs); recoverable whenever a sample lands in the
 *    pointer's live range.
 *  - *memory indirect*: a pointer re-loaded from memory immediately
 *    before the racy access (both remaining apache/pbzip2 bugs and all
 *    three mysql bugs); recoverable only from samples landing in the
 *    few-instruction window around the access.
 */

#ifndef PRORACE_WORKLOAD_RACYBUGS_HH
#define PRORACE_WORKLOAD_RACYBUGS_HH

#include <vector>

#include "workload/workload.hh"

namespace prorace::workload {

/** Build one racy-bug scenario by its paper identifier. */
Workload makeRacyBug(const std::string &id, double scale = 1.0);

/** All twelve Table 2 scenarios, in the paper's order. */
std::vector<Workload> racyBugWorkloads(double scale = 1.0);

/** The paper's Table 2 identifiers, in order. */
std::vector<std::string> racyBugIds();

} // namespace prorace::workload

#endif // PRORACE_WORKLOAD_RACYBUGS_HH

#include "workload/archetypes.hh"

#include <algorithm>

#include "support/log.hh"
#include "workload/kernels.hh"

namespace prorace::workload {

namespace {

uint32_t
scaledItems(uint32_t items, double scale)
{
    const auto scaled = static_cast<uint32_t>(items * scale);
    return std::max<uint32_t>(1, scaled);
}

/** rcx = &sym[index_reg], clobbering rsi. index_reg is in elements. */
void
emitElemAddr(ProgramBuilder &b, const std::string &sym, Reg index_reg,
             Reg out)
{
    b.movrr(Reg::rsi, index_reg);
    b.aluri(AluOp::kShl, Reg::rsi, 3);
    b.lea(out, b.symRef(sym));
    b.alurr(AluOp::kAdd, out, Reg::rsi);
}

} // namespace

Workload
makeMpmcQueue(unsigned threads, uint32_t items, bool racy_publish,
              double scale)
{
    // Producers and consumers are DISJOINT thread sets on purpose: a
    // thread that both produced and consumed would release its slot
    // stores into the tail acq_rel chain via its own consume ticket,
    // ordering them before every later consume — making even the plain
    // flag handshake race-free. Keeping the roles apart means the only
    // producer->consumer edge is the per-cell rel/acq flag, so the
    // "-racy" plain-flag variant races in every schedule.
    PRORACE_ASSERT(threads >= 2 && threads % 2 == 0,
                   "MPMC needs an even thread count >= 2");
    items = scaledItems(items, scale);
    const unsigned producers = threads / 2;
    const uint64_t capacity =
        static_cast<uint64_t>(producers) * items; // single-use ring

    ProgramBuilder b;
    b.global("head", 8);
    b.global("tail", 8);
    b.global("ring", capacity * 8);
    b.global("flags", capacity * 8);

    b.label("main");
    b.movri(Reg::rcx, 0);
    b.label("m_spawn_p");
    b.movrr(Reg::r12, Reg::rcx);
    b.spawn(Reg::rax, "producer", Reg::r12);
    b.push(Reg::rax);
    b.addri(Reg::rcx, 1);
    b.cmpri(Reg::rcx, producers);
    b.jcc(CondCode::kLt, "m_spawn_p");
    b.movri(Reg::rcx, 0);
    b.label("m_spawn_c");
    b.movrr(Reg::r12, Reg::rcx);
    b.spawn(Reg::rax, "consumer", Reg::r12);
    b.push(Reg::rax);
    b.addri(Reg::rcx, 1);
    b.cmpri(Reg::rcx, producers);
    b.jcc(CondCode::kLt, "m_spawn_c");
    b.movri(Reg::rcx, 0);
    b.label("m_join");
    b.pop(Reg::rax);
    b.join(Reg::rax);
    b.addri(Reg::rcx, 1);
    b.cmpri(Reg::rcx, threads);
    b.jcc(CondCode::kLt, "m_join");
    b.halt();

    // Producer: claim a head ticket, fill the slot, publish the flag.
    b.beginFunction("producer");
    b.movri(Reg::r13, 0); // iteration; doubles as the payload
    b.label("p_loop");
    b.movri(Reg::rdx, 1);
    b.atomicRmwAcqRel(AluOp::kAdd, Reg::rax, b.symRef("head"), Reg::rdx);
    emitElemAddr(b, "ring", Reg::rax, Reg::rcx);
    const uint32_t slot_store =
        b.store(MemOperand::baseDisp(Reg::rcx, 0), Reg::r13);
    emitElemAddr(b, "flags", Reg::rax, Reg::rcx);
    b.movri(Reg::r8, 1);
    const uint32_t flag_store = racy_publish
        ? b.store(MemOperand::baseDisp(Reg::rcx, 0), Reg::r8)
        : b.storeRel(MemOperand::baseDisp(Reg::rcx, 0), Reg::r8);
    emitComputeLoop(b, "p_work", 12);
    b.addri(Reg::r13, 1);
    b.cmpri(Reg::r13, items);
    b.jcc(CondCode::kLt, "p_loop");
    b.halt();
    b.endFunction();

    // Consumer: claim a tail ticket, spin until its flag is up, read.
    b.beginFunction("consumer");
    b.movri(Reg::r13, 0); // iteration
    b.label("c_loop");
    b.movri(Reg::rdx, 1);
    b.atomicRmwAcqRel(AluOp::kAdd, Reg::rax, b.symRef("tail"), Reg::rdx);
    emitElemAddr(b, "flags", Reg::rax, Reg::rcx);
    b.label("c_spin");
    const uint32_t flag_load = racy_publish
        ? b.load(Reg::r8, MemOperand::baseDisp(Reg::rcx, 0))
        : b.loadAcq(Reg::r8, MemOperand::baseDisp(Reg::rcx, 0));
    b.cmpri(Reg::r8, 0);
    b.jcc(CondCode::kEq, "c_spin");
    emitElemAddr(b, "ring", Reg::rax, Reg::rcx);
    const uint32_t slot_load =
        b.load(Reg::rax, MemOperand::baseDisp(Reg::rcx, 0));
    emitComputeLoop(b, "c_work", 12);
    b.addri(Reg::r13, 1);
    b.cmpri(Reg::r13, items);
    b.jcc(CondCode::kLt, "c_loop");
    b.halt();
    b.endFunction();
    emitLibHelpers(b);

    Workload w;
    w.name = racy_publish ? "mpmc-queue-racy" : "mpmc-queue";
    w.description = racy_publish
        ? "lock-free MPMC queue with plain (unordered) flag publication"
        : "lock-free MPMC queue over acq_rel tickets and rel/acq flags";
    w.program = std::make_shared<asmkit::Program>(b.build());
    w.setup = [](vm::Machine &m) { m.addThread("main"); };
    w.pt_filter = mainExecutableFilter(*w.program);
    if (racy_publish) {
        RacyBug slot_bug;
        slot_bug.id = w.name + "/slot";
        slot_bug.manifestation = "unpublished slot read";
        slot_bug.kind = AddressKind::kRegisterIndirect;
        slot_bug.racy_insns = {slot_store, slot_load};
        w.bugs.push_back(slot_bug);
        RacyBug flag_bug;
        flag_bug.id = w.name + "/flag";
        flag_bug.manifestation = "plain flag handshake";
        flag_bug.kind = AddressKind::kRegisterIndirect;
        flag_bug.racy_insns = {flag_store, flag_load};
        w.bugs.push_back(flag_bug);
    }
    return w;
}

Workload
makeRcuTable(unsigned threads, uint32_t items, double scale)
{
    PRORACE_ASSERT(threads >= 2, "RCU table needs >= 2 threads");
    items = scaledItems(items, scale);
    constexpr uint32_t kCells = 64;

    ProgramBuilder b;
    b.global("rcu_rw", 8);
    b.global("table", kCells * 8);
    b.global("epoch", 8);

    b.label("main");
    b.movri(Reg::rcx, 0);
    b.label("m_spawn");
    b.movrr(Reg::r12, Reg::rcx);
    b.spawn(Reg::rax, "worker", Reg::r12);
    b.push(Reg::rax);
    b.addri(Reg::rcx, 1);
    b.cmpri(Reg::rcx, threads);
    b.jcc(CondCode::kLt, "m_spawn");
    b.movri(Reg::rcx, 0);
    b.label("m_join");
    b.pop(Reg::rax);
    b.join(Reg::rax);
    b.addri(Reg::rcx, 1);
    b.cmpri(Reg::rcx, threads);
    b.jcc(CondCode::kLt, "m_join");
    b.halt();

    b.beginFunction("worker");
    b.movrr(Reg::r14, Reg::rdi); // tid
    b.movri(Reg::r13, 0);        // iteration
    b.cmpri(Reg::r14, 0);
    b.jcc(CondCode::kNe, "rdr");

    // Thread 0: the writer. Updates one cell and the epoch per grace
    // period, under the write lock.
    b.label("wrt");
    b.wrlock(b.symRef("rcu_rw"));
    b.movrr(Reg::rax, Reg::r13);
    b.aluri(AluOp::kAnd, Reg::rax, kCells - 1);
    emitElemAddr(b, "table", Reg::rax, Reg::rcx);
    b.store(MemOperand::baseDisp(Reg::rcx, 0), Reg::r13);
    b.load(Reg::rdx, b.symRef("epoch"));
    b.addri(Reg::rdx, 1);
    b.store(b.symRef("epoch"), Reg::rdx);
    b.rwunlock(b.symRef("rcu_rw"));
    emitComputeLoop(b, "wrt_gap", 24);
    b.addri(Reg::r13, 1);
    b.cmpri(Reg::r13, items);
    b.jcc(CondCode::kLt, "wrt");
    b.halt();

    // Everyone else: read-side critical sections sweeping the table.
    // Concurrent readers keep the cells' shadow state read-shared.
    b.label("rdr");
    b.rdlock(b.symRef("rcu_rw"));
    b.lea(Reg::r8, b.symRef("table"));
    emitArraySweep(b, "rdr_sweep", Reg::r8, 8, false);
    b.load(Reg::rax, b.symRef("epoch"));
    b.rwunlock(b.symRef("rcu_rw"));
    emitComputeLoop(b, "rdr_gap", 12);
    b.addri(Reg::r13, 1);
    b.cmpri(Reg::r13, items);
    b.jcc(CondCode::kLt, "rdr");
    b.halt();
    b.endFunction();
    emitLibHelpers(b);

    Workload w;
    w.name = "rcu-table";
    w.description =
        "rwlock-protected table: one writer, many concurrent readers";
    w.program = std::make_shared<asmkit::Program>(b.build());
    w.setup = [](vm::Machine &m) { m.addThread("main"); };
    w.pt_filter = mainExecutableFilter(*w.program);
    return w;
}

Workload
makeEventLoop(unsigned threads, uint32_t items, double scale)
{
    PRORACE_ASSERT(threads >= 1, "event loop needs >= 1 worker");
    items = scaledItems(items, scale);
    const uint64_t total = static_cast<uint64_t>(threads) * items;

    ProgramBuilder b;
    b.global("jobs_sem", 8);
    b.global("qlock", 8);
    b.global("qhead", 8);
    b.global("qtail", 8);
    b.global("jobs", total * 8);
    b.global("stats", 8);

    // main doubles as the dispatcher: it spawns the workers, then
    // pushes every job (ring write under the spinlock, then a post).
    b.label("main");
    b.semInit(b.symRef("jobs_sem"), 0);
    b.movri(Reg::rcx, 0);
    b.label("m_spawn");
    b.movrr(Reg::r12, Reg::rcx);
    b.spawn(Reg::rax, "worker", Reg::r12);
    b.push(Reg::rax);
    b.addri(Reg::rcx, 1);
    b.cmpri(Reg::rcx, threads);
    b.jcc(CondCode::kLt, "m_spawn");

    b.movri(Reg::r13, 0);
    b.label("m_dispatch");
    b.spinLock(b.symRef("qlock"));
    b.load(Reg::rax, b.symRef("qtail"));
    emitElemAddr(b, "jobs", Reg::rax, Reg::rcx);
    b.store(MemOperand::baseDisp(Reg::rcx, 0), Reg::r13);
    b.addri(Reg::rax, 1);
    b.store(b.symRef("qtail"), Reg::rax);
    b.spinUnlock(b.symRef("qlock"));
    b.semPost(b.symRef("jobs_sem"));
    b.addri(Reg::r13, 1);
    b.cmpri(Reg::r13, static_cast<int64_t>(total));
    b.jcc(CondCode::kLt, "m_dispatch");

    b.movri(Reg::rcx, 0);
    b.label("m_join");
    b.pop(Reg::rax);
    b.join(Reg::rax);
    b.addri(Reg::rcx, 1);
    b.cmpri(Reg::rcx, threads);
    b.jcc(CondCode::kLt, "m_join");
    b.halt();

    // Workers: wait for a job credit, pop under the spinlock (which is
    // also what orders the dispatcher's ring write before the read),
    // then simulate handling the request.
    b.beginFunction("worker");
    b.movri(Reg::r13, 0);
    b.label("w_loop");
    b.semWait(b.symRef("jobs_sem"));
    b.spinLock(b.symRef("qlock"));
    b.load(Reg::rax, b.symRef("qhead"));
    emitElemAddr(b, "jobs", Reg::rax, Reg::rcx);
    b.load(Reg::r9, MemOperand::baseDisp(Reg::rcx, 0));
    b.addri(Reg::rax, 1);
    b.store(b.symRef("qhead"), Reg::rax);
    b.load(Reg::rdx, b.symRef("stats"));
    b.addri(Reg::rdx, 1);
    b.store(b.symRef("stats"), Reg::rdx);
    b.spinUnlock(b.symRef("qlock"));
    b.aluri(AluOp::kAnd, Reg::r9, 15);
    b.addri(Reg::r9, 8);
    emitVariableComputeLoop(b, "w_handle", Reg::r9);
    b.addri(Reg::r13, 1);
    b.cmpri(Reg::r13, items);
    b.jcc(CondCode::kLt, "w_loop");
    b.halt();
    b.endFunction();
    emitLibHelpers(b);

    Workload w;
    w.name = "event-loop";
    w.description =
        "semaphore-signaled job queue behind a spinlock, N workers";
    w.program = std::make_shared<asmkit::Program>(b.build());
    w.setup = [](vm::Machine &m) { m.addThread("main"); };
    w.pt_filter = mainExecutableFilter(*w.program);
    return w;
}

Workload
makePtrDispatch(unsigned threads, uint32_t items, double scale)
{
    PRORACE_ASSERT(threads >= 1, "ptr-dispatch needs >= 1 worker");
    items = scaledItems(items, scale);
    constexpr uint32_t kHandlers = 4;
    constexpr uint32_t kBufElems = 16;

    ProgramBuilder b;
    // coeff is never stored to: a provably-immutable global. coeffp is
    // a second-level pointer whose init word is coeff's address, so a
    // handler reaches coeff through a register-indirect load — the
    // points-to layer's constant-recovery showcase.
    const uint64_t coeff_addr = b.globalU64("coeff", 0x243f6a8885a308d3ull);
    b.globalU64("coeffp", coeff_addr);
    b.global("htab", kHandlers * 8);
    b.global("fin_ptr", 8);

    // main installs the handler table at runtime (movLabel + store, the
    // pattern the blunt address-taken scan over-approximates), spawns
    // the workers, and finishes with an indirect call through fin_ptr.
    b.label("main");
    b.movLabel(Reg::rdx, "h0");
    b.store(b.symRef("htab", 0), Reg::rdx);
    b.movLabel(Reg::rdx, "h1");
    b.store(b.symRef("htab", 8), Reg::rdx);
    b.movLabel(Reg::rdx, "h2");
    b.store(b.symRef("htab", 16), Reg::rdx);
    b.movLabel(Reg::rdx, "h3");
    b.store(b.symRef("htab", 24), Reg::rdx);
    b.movLabel(Reg::rdx, "finalizer");
    b.store(b.symRef("fin_ptr"), Reg::rdx);
    b.movri(Reg::rcx, 0);
    b.label("m_spawn");
    b.movrr(Reg::r12, Reg::rcx);
    b.spawn(Reg::rax, "worker", Reg::r12);
    b.push(Reg::rax);
    b.addri(Reg::rcx, 1);
    b.cmpri(Reg::rcx, threads);
    b.jcc(CondCode::kLt, "m_spawn");
    b.movri(Reg::rcx, 0);
    b.label("m_join");
    b.pop(Reg::rax);
    b.join(Reg::rax);
    b.addri(Reg::rcx, 1);
    b.cmpri(Reg::rcx, threads);
    b.jcc(CondCode::kLt, "m_join");
    b.load(Reg::rdx, b.symRef("fin_ptr"));
    b.callind(Reg::rdx);
    b.halt();

    // Worker: malloc a private buffer, fill it before any calls, then
    // dispatch through the table. The buffer never escapes the thread,
    // so every access to it is heap-local and prunable.
    b.beginFunction("worker");
    b.movrr(Reg::r14, Reg::rdi); // tid
    b.movri(Reg::rax, kBufElems * 8);
    b.mallocCall(Reg::r15, Reg::rax);
    b.movri(Reg::rcx, 0);
    b.label("w_fill");
    b.movrr(Reg::rdx, Reg::rcx);
    b.alurr(AluOp::kAdd, Reg::rdx, Reg::r14);
    b.store(MemOperand::baseIndex(Reg::r15, Reg::rcx, 8), Reg::rdx);
    b.addri(Reg::rcx, 1);
    b.cmpri(Reg::rcx, kBufElems);
    b.jcc(CondCode::kLt, "w_fill");
    b.movri(Reg::r13, 0); // iteration
    b.label("w_loop");
    b.movrr(Reg::rax, Reg::r13);
    b.aluri(AluOp::kAnd, Reg::rax, kHandlers - 1);
    emitElemAddr(b, "htab", Reg::rax, Reg::rcx);
    b.load(Reg::rdx, MemOperand::baseDisp(Reg::rcx, 0));
    b.callind(Reg::rdx);
    emitComputeLoop(b, "w_gap", 8);
    b.addri(Reg::r13, 1);
    b.cmpri(Reg::r13, items);
    b.jcc(CondCode::kLt, "w_loop");
    b.freeCall(Reg::r15);
    b.halt();
    b.endFunction();

    // Handlers: read-only on shared state. Each loads coeff through the
    // coeffp indirection (register-indirect immutable load) and mixes
    // it with a slot of the calling thread's private buffer.
    for (uint32_t k = 0; k < kHandlers; ++k) {
        const std::string name = "h" + std::to_string(k);
        b.beginFunction(name);
        b.load(Reg::r8, b.symRef("coeffp"));
        b.load(Reg::r9, MemOperand::baseDisp(Reg::r8, 0));
        b.load(Reg::rdx,
               MemOperand::baseDisp(Reg::r15,
                                    static_cast<int64_t>(k) * 8));
        b.alurr(AluOp::kXor, Reg::rdx, Reg::r9);
        b.aluri(AluOp::kAdd, Reg::rdx, k + 1);
        b.ret();
        b.endFunction();
    }

    b.beginFunction("finalizer");
    b.load(Reg::r8, b.symRef("coeffp"));
    b.load(Reg::r9, MemOperand::baseDisp(Reg::r8, 0));
    b.aluri(AluOp::kShr, Reg::r9, 7);
    b.ret();
    b.endFunction();
    emitLibHelpers(b);

    Workload w;
    w.name = "ptr-dispatch";
    w.description =
        "indirect dispatch table over read-only handlers, private heap "
        "buffers";
    w.program = std::make_shared<asmkit::Program>(b.build());
    w.setup = [](vm::Machine &m) { m.addThread("main"); };
    w.pt_filter = mainExecutableFilter(*w.program);
    return w;
}

std::vector<std::string>
archetypeNames()
{
    return {"mpmc-queue", "mpmc-queue-racy", "rcu-table", "event-loop",
            "ptr-dispatch"};
}

bool
isArchetypeName(const std::string &name)
{
    const auto names = archetypeNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

Workload
makeArchetype(const std::string &name, double scale)
{
    if (name == "mpmc-queue")
        return makeMpmcQueue(4, 40, false, scale);
    if (name == "mpmc-queue-racy")
        return makeMpmcQueue(4, 40, true, scale);
    if (name == "rcu-table")
        return makeRcuTable(4, 60, scale);
    if (name == "event-loop")
        return makeEventLoop(3, 50, scale);
    if (name == "ptr-dispatch")
        return makePtrDispatch(3, 40, scale);
    PRORACE_ASSERT(false, "unknown archetype ", name);
    return {};
}

} // namespace prorace::workload

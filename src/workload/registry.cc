#include "workload/registry.hh"

#include "workload/apps.hh"
#include "workload/archetypes.hh"
#include "workload/racybugs.hh"

namespace prorace::workload {

std::vector<std::string>
allWorkloadNames()
{
    std::vector<std::string> names;
    for (const AppProfile &p : parsecProfiles())
        names.emplace_back(p.name);
    for (const AppProfile &p : realAppProfiles())
        names.emplace_back(p.name);
    for (const AppProfile &p : streamingProfiles())
        names.emplace_back(p.name);
    for (const std::string &name : archetypeNames())
        names.push_back(name);
    for (const std::string &id : racyBugIds())
        names.push_back(id);
    return names;
}

std::optional<Workload>
findWorkload(const std::string &name, double scale)
{
    for (AppProfile p : parsecProfiles()) {
        if (name == p.name) {
            p.scale = scale;
            return makeAppWorkload(p);
        }
    }
    for (AppProfile p : realAppProfiles()) {
        if (name == p.name) {
            p.scale = scale;
            return makeAppWorkload(p);
        }
    }
    for (AppProfile p : streamingProfiles()) {
        if (name == p.name) {
            p.scale = scale;
            return makeAppWorkload(p);
        }
    }
    if (isArchetypeName(name))
        return makeArchetype(name, scale);
    for (const std::string &id : racyBugIds()) {
        if (name == id)
            return makeRacyBug(id, scale);
    }
    return std::nullopt;
}

} // namespace prorace::workload

/**
 * @file
 * Data race reports.
 */

#ifndef PRORACE_DETECT_REPORT_HH
#define PRORACE_DETECT_REPORT_HH

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace prorace::asmkit {
class Program;
}

namespace prorace::detect {

/** How the offline phase obtained a memory access. */
enum class AccessOrigin : uint8_t {
    kSampled,     ///< directly from a PEBS record
    kForward,     ///< reconstructed by forward replay
    kBackward,    ///< reconstructed by backward replay
    kPcRelative,  ///< recovered from PC-relative addressing alone
    kOracle,      ///< ground-truth log (testing only)
    /**
     * Address derived through values the points-to layer proved
     * constant (loads from immutable globals). Appended after kOracle
     * so serialized origin bytes keep their meaning.
     */
    kConstant,
};

/** Printable origin name. */
const char *accessOriginName(AccessOrigin origin);

/** One side of a reported race. */
struct RaceAccess {
    uint32_t tid = 0;
    uint32_t insn_index = 0;
    bool is_write = false;
    uint64_t tsc = 0;
    AccessOrigin origin = AccessOrigin::kSampled;
};

/** A detected data race on one address. */
struct DataRace {
    uint64_t addr = 0;        ///< base address of the racy granule
    RaceAccess prior;         ///< the earlier access
    RaceAccess current;       ///< the later, conflicting access
};

/**
 * Accumulates races with (instruction pair) deduplication — the same
 * static race typically recurs many times in one trace.
 */
class RaceReport
{
  public:
    /** Add a race; duplicates of the same instruction pair are merged. */
    void add(const DataRace &race);

    /** All distinct races found. */
    const std::vector<DataRace> &races() const { return races_; }

    /** True when any race involves both instruction indices. */
    bool containsPair(uint32_t insn_a, uint32_t insn_b) const;

    /** True when any race involves instruction @p insn. */
    bool containsInsn(uint32_t insn) const;

    /** True when any race touches [addr, addr+size). */
    bool containsAddressRange(uint64_t addr, uint64_t size) const;

    bool empty() const { return races_.empty(); }
    size_t size() const { return races_.size(); }

    /** Render a human-readable report (with disassembly if given). */
    std::string format(const asmkit::Program *program = nullptr) const;

  private:
    std::vector<DataRace> races_;
    std::set<std::pair<uint32_t, uint32_t>> seen_pairs_;
};

} // namespace prorace::detect

#endif // PRORACE_DETECT_REPORT_HH

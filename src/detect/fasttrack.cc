#include "detect/fasttrack.hh"

#include <algorithm>
#include <utility>

#include "support/log.hh"

namespace prorace::detect {

namespace {

constexpr unsigned kGranuleShift = 3; ///< 8-byte shadow granules

uint64_t
granuleOf(uint64_t addr)
{
    return addr >> kGranuleShift;
}

} // namespace

FastTrack::FastTrack() = default;
FastTrack::~FastTrack() = default;

FastTrack::ThreadState &
FastTrack::threadState(uint32_t tid)
{
    if (tid >= Epoch::kMaxThreads) {
        // Epoch packs the tid into kTidBits bits; a larger tid would
        // silently alias another thread's epochs and corrupt detection.
        PRORACE_FATAL("thread id ", tid, " exceeds the FastTrack limit "
                      "of ", Epoch::kMaxThreads, " threads (the packed "
                      "epoch tid field is ", Epoch::kTidBits, " bits)");
    }
    if (tid >= threads_.size())
        threads_.resize(tid + 1);
    if (!threads_[tid])
        threads_[tid] = std::make_unique<ThreadState>(tid);
    return *threads_[tid];
}

VectorClock &
FastTrack::lockClock(uint64_t object)
{
    return locks_[object];
}

FastTrackStats
FastTrack::stats() const
{
    FastTrackStats s = stats_;
    s.shadow_slots = shadow_.size();
    s.shadow_capacity = shadow_.capacity();
    s.shadow_lookups = shadow_.probeStats().lookups;
    s.shadow_probe_steps = shadow_.probeStats().probe_steps;
    return s;
}

void
FastTrack::acquire(uint32_t tid, uint64_t object)
{
    ++stats_.sync_ops;
    threadState(tid).clock.join(lockClock(object));
}

void
FastTrack::release(uint32_t tid, uint64_t object)
{
    ++stats_.sync_ops;
    ThreadState &th = threadState(tid);
    lockClock(object).assign(th.clock);
    th.increment();
}

void
FastTrack::barrierEnter(uint32_t tid, uint64_t object)
{
    ++stats_.sync_ops;
    ThreadState &th = threadState(tid);
    lockClock(object).join(th.clock);
    th.increment();
}

void
FastTrack::barrierExit(uint32_t tid, uint64_t object)
{
    ++stats_.sync_ops;
    threadState(tid).clock.join(lockClock(object));
}

void
FastTrack::readLock(uint32_t tid, uint64_t object)
{
    // A reader orders only after the last writer: concurrent readers do
    // not synchronize with each other, so a racy upgrade pattern (read
    // then write under a read lock) stays visible.
    ++stats_.sync_ops;
    threadState(tid).clock.join(lockClock(object));
}

void
FastTrack::readUnlock(uint32_t tid, uint64_t object)
{
    ++stats_.sync_ops;
    ThreadState &th = threadState(tid);
    rw_read_[object].join(th.clock);
    th.increment();
}

void
FastTrack::writeLock(uint32_t tid, uint64_t object)
{
    // A writer orders after the last write unlock AND after every read
    // unlock accumulated since; this is the read-shared clock path.
    ++stats_.sync_ops;
    ThreadState &th = threadState(tid);
    th.clock.join(lockClock(object));
    if (const VectorClock *rd = rw_read_.find(object))
        th.clock.join(*rd);
}

void
FastTrack::writeUnlock(uint32_t tid, uint64_t object)
{
    ++stats_.sync_ops;
    ThreadState &th = threadState(tid);
    lockClock(object).assign(th.clock);
    th.increment();
}

void
FastTrack::semInit(uint32_t tid, uint64_t object, uint64_t value)
{
    // Initial credits carry no happens-before edge: a wait satisfied by
    // one is ordered only by whatever else orders it (e.g. fork). The
    // initializer still publishes through the fork edge to its children,
    // so no extra clock work is needed here.
    (void)tid;
    (void)value;
    ++stats_.sync_ops;
    sem_posts_[object].posts.clear();
}

void
FastTrack::semWait(uint32_t tid, uint64_t object)
{
    ++stats_.sync_ops;
    SemQueue *q = sem_posts_.find(object);
    if (!q || q->posts.empty()) {
        // Consumed an initial credit: no post to order after.
        return;
    }
    threadState(tid).clock.join(q->posts.front());
    q->posts.erase(q->posts.begin());
}

void
FastTrack::semPost(uint32_t tid, uint64_t object)
{
    ++stats_.sync_ops;
    ThreadState &th = threadState(tid);
    VectorClock snapshot;
    snapshot.assign(th.clock);
    sem_posts_[object].posts.push_back(std::move(snapshot));
    th.increment();
}

void
FastTrack::acquireRelease(uint32_t tid, uint64_t object)
{
    // An acq_rel RMW continues the release sequence: it both orders
    // after the previous release and republishes the combined clock.
    ++stats_.sync_ops;
    ThreadState &th = threadState(tid);
    VectorClock &lock = lockClock(object);
    th.clock.join(lock);
    lock.assign(th.clock);
    th.increment();
}

void
FastTrack::fork(uint32_t parent, uint32_t child)
{
    ++stats_.sync_ops;
    ThreadState &p = threadState(parent);
    threadState(child).clock.join(p.clock);
    p.increment();
}

void
FastTrack::threadExit(uint32_t tid)
{
    ++stats_.sync_ops;
    exited_[tid].assign(threadState(tid).clock);
}

void
FastTrack::join(uint32_t parent, uint32_t child)
{
    ++stats_.sync_ops;
    const VectorClock *exit_clock = exited_.find(child);
    if (!exit_clock) {
        if (child < exit_reclaimed_.size() && exit_reclaimed_[child]) {
            // The exit clock was GC'd, which is only legal once it was
            // dominated by every live clock — this join is a no-op.
            return;
        }
        warn("join of thread ", child, " with no recorded exit");
        return;
    }
    threadState(parent).clock.join(*exit_clock);
}

bool
FastTrack::threadClockFloor(const std::vector<bool> &retired,
                            VectorClock &floor) const
{
    bool any = false;
    const uint32_t width = static_cast<uint32_t>(threads_.size());
    for (const auto &th : threads_) {
        if (!th)
            continue;
        if (th->tid < retired.size() && retired[th->tid])
            continue;
        if (!any) {
            for (uint32_t t = 0; t < width; ++t)
                floor.set(t, th->clock.get(t));
            any = true;
            continue;
        }
        for (uint32_t t = 0; t < width; ++t) {
            const uint64_t v = th->clock.get(t);
            if (v < floor.get(t))
                floor.set(t, v);
        }
    }
    return any;
}

void
FastTrack::infiniteClockFloor(VectorClock &floor) const
{
    for (uint32_t t = 0; t < threads_.size(); ++t)
        floor.set(t, UINT64_MAX);
}

uint64_t
FastTrack::sweepQuiescentShadow(const VectorClock &floor)
{
    // forEach is const and erase() may shuffle probe chains, so collect
    // the dead keys first and erase in a second pass.
    std::vector<uint64_t> dead;
    shadow_.forEach([&](uint64_t granule, const VarState &var) {
        const bool write_done = var.write_epoch.isZero() ||
            var.write_epoch.happensBefore(floor);
        if (!write_done)
            return;
        const bool read_done = var.read_is_shared
            ? var.read_vc.lessOrEqual(floor)
            : (var.read_epoch.isZero() ||
               var.read_epoch.happensBefore(floor));
        if (read_done)
            dead.push_back(granule);
    });
    for (uint64_t granule : dead)
        shadow_.erase(granule);
    stats_.gc_granules_reclaimed += dead.size();
    return dead.size();
}

uint64_t
FastTrack::sweepExitedClocks(const VectorClock &floor)
{
    std::vector<uint64_t> dead;
    exited_.forEach([&](uint64_t tid, const VectorClock &clock) {
        if (clock.lessOrEqual(floor))
            dead.push_back(tid);
    });
    for (uint64_t tid : dead) {
        exited_.erase(tid);
        if (tid >= exit_reclaimed_.size())
            exit_reclaimed_.resize(tid + 1, false);
        exit_reclaimed_[tid] = true;
    }
    stats_.gc_clocks_reclaimed += dead.size();
    return dead.size();
}

void
FastTrack::allocate(uint32_t tid, uint64_t addr, uint64_t size)
{
    (void)tid;
    ++stats_.sync_ops;
    alloc_sizes_[addr] = size;
    // A fresh lifetime: discard stale shadow state so accesses to the
    // previous occupant of this address cannot be paired with accesses
    // to the new object.
    const uint64_t first = granuleOf(addr);
    const uint64_t last = granuleOf(addr + (size ? size - 1 : 0));
    for (uint64_t g = first; g <= last; ++g)
        shadow_.erase(g);
}

void
FastTrack::deallocate(uint32_t tid, uint64_t addr)
{
    (void)tid;
    ++stats_.sync_ops;
    const uint64_t *size_entry = alloc_sizes_.find(addr);
    if (!size_entry)
        return;
    const uint64_t size = *size_entry;
    alloc_sizes_.erase(addr);
    const uint64_t first = granuleOf(addr);
    const uint64_t last = granuleOf(addr + (size ? size - 1 : 0));
    for (uint64_t g = first; g <= last; ++g)
        shadow_.erase(g);
}

void
FastTrack::reportRace(const VarState &var, bool prior_is_write,
                      const MemAccess &ma, uint64_t granule_addr,
                      bool prior_plain_shared)
{
    DataRace race;
    race.addr = granule_addr;
    if (prior_is_write) {
        race.prior = var.last_write;
    } else if (var.read_is_shared) {
        race.prior = prior_plain_shared ? var.shared_plain_sample
                                        : var.shared_read_sample;
    } else {
        race.prior = var.last_read;
    }
    race.current = {ma.tid, ma.insn_index, ma.is_write, ma.tsc, ma.origin};
    report_.add(race);
}

void
FastTrack::checkRead(VarState &var, const MemAccess &ma, ThreadState &th)
{
    ++stats_.reads;

    // Same-epoch fast path.
    if (var.read_epoch == th.epoch() && !var.read_is_shared) {
        ++stats_.epoch_fast_path;
        return;
    }

    // write-read race?
    if (!var.write_epoch.isZero() &&
        !var.write_epoch.happensBefore(th.clock) &&
        !(var.write_atomic && ma.is_atomic)) {
        reportRace(var, true, ma, ma.addr & ~7ull);
    }

    const RaceAccess this_access{ma.tid, ma.insn_index, false, ma.tsc,
                                 ma.origin};
    if (var.read_is_shared) {
        const bool was_spilled = var.read_vc.usesHeap();
        var.read_vc.set(ma.tid, th.epochClock());
        if (!was_spilled && var.read_vc.usesHeap())
            ++stats_.vc_spills;
        var.shared_read_sample = this_access;
        var.read_atomic = var.read_atomic && ma.is_atomic;
        if (!ma.is_atomic) {
            var.plain_read_vc.set(ma.tid, th.epochClock());
            var.shared_plain_sample = this_access;
        }
    } else if (var.read_epoch.isZero() ||
               var.read_epoch.happensBefore(th.clock)) {
        // Reads stay totally ordered: keep the epoch representation.
        var.read_epoch = Epoch(ma.tid, th.epochClock());
        var.last_read = this_access;
        var.read_atomic = ma.is_atomic;
    } else {
        // Concurrent reads: inflate to a read vector clock.
        ++stats_.read_shares;
        var.read_is_shared = true;
        var.read_vc.clear();
        var.read_vc.set(var.read_epoch.tid(), var.read_epoch.clock());
        var.read_vc.set(ma.tid, th.epochClock());
        if (var.read_vc.usesHeap())
            ++stats_.vc_spills;
        var.shared_read_sample = this_access;
        var.plain_read_vc.clear();
        if (!var.read_atomic) {
            var.plain_read_vc.set(var.read_epoch.tid(),
                                  var.read_epoch.clock());
            var.shared_plain_sample = var.last_read;
        }
        if (!ma.is_atomic) {
            var.plain_read_vc.set(ma.tid, th.epochClock());
            var.shared_plain_sample = this_access;
        }
        var.read_atomic = var.read_atomic && ma.is_atomic;
    }
}

void
FastTrack::checkWrite(VarState &var, const MemAccess &ma, ThreadState &th)
{
    ++stats_.writes;

    if (var.write_epoch == th.epoch()) {
        ++stats_.epoch_fast_path;
        return;
    }

    // write-write race?
    if (!var.write_epoch.isZero() &&
        !var.write_epoch.happensBefore(th.clock) &&
        !(var.write_atomic && ma.is_atomic)) {
        reportRace(var, true, ma, ma.addr & ~7ull);
    }

    // read-write race? In shared mode a racing ATOMIC reader only
    // counts against a plain write; a racing PLAIN reader counts
    // against any write.
    if (var.read_is_shared) {
        const bool plain_race = !var.plain_read_vc.lessOrEqual(th.clock);
        if (plain_race ||
            (!ma.is_atomic && !var.read_vc.lessOrEqual(th.clock))) {
            reportRace(var, false, ma, ma.addr & ~7ull, plain_race);
        }
        // Writes collapse the read state back to epochs.
        var.read_is_shared = false;
        var.read_vc.clear();
        var.plain_read_vc.clear();
        var.read_epoch = Epoch();
    } else if (!var.read_epoch.isZero() &&
               !var.read_epoch.happensBefore(th.clock) &&
               !(var.read_atomic && ma.is_atomic)) {
        reportRace(var, false, ma, ma.addr & ~7ull);
    }

    var.write_epoch = Epoch(ma.tid, th.epochClock());
    var.last_write = {ma.tid, ma.insn_index, true, ma.tsc, ma.origin};
    var.write_atomic = ma.is_atomic;
}

bool
FastTrack::foldRepeats(const MemAccess &ma, uint64_t n)
{
    if (n == 0)
        return true;
    ThreadState &th = threadState(ma.tid);
    const uint64_t first = granuleOf(ma.addr);
    const uint64_t last = granuleOf(ma.addr + (ma.width ? ma.width - 1 : 0));
    // Check every granule before committing: a straddling access whose
    // granules disagree (one absorbed, one shared) falls back entirely,
    // which is always safe — re-dispatching an absorbed granule is the
    // no-op fast path.
    for (uint64_t g = first; g <= last; ++g) {
        const VarState *var = shadow_.find(g);
        const bool absorbed = var &&
            (ma.is_write
                 ? var->write_epoch == th.epoch()
                 : (!var->read_is_shared &&
                    var->read_epoch == th.epoch()));
        if (!absorbed)
            return false;
    }
    const uint64_t checks = n * (last - first + 1);
    if (ma.is_write)
        stats_.writes += checks;
    else
        stats_.reads += checks;
    stats_.epoch_fast_path += checks;
    ++stats_.run_blocks_folded;
    stats_.run_iterations_folded += n;
    return true;
}

namespace {

/** Detector checkpoint layout version (bump on any format change). */
constexpr uint32_t kFastTrackStateVersion = 2;

void
putClock(support::ByteWriter &w, const VectorClock &clock)
{
    w.u32(static_cast<uint32_t>(clock.size()));
    for (uint32_t t = 0; t < clock.size(); ++t)
        w.u64(clock.get(t));
}

bool
getClock(support::ByteReader &r, VectorClock &clock)
{
    clock.clear();
    const uint32_t n = r.u32();
    if (n > Epoch::kMaxThreads)
        return false;
    for (uint32_t t = 0; t < n; ++t)
        clock.set(t, r.u64());
    return r.ok();
}

void
putAccess(support::ByteWriter &w, const RaceAccess &a)
{
    w.u32(a.tid);
    w.u32(a.insn_index);
    w.u8(a.is_write ? 1 : 0);
    w.u64(a.tsc);
    w.u8(static_cast<uint8_t>(a.origin));
}

RaceAccess
getAccess(support::ByteReader &r)
{
    RaceAccess a;
    a.tid = r.u32();
    a.insn_index = r.u32();
    a.is_write = r.u8() != 0;
    a.tsc = r.u64();
    a.origin = static_cast<AccessOrigin>(r.u8());
    return a;
}

void
putEpoch(support::ByteWriter &w, const Epoch &e)
{
    w.u32(e.tid());
    w.u64(e.clock());
}

Epoch
getEpoch(support::ByteReader &r)
{
    const uint32_t tid = r.u32();
    const uint64_t clock = r.u64();
    return Epoch(tid, clock);
}

/** Key-sorted snapshot of a FlatMap so serialization is order-stable. */
template <typename Value>
std::vector<std::pair<uint64_t, Value>>
sortedEntries(const prorace::FlatMap<Value> &map)
{
    std::vector<std::pair<uint64_t, Value>> entries;
    entries.reserve(map.size());
    map.forEach([&](uint64_t key, const Value &value) {
        entries.emplace_back(key, value);
    });
    std::sort(entries.begin(), entries.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    return entries;
}

} // namespace

void
FastTrack::serializeState(support::ByteWriter &w) const
{
    w.u32(kFastTrackStateVersion);

    uint32_t live_threads = 0;
    for (const auto &th : threads_)
        live_threads += th ? 1 : 0;
    w.u32(live_threads);
    for (const auto &th : threads_) {
        if (!th)
            continue;
        w.u32(th->tid);
        putClock(w, th->clock);
    }

    for (const auto *map : {&locks_, &exited_, &rw_read_}) {
        const auto entries = sortedEntries(*map);
        w.u32(static_cast<uint32_t>(entries.size()));
        for (const auto &[key, clock] : entries) {
            w.u64(key);
            putClock(w, clock);
        }
    }

    const auto sems = sortedEntries(sem_posts_);
    w.u32(static_cast<uint32_t>(sems.size()));
    for (const auto &[key, queue] : sems) {
        w.u64(key);
        w.u32(static_cast<uint32_t>(queue.posts.size()));
        for (const VectorClock &clock : queue.posts)
            putClock(w, clock);
    }

    w.u32(static_cast<uint32_t>(exit_reclaimed_.size()));
    for (const bool reclaimed : exit_reclaimed_)
        w.u8(reclaimed ? 1 : 0);

    const auto shadow = sortedEntries(shadow_);
    w.u32(static_cast<uint32_t>(shadow.size()));
    for (const auto &[granule, var] : shadow) {
        w.u64(granule);
        putEpoch(w, var.write_epoch);
        putAccess(w, var.last_write);
        w.u8(var.write_atomic ? 1 : 0);
        putEpoch(w, var.read_epoch);
        putAccess(w, var.last_read);
        w.u8(var.read_atomic ? 1 : 0);
        w.u8(var.read_is_shared ? 1 : 0);
        putClock(w, var.read_vc);
        putAccess(w, var.shared_read_sample);
        putClock(w, var.plain_read_vc);
        putAccess(w, var.shared_plain_sample);
    }

    const auto allocs = sortedEntries(alloc_sizes_);
    w.u32(static_cast<uint32_t>(allocs.size()));
    for (const auto &[addr, size] : allocs) {
        w.u64(addr);
        w.u64(size);
    }

    w.u32(static_cast<uint32_t>(report_.races().size()));
    for (const DataRace &race : report_.races()) {
        w.u64(race.addr);
        putAccess(w, race.prior);
        putAccess(w, race.current);
    }

    w.u64(stats_.reads);
    w.u64(stats_.writes);
    w.u64(stats_.sync_ops);
    w.u64(stats_.epoch_fast_path);
    w.u64(stats_.read_shares);
    w.u64(stats_.vc_spills);
    w.u64(stats_.run_blocks_folded);
    w.u64(stats_.run_iterations_folded);
    w.u64(stats_.gc_granules_reclaimed);
    w.u64(stats_.gc_clocks_reclaimed);
}

bool
FastTrack::restoreState(support::ByteReader &r)
{
    // Parse the whole image into locals first; the live state is only
    // replaced once every byte checked out, so a malformed or truncated
    // checkpoint leaves the detector exactly as it was.
    if (r.u32() != kFastTrackStateVersion)
        return false;

    const uint32_t thread_count = r.u32();
    if (thread_count > Epoch::kMaxThreads)
        return false;
    std::vector<std::pair<uint32_t, VectorClock>> threads(thread_count);
    for (auto &[tid, clock] : threads) {
        tid = r.u32();
        if (tid >= Epoch::kMaxThreads || !getClock(r, clock))
            return false;
    }

    std::vector<std::pair<uint64_t, VectorClock>> locks, exited, rw_read;
    for (auto *out : {&locks, &exited, &rw_read}) {
        const uint32_t n = r.u32();
        if (!r.ok())
            return false;
        out->resize(n);
        for (auto &[key, clock] : *out) {
            key = r.u64();
            if (!getClock(r, clock))
                return false;
        }
    }

    const uint32_t sem_count = r.u32();
    if (!r.ok())
        return false;
    std::vector<std::pair<uint64_t, SemQueue>> sems(sem_count);
    for (auto &[key, queue] : sems) {
        key = r.u64();
        const uint32_t depth = r.u32();
        if (!r.ok())
            return false;
        queue.posts.resize(depth);
        for (VectorClock &clock : queue.posts)
            if (!getClock(r, clock))
                return false;
    }

    const uint32_t reclaimed_count = r.u32();
    if (reclaimed_count > Epoch::kMaxThreads)
        return false;
    std::vector<bool> reclaimed(reclaimed_count);
    for (uint32_t i = 0; i < reclaimed_count; ++i)
        reclaimed[i] = r.u8() != 0;

    const uint32_t shadow_count = r.u32();
    if (!r.ok())
        return false;
    std::vector<std::pair<uint64_t, VarState>> shadow(shadow_count);
    for (auto &[granule, var] : shadow) {
        granule = r.u64();
        var.write_epoch = getEpoch(r);
        var.last_write = getAccess(r);
        var.write_atomic = r.u8() != 0;
        var.read_epoch = getEpoch(r);
        var.last_read = getAccess(r);
        var.read_atomic = r.u8() != 0;
        var.read_is_shared = r.u8() != 0;
        if (!getClock(r, var.read_vc))
            return false;
        var.shared_read_sample = getAccess(r);
        if (!getClock(r, var.plain_read_vc))
            return false;
        var.shared_plain_sample = getAccess(r);
    }

    const uint32_t alloc_count = r.u32();
    if (!r.ok())
        return false;
    std::vector<std::pair<uint64_t, uint64_t>> allocs(alloc_count);
    for (auto &[addr, size] : allocs) {
        addr = r.u64();
        size = r.u64();
    }

    const uint32_t race_count = r.u32();
    if (!r.ok())
        return false;
    std::vector<DataRace> races(race_count);
    for (DataRace &race : races) {
        race.addr = r.u64();
        race.prior = getAccess(r);
        race.current = getAccess(r);
    }

    FastTrackStats stats;
    stats.reads = r.u64();
    stats.writes = r.u64();
    stats.sync_ops = r.u64();
    stats.epoch_fast_path = r.u64();
    stats.read_shares = r.u64();
    stats.vc_spills = r.u64();
    stats.run_blocks_folded = r.u64();
    stats.run_iterations_folded = r.u64();
    stats.gc_granules_reclaimed = r.u64();
    stats.gc_clocks_reclaimed = r.u64();
    if (!r.ok())
        return false;

    threads_.clear();
    for (auto &[tid, clock] : threads) {
        ThreadState &th = threadState(tid);
        th.clock = std::move(clock);
    }
    locks_ = {};
    for (auto &[key, clock] : locks)
        locks_[key] = std::move(clock);
    exited_ = {};
    for (auto &[tid, clock] : exited)
        exited_[tid] = std::move(clock);
    rw_read_ = {};
    for (auto &[key, clock] : rw_read)
        rw_read_[key] = std::move(clock);
    sem_posts_ = {};
    for (auto &[key, queue] : sems)
        sem_posts_[key] = std::move(queue);
    exit_reclaimed_ = std::move(reclaimed);
    shadow_ = {};
    for (auto &[granule, var] : shadow)
        shadow_[granule] = std::move(var);
    alloc_sizes_ = {};
    for (const auto &[addr, size] : allocs)
        alloc_sizes_[addr] = size;
    // Re-adding through add() rebuilds the dedup pair set exactly as
    // the original insertions did.
    report_ = RaceReport();
    for (const DataRace &race : races)
        report_.add(race);
    stats_ = stats;
    return true;
}

void
FastTrack::access(const MemAccess &ma)
{
    ThreadState &th = threadState(ma.tid);
    // An access may straddle a granule boundary; check every granule it
    // touches. Note shadow_[g] may rehash the table, so the reference
    // is re-fetched per granule and never held across iterations.
    const uint64_t first = granuleOf(ma.addr);
    const uint64_t last = granuleOf(ma.addr + (ma.width ? ma.width - 1 : 0));
    for (uint64_t g = first; g <= last; ++g) {
        VarState &var = shadow_[g];
        if (ma.is_write)
            checkWrite(var, ma, th);
        else
            checkRead(var, ma, th);
    }
}

} // namespace prorace::detect

#include "detect/fasttrack.hh"

#include "support/log.hh"

namespace prorace::detect {

namespace {

constexpr unsigned kGranuleShift = 3; ///< 8-byte shadow granules

uint64_t
granuleOf(uint64_t addr)
{
    return addr >> kGranuleShift;
}

} // namespace

/** Shadow state of one 8-byte granule. */
struct FastTrack::VarState {
    Epoch write_epoch;
    RaceAccess last_write;
    bool write_atomic = false;

    // Reads: a single epoch while totally ordered, a vector clock once
    // concurrent reads exist (the FastTrack read-share adaptation).
    Epoch read_epoch;
    RaceAccess last_read;
    bool read_atomic = true;      ///< all recorded reads were atomic
    std::unique_ptr<VectorClock> read_shared;
    RaceAccess shared_read_sample; ///< representative reader for reports
};

/** Per-thread detector state. */
struct FastTrack::ThreadState {
    explicit ThreadState(uint32_t tid) : tid(tid)
    {
        clock.set(tid, 1);
    }

    uint32_t tid;
    VectorClock clock;

    uint64_t epochClock() const { return clock.get(tid); }
    Epoch epoch() const { return Epoch(tid, epochClock()); }

    void
    increment()
    {
        clock.set(tid, epochClock() + 1);
    }
};

FastTrack::FastTrack() = default;
FastTrack::~FastTrack() = default;

FastTrack::ThreadState &
FastTrack::threadState(uint32_t tid)
{
    if (tid >= threads_.size())
        threads_.resize(tid + 1);
    if (!threads_[tid])
        threads_[tid] = std::make_unique<ThreadState>(tid);
    return *threads_[tid];
}

VectorClock &
FastTrack::lockClock(uint64_t object)
{
    return locks_[object];
}

void
FastTrack::acquire(uint32_t tid, uint64_t object)
{
    ++stats_.sync_ops;
    threadState(tid).clock.join(lockClock(object));
}

void
FastTrack::release(uint32_t tid, uint64_t object)
{
    ++stats_.sync_ops;
    ThreadState &th = threadState(tid);
    lockClock(object).assign(th.clock);
    th.increment();
}

void
FastTrack::barrierEnter(uint32_t tid, uint64_t object)
{
    ++stats_.sync_ops;
    ThreadState &th = threadState(tid);
    lockClock(object).join(th.clock);
    th.increment();
}

void
FastTrack::barrierExit(uint32_t tid, uint64_t object)
{
    ++stats_.sync_ops;
    threadState(tid).clock.join(lockClock(object));
}

void
FastTrack::fork(uint32_t parent, uint32_t child)
{
    ++stats_.sync_ops;
    ThreadState &p = threadState(parent);
    threadState(child).clock.join(p.clock);
    p.increment();
}

void
FastTrack::threadExit(uint32_t tid)
{
    ++stats_.sync_ops;
    exited_[tid].assign(threadState(tid).clock);
}

void
FastTrack::join(uint32_t parent, uint32_t child)
{
    ++stats_.sync_ops;
    auto it = exited_.find(child);
    if (it == exited_.end()) {
        warn("join of thread ", child, " with no recorded exit");
        return;
    }
    threadState(parent).clock.join(it->second);
}

void
FastTrack::allocate(uint32_t tid, uint64_t addr, uint64_t size)
{
    (void)tid;
    ++stats_.sync_ops;
    alloc_sizes_[addr] = size;
    // A fresh lifetime: discard stale shadow state so accesses to the
    // previous occupant of this address cannot be paired with accesses
    // to the new object.
    const uint64_t first = granuleOf(addr);
    const uint64_t last = granuleOf(addr + (size ? size - 1 : 0));
    shadow_.erase(shadow_.lower_bound(first), shadow_.upper_bound(last));
}

void
FastTrack::deallocate(uint32_t tid, uint64_t addr)
{
    (void)tid;
    ++stats_.sync_ops;
    auto it = alloc_sizes_.find(addr);
    if (it == alloc_sizes_.end())
        return;
    const uint64_t size = it->second;
    alloc_sizes_.erase(it);
    const uint64_t first = granuleOf(addr);
    const uint64_t last = granuleOf(addr + (size ? size - 1 : 0));
    shadow_.erase(shadow_.lower_bound(first), shadow_.upper_bound(last));
}

void
FastTrack::reportRace(const VarState &var, bool prior_is_write,
                      const MemAccess &ma, uint64_t granule_addr)
{
    DataRace race;
    race.addr = granule_addr;
    if (prior_is_write) {
        race.prior = var.last_write;
    } else {
        race.prior = var.read_shared ? var.shared_read_sample
                                     : var.last_read;
    }
    race.current = {ma.tid, ma.insn_index, ma.is_write, ma.tsc, ma.origin};
    report_.add(race);
}

void
FastTrack::checkRead(VarState &var, const MemAccess &ma, ThreadState &th)
{
    ++stats_.reads;

    // Same-epoch fast path.
    if (var.read_epoch == th.epoch() && !var.read_shared) {
        ++stats_.epoch_fast_path;
        return;
    }

    // write-read race?
    if (!var.write_epoch.isZero() &&
        !var.write_epoch.happensBefore(th.clock) &&
        !(var.write_atomic && ma.is_atomic)) {
        reportRace(var, true, ma, ma.addr & ~7ull);
    }

    const RaceAccess this_access{ma.tid, ma.insn_index, false, ma.tsc,
                                 ma.origin};
    if (var.read_shared) {
        var.read_shared->set(ma.tid, th.epochClock());
        var.shared_read_sample = this_access;
        var.read_atomic = var.read_atomic && ma.is_atomic;
    } else if (var.read_epoch.isZero() ||
               var.read_epoch.happensBefore(th.clock)) {
        // Reads stay totally ordered: keep the epoch representation.
        var.read_epoch = Epoch(ma.tid, th.epochClock());
        var.last_read = this_access;
        var.read_atomic = ma.is_atomic;
    } else {
        // Concurrent reads: inflate to a read vector clock.
        ++stats_.read_shares;
        var.read_shared = std::make_unique<VectorClock>();
        var.read_shared->set(var.read_epoch.tid(), var.read_epoch.clock());
        var.read_shared->set(ma.tid, th.epochClock());
        var.shared_read_sample = this_access;
        var.read_atomic = var.read_atomic && ma.is_atomic;
    }
}

void
FastTrack::checkWrite(VarState &var, const MemAccess &ma, ThreadState &th)
{
    ++stats_.writes;

    if (var.write_epoch == th.epoch()) {
        ++stats_.epoch_fast_path;
        return;
    }

    // write-write race?
    if (!var.write_epoch.isZero() &&
        !var.write_epoch.happensBefore(th.clock) &&
        !(var.write_atomic && ma.is_atomic)) {
        reportRace(var, true, ma, ma.addr & ~7ull);
    }

    // read-write race?
    if (var.read_shared) {
        if (!var.read_shared->lessOrEqual(th.clock) &&
            !(var.read_atomic && ma.is_atomic)) {
            reportRace(var, false, ma, ma.addr & ~7ull);
        }
        // Writes collapse the read state back to epochs.
        var.read_shared.reset();
        var.read_epoch = Epoch();
    } else if (!var.read_epoch.isZero() &&
               !var.read_epoch.happensBefore(th.clock) &&
               !(var.read_atomic && ma.is_atomic)) {
        reportRace(var, false, ma, ma.addr & ~7ull);
    }

    var.write_epoch = Epoch(ma.tid, th.epochClock());
    var.last_write = {ma.tid, ma.insn_index, true, ma.tsc, ma.origin};
    var.write_atomic = ma.is_atomic;
}

void
FastTrack::access(const MemAccess &ma)
{
    ThreadState &th = threadState(ma.tid);
    // An access may straddle a granule boundary; check every granule it
    // touches.
    const uint64_t first = granuleOf(ma.addr);
    const uint64_t last = granuleOf(ma.addr + (ma.width ? ma.width - 1 : 0));
    for (uint64_t g = first; g <= last; ++g) {
        VarState &var = shadow_[g];
        if (ma.is_write)
            checkWrite(var, ma, th);
        else
            checkRead(var, ma, th);
    }
}

} // namespace prorace::detect

#include "detect/report.hh"

#include <algorithm>
#include <sstream>

#include "asmkit/program.hh"
#include "isa/disasm.hh"

namespace prorace::detect {

const char *
accessOriginName(AccessOrigin origin)
{
    switch (origin) {
      case AccessOrigin::kSampled:    return "sampled";
      case AccessOrigin::kForward:    return "forward-replay";
      case AccessOrigin::kBackward:   return "backward-replay";
      case AccessOrigin::kPcRelative: return "pc-relative";
      case AccessOrigin::kOracle:     return "oracle";
      case AccessOrigin::kConstant:   return "constant";
    }
    return "?";
}

void
RaceReport::add(const DataRace &race)
{
    const auto key = std::minmax(race.prior.insn_index,
                                 race.current.insn_index);
    if (!seen_pairs_.insert({key.first, key.second}).second)
        return;
    races_.push_back(race);
}

bool
RaceReport::containsPair(uint32_t insn_a, uint32_t insn_b) const
{
    const auto key = std::minmax(insn_a, insn_b);
    return seen_pairs_.count({key.first, key.second}) > 0;
}

bool
RaceReport::containsInsn(uint32_t insn) const
{
    for (const DataRace &r : races_) {
        if (r.prior.insn_index == insn || r.current.insn_index == insn)
            return true;
    }
    return false;
}

bool
RaceReport::containsAddressRange(uint64_t addr, uint64_t size) const
{
    for (const DataRace &r : races_) {
        if (r.addr >= addr && r.addr < addr + size)
            return true;
    }
    return false;
}

std::string
RaceReport::format(const asmkit::Program *program) const
{
    std::ostringstream os;
    os << "==== ProRace: " << races_.size() << " data race(s) ====\n";
    for (size_t i = 0; i < races_.size(); ++i) {
        const DataRace &r = races_[i];
        os << "race #" << i << " on address 0x" << std::hex << r.addr
           << std::dec;
        if (program) {
            if (auto sym = program->symbolCovering(r.addr))
                os << " (" << *sym << ")";
        }
        os << "\n";
        for (const RaceAccess *a : {&r.prior, &r.current}) {
            os << "  " << (a->is_write ? "write" : "read ") << " by thread "
               << a->tid << " at #" << a->insn_index;
            if (program) {
                os << ": "
                   << isa::disassemble(program->insnAt(a->insn_index));
            }
            os << "  [" << accessOriginName(a->origin) << ", tsc "
               << a->tsc << "]\n";
        }
    }
    return os.str();
}

} // namespace prorace::detect

#include "detect/vector_clock.hh"

#include <algorithm>
#include <sstream>

namespace prorace::detect {

void
VectorClock::growTo(uint32_t n)
{
    if (n <= size_)
        return;
    if (n > cap_) {
        // Geometric growth keeps repeated set() of ascending tids O(1)
        // amortized; the clock never shrinks while alive.
        uint32_t new_cap = cap_;
        while (new_cap < n)
            new_cap *= 2;
        uint64_t *fresh = new uint64_t[new_cap];
        std::copy(data(), data() + size_, fresh);
        delete[] heap_;
        heap_ = fresh;
        cap_ = new_cap;
    }
    std::fill(data() + size_, data() + n, 0);
    size_ = n;
}

void
VectorClock::set(uint32_t tid, uint64_t value)
{
    growTo(tid + 1);
    data()[tid] = value;
}

void
VectorClock::join(const VectorClock &other)
{
    growTo(static_cast<uint32_t>(other.size_));
    uint64_t *mine = data();
    const uint64_t *theirs = other.data();
    for (uint32_t i = 0; i < other.size_; ++i)
        mine[i] = std::max(mine[i], theirs[i]);
}

void
VectorClock::assign(const VectorClock &other)
{
    if (this == &other)
        return;
    growTo(other.size_); // ensures capacity; may also raise size_
    std::copy(other.data(), other.data() + other.size_, data());
    size_ = other.size_; // shrink back if we were larger
}

bool
VectorClock::lessOrEqual(const VectorClock &other) const
{
    const uint64_t *mine = data();
    const uint64_t *theirs = other.data();
    const uint32_t common = std::min(size_, other.size_);
    for (uint32_t i = 0; i < common; ++i) {
        if (mine[i] > theirs[i])
            return false;
    }
    for (uint32_t i = common; i < size_; ++i) {
        if (mine[i] > 0)
            return false;
    }
    return true;
}

std::string
VectorClock::toString() const
{
    std::ostringstream os;
    os << "[";
    for (uint32_t i = 0; i < size_; ++i) {
        if (i)
            os << " ";
        os << "t" << i << ":" << data()[i];
    }
    os << "]";
    return os.str();
}

void
VectorClock::copyFrom(const VectorClock &other)
{
    if (other.heap_) {
        heap_ = new uint64_t[other.cap_];
        cap_ = other.cap_;
        std::copy(other.heap_, other.heap_ + other.size_, heap_);
    } else {
        std::copy(other.small_, other.small_ + kInlineComponents, small_);
    }
    size_ = other.size_;
}

void
VectorClock::moveFrom(VectorClock &other) noexcept
{
    if (other.heap_) {
        heap_ = other.heap_;
        cap_ = other.cap_;
        other.heap_ = nullptr;
    } else {
        std::copy(other.small_, other.small_ + kInlineComponents, small_);
    }
    size_ = other.size_;
    other.reset();
}

} // namespace prorace::detect

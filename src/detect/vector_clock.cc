#include "detect/vector_clock.hh"

#include <algorithm>
#include <sstream>

namespace prorace::detect {

uint64_t
VectorClock::get(uint32_t tid) const
{
    if (tid >= clocks_.size())
        return 0;
    return clocks_[tid];
}

void
VectorClock::set(uint32_t tid, uint64_t value)
{
    if (tid >= clocks_.size())
        clocks_.resize(tid + 1, 0);
    clocks_[tid] = value;
}

void
VectorClock::join(const VectorClock &other)
{
    if (other.clocks_.size() > clocks_.size())
        clocks_.resize(other.clocks_.size(), 0);
    for (size_t i = 0; i < other.clocks_.size(); ++i)
        clocks_[i] = std::max(clocks_[i], other.clocks_[i]);
}

void
VectorClock::assign(const VectorClock &other)
{
    clocks_ = other.clocks_;
}

bool
VectorClock::lessOrEqual(const VectorClock &other) const
{
    for (size_t i = 0; i < clocks_.size(); ++i) {
        if (clocks_[i] > other.get(static_cast<uint32_t>(i)))
            return false;
    }
    return true;
}

std::string
VectorClock::toString() const
{
    std::ostringstream os;
    os << "[";
    for (size_t i = 0; i < clocks_.size(); ++i) {
        if (i)
            os << " ";
        os << "t" << i << ":" << clocks_[i];
    }
    os << "]";
    return os.str();
}

} // namespace prorace::detect

/**
 * @file
 * Streaming FastTrack with epoch-based garbage collection.
 *
 * The one-shot detector's shadow table grows with the number of
 * distinct granules ever touched and its exited-clock table with the
 * number of threads ever created — fine for a single trace, fatal for
 * a long-running analysis service that replays an unbounded stream of
 * windows. IncrementalFastTrack wraps the flat-table FastTrack with
 * the bookkeeping needed to reclaim state that can provably never race
 * again:
 *
 *   - The *floor* is the pointwise minimum of every live thread's
 *     vector clock. Shadow state (write epoch + read epoch/clock) at
 *     or below the floor happens-before every possible future access,
 *     because clocks only grow and a new thread inherits a live
 *     parent's clock at its fork edge. Sweeping such state cannot
 *     change any future race check, so the report is byte-identical
 *     with GC on or off.
 *   - A thread leaves the floor only once it is *retired*: its exit
 *     event has been processed and the feed frontier has advanced
 *     strictly past the exit's timestamp, so no same-TSC stragglers of
 *     that thread can still arrive.
 *   - GC is *gated* until every expected initial thread (declared via
 *     requireThread(), typically from the trace meta's thread table)
 *     has produced an event or been forked: a thread that has not yet
 *     appeared would start with a fresh low clock and could still race
 *     with arbitrarily old state, so nothing may be swept before the
 *     thread population is fully known. If an expected thread never
 *     appears (e.g. its records were lost), GC simply never runs and
 *     the wrapper degrades to plain unbounded FastTrack — conservative
 *     and still report-identical.
 *
 * Callers drive it exactly like FastTrack (it exposes the same event
 * methods, so core's dispatch routine is shared) plus one extra call:
 * batchBoundary(frontier_tsc) after each completed batch of feed
 * events, which is where retirement and sweeping happen.
 */

#ifndef PRORACE_DETECT_INCREMENTAL_HH
#define PRORACE_DETECT_INCREMENTAL_HH

#include <cstdint>
#include <vector>

#include "detect/fasttrack.hh"

namespace prorace::detect {

/** Streaming-detection knobs (core::OfflineOptions embeds one). */
struct IncrementalOptions {
    /** Use the streaming detector in the offline pipeline at all. */
    bool enabled = false;

    /**
     * Sweep quiescent state at batch boundaries. Disable (keeping the
     * batching) when the sync stream is known lossy: a lost spawn
     * record could make a thread appear without a fork edge, and only
     * an unswept table reproduces the one-shot report then.
     */
    bool enable_gc = true;

    /** Feed events per batch between batchBoundary() calls. */
    uint64_t batch_events = 8192;

    /** Minimum events between sweeps (bounds the O(table) scan cost). */
    uint64_t gc_min_events = 2048;
};

/** Streaming-detector observability counters. */
struct IncrementalStats {
    uint64_t events = 0;          ///< accesses + sync ops dispatched
    uint64_t batches = 0;         ///< batchBoundary() calls
    uint64_t gc_sweeps = 0;       ///< sweeps actually run
    uint64_t gc_gated = 0;        ///< sweeps skipped: initial tids unseen
    uint64_t granules_reclaimed = 0;
    uint64_t clocks_reclaimed = 0;
    uint64_t peak_live_granules = 0; ///< max shadow size at any boundary
    uint64_t peak_live_clocks = 0;   ///< max exited-clock count likewise

    void
    merge(const IncrementalStats &other)
    {
        events += other.events;
        batches += other.batches;
        gc_sweeps += other.gc_sweeps;
        gc_gated += other.gc_gated;
        granules_reclaimed += other.granules_reclaimed;
        clocks_reclaimed += other.clocks_reclaimed;
        // Peaks are resident-memory bounds: the fleet-wide bound is the
        // sum of the per-instance bounds (instances coexist).
        peak_live_granules += other.peak_live_granules;
        peak_live_clocks += other.peak_live_clocks;
    }
};

/** FastTrack over an unbounded stream, with bounded resident state. */
class IncrementalFastTrack
{
  public:
    explicit IncrementalFastTrack(const IncrementalOptions &options = {});

    /**
     * Declare a thread that must be seen before any GC: the gating
     * described above. Call once per tid in the trace meta before
     * feeding events.
     */
    void requireThread(uint32_t tid);

    // --- the FastTrack event surface (shared dispatch) ---

    void
    acquire(uint32_t tid, uint64_t object)
    {
        note(tid);
        ft_.acquire(tid, object);
    }

    void
    release(uint32_t tid, uint64_t object)
    {
        note(tid);
        ft_.release(tid, object);
    }

    void
    barrierEnter(uint32_t tid, uint64_t object)
    {
        note(tid);
        ft_.barrierEnter(tid, object);
    }

    void
    barrierExit(uint32_t tid, uint64_t object)
    {
        note(tid);
        ft_.barrierExit(tid, object);
    }

    void
    readLock(uint32_t tid, uint64_t object)
    {
        note(tid);
        ft_.readLock(tid, object);
    }

    void
    readUnlock(uint32_t tid, uint64_t object)
    {
        note(tid);
        ft_.readUnlock(tid, object);
    }

    void
    writeLock(uint32_t tid, uint64_t object)
    {
        note(tid);
        ft_.writeLock(tid, object);
    }

    void
    writeUnlock(uint32_t tid, uint64_t object)
    {
        note(tid);
        ft_.writeUnlock(tid, object);
    }

    void
    semInit(uint32_t tid, uint64_t object, uint64_t value)
    {
        note(tid);
        ft_.semInit(tid, object, value);
    }

    void
    semWait(uint32_t tid, uint64_t object)
    {
        note(tid);
        ft_.semWait(tid, object);
    }

    void
    semPost(uint32_t tid, uint64_t object)
    {
        note(tid);
        ft_.semPost(tid, object);
    }

    void
    acquireRelease(uint32_t tid, uint64_t object)
    {
        note(tid);
        ft_.acquireRelease(tid, object);
    }

    void
    fork(uint32_t parent, uint32_t child)
    {
        note(parent);
        note(child);
        ft_.fork(parent, child);
    }

    void
    threadExit(uint32_t tid, uint64_t tsc)
    {
        note(tid);
        if (tid >= exit_tsc_.size())
            exit_tsc_.resize(tid + 1, 0);
        exit_tsc_[tid] = tsc;
        exited_pending_ = true;
        ft_.threadExit(tid);
    }

    void
    join(uint32_t parent, uint32_t child)
    {
        note(parent);
        ft_.join(parent, child);
    }

    void
    allocate(uint32_t tid, uint64_t addr, uint64_t size)
    {
        note(tid);
        ft_.allocate(tid, addr, size);
    }

    void
    deallocate(uint32_t tid, uint64_t addr)
    {
        note(tid);
        ft_.deallocate(tid, addr);
    }

    void
    access(const MemAccess &ma)
    {
        note(ma.tid);
        ft_.access(ma);
    }

    /**
     * FastTrack::foldRepeats with streaming bookkeeping: folded
     * iterations count toward the event total (and thus batch pacing)
     * exactly as if they had been dispatched one by one. The thread was
     * already noted by the preceding dispatched iteration, so gating
     * and liveness need no update.
     */
    bool
    foldRepeats(const MemAccess &ma, uint64_t n)
    {
        if (!ft_.foldRepeats(ma, n))
            return false;
        inc_.events += n;
        return true;
    }

    // --- streaming control ---

    /**
     * A batch of feed events is complete and every later event has
     * tsc >= @p frontier_tsc: retire threads whose exit is strictly
     * before the frontier, then sweep quiescent state if GC is
     * enabled, ungated, and due.
     */
    void batchBoundary(uint64_t frontier_tsc);

    /**
     * End of stream: a final unconditional boundary (with an infinite
     * frontier, so every exited thread retires) that settles the peak
     * counters. The report is valid without calling this; it only
     * completes the statistics.
     */
    void finish();

    // --- checkpoint serialization (service warm-start) ---
    //
    // The wrapped FastTrack state plus the streaming bookkeeping
    // (seen/required/retired sets, exit TSCs, event counters) round-trip
    // through a byte stream, so an analysis interrupted at a batch
    // boundary can resume on a fresh instance and still produce a report
    // byte-identical to an uninterrupted run. Options are NOT part of
    // the state: the restoring instance keeps its own configuration
    // (batch pacing may then differ, which only moves GC boundaries —
    // reports are GC-invariant by the floor argument above).

    /** Append wrapper + detector state to @p w. */
    void serializeState(support::ByteWriter &w) const;

    /**
     * Replace all state with a previously serialized image. Returns
     * false — leaving this instance unchanged — on malformed bytes.
     */
    bool restoreState(support::ByteReader &r);

    const RaceReport &report() const { return ft_.report(); }
    RaceReport &report() { return ft_.report(); }
    FastTrackStats stats() const { return ft_.stats(); }
    const IncrementalStats &incrementalStats() const { return inc_; }
    const IncrementalOptions &options() const { return options_; }

    /** Live shadow granules right now (memory-bound assertions). */
    uint64_t liveGranules() const { return ft_.liveGranuleCount(); }

    /** All required initial threads have appeared; GC may run. */
    bool
    gcUngated() const
    {
        return required_unseen_ == 0;
    }

  private:
    /** Record that @p tid produced an event (gating + liveness). */
    void
    note(uint32_t tid)
    {
        ++inc_.events;
        if (tid >= seen_.size())
            seen_.resize(tid + 1, false);
        if (!seen_[tid]) {
            seen_[tid] = true;
            if (tid < required_.size() && required_[tid])
                --required_unseen_;
        }
    }

    void sweep();

    FastTrack ft_;
    IncrementalOptions options_;
    IncrementalStats inc_;
    std::vector<bool> seen_;     ///< tid has produced any event
    std::vector<bool> required_; ///< tids gating GC
    std::vector<bool> retired_;  ///< exited and past the feed frontier
    std::vector<uint64_t> exit_tsc_; ///< 0 = not exited
    uint64_t required_unseen_ = 0;
    uint64_t events_at_last_gc_ = 0;
    bool exited_pending_ = false; ///< exits not yet retired exist
};

} // namespace prorace::detect

#endif // PRORACE_DETECT_INCREMENTAL_HH

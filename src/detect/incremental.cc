#include "detect/incremental.hh"

#include <algorithm>
#include <limits>

namespace prorace::detect {

IncrementalFastTrack::IncrementalFastTrack(const IncrementalOptions &options)
    : options_(options)
{
}

void
IncrementalFastTrack::requireThread(uint32_t tid)
{
    if (tid >= required_.size())
        required_.resize(tid + 1, false);
    if (required_[tid])
        return;
    required_[tid] = true;
    if (!(tid < seen_.size() && seen_[tid]))
        ++required_unseen_;
}

void
IncrementalFastTrack::batchBoundary(uint64_t frontier_tsc)
{
    ++inc_.batches;

    // Retire exited threads the feed has moved strictly past: ties at
    // the frontier TSC may still have unprocessed same-TSC events of
    // that thread in the next batch, so they stay live until then.
    if (exited_pending_) {
        bool still_pending = false;
        if (retired_.size() < exit_tsc_.size())
            retired_.resize(exit_tsc_.size(), false);
        for (uint32_t tid = 0; tid < exit_tsc_.size(); ++tid) {
            if (retired_[tid] || exit_tsc_[tid] == 0)
                continue;
            if (exit_tsc_[tid] < frontier_tsc)
                retired_[tid] = true;
            else
                still_pending = true;
        }
        exited_pending_ = still_pending;
    }

    inc_.peak_live_granules =
        std::max(inc_.peak_live_granules, ft_.liveGranuleCount());
    inc_.peak_live_clocks =
        std::max(inc_.peak_live_clocks, ft_.exitedClockCount());

    if (!options_.enable_gc)
        return;
    if (inc_.events - events_at_last_gc_ < options_.gc_min_events)
        return;
    if (required_unseen_ != 0) {
        ++inc_.gc_gated;
        return;
    }
    sweep();
    events_at_last_gc_ = inc_.events;
}

void
IncrementalFastTrack::sweep()
{
    // No live thread left means no legal future event at all (any new
    // thread would need a fork edge from a live one, and the required
    // initial threads have all been seen): everything is quiescent.
    // Model that as an infinite floor rather than skipping the sweep.
    VectorClock floor;
    const bool any_live = ft_.threadClockFloor(retired_, floor);
    if (!any_live)
        ft_.infiniteClockFloor(floor);
    ++inc_.gc_sweeps;
    inc_.granules_reclaimed += ft_.sweepQuiescentShadow(floor);
    inc_.clocks_reclaimed += ft_.sweepExitedClocks(floor);
}

void
IncrementalFastTrack::finish()
{
    batchBoundary(std::numeric_limits<uint64_t>::max());
}

} // namespace prorace::detect

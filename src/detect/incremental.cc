#include "detect/incremental.hh"

#include <algorithm>
#include <limits>

namespace prorace::detect {

IncrementalFastTrack::IncrementalFastTrack(const IncrementalOptions &options)
    : options_(options)
{
}

void
IncrementalFastTrack::requireThread(uint32_t tid)
{
    if (tid >= required_.size())
        required_.resize(tid + 1, false);
    if (required_[tid])
        return;
    required_[tid] = true;
    if (!(tid < seen_.size() && seen_[tid]))
        ++required_unseen_;
}

void
IncrementalFastTrack::batchBoundary(uint64_t frontier_tsc)
{
    ++inc_.batches;

    // Retire exited threads the feed has moved strictly past: ties at
    // the frontier TSC may still have unprocessed same-TSC events of
    // that thread in the next batch, so they stay live until then.
    if (exited_pending_) {
        bool still_pending = false;
        if (retired_.size() < exit_tsc_.size())
            retired_.resize(exit_tsc_.size(), false);
        for (uint32_t tid = 0; tid < exit_tsc_.size(); ++tid) {
            if (retired_[tid] || exit_tsc_[tid] == 0)
                continue;
            if (exit_tsc_[tid] < frontier_tsc)
                retired_[tid] = true;
            else
                still_pending = true;
        }
        exited_pending_ = still_pending;
    }

    inc_.peak_live_granules =
        std::max(inc_.peak_live_granules, ft_.liveGranuleCount());
    inc_.peak_live_clocks =
        std::max(inc_.peak_live_clocks, ft_.exitedClockCount());

    if (!options_.enable_gc)
        return;
    if (inc_.events - events_at_last_gc_ < options_.gc_min_events)
        return;
    if (required_unseen_ != 0) {
        ++inc_.gc_gated;
        return;
    }
    sweep();
    events_at_last_gc_ = inc_.events;
}

void
IncrementalFastTrack::sweep()
{
    // No live thread left means no legal future event at all (any new
    // thread would need a fork edge from a live one, and the required
    // initial threads have all been seen): everything is quiescent.
    // Model that as an infinite floor rather than skipping the sweep.
    VectorClock floor;
    const bool any_live = ft_.threadClockFloor(retired_, floor);
    if (!any_live)
        ft_.infiniteClockFloor(floor);
    ++inc_.gc_sweeps;
    inc_.granules_reclaimed += ft_.sweepQuiescentShadow(floor);
    inc_.clocks_reclaimed += ft_.sweepExitedClocks(floor);
}

void
IncrementalFastTrack::finish()
{
    batchBoundary(std::numeric_limits<uint64_t>::max());
}

namespace {

constexpr uint32_t kIncrementalStateVersion = 1;

void
putBools(support::ByteWriter &w, const std::vector<bool> &bits)
{
    w.u32(static_cast<uint32_t>(bits.size()));
    for (const bool bit : bits)
        w.u8(bit ? 1 : 0);
}

bool
getBools(support::ByteReader &r, std::vector<bool> &bits)
{
    const uint32_t n = r.u32();
    if (n > Epoch::kMaxThreads)
        return false;
    bits.assign(n, false);
    for (uint32_t i = 0; i < n; ++i)
        bits[i] = r.u8() != 0;
    return r.ok();
}

} // namespace

void
IncrementalFastTrack::serializeState(support::ByteWriter &w) const
{
    w.u32(kIncrementalStateVersion);
    w.u64(inc_.events);
    w.u64(inc_.batches);
    w.u64(inc_.gc_sweeps);
    w.u64(inc_.gc_gated);
    w.u64(inc_.granules_reclaimed);
    w.u64(inc_.clocks_reclaimed);
    w.u64(inc_.peak_live_granules);
    w.u64(inc_.peak_live_clocks);
    putBools(w, seen_);
    putBools(w, required_);
    putBools(w, retired_);
    w.u32(static_cast<uint32_t>(exit_tsc_.size()));
    for (const uint64_t tsc : exit_tsc_)
        w.u64(tsc);
    w.u64(required_unseen_);
    w.u64(events_at_last_gc_);
    w.u8(exited_pending_ ? 1 : 0);
    // The detector core goes last so restore can parse every wrapper
    // field into locals before the one commit point.
    ft_.serializeState(w);
}

bool
IncrementalFastTrack::restoreState(support::ByteReader &r)
{
    if (r.u32() != kIncrementalStateVersion)
        return false;
    IncrementalStats inc;
    inc.events = r.u64();
    inc.batches = r.u64();
    inc.gc_sweeps = r.u64();
    inc.gc_gated = r.u64();
    inc.granules_reclaimed = r.u64();
    inc.clocks_reclaimed = r.u64();
    inc.peak_live_granules = r.u64();
    inc.peak_live_clocks = r.u64();
    std::vector<bool> seen, required, retired;
    if (!getBools(r, seen) || !getBools(r, required) ||
        !getBools(r, retired))
        return false;
    const uint32_t exits = r.u32();
    if (exits > Epoch::kMaxThreads || !r.ok())
        return false;
    std::vector<uint64_t> exit_tsc(exits);
    for (uint64_t &tsc : exit_tsc)
        tsc = r.u64();
    const uint64_t required_unseen = r.u64();
    const uint64_t events_at_last_gc = r.u64();
    const bool exited_pending = r.u8() != 0;
    if (!r.ok())
        return false;
    // Single commit point: the core detector restore is itself
    // transactional, and every wrapper field is already parsed.
    if (!ft_.restoreState(r))
        return false;

    inc_ = inc;
    seen_ = std::move(seen);
    required_ = std::move(required);
    retired_ = std::move(retired);
    exit_tsc_ = std::move(exit_tsc);
    required_unseen_ = required_unseen;
    events_at_last_gc_ = events_at_last_gc;
    exited_pending_ = exited_pending;
    return true;
}

} // namespace prorace::detect

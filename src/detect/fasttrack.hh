/**
 * @file
 * The FastTrack happens-before data race detector (Flanagan & Freund,
 * PLDI 2009), the algorithm the paper runs over its extended memory
 * trace.
 *
 * Shadow state is kept per 8-byte granule (the usual shadow-memory
 * compromise); variables in the workloads are 8-byte aligned. Most
 * variable states are single epochs; a read set inflates to a full
 * vector clock only when reads are concurrent (the FastTrack insight).
 *
 * The granule shadow, lock/exit clocks, and allocation lifetimes all
 * live in flat open-addressing tables (support/flat_map.hh) with the
 * state stored inline, and read-share vector clocks use VectorClock's
 * inline small-size storage — the detection inner loop allocates
 * nothing on the heap for typical few-thread traces (DESIGN.md §9).
 *
 * malloc/free are tracked so a block freed and re-allocated at the same
 * address does not produce false races between the two objects' lifetimes
 * (paper §4.3).
 */

#ifndef PRORACE_DETECT_FASTTRACK_HH
#define PRORACE_DETECT_FASTTRACK_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "detect/report.hh"
#include "detect/vector_clock.hh"
#include "support/flat_map.hh"
#include "support/journal.hh"

namespace prorace::detect {

/** One memory access fed to the detector. */
struct MemAccess {
    uint32_t tid = 0;
    uint64_t addr = 0;
    uint8_t width = 8;
    bool is_write = false;
    bool is_atomic = false;
    uint32_t insn_index = 0;
    uint64_t tsc = 0;
    AccessOrigin origin = AccessOrigin::kSampled;
};

/** Detector statistics. */
struct FastTrackStats {
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t sync_ops = 0;
    uint64_t epoch_fast_path = 0; ///< same-epoch hits (FastTrack O(1) path)
    uint64_t read_shares = 0;     ///< epoch -> vector-clock inflations
    uint64_t vc_spills = 0;       ///< read clocks spilled past inline storage

    // Run-level summarization (core's run_summary feed folding).
    uint64_t run_blocks_folded = 0;     ///< repeated blocks absorbed whole
    uint64_t run_iterations_folded = 0; ///< events absorbed without dispatch

    // Streaming-GC reclamation (zero outside incremental mode).
    uint64_t gc_granules_reclaimed = 0; ///< quiescent shadow entries erased
    uint64_t gc_clocks_reclaimed = 0;   ///< exited-thread clocks erased

    // Flat shadow-table probe behavior (filled by FastTrack::stats()).
    uint64_t shadow_slots = 0;       ///< live granules in the shadow table
    uint64_t shadow_capacity = 0;    ///< shadow-table slot count
    uint64_t shadow_lookups = 0;
    uint64_t shadow_probe_steps = 0;

    /**
     * Fold another detector's counters into this one. Every field sums,
     * including the resident-size fields, so a rollup over N analyzer
     * instances reads as fleet totals (total events checked, total live
     * granules resident) rather than the counters of whichever instance
     * happened to run last.
     */
    void
    merge(const FastTrackStats &other)
    {
        reads += other.reads;
        writes += other.writes;
        sync_ops += other.sync_ops;
        epoch_fast_path += other.epoch_fast_path;
        read_shares += other.read_shares;
        vc_spills += other.vc_spills;
        run_blocks_folded += other.run_blocks_folded;
        run_iterations_folded += other.run_iterations_folded;
        gc_granules_reclaimed += other.gc_granules_reclaimed;
        gc_clocks_reclaimed += other.gc_clocks_reclaimed;
        shadow_slots += other.shadow_slots;
        shadow_capacity += other.shadow_capacity;
        shadow_lookups += other.shadow_lookups;
        shadow_probe_steps += other.shadow_probe_steps;
    }
};

/**
 * FastTrack over a pre-merged event stream.
 *
 * Callers feed events in an order that respects each thread's program
 * order and the TSC order of synchronization operations; plain accesses
 * may interleave arbitrarily between their surrounding sync events.
 */
class FastTrack
{
  public:
    FastTrack();
    ~FastTrack();

    // --- synchronization events ---

    /** lock(m) / generic acquire of object @p object. */
    void acquire(uint32_t tid, uint64_t object);

    /** unlock(m) / generic release of object @p object. */
    void release(uint32_t tid, uint64_t object);

    /** Barrier entry: joins the thread's clock into the barrier object. */
    void barrierEnter(uint32_t tid, uint64_t object);

    /** Barrier exit: acquires the accumulated barrier clock. */
    void barrierExit(uint32_t tid, uint64_t object);

    // --- reader/writer locks (DESIGN.md §16) ---
    //
    // Two clocks per rwlock: the write-release clock (shared with the
    // mutex table — a write unlock is a plain release) and a read-side
    // clock accumulating every read-unlock. Readers acquire only the
    // write clock, so concurrent readers never synchronize with each
    // other; a writer acquires both, ordering it after every prior
    // critical section of either mode.

    /** rdlock(rw): acquires the last write-unlock's clock only. */
    void readLock(uint32_t tid, uint64_t object);

    /** unlock(rw) from read mode: accumulates into the read clock. */
    void readUnlock(uint32_t tid, uint64_t object);

    /** wrlock(rw): acquires the write clock and the read clock. */
    void writeLock(uint32_t tid, uint64_t object);

    /** unlock(rw) from write mode: plain release of the write clock. */
    void writeUnlock(uint32_t tid, uint64_t object);

    // --- counting semaphores ---
    //
    // Each post snapshots the poster's clock onto a FIFO per-semaphore
    // queue; each wait consumes the oldest snapshot (post -> wait edge).
    // A wait satisfied by an initial credit finds the queue empty and
    // creates no edge — which is exactly what makes semaphore-as-signal
    // misuse detectable.

    /** sem_init(s, value): resets the post queue (no HB edge). */
    void semInit(uint32_t tid, uint64_t object, uint64_t value);

    /** sem_wait(s): joins the oldest unconsumed post's clock, if any. */
    void semWait(uint32_t tid, uint64_t object);

    /** sem_post(s): enqueues the poster's clock snapshot. */
    void semPost(uint32_t tid, uint64_t object);

    /**
     * Combined acquire+release of one object (acq_rel atomic RMW): the
     * object clock and the thread clock join into each other, modeling
     * the C11 release sequence an RMW continues.
     */
    void acquireRelease(uint32_t tid, uint64_t object);

    /** pthread_create edge parent -> child. */
    void fork(uint32_t parent, uint32_t child);

    /** Thread exit: publishes the final clock for joiners. */
    void threadExit(uint32_t tid);

    /**
     * Timestamped variant with the same detector semantics; the TSC is
     * meaningful only to streaming wrappers (IncrementalFastTrack uses
     * it to decide when the thread has retired from the event feed), so
     * serial and streaming detection can share one dispatch routine.
     */
    void
    threadExit(uint32_t tid, uint64_t tsc)
    {
        (void)tsc;
        threadExit(tid);
    }

    /** pthread_join edge child-exit -> parent. */
    void join(uint32_t parent, uint32_t child);

    /** malloc: opens a new lifetime for [addr, addr+size). */
    void allocate(uint32_t tid, uint64_t addr, uint64_t size);

    /** free: closes the lifetime; shadow state in range is discarded. */
    void deallocate(uint32_t tid, uint64_t addr);

    // --- memory accesses ---

    /** Check and record one access. */
    void access(const MemAccess &ma);

    /**
     * Fold @p n repeats of @p ma — identical in every field except
     * possibly the TSC — that immediately follow an already-dispatched
     * occurrence, with no intervening event of any thread. Returns true
     * when every granule the access touches provably absorbs the
     * repeats: each repeat would hit the same-epoch fast path
     * (write_epoch == the thread's current epoch for writes; an
     * unshared read_epoch equal to it for reads) and return without
     * changing state or reports. The counters are advanced exactly as
     * per-iteration dispatch would have, so statistics stay identical
     * too.
     *
     * Returns false — having changed nothing — when any touched granule
     * would not absorb the repeats (the read state inflated to a shared
     * vector clock, whose representative-reader sample tracks the
     * latest iteration's TSC and can alter later report bytes). The
     * caller must then dispatch the repeats individually.
     */
    bool foldRepeats(const MemAccess &ma, uint64_t n);

    /** Detected races. */
    const RaceReport &report() const { return report_; }
    RaceReport &report() { return report_; }

    /** Statistics, including flat-table probe counters. */
    FastTrackStats stats() const;

    /** Live shadow granules right now (cheap; no counter snapshot). */
    uint64_t liveGranuleCount() const { return shadow_.size(); }

    /** Exited-thread clocks currently held for joiners. */
    uint64_t exitedClockCount() const { return exited_.size(); }

    // --- streaming garbage collection (detect/incremental.hh) ---
    //
    // Shadow state whose epochs are at or below the pointwise minimum
    // of every live thread's clock can never race again: clocks only
    // grow, new threads inherit a live parent's clock at fork, so any
    // future access happens-after the candidate state. Sweeping such
    // state therefore changes no report (DESIGN.md §13.2); the wrapper
    // is responsible for calling this only when the live-thread set is
    // fully known (see IncrementalFastTrack's initial-thread gating).

    /**
     * Pointwise minimum of the clocks of every started thread not
     * flagged in @p retired (indexed by tid; short vectors mean "not
     * retired"). Returns false — leaving @p floor untouched as the
     * all-zero clock — when no live thread exists.
     */
    bool threadClockFloor(const std::vector<bool> &retired,
                          VectorClock &floor) const;

    /**
     * Fill @p floor with a component above every epoch any known
     * thread can have issued: the "everything is quiescent" floor for
     * the no-live-threads-remain case (no legal future event exists).
     */
    void infiniteClockFloor(VectorClock &floor) const;

    /**
     * Erase shadow granules whose write epoch and read state are both
     * at or below @p floor. Returns the number of granules reclaimed.
     */
    uint64_t sweepQuiescentShadow(const VectorClock &floor);

    /**
     * Erase exited-thread clocks at or below @p floor. A later join of
     * a reclaimed thread is a silent no-op (its clock was already
     * dominated by the joiner's, so the join could not have changed
     * anything). Returns the number of clocks reclaimed.
     */
    uint64_t sweepExitedClocks(const VectorClock &floor);

    // --- checkpoint serialization (service warm-start) ---
    //
    // The complete behavioral state — thread clocks, lock/exit clocks,
    // reclaim tombstones, shadow granules, allocation lifetimes, the
    // report so far, and the behavior-neutral counters — round-trips
    // through a byte stream. A restored detector fed the remainder of
    // the original event feed produces a report byte-identical to one
    // that ran uninterrupted (asserted in tests/test_recovery.cc).
    // Tables are written key-sorted so the same state always serializes
    // to the same bytes regardless of probe order.

    /** Append the full detector state to @p w. */
    void serializeState(support::ByteWriter &w) const;

    /**
     * Replace this detector's state with one previously serialized.
     * Returns false — leaving the detector unchanged — when the bytes
     * are malformed or of an incompatible state version.
     */
    bool restoreState(support::ByteReader &r);

  private:
    /** Shadow state of one 8-byte granule, stored inline in the table. */
    struct VarState {
        Epoch write_epoch;
        RaceAccess last_write;
        bool write_atomic = false;

        // Reads: a single epoch while totally ordered, a vector clock
        // once concurrent reads exist (the FastTrack read-share
        // adaptation). The clock lives inline; read_is_shared gates it.
        Epoch read_epoch;
        RaceAccess last_read;
        bool read_atomic = true;      ///< all recorded reads were atomic
        bool read_is_shared = false;
        VectorClock read_vc;
        RaceAccess shared_read_sample; ///< representative reader for reports

        // Shared-mode reads by PLAIN (non-atomic) accesses only. A
        // single read_atomic bit over all readers would let one plain
        // reader poison the atomic-vs-atomic suppression for every
        // other reader; tracking plain readers in their own clock keeps
        // the suppression per-pair exact.
        VectorClock plain_read_vc;
        RaceAccess shared_plain_sample; ///< representative plain reader
    };

    /** Per-thread detector state. */
    struct ThreadState {
        explicit ThreadState(uint32_t tid) : tid(tid)
        {
            clock.set(tid, 1);
        }

        uint32_t tid;
        VectorClock clock;

        uint64_t epochClock() const { return clock.get(tid); }
        Epoch epoch() const { return Epoch(tid, epochClock()); }

        void
        increment()
        {
            clock.set(tid, epochClock() + 1);
        }
    };

    ThreadState &threadState(uint32_t tid);
    VectorClock &lockClock(uint64_t object);
    void checkRead(VarState &var, const MemAccess &ma, ThreadState &th);
    void checkWrite(VarState &var, const MemAccess &ma, ThreadState &th);
    void reportRace(const VarState &var, bool prior_is_write,
                    const MemAccess &ma, uint64_t granule_addr,
                    bool prior_plain_shared = false);

    /** FIFO of unconsumed post-clock snapshots of one semaphore. */
    struct SemQueue {
        std::vector<VectorClock> posts;
    };

    std::vector<std::unique_ptr<ThreadState>> threads_;
    FlatMap<VectorClock> locks_;
    FlatMap<VectorClock> exited_;
    FlatMap<VectorClock> rw_read_; ///< rwlock read-side clocks
    FlatMap<SemQueue> sem_posts_;  ///< semaphore post queues
    /** Tids whose exit clock was GC'd; joins of these silently no-op. */
    std::vector<bool> exit_reclaimed_;
    FlatMap<VarState> shadow_;    ///< keyed by granule index
    FlatMap<uint64_t> alloc_sizes_;
    RaceReport report_;
    FastTrackStats stats_;
};

} // namespace prorace::detect

#endif // PRORACE_DETECT_FASTTRACK_HH

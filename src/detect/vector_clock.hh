/**
 * @file
 * Vector clocks for happens-before race detection.
 */

#ifndef PRORACE_DETECT_VECTOR_CLOCK_HH
#define PRORACE_DETECT_VECTOR_CLOCK_HH

#include <cstdint>
#include <string>

namespace prorace::detect {

/**
 * A grow-on-demand vector clock. Component t holds the last clock value
 * of thread t that the owner has synchronized with.
 *
 * Storage is small-size optimized: up to kInlineComponents components
 * live inside the object, so the clocks of typical few-thread traces —
 * including FastTrack's read-share inflations — never touch the heap.
 * Larger clocks spill to a heap array transparently.
 */
class VectorClock
{
  public:
    /** Components stored inline before spilling to the heap. */
    static constexpr uint32_t kInlineComponents = 4;

    VectorClock() = default;
    VectorClock(const VectorClock &other) { copyFrom(other); }
    VectorClock(VectorClock &&other) noexcept { moveFrom(other); }
    ~VectorClock() { delete[] heap_; }

    VectorClock &
    operator=(const VectorClock &other)
    {
        if (this != &other) {
            reset();
            copyFrom(other);
        }
        return *this;
    }

    VectorClock &
    operator=(VectorClock &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    /** Clock component for thread @p tid (0 if never seen). */
    uint64_t
    get(uint32_t tid) const
    {
        return tid < size_ ? data()[tid] : 0;
    }

    /** Set component @p tid to @p value. */
    void set(uint32_t tid, uint64_t value);

    /** Pointwise maximum: *this = max(*this, other). */
    void join(const VectorClock &other);

    /** Copy assignment from another clock (FastTrack release). */
    void assign(const VectorClock &other);

    /** True when *this <= other pointwise. */
    bool lessOrEqual(const VectorClock &other) const;

    /** Number of components stored. */
    size_t size() const { return size_; }

    /** Drop every component (back to the all-zero clock). */
    void
    clear()
    {
        reset();
    }

    /** True once the clock has spilled past the inline storage. */
    bool usesHeap() const { return heap_ != nullptr; }

    /** Render as "[t0:3 t1:7]" for reports and debugging. */
    std::string toString() const;

  private:
    uint64_t *data() { return heap_ ? heap_ : small_; }
    const uint64_t *data() const { return heap_ ? heap_ : small_; }

    /** Ensure components [0, n) exist, zero-filling new ones. */
    void growTo(uint32_t n);

    void
    reset()
    {
        delete[] heap_;
        heap_ = nullptr;
        cap_ = kInlineComponents;
        size_ = 0;
        for (uint32_t i = 0; i < kInlineComponents; ++i)
            small_[i] = 0;
    }

    void copyFrom(const VectorClock &other);
    void moveFrom(VectorClock &other) noexcept;

    uint64_t small_[kInlineComponents] = {};
    uint64_t *heap_ = nullptr;
    uint32_t size_ = 0;
    uint32_t cap_ = kInlineComponents;
};

/**
 * A FastTrack epoch: one (tid, clock) pair packed into 64 bits.
 * The paper's detector uses the FastTrack algorithm, whose performance
 * hinges on representing most variable states as single epochs instead
 * of full vector clocks.
 */
class Epoch
{
  public:
    static constexpr unsigned kTidBits = 10; ///< up to 1024 threads

    /** Largest thread count the packed tid field can represent. */
    static constexpr uint32_t kMaxThreads = 1u << kTidBits;

    Epoch() = default;

    Epoch(uint32_t tid, uint64_t clock)
        : bits_((clock << kTidBits) | (tid & kTidMask))
    {
    }

    uint32_t tid() const { return static_cast<uint32_t>(bits_ & kTidMask); }
    uint64_t clock() const { return bits_ >> kTidBits; }
    bool isZero() const { return bits_ == 0; }

    /** epoch <= clock of @p vc: the access is ordered before the owner. */
    bool
    happensBefore(const VectorClock &vc) const
    {
        return clock() <= vc.get(tid());
    }

    bool operator==(const Epoch &) const = default;

  private:
    static constexpr uint64_t kTidMask = (1ull << kTidBits) - 1;

    uint64_t bits_ = 0;
};

} // namespace prorace::detect

#endif // PRORACE_DETECT_VECTOR_CLOCK_HH

/**
 * @file
 * Vector clocks for happens-before race detection.
 */

#ifndef PRORACE_DETECT_VECTOR_CLOCK_HH
#define PRORACE_DETECT_VECTOR_CLOCK_HH

#include <cstdint>
#include <string>
#include <vector>

namespace prorace::detect {

/**
 * A grow-on-demand vector clock. Component t holds the last clock value
 * of thread t that the owner has synchronized with.
 */
class VectorClock
{
  public:
    /** Clock component for thread @p tid (0 if never seen). */
    uint64_t get(uint32_t tid) const;

    /** Set component @p tid to @p value. */
    void set(uint32_t tid, uint64_t value);

    /** Pointwise maximum: *this = max(*this, other). */
    void join(const VectorClock &other);

    /** Copy assignment from another clock (FastTrack release). */
    void assign(const VectorClock &other);

    /** True when *this <= other pointwise. */
    bool lessOrEqual(const VectorClock &other) const;

    /** Number of components stored. */
    size_t size() const { return clocks_.size(); }

    /** Render as "[t0:3 t1:7]" for reports and debugging. */
    std::string toString() const;

  private:
    std::vector<uint64_t> clocks_;
};

/**
 * A FastTrack epoch: one (tid, clock) pair packed into 64 bits.
 * The paper's detector uses the FastTrack algorithm, whose performance
 * hinges on representing most variable states as single epochs instead
 * of full vector clocks.
 */
class Epoch
{
  public:
    Epoch() = default;

    Epoch(uint32_t tid, uint64_t clock)
        : bits_((clock << kTidBits) | (tid & kTidMask))
    {
    }

    uint32_t tid() const { return static_cast<uint32_t>(bits_ & kTidMask); }
    uint64_t clock() const { return bits_ >> kTidBits; }
    bool isZero() const { return bits_ == 0; }

    /** epoch <= clock of @p vc: the access is ordered before the owner. */
    bool
    happensBefore(const VectorClock &vc) const
    {
        return clock() <= vc.get(tid());
    }

    bool operator==(const Epoch &) const = default;

  private:
    static constexpr unsigned kTidBits = 10; ///< up to 1024 threads
    static constexpr uint64_t kTidMask = (1ull << kTidBits) - 1;

    uint64_t bits_ = 0;
};

} // namespace prorace::detect

#endif // PRORACE_DETECT_VECTOR_CLOCK_HH

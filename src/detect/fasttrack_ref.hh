/**
 * @file
 * Reference FastTrack with the pre-overhaul data structures: an
 * ordered std::map granule shadow, node-based hash maps for lock/exit
 * clocks and allocation sizes, a heap-vector vector clock, and a
 * heap-allocated read-share clock per inflated granule.
 *
 * This is NOT the production detector (that is detect::FastTrack, built
 * on flat tables and inline clocks). It exists for two jobs:
 *
 *  - the randomized differential test (tests/test_shadow.cc) proves the
 *    flat-table detector emits byte-identical reports and identical
 *    core counters on ordering-sensitive event streams, and
 *  - the bm_components microbenchmarks quantify the structure swap on a
 *    shared-read-heavy stream (acceptance: >= 1.5x).
 *
 * Keep the *algorithm* here in lockstep with fasttrack.cc; only the
 * containers differ.
 */

#ifndef PRORACE_DETECT_FASTTRACK_REF_HH
#define PRORACE_DETECT_FASTTRACK_REF_HH

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "detect/fasttrack.hh"
#include "detect/report.hh"
#include "detect/vector_clock.hh"
#include "support/log.hh"

namespace prorace::detect {

/** The original grow-on-demand heap-vector clock. */
class RefVectorClock
{
  public:
    uint64_t
    get(uint32_t tid) const
    {
        return tid < clocks_.size() ? clocks_[tid] : 0;
    }

    void
    set(uint32_t tid, uint64_t value)
    {
        if (tid >= clocks_.size())
            clocks_.resize(tid + 1, 0);
        clocks_[tid] = value;
    }

    void
    join(const RefVectorClock &other)
    {
        if (other.clocks_.size() > clocks_.size())
            clocks_.resize(other.clocks_.size(), 0);
        for (size_t i = 0; i < other.clocks_.size(); ++i)
            clocks_[i] = std::max(clocks_[i], other.clocks_[i]);
    }

    void assign(const RefVectorClock &other) { clocks_ = other.clocks_; }

    bool
    lessOrEqual(const RefVectorClock &other) const
    {
        for (size_t i = 0; i < clocks_.size(); ++i) {
            if (clocks_[i] > other.get(static_cast<uint32_t>(i)))
                return false;
        }
        return true;
    }

  private:
    std::vector<uint64_t> clocks_;
};

/** Epoch helper against the reference clock. */
inline bool
refHappensBefore(const Epoch &e, const RefVectorClock &vc)
{
    return e.clock() <= vc.get(e.tid());
}

/** Pre-overhaul FastTrack; same event API as detect::FastTrack. */
class RefFastTrack
{
  public:
    void
    acquire(uint32_t tid, uint64_t object)
    {
        ++stats_.sync_ops;
        threadState(tid).clock.join(locks_[object]);
    }

    void
    release(uint32_t tid, uint64_t object)
    {
        ++stats_.sync_ops;
        ThreadState &th = threadState(tid);
        locks_[object].assign(th.clock);
        th.increment();
    }

    void
    barrierEnter(uint32_t tid, uint64_t object)
    {
        ++stats_.sync_ops;
        ThreadState &th = threadState(tid);
        locks_[object].join(th.clock);
        th.increment();
    }

    void
    barrierExit(uint32_t tid, uint64_t object)
    {
        ++stats_.sync_ops;
        threadState(tid).clock.join(locks_[object]);
    }

    void
    readLock(uint32_t tid, uint64_t object)
    {
        ++stats_.sync_ops;
        threadState(tid).clock.join(locks_[object]);
    }

    void
    readUnlock(uint32_t tid, uint64_t object)
    {
        ++stats_.sync_ops;
        ThreadState &th = threadState(tid);
        rw_read_[object].join(th.clock);
        th.increment();
    }

    void
    writeLock(uint32_t tid, uint64_t object)
    {
        ++stats_.sync_ops;
        ThreadState &th = threadState(tid);
        th.clock.join(locks_[object]);
        auto it = rw_read_.find(object);
        if (it != rw_read_.end())
            th.clock.join(it->second);
    }

    void
    writeUnlock(uint32_t tid, uint64_t object)
    {
        ++stats_.sync_ops;
        ThreadState &th = threadState(tid);
        locks_[object].assign(th.clock);
        th.increment();
    }

    void
    semInit(uint32_t tid, uint64_t object, uint64_t value)
    {
        (void)tid;
        (void)value;
        ++stats_.sync_ops;
        sem_posts_[object].clear();
    }

    void
    semWait(uint32_t tid, uint64_t object)
    {
        ++stats_.sync_ops;
        auto it = sem_posts_.find(object);
        if (it == sem_posts_.end() || it->second.empty())
            return;
        threadState(tid).clock.join(it->second.front());
        it->second.pop_front();
    }

    void
    semPost(uint32_t tid, uint64_t object)
    {
        ++stats_.sync_ops;
        ThreadState &th = threadState(tid);
        RefVectorClock snapshot;
        snapshot.assign(th.clock);
        sem_posts_[object].push_back(std::move(snapshot));
        th.increment();
    }

    void
    acquireRelease(uint32_t tid, uint64_t object)
    {
        ++stats_.sync_ops;
        ThreadState &th = threadState(tid);
        RefVectorClock &lock = locks_[object];
        th.clock.join(lock);
        lock.assign(th.clock);
        th.increment();
    }

    void
    fork(uint32_t parent, uint32_t child)
    {
        ++stats_.sync_ops;
        ThreadState &p = threadState(parent);
        threadState(child).clock.join(p.clock);
        p.increment();
    }

    void
    threadExit(uint32_t tid)
    {
        ++stats_.sync_ops;
        exited_[tid].assign(threadState(tid).clock);
    }

    void
    join(uint32_t parent, uint32_t child)
    {
        ++stats_.sync_ops;
        auto it = exited_.find(child);
        if (it == exited_.end())
            return;
        threadState(parent).clock.join(it->second);
    }

    void
    allocate(uint32_t tid, uint64_t addr, uint64_t size)
    {
        (void)tid;
        ++stats_.sync_ops;
        alloc_sizes_[addr] = size;
        const uint64_t first = addr >> 3;
        const uint64_t last = (addr + (size ? size - 1 : 0)) >> 3;
        shadow_.erase(shadow_.lower_bound(first),
                      shadow_.upper_bound(last));
    }

    void
    deallocate(uint32_t tid, uint64_t addr)
    {
        (void)tid;
        ++stats_.sync_ops;
        auto it = alloc_sizes_.find(addr);
        if (it == alloc_sizes_.end())
            return;
        const uint64_t size = it->second;
        alloc_sizes_.erase(it);
        const uint64_t first = addr >> 3;
        const uint64_t last = (addr + (size ? size - 1 : 0)) >> 3;
        shadow_.erase(shadow_.lower_bound(first),
                      shadow_.upper_bound(last));
    }

    void
    access(const MemAccess &ma)
    {
        ThreadState &th = threadState(ma.tid);
        const uint64_t first = ma.addr >> 3;
        const uint64_t last =
            (ma.addr + (ma.width ? ma.width - 1 : 0)) >> 3;
        for (uint64_t g = first; g <= last; ++g) {
            VarState &var = shadow_[g];
            if (ma.is_write)
                checkWrite(var, ma, th);
            else
                checkRead(var, ma, th);
        }
    }

    const RaceReport &report() const { return report_; }
    const FastTrackStats &stats() const { return stats_; }

  private:
    struct VarState {
        Epoch write_epoch;
        RaceAccess last_write;
        bool write_atomic = false;
        Epoch read_epoch;
        RaceAccess last_read;
        bool read_atomic = true;
        std::unique_ptr<RefVectorClock> read_shared;
        RaceAccess shared_read_sample;
        // Shared-mode plain readers tracked apart from atomic ones, so
        // one plain reader cannot break atomic-vs-atomic suppression.
        std::unique_ptr<RefVectorClock> plain_read_shared;
        RaceAccess shared_plain_sample;
    };

    struct ThreadState {
        explicit ThreadState(uint32_t tid) : tid(tid)
        {
            clock.set(tid, 1);
        }

        uint32_t tid;
        RefVectorClock clock;

        uint64_t epochClock() const { return clock.get(tid); }
        Epoch epoch() const { return Epoch(tid, epochClock()); }
        void increment() { clock.set(tid, epochClock() + 1); }
    };

    ThreadState &
    threadState(uint32_t tid)
    {
        if (tid >= threads_.size())
            threads_.resize(tid + 1);
        if (!threads_[tid])
            threads_[tid] = std::make_unique<ThreadState>(tid);
        return *threads_[tid];
    }

    void
    reportRace(const VarState &var, bool prior_is_write,
               const MemAccess &ma, uint64_t granule_addr,
               bool prior_plain_shared = false)
    {
        DataRace race;
        race.addr = granule_addr;
        if (prior_is_write) {
            race.prior = var.last_write;
        } else if (var.read_shared) {
            race.prior = prior_plain_shared ? var.shared_plain_sample
                                            : var.shared_read_sample;
        } else {
            race.prior = var.last_read;
        }
        race.current = {ma.tid, ma.insn_index, ma.is_write, ma.tsc,
                        ma.origin};
        report_.add(race);
    }

    void
    checkRead(VarState &var, const MemAccess &ma, ThreadState &th)
    {
        ++stats_.reads;
        if (var.read_epoch == th.epoch() && !var.read_shared) {
            ++stats_.epoch_fast_path;
            return;
        }
        if (!var.write_epoch.isZero() &&
            !refHappensBefore(var.write_epoch, th.clock) &&
            !(var.write_atomic && ma.is_atomic)) {
            reportRace(var, true, ma, ma.addr & ~7ull);
        }
        const RaceAccess this_access{ma.tid, ma.insn_index, false, ma.tsc,
                                     ma.origin};
        if (var.read_shared) {
            var.read_shared->set(ma.tid, th.epochClock());
            var.shared_read_sample = this_access;
            var.read_atomic = var.read_atomic && ma.is_atomic;
            if (!ma.is_atomic) {
                if (!var.plain_read_shared)
                    var.plain_read_shared =
                        std::make_unique<RefVectorClock>();
                var.plain_read_shared->set(ma.tid, th.epochClock());
                var.shared_plain_sample = this_access;
            }
        } else if (var.read_epoch.isZero() ||
                   refHappensBefore(var.read_epoch, th.clock)) {
            var.read_epoch = Epoch(ma.tid, th.epochClock());
            var.last_read = this_access;
            var.read_atomic = ma.is_atomic;
        } else {
            ++stats_.read_shares;
            var.read_shared = std::make_unique<RefVectorClock>();
            var.read_shared->set(var.read_epoch.tid(),
                                 var.read_epoch.clock());
            var.read_shared->set(ma.tid, th.epochClock());
            var.shared_read_sample = this_access;
            var.plain_read_shared.reset();
            if (!var.read_atomic) {
                var.plain_read_shared = std::make_unique<RefVectorClock>();
                var.plain_read_shared->set(var.read_epoch.tid(),
                                           var.read_epoch.clock());
                var.shared_plain_sample = var.last_read;
            }
            if (!ma.is_atomic) {
                if (!var.plain_read_shared)
                    var.plain_read_shared =
                        std::make_unique<RefVectorClock>();
                var.plain_read_shared->set(ma.tid, th.epochClock());
                var.shared_plain_sample = this_access;
            }
            var.read_atomic = var.read_atomic && ma.is_atomic;
        }
    }

    void
    checkWrite(VarState &var, const MemAccess &ma, ThreadState &th)
    {
        ++stats_.writes;
        if (var.write_epoch == th.epoch()) {
            ++stats_.epoch_fast_path;
            return;
        }
        if (!var.write_epoch.isZero() &&
            !refHappensBefore(var.write_epoch, th.clock) &&
            !(var.write_atomic && ma.is_atomic)) {
            reportRace(var, true, ma, ma.addr & ~7ull);
        }
        if (var.read_shared) {
            const bool plain_race = var.plain_read_shared &&
                !var.plain_read_shared->lessOrEqual(th.clock);
            if (plain_race ||
                (!ma.is_atomic && !var.read_shared->lessOrEqual(th.clock))) {
                reportRace(var, false, ma, ma.addr & ~7ull, plain_race);
            }
            var.read_shared.reset();
            var.plain_read_shared.reset();
            var.read_epoch = Epoch();
        } else if (!var.read_epoch.isZero() &&
                   !refHappensBefore(var.read_epoch, th.clock) &&
                   !(var.read_atomic && ma.is_atomic)) {
            reportRace(var, false, ma, ma.addr & ~7ull);
        }
        var.write_epoch = Epoch(ma.tid, th.epochClock());
        var.last_write = {ma.tid, ma.insn_index, true, ma.tsc, ma.origin};
        var.write_atomic = ma.is_atomic;
    }

    std::vector<std::unique_ptr<ThreadState>> threads_;
    std::unordered_map<uint64_t, RefVectorClock> locks_;
    std::unordered_map<uint64_t, RefVectorClock> exited_;
    std::unordered_map<uint64_t, RefVectorClock> rw_read_;
    std::unordered_map<uint64_t, std::deque<RefVectorClock>> sem_posts_;
    std::map<uint64_t, VarState> shadow_;
    std::unordered_map<uint64_t, uint64_t> alloc_sizes_;
    RaceReport report_;
    FastTrackStats stats_;
};

} // namespace prorace::detect

#endif // PRORACE_DETECT_FASTTRACK_REF_HH

/**
 * @file
 * Ingest frontend: per-tenant bounded queues with credit-based
 * backpressure.
 *
 * Producers (instrumented machines submitting trace chunks) are
 * decoupled from the analysis backend by one multiplexed queue. Memory
 * is bounded by *credits*: each tenant has a fixed byte budget, a push
 * consumes credit for the chunk's size, and credit returns only when
 * the consumer has disposed of the chunk (parsed it into the session's
 * trace cursor). A tenant that outruns the backend therefore runs out
 * of credit and — per policy — either *stalls* (push blocks until
 * credit returns; lossless, for cooperating producers) or *sheds* (push
 * fails immediately; the producer drops the chunk, which downstream is
 * indistinguishable from segment loss and handled by the fault-tolerant
 * trace reader). Either way the service's resident ingest memory never
 * exceeds  sum over tenants of credit_bytes,  no matter how fast
 * producers flood.
 *
 * A chunk larger than the whole budget is admitted alone (when the
 * tenant has zero outstanding bytes) rather than deadlocking a stalled
 * producer; the high-water statistics expose such oversized chunks.
 */

#ifndef PRORACE_SERVICE_INGEST_HH
#define PRORACE_SERVICE_INGEST_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace prorace::service {

/** Backpressure policy (service-wide; credits are per tenant). */
struct IngestPolicy {
    /** Outstanding (pushed, not yet consumed) bytes allowed per tenant. */
    uint64_t credit_bytes = 1u << 20;
    /** Out of credit: true = shed the chunk, false = stall the push. */
    bool shed_on_full = false;
};

/** Per-tenant ingest accounting. */
struct TenantIngestStats {
    uint64_t chunks = 0;
    uint64_t bytes = 0;
    uint64_t shed_chunks = 0;
    uint64_t shed_bytes = 0;
    uint64_t stalls = 0;            ///< pushes that had to wait
    uint64_t peak_outstanding = 0;  ///< high-water of un-credited bytes

    void
    merge(const TenantIngestStats &other)
    {
        chunks += other.chunks;
        bytes += other.bytes;
        shed_chunks += other.shed_chunks;
        shed_bytes += other.shed_bytes;
        stalls += other.stalls;
        peak_outstanding += other.peak_outstanding;
    }
};

/** Queue-wide ingest accounting. */
struct IngestStats {
    std::map<std::string, TenantIngestStats> tenants;
    uint64_t peak_buffered_bytes = 0; ///< high-water of queued bytes

    /** Service-wide rollup of the per-tenant rows. */
    TenantIngestStats
    total() const
    {
        TenantIngestStats t;
        for (const auto &[name, s] : tenants)
            t.merge(s);
        return t;
    }
};

/** The bounded, multiplexed producer -> analysis queue. */
class IngestQueue
{
  public:
    /** One submission. close=true marks end-of-session (zero bytes). */
    struct Chunk {
        std::string tenant;
        uint64_t session = 0;
        std::vector<uint8_t> bytes;
        bool close = false;
    };

    explicit IngestQueue(const IngestPolicy &policy);

    enum class PushResult : uint8_t {
        kAccepted,
        kShed,    ///< out of credit under the shedding policy
        kClosed,  ///< queue shut down
    };

    /**
     * Submit a chunk on behalf of chunk.tenant. May block (stalling
     * policy) until credit is available. Close markers are exempt from
     * credit (they carry no payload and must always get through).
     */
    PushResult push(Chunk chunk);

    /**
     * Dequeue the next chunk; blocks until one arrives or the queue is
     * closed and drained (then returns false). Single-consumer.
     */
    bool pop(Chunk &out);

    /**
     * Return @p bytes of credit to @p tenant once its chunk has been
     * consumed. Wakes stalled producers.
     */
    void credit(const std::string &tenant, uint64_t bytes);

    /** Shut down: pushes fail, pop drains the remainder. */
    void close();

    /** Queued-but-unpopped payload bytes right now. */
    uint64_t bufferedBytes() const;

    IngestStats stats() const;

  private:
    struct TenantState {
        uint64_t outstanding = 0; ///< pushed, credit not yet returned
        TenantIngestStats stats;
    };

    IngestPolicy policy_;
    mutable std::mutex mu_;
    std::condition_variable producer_cv_; ///< credit returned
    std::condition_variable consumer_cv_; ///< chunk available
    std::deque<Chunk> queue_;
    std::map<std::string, TenantState> tenants_;
    uint64_t buffered_bytes_ = 0;
    uint64_t peak_buffered_bytes_ = 0;
    bool closed_ = false;
};

} // namespace prorace::service

#endif // PRORACE_SERVICE_INGEST_HH

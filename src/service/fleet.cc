#include "service/fleet.hh"

#include <atomic>
#include <chrono>
#include <thread>

#include "core/pipeline.hh"
#include "core/session.hh"
#include "support/log.hh"
#include "trace/trace_file.hh"
#include "workload/registry.hh"

namespace prorace::service {

namespace {

/** One subject, recorded once, streamed many times. */
struct RecordedSubject {
    std::string name;
    std::shared_ptr<const asmkit::Program> program;
    std::vector<uint8_t> bytes; ///< serialized v4 trace
};

RecordedSubject
recordSubject(const std::string &name, const FleetConfig &config,
              uint64_t seed)
{
    auto workload = workload::findWorkload(name, config.scale);
    if (!workload)
        PRORACE_FATAL("fleet: unknown workload '", name, "'");
    core::PipelineConfig pipeline =
        core::proRaceConfig(config.period, seed, workload->pt_filter);
    pipeline.session.run_baseline = false; // overhead is not the point
    core::RunArtifacts artifacts = core::Session::run(
        *workload->program, workload->setup, pipeline.session);

    RecordedSubject subject;
    subject.name = name;
    subject.program = workload->program;
    subject.bytes = trace::serializeTrace(artifacts.trace);
    return subject;
}

} // namespace

FleetResult
runFleet(const FleetConfig &config)
{
    if (config.subjects.empty())
        PRORACE_FATAL("fleet: no subjects configured");

    // Phase 1 (untimed): record every subject once.
    std::vector<RecordedSubject> subjects;
    subjects.reserve(config.subjects.size());
    for (size_t i = 0; i < config.subjects.size(); ++i)
        subjects.push_back(recordSubject(config.subjects[i], config,
                                         config.seed + i));

    FleetResult result;
    for (const RecordedSubject &subject : subjects)
        result.trace_bytes_per_session += subject.bytes.size();

    // Phase 2 (timed): producers flood the service.
    AnalysisService service(config.service);
    for (const RecordedSubject &subject : subjects)
        service.registerProgram(subject.name, subject.program);

    std::atomic<uint64_t> opened{0}, rejected{0}, bytes{0};
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> producers;
    producers.reserve(config.producers);
    for (unsigned p = 0; p < config.producers; ++p) {
        producers.emplace_back([&, p] {
            const RecordedSubject &subject =
                subjects[p % subjects.size()];
            const std::string tenant =
                "tenant-" + std::to_string(p);
            for (unsigned s = 0; s < config.sessions_per_producer;
                 ++s) {
                const uint64_t id =
                    service.openSession(tenant, subject.name);
                if (id == 0) {
                    ++rejected;
                    continue;
                }
                ++opened;
                const std::vector<uint8_t> &stream = subject.bytes;
                for (size_t off = 0; off < stream.size();
                     off += config.chunk_bytes) {
                    const size_t len = std::min(config.chunk_bytes,
                                                stream.size() - off);
                    if (service.submit(id, stream.data() + off, len))
                        bytes += len;
                }
                service.closeSession(id);
            }
        });
    }
    // Poison tenants stream deterministic garbage alongside the real
    // fleet. They reuse a registered program id so the failure happens
    // at ingest/analysis, not at open.
    std::atomic<uint64_t> poison_opened{0};
    std::vector<std::thread> poison;
    poison.reserve(config.poison_producers);
    for (unsigned p = 0; p < config.poison_producers; ++p) {
        poison.emplace_back([&, p] {
            uint64_t rng = config.seed * 0x9e3779b97f4a7c15ull + p + 1;
            const std::string tenant = "poison-" + std::to_string(p);
            std::vector<uint8_t> garbage(config.poison_bytes);
            for (unsigned s = 0; s < config.sessions_per_producer; ++s) {
                const uint64_t id =
                    service.openSession(tenant, subjects[0].name);
                // Rejected poison opens (tenant quarantined) are the
                // system working, not fleet-level shedding: not
                // counted into sessions_rejected.
                if (id == 0)
                    continue;
                ++poison_opened;
                for (uint8_t &b : garbage) {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    b = static_cast<uint8_t>(rng);
                }
                for (size_t off = 0; off < garbage.size();
                     off += config.chunk_bytes) {
                    const size_t len = std::min(config.chunk_bytes,
                                                garbage.size() - off);
                    service.submit(id, garbage.data() + off, len);
                }
                service.closeSession(id);
            }
        });
    }

    for (std::thread &producer : producers)
        producer.join();
    for (std::thread &producer : poison)
        producer.join();
    service.drain();
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    result.sessions_opened = opened;
    result.sessions_rejected = rejected;
    result.poison_sessions = poison_opened;
    result.bytes_submitted = bytes;
    result.latencies = service.latencies();
    for (const SessionOutcome &outcome : service.outcomes())
        result.session_peak_granules =
            std::max(result.session_peak_granules,
                     outcome.incremental.peak_live_granules);
    result.tenants = service.tenantStats();
    result.stats = service.stats();
    result.report_jsonl = service.store().toJsonl();
    service.shutdown();
    return result;
}

} // namespace prorace::service

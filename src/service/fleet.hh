/**
 * @file
 * Simulated fleet: N producer threads feeding one AnalysisService.
 *
 * Stands in for a production fleet in tests and benchmarks. Each
 * producer is a tenant that records its subject once up front
 * (core::Session), then streams the serialized trace into the service
 * in fixed-size chunks for a number of sessions, closing each so the
 * backend analyzes it. Recording happens before the clock starts; the
 * measured region is pure service work (ingest, parse, replay, detect,
 * fold), which is what fig16 wants to characterize.
 */

#ifndef PRORACE_SERVICE_FLEET_HH
#define PRORACE_SERVICE_FLEET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "service/service.hh"

namespace prorace::service {

/** Fleet shape and per-subject recording knobs. */
struct FleetConfig {
    FleetConfig()
    {
        // Service-tier defaults: smaller batches than the library's so
        // GC boundaries land inside typical sessions, keeping detector
        // residency flat instead of sawtoothing per session.
        service.offline.incremental.batch_events = 2048;
        service.offline.incremental.gc_min_events = 512;
    }

    unsigned producers = 4;            ///< tenants, one thread each
    unsigned sessions_per_producer = 2;
    /** Workload names; producer p streams subjects[p % size]. */
    std::vector<std::string> subjects = {"apache-21287", "pbzip2-0.9.4",
                                         "aget-bug2"};
    double scale = 0.25;   ///< workload scale for the recorded runs
    uint64_t period = 16;  ///< PEBS sampling period
    uint64_t seed = 7;
    size_t chunk_bytes = 4096; ///< producer submission granularity
    /**
     * Extra "poison-N" tenants streaming seeded pseudorandom garbage
     * instead of traces — the chaos ingredient for supervision and
     * quarantine testing. Their sessions fail (hard trace error, or a
     * configured analysis_fault_injector keyed on the tenant prefix);
     * the assertion is that the healthy tenants' sessions all still
     * complete and the service never goes down.
     */
    unsigned poison_producers = 0;
    size_t poison_bytes = 1 << 16; ///< garbage stream length per session
    ServiceOptions service;
};

/** What the fleet run produced, for asserting and reporting. */
struct FleetResult {
    uint64_t sessions_opened = 0;
    uint64_t sessions_rejected = 0; ///< openSession returned 0 (shed)
    uint64_t poison_sessions = 0;   ///< garbage sessions opened
    uint64_t bytes_submitted = 0;
    uint64_t trace_bytes_per_session = 0; ///< summed over subjects
    double wall_seconds = 0; ///< streaming + drain (recording excluded)
    /**
     * Largest shadow table any single session analysis held. Total
     * service residency is bounded by num_workers times this, since
     * only that many analyses coexist.
     */
    uint64_t session_peak_granules = 0;
    ServiceStats stats;
    std::map<std::string, TenantServiceStats> tenants;
    std::vector<double> latencies; ///< per-session ingest-to-report
    std::string report_jsonl;      ///< deduplicated cross-tenant races
};

/**
 * Record each subject once, then run the fleet against a fresh
 * service built from config.service and drain it. Fatal on unknown
 * subject names.
 */
FleetResult runFleet(const FleetConfig &config);

} // namespace prorace::service

#endif // PRORACE_SERVICE_FLEET_HH

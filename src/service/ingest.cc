#include "service/ingest.hh"

#include <algorithm>

namespace prorace::service {

IngestQueue::IngestQueue(const IngestPolicy &policy) : policy_(policy) {}

IngestQueue::PushResult
IngestQueue::push(Chunk chunk)
{
    const uint64_t size = chunk.bytes.size();
    std::unique_lock<std::mutex> lock(mu_);
    TenantState &tenant = tenants_[chunk.tenant];
    if (closed_)
        return PushResult::kClosed;

    if (!chunk.close) {
        // Admission control: a chunk needs credit for its full size.
        // An oversized chunk (> the whole budget) is admitted when the
        // tenant is otherwise idle instead of deadlocking.
        auto admissible = [&] {
            if (tenant.outstanding == 0)
                return true;
            return tenant.outstanding + size <= policy_.credit_bytes;
        };
        if (!admissible()) {
            if (policy_.shed_on_full) {
                ++tenant.stats.shed_chunks;
                tenant.stats.shed_bytes += size;
                return PushResult::kShed;
            }
            ++tenant.stats.stalls;
            producer_cv_.wait(lock, [&] { return closed_ || admissible(); });
            if (closed_)
                return PushResult::kClosed;
        }
        tenant.outstanding += size;
        tenant.stats.peak_outstanding =
            std::max(tenant.stats.peak_outstanding, tenant.outstanding);
        ++tenant.stats.chunks;
        tenant.stats.bytes += size;
        buffered_bytes_ += size;
        peak_buffered_bytes_ =
            std::max(peak_buffered_bytes_, buffered_bytes_);
    }

    queue_.push_back(std::move(chunk));
    consumer_cv_.notify_one();
    return PushResult::kAccepted;
}

bool
IngestQueue::pop(Chunk &out)
{
    std::unique_lock<std::mutex> lock(mu_);
    consumer_cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty())
        return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    buffered_bytes_ -= out.bytes.size();
    return true;
}

void
IngestQueue::credit(const std::string &tenant, uint64_t bytes)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(tenant);
    if (it == tenants_.end())
        return;
    it->second.outstanding -= std::min(it->second.outstanding, bytes);
    producer_cv_.notify_all();
}

void
IngestQueue::close()
{
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    producer_cv_.notify_all();
    consumer_cv_.notify_all();
}

uint64_t
IngestQueue::bufferedBytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return buffered_bytes_;
}

IngestStats
IngestQueue::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    IngestStats stats;
    stats.peak_buffered_bytes = peak_buffered_bytes_;
    for (const auto &[name, state] : tenants_)
        stats.tenants[name] = state.stats;
    return stats;
}

} // namespace prorace::service

#include "service/service.hh"

#include <algorithm>

#include "support/log.hh"

namespace prorace::service {

AnalysisService::AnalysisService(const ServiceOptions &options)
    : options_(options), queue_(options.ingest)
{
    // The whole point of the service tier is bounded-memory streaming
    // detection; the one-shot detector is not an option here.
    options_.offline.incremental.enabled = true;
    executor_ = std::make_unique<exec::Executor>(options_.num_workers);
    pump_ = std::thread([this] { pumpLoop(); });
}

AnalysisService::~AnalysisService()
{
    shutdown();
}

void
AnalysisService::registerProgram(
    const std::string &program_id,
    std::shared_ptr<const asmkit::Program> program)
{
    std::lock_guard<std::mutex> lock(mu_);
    programs_[program_id] = std::move(program);
}

uint64_t
AnalysisService::openSession(const std::string &tenant,
                             const std::string &program_id)
{
    std::unique_lock<std::mutex> lock(mu_);
    if (shut_down_)
        return 0;
    auto pit = programs_.find(program_id);
    if (pit == programs_.end()) {
        warn("service: open of unregistered program '", program_id, "'");
        return 0;
    }

    // Session-slot backpressure: a saturated pool delays completions,
    // completions release slots, so producers block (or shed) here.
    auto slot_free = [&] {
        return active_per_tenant_[tenant] < options_.session_slots;
    };
    if (!slot_free()) {
        if (options_.ingest.shed_on_full) {
            ++sessions_shed_;
            return 0;
        }
        ++open_stalls_;
        slot_cv_.wait(lock, [&] { return shut_down_ || slot_free(); });
        if (shut_down_)
            return 0;
    }

    const uint64_t id = next_session_id_++;
    auto session = std::make_shared<SessionState>();
    session->id = id;
    session->tenant = tenant;
    session->program_id = program_id;
    session->program = pit->second;
    session->reader = trace::TraceReader(
        tenant + "/session-" + std::to_string(id));
    session->opened = std::chrono::steady_clock::now();
    sessions_[id] = session;
    ++active_per_tenant_[tenant];
    ++active_sessions_;
    peak_active_sessions_ =
        std::max(peak_active_sessions_, active_sessions_);
    ++tenant_stats_[tenant].sessions_opened;
    return id;
}

bool
AnalysisService::submit(uint64_t session_id, const uint8_t *data,
                        size_t size)
{
    IngestQueue::Chunk chunk;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = sessions_.find(session_id);
        if (it == sessions_.end() || it->second->close_submitted)
            return false;
        chunk.tenant = it->second->tenant;
    }
    chunk.session = session_id;
    chunk.bytes.assign(data, data + size);
    // push() may block for credit; never under mu_.
    return queue_.push(std::move(chunk)) ==
        IngestQueue::PushResult::kAccepted;
}

void
AnalysisService::closeSession(uint64_t session_id)
{
    IngestQueue::Chunk chunk;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = sessions_.find(session_id);
        if (it == sessions_.end() || it->second->close_submitted)
            return;
        it->second->close_submitted = true;
        chunk.tenant = it->second->tenant;
        ++closed_pending_;
    }
    chunk.session = session_id;
    chunk.close = true;
    queue_.push(std::move(chunk));
}

void
AnalysisService::pumpLoop()
{
    IngestQueue::Chunk chunk;
    while (queue_.pop(chunk)) {
        std::shared_ptr<SessionState> session;
        {
            std::lock_guard<std::mutex> lock(mu_);
            auto it = sessions_.find(chunk.session);
            if (it != sessions_.end())
                session = it->second;
        }
        if (!session) {
            // Session already dispatched (late chunk); just return the
            // credit so the producer is not charged for a lost chunk.
            if (!chunk.bytes.empty())
                queue_.credit(chunk.tenant, chunk.bytes.size());
            continue;
        }
        if (!chunk.close) {
            session->reader.feed(chunk.bytes);
            session->reader.poll();
            queue_.credit(chunk.tenant, chunk.bytes.size());
            continue;
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            sessions_.erase(chunk.session);
        }
        executor_->submit(
            [this, session] { analyzeSession(session); });
    }
}

void
AnalysisService::analyzeSession(std::shared_ptr<SessionState> session)
{
    SessionOutcome outcome;
    outcome.session_id = session->id;
    outcome.tenant = session->tenant;
    outcome.program_id = session->program_id;

    auto finished = session->reader.finish();
    if (!finished.ok()) {
        outcome.ok = false;
        outcome.error = finished.error().format();
    } else {
        trace::LoadedTrace &loaded = finished.value();
        outcome.loss = loaded.loss;
        outcome.compression = loaded.trace.meta.compression;
        core::OfflineOptions opts = options_.offline;
        // GC soundness gate: a lossy sync stream may hide fork edges,
        // so this session runs batched but unswept (still identical).
        if (loaded.loss.sync_dropped > 0)
            opts.incremental.enable_gc = false;
        core::OfflineAnalyzer analyzer(*session->program, opts);
        core::OfflineResult result = analyzer.analyze(loaded.trace);
        outcome.ok = true;
        outcome.report = std::move(result.report);
        outcome.detect_stats = result.detect_stats;
        outcome.incremental = result.incremental;
        outcome.prefilter = result.prefilter;
        outcome.quarantine = result.quarantine;
        outcome.extended_trace_events = result.extended_trace_events;
    }
    completeSession(session, std::move(outcome));
}

void
AnalysisService::completeSession(
    const std::shared_ptr<SessionState> &session, SessionOutcome outcome)
{
    std::lock_guard<std::mutex> lock(mu_);
    outcome.sequence = ++completion_sequence_;
    outcome.ingest_to_report_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      session->opened)
            .count();

    // The store lock nests inside mu_ (never the other way around), so
    // folding here keeps sequence numbers and store content consistent.
    if (outcome.ok) {
        store_.ingest(outcome.tenant, outcome.program_id, outcome.report,
                      outcome.sequence);
    }

    TenantServiceStats &ts = tenant_stats_[outcome.tenant];
    if (outcome.ok)
        ++ts.sessions_completed;
    else
        ++ts.sessions_failed;
    ts.extended_trace_events += outcome.extended_trace_events;
    ts.detect.merge(outcome.detect_stats);
    ts.compression.merge(outcome.compression);
    ts.incremental.merge(outcome.incremental);
    ts.prefilter.merge(outcome.prefilter);
    ts.quarantine.merge(outcome.quarantine);
    ts.segments_dropped += outcome.loss.segments_dropped;
    ts.sync_dropped += outcome.loss.sync_dropped;
    ts.latency_seconds.add(outcome.ingest_to_report_seconds);
    latencies_.push_back(outcome.ingest_to_report_seconds);
    outcomes_.push_back(std::move(outcome));

    auto it = active_per_tenant_.find(session->tenant);
    if (it != active_per_tenant_.end() && it->second > 0)
        --it->second;
    --active_sessions_;
    --closed_pending_;
    slot_cv_.notify_all();
    drain_cv_.notify_all();
}

void
AnalysisService::drain()
{
    // Waits for closed sessions only: a producer that opened a session
    // and is still streaming does not block other tenants' drains.
    std::unique_lock<std::mutex> lock(mu_);
    drain_cv_.wait(lock, [&] { return closed_pending_ == 0; });
}

void
AnalysisService::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (shut_down_)
            return;
        shut_down_ = true;
        slot_cv_.notify_all();
    }
    queue_.close();
    if (pump_.joinable())
        pump_.join();
    // Sessions never closed by their producer can't complete; wait only
    // for the analyses the pump actually dispatched.
    executor_.reset(); // waits for in-flight tasks
}

std::map<std::string, TenantServiceStats>
AnalysisService::tenantStats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return tenant_stats_;
}

ServiceStats
AnalysisService::stats() const
{
    ServiceStats stats;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (const auto &[tenant, ts] : tenant_stats_)
            stats.rollup.merge(ts);
        stats.sessions_shed = sessions_shed_;
        stats.open_stalls = open_stalls_;
        stats.peak_active_sessions = peak_active_sessions_;
    }
    stats.distinct_races = store_.distinctRaces();
    stats.report_observations = store_.totalObservations();
    stats.ingest = queue_.stats();
    if (executor_)
        stats.executor = executor_->stats();
    return stats;
}

std::vector<SessionOutcome>
AnalysisService::outcomes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return outcomes_;
}

std::vector<double>
AnalysisService::latencies() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return latencies_;
}

} // namespace prorace::service

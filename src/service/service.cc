#include "service/service.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "support/crc32.hh"
#include "support/log.hh"

namespace prorace::service {

namespace {

/** Thrown by the deadline tick; caught by the supervision loop. */
struct DeadlineExceeded : std::runtime_error {
    DeadlineExceeded() : std::runtime_error("session deadline exceeded")
    {
    }
};

constexpr uint32_t kCheckpointMagic = 0x4B435250; // "PRCK"
constexpr uint32_t kCheckpointVersion = 1;

/** A detector checkpoint file, parsed. */
struct CheckpointImage {
    uint64_t feed_cursor = 0;
    uint64_t feed_total = 0;
    std::vector<uint8_t> detector;
};

/**
 * Checkpoint file layout: magic, version, the stream identity it was
 * taken under (tenant, program, stream bytes + CRC), the feed cursor,
 * and the serialized detector, with a trailing CRC-32 over everything
 * before it. Written to a temp file and renamed into place, so a crash
 * mid-write leaves either the old checkpoint or none — never a torn
 * one (the trailing CRC catches torn temp files that got renamed by a
 * dying filesystem anyway).
 */
bool
writeCheckpointFile(const std::string &path, const std::string &tenant,
                    const std::string &program_id, uint64_t stream_bytes,
                    uint32_t stream_crc, uint64_t feed_cursor,
                    uint64_t feed_total,
                    const std::vector<uint8_t> &detector)
{
    support::ByteWriter w;
    w.u32(kCheckpointMagic);
    w.u32(kCheckpointVersion);
    w.str(tenant);
    w.str(program_id);
    w.u64(stream_bytes);
    w.u32(stream_crc);
    w.u64(feed_cursor);
    w.u64(feed_total);
    w.blob(detector);
    const uint32_t crc =
        crc32(w.bytes().data(), w.bytes().size());
    w.u32(crc);

    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out.write(reinterpret_cast<const char *>(w.bytes().data()),
                  static_cast<std::streamsize>(w.bytes().size()));
        if (!out)
            return false;
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

/**
 * Load and validate a checkpoint against the expected stream identity.
 * Any mismatch or damage means "no checkpoint" — the analysis cold-
 * starts, which is always correct.
 */
bool
loadCheckpointFile(const std::string &path, const std::string &tenant,
                   const std::string &program_id, uint64_t stream_bytes,
                   uint32_t stream_crc, CheckpointImage &image)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::vector<uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (bytes.size() < 4)
        return false;
    const size_t body = bytes.size() - 4;
    uint32_t stored_crc = 0;
    for (int i = 0; i < 4; ++i)
        stored_crc |= static_cast<uint32_t>(bytes[body + i]) << (8 * i);
    if (crc32(bytes.data(), body) != stored_crc)
        return false;
    support::ByteReader r(bytes.data(), body);
    if (r.u32() != kCheckpointMagic || r.u32() != kCheckpointVersion)
        return false;
    if (r.str() != tenant || r.str() != program_id)
        return false;
    if (r.u64() != stream_bytes || r.u32() != stream_crc)
        return false;
    image.feed_cursor = r.u64();
    image.feed_total = r.u64();
    image.detector = r.blob();
    return r.ok();
}

} // namespace

AnalysisService::AnalysisService(const ServiceOptions &options)
    : options_(options), queue_(options.ingest)
{
    // The whole point of the service tier is bounded-memory streaming
    // detection; the one-shot detector is not an option here.
    options_.offline.incremental.enabled = true;

    if (!options_.state_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(
            options_.state_dir + "/checkpoints", ec);
        if (ec) {
            warn("service: cannot create state dir '", options_.state_dir,
                 "': ", ec.message(), "; running without durability");
            options_.state_dir.clear();
        }
    }
    if (!options_.state_dir.empty()) {
        journal_ = std::make_unique<support::Journal>();
        std::string error;
        const bool ok = journal_->open(
            options_.state_dir + "/reports.jrnl", options_.journal,
            [this](const support::JournalRecord &record) {
                if (record.type == kReportIngestRecord &&
                    store_.applyIngestRecord(record.payload))
                    ++recovered_reports_;
            },
            &error);
        if (!ok) {
            warn("service: journal open failed: ", error,
                 "; running without durability");
            journal_.reset();
        } else {
            store_.bindJournal(journal_.get());
            // Resume sequence numbering above everything recovered so
            // first/last-seen ordering stays monotone across restarts.
            completion_sequence_ = store_.maxSequence();
        }
    }

    executor_ = std::make_unique<exec::Executor>(options_.num_workers);
    pump_ = std::thread([this] { pumpLoop(); });
}

AnalysisService::~AnalysisService()
{
    shutdown();
}

void
AnalysisService::registerProgram(
    const std::string &program_id,
    std::shared_ptr<const asmkit::Program> program)
{
    std::lock_guard<std::mutex> lock(mu_);
    programs_[program_id] = std::move(program);
}

uint64_t
AnalysisService::openSession(const std::string &tenant,
                             const std::string &program_id)
{
    std::unique_lock<std::mutex> lock(mu_);
    if (shut_down_)
        return 0;
    if (quarantined_tenants_.count(tenant)) {
        ++quarantine_rejected_opens_;
        return 0;
    }
    auto pit = programs_.find(program_id);
    if (pit == programs_.end()) {
        warn("service: open of unregistered program '", program_id, "'");
        return 0;
    }

    // Session-slot backpressure: a saturated pool delays completions,
    // completions release slots, so producers block (or shed) here.
    auto slot_free = [&] {
        return active_per_tenant_[tenant] < options_.session_slots;
    };
    if (!slot_free()) {
        if (options_.ingest.shed_on_full) {
            ++sessions_shed_;
            return 0;
        }
        ++open_stalls_;
        slot_cv_.wait(lock, [&] {
            return shut_down_ || slot_free() ||
                quarantined_tenants_.count(tenant) != 0;
        });
        if (shut_down_)
            return 0;
        if (quarantined_tenants_.count(tenant)) {
            ++quarantine_rejected_opens_;
            return 0;
        }
    }

    const uint64_t id = next_session_id_++;
    auto session = std::make_shared<SessionState>();
    session->id = id;
    session->tenant = tenant;
    session->program_id = program_id;
    session->program = pit->second;
    session->reader = trace::TraceReader(
        tenant + "/session-" + std::to_string(id));
    session->opened = std::chrono::steady_clock::now();
    sessions_[id] = session;
    ++active_per_tenant_[tenant];
    ++active_sessions_;
    peak_active_sessions_ =
        std::max(peak_active_sessions_, active_sessions_);
    ++tenant_stats_[tenant].sessions_opened;
    return id;
}

bool
AnalysisService::submit(uint64_t session_id, const uint8_t *data,
                        size_t size)
{
    IngestQueue::Chunk chunk;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = sessions_.find(session_id);
        if (it == sessions_.end() || it->second->close_submitted)
            return false;
        chunk.tenant = it->second->tenant;
    }
    chunk.session = session_id;
    chunk.bytes.assign(data, data + size);
    // push() may block for credit; never under mu_.
    return queue_.push(std::move(chunk)) ==
        IngestQueue::PushResult::kAccepted;
}

void
AnalysisService::closeSession(uint64_t session_id)
{
    IngestQueue::Chunk chunk;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = sessions_.find(session_id);
        if (it == sessions_.end() || it->second->close_submitted)
            return;
        it->second->close_submitted = true;
        chunk.tenant = it->second->tenant;
        ++closed_pending_;
    }
    chunk.session = session_id;
    chunk.close = true;
    queue_.push(std::move(chunk));
}

void
AnalysisService::pumpLoop()
{
    IngestQueue::Chunk chunk;
    while (queue_.pop(chunk)) {
        std::shared_ptr<SessionState> session;
        {
            std::lock_guard<std::mutex> lock(mu_);
            auto it = sessions_.find(chunk.session);
            if (it != sessions_.end())
                session = it->second;
        }
        if (!session) {
            // Session already dispatched (late chunk); just return the
            // credit so the producer is not charged for a lost chunk.
            if (!chunk.bytes.empty())
                queue_.credit(chunk.tenant, chunk.bytes.size());
            continue;
        }
        if (!chunk.close) {
            session->reader.feed(chunk.bytes);
            session->reader.poll();
            queue_.credit(chunk.tenant, chunk.bytes.size());
            continue;
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            sessions_.erase(chunk.session);
        }
        executor_->submit(
            [this, session] { analyzeSession(session); });
    }
}

std::string
AnalysisService::checkpointPath(const std::string &tenant,
                                const std::string &program_id,
                                uint64_t stream_bytes,
                                uint32_t stream_crc) const
{
    if (options_.state_dir.empty())
        return {};
    // FNV-1a over the full stream identity; the stream CRC+length make
    // accidental collisions across different byte streams irrelevant.
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](const void *data, size_t size) {
        const auto *p = static_cast<const uint8_t *>(data);
        for (size_t i = 0; i < size; ++i) {
            h ^= p[i];
            h *= 0x100000001b3ull;
        }
    };
    mix(tenant.data(), tenant.size());
    mix("\0", 1);
    mix(program_id.data(), program_id.size());
    mix(&stream_bytes, sizeof(stream_bytes));
    mix(&stream_crc, sizeof(stream_crc));
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.ckpt",
                  static_cast<unsigned long long>(h));
    return options_.state_dir + "/checkpoints/" + name;
}

void
AnalysisService::analyzeSession(std::shared_ptr<SessionState> session)
{
    SessionOutcome outcome;
    outcome.session_id = session->id;
    outcome.tenant = session->tenant;
    outcome.program_id = session->program_id;

    // Stream identity for checkpoint matching; finish() below does not
    // change what feed() already accumulated.
    const uint64_t stream_bytes = session->reader.streamBytes();
    const uint32_t stream_crc = session->reader.streamCrc();

    auto finished = session->reader.finish();
    if (!finished.ok()) {
        // Hard trace errors are deterministic properties of the bytes:
        // a retry re-parses the same stream and fails identically, so
        // fail fast — no retry, no quarantine strike.
        outcome.ok = false;
        outcome.error = finished.error().format();
        completeSession(session, std::move(outcome));
        return;
    }

    trace::LoadedTrace &loaded = finished.value();
    outcome.loss = loaded.loss;
    outcome.compression = loaded.trace.meta.compression;
    core::OfflineOptions opts = options_.offline;
    // GC soundness gate: a lossy sync stream may hide fork edges,
    // so this session runs batched but unswept (still identical).
    if (loaded.loss.sync_dropped > 0)
        opts.incremental.enable_gc = false;

    const std::string ckpt_path = checkpointPath(
        session->tenant, session->program_id, stream_bytes, stream_crc);
    const SupervisionPolicy &sup = options_.supervision;
    double backoff = sup.backoff_initial_seconds;
    std::string last_error;

    for (unsigned attempt = 0;; ++attempt) {
        outcome.attempts = attempt + 1;
        try {
            if (options_.analysis_fault_injector)
                options_.analysis_fault_injector(session->tenant,
                                                 session->id, attempt);

            // Fresh hooks per attempt: the previous attempt's lambdas
            // captured locals that are gone.
            opts.checkpoint = core::CheckpointHooks{};
            const auto deadline_start = std::chrono::steady_clock::now();
            if (sup.session_deadline_seconds > 0) {
                const double limit = sup.session_deadline_seconds;
                opts.checkpoint.tick = [deadline_start, limit] {
                    const double elapsed =
                        std::chrono::duration<double>(
                            std::chrono::steady_clock::now() -
                            deadline_start)
                            .count();
                    if (elapsed > limit)
                        throw DeadlineExceeded();
                };
            }

            CheckpointImage image;
            bool resumed = false;
            uint64_t checkpoints_written = 0;
            if (!ckpt_path.empty()) {
                if (loadCheckpointFile(ckpt_path, session->tenant,
                                       session->program_id, stream_bytes,
                                       stream_crc, image)) {
                    opts.checkpoint.restore = &image.detector;
                    opts.checkpoint.resume_events = image.feed_cursor;
                    opts.checkpoint.resume_feed_total = image.feed_total;
                    opts.checkpoint.resumed = &resumed;
                }
                opts.checkpoint.on_boundary =
                    [&](uint64_t cursor, uint64_t total,
                        detect::IncrementalFastTrack &detector) {
                        support::ByteWriter w;
                        detector.serializeState(w);
                        if (writeCheckpointFile(
                                ckpt_path, session->tenant,
                                session->program_id, stream_bytes,
                                stream_crc, cursor, total, w.bytes()))
                            ++checkpoints_written;
                    };
            }

            core::OfflineAnalyzer analyzer(*session->program, opts);
            core::OfflineResult result = analyzer.analyze(loaded.trace);
            outcome.ok = true;
            outcome.warm_started = resumed;
            outcome.checkpoints_written = checkpoints_written;
            outcome.report = std::move(result.report);
            outcome.detect_stats = result.detect_stats;
            outcome.incremental = result.incremental;
            outcome.prefilter = result.prefilter;
            outcome.quarantine = result.quarantine;
            outcome.extended_trace_events = result.extended_trace_events;
            break;
        } catch (const DeadlineExceeded &e) {
            ++outcome.deadline_timeouts;
            last_error = e.what();
        } catch (const std::exception &e) {
            last_error = e.what();
        }

        if (attempt >= sup.max_retries) {
            // Retries exhausted: quarantine the session. It completes
            // as failed — releasing its slot so the tenant's other
            // work (and everyone else's) keeps flowing — and strikes
            // its tenant.
            outcome.ok = false;
            outcome.quarantined = true;
            outcome.error = "quarantined after " +
                std::to_string(outcome.attempts) +
                " attempts: " + last_error;
            warn("service: session ", session->id, " (", session->tenant,
                 ") quarantined: ", last_error);
            break;
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double>(backoff));
        backoff *= sup.backoff_multiplier;
    }
    completeSession(session, std::move(outcome));
}

void
AnalysisService::completeSession(
    const std::shared_ptr<SessionState> &session, SessionOutcome outcome)
{
    std::lock_guard<std::mutex> lock(mu_);
    outcome.sequence = ++completion_sequence_;
    outcome.ingest_to_report_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      session->opened)
            .count();

    // The store lock nests inside mu_ (never the other way around), so
    // folding here keeps sequence numbers and store content consistent.
    if (outcome.ok) {
        store_.ingest(outcome.tenant, outcome.program_id, outcome.report,
                      outcome.sequence);
    }

    TenantServiceStats &ts = tenant_stats_[outcome.tenant];
    if (outcome.ok)
        ++ts.sessions_completed;
    else
        ++ts.sessions_failed;
    ts.extended_trace_events += outcome.extended_trace_events;
    ts.detect.merge(outcome.detect_stats);
    ts.compression.merge(outcome.compression);
    ts.incremental.merge(outcome.incremental);
    ts.prefilter.merge(outcome.prefilter);
    ts.quarantine.merge(outcome.quarantine);
    ts.segments_dropped += outcome.loss.segments_dropped;
    ts.sync_dropped += outcome.loss.sync_dropped;
    ts.segments_seen += outcome.loss.segments_seen;
    ts.bytes_skipped += outcome.loss.bytes_skipped;
    ts.pebs_dropped += outcome.loss.pebs_dropped;
    ts.pt_streams_dropped += outcome.loss.pt_streams_dropped;
    ts.pt_streams_damaged += outcome.loss.pt_streams_damaged;
    if (outcome.loss.truncated)
        ++ts.truncated_streams;
    ts.analysis_retries += outcome.attempts - 1;
    ts.deadline_timeouts += outcome.deadline_timeouts;
    if (outcome.warm_started)
        ++ts.warm_starts;
    ts.checkpoints_written += outcome.checkpoints_written;
    if (outcome.quarantined) {
        ++ts.sessions_quarantined;
        const unsigned strikes =
            options_.supervision.tenant_quarantine_strikes;
        if (strikes > 0 && ts.sessions_quarantined >= strikes &&
            !ts.quarantined) {
            ts.quarantined = true;
            quarantined_tenants_.insert(outcome.tenant);
            warn("service: tenant '", outcome.tenant,
                 "' quarantined after ", ts.sessions_quarantined,
                 " poisoned sessions");
            abortTenantSessionsLocked(outcome.tenant);
        }
    }
    ts.latency_seconds.add(outcome.ingest_to_report_seconds);
    latencies_.push_back(outcome.ingest_to_report_seconds);
    outcomes_.push_back(std::move(outcome));

    auto it = active_per_tenant_.find(session->tenant);
    if (it != active_per_tenant_.end() && it->second > 0)
        --it->second;
    --active_sessions_;
    --closed_pending_;
    slot_cv_.notify_all();
    drain_cv_.notify_all();
}

void
AnalysisService::abortTenantSessionsLocked(const std::string &tenant)
{
    // Drop the tenant's still-streaming sessions. Sessions whose close
    // is already in flight keep their closed_pending_ accounting and
    // run to completion; in-flight chunks of the dropped ones hit the
    // pump's late-chunk path, which refunds their credits. Slots free
    // here so a quarantine can never wedge openSession waiters.
    for (auto it = sessions_.begin(); it != sessions_.end();) {
        const SessionState &s = *it->second;
        if (s.tenant != tenant || s.close_submitted) {
            ++it;
            continue;
        }
        it = sessions_.erase(it);
        ++quarantine_aborted_sessions_;
        auto ait = active_per_tenant_.find(tenant);
        if (ait != active_per_tenant_.end() && ait->second > 0)
            --ait->second;
        --active_sessions_;
    }
    slot_cv_.notify_all();
    drain_cv_.notify_all();
}

void
AnalysisService::drain()
{
    // Waits for closed sessions only: a producer that opened a session
    // and is still streaming does not block other tenants' drains.
    std::unique_lock<std::mutex> lock(mu_);
    drain_cv_.wait(lock, [&] { return closed_pending_ == 0; });
}

void
AnalysisService::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (shut_down_)
            return;
        shut_down_ = true;
        slot_cv_.notify_all();
    }
    queue_.close();
    if (pump_.joinable())
        pump_.join();
    // Sessions never closed by their producer can't complete; wait only
    // for the analyses the pump actually dispatched.
    executor_.reset(); // waits for in-flight tasks
    // Journal closes after the last completion folded in: close()
    // syncs, so a clean shutdown loses nothing.
    if (journal_)
        journal_->close();
}

bool
AnalysisService::tenantQuarantined(const std::string &tenant) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return quarantined_tenants_.count(tenant) != 0;
}

void
AnalysisService::syncJournal()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (journal_)
        journal_->sync();
}

std::map<std::string, TenantServiceStats>
AnalysisService::tenantStats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return tenant_stats_;
}

ServiceStats
AnalysisService::stats() const
{
    ServiceStats stats;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (const auto &[tenant, ts] : tenant_stats_)
            stats.rollup.merge(ts);
        stats.sessions_shed = sessions_shed_;
        stats.open_stalls = open_stalls_;
        stats.peak_active_sessions = peak_active_sessions_;
        stats.durable = journal_ != nullptr;
        stats.recovered_reports = recovered_reports_;
        stats.tenants_quarantined = quarantined_tenants_.size();
        stats.quarantine_rejected_opens = quarantine_rejected_opens_;
        stats.quarantine_aborted_sessions = quarantine_aborted_sessions_;
        if (journal_)
            stats.journal = journal_->stats();
    }
    stats.distinct_races = store_.distinctRaces();
    stats.report_observations = store_.totalObservations();
    stats.ingest = queue_.stats();
    if (executor_)
        stats.executor = executor_->stats();
    return stats;
}

std::vector<SessionOutcome>
AnalysisService::outcomes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return outcomes_;
}

std::vector<double>
AnalysisService::latencies() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return latencies_;
}

} // namespace prorace::service

/**
 * @file
 * The long-running multi-tenant analysis service.
 *
 * ProRace's deployment model keeps production machines cheap and moves
 * the heavyweight analysis to dedicated machines; this is that backend
 * tier as one process. Producers open *sessions* (one recorded run
 * each), stream v4 trace bytes in chunks, and close; the service tails
 * each session's byte stream with a trace::TraceReader cursor, and on
 * close hands the ingested trace to the offline pipeline on the
 * work-stealing executor, with streaming detection
 * (detect::IncrementalFastTrack) so detector memory stays bounded on
 * long traces. Finished reports fold into the cross-tenant ReportStore.
 *
 * Two mechanisms bound resident memory regardless of producer count or
 * stream length (DESIGN.md §13.4):
 *
 *   1. Chunk credits (service/ingest.hh): raw queued bytes per tenant
 *      never exceed the credit budget; producers stall or shed.
 *   2. Session slots: a tenant may have at most session_slots sessions
 *      resident (ingesting or awaiting/under analysis). A saturated
 *      analysis pool delays completions, which exhausts slots, which
 *      stalls (or sheds) producers at openSession — backpressure
 *      propagates from the pool to the fleet instead of accumulating
 *      unbounded parsed traces.
 *
 * Every per-session OfflineResult's counters are aggregated per tenant
 * and service-wide (the --stats rollup), not just kept from the last
 * run.
 *
 * With a state_dir configured the service is additionally crash-safe
 * and self-healing (DESIGN.md §15): the report store rides a
 * write-ahead journal (support/journal.hh) and recovers byte-
 * identically on restart; session analyses checkpoint the streaming
 * detector at epoch-GC boundaries and warm-start when the same byte
 * stream is analyzed again; and a SupervisionPolicy retries faulting
 * analyses with exponential backoff before quarantining the session —
 * and eventually the tenant — so a poisoned producer degrades into a
 * statistic instead of an outage.
 */

#ifndef PRORACE_SERVICE_SERVICE_HH
#define PRORACE_SERVICE_SERVICE_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "asmkit/program.hh"
#include "core/offline.hh"
#include "exec/executor.hh"
#include "service/ingest.hh"
#include "service/report_store.hh"
#include "support/stats.hh"
#include "trace/trace_file.hh"

namespace prorace::service {

/**
 * Self-healing policy: what the service does when a session's analysis
 * misbehaves (throws, or overruns its deadline). Failed attempts are
 * retried with exponential backoff; a session that exhausts its retries
 * is *quarantined* — it completes as failed, releases its slot and
 * credits, and counts a strike against its tenant. A tenant collecting
 * tenant_quarantine_strikes quarantined sessions is itself quarantined:
 * its open sessions are aborted and further opens are rejected, so one
 * poisoned producer cannot take the pool down or starve the fleet.
 *
 * Hard trace errors (uninterpretable stream) are NOT retried: the input
 * is deterministic, so a retry would re-fail identically.
 */
struct SupervisionPolicy {
    /**
     * Per-attempt analysis deadline in seconds; 0 disables. Enforced
     * cooperatively at every streaming-detection batch boundary, so
     * granularity is one batch. With checkpointing on (state_dir), a
     * retried attempt warm-starts from the last checkpoint, so repeated
     * timeouts still make forward progress.
     */
    double session_deadline_seconds = 0;
    /** Analysis attempts after the first before quarantining. */
    unsigned max_retries = 2;
    /** Sleep before the first retry; doubles (multiplier) per retry. */
    double backoff_initial_seconds = 0.05;
    double backoff_multiplier = 2.0;
    /**
     * Quarantined sessions before the whole tenant is quarantined;
     * 0 = never quarantine tenants.
     */
    unsigned tenant_quarantine_strikes = 3;
};

/** Service configuration. */
struct ServiceOptions {
    /** Analysis pool size (work-stealing executor threads). */
    unsigned num_workers = 2;
    /** Concurrent resident sessions allowed per tenant. */
    unsigned session_slots = 2;
    IngestPolicy ingest;
    /**
     * Offline-pipeline configuration applied to every session.
     * incremental.enabled is forced on; incremental.enable_gc is
     * additionally cleared per session when that session's sync stream
     * arrived damaged (the GC soundness gate).
     */
    core::OfflineOptions offline;
    /**
     * Durable-state directory; empty = fully in-memory (the pre-crash-
     * safety behavior). When set, the report store is backed by a
     * write-ahead journal at <state_dir>/reports.jrnl — restart replays
     * it and recovers the store byte-identically up to the last synced
     * record — and session analyses checkpoint the streaming detector
     * to <state_dir>/checkpoints/ at epoch-GC boundaries, so a
     * re-streamed session (same tenant, program, and byte stream)
     * warm-starts instead of re-detecting from event zero.
     */
    std::string state_dir;
    /** Journal durability knobs (sync cadence). */
    support::Journal::Options journal;
    SupervisionPolicy supervision;
    /**
     * Test hook: called at the start of every analysis attempt
     * (tenant, session id, attempt index). May throw to simulate an
     * analysis crash; the supervision machinery treats it exactly like
     * a real fault. Null in production.
     */
    std::function<void(const std::string &tenant, uint64_t session_id,
                       unsigned attempt)>
        analysis_fault_injector;
};

/** What one completed session produced. */
struct SessionOutcome {
    uint64_t session_id = 0;
    uint64_t sequence = 0; ///< completion order (ReportStore timeline)
    std::string tenant;
    std::string program_id;
    bool ok = false;
    std::string error; ///< TraceError message when !ok
    detect::RaceReport report;
    trace::SegmentLoss loss;
    /** v5 columnar compression counters of the streamed trace. */
    trace::CompressionStats compression;
    detect::FastTrackStats detect_stats;
    detect::IncrementalStats incremental;
    core::PrefilterStats prefilter;
    core::QuarantineStats quarantine;
    uint64_t extended_trace_events = 0;
    double ingest_to_report_seconds = 0; ///< openSession -> store fold
    /** Supervision: how many analysis attempts this session took. */
    unsigned attempts = 1;
    /** Attempts aborted by the per-session deadline. */
    uint64_t deadline_timeouts = 0;
    /** Session quarantined (retries exhausted); implies !ok. */
    bool quarantined = false;
    /** Analysis resumed from a detector checkpoint (warm start). */
    bool warm_started = false;
    /** Detector checkpoints written during this session's analysis. */
    uint64_t checkpoints_written = 0;
};

/** Aggregated analysis counters (per tenant, and merged service-wide). */
struct TenantServiceStats {
    uint64_t sessions_opened = 0;
    uint64_t sessions_completed = 0;
    uint64_t sessions_failed = 0; ///< uninterpretable streams
    uint64_t extended_trace_events = 0;
    detect::FastTrackStats detect;
    /** v5 compression counters summed over the tenant's traces. */
    trace::CompressionStats compression;
    detect::IncrementalStats incremental;
    core::PrefilterStats prefilter;
    core::QuarantineStats quarantine;
    uint64_t segments_dropped = 0;
    uint64_t sync_dropped = 0;
    // Full salvage/loss accounting (trace::SegmentLoss rollup): what
    // each tenant's streams lost to damage, surfaced in --stats.
    uint64_t segments_seen = 0;
    uint64_t bytes_skipped = 0;
    uint64_t pebs_dropped = 0;
    uint64_t pt_streams_dropped = 0;
    uint64_t pt_streams_damaged = 0;
    uint64_t truncated_streams = 0;
    // Supervision counters.
    uint64_t sessions_quarantined = 0;
    uint64_t analysis_retries = 0;   ///< extra attempts beyond the first
    uint64_t deadline_timeouts = 0;  ///< attempts killed by the deadline
    uint64_t warm_starts = 0;        ///< sessions resumed from checkpoint
    uint64_t checkpoints_written = 0;
    bool quarantined = false;        ///< whole tenant quarantined
    RunningStat latency_seconds; ///< ingest-to-report per session

    void
    merge(const TenantServiceStats &other)
    {
        sessions_opened += other.sessions_opened;
        sessions_completed += other.sessions_completed;
        sessions_failed += other.sessions_failed;
        extended_trace_events += other.extended_trace_events;
        detect.merge(other.detect);
        compression.merge(other.compression);
        incremental.merge(other.incremental);
        prefilter.merge(other.prefilter);
        quarantine.merge(other.quarantine);
        segments_dropped += other.segments_dropped;
        sync_dropped += other.sync_dropped;
        segments_seen += other.segments_seen;
        bytes_skipped += other.bytes_skipped;
        pebs_dropped += other.pebs_dropped;
        pt_streams_dropped += other.pt_streams_dropped;
        pt_streams_damaged += other.pt_streams_damaged;
        truncated_streams += other.truncated_streams;
        sessions_quarantined += other.sessions_quarantined;
        analysis_retries += other.analysis_retries;
        deadline_timeouts += other.deadline_timeouts;
        warm_starts += other.warm_starts;
        checkpoints_written += other.checkpoints_written;
        quarantined = quarantined || other.quarantined;
        latency_seconds.merge(other.latency_seconds);
    }
};

/** Service-wide snapshot: the rollup plus frontend/pool counters. */
struct ServiceStats {
    TenantServiceStats rollup; ///< every tenant merged
    uint64_t sessions_shed = 0;      ///< openSession rejected (shedding)
    uint64_t open_stalls = 0;        ///< openSession waits for a slot
    uint64_t peak_active_sessions = 0;
    uint64_t distinct_races = 0;     ///< ReportStore dedup size
    uint64_t report_observations = 0;
    // Durability & self-healing (zero / false without a state_dir).
    bool durable = false;            ///< journal open and bound
    uint64_t recovered_reports = 0;  ///< journal records replayed at boot
    uint64_t tenants_quarantined = 0;
    uint64_t quarantine_rejected_opens = 0;
    uint64_t quarantine_aborted_sessions = 0;
    support::JournalStats journal;
    IngestStats ingest;
    exec::ExecutorStats executor;
};

class AnalysisService
{
  public:
    explicit AnalysisService(const ServiceOptions &options = {});

    /** Shuts down (drains outstanding work) if not done explicitly. */
    ~AnalysisService();

    AnalysisService(const AnalysisService &) = delete;
    AnalysisService &operator=(const AnalysisService &) = delete;

    /**
     * Make @p program analyzable under @p program_id. Sessions name the
     * id; the service keeps the binary (analysis machines have the
     * symbolized binaries in the paper's deployment, too).
     */
    void registerProgram(const std::string &program_id,
                         std::shared_ptr<const asmkit::Program> program);

    /**
     * Open a session. Blocks while the tenant is out of session slots
     * (or returns 0 immediately under the shedding policy, and for
     * unknown program ids / after shutdown). Returns the session id.
     */
    uint64_t openSession(const std::string &tenant,
                         const std::string &program_id);

    /**
     * Stream trace bytes into the session. Chunking is arbitrary —
     * segment boundaries need not be respected. Returns false when the
     * chunk was shed (credit exhausted under the shedding policy) or
     * the session is unknown/closed; shed bytes degrade into segment
     * loss, which ingestion tolerates.
     */
    bool submit(uint64_t session_id, const uint8_t *data, size_t size);

    bool
    submit(uint64_t session_id, const std::vector<uint8_t> &bytes)
    {
        return submit(session_id, bytes.data(), bytes.size());
    }

    /** End of stream: triggers analysis of everything ingested. */
    void closeSession(uint64_t session_id);

    /** Block until every closed session's analysis has completed. */
    void drain();

    /**
     * Stop intake, drain, and join the pump and pool. Idempotent;
     * further opens/submits fail.
     */
    void shutdown();

    const ReportStore &store() const { return store_; }

    /** True when @p tenant has been quarantined (opens rejected). */
    bool tenantQuarantined(const std::string &tenant) const;

    /** Force-sync the report journal (no-op without a state_dir). */
    void syncJournal();

    /** Per-tenant aggregated counters. */
    std::map<std::string, TenantServiceStats> tenantStats() const;

    /** Service-wide rollup. */
    ServiceStats stats() const;

    /** Completed-session records, in completion order. */
    std::vector<SessionOutcome> outcomes() const;

    /** Ingest-to-report latencies (seconds), one per completion. */
    std::vector<double> latencies() const;

  private:
    struct SessionState {
        uint64_t id = 0;
        std::string tenant;
        std::string program_id;
        std::shared_ptr<const asmkit::Program> program;
        trace::TraceReader reader;
        std::chrono::steady_clock::time_point opened;
        bool close_submitted = false;
    };

    void pumpLoop();
    void analyzeSession(std::shared_ptr<SessionState> session);
    void completeSession(const std::shared_ptr<SessionState> &session,
                         SessionOutcome outcome);
    /** Checkpoint file path of one stream identity ("" = disabled). */
    std::string checkpointPath(const std::string &tenant,
                               const std::string &program_id,
                               uint64_t stream_bytes,
                               uint32_t stream_crc) const;
    /** Abort every open (not yet closed) session of @p tenant. */
    void abortTenantSessionsLocked(const std::string &tenant);

    ServiceOptions options_;
    IngestQueue queue_;
    ReportStore store_;
    std::unique_ptr<support::Journal> journal_;
    uint64_t recovered_reports_ = 0;

    mutable std::mutex mu_;
    std::condition_variable slot_cv_;  ///< session slot released
    std::condition_variable drain_cv_; ///< active count hit zero
    std::map<std::string,
             std::shared_ptr<const asmkit::Program>> programs_;
    std::map<uint64_t, std::shared_ptr<SessionState>> sessions_;
    std::map<std::string, unsigned> active_per_tenant_;
    std::map<std::string, TenantServiceStats> tenant_stats_;
    std::vector<SessionOutcome> outcomes_;
    std::vector<double> latencies_;
    uint64_t next_session_id_ = 1;
    uint64_t completion_sequence_ = 0;
    uint64_t active_sessions_ = 0; ///< opened, analysis not yet folded
    uint64_t closed_pending_ = 0;  ///< closed, analysis not yet folded
    uint64_t peak_active_sessions_ = 0;
    uint64_t sessions_shed_ = 0;
    uint64_t open_stalls_ = 0;
    std::set<std::string> quarantined_tenants_;
    uint64_t quarantine_rejected_opens_ = 0;
    uint64_t quarantine_aborted_sessions_ = 0;
    bool shut_down_ = false;

    // Constructed last, destroyed first: the pump and pool reference
    // everything above.
    std::unique_ptr<exec::Executor> executor_;
    std::thread pump_;
};

} // namespace prorace::service

#endif // PRORACE_SERVICE_SERVICE_HH

#include "service/report_store.hh"

#include <algorithm>
#include <sstream>

namespace prorace::service {

std::string
rwSignatureName(uint8_t signature)
{
    std::string name;
    name += (signature & 1) ? 'W' : 'R';
    name += (signature & 2) ? 'W' : 'R';
    return name;
}

uint64_t
programFingerprint(const std::string &program_id)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : program_id) {
        h ^= static_cast<uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

RaceSiteKey
raceSiteKey(uint64_t program_fp, const detect::DataRace &race)
{
    RaceSiteKey key;
    key.program_fp = program_fp;
    // Normalize by instruction order so the key does not depend on
    // which side the detector happened to see first.
    const bool prior_is_min =
        race.prior.insn_index <= race.current.insn_index;
    const detect::RaceAccess &lo =
        prior_is_min ? race.prior : race.current;
    const detect::RaceAccess &hi =
        prior_is_min ? race.current : race.prior;
    key.min_insn = lo.insn_index;
    key.max_insn = hi.insn_index;
    key.rw_signature = static_cast<uint8_t>((lo.is_write ? 1 : 0) |
                                            (hi.is_write ? 2 : 0));
    return key;
}

void
ReportStore::ingest(const std::string &tenant,
                    const std::string &program_id,
                    const detect::RaceReport &report, uint64_t sequence)
{
    std::lock_guard<std::mutex> lock(mu_);
    ++observations_;
    const uint64_t fp = programFingerprint(program_id);
    for (const detect::DataRace &race : report.races()) {
        const RaceSiteKey key = raceSiteKey(fp, race);
        auto [it, inserted] = races_.try_emplace(key);
        StoredRace &entry = it->second;
        if (inserted) {
            entry.key = key;
            entry.program_id = program_id;
            entry.first_seen = sequence;
            entry.example_addr = race.addr;
            entry.example = race;
        }
        // Completions can fold in out of sequence order (the analysis
        // pool finishes sessions in any order): min/max, not first/last
        // arrival.
        entry.first_seen = std::min(entry.first_seen, sequence);
        entry.last_seen = std::max(entry.last_seen, sequence);
        ++entry.observations;
        entry.tenants.insert(tenant);
    }
}

std::vector<StoredRace>
ReportStore::query(const std::string &program_id,
                   const std::string &tenant) const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<StoredRace> out;
    out.reserve(races_.size());
    for (const auto &[key, entry] : races_) {
        if (!program_id.empty() && entry.program_id != program_id)
            continue;
        if (!tenant.empty() && !entry.tenants.count(tenant))
            continue;
        out.push_back(entry);
    }
    std::sort(out.begin(), out.end(),
              [](const StoredRace &a, const StoredRace &b) {
                  if (a.program_id != b.program_id)
                      return a.program_id < b.program_id;
                  return a.key < b.key;
              });
    return out;
}

size_t
ReportStore::distinctRaces() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return races_.size();
}

uint64_t
ReportStore::totalObservations() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return observations_;
}

std::string
ReportStore::toJsonl() const
{
    std::ostringstream out;
    for (const StoredRace &entry : query()) {
        out << "{\"program\":\"" << entry.program_id << "\""
            << ",\"insn_pair\":[" << entry.key.min_insn << ","
            << entry.key.max_insn << "]"
            << ",\"rw\":\"" << rwSignatureName(entry.key.rw_signature)
            << "\""
            << ",\"observations\":" << entry.observations
            << ",\"tenants\":" << entry.tenants.size()
            << ",\"first_seen\":" << entry.first_seen
            << ",\"last_seen\":" << entry.last_seen << ",\"addr\":\"0x"
            << std::hex << entry.example_addr << std::dec << "\"}\n";
    }
    return out.str();
}

} // namespace prorace::service

#include "service/report_store.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace prorace::service {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        const auto u = static_cast<unsigned char>(c);
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (u < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", u);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

std::string
rwSignatureName(uint8_t signature)
{
    std::string name;
    name += (signature & 1) ? 'W' : 'R';
    name += (signature & 2) ? 'W' : 'R';
    return name;
}

uint64_t
programFingerprint(const std::string &program_id)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : program_id) {
        h ^= static_cast<uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

RaceSiteKey
raceSiteKey(uint64_t program_fp, const detect::DataRace &race)
{
    RaceSiteKey key;
    key.program_fp = program_fp;
    // Normalize by instruction order so the key does not depend on
    // which side the detector happened to see first.
    const bool prior_is_min =
        race.prior.insn_index <= race.current.insn_index;
    const detect::RaceAccess &lo =
        prior_is_min ? race.prior : race.current;
    const detect::RaceAccess &hi =
        prior_is_min ? race.current : race.prior;
    key.min_insn = lo.insn_index;
    key.max_insn = hi.insn_index;
    key.rw_signature = static_cast<uint8_t>((lo.is_write ? 1 : 0) |
                                            (hi.is_write ? 2 : 0));
    return key;
}

namespace {

constexpr uint32_t kIngestRecordVersion = 1;

void
putRaceAccess(support::ByteWriter &w, const detect::RaceAccess &access)
{
    w.u32(access.tid);
    w.u32(access.insn_index);
    w.u8(access.is_write ? 1 : 0);
    w.u64(access.tsc);
    w.u8(static_cast<uint8_t>(access.origin));
}

detect::RaceAccess
getRaceAccess(support::ByteReader &r)
{
    detect::RaceAccess access;
    access.tid = r.u32();
    access.insn_index = r.u32();
    access.is_write = r.u8() != 0;
    access.tsc = r.u64();
    access.origin = static_cast<detect::AccessOrigin>(r.u8());
    return access;
}

} // namespace

std::vector<uint8_t>
ReportStore::encodeIngestRecord(const std::string &tenant,
                                const std::string &program_id,
                                const detect::RaceReport &report,
                                uint64_t sequence)
{
    support::ByteWriter w;
    w.u32(kIngestRecordVersion);
    w.u64(sequence);
    w.str(tenant);
    w.str(program_id);
    w.u32(static_cast<uint32_t>(report.races().size()));
    for (const detect::DataRace &race : report.races()) {
        w.u64(race.addr);
        putRaceAccess(w, race.prior);
        putRaceAccess(w, race.current);
    }
    return w.take();
}

bool
ReportStore::applyIngestRecord(const std::vector<uint8_t> &payload)
{
    support::ByteReader r(payload.data(), payload.size());
    if (r.u32() != kIngestRecordVersion)
        return false;
    const uint64_t sequence = r.u64();
    const std::string tenant = r.str();
    const std::string program_id = r.str();
    const uint32_t count = r.u32();
    if (!r.ok() || count > payload.size())
        return false;
    std::vector<detect::DataRace> races;
    races.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
        detect::DataRace race;
        race.addr = r.u64();
        race.prior = getRaceAccess(r);
        race.current = getRaceAccess(r);
        races.push_back(race);
    }
    if (!r.ok() || !r.exhausted())
        return false;
    std::lock_guard<std::mutex> lock(mu_);
    ingestLocked(tenant, program_id, races, sequence);
    return true;
}

void
ReportStore::bindJournal(support::Journal *journal)
{
    std::lock_guard<std::mutex> lock(mu_);
    journal_ = journal;
}

uint64_t
ReportStore::maxSequence() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return max_sequence_;
}

void
ReportStore::ingest(const std::string &tenant,
                    const std::string &program_id,
                    const detect::RaceReport &report, uint64_t sequence)
{
    std::lock_guard<std::mutex> lock(mu_);
    // Journal first: a crash between the append and the in-memory fold
    // replays the record on restart, and a crash before the append
    // loses a report the caller never saw acknowledged. Either way the
    // recovered store equals a replay of the journal's valid prefix.
    if (journal_)
        journal_->append(
            kReportIngestRecord,
            encodeIngestRecord(tenant, program_id, report, sequence));
    ingestLocked(tenant, program_id, report.races(), sequence);
}

void
ReportStore::ingestLocked(const std::string &tenant,
                          const std::string &program_id,
                          const std::vector<detect::DataRace> &races,
                          uint64_t sequence)
{
    ++observations_;
    max_sequence_ = std::max(max_sequence_, sequence);
    const uint64_t fp = programFingerprint(program_id);
    for (const detect::DataRace &race : races) {
        const RaceSiteKey key = raceSiteKey(fp, race);
        auto [it, inserted] = races_.try_emplace(key);
        StoredRace &entry = it->second;
        if (inserted) {
            entry.key = key;
            entry.program_id = program_id;
            entry.first_seen = sequence;
            entry.example_addr = race.addr;
            entry.example = race;
        }
        // Completions can fold in out of sequence order (the analysis
        // pool finishes sessions in any order): min/max, not first/last
        // arrival.
        entry.first_seen = std::min(entry.first_seen, sequence);
        entry.last_seen = std::max(entry.last_seen, sequence);
        ++entry.observations;
        entry.tenants.insert(tenant);
    }
}

std::vector<StoredRace>
ReportStore::query(const std::string &program_id,
                   const std::string &tenant) const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<StoredRace> out;
    out.reserve(races_.size());
    for (const auto &[key, entry] : races_) {
        if (!program_id.empty() && entry.program_id != program_id)
            continue;
        if (!tenant.empty() && !entry.tenants.count(tenant))
            continue;
        out.push_back(entry);
    }
    std::sort(out.begin(), out.end(),
              [](const StoredRace &a, const StoredRace &b) {
                  if (a.program_id != b.program_id)
                      return a.program_id < b.program_id;
                  return a.key < b.key;
              });
    return out;
}

size_t
ReportStore::distinctRaces() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return races_.size();
}

uint64_t
ReportStore::totalObservations() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return observations_;
}

std::string
ReportStore::toJsonl() const
{
    std::ostringstream out;
    for (const StoredRace &entry : query()) {
        out << "{\"program\":\"" << jsonEscape(entry.program_id) << "\""
            << ",\"insn_pair\":[" << entry.key.min_insn << ","
            << entry.key.max_insn << "]"
            << ",\"rw\":\"" << rwSignatureName(entry.key.rw_signature)
            << "\""
            << ",\"observations\":" << entry.observations
            << ",\"tenants\":" << entry.tenants.size()
            << ",\"first_seen\":" << entry.first_seen
            << ",\"last_seen\":" << entry.last_seen << ",\"addr\":\"0x"
            << std::hex << entry.example_addr << std::dec << "\"}\n";
    }
    return out.str();
}

} // namespace prorace::service

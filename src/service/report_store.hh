/**
 * @file
 * Cross-tenant race report store.
 *
 * A fleet service sees the same static race over and over: every
 * session of every tenant running the same binary rediscovers it. The
 * store aggregates per-session RaceReports into one deduplicated,
 * queryable structure keyed by
 *
 *   (program fingerprint, normalized instruction pair, r/w signature)
 *
 * — the site identity of a race, stable across sessions, tenants, and
 * address-space differences (the racy *address* varies run to run for
 * heap objects; the racing instruction pair does not). Each entry
 * carries fleet-level evidence: when the race was first and last
 * observed (service-assigned arrival sequence numbers, so ordering is
 * deterministic), how many sessions reported it, and how many distinct
 * tenants — the paper's deployment argument is exactly that aggregating
 * cheap per-machine samples across a fleet accumulates confidence.
 *
 * Everything is serializable to JSONL (one entry per line) for the
 * bench/CI tooling, matching the figure harness conventions.
 */

#ifndef PRORACE_SERVICE_REPORT_STORE_HH
#define PRORACE_SERVICE_REPORT_STORE_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "detect/report.hh"
#include "support/journal.hh"

namespace prorace::service {

/** Journal record type tag of one serialized ingest() call. */
inline constexpr uint32_t kReportIngestRecord = 1;

/**
 * Escape a string for embedding in a JSON string literal: backslash,
 * double quote, and control characters (as \uXXXX). Program ids and
 * tenant names come from untrusted CLI/workload input, so the JSONL
 * dump must not let them break the line framing.
 */
std::string jsonEscape(const std::string &s);

/** Stable identity of one race site (the dedup key). */
struct RaceSiteKey {
    uint64_t program_fp = 0;  ///< FNV-1a of the program id
    uint32_t min_insn = 0;    ///< smaller instruction index of the pair
    uint32_t max_insn = 0;
    /** 2-bit r/w pattern, insn-order normalized: bit0 = min side
     *  wrote, bit1 = max side wrote. */
    uint8_t rw_signature = 0;

    auto
    tie() const
    {
        return std::tie(program_fp, min_insn, max_insn, rw_signature);
    }

    bool operator<(const RaceSiteKey &o) const { return tie() < o.tie(); }
    bool operator==(const RaceSiteKey &o) const { return tie() == o.tie(); }
};

/** Aggregated evidence for one race site. */
struct StoredRace {
    RaceSiteKey key;
    std::string program_id;
    uint64_t first_seen = 0;   ///< arrival sequence of first report
    uint64_t last_seen = 0;    ///< arrival sequence of latest report
    uint64_t observations = 0; ///< session reports containing the site
    std::set<std::string> tenants;
    uint64_t example_addr = 0; ///< racy granule from the first report
    detect::DataRace example;  ///< full example for human rendering
};

/** Printable r/w signature ("RW", "WW", ...; min side first). */
std::string rwSignatureName(uint8_t signature);

/** FNV-1a fingerprint of a program id string. */
uint64_t programFingerprint(const std::string &program_id);

/** The dedup key of one detected race under @p program_fp. */
RaceSiteKey raceSiteKey(uint64_t program_fp, const detect::DataRace &race);

/**
 * Thread-safe aggregation of session reports. ingest() is called from
 * analysis completion (executor threads); queries snapshot under the
 * same lock.
 */
class ReportStore
{
  public:
    /**
     * Fold one session's report in. @p sequence is the service's
     * arrival sequence number for the session (drives first/last-seen).
     * With a journal bound, the call is journaled before the in-memory
     * fold, under the store lock — journal record order is ingest
     * order, so replaying the journal's valid prefix reconstructs the
     * store byte-identically up to the last synced record.
     */
    void ingest(const std::string &tenant, const std::string &program_id,
                const detect::RaceReport &report, uint64_t sequence);

    /**
     * Attach a write-ahead journal: every subsequent ingest() appends
     * one kReportIngestRecord before mutating the store. The journal
     * must outlive the store (the service owns both). Pass nullptr to
     * detach. Replay of an existing journal is the caller's job — open
     * the journal with a callback into applyIngestRecord() *before*
     * binding, so recovery does not re-append what it reads.
     */
    void bindJournal(support::Journal *journal);

    /**
     * Replay one journal record payload (type kReportIngestRecord)
     * into the store, without journaling it again. Returns false on a
     * malformed payload, leaving the store unchanged.
     */
    bool applyIngestRecord(const std::vector<uint8_t> &payload);

    /** Serialize one ingest() call as a journal record payload. */
    static std::vector<uint8_t>
    encodeIngestRecord(const std::string &tenant,
                       const std::string &program_id,
                       const detect::RaceReport &report,
                       uint64_t sequence);

    /**
     * Highest session sequence ever ingested (0 when empty). After
     * recovery the service resumes numbering above this, keeping
     * first/last-seen ordering consistent across restarts.
     */
    uint64_t maxSequence() const;

    /**
     * All entries, sorted by (program id, key) — deterministic
     * regardless of ingest interleaving. @p program_id / @p tenant
     * filter when non-empty (tenant filter = races that tenant saw).
     */
    std::vector<StoredRace> query(const std::string &program_id = "",
                                  const std::string &tenant = "") const;

    /** Distinct race sites across the fleet. */
    size_t distinctRaces() const;

    /** Total session-report observations folded in. */
    uint64_t totalObservations() const;

    /** One JSON object per entry, one entry per line. */
    std::string toJsonl() const;

  private:
    void ingestLocked(const std::string &tenant,
                      const std::string &program_id,
                      const std::vector<detect::DataRace> &races,
                      uint64_t sequence);

    mutable std::mutex mu_;
    std::map<RaceSiteKey, StoredRace> races_;
    uint64_t observations_ = 0;
    uint64_t max_sequence_ = 0;
    support::Journal *journal_ = nullptr;
};

} // namespace prorace::service

#endif // PRORACE_SERVICE_REPORT_STORE_HH

#include "asmkit/builder.hh"

#include "asmkit/layout.hh"
#include "support/log.hh"

namespace prorace::asmkit {

using isa::Insn;
using isa::Op;

void
ProgramBuilder::label(const std::string &name)
{
    if (labels_.count(name))
        PRORACE_FATAL("duplicate code label: ", name);
    labels_[name] = here();
}

void
ProgramBuilder::beginFunction(const std::string &name)
{
    if (function_open_)
        endFunction();
    label(name);
    functions_.push_back(Function{name, here(), here()});
    function_open_ = true;
}

void
ProgramBuilder::endFunction()
{
    PRORACE_ASSERT(function_open_, "endFunction without beginFunction");
    functions_.back().end = here();
    function_open_ = false;
}

uint64_t
ProgramBuilder::global(const std::string &name, uint64_t size,
                       uint64_t align)
{
    if (symbols_.count(name))
        PRORACE_FATAL("duplicate data symbol: ", name);
    PRORACE_ASSERT(align && (align & (align - 1)) == 0,
                   "alignment must be a power of two");
    data_cursor_ = (data_cursor_ + align - 1) & ~(align - 1);
    DataSymbol sym;
    sym.name = name;
    sym.addr = kGlobalBase + data_cursor_;
    sym.size = size;
    data_cursor_ += size;
    PRORACE_ASSERT(kGlobalBase + data_cursor_ < kHeapBase,
                   "global data segment overflow");
    const uint64_t addr = sym.addr;
    symbols_[name] = std::move(sym);
    return addr;
}

uint64_t
ProgramBuilder::globalU64(const std::string &name, uint64_t value)
{
    const uint64_t addr = global(name, 8, 8);
    auto &init = symbols_[name].init;
    init.resize(8);
    for (int i = 0; i < 8; ++i)
        init[i] = static_cast<uint8_t>(value >> (8 * i));
    return addr;
}

uint64_t
ProgramBuilder::symbolAddr(const std::string &name) const
{
    auto it = symbols_.find(name);
    if (it == symbols_.end())
        PRORACE_FATAL("unknown data symbol: ", name);
    return it->second.addr;
}

isa::MemOperand
ProgramBuilder::symRef(const std::string &name, int64_t offset) const
{
    return MemOperand::ripRel(
        static_cast<int64_t>(symbolAddr(name)) + offset);
}

uint32_t
ProgramBuilder::emit(Insn insn)
{
    code_.push_back(insn);
    return static_cast<uint32_t>(code_.size()) - 1;
}

uint32_t
ProgramBuilder::emitBranch(Insn insn, const std::string &target)
{
    const uint32_t idx = emit(insn);
    fixups_.emplace_back(idx, target);
    return idx;
}

uint32_t
ProgramBuilder::nop()
{
    return emit(Insn{.op = Op::kNop});
}

uint32_t
ProgramBuilder::halt()
{
    return emit(Insn{.op = Op::kHalt});
}

uint32_t
ProgramBuilder::movri(Reg dst, int64_t imm)
{
    return emit(Insn{.op = Op::kMovRI, .dst = dst, .imm = imm});
}

uint32_t
ProgramBuilder::movLabel(Reg dst, const std::string &label)
{
    return emitBranch(Insn{.op = Op::kMovRI, .dst = dst}, label);
}

uint32_t
ProgramBuilder::movrr(Reg dst, Reg src)
{
    return emit(Insn{.op = Op::kMovRR, .dst = dst, .src = src});
}

uint32_t
ProgramBuilder::load(Reg dst, const MemOperand &mem, uint8_t width,
                     bool sign_extend)
{
    return emit(Insn{.op = Op::kLoad, .dst = dst, .width = width,
                     .sign_extend = sign_extend, .mem = mem});
}

uint32_t
ProgramBuilder::store(const MemOperand &mem, Reg src, uint8_t width)
{
    return emit(Insn{.op = Op::kStore, .src = src, .width = width,
                     .mem = mem});
}

uint32_t
ProgramBuilder::storei(const MemOperand &mem, int64_t imm, uint8_t width)
{
    return emit(Insn{.op = Op::kStoreI, .width = width, .imm = imm,
                     .mem = mem});
}

uint32_t
ProgramBuilder::lea(Reg dst, const MemOperand &mem)
{
    return emit(Insn{.op = Op::kLea, .dst = dst, .mem = mem});
}

uint32_t
ProgramBuilder::alurr(AluOp op, Reg dst, Reg src)
{
    return emit(Insn{.op = Op::kAluRR, .dst = dst, .src = src, .alu = op});
}

uint32_t
ProgramBuilder::aluri(AluOp op, Reg dst, int64_t imm)
{
    return emit(Insn{.op = Op::kAluRI, .dst = dst, .alu = op, .imm = imm});
}

uint32_t
ProgramBuilder::cmprr(Reg lhs, Reg rhs)
{
    return emit(Insn{.op = Op::kCmpRR, .dst = lhs, .src = rhs});
}

uint32_t
ProgramBuilder::cmpri(Reg lhs, int64_t imm)
{
    return emit(Insn{.op = Op::kCmpRI, .dst = lhs, .imm = imm});
}

uint32_t
ProgramBuilder::testrr(Reg lhs, Reg rhs)
{
    return emit(Insn{.op = Op::kTestRR, .dst = lhs, .src = rhs});
}

uint32_t
ProgramBuilder::testri(Reg lhs, int64_t imm)
{
    return emit(Insn{.op = Op::kTestRI, .dst = lhs, .imm = imm});
}

uint32_t
ProgramBuilder::jcc(CondCode cond, const std::string &target)
{
    return emitBranch(Insn{.op = Op::kJcc, .cond = cond}, target);
}

uint32_t
ProgramBuilder::jmp(const std::string &target)
{
    return emitBranch(Insn{.op = Op::kJmp}, target);
}

uint32_t
ProgramBuilder::jmpind(Reg src)
{
    return emit(Insn{.op = Op::kJmpInd, .src = src});
}

uint32_t
ProgramBuilder::call(const std::string &target)
{
    return emitBranch(Insn{.op = Op::kCall}, target);
}

uint32_t
ProgramBuilder::callind(Reg src)
{
    return emit(Insn{.op = Op::kCallInd, .src = src});
}

uint32_t
ProgramBuilder::ret()
{
    return emit(Insn{.op = Op::kRet});
}

uint32_t
ProgramBuilder::push(Reg src)
{
    return emit(Insn{.op = Op::kPush, .src = src});
}

uint32_t
ProgramBuilder::pop(Reg dst)
{
    return emit(Insn{.op = Op::kPop, .dst = dst});
}

uint32_t
ProgramBuilder::atomicRmw(AluOp op, Reg dst_old, const MemOperand &mem,
                          Reg src, uint8_t width)
{
    return emit(Insn{.op = Op::kAtomicRmw, .dst = dst_old, .src = src,
                     .alu = op, .width = width, .mem = mem});
}

uint32_t
ProgramBuilder::cas(const MemOperand &mem, Reg expected, Reg desired,
                    uint8_t width)
{
    return emit(Insn{.op = Op::kCas, .dst = expected, .src = desired,
                     .width = width, .mem = mem});
}

uint32_t
ProgramBuilder::lock(const MemOperand &mutex_var)
{
    return emit(Insn{.op = Op::kLock, .mem = mutex_var});
}

uint32_t
ProgramBuilder::unlock(const MemOperand &mutex_var)
{
    return emit(Insn{.op = Op::kUnlock, .mem = mutex_var});
}

uint32_t
ProgramBuilder::condWait(const MemOperand &cond_var, Reg mutex_addr)
{
    return emit(Insn{.op = Op::kCondWait, .src = mutex_addr,
                     .mem = cond_var});
}

uint32_t
ProgramBuilder::condSignal(const MemOperand &cond_var)
{
    return emit(Insn{.op = Op::kCondSignal, .mem = cond_var});
}

uint32_t
ProgramBuilder::condBroadcast(const MemOperand &cond_var)
{
    return emit(Insn{.op = Op::kCondBcast, .mem = cond_var});
}

uint32_t
ProgramBuilder::barrier(const MemOperand &barrier_var, int64_t parties)
{
    return emit(Insn{.op = Op::kBarrier, .imm = parties,
                     .mem = barrier_var});
}

uint32_t
ProgramBuilder::rdlock(const MemOperand &rwlock_var)
{
    return emit(Insn{.op = Op::kRwRdLock, .mem = rwlock_var});
}

uint32_t
ProgramBuilder::wrlock(const MemOperand &rwlock_var)
{
    return emit(Insn{.op = Op::kRwWrLock, .mem = rwlock_var});
}

uint32_t
ProgramBuilder::rwunlock(const MemOperand &rwlock_var)
{
    return emit(Insn{.op = Op::kRwUnlock, .mem = rwlock_var});
}

uint32_t
ProgramBuilder::semInit(const MemOperand &sem_var, int64_t value)
{
    return emit(Insn{.op = Op::kSemInit, .imm = value, .mem = sem_var});
}

uint32_t
ProgramBuilder::semWait(const MemOperand &sem_var)
{
    return emit(Insn{.op = Op::kSemWait, .mem = sem_var});
}

uint32_t
ProgramBuilder::semPost(const MemOperand &sem_var)
{
    return emit(Insn{.op = Op::kSemPost, .mem = sem_var});
}

uint32_t
ProgramBuilder::spinLock(const MemOperand &spin_var)
{
    return emit(Insn{.op = Op::kSpinLock, .mem = spin_var});
}

uint32_t
ProgramBuilder::spinUnlock(const MemOperand &spin_var)
{
    return emit(Insn{.op = Op::kSpinUnlock, .mem = spin_var});
}

uint32_t
ProgramBuilder::loadAcq(Reg dst, const MemOperand &mem, uint8_t width)
{
    return emit(Insn{.op = Op::kLoadAcq, .dst = dst, .width = width,
                     .mem = mem});
}

uint32_t
ProgramBuilder::storeRel(const MemOperand &mem, Reg src, uint8_t width)
{
    return emit(Insn{.op = Op::kStoreRel, .src = src, .width = width,
                     .mem = mem});
}

uint32_t
ProgramBuilder::atomicRmwAcqRel(AluOp op, Reg dst_old, const MemOperand &mem,
                                Reg src, uint8_t width)
{
    return emit(Insn{.op = Op::kAtomicRmwAcqRel, .dst = dst_old, .src = src,
                     .alu = op, .width = width, .mem = mem});
}

uint32_t
ProgramBuilder::spawn(Reg dst_tid, const std::string &entry, Reg arg)
{
    return emitBranch(Insn{.op = Op::kSpawn, .dst = dst_tid, .src = arg},
                      entry);
}

uint32_t
ProgramBuilder::join(Reg tid)
{
    return emit(Insn{.op = Op::kJoin, .src = tid});
}

uint32_t
ProgramBuilder::mallocCall(Reg dst, Reg size)
{
    return emit(Insn{.op = Op::kMalloc, .dst = dst, .src = size});
}

uint32_t
ProgramBuilder::freeCall(Reg addr)
{
    return emit(Insn{.op = Op::kFree, .src = addr});
}

uint32_t
ProgramBuilder::syscall(SyscallNo no, int64_t imm)
{
    return emit(Insn{.op = Op::kSyscall, .sysno = no, .imm = imm});
}

Program
ProgramBuilder::build()
{
    if (function_open_)
        endFunction();
    for (const auto &[idx, name] : fixups_) {
        auto it = labels_.find(name);
        if (it == labels_.end())
            PRORACE_FATAL("unresolved code label: ", name);
        if (code_[idx].op == Op::kMovRI)
            code_[idx].imm = it->second; // movLabel: code pointer
        else
            code_[idx].target = it->second;
    }
    fixups_.clear();
    return Program(std::move(code_), std::move(labels_),
                   std::move(symbols_), std::move(functions_));
}

} // namespace prorace::asmkit

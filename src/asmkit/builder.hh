/**
 * @file
 * Label-based assembler for constructing simulated programs.
 *
 * Workloads use this fluent builder the way a compiler's codegen would:
 * emit instructions, reference forward labels freely, declare global data
 * symbols, and call build() to resolve fixups into an immutable Program.
 */

#ifndef PRORACE_ASMKIT_BUILDER_HH
#define PRORACE_ASMKIT_BUILDER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "asmkit/program.hh"
#include "isa/insn.hh"

namespace prorace::asmkit {

/**
 * Incremental program builder with deferred label resolution.
 *
 * Every emitter returns the index of the emitted instruction so callers
 * (e.g. racy-bug workloads) can record ground-truth instruction sites.
 */
class ProgramBuilder
{
  public:
    using Reg = isa::Reg;
    using AluOp = isa::AluOp;
    using CondCode = isa::CondCode;
    using MemOperand = isa::MemOperand;
    using SyscallNo = isa::SyscallNo;

    /** Bind @p name to the next emitted instruction. */
    void label(const std::string &name);

    /** Start a named function (records a code-region for PT filters). */
    void beginFunction(const std::string &name);

    /** Close the currently open function. */
    void endFunction();

    /**
     * Reserve @p size bytes of zero-initialized global data.
     * @return the symbol's address.
     */
    uint64_t global(const std::string &name, uint64_t size,
                    uint64_t align = 8);

    /** Reserve an 8-byte global initialized to @p value. */
    uint64_t globalU64(const std::string &name, uint64_t value);

    /** Address of a previously declared global. */
    uint64_t symbolAddr(const std::string &name) const;

    /** Memory operand referencing a global PC-relatively. */
    MemOperand symRef(const std::string &name, int64_t offset = 0) const;

    // --- instruction emitters (return the instruction index) ---

    uint32_t nop();
    uint32_t halt();
    uint32_t movri(Reg dst, int64_t imm);
    /** dst <- instruction index of @p label (a code pointer). */
    uint32_t movLabel(Reg dst, const std::string &label);
    uint32_t movrr(Reg dst, Reg src);
    uint32_t load(Reg dst, const MemOperand &mem, uint8_t width = 8,
                  bool sign_extend = false);
    uint32_t store(const MemOperand &mem, Reg src, uint8_t width = 8);
    uint32_t storei(const MemOperand &mem, int64_t imm, uint8_t width = 8);
    uint32_t lea(Reg dst, const MemOperand &mem);
    uint32_t alurr(AluOp op, Reg dst, Reg src);
    uint32_t aluri(AluOp op, Reg dst, int64_t imm);
    uint32_t addri(Reg dst, int64_t imm) { return aluri(AluOp::kAdd, dst, imm); }
    uint32_t subri(Reg dst, int64_t imm) { return aluri(AluOp::kSub, dst, imm); }
    uint32_t addrr(Reg dst, Reg src) { return alurr(AluOp::kAdd, dst, src); }
    uint32_t subrr(Reg dst, Reg src) { return alurr(AluOp::kSub, dst, src); }
    uint32_t xorrr(Reg dst, Reg src) { return alurr(AluOp::kXor, dst, src); }
    uint32_t cmprr(Reg lhs, Reg rhs);
    uint32_t cmpri(Reg lhs, int64_t imm);
    uint32_t testrr(Reg lhs, Reg rhs);
    uint32_t testri(Reg lhs, int64_t imm);
    uint32_t jcc(CondCode cond, const std::string &target);
    uint32_t jmp(const std::string &target);
    uint32_t jmpind(Reg src);
    uint32_t call(const std::string &target);
    uint32_t callind(Reg src);
    uint32_t ret();
    uint32_t push(Reg src);
    uint32_t pop(Reg dst);
    uint32_t atomicRmw(AluOp op, Reg dst_old, const MemOperand &mem, Reg src,
                       uint8_t width = 8);
    uint32_t cas(const MemOperand &mem, Reg expected, Reg desired,
                 uint8_t width = 8);
    uint32_t lock(const MemOperand &mutex_var);
    uint32_t unlock(const MemOperand &mutex_var);
    uint32_t condWait(const MemOperand &cond_var, Reg mutex_addr);
    uint32_t condSignal(const MemOperand &cond_var);
    uint32_t condBroadcast(const MemOperand &cond_var);
    uint32_t barrier(const MemOperand &barrier_var, int64_t parties);
    uint32_t rdlock(const MemOperand &rwlock_var);
    uint32_t wrlock(const MemOperand &rwlock_var);
    uint32_t rwunlock(const MemOperand &rwlock_var);
    uint32_t semInit(const MemOperand &sem_var, int64_t value);
    uint32_t semWait(const MemOperand &sem_var);
    uint32_t semPost(const MemOperand &sem_var);
    uint32_t spinLock(const MemOperand &spin_var);
    uint32_t spinUnlock(const MemOperand &spin_var);
    uint32_t loadAcq(Reg dst, const MemOperand &mem, uint8_t width = 8);
    uint32_t storeRel(const MemOperand &mem, Reg src, uint8_t width = 8);
    uint32_t atomicRmwAcqRel(AluOp op, Reg dst_old, const MemOperand &mem,
                             Reg src, uint8_t width = 8);
    uint32_t spawn(Reg dst_tid, const std::string &entry, Reg arg);
    uint32_t join(Reg tid);
    uint32_t mallocCall(Reg dst, Reg size);
    uint32_t freeCall(Reg addr);
    uint32_t syscall(SyscallNo no, int64_t imm = 0);

    /** Index the next emitted instruction will occupy. */
    uint32_t here() const { return static_cast<uint32_t>(code_.size()); }

    /** Resolve labels and freeze the program. Fatal on unresolved labels. */
    Program build();

  private:
    uint32_t emit(isa::Insn insn);
    uint32_t emitBranch(isa::Insn insn, const std::string &target);

    std::vector<isa::Insn> code_;
    std::map<std::string, uint32_t> labels_;
    std::map<std::string, DataSymbol> symbols_;
    std::vector<Function> functions_;
    std::vector<std::pair<uint32_t, std::string>> fixups_;
    uint64_t data_cursor_ = 0; ///< offset from kGlobalBase
    bool function_open_ = false;
};

} // namespace prorace::asmkit

#endif // PRORACE_ASMKIT_BUILDER_HH

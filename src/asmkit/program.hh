/**
 * @file
 * A fully-assembled program: code, labels, data symbols, functions, and
 * the derived basic-block index used by the replayer and the RaceZ
 * baseline.
 */

#ifndef PRORACE_ASMKIT_PROGRAM_HH
#define PRORACE_ASMKIT_PROGRAM_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "isa/insn.hh"

namespace prorace::asmkit {

/** A named region of the global data segment. */
struct DataSymbol {
    std::string name;
    uint64_t addr = 0;
    uint64_t size = 0;
    std::vector<uint8_t> init; ///< initial bytes; zero-filled if shorter
};

/** A named code region (used for PT code-region filters). */
struct Function {
    std::string name;
    uint32_t begin = 0; ///< first instruction index
    uint32_t end = 0;   ///< one past the last instruction index
};

/**
 * An immutable assembled program.
 *
 * Instruction "addresses" are indices into code(). Basic blocks are
 * derived at construction: a leader is instruction 0, any branch target,
 * and any instruction following a control transfer, halt, or
 * (potentially-blocking) synchronization operation.
 */
class Program
{
  public:
    Program(std::vector<isa::Insn> code,
            std::map<std::string, uint32_t> labels,
            std::map<std::string, DataSymbol> symbols,
            std::vector<Function> functions);

    /** The instruction stream. */
    const std::vector<isa::Insn> &code() const { return code_; }

    /** Instruction at @p index. */
    const isa::Insn &insnAt(uint32_t index) const;

    /** Number of instructions. */
    uint32_t size() const { return static_cast<uint32_t>(code_.size()); }

    /** Resolve a code label to its instruction index; fatal if unknown. */
    uint32_t labelAddr(const std::string &label) const;

    /** Resolve a data symbol; fatal if unknown. */
    const DataSymbol &symbol(const std::string &name) const;

    /** All data symbols (for machine memory initialization). */
    const std::map<std::string, DataSymbol> &symbols() const
    {
        return symbols_;
    }

    /** Find the symbol covering @p addr, if any (for report rendering). */
    std::optional<std::string> symbolCovering(uint64_t addr) const;

    /** Declared functions, in code order. */
    const std::vector<Function> &functions() const { return functions_; }

    /** Index of the basic block containing instruction @p index. */
    uint32_t blockOf(uint32_t index) const;

    /** First instruction of basic block @p block. */
    uint32_t blockBegin(uint32_t block) const;

    /** One past the last instruction of basic block @p block. */
    uint32_t blockEnd(uint32_t block) const;

    /** Number of basic blocks. */
    uint32_t numBlocks() const
    {
        return static_cast<uint32_t>(block_starts_.size());
    }

    /** Human-readable listing (debugging aid). */
    std::string listing() const;

  private:
    void computeBlocks();

    std::vector<isa::Insn> code_;
    std::map<std::string, uint32_t> labels_;
    std::map<std::string, DataSymbol> symbols_;
    std::vector<Function> functions_;
    std::vector<uint32_t> block_starts_; ///< sorted leader indices
};

} // namespace prorace::asmkit

#endif // PRORACE_ASMKIT_PROGRAM_HH

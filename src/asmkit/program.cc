#include "asmkit/program.hh"

#include <algorithm>
#include <set>
#include <sstream>

#include "isa/disasm.hh"
#include "support/log.hh"

namespace prorace::asmkit {

using isa::Insn;
using isa::Op;

Program::Program(std::vector<Insn> code,
                 std::map<std::string, uint32_t> labels,
                 std::map<std::string, DataSymbol> symbols,
                 std::vector<Function> functions)
    : code_(std::move(code)), labels_(std::move(labels)),
      symbols_(std::move(symbols)), functions_(std::move(functions))
{
    for (size_t i = 0; i < code_.size(); ++i) {
        if (const char *err = isa::validateInsn(code_[i])) {
            PRORACE_FATAL("invalid instruction #", i, " (",
                          isa::disassemble(code_[i]), "): ", err);
        }
        if (isa::isControlFlow(code_[i].op) &&
            code_[i].op != Op::kJmpInd && code_[i].op != Op::kCallInd &&
            code_[i].op != Op::kRet && code_[i].target >= code_.size()) {
            PRORACE_FATAL("instruction #", i, " branches out of range to #",
                          code_[i].target);
        }
    }
    computeBlocks();
}

const Insn &
Program::insnAt(uint32_t index) const
{
    PRORACE_ASSERT(index < code_.size(), "instruction index out of range: ",
                   index);
    return code_[index];
}

uint32_t
Program::labelAddr(const std::string &label) const
{
    auto it = labels_.find(label);
    if (it == labels_.end())
        PRORACE_FATAL("unknown code label: ", label);
    return it->second;
}

const DataSymbol &
Program::symbol(const std::string &name) const
{
    auto it = symbols_.find(name);
    if (it == symbols_.end())
        PRORACE_FATAL("unknown data symbol: ", name);
    return it->second;
}

std::optional<std::string>
Program::symbolCovering(uint64_t addr) const
{
    for (const auto &[name, sym] : symbols_) {
        if (addr >= sym.addr && addr < sym.addr + sym.size)
            return name;
    }
    return std::nullopt;
}

void
Program::computeBlocks()
{
    std::set<uint32_t> leaders;
    if (code_.empty()) {
        return;
    }
    leaders.insert(0);
    for (uint32_t i = 0; i < code_.size(); ++i) {
        const Insn &insn = code_[i];
        const bool ends_block = isa::isControlFlow(insn.op) ||
            insn.op == Op::kHalt || isa::isSyncOp(insn.op) ||
            insn.op == Op::kSyscall;
        if (ends_block && i + 1 < code_.size())
            leaders.insert(i + 1);
        if ((insn.op == Op::kJcc || insn.op == Op::kJmp ||
             insn.op == Op::kCall || insn.op == Op::kSpawn) &&
            insn.target < code_.size()) {
            leaders.insert(insn.target);
        }
    }
    block_starts_.assign(leaders.begin(), leaders.end());
}

uint32_t
Program::blockOf(uint32_t index) const
{
    PRORACE_ASSERT(index < code_.size(), "blockOf index out of range");
    auto it = std::upper_bound(block_starts_.begin(), block_starts_.end(),
                               index);
    return static_cast<uint32_t>(it - block_starts_.begin()) - 1;
}

uint32_t
Program::blockBegin(uint32_t block) const
{
    PRORACE_ASSERT(block < block_starts_.size(), "block index out of range");
    return block_starts_[block];
}

uint32_t
Program::blockEnd(uint32_t block) const
{
    PRORACE_ASSERT(block < block_starts_.size(), "block index out of range");
    if (block + 1 < block_starts_.size())
        return block_starts_[block + 1];
    return static_cast<uint32_t>(code_.size());
}

std::string
Program::listing() const
{
    std::ostringstream os;
    std::map<uint32_t, std::string> by_addr;
    for (const auto &[name, addr] : labels_)
        by_addr[addr] = name;
    for (uint32_t i = 0; i < code_.size(); ++i) {
        auto it = by_addr.find(i);
        if (it != by_addr.end())
            os << it->second << ":\n";
        os << "  " << i << ":\t" << isa::disassemble(code_[i]) << "\n";
    }
    return os.str();
}

} // namespace prorace::asmkit

/**
 * @file
 * Address-space layout of simulated programs.
 *
 * The simulated data address space is flat and 64-bit. Code addresses are
 * instruction indices and live in their own space (the PT filters and the
 * replayer operate on instruction indices).
 */

#ifndef PRORACE_ASMKIT_LAYOUT_HH
#define PRORACE_ASMKIT_LAYOUT_HH

#include <cstdint>

namespace prorace::asmkit {

/** Base of the global/static data segment (builder-assigned symbols). */
inline constexpr uint64_t kGlobalBase = 0x0000000000010000ull;

/** Base of the simulated heap (malloc). */
inline constexpr uint64_t kHeapBase = 0x0000000001000000ull;

/** Upper bound of the heap region. */
inline constexpr uint64_t kHeapLimit = 0x0000000040000000ull;

/** Top of the stack of thread 0; stacks grow downwards. */
inline constexpr uint64_t kStackTop = 0x00007f0000000000ull;

/** Bytes reserved per thread stack (including guard slack). */
inline constexpr uint64_t kStackRegion = 1ull << 20;

/** Usable stack size per thread. */
inline constexpr uint64_t kStackSize = 256 * 1024;

/** Initial stack pointer of thread @p tid. */
constexpr uint64_t
stackTopFor(uint32_t tid)
{
    return kStackTop - static_cast<uint64_t>(tid) * kStackRegion;
}

/** True if @p addr falls in some thread's stack region. */
constexpr bool
isStackAddress(uint64_t addr)
{
    return addr > kStackTop - (1ull << 32) && addr <= kStackTop;
}

/** True if @p addr falls in the heap region. */
constexpr bool
isHeapAddress(uint64_t addr)
{
    return addr >= kHeapBase && addr < kHeapLimit;
}

/** True if @p addr falls in the global data segment. */
constexpr bool
isGlobalAddress(uint64_t addr)
{
    return addr >= kGlobalBase && addr < kHeapBase;
}

} // namespace prorace::asmkit

#endif // PRORACE_ASMKIT_LAYOUT_HH

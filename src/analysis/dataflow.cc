#include "analysis/dataflow.hh"

#include "isa/opcode.hh"

namespace prorace::analysis {

using isa::Op;

Dataflow::Dataflow(const Cfg &cfg, const std::vector<InsnFacts> &facts)
    : blocks_(cfg.numBlocks())
{
    summarizeBlocks(cfg, facts);
    solveLiveness(cfg);
    solveReaching(cfg, facts);
}

void
Dataflow::summarizeBlocks(const Cfg &cfg,
                          const std::vector<InsnFacts> &facts)
{
    const asmkit::Program &p = cfg.program();
    for (uint32_t b = 0; b < cfg.numBlocks(); ++b) {
        BlockDataflow &blk = blocks_[b];
        for (uint32_t i = p.blockBegin(b); i < p.blockEnd(b); ++i) {
            const InsnFacts &f = facts[i];
            blk.use |= static_cast<uint16_t>(f.uses & ~blk.kill);
            blk.kill |= f.kill;
            blk.mem_ops += f.mem_ops;
        }
    }
}

void
Dataflow::solveLiveness(const Cfg &cfg)
{
    const asmkit::Program &p = cfg.program();
    // A block whose dynamic successors the CFG cannot enumerate exactly
    // (indirect transfer fans out over an over-approximation, a return
    // transfers to an unknown caller) conservatively keeps everything
    // live out. Halt ends the thread: nothing is live after it.
    std::vector<uint16_t> boundary_out(cfg.numBlocks(), 0);
    for (uint32_t b = 0; b < cfg.numBlocks(); ++b) {
        const Op last = p.insnAt(p.blockEnd(b) - 1).op;
        if (last == Op::kRet || last == Op::kJmpInd ||
            last == Op::kCallInd || last == Op::kCall ||
            last == Op::kSpawn) {
            // Calls/spawns hand registers to another context.
            boundary_out[b] = 0xffff;
        }
        if (p.blockEnd(b) == p.size() && last != Op::kHalt &&
            last != Op::kRet && last != Op::kJmp) {
            boundary_out[b] = 0xffff; // runs off the end of the program
        }
    }

    bool changed = true;
    while (changed) {
        changed = false;
        ++liveness_iterations_;
        for (uint32_t bi = cfg.numBlocks(); bi-- > 0;) {
            BlockDataflow &blk = blocks_[bi];
            uint16_t out = boundary_out[bi];
            for (const uint32_t s : cfg.block(bi).succs)
                out |= blocks_[s].live_in;
            const uint16_t in = static_cast<uint16_t>(
                blk.use | (out & ~blk.kill));
            if (out != blk.live_out || in != blk.live_in) {
                blk.live_out = out;
                blk.live_in = in;
                changed = true;
            }
        }
    }
}

namespace {

/** Meet of two collapsed reaching-def values (may-union). */
ReachingDef
meetDefs(const ReachingDef &a, const ReachingDef &b)
{
    if (a.kind == ReachingDef::kNone)
        return b;
    if (b.kind == ReachingDef::kNone)
        return a;
    if (a == b)
        return a;
    // Distinct non-empty values: external taints, otherwise ambiguous.
    if (a.kind == ReachingDef::kExternal || b.kind == ReachingDef::kExternal)
        return {ReachingDef::kExternal, 0};
    return {ReachingDef::kAmbiguous, 0};
}

} // namespace

void
Dataflow::solveReaching(const Cfg &cfg,
                        const std::vector<InsnFacts> &facts)
{
    const asmkit::Program &p = cfg.program();
    // Per-block generated definition of each register: the last insn in
    // the block writing it (or "external" when a call/gap-like boundary
    // sits in between — calls end blocks, so within a block defs are
    // plain instruction indices).
    struct BlockGen {
        ReachingDef def[isa::kNumGprs];
        uint16_t kill = 0;
    };
    std::vector<BlockGen> gen(cfg.numBlocks());
    for (uint32_t b = 0; b < cfg.numBlocks(); ++b) {
        for (uint32_t i = p.blockBegin(b); i < p.blockEnd(b); ++i) {
            const uint16_t kill = facts[i].kill;
            for (unsigned r = 0; r < isa::kNumGprs; ++r) {
                if ((kill >> r) & 1u)
                    gen[b].def[r] = {ReachingDef::kUnique, i};
            }
            gen[b].kill |= kill;
        }
    }

    const ReachingDef external{ReachingDef::kExternal, 0};

    bool changed = true;
    while (changed) {
        changed = false;
        ++reaching_iterations_;
        for (uint32_t b = 0; b < cfg.numBlocks(); ++b) {
            const CfgBlock &node = cfg.block(b);
            ReachingDef in[isa::kNumGprs];
            if (node.unknown_entry || node.preds.empty()) {
                for (unsigned r = 0; r < isa::kNumGprs; ++r)
                    in[r] = external;
            }
            for (const uint32_t pb : node.preds) {
                for (unsigned r = 0; r < isa::kNumGprs; ++r) {
                    ReachingDef out = ((gen[pb].kill >> r) & 1u)
                        ? gen[pb].def[r]
                        : blocks_[pb].reach_in[r];
                    in[r] = meetDefs(in[r], out);
                }
            }
            for (unsigned r = 0; r < isa::kNumGprs; ++r) {
                if (!(blocks_[b].reach_in[r] == in[r])) {
                    blocks_[b].reach_in[r] = in[r];
                    changed = true;
                }
            }
        }
    }
}

} // namespace prorace::analysis

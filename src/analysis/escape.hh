/**
 * @file
 * Conservative thread-escape analysis: label each memory access site
 * definitely-thread-local (stack-confined, never escaping) or
 * may-shared.
 *
 * The classification rests on three facts, checked in order; if either
 * program-wide invariant fails, every site degrades to may-shared and
 * the detector prefilter prunes nothing:
 *
 *  1. *rsp integrity* (program-wide): every write to rsp anywhere in
 *     the binary is stack-preserving — the implicit ±8 of
 *     push/pop/call/ret, or an add/sub immediate bounded by
 *     kMaxStackDisp (frame setup). Inductively, rsp points into the
 *     executing thread's own stack region at every program point of
 *     every execution, independent of control flow.
 *
 *  2. *no stack escape* (program-wide): a flow-insensitive taint
 *     fixpoint over-approximates the registers that may ever hold a
 *     stack-derived pointer; if any such register is ever stored to
 *     memory, compared-and-swapped in, RMW-combined, or passed as a
 *     spawn argument, a stack pointer may escape to another thread and
 *     the whole stack-locality argument collapses.
 *
 *  3. *per-site must-stack* (flow-sensitive): a forward dataflow over
 *     the CFG computes, at each block entry, the set of registers that
 *     *definitely* hold a pointer into the executing thread's own
 *     stack with a bounded offset. Meet is intersection;
 *     unknown-entry blocks (thread entries, indirect targets, return
 *     sites) and blocks without predecessors start from the boundary
 *     value {rsp}, which invariant 1 makes correct at *any* entry
 *     point. Within a block the set is transferred per instruction.
 *
 * An access site is thread-local iff the invariants hold and the site
 * is an implicit stack access (push/pop/call/ret) or an explicit
 * access whose base register is must-stack, with no index register and
 * |disp| <= kMaxStackDisp. Since thread stacks are disjoint regions
 * and no stack pointer escapes, such an access can never race with
 * another thread — see DESIGN.md §12 for the full argument.
 */

#ifndef PRORACE_ANALYSIS_ESCAPE_HH
#define PRORACE_ANALYSIS_ESCAPE_HH

#include <cstdint>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/insn_facts.hh"

namespace prorace::analysis {

/**
 * Largest stack displacement (bytes) a thread-local classification
 * tolerates, per derivation step. Far below the gap between a thread's
 * usable stack and its region bound, so bounded-offset derivations
 * cannot walk into a neighbouring thread's stack.
 */
inline constexpr int64_t kMaxStackDisp = 4096;

/** Classification of one instruction's memory access site. */
enum class SiteClass : uint8_t {
    kNoAccess = 0,      ///< instruction has no data-memory access
    kStackImplicit,     ///< push/pop/call/ret through rsp
    kStackDirect,       ///< load/store with a must-stack base
    kMayShared,         ///< everything else
    /**
     * Access confined to heap objects whose allocation site never
     * escapes its allocating thread. Assigned only by
     * HeapEscapeAnalysis (points-to layer), never by EscapeAnalysis.
     */
    kHeapLocal,
};

/** Printable site-class name. */
const char *siteClassName(SiteClass c);

/** Whole-program escape-analysis result. */
class EscapeAnalysis
{
  public:
    /** @p facts must be the per-instruction table of cfg's program. */
    EscapeAnalysis(const Cfg &cfg, const std::vector<InsnFacts> &facts);

    /** Invariant 1: every rsp write program-wide is stack-preserving. */
    bool rspIntegrity() const { return rsp_integrity_; }

    /** Invariant 2: no stack-derived value may reach memory/another thread. */
    bool noStackEscape() const { return no_stack_escape_; }

    /** True when thread-local classifications are trustworthy at all. */
    bool sound() const { return rsp_integrity_ && no_stack_escape_; }

    /** Site classification of instruction @p index. */
    SiteClass site(uint32_t index) const { return sites_[index]; }
    const std::vector<SiteClass> &sites() const { return sites_; }

    /** True when @p index's access can only touch the own thread's stack. */
    bool
    threadLocal(uint32_t index) const
    {
        const SiteClass c = sites_[index];
        return c == SiteClass::kStackImplicit ||
            c == SiteClass::kStackDirect;
    }

    /** Must-stack register mask at one block's entry. */
    uint16_t mustStackIn(uint32_t block) const
    {
        return must_stack_in_[block];
    }

    /** Flow-insensitive may-stack-derived register over-approximation. */
    uint16_t mayStackRegs() const { return may_stack_; }

    uint32_t numSites() const { return num_sites_; }
    uint32_t numThreadLocal() const { return num_thread_local_; }

  private:
    void checkRspIntegrity(const asmkit::Program &p);
    void solveMayStack(const asmkit::Program &p);
    void solveMustStack(const Cfg &cfg);
    void classifySites(const Cfg &cfg,
                       const std::vector<InsnFacts> &facts);

    bool rsp_integrity_ = true;
    bool no_stack_escape_ = true;
    uint16_t may_stack_ = 0;
    std::vector<uint16_t> must_stack_in_;
    std::vector<SiteClass> sites_;
    uint32_t num_sites_ = 0;
    uint32_t num_thread_local_ = 0;
};

} // namespace prorace::analysis

#endif // PRORACE_ANALYSIS_ESCAPE_HH

/**
 * @file
 * Whole-program static analysis bundle: per-instruction fact tables,
 * CFG, dataflow, and escape analysis, computed once per program and
 * shared read-only by every consumer (aligner, replayer, detector
 * prefilter, CLI static-report).
 */

#ifndef PRORACE_ANALYSIS_ANALYSIS_HH
#define PRORACE_ANALYSIS_ANALYSIS_HH

#include <cstdint>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/dataflow.hh"
#include "analysis/escape.hh"
#include "analysis/insn_facts.hh"

namespace prorace::analysis {

/** Aggregate statistics for reporting (CLI static-report JSONL). */
struct StaticSummary {
    uint32_t insns = 0;
    uint32_t blocks = 0;
    uint32_t edges = 0;
    uint32_t reachable_blocks = 0;
    uint32_t address_taken = 0;
    uint32_t mem_sites = 0;          ///< instructions with memory events
    uint32_t thread_local_sites = 0; ///< provably private subset
    uint32_t invertible_insns = 0;   ///< some operand reverse-executable
    uint32_t learn_insns = 0;        ///< teach an unwritten register
    bool rsp_integrity = false;
    bool no_stack_escape = false;

    double
    threadLocalFraction() const
    {
        return mem_sites ? static_cast<double>(thread_local_sites) /
                static_cast<double>(mem_sites)
                         : 0.0;
    }
};

/**
 * The static-analysis results for one program. Immutable after
 * construction; safe to share across analysis worker threads.
 */
class ProgramAnalysis
{
  public:
    explicit ProgramAnalysis(const asmkit::Program &program);

    const asmkit::Program &program() const { return *program_; }
    const Cfg &cfg() const { return cfg_; }
    const Dataflow &dataflow() const { return dataflow_; }
    const EscapeAnalysis &escape() const { return escape_; }

    /** Precomputed per-instruction facts (indexed by instruction). */
    const InsnFacts &facts(uint32_t index) const { return facts_[index]; }
    const std::vector<InsnFacts> &factsTable() const { return facts_; }

    /** May-write register mask of a whole basic block. */
    uint16_t
    blockKill(uint32_t block) const
    {
        return dataflow_.killMask(block);
    }

    /** True when @p index's access provably stays on its own stack. */
    bool
    siteThreadLocal(uint32_t index) const
    {
        return escape_.threadLocal(index);
    }

    StaticSummary summary() const;

  private:
    const asmkit::Program *program_;
    std::vector<InsnFacts> facts_;
    Cfg cfg_;
    Dataflow dataflow_;
    EscapeAnalysis escape_;
};

} // namespace prorace::analysis

#endif // PRORACE_ANALYSIS_ANALYSIS_HH

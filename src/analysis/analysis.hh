/**
 * @file
 * Whole-program static analysis bundle: per-instruction fact tables,
 * CFG, dataflow, and escape analysis, computed once per program and
 * shared read-only by every consumer (aligner, replayer, detector
 * prefilter, CLI static-report).
 */

#ifndef PRORACE_ANALYSIS_ANALYSIS_HH
#define PRORACE_ANALYSIS_ANALYSIS_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/dataflow.hh"
#include "analysis/escape.hh"
#include "analysis/insn_facts.hh"
#include "analysis/pointsto.hh"

namespace prorace::analysis {

/** Aggregate statistics for reporting (CLI static-report JSONL). */
struct StaticSummary {
    uint32_t insns = 0;
    uint32_t blocks = 0;
    uint32_t edges = 0;
    uint32_t reachable_blocks = 0;
    uint32_t address_taken = 0;
    uint32_t mem_sites = 0;          ///< instructions with memory events
    uint32_t thread_local_sites = 0; ///< provably private subset
    uint32_t heap_local_sites = 0;   ///< confined to private heap objects
    uint32_t invertible_insns = 0;   ///< some operand reverse-executable
    uint32_t learn_insns = 0;        ///< teach an unwritten register
    bool rsp_integrity = false;
    bool no_stack_escape = false;
    bool pointsto_enabled = false;
    PointsToStats pointsto;          ///< zero-valued when disabled
    uint32_t sharp_edges = 0;        ///< sharpened-CFG edge count
    uint32_t sharp_reachable = 0;    ///< sharpened-CFG reachable blocks

    double
    threadLocalFraction() const
    {
        return mem_sites ? static_cast<double>(thread_local_sites) /
                static_cast<double>(mem_sites)
                         : 0.0;
    }
};

/**
 * The static-analysis results for one program. Immutable after
 * construction; safe to share across analysis worker threads.
 */
class ProgramAnalysis
{
  public:
    /**
     * @p enable_pointsto gates the Andersen layer (and everything built
     * on it: heap locality, CFG sharpening, constant recovery). The
     * blunt cfg/dataflow/escape trio is identical either way, so every
     * report-affecting result is too — the flag only removes an extra
     * pruning/recovery opportunity (--no-pointsto).
     */
    explicit ProgramAnalysis(const asmkit::Program &program,
                             bool enable_pointsto = true);

    const asmkit::Program &program() const { return *program_; }
    const Cfg &cfg() const { return cfg_; }
    const Dataflow &dataflow() const { return dataflow_; }
    const EscapeAnalysis &escape() const { return escape_; }

    /** Points-to layer, or nullptr when disabled. */
    const PointsTo *pointsTo() const { return pointsto_.get(); }

    /** Merged heap/stack site classification, or nullptr when disabled. */
    const HeapEscapeAnalysis *heapEscape() const
    {
        return heap_escape_.get();
    }

    /**
     * The CFG with indirect fan-outs narrowed to resolved points-to
     * target sets; the blunt cfg() when the layer is disabled or
     * resolved nothing.
     */
    const Cfg &sharpCfg() const
    {
        return sharp_cfg_ ? *sharp_cfg_ : cfg_;
    }

    /**
     * Merged site classification: escape's, with may-shared sites
     * confined to thread-local heap objects upgraded to kHeapLocal.
     */
    SiteClass
    siteClass(uint32_t index) const
    {
        return heap_escape_ ? heap_escape_->site(index)
                            : escape_.site(index);
    }

    /** Precomputed per-instruction facts (indexed by instruction). */
    const InsnFacts &facts(uint32_t index) const { return facts_[index]; }
    const std::vector<InsnFacts> &factsTable() const { return facts_; }

    /** May-write register mask of a whole basic block. */
    uint16_t
    blockKill(uint32_t block) const
    {
        return dataflow_.killMask(block);
    }

    /** True when @p index's access provably stays on its own stack. */
    bool
    siteThreadLocal(uint32_t index) const
    {
        return escape_.threadLocal(index);
    }

    StaticSummary summary() const;

  private:
    const asmkit::Program *program_;
    std::vector<InsnFacts> facts_;
    Cfg cfg_;
    Dataflow dataflow_;
    EscapeAnalysis escape_;
    std::unique_ptr<PointsTo> pointsto_;
    std::unique_ptr<HeapEscapeAnalysis> heap_escape_;
    std::unique_ptr<Cfg> sharp_cfg_;
};

} // namespace prorace::analysis

#endif // PRORACE_ANALYSIS_ANALYSIS_HH

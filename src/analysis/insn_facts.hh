/**
 * @file
 * Per-instruction static facts — the single source of truth for
 * may-write register masks, register read sets, memory-event counts,
 * and the invertibility classification the replayer exploits.
 *
 * `replay/static_info.hh` forwards here; keeping every per-instruction
 * fact in one table means the aligner, the replayer, and the dataflow
 * passes can never drift apart on what an opcode may touch.
 */

#ifndef PRORACE_ANALYSIS_INSN_FACTS_HH
#define PRORACE_ANALYSIS_INSN_FACTS_HH

#include <cstdint>

#include "isa/insn.hh"

namespace prorace::analysis {

/** Bit for one GPR in a 16-bit register mask. */
inline constexpr uint16_t
regBit(isa::Reg reg)
{
    return static_cast<uint16_t>(1u << isa::gprIndex(reg));
}

/** The write mask of a path gap: untraced code may clobber anything. */
inline constexpr uint16_t kGapWriteMask = 0xffff;

/**
 * Bitmask of GPRs an instruction may write (bit i = gpr i).
 * "May write" is what matters: backward propagation of a register value
 * is valid only across instructions that definitely do not write it.
 */
inline uint16_t
regWriteMask(const isa::Insn &insn)
{
    using isa::Op;
    using isa::Reg;
    uint16_t mask = 0;
    if (isa::writesDst(insn.op) && isa::isGpr(insn.dst))
        mask |= regBit(insn.dst);
    switch (insn.op) {
      case Op::kPush:
      case Op::kPop:
      case Op::kCall:
      case Op::kCallInd:
      case Op::kRet:
        mask |= regBit(Reg::rsp);
        break;
      case Op::kSyscall:
        mask |= regBit(Reg::rax);
        break;
      default:
        break;
    }
    return mask;
}

/**
 * Bitmask of GPRs an instruction may read: explicit operands, memory
 * operand base/index registers, and the implicit rsp of stack ops.
 */
inline uint16_t
regReadMask(const isa::Insn &insn)
{
    using isa::Op;
    using isa::Reg;
    uint16_t mask = 0;
    if (insn.hasMemOperand() && !insn.mem.rip_relative) {
        if (isa::isGpr(insn.mem.base))
            mask |= regBit(insn.mem.base);
        if (isa::isGpr(insn.mem.index))
            mask |= regBit(insn.mem.index);
    }
    switch (insn.op) {
      case Op::kMovRR:
      case Op::kStore:
      case Op::kAtomicRmw:
      case Op::kJmpInd:
      case Op::kSpawn:
      case Op::kJoin:
      case Op::kMalloc:
      case Op::kFree:
      case Op::kCondWait:
      case Op::kStoreRel:
      case Op::kAtomicRmwAcqRel:
        if (isa::isGpr(insn.src))
            mask |= regBit(insn.src);
        break;
      case Op::kAluRR:
      case Op::kCmpRR:
      case Op::kTestRR:
      case Op::kCas:
        if (isa::isGpr(insn.src))
            mask |= regBit(insn.src);
        [[fallthrough]];
      case Op::kAluRI:
      case Op::kCmpRI:
      case Op::kTestRI:
        if (isa::isGpr(insn.dst))
            mask |= regBit(insn.dst);
        break;
      case Op::kPush:
        if (isa::isGpr(insn.src))
            mask |= regBit(insn.src);
        mask |= regBit(Reg::rsp);
        break;
      case Op::kCallInd:
        if (isa::isGpr(insn.src))
            mask |= regBit(insn.src);
        mask |= regBit(Reg::rsp);
        break;
      case Op::kPop:
      case Op::kCall:
      case Op::kRet:
        mask |= regBit(Reg::rsp);
        break;
      default:
        break;
    }
    return mask;
}

/**
 * Number of PEBS-countable memory events one instruction retires.
 * kCas may retire one or two (the store happens only on success);
 * callers using this for distance arithmetic must allow slack.
 */
inline unsigned
memOpCount(const isa::Insn &insn)
{
    using isa::Op;
    switch (insn.op) {
      case Op::kLoad:
      case Op::kStore:
      case Op::kStoreI:
      case Op::kPush:
      case Op::kPop:
      case Op::kCall:
      case Op::kCallInd:
      case Op::kRet:
      case Op::kLoadAcq:
      case Op::kStoreRel:
        return 1;
      case Op::kAtomicRmw:
      case Op::kCas:
      case Op::kAtomicRmwAcqRel:
        return 2;
      default:
        return 0;
    }
}

/** True for the ALU sub-operations reverse execution can invert. */
inline bool
invertibleAlu(isa::AluOp op)
{
    using isa::AluOp;
    return op == AluOp::kAdd || op == AluOp::kSub || op == AluOp::kXor;
}

/**
 * Static facts of one instruction, precomputed once per program so the
 * replay inner loops index a flat table instead of re-deriving them.
 */
struct InsnFacts {
    /** May-write register mask (== regWriteMask). */
    uint16_t kill = 0;
    /** May-read register mask (== regReadMask). */
    uint16_t uses = 0;
    /**
     * Subset of `kill` whose pre-state backward replay can reconstruct
     * from the post-state (reverse execution, §5.2.2): invertible ALU
     * immediates, invertible reg-reg ALU (given the source), and the
     * ±8 rsp arithmetic of push/pop/call/ret.
     */
    uint16_t invertible = 0;
    /**
     * Registers *outside* `kill` whose pre-state is learnable from the
     * post-state of other registers: the source of a reg-reg move and
     * the base of a single-base lea.
     */
    uint16_t learns = 0;
    /** PEBS-countable memory events (== memOpCount). */
    uint8_t mem_ops = 0;
    /**
     * True when forward replay can always compute this access's
     * effective address (PC-relative operands need no registers).
     */
    bool ea_static = false;
    /**
     * True when emulated memory does not survive this instruction
     * (sync / allocation / syscall run untraced library code).
     */
    bool memory_barrier = false;
};

/** Classify one instruction. */
inline InsnFacts
classifyInsn(const isa::Insn &insn)
{
    using isa::Op;
    using isa::Reg;
    InsnFacts f;
    f.kill = regWriteMask(insn);
    f.uses = regReadMask(insn);
    f.mem_ops = static_cast<uint8_t>(memOpCount(insn));
    f.ea_static = insn.hasMemOperand() && insn.mem.rip_relative;
    switch (insn.op) {
      case Op::kAluRI:
        if (invertibleAlu(insn.alu) && isa::isGpr(insn.dst))
            f.invertible |= regBit(insn.dst);
        break;
      case Op::kAluRR:
        if (invertibleAlu(insn.alu) && isa::isGpr(insn.dst) &&
            insn.src != insn.dst) {
            f.invertible |= regBit(insn.dst);
        }
        break;
      case Op::kMovRR:
        if (isa::isGpr(insn.src) && insn.src != insn.dst)
            f.learns |= regBit(insn.src);
        break;
      case Op::kLea:
        if (!insn.mem.rip_relative && isa::isGpr(insn.mem.base) &&
            insn.mem.index == Reg::none && insn.mem.base != insn.dst) {
            f.learns |= regBit(insn.mem.base);
        }
        break;
      case Op::kPush:
      case Op::kPop:
      case Op::kCall:
      case Op::kCallInd:
      case Op::kRet:
        f.invertible |= regBit(Reg::rsp);
        break;
      case Op::kLock:
      case Op::kUnlock:
      case Op::kCondWait:
      case Op::kCondSignal:
      case Op::kCondBcast:
      case Op::kBarrier:
      case Op::kJoin:
      case Op::kFree:
      case Op::kSpawn:
      case Op::kMalloc:
      case Op::kSyscall:
      case Op::kRwRdLock:
      case Op::kRwWrLock:
      case Op::kRwUnlock:
      case Op::kSemInit:
      case Op::kSemWait:
      case Op::kSemPost:
      case Op::kSpinLock:
      case Op::kSpinUnlock:
        f.memory_barrier = true;
        break;
      default:
        break;
    }
    return f;
}

} // namespace prorace::analysis

#endif // PRORACE_ANALYSIS_INSN_FACTS_HH

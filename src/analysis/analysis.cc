#include "analysis/analysis.hh"

namespace prorace::analysis {

namespace {

std::vector<InsnFacts>
buildFacts(const asmkit::Program &program)
{
    std::vector<InsnFacts> facts;
    facts.reserve(program.size());
    for (const isa::Insn &insn : program.code())
        facts.push_back(classifyInsn(insn));
    return facts;
}

} // namespace

ProgramAnalysis::ProgramAnalysis(const asmkit::Program &program,
                                 bool enable_pointsto)
    : program_(&program), facts_(buildFacts(program)), cfg_(program),
      dataflow_(cfg_, facts_), escape_(cfg_, facts_)
{
    if (!enable_pointsto)
        return;
    pointsto_ =
        std::make_unique<PointsTo>(cfg_, dataflow_, escape_, facts_);
    heap_escape_ =
        std::make_unique<HeapEscapeAnalysis>(escape_, *pointsto_);
    if (!pointsto_->indirectTargets().empty()) {
        sharp_cfg_ = std::make_unique<Cfg>(program,
                                           pointsto_->indirectTargets());
    }
}

StaticSummary
ProgramAnalysis::summary() const
{
    StaticSummary s;
    s.insns = program_->size();
    s.blocks = cfg_.numBlocks();
    s.edges = cfg_.numEdges();
    s.reachable_blocks = cfg_.numReachable();
    s.address_taken = static_cast<uint32_t>(cfg_.addressTaken().size());
    s.mem_sites = escape_.numSites();
    s.thread_local_sites = escape_.numThreadLocal();
    for (const InsnFacts &f : facts_) {
        if (f.invertible)
            ++s.invertible_insns;
        if (f.learns)
            ++s.learn_insns;
    }
    s.rsp_integrity = escape_.rspIntegrity();
    s.no_stack_escape = escape_.noStackEscape();
    if (pointsto_) {
        s.pointsto_enabled = true;
        s.pointsto = pointsto_->stats();
        s.heap_local_sites = heap_escape_->numHeapLocal();
    }
    const Cfg &sharp = sharpCfg();
    s.sharp_edges = sharp.numEdges();
    s.sharp_reachable = sharp.numReachable();
    return s;
}

} // namespace prorace::analysis

#include "analysis/analysis.hh"

namespace prorace::analysis {

namespace {

std::vector<InsnFacts>
buildFacts(const asmkit::Program &program)
{
    std::vector<InsnFacts> facts;
    facts.reserve(program.size());
    for (const isa::Insn &insn : program.code())
        facts.push_back(classifyInsn(insn));
    return facts;
}

} // namespace

ProgramAnalysis::ProgramAnalysis(const asmkit::Program &program)
    : program_(&program), facts_(buildFacts(program)), cfg_(program),
      dataflow_(cfg_, facts_), escape_(cfg_, facts_)
{
}

StaticSummary
ProgramAnalysis::summary() const
{
    StaticSummary s;
    s.insns = program_->size();
    s.blocks = cfg_.numBlocks();
    s.edges = cfg_.numEdges();
    s.reachable_blocks = cfg_.numReachable();
    s.address_taken = static_cast<uint32_t>(cfg_.addressTaken().size());
    s.mem_sites = escape_.numSites();
    s.thread_local_sites = escape_.numThreadLocal();
    for (const InsnFacts &f : facts_) {
        if (f.invertible)
            ++s.invertible_insns;
        if (f.learns)
            ++s.learn_insns;
    }
    s.rsp_integrity = escape_.rspIntegrity();
    s.no_stack_escape = escape_.noStackEscape();
    return s;
}

} // namespace prorace::analysis

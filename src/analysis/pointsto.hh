/**
 * @file
 * Inclusion-based (Andersen) points-to analysis over the ISA.
 *
 * Abstract objects are allocation sites (one per kMalloc instruction),
 * global data symbols, a single collective stack object, the global
 * slop (global address space outside any symbol), and code targets
 * (instruction indices materialized as immediates). Two distinguished
 * objects close the lattice: ⊤ ("may be any data address") and ⊤code
 * ("may be any code address, or an arithmetic derivative of a code/
 * small-integer immediate"). A small immediate in [1, program size) is
 * indistinguishable from a movLabel code pointer, so it is typed as
 * the code object of that index; arithmetic on it degrades to ⊤code,
 * and a store through a ⊤/⊤code address is a *top store*. A third
 * program-level object, the *forged-heap* object, types immediates in
 * the heap address range: its contents alias the contents of every
 * allocation site (a forged heap pointer could name any of them), but
 * it stays distinct from ⊤ so an undereferenced heap-range constant —
 * e.g. a PRNG seed that merely looks like a heap address — costs
 * nothing. Only a load/store whose address set actually contains the
 * forged-heap object voids heap soundness (`no_heap_forgery`).
 *
 * Constraints are generated from the PR 5 reaching-definitions facts:
 * each register read at a block entry is wired to the unique reaching
 * def when there is one, and to every predecessor's out-state when the
 * def is ambiguous. Reads the collapsed meet calls *external* are
 * wired to BOTH inflows a value can take: per-register *boundary
 * pool* nodes that collect, for each register, its value at every
 * control-transfer boundary (call, indirect call/jump, return) plus
 * every spawn argument (delivered in rdi) — covering values that
 * arrive at an unenumerable entry — and every predecessor's
 * out-state, covering values flowing in along ordinary edges (the
 * meet taints every path once one of them passes an unknown entry,
 * so external does not imply a boundary crossing). Host-created root
 * threads are assumed to receive scalar (non-pointer) arguments, the
 * convention everywhere in this codebase (`addThread("main")`,
 * arg 0); the fig20 on/off identity sweep and the StaticLint
 * points-to battery check the consequences dynamically. Memory-operand
 * index registers are ignored under the standard field-insensitive
 * in-object-arithmetic assumption: [base + index*scale + disp] aliases
 * exactly what base aliases. The solver is a classic worklist with
 * propagation and lazy cycle detection: when a copy edge connects two
 * nodes with equal non-empty solutions, the solver looks for the cycle
 * and collapses it with union-find, keeping the fixpoint near-linear.
 *
 * Three consumers, each self-degrading when preconditions fail:
 *  - HeapEscapeAnalysis / interval pruning: allocation sites whose
 *    objects are never reachable from globals, spawn arguments, or
 *    ⊤-stored values are thread-local. Requires EscapeAnalysis
 *    soundness and that no forged-heap pointer is ever dereferenced.
 *    Top stores do NOT void this: once any store's target may be
 *    ⊤/⊤code, every stored value conservatively escapes.
 *  - CFG sharpening: the resolved target set of each indirect
 *    jump/call (code objects in the target register's solution, when
 *    ⊤/⊤code-free) replaces the global address-taken fan-out. Voided
 *    entirely by any top store (a smeared store could plant a code
 *    pointer the per-object contents miss).
 *  - Replay constant recovery: globals no store may reach are
 *    immutable, so their initial bytes are their bytes forever and
 *    reverse execution can recover loads from them. Voided by any top
 *    store.
 *
 * See DESIGN.md §17 for the full model and the soundness argument.
 */

#ifndef PRORACE_ANALYSIS_POINTSTO_HH
#define PRORACE_ANALYSIS_POINTSTO_HH

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "analysis/dataflow.hh"
#include "analysis/escape.hh"

namespace prorace::analysis {

/** Dense bitset over abstract-object ids. */
class ObjSet
{
  public:
    ObjSet() = default;
    explicit ObjSet(uint32_t num_objects)
        : words_((num_objects + 63) / 64, 0)
    {
    }

    bool
    test(uint32_t obj) const
    {
        return (words_[obj >> 6] >> (obj & 63)) & 1u;
    }
    bool
    set(uint32_t obj)
    {
        uint64_t &w = words_[obj >> 6];
        const uint64_t bit = 1ull << (obj & 63);
        if (w & bit)
            return false;
        w |= bit;
        return true;
    }
    /** this |= other; returns true when this grew. */
    bool
    merge(const ObjSet &other)
    {
        bool grew = false;
        for (size_t i = 0; i < words_.size(); ++i) {
            const uint64_t next = words_[i] | other.words_[i];
            grew = grew || next != words_[i];
            words_[i] = next;
        }
        return grew;
    }
    bool
    intersects(const ObjSet &other) const
    {
        for (size_t i = 0; i < words_.size(); ++i) {
            if (words_[i] & other.words_[i])
                return true;
        }
        return false;
    }
    bool
    empty() const
    {
        for (const uint64_t w : words_)
            if (w)
                return false;
        return true;
    }
    bool operator==(const ObjSet &) const = default;

    /** Enumerate set object ids, ascending. */
    std::vector<uint32_t>
    toVector() const
    {
        std::vector<uint32_t> out;
        for (size_t i = 0; i < words_.size(); ++i) {
            uint64_t w = words_[i];
            while (w) {
                const int b = __builtin_ctzll(w);
                out.push_back(static_cast<uint32_t>(i * 64 + b));
                w &= w - 1;
            }
        }
        return out;
    }
    uint32_t
    count() const
    {
        uint32_t n = 0;
        for (const uint64_t w : words_)
            n += static_cast<uint32_t>(__builtin_popcountll(w));
        return n;
    }

  private:
    std::vector<uint64_t> words_;
};

/**
 * The constraint solver: variable nodes hold sets of abstract-object
 * ids; constraints are subset inclusions. Exposed separately from the
 * program-facing PointsTo so tests can drive it on synthetic systems
 * and diff it against a naive cubic reference.
 *
 * Built-in memory model (mirrored by the test reference solver):
 *  - every object's contents node folds into a hidden *all-values*
 *    node (anything stored anywhere is reachable via an unknown
 *    pointer), which is seeded with ⊤;
 *  - a load through ⊤, ⊤code, or a code object yields the all-values
 *    node (code space may have been smeared by ⊤code stores);
 *  - a store through ⊤/⊤code sets the top-store flag, and from then
 *    on *every* store's source also escapes into ⊤'s contents (a
 *    smeared store may have planted a pointer that typed loads miss,
 *    so anything ever stored must be treated as reachable).
 */
class AndersenSolver
{
  public:
    /** Distinguished object ids (callers must reserve them). */
    static constexpr uint32_t kObjTop = 0;     ///< any data address
    static constexpr uint32_t kObjTopCode = 1; ///< any code address

    /**
     * @p num_objects total abstract objects including the two
     * distinguished ids. @p collapse_cycles disables lazy cycle
     * collapse (for differential testing only).
     */
    explicit AndersenSolver(uint32_t num_objects,
                            bool collapse_cycles = true);

    /**
     * Mark which objects are code targets (adjust-edge and opaque-load
     * semantics). Should include kObjTopCode. Call before adding
     * constraints.
     */
    void setCodeObjects(const ObjSet &code);

    /** Create a fresh variable node. */
    uint32_t addNode();

    /** The contents variable of one object (created on first use). */
    uint32_t contents(uint32_t obj);

    /** The hidden all-values node (for tests and diagnostics). */
    uint32_t allValues() const { return av_; }

    /** obj ∈ pts(node). */
    void seed(uint32_t node, uint32_t obj);

    /** pts(to) ⊇ pts(from). */
    void copy(uint32_t from, uint32_t to);

    /**
     * pts(to) ⊇ adjust(pts(from)): pointer arithmetic. Data objects
     * pass through (field-insensitive, arithmetic assumed in-object);
     * any code object additionally yields ⊤code.
     */
    void copyAdjust(uint32_t from, uint32_t to);

    /** ∀o ∈ pts(addr): pts(dst) ⊇ pts(contents(o)) (or all-values). */
    void load(uint32_t addr, uint32_t dst);

    /** ∀o ∈ pts(addr): pts(contents(o)) ⊇ pts(src). */
    void store(uint32_t addr, uint32_t src);

    /** Run (or re-run, after adding constraints) to fixpoint. */
    void solve();

    /** Solution of one node (valid after solve()). */
    const ObjSet &pointsTo(uint32_t node) const;
    bool
    pointsToObj(uint32_t node, uint32_t obj) const
    {
        return pointsTo(node).test(obj);
    }

    /** True when some store's address may be ⊤/⊤code. */
    bool topStoreSeen() const { return top_store_seen_; }

    uint32_t numObjects() const { return num_objects_; }
    uint32_t numNodes() const
    {
        return static_cast<uint32_t>(pts_.size());
    }
    uint64_t numConstraints() const { return num_constraints_; }
    uint64_t iterations() const { return iterations_; }
    uint32_t cyclesCollapsed() const { return cycles_collapsed_; }

  private:
    struct Edge {
        uint32_t to;
        bool adjust;
    };

    uint32_t find(uint32_t n) const;
    void unite(uint32_t a, uint32_t b);
    void collapseCycle(uint32_t from, uint32_t to);
    bool propagate(uint32_t from, const ObjSet &delta, uint32_t to,
                   bool adjust);
    void enqueue(uint32_t n);
    bool opaque(uint32_t obj) const;
    void onTopStore();
    void loadFrom(uint32_t obj, uint32_t dst);
    void storeTo(uint32_t obj, uint32_t src);

    uint32_t num_objects_;
    bool collapse_cycles_;
    ObjSet code_objects_;
    std::vector<ObjSet> pts_;      ///< current solution per rep node
    std::vector<ObjSet> delta_;    ///< not-yet-propagated portion
    std::vector<std::vector<Edge>> edges_;
    std::vector<std::vector<uint32_t>> load_dsts_;
    std::vector<std::vector<uint32_t>> store_srcs_;
    /** Objects already expanded per complex-constraint node. */
    std::vector<ObjSet> complex_done_;
    mutable std::vector<uint32_t> parent_; ///< union-find
    std::map<uint32_t, uint32_t> contents_;
    std::vector<uint32_t> worklist_;
    std::vector<uint8_t> queued_;
    std::vector<uint32_t> all_store_srcs_;
    uint32_t av_ = 0; ///< the all-values node
    bool top_store_seen_ = false;
    uint64_t num_constraints_ = 0;
    uint64_t iterations_ = 0;
    uint32_t cycles_collapsed_ = 0;
};

/** One abstract memory object. */
struct AbstractObject {
    enum class Kind : uint8_t {
        kTop = 0,    ///< unknown data address
        kTopCode,    ///< unknown code address
        kStack,      ///< all thread stacks, collectively
        kGlobalSlop, ///< global address space outside any symbol
        kHeapForge,  ///< forged heap pointer: any allocation site
        kGlobal,     ///< one data symbol
        kAlloc,      ///< one kMalloc allocation site
        kCode,       ///< one code target (instruction index)
    };
    Kind kind = Kind::kTop;
    uint32_t insn = 0;   ///< kAlloc: site; kCode: target index
    uint64_t addr = 0;   ///< kGlobal: symbol base
    uint64_t size = 0;   ///< kGlobal: symbol size
};

/** Aggregate counters for --stats / static-report. */
struct PointsToStats {
    uint32_t objects = 0;
    uint32_t alloc_sites = 0;
    uint32_t nodes = 0;
    uint64_t constraints = 0;
    uint64_t iterations = 0;
    uint32_t cycles_collapsed = 0;
    uint32_t thread_local_allocs = 0;
    uint32_t heap_local_sites = 0;
    uint32_t immutable_globals = 0;
    uint32_t indirect_sites = 0;
    uint32_t resolved_indirect_sites = 0;
    uint64_t fanout_blunt = 0;  ///< Σ address-taken per indirect site
    uint64_t fanout_sharp = 0;  ///< Σ resolved targets per site
    bool no_heap_forgery = true; ///< no forged-heap ptr dereferenced
    bool top_store = false;  ///< some store's address may be ⊤/⊤code
    bool heap_sound = false; ///< escape sound ∧ no_heap_forgery
};

/**
 * Program-facing points-to results: constraint generation from the
 * CFG/dataflow/escape trio, plus the three consumer views.
 * Immutable after construction.
 */
class PointsTo
{
  public:
    PointsTo(const Cfg &cfg, const Dataflow &dataflow,
             const EscapeAnalysis &escape,
             const std::vector<InsnFacts> &facts);

    /** No access site may dereference a forged heap pointer. */
    bool noHeapForgery() const { return stats_.no_heap_forgery; }

    /** True when heap thread-locality conclusions are trustworthy. */
    bool heapSound() const { return stats_.heap_sound; }

    /**
     * True when the kMalloc at @p insn allocates objects only ever
     * reachable from the allocating thread (false when !heapSound()).
     */
    bool
    allocSiteThreadLocal(uint32_t insn) const
    {
        const auto it = alloc_site_local_.find(insn);
        return it != alloc_site_local_.end() && it->second;
    }

    /** All kMalloc sites proved thread-local (sorted). */
    const std::vector<uint32_t> &
    threadLocalAllocSites() const
    {
        return thread_local_allocs_;
    }

    /**
     * Resolved target sets for indirect transfers: insn index of the
     * kJmpInd/kCallInd → sorted, deduped instruction targets. Sites
     * whose target register may be ⊤/⊤code are absent (fall back to
     * the address-taken set); empty whenever a top store was seen.
     */
    const std::map<uint32_t, std::vector<uint32_t>> &
    indirectTargets() const
    {
        return indirect_targets_;
    }

    /** True when at least one global is provably immutable. */
    bool anyImmutable() const { return stats_.immutable_globals > 0; }

    /**
     * True when every byte of [addr, addr+size) lies in a global no
     * store may reach (so memory there always equals the init image).
     */
    bool immutableCovers(uint64_t addr, uint64_t size) const;

    /** Initial bytes at @p addr, zero-extended to @p width. */
    uint64_t constantAt(uint64_t addr, uint8_t width) const;

    /**
     * True when every access at @p insn lands in a thread-local heap
     * object (the site's address set is non-empty and contains only
     * thread-local allocation objects).
     */
    bool
    siteHeapLocal(uint32_t insn) const
    {
        return insn < site_heap_local_.size() &&
            site_heap_local_[insn] != 0;
    }

    const PointsToStats &stats() const { return stats_; }
    const std::vector<AbstractObject> &objects() const
    {
        return objects_;
    }

    /** Solution of the address node of @p insn's memory operand. */
    std::vector<uint32_t> siteObjects(uint32_t insn) const;

  private:
    uint32_t objectCovering(uint64_t addr);
    uint32_t literalNode(int64_t imm);
    uint32_t inNode(uint32_t block, unsigned reg);
    void generate();
    void wireInNodes();
    void classify();

    const Cfg *cfg_;
    const Dataflow *dataflow_;
    const EscapeAnalysis *escape_;
    const std::vector<InsnFacts> *facts_;

    std::vector<AbstractObject> objects_;
    ObjSet code_mask_;
    std::map<uint32_t, uint32_t> code_obj_;   ///< target → object id
    std::map<uint64_t, uint32_t> global_obj_; ///< base → object id
    std::map<uint32_t, uint32_t> alloc_obj_;  ///< insn → object id

    std::unique_ptr<AndersenSolver> solver_;
    /** Per-register boundary pool: reg values at transfer boundaries. */
    std::array<uint32_t, isa::kNumGprs> boundary_{};
    std::map<uint64_t, uint32_t> in_nodes_;   ///< (block<<4|reg) → node
    std::map<uint64_t, uint32_t> def_nodes_;  ///< (insn<<4|reg) → node
    std::vector<std::array<uint32_t, isa::kNumGprs>> block_out_;
    std::vector<uint32_t> site_addr_;   ///< per-insn address node or ~0
    std::vector<uint8_t> site_writes_;  ///< insn may write its target
    std::vector<uint8_t> site_heap_local_;
    std::map<uint32_t, uint32_t> indirect_reg_; ///< insn → target node
    std::vector<uint32_t> extra_written_; ///< nodes whose pointees are
                                          ///< written outside a store
    std::map<uint32_t, bool> alloc_site_local_;
    std::vector<uint32_t> thread_local_allocs_;
    std::map<uint32_t, std::vector<uint32_t>> indirect_targets_;
    std::vector<std::pair<uint64_t, uint64_t>> immutable_ranges_;
    PointsToStats stats_;
};

/**
 * The heap analogue of EscapeAnalysis, layered on it: the merged
 * per-site classification where may-shared sites whose addresses are
 * confined to thread-local heap objects become kHeapLocal.
 */
class HeapEscapeAnalysis
{
  public:
    HeapEscapeAnalysis(const EscapeAnalysis &escape,
                       const PointsTo &pointsto);

    /** Merged classification (escape's, upgraded to kHeapLocal). */
    SiteClass site(uint32_t index) const { return sites_[index]; }
    const std::vector<SiteClass> &sites() const { return sites_; }

    uint32_t numHeapLocal() const { return num_heap_local_; }

  private:
    std::vector<SiteClass> sites_;
    uint32_t num_heap_local_ = 0;
};

} // namespace prorace::analysis

#endif // PRORACE_ANALYSIS_POINTSTO_HH

#include "analysis/escape.hh"

#include <cstdlib>

#include "asmkit/layout.hh"

namespace prorace::analysis {

using isa::AluOp;
using isa::Insn;
using isa::Op;
using isa::Reg;

namespace {

constexpr uint16_t kRspBit = 1u << isa::gprIndex(Reg::rsp);

bool
boundedDisp(int64_t disp)
{
    return disp >= -kMaxStackDisp && disp <= kMaxStackDisp;
}

/** Immediate that looks like an absolute stack address (forged pointer). */
bool
stackImmediate(int64_t imm)
{
    return asmkit::isStackAddress(static_cast<uint64_t>(imm));
}

/**
 * Must-stack transfer of one instruction: which registers definitely
 * hold a bounded own-stack pointer after it, given the set before it.
 * rsp is invariant under integrity and always re-enters the set.
 */
uint16_t
mustStackTransfer(uint16_t s, const Insn &insn, uint16_t kill)
{
    bool dst_stack = false;
    switch (insn.op) {
      case Op::kMovRR:
        dst_stack = isa::isGpr(insn.src) && ((s >> gprIndex(insn.src)) & 1u);
        break;
      case Op::kLea:
        dst_stack = !insn.mem.rip_relative && isa::isGpr(insn.mem.base) &&
            ((s >> gprIndex(insn.mem.base)) & 1u) &&
            insn.mem.index == Reg::none && boundedDisp(insn.mem.disp);
        break;
      case Op::kAluRI:
        dst_stack = (insn.alu == AluOp::kAdd || insn.alu == AluOp::kSub) &&
            isa::isGpr(insn.dst) && ((s >> gprIndex(insn.dst)) & 1u) &&
            boundedDisp(insn.imm);
        break;
      default:
        break;
    }
    s &= static_cast<uint16_t>(~kill);
    if (dst_stack && isa::isGpr(insn.dst))
        s |= regBit(insn.dst);
    return s | kRspBit;
}

/**
 * Structural site shape, before the program-wide invariants are known:
 * does this instruction's data access go through the stack pointer?
 */
SiteClass
structuralSite(const Insn &insn, uint16_t must_stack)
{
    switch (insn.op) {
      case Op::kPush:
      case Op::kPop:
      case Op::kCall:
      case Op::kCallInd:
      case Op::kRet:
        return SiteClass::kStackImplicit;
      case Op::kLoad:
      case Op::kStore:
      case Op::kStoreI:
      case Op::kAtomicRmw:
      case Op::kCas:
      case Op::kLoadAcq:
      case Op::kStoreRel:
      case Op::kAtomicRmwAcqRel:
        if (!insn.mem.rip_relative && isa::isGpr(insn.mem.base) &&
            ((must_stack >> gprIndex(insn.mem.base)) & 1u) &&
            insn.mem.index == Reg::none && boundedDisp(insn.mem.disp)) {
            return SiteClass::kStackDirect;
        }
        return SiteClass::kMayShared;
      default:
        return SiteClass::kNoAccess;
    }
}

} // namespace

const char *
siteClassName(SiteClass c)
{
    switch (c) {
      case SiteClass::kNoAccess:      return "no-access";
      case SiteClass::kStackImplicit: return "stack-implicit";
      case SiteClass::kStackDirect:   return "stack-direct";
      case SiteClass::kMayShared:     return "may-shared";
      case SiteClass::kHeapLocal:     return "heap-local";
    }
    return "?";
}

EscapeAnalysis::EscapeAnalysis(const Cfg &cfg,
                               const std::vector<InsnFacts> &facts)
    : must_stack_in_(cfg.numBlocks(), 0),
      sites_(cfg.program().size(), SiteClass::kNoAccess)
{
    const asmkit::Program &p = cfg.program();
    checkRspIntegrity(p);
    solveMustStack(cfg);
    classifySites(cfg, facts);
    solveMayStack(p);

    if (!sound()) {
        // Without the invariants no stack access is provably private;
        // demote every classification so threadLocal() never lies.
        num_thread_local_ = 0;
        for (SiteClass &c : sites_) {
            if (c == SiteClass::kStackImplicit ||
                c == SiteClass::kStackDirect) {
                c = SiteClass::kMayShared;
            }
        }
    } else {
        for (const SiteClass c : sites_) {
            if (c == SiteClass::kStackImplicit ||
                c == SiteClass::kStackDirect) {
                ++num_thread_local_;
            }
        }
    }
}

void
EscapeAnalysis::checkRspIntegrity(const asmkit::Program &p)
{
    for (const Insn &insn : p.code()) {
        if (!(regWriteMask(insn) & kRspBit))
            continue;
        switch (insn.op) {
          case Op::kPush:
          case Op::kCall:
          case Op::kCallInd:
          case Op::kRet:
            break; // implicit -8/+8
          case Op::kPop:
            // pop rsp loads rsp from memory: not stack-preserving.
            if (insn.dst == Reg::rsp)
                rsp_integrity_ = false;
            break;
          case Op::kAluRI:
            // Bounded frame arithmetic keeps rsp inside the region.
            if (!((insn.alu == AluOp::kAdd || insn.alu == AluOp::kSub) &&
                  boundedDisp(insn.imm))) {
                rsp_integrity_ = false;
            }
            break;
          default:
            rsp_integrity_ = false;
            break;
        }
    }
}

void
EscapeAnalysis::solveMustStack(const Cfg &cfg)
{
    const asmkit::Program &p = cfg.program();
    const uint16_t kTop = 0xffff;
    const uint16_t kBoundary = kRspBit; // all any entry guarantees
    std::vector<uint16_t> in(cfg.numBlocks(), kTop);
    std::vector<uint16_t> out(cfg.numBlocks(), kTop);

    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t b = 0; b < cfg.numBlocks(); ++b) {
            const CfgBlock &node = cfg.block(b);
            // Meet = intersection over predecessors; any entry the edge
            // list cannot enumerate contributes the boundary value.
            uint16_t s = kTop;
            if (node.unknown_entry || node.preds.empty())
                s = kBoundary;
            for (const uint32_t pb : node.preds)
                s &= out[pb];
            s |= kRspBit;
            if (s != in[b]) {
                in[b] = s;
                changed = true;
            }
            uint16_t cur = s;
            for (uint32_t i = p.blockBegin(b); i < p.blockEnd(b); ++i)
                cur = mustStackTransfer(cur, p.insnAt(i),
                                        regWriteMask(p.insnAt(i)));
            if (cur != out[b]) {
                out[b] = cur;
                changed = true;
            }
        }
    }
    must_stack_in_ = std::move(in);
}

void
EscapeAnalysis::classifySites(const Cfg &cfg,
                              const std::vector<InsnFacts> &facts)
{
    const asmkit::Program &p = cfg.program();
    for (uint32_t b = 0; b < cfg.numBlocks(); ++b) {
        uint16_t cur = must_stack_in_[b];
        for (uint32_t i = p.blockBegin(b); i < p.blockEnd(b); ++i) {
            const Insn &insn = p.insnAt(i);
            sites_[i] = structuralSite(insn, cur);
            if (facts[i].mem_ops > 0)
                ++num_sites_;
            cur = mustStackTransfer(cur, insn, facts[i].kill);
        }
    }
}

void
EscapeAnalysis::solveMayStack(const asmkit::Program &p)
{
    // Flow-insensitive taint: registers that may ever hold a
    // stack-derived pointer, anywhere in the program. `mem_taint`
    // records that own-stack memory may hold such a pointer (spills),
    // which makes own-stack loads tainted too. Everything is monotone,
    // so the fixpoint is a simple iterate-to-stable loop.
    uint16_t s = kRspBit;
    bool mem_taint = false;
    auto tainted = [&](Reg r) {
        return isa::isGpr(r) && ((s >> gprIndex(r)) & 1u);
    };
    auto stack_site = [&](uint32_t i) {
        return sites_[i] == SiteClass::kStackImplicit ||
            sites_[i] == SiteClass::kStackDirect;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        const uint16_t before = s;
        const bool mem_before = mem_taint;
        for (uint32_t i = 0; i < p.size(); ++i) {
            const Insn &insn = p.insnAt(i);
            switch (insn.op) {
              case Op::kMovRI:
                // A forged absolute stack address defeats the disjoint-
                // stacks argument as thoroughly as a real escape.
                if (stackImmediate(insn.imm))
                    no_stack_escape_ = false;
                break;
              case Op::kStoreI:
                if (stackImmediate(insn.imm))
                    no_stack_escape_ = false;
                break;
              case Op::kMovRR:
                if (tainted(insn.src))
                    s |= regBit(insn.dst);
                break;
              case Op::kLea:
                if (!insn.mem.rip_relative &&
                    (tainted(insn.mem.base) || tainted(insn.mem.index))) {
                    s |= regBit(insn.dst);
                }
                if (insn.mem.rip_relative && stackImmediate(insn.mem.disp))
                    no_stack_escape_ = false;
                break;
              case Op::kAluRR:
                if (tainted(insn.src))
                    s |= regBit(insn.dst);
                break;
              case Op::kPush:
                if (tainted(insn.src))
                    mem_taint = true; // spilled into own stack
                break;
              case Op::kPop:
                if (mem_taint)
                    s |= regBit(insn.dst);
                break;
              case Op::kLoad:
              case Op::kLoadAcq:
                // Own-stack loads may read a spilled stack pointer;
                // other memory holds none unless an escape already
                // voided the analysis.
                if (mem_taint && stack_site(i))
                    s |= regBit(insn.dst);
                break;
              case Op::kStore:
              case Op::kStoreRel:
                if (tainted(insn.src)) {
                    if (stack_site(i))
                        mem_taint = true;
                    else
                        no_stack_escape_ = false;
                }
                break;
              case Op::kAtomicRmw:
              case Op::kCas:
              case Op::kAtomicRmwAcqRel:
                if (tainted(insn.src)) {
                    if (stack_site(i))
                        mem_taint = true;
                    else
                        no_stack_escape_ = false;
                }
                if (mem_taint && stack_site(i))
                    s |= regBit(insn.dst);
                break;
              case Op::kSpawn:
                // The argument register is handed to the child thread.
                if (tainted(insn.src))
                    no_stack_escape_ = false;
                break;
              default:
                break;
            }
        }
        changed = s != before || mem_taint != mem_before;
    }
    may_stack_ = s;
}

} // namespace prorace::analysis

#include "analysis/pointsto.hh"

#include <algorithm>

#include "asmkit/layout.hh"
#include "support/log.hh"

namespace prorace::analysis {

using isa::AluOp;
using isa::Insn;
using isa::Op;
using isa::Reg;

// ---------------------------------------------------------------------
// AndersenSolver
// ---------------------------------------------------------------------

AndersenSolver::AndersenSolver(uint32_t num_objects, bool collapse_cycles)
    : num_objects_(num_objects), collapse_cycles_(collapse_cycles),
      code_objects_(num_objects)
{
    PRORACE_ASSERT(num_objects >= 2, "need the two distinguished objects");
    av_ = addNode();
    // A value read through an unknown pointer may itself be any
    // pointer.
    seed(av_, kObjTop);
}

void
AndersenSolver::setCodeObjects(const ObjSet &code)
{
    code_objects_ = code;
}

bool
AndersenSolver::opaque(uint32_t obj) const
{
    return obj == kObjTop || obj == kObjTopCode || code_objects_.test(obj);
}

uint32_t
AndersenSolver::addNode()
{
    const uint32_t n = static_cast<uint32_t>(pts_.size());
    pts_.emplace_back(num_objects_);
    delta_.emplace_back(num_objects_);
    edges_.emplace_back();
    load_dsts_.emplace_back();
    store_srcs_.emplace_back();
    complex_done_.emplace_back(num_objects_);
    parent_.push_back(n);
    queued_.push_back(0);
    return n;
}

uint32_t
AndersenSolver::contents(uint32_t obj)
{
    const auto it = contents_.find(obj);
    if (it != contents_.end())
        return it->second;
    const uint32_t n = addNode();
    contents_.emplace(obj, n);
    // Anything stored anywhere is reachable through an unknown pointer.
    copy(n, av_);
    return n;
}

uint32_t
AndersenSolver::find(uint32_t n) const
{
    while (parent_[n] != n) {
        parent_[n] = parent_[parent_[n]];
        n = parent_[n];
    }
    return n;
}

void
AndersenSolver::enqueue(uint32_t n)
{
    n = find(n);
    if (!queued_[n]) {
        queued_[n] = 1;
        worklist_.push_back(n);
    }
}

void
AndersenSolver::seed(uint32_t node, uint32_t obj)
{
    node = find(node);
    if (pts_[node].set(obj)) {
        delta_[node].set(obj);
        enqueue(node);
    }
}

void
AndersenSolver::copy(uint32_t from, uint32_t to)
{
    from = find(from);
    to = find(to);
    ++num_constraints_;
    if (from == to)
        return;
    for (const Edge &e : edges_[from]) {
        if (find(e.to) == to && !e.adjust)
            return;
    }
    edges_[from].push_back({to, false});
    if (propagate(from, pts_[from], to, false))
        enqueue(to);
}

void
AndersenSolver::copyAdjust(uint32_t from, uint32_t to)
{
    from = find(from);
    to = find(to);
    ++num_constraints_;
    for (const Edge &e : edges_[from]) {
        if (find(e.to) == to && e.adjust)
            return;
    }
    edges_[from].push_back({to, true});
    if (propagate(from, pts_[from], to, true))
        enqueue(to);
}

void
AndersenSolver::loadFrom(uint32_t obj, uint32_t dst)
{
    if (opaque(obj))
        copy(av_, dst);
    else
        copy(contents(obj), dst);
}

void
AndersenSolver::storeTo(uint32_t obj, uint32_t src)
{
    if (obj == kObjTop || obj == kObjTopCode) {
        onTopStore();
        copy(src, contents(kObjTop));
    } else {
        copy(src, contents(obj));
    }
}

void
AndersenSolver::onTopStore()
{
    if (top_store_seen_)
        return;
    top_store_seen_ = true;
    // A smeared store may plant a pointer where typed loads miss it,
    // so every value ever stored must be treated as reachable.
    const std::vector<uint32_t> srcs = all_store_srcs_;
    for (const uint32_t src : srcs)
        copy(src, contents(kObjTop));
}

void
AndersenSolver::load(uint32_t addr, uint32_t dst)
{
    addr = find(addr);
    dst = find(dst);
    ++num_constraints_;
    load_dsts_[addr].push_back(dst);
    for (const uint32_t obj : pts_[addr].toVector())
        loadFrom(obj, dst);
}

void
AndersenSolver::store(uint32_t addr, uint32_t src)
{
    addr = find(addr);
    src = find(src);
    ++num_constraints_;
    store_srcs_[addr].push_back(src);
    all_store_srcs_.push_back(src);
    if (top_store_seen_)
        copy(src, contents(kObjTop));
    for (const uint32_t obj : pts_[addr].toVector())
        storeTo(obj, src);
}

bool
AndersenSolver::propagate(uint32_t from, const ObjSet &delta, uint32_t to,
                          bool adjust)
{
    from = find(from);
    to = find(to);
    if (from == to && !adjust)
        return false;
    bool grew;
    if (adjust && delta.intersects(code_objects_)) {
        ObjSet adj = delta;
        adj.set(kObjTopCode);
        grew = pts_[to].merge(adj);
        if (grew)
            delta_[to].merge(adj);
    } else {
        grew = pts_[to].merge(delta);
        if (grew)
            delta_[to].merge(delta);
    }
    if (grew)
        return true;
    // Lazy cycle detection: an edge between equal non-empty solutions
    // is a cycle candidate; collapsing it removes redundant work.
    if (collapse_cycles_ && !adjust && from != to &&
        !pts_[from].empty() && pts_[from] == pts_[to]) {
        collapseCycle(from, to);
    }
    return false;
}

void
AndersenSolver::unite(uint32_t a, uint32_t b)
{
    a = find(a);
    b = find(b);
    if (a == b)
        return;
    parent_[b] = a;
    pts_[a].merge(pts_[b]);
    delta_[a].merge(delta_[b]);
    complex_done_[a].merge(complex_done_[b]);
    for (const Edge &e : edges_[b])
        edges_[a].push_back(e);
    edges_[b].clear();
    for (const uint32_t d : load_dsts_[b])
        load_dsts_[a].push_back(d);
    load_dsts_[b].clear();
    for (const uint32_t s : store_srcs_[b])
        store_srcs_[a].push_back(s);
    store_srcs_[b].clear();
    ++cycles_collapsed_;
    enqueue(a);
}

void
AndersenSolver::collapseCycle(uint32_t from, uint32_t to)
{
    // DFS from `to` along non-adjust edges looking for `from`; if a
    // path exists, from→to closed a cycle through every node on it.
    std::vector<uint32_t> stack{find(to)};
    std::map<uint32_t, uint32_t> came_from;
    came_from[find(to)] = find(to);
    uint32_t hit = UINT32_MAX;
    while (!stack.empty() && hit == UINT32_MAX) {
        const uint32_t n = stack.back();
        stack.pop_back();
        for (const Edge &e : edges_[n]) {
            if (e.adjust)
                continue;
            const uint32_t t = find(e.to);
            if (t == find(from)) {
                came_from[t] = n;
                hit = t;
                break;
            }
            if (came_from.emplace(t, n).second)
                stack.push_back(t);
        }
    }
    if (hit == UINT32_MAX)
        return;
    // Merge every node on the found path into `to`'s component.
    uint32_t n = hit;
    while (came_from.at(n) != n) {
        const uint32_t prev = came_from.at(n);
        unite(find(to), n);
        n = prev;
    }
    unite(find(to), n);
}

void
AndersenSolver::solve()
{
    while (!worklist_.empty()) {
        uint32_t n = worklist_.back();
        worklist_.pop_back();
        queued_[n] = 0;
        n = find(n);
        if (delta_[n].empty())
            continue;
        ++iterations_;
        ObjSet delta = delta_[n];
        delta_[n] = ObjSet(num_objects_);

        // Expand complex constraints for newly discovered objects.
        std::vector<uint32_t> fresh;
        for (const uint32_t obj : delta.toVector()) {
            if (complex_done_[n].set(obj))
                fresh.push_back(obj);
        }
        if (!fresh.empty() &&
            (!load_dsts_[n].empty() || !store_srcs_[n].empty())) {
            const std::vector<uint32_t> dsts = load_dsts_[n];
            const std::vector<uint32_t> srcs = store_srcs_[n];
            for (const uint32_t obj : fresh) {
                for (const uint32_t d : dsts)
                    loadFrom(obj, d);
                for (const uint32_t s : srcs)
                    storeTo(obj, s);
            }
        }

        // Propagate the delta along outgoing copy edges.
        const std::vector<Edge> edges = edges_[n];
        for (const Edge &e : edges) {
            if (propagate(n, delta, find(e.to), e.adjust))
                enqueue(e.to);
        }
    }
}

const ObjSet &
AndersenSolver::pointsTo(uint32_t node) const
{
    return pts_[find(node)];
}

// ---------------------------------------------------------------------
// PointsTo: constraint generation
// ---------------------------------------------------------------------

namespace {

constexpr uint32_t kInvalidNode = UINT32_MAX;
constexpr uint32_t kObjStack = 2;
constexpr uint32_t kObjGlobalSlop = 3;
constexpr uint32_t kObjHeapForge = 4;

uint64_t
nodeKey(uint32_t major, unsigned reg)
{
    return (static_cast<uint64_t>(major) << 4) | reg;
}

/** The instruction may mutate the memory its address resolves to. */
bool
writesMemory(Op op)
{
    switch (op) {
      case Op::kStore:
      case Op::kStoreI:
      case Op::kStoreRel:
      case Op::kAtomicRmw:
      case Op::kAtomicRmwAcqRel:
      case Op::kCas:
      case Op::kPush:
      case Op::kCall:
      case Op::kCallInd:
        return true;
      case Op::kLoadAcq:
      case Op::kSpawn:
      case Op::kJoin:
      case Op::kMalloc:
      case Op::kFree:
        return false;
      default:
        // Remaining sync operations mutate the sync word at [mem].
        return isa::isSyncOp(op);
    }
}

} // namespace

PointsTo::PointsTo(const Cfg &cfg, const Dataflow &dataflow,
                   const EscapeAnalysis &escape,
                   const std::vector<InsnFacts> &facts)
    : cfg_(&cfg), dataflow_(&dataflow), escape_(&escape), facts_(&facts)
{
    const asmkit::Program &p = cfg.program();

    // --- abstract objects -------------------------------------------
    objects_.push_back({AbstractObject::Kind::kTop, 0, 0, 0});
    objects_.push_back({AbstractObject::Kind::kTopCode, 0, 0, 0});
    objects_.push_back({AbstractObject::Kind::kStack, 0, 0, 0});
    objects_.push_back({AbstractObject::Kind::kGlobalSlop, 0, 0, 0});
    objects_.push_back({AbstractObject::Kind::kHeapForge, 0, 0, 0});
    for (const auto &[name, sym] : p.symbols()) {
        global_obj_.emplace(sym.addr,
                            static_cast<uint32_t>(objects_.size()));
        objects_.push_back(
            {AbstractObject::Kind::kGlobal, 0, sym.addr, sym.size});
    }
    auto addCodeObject = [&](uint64_t target) {
        if (target == 0 || target >= p.size())
            return; // zero is an integer, not the entry's address
        const auto t = static_cast<uint32_t>(target);
        if (code_obj_.find(t) == code_obj_.end()) {
            code_obj_.emplace(t, static_cast<uint32_t>(objects_.size()));
            objects_.push_back({AbstractObject::Kind::kCode, t, 0, 0});
        }
    };
    // Pre-create code objects for every literal a constraint may type
    // as a code pointer (the solver's object universe is fixed).
    for (uint32_t i = 0; i < p.size(); ++i) {
        const Insn &insn = p.insnAt(i);
        if (insn.op == Op::kMalloc) {
            alloc_obj_.emplace(i, static_cast<uint32_t>(objects_.size()));
            objects_.push_back({AbstractObject::Kind::kAlloc, i, 0, 0});
        }
        if ((insn.op == Op::kMovRI || insn.op == Op::kStoreI ||
             insn.op == Op::kSyscall) &&
            insn.imm > 0) {
            addCodeObject(static_cast<uint64_t>(insn.imm));
        }
        if (insn.hasMemOperand() && insn.mem.disp > 0)
            addCodeObject(static_cast<uint64_t>(insn.mem.disp));
    }
    // Statically initialized data may hold pointers (function-pointer
    // tables, pointer globals): scan init words.
    for (const auto &[name, sym] : p.symbols()) {
        for (size_t off = 0; off + 8 <= sym.init.size(); off += 8) {
            uint64_t w = 0;
            for (int b = 7; b >= 0; --b)
                w = (w << 8) | sym.init[off + static_cast<size_t>(b)];
            addCodeObject(w);
        }
    }

    const uint32_t num_objects = static_cast<uint32_t>(objects_.size());
    code_mask_ = ObjSet(num_objects);
    code_mask_.set(AndersenSolver::kObjTopCode);
    for (const auto &[target, obj] : code_obj_)
        code_mask_.set(obj);

    solver_ = std::make_unique<AndersenSolver>(num_objects);
    solver_->setCodeObjects(code_mask_);
    // Instantiate every object's contents up front so the all-values
    // absorption edges exist before any complex constraint fires.
    for (uint32_t o = 0; o < num_objects; ++o)
        solver_->contents(o);
    // A forged heap pointer could name any allocation: the forged-heap
    // object's contents and every allocation site's contents alias.
    for (const auto &[site, obj] : alloc_obj_) {
        solver_->copy(solver_->contents(kObjHeapForge),
                      solver_->contents(obj));
        solver_->copy(solver_->contents(obj),
                      solver_->contents(kObjHeapForge));
    }

    // Statically initialized pointer words seed the global's contents.
    for (const auto &[name, sym] : p.symbols()) {
        const uint32_t holder = global_obj_.at(sym.addr);
        for (size_t off = 0; off + 8 <= sym.init.size(); off += 8) {
            uint64_t w = 0;
            for (int b = 7; b >= 0; --b)
                w = (w << 8) | sym.init[off + static_cast<size_t>(b)];
            if (w == 0)
                continue;
            uint32_t obj;
            if (w < p.size())
                obj = code_obj_.at(static_cast<uint32_t>(w));
            else if (asmkit::isGlobalAddress(w))
                obj = objectCovering(w);
            else if (asmkit::isHeapAddress(w))
                obj = kObjHeapForge;
            else if (asmkit::isStackAddress(w))
                obj = kObjStack;
            else
                obj = AndersenSolver::kObjTop;
            solver_->seed(solver_->contents(holder), obj);
        }
    }

    site_addr_.assign(p.size(), kInvalidNode);
    site_writes_.assign(p.size(), 0);
    block_out_.assign(cfg.numBlocks(), {});
    for (auto &out : block_out_)
        out.fill(kInvalidNode);

    generate();
    wireInNodes();
    solver_->solve();
    classify();
}

uint32_t
PointsTo::objectCovering(uint64_t addr)
{
    auto it = global_obj_.upper_bound(addr);
    if (it != global_obj_.begin()) {
        --it;
        const AbstractObject &o = objects_[it->second];
        if (addr >= o.addr && addr < o.addr + o.size)
            return it->second;
    }
    return kObjGlobalSlop;
}

uint32_t
PointsTo::literalNode(int64_t imm)
{
    const uint32_t n = solver_->addNode();
    const uint64_t u = static_cast<uint64_t>(imm);
    const asmkit::Program &p = cfg_->program();
    if (imm == 0) {
        // Null / zero: an integer, never a live pointer.
    } else if (imm > 0 && u < p.size()) {
        solver_->seed(n, code_obj_.at(static_cast<uint32_t>(u)));
    } else if (asmkit::isGlobalAddress(u)) {
        solver_->seed(n, objectCovering(u));
    } else if (asmkit::isHeapAddress(u)) {
        // Usually an integer that merely lands in the heap range (PRNG
        // seeds); costs nothing unless actually dereferenced.
        solver_->seed(n, kObjHeapForge);
    } else if (asmkit::isStackAddress(u)) {
        solver_->seed(n, kObjStack);
    } else {
        // Out of every known range: usually an integer constant, but
        // arithmetic can carry it anywhere, so ⊤ if ever dereferenced.
        solver_->seed(n, AndersenSolver::kObjTop);
    }
    return n;
}

uint32_t
PointsTo::inNode(uint32_t block, unsigned reg)
{
    const uint64_t key = nodeKey(block, reg);
    const auto it = in_nodes_.find(key);
    if (it != in_nodes_.end())
        return it->second;
    const uint32_t n = solver_->addNode();
    in_nodes_.emplace(key, n);
    return n;
}

void
PointsTo::generate()
{
    const asmkit::Program &p = cfg_->program();
    const bool rsp_ok = escape_->rspIntegrity();
    const bool has_calls = std::any_of(
        p.code().begin(), p.code().end(), [](const Insn &insn) {
            return insn.op == Op::kCall || insn.op == Op::kCallInd;
        });
    // Return addresses live on the stack; popping one yields a code
    // pointer the analysis cannot name.
    if (has_calls)
        solver_->seed(solver_->contents(kObjStack),
                      AndersenSolver::kObjTopCode);

    // Per-register boundary pools: a value can only arrive at an
    // unenumerable entry (thread entry, indirect target, return site)
    // in a register that held it at some transfer boundary — a call,
    // indirect call/jump, or return — or as a spawn argument in rdi.
    // Host-created root threads pass scalar args (arg 0 everywhere in
    // this codebase), so they contribute nothing.
    for (unsigned r = 0; r < isa::kNumGprs; ++r)
        boundary_[r] = solver_->addNode();

    for (uint32_t b = 0; b < cfg_->numBlocks(); ++b) {
        std::array<uint32_t, isa::kNumGprs> cur;
        cur.fill(kInvalidNode);
        auto use = [&](Reg r) {
            const unsigned idx = isa::gprIndex(r);
            if (cur[idx] == kInvalidNode)
                cur[idx] = inNode(b, idx);
            return cur[idx];
        };
        auto stackNode = [&]() {
            const uint32_t n = solver_->addNode();
            if (rsp_ok)
                solver_->seed(n, kObjStack);
            else
                solver_->copy(use(Reg::rsp), n);
            return n;
        };
        // The address node of a memory operand. Index registers are
        // ignored: [base + index*scale + disp] stays inside base's
        // object (field-insensitive in-object-arithmetic assumption).
        auto memAddrNode = [&](const isa::MemOperand &mem) -> uint32_t {
            if (mem.rip_relative || !isa::isGpr(mem.base))
                return literalNode(mem.disp);
            const uint32_t n = solver_->addNode();
            if (mem.disp == 0 && !isa::isGpr(mem.index))
                solver_->copy(use(mem.base), n);
            else
                solver_->copyAdjust(use(mem.base), n);
            return n;
        };

        for (uint32_t i = p.blockBegin(b); i < p.blockEnd(b); ++i) {
            const Insn &insn = p.insnAt(i);
            uint16_t defed = 0;
            auto def = [&](Reg r, uint32_t node) {
                cur[isa::gprIndex(r)] = node;
                def_nodes_[nodeKey(i, isa::gprIndex(r))] = node;
                defed = static_cast<uint16_t>(defed | regBit(r));
            };

            // Address node of the instruction's memory target.
            if (insn.hasMemOperand()) {
                const SiteClass sc = escape_->site(i);
                if (escape_->sound() &&
                    (sc == SiteClass::kStackImplicit ||
                     sc == SiteClass::kStackDirect)) {
                    const uint32_t n = solver_->addNode();
                    solver_->seed(n, kObjStack);
                    site_addr_[i] = n;
                } else {
                    site_addr_[i] = memAddrNode(insn.mem);
                }
            } else {
                switch (insn.op) {
                  case Op::kPush:
                  case Op::kPop:
                  case Op::kCall:
                  case Op::kCallInd:
                  case Op::kRet:
                    site_addr_[i] = stackNode();
                    break;
                  default:
                    break;
                }
            }
            if (writesMemory(insn.op))
                site_writes_[i] = 1;

            // Pre-transfer register state feeds the boundary pools
            // (the callee / indirect target / return site sees it).
            switch (insn.op) {
              case Op::kCall:
              case Op::kCallInd:
              case Op::kJmpInd:
              case Op::kRet:
                for (unsigned r = 0; r < isa::kNumGprs; ++r)
                    solver_->copy(use(isa::gprFromIndex(r)),
                                  boundary_[r]);
                break;
              case Op::kSpawn:
                // The child thread finds the argument in rdi.
                solver_->copy(use(insn.src),
                              boundary_[isa::gprIndex(Reg::rdi)]);
                break;
              default:
                break;
            }

            switch (insn.op) {
              case Op::kMovRI:
                def(insn.dst, literalNode(insn.imm));
                break;
              case Op::kMovRR: {
                const uint32_t n = solver_->addNode();
                solver_->copy(use(insn.src), n);
                def(insn.dst, n);
                break;
              }
              case Op::kLoad:
              case Op::kLoadAcq: {
                const uint32_t n = solver_->addNode();
                solver_->load(site_addr_[i], n);
                def(insn.dst, n);
                break;
              }
              case Op::kStore:
              case Op::kStoreRel:
                solver_->store(site_addr_[i], use(insn.src));
                break;
              case Op::kStoreI:
                solver_->store(site_addr_[i], literalNode(insn.imm));
                break;
              case Op::kLea:
                def(insn.dst, memAddrNode(insn.mem));
                break;
              case Op::kAluRR: {
                const uint32_t n = solver_->addNode();
                // xor r,r / sub r,r zero the register: an integer.
                const bool zeroing = insn.src == insn.dst &&
                    (insn.alu == AluOp::kXor || insn.alu == AluOp::kSub);
                if (!zeroing) {
                    solver_->copyAdjust(use(insn.dst), n);
                    solver_->copyAdjust(use(insn.src), n);
                }
                def(insn.dst, n);
                break;
              }
              case Op::kAluRI: {
                const uint32_t n = solver_->addNode();
                solver_->copyAdjust(use(insn.dst), n);
                def(insn.dst, n);
                break;
              }
              case Op::kPush:
                solver_->store(site_addr_[i], use(insn.src));
                def(Reg::rsp, stackNode());
                break;
              case Op::kPop: {
                const uint32_t n = solver_->addNode();
                solver_->load(site_addr_[i], n);
                def(insn.dst, n);
                def(Reg::rsp, stackNode());
                break;
              }
              case Op::kCall:
              case Op::kCallInd:
              case Op::kRet:
                def(Reg::rsp, stackNode());
                break;
              case Op::kAtomicRmw:
              case Op::kAtomicRmwAcqRel: {
                const uint32_t old = solver_->addNode();
                solver_->load(site_addr_[i], old);
                const uint32_t writeback = solver_->addNode();
                solver_->copyAdjust(old, writeback);
                solver_->copyAdjust(use(insn.src), writeback);
                solver_->store(site_addr_[i], writeback);
                def(insn.dst, old);
                break;
              }
              case Op::kCas: {
                const uint32_t old = solver_->addNode();
                solver_->load(site_addr_[i], old);
                solver_->store(site_addr_[i], use(insn.src));
                def(insn.dst, old);
                break;
              }
              case Op::kSpawn: {
                // The argument register is handed to the child thread.
                solver_->copy(use(insn.src),
                              solver_->contents(AndersenSolver::kObjTop));
                const uint32_t n = solver_->addNode();
                def(insn.dst, n); // a thread id: an integer
                break;
              }
              case Op::kMalloc: {
                const uint32_t n = solver_->addNode();
                solver_->seed(n, alloc_obj_.at(i));
                def(insn.dst, n);
                break;
              }
              case Op::kCondWait:
                // The mutex variable (address in src) is written too.
                extra_written_.push_back(use(insn.src));
                break;
              case Op::kSyscall:
                // rax <- imm: same typing as a mov-immediate.
                def(Reg::rax, literalNode(insn.imm));
                break;
              default:
                break;
            }

            if (insn.op == Op::kJmpInd || insn.op == Op::kCallInd)
                indirect_reg_.emplace(i, use(insn.src));

            // Safety net: any remaining killed register degrades to ⊤.
            uint16_t rest =
                static_cast<uint16_t>((*facts_)[i].kill & ~defed);
            while (rest) {
                const unsigned r =
                    static_cast<unsigned>(__builtin_ctz(rest));
                rest = static_cast<uint16_t>(rest & (rest - 1));
                const uint32_t n = solver_->addNode();
                solver_->seed(n, AndersenSolver::kObjTop);
                def(isa::gprFromIndex(r), n);
            }
        }
        block_out_[b] = cur;
    }
}

void
PointsTo::wireInNodes()
{
    const bool rsp_ok = escape_->rspIntegrity();
    // in_nodes_ may grow while wiring (ambiguous defs pull in
    // predecessor out-states); iterate until every node is wired.
    std::vector<uint64_t> pending;
    pending.reserve(in_nodes_.size());
    for (const auto &[key, node] : in_nodes_)
        pending.push_back(key);
    std::map<uint64_t, bool> wired;
    while (!pending.empty()) {
        const uint64_t key = pending.back();
        pending.pop_back();
        if (wired[key])
            continue;
        wired[key] = true;
        const uint32_t b = static_cast<uint32_t>(key >> 4);
        const unsigned r = static_cast<unsigned>(key & 15);
        const uint32_t node = in_nodes_.at(key);
        if (r == isa::gprIndex(Reg::rsp) && rsp_ok) {
            // rsp points into the own stack at every program point.
            solver_->seed(node, kObjStack);
            continue;
        }
        // Pull every predecessor's out-state into @p node (creating
        // and scheduling missing out-nodes).
        auto wirePreds = [&](uint32_t block, uint32_t node_,
                             unsigned reg) {
            for (const uint32_t pb : cfg_->block(block).preds) {
                uint32_t out = block_out_[pb][reg];
                if (out == kInvalidNode) {
                    out = inNode(pb, reg);
                    block_out_[pb][reg] = out;
                    pending.push_back(nodeKey(pb, reg));
                }
                solver_->copy(out, node_);
            }
        };
        const ReachingDef &rd = dataflow_->block(b).reach_in[r];
        switch (rd.kind) {
          case ReachingDef::kNone:
            // No def reaches: the register reads as its initial zero.
            break;
          case ReachingDef::kExternal:
            // The collapsed meet taints every path once one of them
            // passes an unenumerable entry, discarding the enumerable
            // defs on the others. So wire BOTH inflows: the boundary
            // pool for values that crossed a transfer boundary, and
            // every predecessor's out-state for values arriving along
            // ordinary edges (a pool-only wiring here let a register
            // that never crossed a boundary read as empty — caught by
            // the StaticLint points-to battery).
            solver_->copy(boundary_[r], node);
            wirePreds(b, node, r);
            break;
          case ReachingDef::kUnique: {
            const auto it = def_nodes_.find(nodeKey(rd.insn, r));
            if (it != def_nodes_.end())
                solver_->copy(it->second, node);
            else
                solver_->seed(node, AndersenSolver::kObjTop);
            break;
          }
          case ReachingDef::kAmbiguous:
            if (cfg_->block(b).preds.empty())
                solver_->seed(node, AndersenSolver::kObjTop);
            wirePreds(b, node, r);
            break;
        }
    }
}

void
PointsTo::classify()
{
    const asmkit::Program &p = cfg_->program();
    const AndersenSolver &s = *solver_;
    stats_.objects = static_cast<uint32_t>(objects_.size());
    stats_.alloc_sites = static_cast<uint32_t>(alloc_obj_.size());
    stats_.nodes = s.numNodes();
    stats_.constraints = s.numConstraints();
    stats_.iterations = s.iterations();
    stats_.cycles_collapsed = s.cyclesCollapsed();
    stats_.top_store = s.topStoreSeen();

    // A forged heap pointer costs nothing until some access may
    // actually dereference it — only then could an allocation be
    // reached without its address ever flowing there.
    for (uint32_t i = 0; i < p.size(); ++i) {
        if (site_addr_[i] != kInvalidNode &&
            s.pointsTo(site_addr_[i]).test(kObjHeapForge))
            stats_.no_heap_forgery = false;
    }
    for (const uint32_t n : extra_written_) {
        if (s.pointsTo(n).test(kObjHeapForge))
            stats_.no_heap_forgery = false;
    }
    stats_.heap_sound = escape_->sound() && stats_.no_heap_forgery;

    // --- escaped-object closure -------------------------------------
    // Roots: objects any thread can address without help — globals
    // (named or slop) and the unknowns. The collective stack is NOT a
    // root: under escape soundness no thread reads another's stack.
    std::vector<uint8_t> escaped(objects_.size(), 0);
    std::vector<uint32_t> work;
    auto mark = [&](uint32_t o) {
        if (!escaped[o]) {
            escaped[o] = 1;
            work.push_back(o);
        }
    };
    mark(AndersenSolver::kObjTop);
    mark(AndersenSolver::kObjTopCode);
    mark(kObjGlobalSlop);
    for (const auto &[base, obj] : global_obj_)
        mark(obj);
    while (!work.empty()) {
        const uint32_t o = work.back();
        work.pop_back();
        for (const uint32_t held :
             s.pointsTo(solver_->contents(o)).toVector())
            mark(held);
    }

    for (const auto &[insn, obj] : alloc_obj_) {
        const bool local = stats_.heap_sound && !escaped[obj];
        alloc_site_local_[insn] = local;
        if (local) {
            thread_local_allocs_.push_back(insn);
            ++stats_.thread_local_allocs;
        }
    }
    std::sort(thread_local_allocs_.begin(), thread_local_allocs_.end());

    // --- heap-local access sites ------------------------------------
    site_heap_local_.assign(p.size(), 0);
    for (uint32_t i = 0; i < p.size(); ++i) {
        if ((*facts_)[i].mem_ops == 0 ||
            escape_->site(i) != SiteClass::kMayShared ||
            site_addr_[i] == kInvalidNode) {
            continue;
        }
        const ObjSet &pts = s.pointsTo(site_addr_[i]);
        if (pts.empty())
            continue;
        bool all_local = true;
        for (const uint32_t o : pts.toVector()) {
            if (objects_[o].kind != AbstractObject::Kind::kAlloc ||
                !alloc_site_local_.at(objects_[o].insn)) {
                all_local = false;
                break;
            }
        }
        if (all_local) {
            site_heap_local_[i] = 1;
            ++stats_.heap_local_sites;
        }
    }

    // --- immutable globals ------------------------------------------
    if (!s.topStoreSeen()) {
        ObjSet written(static_cast<uint32_t>(objects_.size()));
        for (uint32_t i = 0; i < p.size(); ++i) {
            if (site_writes_[i] && site_addr_[i] != kInvalidNode)
                written.merge(s.pointsTo(site_addr_[i]));
        }
        for (const uint32_t n : extra_written_)
            written.merge(s.pointsTo(n));
        for (const auto &[base, obj] : global_obj_) {
            if (!written.test(obj) && objects_[obj].size > 0) {
                immutable_ranges_.emplace_back(
                    objects_[obj].addr,
                    objects_[obj].addr + objects_[obj].size);
                ++stats_.immutable_globals;
            }
        }
        std::sort(immutable_ranges_.begin(), immutable_ranges_.end());
    }

    // --- indirect-transfer resolution -------------------------------
    const size_t blunt = cfg_->addressTaken().size();
    for (const auto &[i, node] : indirect_reg_) {
        ++stats_.indirect_sites;
        stats_.fanout_blunt += blunt;
        const ObjSet &pts = s.pointsTo(node);
        std::vector<uint32_t> targets;
        bool resolved = !pts.empty() && !s.topStoreSeen();
        if (resolved) {
            for (const uint32_t o : pts.toVector()) {
                if (o == AndersenSolver::kObjTop ||
                    o == AndersenSolver::kObjTopCode) {
                    resolved = false;
                    break;
                }
                if (objects_[o].kind == AbstractObject::Kind::kCode)
                    targets.push_back(objects_[o].insn);
            }
        }
        if (resolved && targets.empty())
            resolved = false; // never trust an empty target set
        if (resolved) {
            std::sort(targets.begin(), targets.end());
            targets.erase(std::unique(targets.begin(), targets.end()),
                          targets.end());
            stats_.fanout_sharp += targets.size();
            ++stats_.resolved_indirect_sites;
            indirect_targets_.emplace(i, std::move(targets));
        } else {
            stats_.fanout_sharp += blunt;
        }
    }
}

bool
PointsTo::immutableCovers(uint64_t addr, uint64_t size) const
{
    if (immutable_ranges_.empty() || size == 0)
        return false;
    uint64_t cur = addr;
    const uint64_t end = addr + size;
    while (cur < end) {
        auto it = std::upper_bound(
            immutable_ranges_.begin(), immutable_ranges_.end(),
            std::make_pair(cur, UINT64_MAX));
        if (it == immutable_ranges_.begin())
            return false;
        --it;
        if (cur >= it->second)
            return false;
        cur = it->second;
    }
    return true;
}

uint64_t
PointsTo::constantAt(uint64_t addr, uint8_t width) const
{
    const asmkit::Program &p = cfg_->program();
    uint64_t value = 0;
    for (unsigned b = 0; b < width; ++b) {
        const uint64_t byte_addr = addr + b;
        uint8_t byte = 0;
        if (const auto name = p.symbolCovering(byte_addr)) {
            const asmkit::DataSymbol &sym = p.symbols().at(*name);
            const uint64_t off = byte_addr - sym.addr;
            if (off < sym.init.size())
                byte = sym.init[off];
        }
        value |= static_cast<uint64_t>(byte) << (8 * b);
    }
    return value;
}

std::vector<uint32_t>
PointsTo::siteObjects(uint32_t insn) const
{
    if (insn >= site_addr_.size() || site_addr_[insn] == kInvalidNode)
        return {};
    return solver_->pointsTo(site_addr_[insn]).toVector();
}

// ---------------------------------------------------------------------
// HeapEscapeAnalysis
// ---------------------------------------------------------------------

HeapEscapeAnalysis::HeapEscapeAnalysis(const EscapeAnalysis &escape,
                                       const PointsTo &pointsto)
    : sites_(escape.sites())
{
    for (uint32_t i = 0; i < sites_.size(); ++i) {
        if (sites_[i] == SiteClass::kMayShared &&
            pointsto.siteHeapLocal(i)) {
            sites_[i] = SiteClass::kHeapLocal;
            ++num_heap_local_;
        }
    }
}

} // namespace prorace::analysis

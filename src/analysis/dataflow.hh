/**
 * @file
 * Classic register dataflow over the recovered CFG: per-block kill/use
 * masks, backward liveness, and a collapsed reaching-definitions pass.
 *
 * All three are register-mask lattices (16 GPRs), so block states are
 * plain uint16_t and the fixpoints are worklist loops over bit
 * operations. Conservatism at unknown boundaries:
 *
 *  - liveness treats a block with an unenumerable successor set
 *    (indirect transfer, return, halt-less end) as having everything
 *    live out;
 *  - reaching definitions treats an `unknown_entry` block (thread
 *    entry, indirect target, return site) as receiving an external
 *    definition of every register.
 */

#ifndef PRORACE_ANALYSIS_DATAFLOW_HH
#define PRORACE_ANALYSIS_DATAFLOW_HH

#include <cstdint>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/insn_facts.hh"

namespace prorace::analysis {

/**
 * Reaching definition of one register at a block entry, collapsed to
 * the decision the consumers need: no def reaches (dead register),
 * exactly one program def reaches (its instruction index), several
 * defs reach (ambiguous), or an unenumerable external def reaches
 * (thread entry / callee clobber / indirect entry).
 */
struct ReachingDef {
    enum Kind : uint8_t {
        kNone = 0,   ///< no definition reaches
        kUnique,     ///< exactly one: `insn` holds its index
        kAmbiguous,  ///< two or more distinct definitions
        kExternal,   ///< unknown boundary definition
    };
    Kind kind = kNone;
    uint32_t insn = 0;

    bool operator==(const ReachingDef &) const = default;
};

/** Per-block dataflow summaries and fixpoint results. */
struct BlockDataflow {
    uint16_t kill = 0;      ///< GPRs the block may write
    uint16_t use = 0;       ///< GPRs read before any write in the block
    uint32_t mem_ops = 0;   ///< PEBS-countable events in the block
    uint16_t live_in = 0;   ///< GPRs live at block entry
    uint16_t live_out = 0;  ///< GPRs live at block exit
    /** Entry reaching definition per GPR. */
    ReachingDef reach_in[isa::kNumGprs];
};

/** Dataflow facts for a whole program. */
class Dataflow
{
  public:
    /** @p facts must be the per-instruction table of cfg's program. */
    Dataflow(const Cfg &cfg, const std::vector<InsnFacts> &facts);

    const BlockDataflow &block(uint32_t id) const { return blocks_[id]; }
    const std::vector<BlockDataflow> &blocks() const { return blocks_; }

    /** May-write register mask of one whole block. */
    uint16_t killMask(uint32_t block) const { return blocks_[block].kill; }

    uint32_t livenessIterations() const { return liveness_iterations_; }
    uint32_t reachingIterations() const { return reaching_iterations_; }

  private:
    void summarizeBlocks(const Cfg &cfg,
                         const std::vector<InsnFacts> &facts);
    void solveLiveness(const Cfg &cfg);
    void solveReaching(const Cfg &cfg,
                       const std::vector<InsnFacts> &facts);

    std::vector<BlockDataflow> blocks_;
    uint32_t liveness_iterations_ = 0;
    uint32_t reaching_iterations_ = 0;
};

} // namespace prorace::analysis

#endif // PRORACE_ANALYSIS_DATAFLOW_HH

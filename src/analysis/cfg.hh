/**
 * @file
 * Control-flow graph recovery over an assembled program.
 *
 * Nodes are the program's own basic blocks (the block index the
 * replayer already uses), so every consumer agrees on block boundaries.
 * Edges are recovered conservatively from the binary alone:
 *
 *  - direct jumps/branches/calls contribute exact edges;
 *  - indirect jumps and calls fan out to the *address-taken set* — every
 *    instruction index that appears as a code-pointer immediate
 *    (movLabel), a declared function entry, or a spawn target;
 *  - a call also has a fall-through edge to its return site, but the
 *    return site is flagged `unknown_entry` because the callee may
 *    clobber any register before returning (dataflow must not
 *    propagate state through the callee along that edge);
 *  - spawn targets are thread entries: control enters them with a
 *    fresh register file, so they get no intra-thread edge and are
 *    flagged `unknown_entry` too.
 *
 * Reachability is computed from the program entry (instruction 0),
 * treating any reachable indirect transfer as able to reach every
 * address-taken block.
 */

#ifndef PRORACE_ANALYSIS_CFG_HH
#define PRORACE_ANALYSIS_CFG_HH

#include <cstdint>
#include <map>
#include <vector>

#include "asmkit/program.hh"

namespace prorace::analysis {

/** Per-block CFG node. */
struct CfgBlock {
    std::vector<uint32_t> succs; ///< successor block ids (deduped)
    std::vector<uint32_t> preds; ///< predecessor block ids (deduped)
    /**
     * True when control may enter this block from a source the edge
     * list cannot enumerate exactly: the program entry, a spawn/thread
     * entry, an indirect-branch target, or a call's return site.
     * Forward dataflow must start such blocks from its conservative
     * boundary value instead of the predecessor meet.
     */
    bool unknown_entry = false;
    bool is_thread_entry = false;   ///< program entry or spawn target
    bool is_address_taken = false;  ///< possible indirect target
    bool is_return_site = false;    ///< block after a call
    bool reachable = false;
};

/** The recovered control-flow graph. */
class Cfg
{
  public:
    explicit Cfg(const asmkit::Program &program);

    /**
     * Sharpened construction: indirect jumps/calls whose instruction
     * index appears in @p resolved_indirect fan out to exactly the
     * given (sorted, deduped) target list instead of the global
     * address-taken set; unresolved sites keep the blunt fan-out.
     * Resolved target blocks are still flagged address-taken /
     * unknown-entry, but blocks only the *blunt* set named no longer
     * are — shrinking edges and growing the dead-block set.
     */
    Cfg(const asmkit::Program &program,
        const std::map<uint32_t, std::vector<uint32_t>> &resolved_indirect);

    const asmkit::Program &program() const { return *program_; }
    uint32_t numBlocks() const
    {
        return static_cast<uint32_t>(blocks_.size());
    }
    const CfgBlock &block(uint32_t id) const { return blocks_[id]; }
    const std::vector<CfgBlock> &blocks() const { return blocks_; }

    /**
     * Instruction indices that may be indirect-transfer targets. Sorted
     * and deduplicated; a superset of the true target set (any code
     * immediate counts, whether or not it ever reaches a jmpind).
     */
    const std::vector<uint32_t> &addressTaken() const
    {
        return address_taken_;
    }

    /** True when the program contains an indirect jump or call. */
    bool hasIndirectTransfers() const { return has_indirect_; }

    /** True when built with a resolved-indirect-target map. */
    bool sharpened() const { return sharpened_; }

    uint32_t numEdges() const { return num_edges_; }
    uint32_t numReachable() const { return num_reachable_; }

  private:
    void build();
    void collectAddressTaken();
    void buildEdges();
    void computeReachability();
    /** Fan-out of the indirect transfer at @p insn. */
    const std::vector<uint32_t> &indirectFanOut(uint32_t insn) const;

    const asmkit::Program *program_;
    std::vector<CfgBlock> blocks_;
    std::vector<uint32_t> address_taken_;
    std::map<uint32_t, std::vector<uint32_t>> resolved_indirect_;
    bool sharpened_ = false;
    bool has_indirect_ = false;
    uint32_t num_edges_ = 0;
    uint32_t num_reachable_ = 0;
};

} // namespace prorace::analysis

#endif // PRORACE_ANALYSIS_CFG_HH

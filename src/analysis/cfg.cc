#include "analysis/cfg.hh"

#include <algorithm>

#include "support/log.hh"

namespace prorace::analysis {

using isa::Insn;
using isa::Op;

namespace {

void
addEdge(std::vector<CfgBlock> &blocks, uint32_t from, uint32_t to)
{
    auto &succs = blocks[from].succs;
    if (std::find(succs.begin(), succs.end(), to) != succs.end())
        return;
    succs.push_back(to);
    blocks[to].preds.push_back(from);
}

} // namespace

Cfg::Cfg(const asmkit::Program &program)
    : program_(&program), blocks_(program.numBlocks())
{
    build();
}

Cfg::Cfg(const asmkit::Program &program,
         const std::map<uint32_t, std::vector<uint32_t>> &resolved_indirect)
    : program_(&program), blocks_(program.numBlocks()),
      resolved_indirect_(resolved_indirect), sharpened_(true)
{
    for (const auto &[insn, targets] : resolved_indirect_) {
        PRORACE_ASSERT(
            std::is_sorted(targets.begin(), targets.end()) &&
                std::adjacent_find(targets.begin(), targets.end()) ==
                    targets.end(),
            "resolved indirect targets must be sorted and unique");
    }
    build();
}

void
Cfg::build()
{
    collectAddressTaken();
    buildEdges();
    computeReachability();
    // Ordering contract: consumers binary-search and set-compare
    // against addressTaken(), so it must be sorted and duplicate-free.
    PRORACE_ASSERT(
        std::is_sorted(address_taken_.begin(), address_taken_.end()) &&
            std::adjacent_find(address_taken_.begin(),
                               address_taken_.end()) ==
                address_taken_.end(),
        "addressTaken() must be sorted and unique");
}

const std::vector<uint32_t> &
Cfg::indirectFanOut(uint32_t insn) const
{
    const auto it = resolved_indirect_.find(insn);
    return it != resolved_indirect_.end() ? it->second : address_taken_;
}

void
Cfg::collectAddressTaken()
{
    const asmkit::Program &p = *program_;
    // Any immediate that lands inside the code region may be a code
    // pointer (movLabel materializes targets exactly this way); add
    // declared function entries and spawn targets so indirect calls
    // stay covered even without an explicit code immediate.
    for (const Insn &insn : p.code()) {
        if (insn.op == Op::kMovRI && insn.imm >= 0 &&
            static_cast<uint64_t>(insn.imm) < p.size()) {
            address_taken_.push_back(static_cast<uint32_t>(insn.imm));
        }
        if (insn.op == Op::kSpawn)
            address_taken_.push_back(insn.target);
    }
    for (const asmkit::Function &fn : p.functions()) {
        if (fn.begin < p.size())
            address_taken_.push_back(fn.begin);
    }
    std::sort(address_taken_.begin(), address_taken_.end());
    address_taken_.erase(
        std::unique(address_taken_.begin(), address_taken_.end()),
        address_taken_.end());
    if (!sharpened_) {
        for (const uint32_t target : address_taken_)
            blocks_[p.blockOf(target)].is_address_taken = true;
        return;
    }
    // Sharpened: only blocks an actual indirect transfer may reach are
    // unenumerable entries; blocks the blunt superset alone names keep
    // their exact edge list.
    for (uint32_t i = 0; i < p.size(); ++i) {
        const Op op = p.insnAt(i).op;
        if (op != Op::kJmpInd && op != Op::kCallInd)
            continue;
        for (const uint32_t target : indirectFanOut(i))
            blocks_[p.blockOf(target)].is_address_taken = true;
    }
}

void
Cfg::buildEdges()
{
    const asmkit::Program &p = *program_;
    if (p.size() == 0)
        return;

    blocks_[p.blockOf(0)].is_thread_entry = true;

    for (uint32_t b = 0; b < p.numBlocks(); ++b) {
        const uint32_t last = p.blockEnd(b) - 1;
        const Insn &insn = p.insnAt(last);
        const bool has_next = last + 1 < p.size();
        const uint32_t next = has_next ? p.blockOf(last + 1) : 0;

        switch (insn.op) {
          case Op::kJmp:
            addEdge(blocks_, b, p.blockOf(insn.target));
            break;
          case Op::kJcc:
            addEdge(blocks_, b, p.blockOf(insn.target));
            if (has_next)
                addEdge(blocks_, b, next);
            break;
          case Op::kJmpInd:
            has_indirect_ = true;
            for (const uint32_t t : indirectFanOut(last))
                addEdge(blocks_, b, p.blockOf(t));
            break;
          case Op::kCall:
            addEdge(blocks_, b, p.blockOf(insn.target));
            if (has_next) {
                // Fall-through to the return site: the callee returns
                // here, but with its clobbers applied.
                addEdge(blocks_, b, next);
                blocks_[next].is_return_site = true;
            }
            break;
          case Op::kCallInd:
            has_indirect_ = true;
            for (const uint32_t t : indirectFanOut(last))
                addEdge(blocks_, b, p.blockOf(t));
            if (has_next) {
                addEdge(blocks_, b, next);
                blocks_[next].is_return_site = true;
            }
            break;
          case Op::kRet:
            // Returns are modeled by the caller's fall-through edge;
            // the ret block itself has no successor.
            break;
          case Op::kHalt:
            break;
          case Op::kSpawn:
            // The child starts at insn.target with a fresh register
            // file — a thread entry, not an intra-thread edge.
            blocks_[p.blockOf(insn.target)].is_thread_entry = true;
            if (has_next)
                addEdge(blocks_, b, next);
            break;
          default:
            // Non-transfer block ends (sync ops, syscalls, or a block
            // split at a branch target) fall through — unless the
            // program simply ends here without a terminator.
            if (has_next)
                addEdge(blocks_, b, next);
            break;
        }
    }

    for (uint32_t b = 0; b < numBlocks(); ++b) {
        CfgBlock &blk = blocks_[b];
        blk.unknown_entry = blk.is_thread_entry || blk.is_address_taken ||
            blk.is_return_site;
        num_edges_ += static_cast<uint32_t>(blk.succs.size());
    }
}

void
Cfg::computeReachability()
{
    const asmkit::Program &p = *program_;
    if (p.size() == 0)
        return;
    std::vector<uint32_t> work;
    auto visit = [&](uint32_t b) {
        if (!blocks_[b].reachable) {
            blocks_[b].reachable = true;
            work.push_back(b);
        }
    };
    visit(p.blockOf(0));
    while (!work.empty()) {
        const uint32_t b = work.back();
        work.pop_back();
        for (const uint32_t s : blocks_[b].succs)
            visit(s);
        const uint32_t last_index = p.blockEnd(b) - 1;
        const Insn &last = p.insnAt(last_index);
        if (last.op == Op::kSpawn)
            visit(p.blockOf(last.target));
        // A reachable indirect transfer may reach every block in its
        // fan-out (the edges already exist; this only matters when the
        // target set grows through blocks found later). visit() is
        // idempotent, so re-walking a site's fan-out is harmless.
        if (last.op == Op::kJmpInd || last.op == Op::kCallInd) {
            for (const uint32_t t : indirectFanOut(last_index))
                visit(p.blockOf(t));
        }
    }
    for (const CfgBlock &blk : blocks_)
        num_reachable_ += blk.reachable ? 1 : 0;
}

} // namespace prorace::analysis

#include "core/pipeline.hh"

#include "core/parallel_offline.hh"

namespace prorace::core {

PipelineConfig
proRaceConfig(uint64_t period, uint64_t seed, const pmu::PtFilter &filter)
{
    PipelineConfig cfg;
    cfg.session.machine.seed = seed;
    cfg.session.run_baseline = false;
    cfg.session.tracing.pebs_period = period;
    cfg.session.tracing.driver = driver::DriverKind::kProRace;
    cfg.session.tracing.seed = seed ^ 0x517cc1b727220a95ull;
    cfg.session.tracing.pt.filter = filter;
    cfg.offline.pt_filter = filter;
    cfg.offline.replay.mode = replay::ReplayMode::kForwardBackward;
    return cfg;
}

PipelineResult
runPipeline(const asmkit::Program &program, const Session::Setup &setup,
            const PipelineConfig &config)
{
    PipelineResult result;
    result.online = Session::run(program, setup, config.session);
    // ParallelOfflineAnalyzer delegates to the serial path when
    // num_threads == 0, so this is the single dispatch point.
    ParallelOfflineAnalyzer analyzer(program, config.offline);
    result.offline = analyzer.analyze(result.online.trace);
    return result;
}

} // namespace prorace::core

/**
 * @file
 * Offline phase entry point: PT decode, trace alignment, memory-trace
 * reconstruction, and FastTrack race detection, with the paper's
 * racy-emulated-location regeneration loop (§5.1).
 */

#ifndef PRORACE_CORE_OFFLINE_HH
#define PRORACE_CORE_OFFLINE_HH

#include <cstdint>

#include "asmkit/program.hh"
#include "detect/fasttrack.hh"
#include "detect/report.hh"
#include "pmu/pt.hh"
#include "pmu/pt_decode.hh"
#include "replay/align.hh"
#include "replay/replayer.hh"
#include "trace/records.hh"

namespace prorace::core {

/** Offline-phase configuration. */
struct OfflineOptions {
    replay::ReplayConfig replay;
    /** Must match the PT filter the online phase traced with. */
    pmu::PtFilter pt_filter = pmu::PtFilter::all();
    /** Regeneration rounds when races land on emulated locations. */
    int max_regeneration_rounds = 2;
};

/** Everything the offline phase produces. */
struct OfflineResult {
    detect::RaceReport report;
    replay::ReplayStats replay_stats;
    pmu::PtDecodeStats decode_stats;
    replay::AlignStats align_stats;
    detect::FastTrackStats detect_stats;
    uint64_t extended_trace_events = 0;
    int regeneration_rounds = 0;

    // Wall-clock cost split of the offline pipeline (paper §7.6).
    double decode_seconds = 0;
    double reconstruct_seconds = 0; ///< alignment + replay
    double detect_seconds = 0;

    double
    totalSeconds() const
    {
        return decode_seconds + reconstruct_seconds + detect_seconds;
    }
};

/**
 * The offline analyzer: feed it the program binary and a run trace; it
 * returns the race report and pipeline statistics.
 */
class OfflineAnalyzer
{
  public:
    OfflineAnalyzer(const asmkit::Program &program,
                    const OfflineOptions &options);

    /** Run the full offline pipeline over @p run. */
    OfflineResult analyze(const trace::RunTrace &run);

  private:
    /** One reconstruction + detection pass with the given blacklist. */
    void analyzeOnce(const trace::RunTrace &run,
                     const std::map<uint32_t, pmu::ThreadPath> &paths,
                     const std::map<uint32_t,
                                    replay::ThreadAlignment> &alignments,
                     const replay::ReplayConfig &replay_config,
                     OfflineResult &result,
                     std::unordered_set<uint64_t> &consumed);

    const asmkit::Program &program_;
    OfflineOptions options_;
};

} // namespace prorace::core

#endif // PRORACE_CORE_OFFLINE_HH

/**
 * @file
 * Offline phase entry point: PT decode, trace alignment, memory-trace
 * reconstruction, and FastTrack race detection, with the paper's
 * racy-emulated-location regeneration loop (§5.1).
 */

#ifndef PRORACE_CORE_OFFLINE_HH
#define PRORACE_CORE_OFFLINE_HH

#include <cstdint>
#include <functional>
#include <memory>

#include "analysis/analysis.hh"
#include "asmkit/program.hh"
#include "detect/fasttrack.hh"
#include "detect/incremental.hh"
#include "detect/report.hh"
#include "pmu/pt.hh"
#include "pmu/pt_decode.hh"
#include "replay/align.hh"
#include "replay/replayer.hh"
#include "support/expected.hh"
#include "trace/records.hh"
#include "trace/trace_error.hh"

namespace prorace::core {

/**
 * Checkpoint/resume and supervision hooks into the streaming detection
 * stage (detect::IncrementalFastTrack). The analysis service uses these
 * for crash recovery: at every epoch-GC batch boundary it can serialize
 * the detector plus the feed cursor, and a later analysis of the same
 * byte stream warm-starts from that image instead of re-running the
 * detector from event zero. Hooks fire only on the incremental path
 * (OfflineOptions::incremental.enabled); checkpointing and restore
 * apply to regeneration round 0 only — later rounds re-run against a
 * different blacklist, so a round-0 image would be stale for them.
 */
struct CheckpointHooks {
    /**
     * Fired at every batch boundary of every round, and once after the
     * final event. May throw to abort the analysis — this is how the
     * service enforces per-session deadlines cooperatively; the
     * exception propagates out of analyze().
     */
    std::function<void()> tick;

    /**
     * Fired (round 0 only) at every batch boundary and once at
     * end-of-feed, after the boundary's retirement/GC ran:
     * @p feed_cursor events of the @p feed_total -event merged feed are
     * fully dispatched and @p detector holds exactly the state an
     * uninterrupted run has at this point. The hook may serialize it.
     */
    std::function<void(uint64_t feed_cursor, uint64_t feed_total,
                       detect::IncrementalFastTrack &detector)>
        on_boundary;

    /**
     * When set, round 0 restores this serialized detector image and
     * resumes dispatch at feed event @p resume_events instead of 0.
     * Applied only when @p resume_feed_total matches the rebuilt feed
     * size exactly and the image deserializes cleanly; otherwise the
     * analysis cold-starts (correct, just slower).
     */
    const std::vector<uint8_t> *restore = nullptr;
    uint64_t resume_events = 0;
    uint64_t resume_feed_total = 0;

    /** Out-param: set true when the restore was actually applied. */
    bool *resumed = nullptr;
};

/** Offline-phase configuration. */
struct OfflineOptions {
    replay::ReplayConfig replay;
    /** Must match the PT filter the online phase traced with. */
    pmu::PtFilter pt_filter = pmu::PtFilter::all();
    /** Regeneration rounds when races land on emulated locations. */
    int max_regeneration_rounds = 2;
    /**
     * Analysis worker threads for the ParallelOfflineAnalyzer:
     * 0 = serial (the classic single-threaded pipeline), N > 0 = shard
     * PT decode and window replay across N executor workers. The
     * result is bit-identical either way.
     */
    unsigned num_threads = 0;
    /**
     * Drop extended-trace events whose access site the static escape
     * analysis proved definitely thread-local before they reach the
     * FastTrack detector. Per-thread stacks are disjoint and FastTrack
     * accesses never advance thread clocks, so the race report is
     * byte-identical with the prefilter on or off; only detection cost
     * changes. Disabled automatically (at zero cost) whenever the
     * analysis cannot certify its stack invariants for the program.
     */
    bool static_prefilter = true;
    /**
     * Run the Andersen points-to layer (heap-locality pruning, CFG
     * sharpening, replay constant recovery). The blunt analyses and the
     * race report are byte-identical with the layer on or off; only
     * pruning/recovery opportunity changes. `--no-pointsto` in the CLI
     * maps here.
     */
    bool pointsto = true;
    /**
     * Fold consecutive identical accesses in the detector feed — runs
     * the v5 trace compressor stores as strided blocks — into a single
     * dispatched iteration plus one absorption check, instead of
     * re-running the FastTrack fast path per iteration. Folding only
     * happens when the detector proves the repeats are no-ops
     * (FastTrack::foldRepeats), so the race report is byte-identical
     * with the summary on or off; only detection cost changes.
     * `--no-run-summary` in the CLI maps here.
     */
    bool run_summary = true;
    /**
     * Streaming detection (detect::IncrementalFastTrack): process the
     * merged detector feed in batches with epoch-GC of quiescent shadow
     * state between batches, bounding detector memory on long traces.
     * The race report is byte-identical to one-shot detection; only
     * resident state and statistics differ. The analysis service runs
     * every session this way.
     */
    detect::IncrementalOptions incremental;
    /** Detector checkpoint/resume + deadline hooks (service tier). */
    CheckpointHooks checkpoint;
};

/**
 * Counters of the static access prefilter, accumulated over every
 * detection pass (regeneration rounds included) of one analyze() call.
 */
struct PrefilterStats {
    bool enabled = false;        ///< option on and analysis available
    bool analysis_sound = false; ///< escape-analysis invariants held
    bool heap_sound = false;     ///< points-to heap locality trustworthy
    uint64_t sites_total = 0;        ///< static memory-access sites
    uint64_t sites_thread_local = 0; ///< sites proved thread-local
    uint64_t sites_heap_local = 0;   ///< sites confined to private heap
    uint64_t events_seen = 0;   ///< extended-trace events inspected
    uint64_t pruned_stack_implicit = 0; ///< push/pop/call/ret events
    uint64_t pruned_stack_direct = 0;   ///< rsp/rbp-relative accesses
    uint64_t pruned_heap = 0;           ///< heap-local interval events
    uint64_t heap_intervals = 0; ///< dynamic [malloc,free) intervals seen
    uint64_t heap_defeated = 0;  ///< intervals a cross-thread access hit
    // Points-to solver size (per-program facts; max-merged).
    uint64_t pointsto_objects = 0;
    uint64_t pointsto_constraints = 0;
    uint64_t pointsto_iterations = 0;

    uint64_t
    pruned() const
    {
        return pruned_stack_implicit + pruned_stack_direct + pruned_heap;
    }

    /** Rollup across analyzer instances (service-wide --stats). */
    void
    merge(const PrefilterStats &other)
    {
        enabled = enabled || other.enabled;
        analysis_sound = analysis_sound || other.analysis_sound;
        heap_sound = heap_sound || other.heap_sound;
        // Site counts are per-program facts, identical across instances
        // analyzing the same binary: keep the larger, don't sum.
        const auto keep_max = [](uint64_t &a, uint64_t b) {
            a = a > b ? a : b;
        };
        keep_max(sites_total, other.sites_total);
        keep_max(sites_thread_local, other.sites_thread_local);
        keep_max(sites_heap_local, other.sites_heap_local);
        keep_max(pointsto_objects, other.pointsto_objects);
        keep_max(pointsto_constraints, other.pointsto_constraints);
        keep_max(pointsto_iterations, other.pointsto_iterations);
        events_seen += other.events_seen;
        pruned_stack_implicit += other.pruned_stack_implicit;
        pruned_stack_direct += other.pruned_stack_direct;
        pruned_heap += other.pruned_heap;
        heap_intervals += other.heap_intervals;
        heap_defeated += other.heap_defeated;
    }
};

/**
 * Loss accounting of the parallel analyzer's window quarantine: a
 * replay window whose task threw is retried once on the commit thread
 * and then, if it fails again, dropped with its reconstructed accesses
 * (its samples still reach detection through the unmatched-sample
 * fallback).
 */
struct QuarantineStats {
    uint64_t window_retries = 0;      ///< failed tasks retried inline
    uint64_t windows_quarantined = 0; ///< windows dropped after retry

    void
    merge(const QuarantineStats &other)
    {
        window_retries += other.window_retries;
        windows_quarantined += other.windows_quarantined;
    }
};

/** Everything the offline phase produces. */
struct OfflineResult {
    detect::RaceReport report;
    replay::ReplayStats replay_stats;
    pmu::PtDecodeStats decode_stats;
    replay::AlignStats align_stats;
    detect::FastTrackStats detect_stats;
    /** Streaming-detector counters (OfflineOptions::incremental). */
    detect::IncrementalStats incremental;
    /** What trace ingestion discarded (analyzeFile() path only). */
    trace::SegmentLoss ingest_loss;
    /** v5 columnar compression counters of the ingested trace
     *  (analyzeFile() path only; zero for in-memory analysis). */
    trace::CompressionStats compression;
    QuarantineStats quarantine;
    PrefilterStats prefilter;
    uint64_t extended_trace_events = 0; ///< counted before the prefilter
    int regeneration_rounds = 0;

    // Wall-clock cost split of the offline pipeline (paper §7.6).
    double decode_seconds = 0;
    double reconstruct_seconds = 0; ///< alignment + replay
    double detect_seconds = 0;

    double
    totalSeconds() const
    {
        return decode_seconds + reconstruct_seconds + detect_seconds;
    }
};

/**
 * The offline analyzer: feed it the program binary and a run trace; it
 * returns the race report and pipeline statistics.
 */
class OfflineAnalyzer
{
  public:
    OfflineAnalyzer(const asmkit::Program &program,
                    const OfflineOptions &options);

    /** Run the full offline pipeline over @p run. */
    OfflineResult analyze(const trace::RunTrace &run);

    /**
     * Ingest @p path fault-tolerantly and analyze what survives.
     * Segment damage degrades the result (recorded in
     * OfflineResult::ingest_loss); only an uninterpretable file —
     * unreadable, foreign, wrong version, meta destroyed — returns a
     * TraceError.
     */
    Result<OfflineResult, trace::TraceError>
    analyzeFile(const std::string &path);

  private:
    /** One reconstruction + detection pass with the given blacklist. */
    void analyzeOnce(const trace::RunTrace &run,
                     const std::map<uint32_t, pmu::ThreadPath> &paths,
                     const std::map<uint32_t,
                                    replay::ThreadAlignment> &alignments,
                     const replay::ReplayConfig &replay_config,
                     OfflineResult &result,
                     std::unordered_set<uint64_t> &consumed,
                     bool first_round);

    const asmkit::Program &program_;
    OfflineOptions options_;
    /** Static facts shared by the aligner, replayer and prefilter. */
    std::unique_ptr<analysis::ProgramAnalysis> analysis_;
};

namespace detail {

/**
 * The detection stage shared by the serial and parallel analyzers:
 * merge the reconstructed accesses and the sync trace into one
 * TSC-ordered feed (with the release < access < acquire tie-break at
 * equal timestamps) and run FastTrack over it. With @p run_summary set,
 * consecutive identical accesses are folded through
 * FastTrack::foldRepeats (per-iteration fallback when the detector
 * cannot prove absorption); the report is byte-identical either way.
 */
void detectRaces(const trace::RunTrace &run,
                 const std::map<uint32_t,
                                replay::ThreadAlignment> &alignments,
                 const std::vector<replay::ReconstructedAccess> &accesses,
                 detect::RaceReport &report,
                 detect::FastTrackStats &stats, bool run_summary = true);

/**
 * The streaming variant of detectRaces: the identical merged feed is
 * dispatched into an IncrementalFastTrack in batches of
 * options.batch_events events, with a batch boundary (thread
 * retirement + epoch GC) between batches. The caller pre-seeds
 * @p detector with requireThread() for every expected thread; the race
 * report is byte-identical to the one-shot path.
 */
void detectRacesIncremental(
    const trace::RunTrace &run,
    const std::map<uint32_t, replay::ThreadAlignment> &alignments,
    const std::vector<replay::ReconstructedAccess> &accesses,
    detect::IncrementalFastTrack &detector, bool run_summary = true,
    const CheckpointHooks *hooks = nullptr,
    bool allow_checkpoint = true);

/**
 * Paper §5.1: races on locations whose emulated values the replay
 * consumed are suspect; returns the blacklist additions for the next
 * regeneration round (empty = converged).
 */
std::vector<std::pair<uint64_t, uint64_t>>
regenerationBlacklist(
    const detect::RaceReport &report,
    const std::unordered_set<uint64_t> &consumed,
    const std::vector<std::pair<uint64_t, uint64_t>> &existing);

/**
 * The static access prefilter shared by the serial and parallel
 * analyzers: removes extended-trace events at definitely-thread-local
 * sites and accounts for what was dropped. A no-op (beyond counting
 * events_seen) when @p enabled is false or @p analysis is null.
 *
 * With @p run supplied and the points-to layer available, also prunes
 * heap-local accesses: an access at a kHeapLocal site, made by the
 * thread that allocated the block, strictly inside the block's dynamic
 * [malloc, free) lifetime, where no *other* thread touched the block's
 * shadow granules during that lifetime. The cross-thread defeat scan
 * makes the pruning report-preserving independent of the static claim:
 * FastTrack never reports same-thread races, and allocate()/
 * deallocate() erase the granules at both interval ends, so the
 * removed events can neither produce nor mask any race.
 */
void applyStaticPrefilter(
    std::vector<replay::ReconstructedAccess> &accesses,
    const analysis::ProgramAnalysis *analysis, bool enabled,
    PrefilterStats &stats, const trace::RunTrace *run = nullptr);

} // namespace detail

} // namespace prorace::core

#endif // PRORACE_CORE_OFFLINE_HH

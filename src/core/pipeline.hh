/**
 * @file
 * One-call end-to-end pipeline: online tracing followed by offline
 * analysis. This is the API a deployment would script against.
 */

#ifndef PRORACE_CORE_PIPELINE_HH
#define PRORACE_CORE_PIPELINE_HH

#include "core/offline.hh"
#include "core/session.hh"

namespace prorace::core {

/** Full-pipeline configuration. */
struct PipelineConfig {
    SessionOptions session;
    OfflineOptions offline;
};

/** Full-pipeline result. */
struct PipelineResult {
    RunArtifacts online;
    OfflineResult offline;
};

/**
 * Default ProRace configuration: the paper's driver, PT enabled, full
 * forward+backward replay.
 *
 * @param period       PEBS sampling period
 * @param seed         machine + tracing randomness seed
 * @param pt_filter    code regions to trace (defaults to everything)
 */
PipelineConfig proRaceConfig(uint64_t period, uint64_t seed,
                             const pmu::PtFilter &pt_filter =
                                 pmu::PtFilter::all());

/** Trace and analyze in one call. */
PipelineResult runPipeline(const asmkit::Program &program,
                           const Session::Setup &setup,
                           const PipelineConfig &config);

} // namespace prorace::core

#endif // PRORACE_CORE_PIPELINE_HH

/**
 * @file
 * Online phase entry point: run a program under the tracing stack and
 * produce the run trace plus overhead measurements.
 */

#ifndef PRORACE_CORE_SESSION_HH
#define PRORACE_CORE_SESSION_HH

#include <functional>

#include "asmkit/program.hh"
#include "driver/session.hh"
#include "trace/records.hh"
#include "vm/machine.hh"

namespace prorace::core {

/** Everything the online phase produces. */
struct RunArtifacts {
    trace::RunTrace trace;          ///< what reaches the analysis machines
    driver::TracingStats stats;     ///< online counters
    vm::RunStatus status = vm::RunStatus::kFinished;
    uint64_t traced_cycles = 0;     ///< wall time with tracing
    uint64_t baseline_cycles = 0;   ///< wall time without tracing (0 if not run)
    uint64_t total_insns = 0;
    uint64_t total_mem_ops = 0;

    /** Overhead ratio: traced/baseline - 1 (requires a baseline run). */
    double
    overhead() const
    {
        if (baseline_cycles == 0)
            return 0;
        return static_cast<double>(traced_cycles) /
            static_cast<double>(baseline_cycles) - 1.0;
    }

    /** Trace generation rate in MB per second of traced execution. */
    double
    traceMBPerSecond() const
    {
        if (traced_cycles == 0)
            return 0;
        const double seconds = static_cast<double>(traced_cycles) /
            driver::kCyclesPerSecond;
        return static_cast<double>(trace.totalBytes()) / 1.0e6 / seconds;
    }
};

/** Options for one online run. */
struct SessionOptions {
    vm::MachineConfig machine;
    driver::TraceConfig tracing;
    bool run_baseline = true; ///< also run untraced for overhead numbers
};

/**
 * The online phase: execute the program (twice when a baseline is
 * requested — once untraced, once traced) and assemble artifacts.
 */
class Session
{
  public:
    /** Creates the initial threads of a run (the "command line"). */
    using Setup = std::function<void(vm::Machine &)>;

    /**
     * Run @p program with threads created by @p setup under @p options.
     */
    static RunArtifacts run(const asmkit::Program &program,
                            const Setup &setup,
                            const SessionOptions &options);
};

} // namespace prorace::core

#endif // PRORACE_CORE_SESSION_HH

#include "core/offline.hh"

#include <algorithm>
#include <unordered_map>

#include "support/log.hh"
#include "support/timer.hh"
#include "trace/trace_file.hh"

namespace prorace::core {

using detect::AccessOrigin;
using vm::SyncKind;

namespace {

/** One entry of the merged detector feed. */
struct FeedEvent {
    uint64_t tsc = 0;
    uint8_t subrank = 1; ///< same-TSC tie-break: release < access < acquire
    uint32_t tid = 0;
    uint64_t position = 0;
    bool is_sync = false;
    size_t index = 0; ///< into the access vector or the sync trace
};

/**
 * Tie-break rank at equal TSC: happens-before sources (releases, exits,
 * spawns) sort before plain accesses, which sort before happens-before
 * sinks (acquires, joins, wakes).
 */
uint8_t
syncSubrank(SyncKind kind)
{
    switch (kind) {
      case SyncKind::kUnlock:
      case SyncKind::kCondWaitBegin:
      case SyncKind::kCondSignal:
      case SyncKind::kCondBroadcast:
      case SyncKind::kBarrierEnter:
      case SyncKind::kSpawn:
      case SyncKind::kThreadExit:
      case SyncKind::kRwUnlock:
      case SyncKind::kSemInit:
      case SyncKind::kSemPost:
      case SyncKind::kSpinUnlock:
      case SyncKind::kAtomicRelease:
        return 0;
      case SyncKind::kLock:
      case SyncKind::kCondWake:
      case SyncKind::kBarrierExit:
      case SyncKind::kJoin:
      case SyncKind::kThreadStart:
      case SyncKind::kRwRdLock:
      case SyncKind::kRwWrLock:
      case SyncKind::kSemWait:
      case SyncKind::kSpinLock:
      case SyncKind::kAtomicAcquire:
      case SyncKind::kAtomicAcqRel:
        return 2;
      default:
        return 1; // malloc/free order with accesses
    }
}

/**
 * Merge the reconstructed accesses and the sync trace into the
 * TSC-ordered detector feed with the release < access < acquire
 * tie-break. Both detection paths (one-shot and streaming) consume the
 * identical feed, which is what makes their reports byte-identical.
 */
std::vector<FeedEvent>
buildFeed(const trace::RunTrace &run,
          const std::map<uint32_t, replay::ThreadAlignment> &alignments,
          const std::vector<replay::ReconstructedAccess> &accesses)
{
    // Per-thread positions of sync records (exact program order) let the
    // merge tie-break same-TSC events correctly.
    std::unordered_map<size_t, uint64_t> sync_positions;
    for (const auto &[tid, align] : alignments) {
        for (const auto &s : align.syncs)
            sync_positions[s.record_index] = s.position;
    }

    std::vector<FeedEvent> feed;
    feed.reserve(accesses.size() + run.sync.size());
    for (size_t i = 0; i < accesses.size(); ++i) {
        feed.push_back({accesses[i].tsc, 1, accesses[i].tid,
                        accesses[i].position, false, i});
    }
    for (size_t i = 0; i < run.sync.size(); ++i) {
        uint64_t pos = 0;
        if (auto it = sync_positions.find(i); it != sync_positions.end())
            pos = it->second;
        feed.push_back({run.sync[i].tsc, syncSubrank(run.sync[i].kind),
                        run.sync[i].tid, pos, true, i});
    }
    std::stable_sort(feed.begin(), feed.end(),
                     [](const FeedEvent &a, const FeedEvent &b) {
                         if (a.tsc != b.tsc)
                             return a.tsc < b.tsc;
                         if (a.subrank != b.subrank)
                             return a.subrank < b.subrank;
                         if (a.tid != b.tid)
                             return a.tid < b.tid;
                         return a.position < b.position;
                     });
    return feed;
}

detect::MemAccess
toMemAccess(const replay::ReconstructedAccess &a)
{
    detect::MemAccess ma;
    ma.tid = a.tid;
    ma.addr = a.addr;
    ma.width = a.width;
    ma.is_write = a.is_write;
    ma.is_atomic = a.is_atomic;
    ma.insn_index = a.insn_index;
    ma.tsc = a.tsc;
    ma.origin = a.origin;
    return ma;
}

/** Dispatch one feed event into either detector flavor. */
template <typename Detector>
void
dispatchEvent(Detector &ft, const FeedEvent &ev,
              const trace::RunTrace &run,
              const std::vector<replay::ReconstructedAccess> &accesses)
{
    if (!ev.is_sync) {
        ft.access(toMemAccess(accesses[ev.index]));
        return;
    }
    const trace::SyncRecord &s = run.sync[ev.index];
    switch (s.kind) {
      case SyncKind::kLock:
        ft.acquire(s.tid, s.object);
        break;
      case SyncKind::kUnlock:
        ft.release(s.tid, s.object);
        break;
      case SyncKind::kCondWaitBegin:
        // Releases the associated mutex (aux) before blocking.
        ft.release(s.tid, s.aux);
        break;
      case SyncKind::kCondWake:
        // Reacquires the mutex and inherits the signaler's clock.
        ft.acquire(s.tid, s.aux);
        ft.acquire(s.tid, s.object);
        break;
      case SyncKind::kCondSignal:
      case SyncKind::kCondBroadcast:
        ft.release(s.tid, s.object);
        break;
      case SyncKind::kBarrierEnter:
        ft.barrierEnter(s.tid, s.object);
        break;
      case SyncKind::kBarrierExit:
        ft.barrierExit(s.tid, s.object);
        break;
      case SyncKind::kSpawn:
        ft.fork(s.tid, static_cast<uint32_t>(s.aux));
        break;
      case SyncKind::kThreadStart:
        break; // the fork edge already transferred the clock
      case SyncKind::kThreadExit:
        ft.threadExit(s.tid, s.tsc);
        break;
      case SyncKind::kJoin:
        ft.join(s.tid, static_cast<uint32_t>(s.aux));
        break;
      case SyncKind::kMalloc:
        ft.allocate(s.tid, s.object, s.aux);
        break;
      case SyncKind::kFree:
        ft.deallocate(s.tid, s.object);
        break;
      case SyncKind::kRwRdLock:
        ft.readLock(s.tid, s.object);
        break;
      case SyncKind::kRwWrLock:
        ft.writeLock(s.tid, s.object);
        break;
      case SyncKind::kRwUnlock:
        // aux distinguishes the mode the lock was held in.
        if (s.aux)
            ft.writeUnlock(s.tid, s.object);
        else
            ft.readUnlock(s.tid, s.object);
        break;
      case SyncKind::kSemInit:
        ft.semInit(s.tid, s.object, s.aux);
        break;
      case SyncKind::kSemWait:
        ft.semWait(s.tid, s.object);
        break;
      case SyncKind::kSemPost:
        ft.semPost(s.tid, s.object);
        break;
      case SyncKind::kSpinLock:
        ft.acquire(s.tid, s.object);
        break;
      case SyncKind::kSpinUnlock:
        ft.release(s.tid, s.object);
        break;
      case SyncKind::kAtomicAcquire:
        ft.acquire(s.tid, s.object);
        break;
      case SyncKind::kAtomicRelease:
        ft.release(s.tid, s.object);
        break;
      case SyncKind::kAtomicAcqRel:
        ft.acquireRelease(s.tid, s.object);
        break;
    }
}

/**
 * End of the maximal run starting at feed position @p i: the first
 * position whose event is a sync op or an access differing from
 * feed[i]'s in anything but the TSC. Only such runs — identical
 * accesses with no intervening event of any thread — are candidates for
 * detector-side folding.
 */
size_t
runExtent(const std::vector<FeedEvent> &feed,
          const std::vector<replay::ReconstructedAccess> &accesses,
          size_t i)
{
    const replay::ReconstructedAccess &a = accesses[feed[i].index];
    size_t j = i + 1;
    while (j < feed.size() && !feed[j].is_sync) {
        const replay::ReconstructedAccess &b = accesses[feed[j].index];
        if (b.tid != a.tid || b.addr != a.addr || b.width != a.width ||
            b.is_write != a.is_write || b.is_atomic != a.is_atomic ||
            b.insn_index != a.insn_index || b.origin != a.origin)
            break;
        ++j;
    }
    return j;
}

/**
 * Dispatch the whole feed with optional run-level folding: the first
 * iteration of a run of identical accesses is dispatched normally, then
 * the detector is asked to absorb the repeats in one step; if it
 * declines (shared-read state, where repeat TSCs matter), the repeats
 * are dispatched individually from the original events. @p on_events is
 * called once per run/event with the number of feed events covered and
 * the TSC of the last one — the hook streaming detection paces its
 * batch boundaries with.
 */
template <typename Detector, typename OnEvents>
void
dispatchFeed(Detector &ft, const std::vector<FeedEvent> &feed,
             const trace::RunTrace &run,
             const std::vector<replay::ReconstructedAccess> &accesses,
             bool run_summary, OnEvents &&on_events, size_t start = 0)
{
    // @p start resumes mid-feed (checkpoint warm start). Cursor values
    // recorded by on_events are sums of whole run extents, so a saved
    // cursor always lands back on a run boundary and the continuation
    // dispatches exactly the events an uninterrupted run would have.
    size_t i = start;
    while (i < feed.size()) {
        const FeedEvent &ev = feed[i];
        size_t j = i + 1;
        if (run_summary && !ev.is_sync)
            j = runExtent(feed, accesses, i);
        dispatchEvent(ft, ev, run, accesses);
        if (j - i > 1 &&
            !ft.foldRepeats(toMemAccess(accesses[ev.index]),
                            j - i - 1)) {
            for (size_t k = i + 1; k < j; ++k)
                dispatchEvent(ft, feed[k], run, accesses);
        }
        on_events(j - i, feed[j - 1].tsc);
        i = j;
    }
}

} // namespace

namespace detail {

void
detectRaces(const trace::RunTrace &run,
            const std::map<uint32_t, replay::ThreadAlignment> &alignments,
            const std::vector<replay::ReconstructedAccess> &accesses,
            detect::RaceReport &report, detect::FastTrackStats &stats,
            bool run_summary)
{
    const std::vector<FeedEvent> feed =
        buildFeed(run, alignments, accesses);
    detect::FastTrack ft;
    dispatchFeed(ft, feed, run, accesses, run_summary,
                 [](uint64_t, uint64_t) {});
    report = ft.report();
    stats = ft.stats();
}

void
detectRacesIncremental(
    const trace::RunTrace &run,
    const std::map<uint32_t, replay::ThreadAlignment> &alignments,
    const std::vector<replay::ReconstructedAccess> &accesses,
    detect::IncrementalFastTrack &detector, bool run_summary,
    const CheckpointHooks *hooks, bool allow_checkpoint)
{
    const std::vector<FeedEvent> feed =
        buildFeed(run, alignments, accesses);

    // Checkpoint warm start: the saved image is only valid against the
    // exact feed it was cut from, so the feed size must match and the
    // image must deserialize cleanly; anything else cold-starts.
    uint64_t start = 0;
    if (hooks && allow_checkpoint && hooks->restore &&
        hooks->resume_feed_total == feed.size() &&
        hooks->resume_events <= feed.size()) {
        support::ByteReader reader(*hooks->restore);
        if (detector.restoreState(reader)) {
            start = hooks->resume_events;
            if (hooks->resumed)
                *hooks->resumed = true;
        }
    }

    const uint64_t batch =
        detector.options().batch_events ? detector.options().batch_events
                                        : 1;
    uint64_t in_batch = 0;
    uint64_t cursor = start;
    dispatchFeed(
        detector, feed, run, accesses, run_summary,
        [&](uint64_t events, uint64_t frontier_tsc) {
            in_batch += events;
            cursor += events;
            if (in_batch >= batch) {
                // Every later event has tsc >= this one (the feed is
                // sorted), so this event's TSC is a valid retirement
                // frontier.
                detector.batchBoundary(frontier_tsc);
                in_batch = 0;
                if (hooks) {
                    if (hooks->tick)
                        hooks->tick();
                    if (allow_checkpoint && hooks->on_boundary)
                        hooks->on_boundary(cursor, feed.size(),
                                           detector);
                }
            }
        },
        static_cast<size_t>(start));
    detector.finish();
    if (hooks) {
        if (hooks->tick)
            hooks->tick();
        // A final image at end-of-feed lets a tenant that re-streams
        // the identical trace warm-start past the whole detect stage.
        if (allow_checkpoint && hooks->on_boundary)
            hooks->on_boundary(feed.size(), feed.size(), detector);
    }
}

namespace {

/** One dynamic allocation lifetime of a thread-local malloc site. */
struct HeapInterval {
    uint64_t base = 0;
    uint64_t size = 0;
    uint64_t start_tsc = 0;
    uint64_t end_tsc = UINT64_MAX; ///< never freed when left at max
    uint32_t owner = 0;            ///< allocating thread
    bool defeated = false;         ///< some other thread touched it
};

/**
 * Heap-locality pruning pass. The static claim (kHeapLocal site, alloc
 * site thread-local) selects candidates; the dynamic checks make the
 * removal report-preserving on their own:
 *  - only accesses by the allocating thread, strictly inside the
 *    block's [malloc, free) TSC window and byte range, are removed
 *    (FastTrack never reports same-thread races);
 *  - the detector erases the block's shadow granules at allocate() and
 *    deallocate(), so in-interval events cannot interact with events
 *    outside the interval;
 *  - any access by another thread that overlaps the block's shadow
 *    granules (8-byte expanded) during the interval — inclusive TSC
 *    bounds, so same-timestamp tie-break ambiguity stays conservative —
 *    defeats the whole interval and nothing in it is pruned.
 */
void
pruneHeapLocal(std::vector<replay::ReconstructedAccess> &accesses,
               const analysis::ProgramAnalysis &analysis,
               const trace::RunTrace &run, PrefilterStats &stats)
{
    const analysis::PointsTo *pt = analysis.pointsTo();
    if (!pt || !pt->heapSound() ||
        pt->threadLocalAllocSites().empty()) {
        return;
    }

    // Rebuild allocation lifetimes from the sync trace in detector feed
    // order (TSC, then tid, then record order — malloc/free share the
    // access subrank).
    std::vector<size_t> heap_recs;
    for (size_t i = 0; i < run.sync.size(); ++i) {
        const vm::SyncKind k = run.sync[i].kind;
        if (k == SyncKind::kMalloc || k == SyncKind::kFree)
            heap_recs.push_back(i);
    }
    if (heap_recs.empty())
        return;
    std::stable_sort(heap_recs.begin(), heap_recs.end(),
                     [&](size_t a, size_t b) {
                         const trace::SyncRecord &ra = run.sync[a];
                         const trace::SyncRecord &rb = run.sync[b];
                         if (ra.tsc != rb.tsc)
                             return ra.tsc < rb.tsc;
                         if (ra.tid != rb.tid)
                             return ra.tid < rb.tid;
                         return a < b;
                     });

    std::vector<HeapInterval> intervals;
    std::unordered_map<uint64_t, size_t> open; ///< base → interval index
    for (const size_t i : heap_recs) {
        const trace::SyncRecord &s = run.sync[i];
        if (s.kind == SyncKind::kMalloc) {
            if (!pt->allocSiteThreadLocal(s.insn_index))
                continue;
            if (auto it = open.find(s.object); it != open.end()) {
                // Re-allocation of a still-open block: the trace is
                // inconsistent here, trust neither lifetime.
                intervals[it->second].defeated = true;
                intervals[it->second].end_tsc = s.tsc;
            }
            HeapInterval iv;
            iv.base = s.object;
            iv.size = s.aux;
            iv.start_tsc = s.tsc;
            iv.owner = s.tid;
            open[s.object] = intervals.size();
            intervals.push_back(iv);
        } else if (auto it = open.find(s.object); it != open.end()) {
            intervals[it->second].end_tsc = s.tsc;
            open.erase(it);
        }
    }
    if (intervals.empty())
        return;
    stats.heap_intervals += intervals.size();

    // Granule-level index: shadow granule base → intervals whose
    // 8-byte-expanded footprint covers it (lifetimes of a reused
    // address overlap in space, never in time).
    std::unordered_map<uint64_t, std::vector<uint32_t>> by_granule;
    for (uint32_t idx = 0; idx < intervals.size(); ++idx) {
        const HeapInterval &iv = intervals[idx];
        if (iv.size == 0)
            continue;
        const uint64_t gfirst = iv.base & ~7ull;
        const uint64_t glast = (iv.base + iv.size - 1) & ~7ull;
        for (uint64_t g = gfirst; g <= glast; g += 8)
            by_granule[g].push_back(idx);
    }
    auto forEachInterval = [&](const replay::ReconstructedAccess &a,
                               auto &&fn) {
        if (a.width == 0)
            return;
        const uint64_t gfirst = a.addr & ~7ull;
        const uint64_t glast = (a.addr + a.width - 1) & ~7ull;
        for (uint64_t g = gfirst; g <= glast; g += 8) {
            const auto it = by_granule.find(g);
            if (it == by_granule.end())
                continue;
            for (const uint32_t idx : it->second)
                fn(intervals[idx]);
        }
    };

    // Defeat scan over the surviving feed (what the detector will see).
    for (const replay::ReconstructedAccess &a : accesses) {
        forEachInterval(a, [&](HeapInterval &iv) {
            if (a.tid != iv.owner && a.tsc >= iv.start_tsc &&
                a.tsc <= iv.end_tsc) {
                iv.defeated = true;
            }
        });
    }
    for (const HeapInterval &iv : intervals)
        stats.heap_defeated += iv.defeated ? 1 : 0;

    auto keep = std::remove_if(
        accesses.begin(), accesses.end(),
        [&](const replay::ReconstructedAccess &a) {
            if (analysis.siteClass(a.insn_index) !=
                analysis::SiteClass::kHeapLocal) {
                return false;
            }
            bool prune = false;
            forEachInterval(a, [&](const HeapInterval &iv) {
                if (!iv.defeated && a.tid == iv.owner &&
                    a.tsc > iv.start_tsc && a.tsc < iv.end_tsc &&
                    a.addr >= iv.base &&
                    a.addr + a.width <= iv.base + iv.size) {
                    prune = true;
                }
            });
            if (prune)
                ++stats.pruned_heap;
            return prune;
        });
    accesses.erase(keep, accesses.end());
}

} // namespace

void
applyStaticPrefilter(std::vector<replay::ReconstructedAccess> &accesses,
                     const analysis::ProgramAnalysis *analysis,
                     bool enabled, PrefilterStats &stats,
                     const trace::RunTrace *run)
{
    stats.events_seen += accesses.size();
    if (analysis) {
        const analysis::StaticSummary sum = analysis->summary();
        stats.analysis_sound = sum.rsp_integrity && sum.no_stack_escape;
        stats.sites_total = sum.mem_sites;
        stats.sites_thread_local = sum.thread_local_sites;
        stats.sites_heap_local = sum.heap_local_sites;
        stats.heap_sound = sum.pointsto.heap_sound;
        stats.pointsto_objects = sum.pointsto.objects;
        stats.pointsto_constraints = sum.pointsto.constraints;
        stats.pointsto_iterations = sum.pointsto.iterations;
    }
    // An unsound analysis classifies every site may-shared, so the scan
    // below could never prune anything; skip it outright.
    stats.enabled = enabled && analysis != nullptr &&
        stats.analysis_sound;
    if (!stats.enabled)
        return;
    auto keep = std::remove_if(
        accesses.begin(), accesses.end(),
        [&](const replay::ReconstructedAccess &a) {
            if (!analysis->siteThreadLocal(a.insn_index))
                return false;
            using analysis::SiteClass;
            if (analysis->escape().site(a.insn_index) ==
                SiteClass::kStackImplicit) {
                ++stats.pruned_stack_implicit;
            } else {
                ++stats.pruned_stack_direct;
            }
            return true;
        });
    accesses.erase(keep, accesses.end());
    if (run)
        pruneHeapLocal(accesses, *analysis, *run, stats);
}

std::vector<std::pair<uint64_t, uint64_t>>
regenerationBlacklist(
    const detect::RaceReport &report,
    const std::unordered_set<uint64_t> &consumed,
    const std::vector<std::pair<uint64_t, uint64_t>> &existing)
{
    std::vector<std::pair<uint64_t, uint64_t>> additions;
    for (const detect::DataRace &race : report.races()) {
        bool used = false;
        for (uint64_t b = race.addr; b < race.addr + 8; ++b) {
            if (consumed.count(b)) {
                used = true;
                break;
            }
        }
        if (!used)
            continue;
        bool already = false;
        for (const auto &[addr, size] : existing) {
            if (race.addr >= addr && race.addr < addr + size)
                already = true;
        }
        if (!already)
            additions.emplace_back(race.addr, 8);
    }
    return additions;
}

} // namespace detail

OfflineAnalyzer::OfflineAnalyzer(const asmkit::Program &program,
                                 const OfflineOptions &options)
    : program_(program), options_(options),
      analysis_(std::make_unique<analysis::ProgramAnalysis>(
          program, options.pointsto))
{
    // Hand the precomputed fact tables to the replay layer; replay and
    // alignment results are bit-identical with or without them.
    options_.replay.analysis = analysis_.get();
}

void
OfflineAnalyzer::analyzeOnce(
    const trace::RunTrace &run,
    const std::map<uint32_t, pmu::ThreadPath> &paths,
    const std::map<uint32_t, replay::ThreadAlignment> &alignments,
    const replay::ReplayConfig &replay_config, OfflineResult &result,
    std::unordered_set<uint64_t> &consumed, bool first_round)
{
    // --- reconstruction ---
    Stopwatch timer;
    replay::Replayer replayer(program_, replay_config);
    std::vector<replay::ReconstructedAccess> accesses =
        replayer.replayAll(paths, alignments, run);
    result.replay_stats = replayer.stats();
    result.extended_trace_events = accesses.size();
    consumed = replayer.consumedAddresses();
    result.reconstruct_seconds += timer.lap();

    // --- detection (prefilter cost counts as detection cost) ---
    detail::applyStaticPrefilter(accesses, analysis_.get(),
                                 options_.static_prefilter,
                                 result.prefilter, &run);
    if (options_.incremental.enabled) {
        detect::IncrementalFastTrack detector(options_.incremental);
        // GC is gated until every thread of the run has appeared in the
        // feed; the meta thread table is the authoritative population.
        for (const trace::ThreadMeta &tm : run.meta.threads)
            detector.requireThread(tm.tid);
        detail::detectRacesIncremental(run, alignments, accesses,
                                       detector, options_.run_summary,
                                       &options_.checkpoint,
                                       first_round);
        result.report = detector.report();
        result.detect_stats = detector.stats();
        result.incremental.merge(detector.incrementalStats());
    } else {
        detail::detectRaces(run, alignments, accesses, result.report,
                            result.detect_stats, options_.run_summary);
    }
    result.detect_seconds += timer.lap();
}

OfflineResult
OfflineAnalyzer::analyze(const trace::RunTrace &run)
{
    OfflineResult result;

    std::map<uint32_t, pmu::ThreadPath> paths;
    std::map<uint32_t, replay::ThreadAlignment> alignments;
    if (options_.replay.mode != replay::ReplayMode::kBasicBlock) {
        Stopwatch timer;
        paths = pmu::decodePt(program_, options_.pt_filter, run,
                              &result.decode_stats);
        result.decode_seconds = timer.lap();

        alignments = replay::alignTrace(program_, paths, run,
                                        &result.align_stats,
                                        analysis_.get());
        result.reconstruct_seconds += timer.lap();
    }

    replay::ReplayConfig replay_config = options_.replay;
    for (int round = 0;; ++round) {
        result.regeneration_rounds = round;
        std::unordered_set<uint64_t> consumed;
        OfflineResult pass = result; // keep timing accumulators
        pass.report = detect::RaceReport();
        analyzeOnce(run, paths, alignments, replay_config, pass, consumed,
                    round == 0);
        result = pass;

        if (round >= options_.max_regeneration_rounds)
            break;

        std::vector<std::pair<uint64_t, uint64_t>> new_blacklist =
            detail::regenerationBlacklist(result.report, consumed,
                                          replay_config.mem_blacklist);
        if (new_blacklist.empty())
            break;
        replay_config.mem_blacklist.insert(
            replay_config.mem_blacklist.end(), new_blacklist.begin(),
            new_blacklist.end());
    }
    return result;
}

Result<OfflineResult, trace::TraceError>
OfflineAnalyzer::analyzeFile(const std::string &path)
{
    auto loaded = trace::readTraceFile(path);
    if (!loaded.ok())
        return loaded.error();
    // Lost sync segments can hide fork edges, and the GC soundness
    // argument leans on observing every fork; keep the streaming
    // batching but fall back to an unswept table for this damaged run.
    const bool saved_gc = options_.incremental.enable_gc;
    if (loaded.value().loss.sync_dropped > 0)
        options_.incremental.enable_gc = false;
    OfflineResult result = analyze(loaded.value().trace);
    options_.incremental.enable_gc = saved_gc;
    result.ingest_loss = loaded.value().loss;
    result.compression = loaded.value().trace.meta.compression;
    return result;
}

} // namespace prorace::core

/**
 * @file
 * The parallel offline-analysis engine.
 *
 * Scales the offline pipeline (paper §7.6's bottleneck: minutes of
 * decode + reconstruction per second of traced execution) across cores
 * while producing results bit-identical to the serial OfflineAnalyzer:
 *
 *  1. **Sharded PT decode** — one executor task per per-core packet
 *     stream. Threads are pinned to cores, so the shards are
 *     independent; the per-tid path maps merge losslessly. A trace in
 *     which one tid spans two streams (thread migration) falls back to
 *     the serial decoder.
 *  2. **Windowed parallel replay** — the inter-sample windows the
 *     Replayer already processes independently fan out as tasks. The
 *     only state adjacent windows share is their boundary PEBS sample
 *     (window i's backward-propagation source is window i+1's forward
 *     seed); that handoff travels inside each Window descriptor, so
 *     tasks touch no mutable shared replay state.
 *  3. **Ordered commit** — window results pass through a bounded
 *     reorder buffer and are committed in the serial path's exact
 *     order (ascending tid, then window index), rebuilding the
 *     identical pre-sort access sequence; the shared stable sort and
 *     the shared detection feed then make the FastTrack event stream
 *     — and hence the RaceReport — byte-for-byte the same.
 *
 * Detection itself stays serial: vector-clock state is inherently
 * sequential, and the paper measures it at ~1.6% of offline cost.
 */

#ifndef PRORACE_CORE_PARALLEL_OFFLINE_HH
#define PRORACE_CORE_PARALLEL_OFFLINE_HH

#include "core/offline.hh"
#include "exec/executor.hh"

namespace prorace::core {

/**
 * Drop-in replacement for OfflineAnalyzer that runs the decode and
 * replay stages on a work-stealing executor when
 * OfflineOptions::num_threads > 0, and delegates to the serial
 * analyzer when it is 0 (or in basic-block mode, which has no
 * inter-sample windows to fan out).
 */
class ParallelOfflineAnalyzer
{
  public:
    ParallelOfflineAnalyzer(const asmkit::Program &program,
                            const OfflineOptions &options);

    /** Run the full offline pipeline over @p run. */
    OfflineResult analyze(const trace::RunTrace &run);

    /**
     * Ingest @p path fault-tolerantly and analyze what survives; see
     * OfflineAnalyzer::analyzeFile().
     */
    Result<OfflineResult, trace::TraceError>
    analyzeFile(const std::string &path);

    /** Executor counters of the last analyze() call (parallel path). */
    const exec::ExecutorStats &executorStats() const
    {
        return exec_stats_;
    }

  private:
    struct WindowTask;
    struct WindowResult;

    /** Stage 1: sharded decode (serial fallback on thread migration). */
    std::map<uint32_t, pmu::ThreadPath>
    decodeSharded(const trace::RunTrace &run, exec::Executor &ex,
                  pmu::PtDecodeStats *stats);

    /** Stages 2+3: one replay pass, fanned out and ordered-committed. */
    void analyzeOnceParallel(
        const trace::RunTrace &run,
        const std::map<uint32_t, pmu::ThreadPath> &paths,
        const std::map<uint32_t, replay::ThreadAlignment> &alignments,
        const replay::ReplayConfig &replay_config, exec::Executor &ex,
        OfflineResult &result, std::unordered_set<uint64_t> &consumed);

    const asmkit::Program &program_;
    OfflineOptions options_;
    /** Static facts shared by the aligner, replayer and prefilter. */
    std::unique_ptr<analysis::ProgramAnalysis> analysis_;
    exec::ExecutorStats exec_stats_;
};

} // namespace prorace::core

#endif // PRORACE_CORE_PARALLEL_OFFLINE_HH

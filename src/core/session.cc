#include "core/session.hh"

#include "support/log.hh"

namespace prorace::core {

RunArtifacts
Session::run(const asmkit::Program &program, const Setup &setup,
             const SessionOptions &options)
{
    RunArtifacts out;

    if (options.run_baseline) {
        vm::Machine baseline(program, options.machine);
        setup(baseline);
        baseline.run();
        out.baseline_cycles = baseline.wallTime();
    }

    vm::Machine machine(program, options.machine);
    driver::TracingSession tracing(options.tracing,
                                   options.machine.num_cores);
    machine.setObserver(&tracing);
    setup(machine);
    out.status = machine.run();

    out.trace = tracing.finish();
    out.stats = tracing.stats();
    out.traced_cycles = machine.wallTime();
    out.total_insns = machine.totalInstructions();
    out.total_mem_ops = machine.totalMemOps();

    out.trace.meta.wall_cycles = out.traced_cycles;
    out.trace.meta.baseline_cycles = out.baseline_cycles;
    out.trace.meta.total_insns = out.total_insns;
    out.trace.meta.total_mem_ops = out.total_mem_ops;
    for (uint32_t tid = 0; tid < machine.numThreads(); ++tid) {
        out.trace.meta.threads.push_back(
            {tid, machine.thread(tid).entry_ip});
    }
    return out;
}

} // namespace prorace::core

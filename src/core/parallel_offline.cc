#include "core/parallel_offline.hh"

#include <algorithm>
#include <exception>

#include "exec/reorder_buffer.hh"
#include "support/log.hh"
#include "support/timer.hh"
#include "trace/trace_file.hh"

namespace prorace::core {

using replay::Replayer;

/** One fanned-out replay window (sequence = index into the task list). */
struct ParallelOfflineAnalyzer::WindowTask {
    uint32_t tid = 0;
    bool last_of_thread = false; ///< thread finalizes after this commit
    Replayer::Window window;
    const pmu::ThreadPath *path = nullptr;
    const replay::ThreadAlignment *alignment = nullptr;
};

/** What a window task hands to the ordered-commit stage. */
struct ParallelOfflineAnalyzer::WindowResult {
    Replayer::EmitMap emit;
    replay::ReplayStats stats;
    std::unordered_set<uint64_t> consumed;
    std::exception_ptr error;
};

ParallelOfflineAnalyzer::ParallelOfflineAnalyzer(
    const asmkit::Program &program, const OfflineOptions &options)
    : program_(program), options_(options),
      analysis_(std::make_unique<analysis::ProgramAnalysis>(
          program, options.pointsto))
{
    // Hand the precomputed fact tables to the replay layer; replay and
    // alignment results are bit-identical with or without them.
    options_.replay.analysis = analysis_.get();
}

std::map<uint32_t, pmu::ThreadPath>
ParallelOfflineAnalyzer::decodeSharded(const trace::RunTrace &run,
                                       exec::Executor &ex,
                                       pmu::PtDecodeStats *stats)
{
    std::vector<exec::Future<std::map<uint32_t, pmu::ThreadPath>>>
        shard_futures;
    std::vector<pmu::PtDecodeStats> shard_stats(run.pt.size());
    shard_futures.reserve(run.pt.size());
    for (size_t core = 0; core < run.pt.size(); ++core) {
        shard_futures.push_back(ex.submit([this, &run, &shard_stats,
                                           core] {
            return pmu::decodePtStream(program_, options_.pt_filter, run,
                                       core, &shard_stats[core]);
        }));
    }

    std::map<uint32_t, pmu::ThreadPath> paths;
    bool migrated = false;
    for (auto &f : shard_futures) {
        for (auto &[tid, path] : f.get()) {
            if (!paths.emplace(tid, std::move(path)).second)
                migrated = true;
        }
    }
    if (migrated) {
        // A tid with packets in two streams means the serial decoder
        // would have threaded one walker across both; redo serially so
        // the result stays bit-identical.
        if (stats)
            *stats = pmu::PtDecodeStats();
        return pmu::decodePt(program_, options_.pt_filter, run, stats);
    }
    if (stats) {
        for (const pmu::PtDecodeStats &s : shard_stats)
            stats->merge(s);
    }
    return paths;
}

void
ParallelOfflineAnalyzer::analyzeOnceParallel(
    const trace::RunTrace &run,
    const std::map<uint32_t, pmu::ThreadPath> &paths,
    const std::map<uint32_t, replay::ThreadAlignment> &alignments,
    const replay::ReplayConfig &replay_config, exec::Executor &ex,
    OfflineResult &result, std::unordered_set<uint64_t> &consumed)
{
    Stopwatch timer;

    // --- plan: per-thread window lists, in ascending-tid order ---
    // sync_at maps live here so Window::sync_at pointers stay valid for
    // the whole fan-out.
    std::map<uint32_t, std::map<uint64_t, const trace::SyncRecord *>>
        sync_maps;
    std::vector<WindowTask> tasks;
    for (const auto &[tid, path] : paths) {
        auto it = alignments.find(tid);
        if (it == alignments.end())
            continue;
        const replay::ThreadAlignment &alignment = it->second;
        auto &sync_at = sync_maps[tid];
        sync_at = Replayer::syncAtMap(alignment, run);
        std::vector<Replayer::Window> windows =
            Replayer::buildWindows(path, alignment, run, sync_at);
        for (size_t i = 0; i < windows.size(); ++i) {
            WindowTask t;
            t.tid = tid;
            t.last_of_thread = i + 1 == windows.size();
            t.window = windows[i];
            t.path = &path;
            t.alignment = &alignment;
            tasks.push_back(t);
        }
    }

    // --- fan out: bounded in-flight window tasks, ordered commit ---
    // Submission is throttled to the reorder-buffer capacity, so a
    // commit can never block with every worker stuck on a
    // later-sequence window (see reorder_buffer.hh).
    const uint64_t capacity =
        std::max<uint64_t>(2 * ex.numThreads(), 16);
    exec::ReorderBuffer<WindowResult> rob(capacity);
    uint64_t next_submit = 0;
    auto submit_one = [&] {
        const uint64_t seq = next_submit++;
        const WindowTask *t = &tasks[seq];
        ex.submit([this, &run, &rob, &replay_config, t, seq] {
            WindowResult res;
            try {
                Replayer replayer(program_, replay_config);
                replayer.replayWindow(t->window, *t->path, *t->alignment,
                                      run, res.emit);
                res.stats = replayer.stats();
                res.consumed = replayer.consumedAddresses();
            } catch (...) {
                res.error = std::current_exception();
            }
            rob.commit(seq, std::move(res));
        });
    };
    while (next_submit < tasks.size() && next_submit < capacity)
        submit_one();

    // The commit thread re-assembles exactly the serial pre-sort access
    // sequence: threads in ascending tid order, windows in path order,
    // then each thread's unlocatable samples in record order.
    std::vector<replay::ReconstructedAccess> accesses;
    replay::ReplayStats replay_stats;
    Replayer finalizer(program_, replay_config);
    Replayer::EmitMap thread_emit;
    for (uint64_t seq = 0; seq < tasks.size(); ++seq) {
        WindowResult res = rob.pop();
        if (next_submit < tasks.size())
            submit_one();
        if (res.error) {
            // Quarantine policy: retry the window once on the commit
            // thread (transient failures — allocation pressure on a
            // loaded worker — get a second chance), then give it up
            // and record the loss. Its samples fall back to the
            // unmatched-sample path in finalizeThread, so one
            // poisoned window costs its reconstructed accesses, not
            // the run. Windows cannot hang: replay work is bounded by
            // the window's path slice, so a timeout policy beyond
            // this retry is unnecessary by construction.
            ++result.quarantine.window_retries;
            const WindowTask &t = tasks[seq];
            WindowResult retry;
            try {
                Replayer replayer(program_, replay_config);
                replayer.replayWindow(t.window, *t.path, *t.alignment,
                                      run, retry.emit);
                retry.stats = replayer.stats();
                retry.consumed = replayer.consumedAddresses();
            } catch (...) {
                ++result.quarantine.windows_quarantined;
                retry = WindowResult();
            }
            res = std::move(retry);
        }
        replay_stats.merge(res.stats);
        consumed.insert(res.consumed.begin(), res.consumed.end());
        // Window [start, end) ranges are disjoint, so inserting the
        // window maps in commit order equals the serial shared-map
        // accumulation.
        thread_emit.entries.insert(res.emit.entries.begin(),
                                   res.emit.entries.end());
        const WindowTask &t = tasks[seq];
        if (t.last_of_thread) {
            finalizer.finalizeThread(*t.path, *t.alignment, run,
                                     thread_emit, accesses);
            thread_emit.entries.clear();
        }
    }
    // Samples of threads without decoded paths still contribute their
    // own access (same trailing block as the serial replayAll).
    for (const trace::PebsRecord &rec : run.pebs) {
        if (paths.count(rec.tid))
            continue;
        replay::ReconstructedAccess acc;
        acc.tid = rec.tid;
        acc.insn_index = rec.insn_index;
        acc.addr = rec.addr;
        acc.width = rec.width;
        acc.is_write = rec.is_write;
        acc.is_atomic = rec.is_atomic;
        acc.tsc = rec.tsc;
        acc.origin = detect::AccessOrigin::kSampled;
        replay_stats.sampled += 1;
        accesses.push_back(acc);
    }
    Replayer::sortByTsc(accesses);

    replay_stats.merge(finalizer.stats()); // unlocatable-sample counts
    result.replay_stats = replay_stats;
    result.extended_trace_events = accesses.size();
    result.reconstruct_seconds += timer.lap();

    // --- detection (serial: vector clocks are order-dependent; the
    // prefilter cost counts as detection cost) ---
    detail::applyStaticPrefilter(accesses, analysis_.get(),
                                 options_.static_prefilter,
                                 result.prefilter, &run);
    if (options_.incremental.enabled) {
        detect::IncrementalFastTrack detector(options_.incremental);
        for (const trace::ThreadMeta &tm : run.meta.threads)
            detector.requireThread(tm.tid);
        detail::detectRacesIncremental(run, alignments, accesses,
                                       detector, options_.run_summary);
        result.report = detector.report();
        result.detect_stats = detector.stats();
        result.incremental.merge(detector.incrementalStats());
    } else {
        detail::detectRaces(run, alignments, accesses, result.report,
                            result.detect_stats, options_.run_summary);
    }
    result.detect_seconds += timer.lap();
}

OfflineResult
ParallelOfflineAnalyzer::analyze(const trace::RunTrace &run)
{
    exec_stats_ = exec::ExecutorStats();
    // num_threads == 0 preserves the classic serial pipeline;
    // basic-block mode (RaceZ) has no PT streams or inter-sample
    // windows to shard, so it stays on the serial path too.
    if (options_.num_threads == 0 ||
        options_.replay.mode == replay::ReplayMode::kBasicBlock) {
        OfflineAnalyzer serial(program_, options_);
        return serial.analyze(run);
    }

    exec::Executor ex(options_.num_threads);
    OfflineResult result;

    Stopwatch timer;
    std::map<uint32_t, pmu::ThreadPath> paths =
        decodeSharded(run, ex, &result.decode_stats);
    result.decode_seconds = timer.lap();

    std::map<uint32_t, replay::ThreadAlignment> alignments =
        replay::alignTrace(program_, paths, run, &result.align_stats,
                           analysis_.get());
    result.reconstruct_seconds += timer.lap();

    replay::ReplayConfig replay_config = options_.replay;
    for (int round = 0;; ++round) {
        result.regeneration_rounds = round;
        std::unordered_set<uint64_t> consumed;
        OfflineResult pass = result; // keep timing accumulators
        pass.report = detect::RaceReport();
        analyzeOnceParallel(run, paths, alignments, replay_config, ex,
                            pass, consumed);
        result = pass;

        if (round >= options_.max_regeneration_rounds)
            break;

        std::vector<std::pair<uint64_t, uint64_t>> new_blacklist =
            detail::regenerationBlacklist(result.report, consumed,
                                          replay_config.mem_blacklist);
        if (new_blacklist.empty())
            break;
        replay_config.mem_blacklist.insert(
            replay_config.mem_blacklist.end(), new_blacklist.begin(),
            new_blacklist.end());
    }

    exec_stats_ = ex.stats();
    return result;
}

Result<OfflineResult, trace::TraceError>
ParallelOfflineAnalyzer::analyzeFile(const std::string &path)
{
    auto loaded = trace::readTraceFile(path);
    if (!loaded.ok())
        return loaded.error();
    // Same damaged-sync fallback as the serial analyzeFile.
    const bool saved_gc = options_.incremental.enable_gc;
    if (loaded.value().loss.sync_dropped > 0)
        options_.incremental.enable_gc = false;
    OfflineResult result = analyze(loaded.value().trace);
    options_.incremental.enable_gc = saved_gc;
    result.ingest_loss = loaded.value().loss;
    result.compression = loaded.value().trace.meta.compression;
    return result;
}

} // namespace prorace::core

#include "driver/session.hh"

#include <algorithm>
#include <cmath>

#include "support/log.hh"

namespace prorace::driver {

const char *
driverName(DriverKind kind)
{
    switch (kind) {
      case DriverKind::kVanilla: return "vanilla-linux";
      case DriverKind::kProRace: return "prorace";
    }
    return "?";
}

TracingSession::TracingSession(const TraceConfig &config, unsigned num_cores)
    : config_(config), rng_(config.seed),
      storage_budget_(static_cast<double>(config.costs.storage_burst_bytes))
{
    PRORACE_ASSERT(num_cores >= 1, "tracing session needs cores");
    cores_.resize(num_cores);
    const bool randomize = config_.driver == DriverKind::kProRace;
    for (CoreState &core : cores_) {
        if (config_.enable_pebs) {
            core.pebs = std::make_unique<pmu::PebsCounter>(
                config_.pebs_period, randomize, rng_);
        }
        if (config_.enable_pt)
            core.pt = std::make_unique<pmu::PtEncoder>(config_.pt);
    }
}

TracingSession::~TracingSession() = default;

uint64_t
TracingSession::drainFrac(CoreState &core)
{
    const uint64_t whole = static_cast<uint64_t>(core.frac_cost);
    core.frac_cost -= static_cast<double>(whole);
    return whole;
}

bool
TracingSession::commitToStorage(uint64_t bytes, uint64_t tsc)
{
    // Token bucket modeling the sustained drain rate of the trace device.
    if (tsc > storage_last_tsc_) {
        storage_budget_ += static_cast<double>(tsc - storage_last_tsc_) *
            config_.costs.storage_bytes_per_cycle;
        storage_budget_ = std::min(
            storage_budget_,
            static_cast<double>(config_.costs.storage_burst_bytes));
        storage_last_tsc_ = tsc;
    }
    if (storage_budget_ < static_cast<double>(bytes)) {
        // A failed write is not free: it still burns some device time.
        storage_budget_ = std::max(
            0.0, storage_budget_ - static_cast<double>(bytes) *
                     config_.costs.storage_drop_waste);
        return false;
    }
    storage_budget_ -= static_cast<double>(bytes);
    return true;
}

uint64_t
TracingSession::handleInterrupt(CoreState &core, uint64_t tsc)
{
    const CostModel &costs = config_.costs;
    uint64_t cost = costs.pmi_cost;
    ++stats_.interrupts;

    // Handler throttle: a token bucket refilled at handler_cpu_fraction
    // of wall time. When empty, the kernel discards records rather than
    // spend more time in interrupt context.
    if (tsc > core.last_throttle_tsc) {
        core.handler_budget +=
            static_cast<double>(tsc - core.last_throttle_tsc) *
            costs.handler_cpu_fraction;
        const double cap = static_cast<double>(costs.vanilla_record_cost) *
            2.0 * static_cast<double>(costs.ds_bytes / costs.record_bytes);
        core.handler_budget = std::min(core.handler_budget, cap);
        core.last_throttle_tsc = tsc;
    }

    if (config_.driver == DriverKind::kVanilla) {
        // Stock driver: per-record metadata assembly and copy into the
        // perf ring buffer, then the perf tool copies to perf.data.
        for (trace::PebsRecord &rec : core.ds) {
            const double per_record =
                static_cast<double>(costs.vanilla_record_cost);
            if (core.handler_budget < per_record) {
                ++stats_.samples_dropped_throttle;
                cost += costs.drop_cost;
                continue;
            }
            core.handler_budget -= per_record;
            cost += costs.vanilla_record_cost;
            if (!commitToStorage(costs.record_bytes, tsc)) {
                ++stats_.samples_dropped_storage;
                continue;
            }
            core.frac_cost += costs.vanilla_tool_per_byte *
                static_cast<double>(costs.record_bytes);
            stats_.pebs_bytes += costs.record_bytes;
            committed_.push_back(std::move(rec));
        }
    } else {
        // ProRace driver: hand PEBS the next aux-buffer segment; the
        // user-level tool dumps whole segments later.
        cost += costs.prorace_swap_cost;
        const uint64_t segment_bytes = core.ds.size() * costs.record_bytes;
        if (!commitToStorage(segment_bytes, tsc)) {
            stats_.samples_dropped_storage += core.ds.size();
        } else {
            core.frac_cost += costs.prorace_tool_per_byte *
                static_cast<double>(segment_bytes);
            stats_.pebs_bytes += segment_bytes;
            for (trace::PebsRecord &rec : core.ds)
                committed_.push_back(std::move(rec));
        }
    }
    core.ds.clear();
    cost += drainFrac(core);
    return cost;
}

uint64_t
TracingSession::onMemOp(const vm::MemOpEvent &ev)
{
    max_tsc_ = std::max(max_tsc_, ev.tsc);
    if (!config_.enable_pebs)
        return 0;
    CoreState &core = cores_[ev.core];
    if (!core.pebs->tick())
        return 0;

    // The hardware microcode assist captures the record (instruction
    // pointer, data address, full register file, TSC) into the DS area.
    uint64_t cost = config_.costs.pebs_assist;
    ++stats_.samples_taken;

    trace::PebsRecord rec;
    rec.tid = ev.tid;
    rec.core = ev.core;
    rec.insn_index = ev.insn_index;
    rec.addr = ev.addr;
    rec.width = ev.width;
    rec.is_write = ev.is_write;
    rec.is_atomic = ev.is_atomic;
    rec.tsc = ev.tsc;
    rec.regs = *ev.regs;
    core.ds.push_back(rec);

    if (core.ds.size() * config_.costs.record_bytes >=
        config_.costs.ds_bytes) {
        cost += handleInterrupt(core, ev.tsc);
    }
    stats_.pebs_cycles += cost;
    return cost;
}

uint64_t
TracingSession::onCondBranch(const vm::BranchEvent &ev)
{
    max_tsc_ = std::max(max_tsc_, ev.tsc);
    if (!config_.enable_pt)
        return 0;
    CoreState &core = cores_[ev.core];
    core.pt->onCondBranch(ev.insn_index, ev.taken, ev.tsc);
    const uint64_t bytes = core.pt->bytesEmitted();
    core.frac_cost += config_.costs.pt_per_byte *
        static_cast<double>(bytes - core.last_pt_bytes);
    core.last_pt_bytes = bytes;
    const uint64_t cost = drainFrac(core);
    stats_.pt_cycles += cost;
    return cost;
}

uint64_t
TracingSession::onIndirectBranch(const vm::BranchEvent &ev)
{
    max_tsc_ = std::max(max_tsc_, ev.tsc);
    if (!config_.enable_pt)
        return 0;
    CoreState &core = cores_[ev.core];
    core.pt->onIndirect(ev.insn_index, ev.target, ev.tsc);
    const uint64_t bytes = core.pt->bytesEmitted();
    core.frac_cost += config_.costs.pt_per_byte *
        static_cast<double>(bytes - core.last_pt_bytes);
    core.last_pt_bytes = bytes;
    const uint64_t cost = drainFrac(core);
    stats_.pt_cycles += cost;
    return cost;
}

void
TracingSession::onContextSwitch(unsigned core_id, uint32_t tid, uint64_t tsc,
                                uint32_t ip)
{
    max_tsc_ = std::max(max_tsc_, tsc);
    if (!config_.enable_pt)
        return;
    cores_[core_id].pt->onContextSwitch(tid, tsc, ip);
}

uint64_t
TracingSession::onSync(const vm::SyncEvent &ev)
{
    max_tsc_ = std::max(max_tsc_, ev.tsc);
    if (!config_.enable_sync)
        return 0;
    sync_.push_back(ev);
    stats_.sync_bytes += config_.costs.sync_record_bytes;
    stats_.sync_cycles += config_.costs.sync_trace_cost;
    return config_.costs.sync_trace_cost;
}

uint64_t
TracingSession::onIoSyscall(uint32_t, isa::SyscallNo, uint64_t latency)
{
    // The application's file I/O shares the storage device with trace
    // writing; inflate its latency by the device-time fraction the
    // tracer consumes.
    if (max_tsc_ == 0)
        return 0;
    const double trace_rate =
        static_cast<double>(stats_.totalBytes()) /
        static_cast<double>(std::max<uint64_t>(max_tsc_, 1));
    const double share = std::min(
        1.0, trace_rate / config_.costs.storage_bytes_per_cycle);
    return static_cast<uint64_t>(static_cast<double>(latency) * share *
                                 config_.costs.io_contention_weight);
}

trace::RunTrace
TracingSession::finish()
{
    PRORACE_ASSERT(!finished_, "TracingSession finished twice");
    finished_ = true;

    // Final drain: remaining DS contents are flushed by the tool at exit
    // (no interrupt fires; storage has time to absorb them).
    for (CoreState &core : cores_) {
        for (trace::PebsRecord &rec : core.ds) {
            stats_.pebs_bytes += config_.costs.record_bytes;
            committed_.push_back(std::move(rec));
        }
        core.ds.clear();
    }

    trace::RunTrace trace;
    trace.sync = std::move(sync_);
    trace.pebs = std::move(committed_);
    if (config_.enable_pt) {
        for (CoreState &core : cores_) {
            trace.pt.push_back(core.pt->finish());
            stats_.pt_bytes += trace.pt.back().bytes.size();
        }
    }

    trace.meta.num_cores = static_cast<uint32_t>(cores_.size());
    trace.meta.pebs_period = config_.pebs_period;
    for (CoreState &core : cores_) {
        trace.meta.first_periods.push_back(
            core.pebs ? core.pebs->firstWindow() : 0);
    }
    trace.meta.samples_taken = stats_.samples_taken;
    trace.meta.samples_dropped = stats_.samplesDropped();
    trace.meta.pebs_bytes = stats_.pebs_bytes;
    trace.meta.pt_bytes = stats_.pt_bytes;
    trace.meta.sync_bytes = stats_.sync_bytes;
    return trace;
}

} // namespace prorace::driver

/**
 * @file
 * The online tracing stack: PEBS sampling through a kernel-driver model,
 * PT control-flow tracing, and synchronization tracing, attached to the
 * machine as an ExecutionObserver.
 *
 * Two driver models are provided:
 *  - kVanilla: the stock Linux perf PEBS path (per-record metadata and
 *    kernel-to-user ring-buffer copying, handler throttling);
 *  - kProRace: the paper's driver (aux-buffer segment swapping, no
 *    per-record processing, randomized first sampling period).
 */

#ifndef PRORACE_DRIVER_SESSION_HH
#define PRORACE_DRIVER_SESSION_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "driver/cost_model.hh"
#include "pmu/pebs.hh"
#include "pmu/pt.hh"
#include "support/rng.hh"
#include "trace/records.hh"
#include "vm/hooks.hh"

namespace prorace::driver {

/** Which kernel PEBS driver services the samples. */
enum class DriverKind : uint8_t {
    kVanilla, ///< stock Linux perf driver
    kProRace, ///< the paper's driver
};

/** Printable driver name. */
const char *driverName(DriverKind kind);

/** Online-phase configuration. */
struct TraceConfig {
    uint64_t pebs_period = 10000;
    DriverKind driver = DriverKind::kProRace;
    bool enable_pebs = true;
    bool enable_pt = true;
    bool enable_sync = true;
    pmu::PtConfig pt;
    uint64_t seed = 1;      ///< randomized-first-period seed
    CostModel costs;
};

/** Counters the evaluation section reports. */
struct TracingStats {
    uint64_t samples_taken = 0;           ///< records captured by hardware
    uint64_t samples_dropped_throttle = 0;///< dropped by handler throttling
    uint64_t samples_dropped_storage = 0; ///< dropped by storage pressure
    uint64_t interrupts = 0;
    uint64_t pebs_bytes = 0;
    uint64_t pt_bytes = 0;
    uint64_t sync_bytes = 0;
    uint64_t pebs_cycles = 0;             ///< overhead breakdown (§7.2)
    uint64_t pt_cycles = 0;
    uint64_t sync_cycles = 0;

    uint64_t
    samplesDropped() const
    {
        return samples_dropped_throttle + samples_dropped_storage;
    }

    uint64_t
    totalBytes() const
    {
        return pebs_bytes + pt_bytes + sync_bytes;
    }

    uint64_t
    totalCycles() const
    {
        return pebs_cycles + pt_cycles + sync_cycles;
    }
};

/**
 * The observer the machine runs with while tracing. Collects the PEBS,
 * PT, and sync traces and charges the modeled tracing cycles back to the
 * executing cores.
 */
class TracingSession : public vm::ExecutionObserver
{
  public:
    TracingSession(const TraceConfig &config, unsigned num_cores);
    ~TracingSession() override;

    uint64_t onMemOp(const vm::MemOpEvent &ev) override;
    uint64_t onCondBranch(const vm::BranchEvent &ev) override;
    uint64_t onIndirectBranch(const vm::BranchEvent &ev) override;
    void onContextSwitch(unsigned core, uint32_t tid, uint64_t tsc,
                         uint32_t ip) override;
    uint64_t onSync(const vm::SyncEvent &ev) override;
    uint64_t onIoSyscall(uint32_t tid, isa::SyscallNo no,
                         uint64_t latency) override;

    /**
     * Flush buffers, close PT streams, and assemble the run trace.
     * Call exactly once after the machine run.
     */
    trace::RunTrace finish();

    /** Tracing counters (valid any time). */
    const TracingStats &stats() const { return stats_; }

    /** The configuration this session runs with. */
    const TraceConfig &config() const { return config_; }

  private:
    struct CoreState {
        std::unique_ptr<pmu::PebsCounter> pebs;
        std::unique_ptr<pmu::PtEncoder> pt;
        std::vector<trace::PebsRecord> ds; ///< DS save area contents
        double handler_budget = 0;         ///< throttle token bucket
        uint64_t last_throttle_tsc = 0;
        uint64_t last_pt_bytes = 0;
        double frac_cost = 0;              ///< sub-cycle cost accumulator
    };

    /** DS area filled: run the driver's interrupt path. */
    uint64_t handleInterrupt(CoreState &core, uint64_t tsc);

    /** Try to commit @p bytes to storage; false means backpressure. */
    bool commitToStorage(uint64_t bytes, uint64_t tsc);

    /** Take the integer part of an accumulated fractional cost. */
    uint64_t drainFrac(CoreState &core);

    TraceConfig config_;
    Rng rng_;
    std::vector<CoreState> cores_;
    std::vector<trace::PebsRecord> committed_;
    std::vector<trace::SyncRecord> sync_;
    TracingStats stats_;

    double storage_budget_;
    uint64_t storage_last_tsc_ = 0;
    uint64_t max_tsc_ = 0;
    bool finished_ = false;
};

} // namespace prorace::driver

#endif // PRORACE_DRIVER_SESSION_HH

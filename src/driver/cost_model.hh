/**
 * @file
 * Cycle-cost model of the online tracing stack.
 *
 * Every constant here stands in for a measured cost on the paper's
 * 4.0 GHz Skylake testbed; the values are chosen from public
 * microarchitecture numbers so the *mechanisms* (per-sample microcode
 * assist, per-buffer interrupt, per-record kernel processing,
 * kernel-to-user copying, storage backpressure) reproduce the paper's
 * overhead shapes. Absolute percentages are model outputs, not inputs:
 * nothing below encodes a target overhead.
 */

#ifndef PRORACE_DRIVER_COST_MODEL_HH
#define PRORACE_DRIVER_COST_MODEL_HH

#include <cstdint>

namespace prorace::driver {

/** Nominal core frequency used to convert cycles to seconds (4.0 GHz). */
inline constexpr double kCyclesPerSecond = 4.0e9;

/** Tunable cost constants (cycles unless noted). */
struct CostModel {
    // --- PEBS hardware ---
    /** Microcode assist per captured PEBS record (both drivers). */
    uint64_t pebs_assist = 400;
    /** Serialized PEBS record size in the DS save area. */
    uint64_t record_bytes = 176;
    /** DS save area / aux-buffer segment size. */
    uint64_t ds_bytes = 64 * 1024;
    /** PMI delivery + handler entry/exit. */
    uint64_t pmi_cost = 3000;

    // --- Vanilla Linux driver (perf) ---
    /** Per-record kernel processing: metadata, perf_event header, copy
     *  into the shared ring buffer. */
    uint64_t vanilla_record_cost = 900;
    /** Per-byte cost of the perf tool draining the ring buffer and
     *  writing perf.data, charged to application cores (cache pollution
     *  and memory bandwidth on a fully loaded machine). */
    double vanilla_tool_per_byte = 0.6;

    // --- ProRace driver ---
    /** Interrupt work: swap the aux-buffer segment pointer (no
     *  per-record processing, no metadata, no kernel-to-user copy). */
    uint64_t prorace_swap_cost = 600;
    /** Per-byte cost of the user tool dumping full segments. */
    double prorace_tool_per_byte = 0.05;

    // --- Interrupt-handler throttling (kernel self-protection) ---
    /** Max fraction of CPU time the handler may consume; beyond it,
     *  records are dropped (the paper's "samples may be dropped if the
     *  kernel finds that too much time has been spent on interrupt
     *  handling"). */
    double handler_cpu_fraction = 0.50;
    /** Cost of discarding one record under throttling. */
    uint64_t drop_cost = 40;

    // --- Storage backpressure ---
    /** Sustained trace drain rate in bytes/cycle (0.15 B/cycle at
     *  4 GHz = 600 MB/s, a fast local SSD). */
    double storage_bytes_per_cycle = 0.15;
    /** Burst capacity before storage backpressure drops records. */
    uint64_t storage_burst_bytes = 2ull << 20;
    /** Fraction of a dropped record's bytes that still consume device
     *  time (aborted/partial writes and metadata churn); this is what
     *  makes extreme sampling rates *reduce* the committed trace rate,
     *  the paper's period-10 inversion in Fig. 8. */
    double storage_drop_waste = 0.05;

    // --- PT ---
    /** Per-byte bandwidth cost of PT packets (hardware writes them off
     *  the critical path; only memory bandwidth is visible). */
    double pt_per_byte = 0.1;

    // --- Synchronization tracing ---
    /** Interposed pthread/malloc wrapper overhead per call. */
    uint64_t sync_trace_cost = 30;
    /** Serialized sync record size. */
    uint64_t sync_record_bytes = 33;

    // --- File-I/O contention ---
    /** How strongly trace writing inflates the application's own file
     *  I/O latency (fraction of device time the tracer steals). */
    double io_contention_weight = 1.0;
};

} // namespace prorace::driver

#endif // PRORACE_DRIVER_COST_MODEL_HH

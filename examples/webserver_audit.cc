/**
 * @file
 * Production-deployment walkthrough on the apache-25520 scenario:
 * the production machine traces the server at near-zero overhead and
 * writes the trace to a file; an analysis machine later loads it and
 * runs the offline pipeline (the paper's §3 datacenter model).
 *
 *   $ ./examples/webserver_audit [period]
 */

#include <cstdio>
#include <cstdlib>

#include "core/pipeline.hh"
#include "trace/trace_file.hh"
#include "workload/racybugs.hh"

using namespace prorace;

int
main(int argc, char **argv)
{
    const uint64_t period = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                     : 1000;
    workload::Workload server = workload::makeRacyBug("apache-25520");
    std::printf("subject: %s — %s\n", server.name.c_str(),
                server.description.c_str());

    // --- production machine: trace and ship ---
    core::PipelineConfig config =
        core::proRaceConfig(period, /*seed=*/2026, server.pt_filter);
    config.session.run_baseline = true; // so we can report the overhead
    core::RunArtifacts online = core::Session::run(
        *server.program, server.setup, config.session);

    const char *trace_path = "/tmp/prorace_webserver.trace";
    trace::saveTrace(online.trace, trace_path);
    std::printf("online: overhead %.2f%%, %llu samples, trace %.1f KB "
                "-> %s\n",
                100.0 * online.overhead(),
                static_cast<unsigned long long>(
                    online.stats.samples_taken),
                online.trace.totalBytes() / 1024.0, trace_path);

    // --- analysis machine: load and analyze ---
    trace::RunTrace shipped = trace::loadTrace(trace_path);
    core::OfflineAnalyzer analyzer(*server.program, config.offline);
    core::OfflineResult result = analyzer.analyze(shipped);

    std::printf("offline: decode %.3fs, reconstruct %.3fs, detect "
                "%.3fs; %llu extended-trace events\n",
                result.decode_seconds, result.reconstruct_seconds,
                result.detect_seconds,
                static_cast<unsigned long long>(
                    result.extended_trace_events));
    std::printf("\n%s", result.report.format(server.program.get()).c_str());

    const bool found =
        workload::bugDetected(server.bugs[0], result.report);
    std::printf("\napache-25520 %s in this trace (try more traces or a "
                "smaller period).\n",
                found ? "DETECTED" : "not detected");
    std::remove(trace_path);
    return 0;
}

/**
 * @file
 * A look inside the reconstruction engine: traces one workload, then
 * shows — per replay mode — how much of the memory trace each
 * mechanism recovers, including the paper's Fig. 5 distinction between
 * forward replay, backward propagation / reverse execution, and
 * PC-relative recovery.
 *
 *   $ ./examples/replay_anatomy [period]
 */

#include <cstdio>
#include <cstdlib>

#include "core/session.hh"
#include "pmu/pt_decode.hh"
#include "replay/align.hh"
#include "replay/replayer.hh"
#include "workload/apps.hh"

using namespace prorace;

int
main(int argc, char **argv)
{
    const uint64_t period = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                     : 2000;
    workload::AppProfile profile;
    profile.name = "anatomy-subject";
    profile.items = 150;
    profile.compute_iters = 60;
    profile.sweep_elems = 40;
    profile.chase_steps = 20;
    workload::Workload w = workload::makeAppWorkload(profile);

    core::SessionOptions opt;
    opt.machine.seed = 5;
    opt.run_baseline = false;
    opt.tracing.pebs_period = period;
    opt.tracing.pt.filter = w.pt_filter;
    core::RunArtifacts run =
        core::Session::run(*w.program, w.setup, opt);
    std::printf("run: %llu insns, %llu mem ops, %llu samples\n",
                static_cast<unsigned long long>(run.total_insns),
                static_cast<unsigned long long>(run.total_mem_ops),
                static_cast<unsigned long long>(
                    run.stats.samples_taken));

    auto paths = pmu::decodePt(*w.program, w.pt_filter, run.trace);
    replay::AlignStats align_stats;
    auto aligns = replay::alignTrace(*w.program, paths, run.trace,
                                     &align_stats);
    std::printf("alignment: %llu samples located on paths, %llu "
                "unlocatable (library code)\n",
                static_cast<unsigned long long>(
                    align_stats.samples_matched),
                static_cast<unsigned long long>(
                    align_stats.samples_unmatched));

    std::printf("\n%-18s %10s %10s %10s %10s %9s\n", "mode", "sampled",
                "forward", "backward", "pc-rel", "ratio");
    for (replay::ReplayMode mode :
         {replay::ReplayMode::kBasicBlock,
          replay::ReplayMode::kForwardOnly,
          replay::ReplayMode::kForwardBackward}) {
        replay::ReplayConfig cfg;
        cfg.mode = mode;
        replay::Replayer rep(*w.program, cfg);
        rep.replayAll(paths, aligns, run.trace);
        const replay::ReplayStats &s = rep.stats();
        std::printf("%-18s %10llu %10llu %10llu %10llu %8.1fx\n",
                    replay::replayModeName(mode),
                    static_cast<unsigned long long>(s.sampled),
                    static_cast<unsigned long long>(s.recovered_forward),
                    static_cast<unsigned long long>(
                        s.recovered_backward),
                    static_cast<unsigned long long>(s.recovered_pcrel),
                    s.recoveryRatio());
    }
    std::printf("\nPC-relative accesses need only the PT path; forward "
                "replay propagates sampled register files; backward "
                "replay adds what the *next* sample's registers restore "
                "(paper §5).\n");
    return 0;
}

/**
 * @file
 * Quickstart: write a small multithreaded program with the assembler,
 * run it under ProRace tracing, analyze the trace offline, and print
 * the race report.
 *
 *   $ ./examples/quickstart
 */

#include <cstdio>

#include "asmkit/builder.hh"
#include "core/pipeline.hh"

using namespace prorace;

int
main()
{
    // --- 1. Write the program: two workers bump a shared counter.
    //        The "hits" counter is unprotected (the bug); the "safe"
    //        counter takes the lock.
    asmkit::ProgramBuilder b;
    b.globalU64("hits", 0);
    b.globalU64("safe", 0);
    b.global("mtx", 8);

    b.label("main");
    b.movri(isa::Reg::r12, 0);
    b.spawn(isa::Reg::r8, "worker", isa::Reg::r12);
    b.spawn(isa::Reg::r9, "worker", isa::Reg::r12);
    b.join(isa::Reg::r8);
    b.join(isa::Reg::r9);
    b.halt();

    b.beginFunction("worker");
    b.movri(isa::Reg::rcx, 0);
    b.label("loop");
    // hits++ without the lock: a data race.
    b.load(isa::Reg::rax, b.symRef("hits"));
    b.addri(isa::Reg::rax, 1);
    b.store(b.symRef("hits"), isa::Reg::rax);
    // safe++ under the lock: fine.
    b.lock(b.symRef("mtx"));
    b.load(isa::Reg::rbx, b.symRef("safe"));
    b.addri(isa::Reg::rbx, 1);
    b.store(b.symRef("safe"), isa::Reg::rbx);
    b.unlock(b.symRef("mtx"));
    b.addri(isa::Reg::rcx, 1);
    b.cmpri(isa::Reg::rcx, 500);
    b.jcc(isa::CondCode::kLt, "loop");
    b.halt();
    asmkit::Program program = b.build();

    // --- 2. Online phase: run under the ProRace tracing stack
    //        (PEBS sampling at period 100, PT, sync tracing).
    // --- 3. Offline phase: decode, reconstruct, detect.
    core::PipelineConfig config = core::proRaceConfig(/*period=*/100,
                                                      /*seed=*/7);
    core::PipelineResult result = core::runPipeline(
        program, [](vm::Machine &m) { m.addThread("main"); }, config);

    // --- 4. Inspect the results.
    std::printf("traced %llu instructions, %llu PEBS samples, trace "
                "%.1f KB\n",
                static_cast<unsigned long long>(
                    result.online.total_insns),
                static_cast<unsigned long long>(
                    result.online.stats.samples_taken),
                result.online.trace.totalBytes() / 1024.0);
    std::printf("reconstruction recovered %.0fx the sampled accesses\n",
                result.offline.replay_stats.recoveryRatio());
    std::printf("\n%s", result.offline.report.format(&program).c_str());
    return result.offline.report.empty() ? 1 : 0;
}

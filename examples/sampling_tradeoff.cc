/**
 * @file
 * The paper's central trade-off on one subject: sweep the PEBS
 * sampling period and show runtime overhead against detection
 * probability (the sensitivity analysis a ProRace user runs to pick a
 * period for their overhead budget, §7.2).
 *
 *   $ ./examples/sampling_tradeoff [bug-id] [trials]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/pipeline.hh"
#include "workload/racybugs.hh"

using namespace prorace;

int
main(int argc, char **argv)
{
    const std::string id = argc > 1 ? argv[1] : "cherokee-0.9.2";
    const int trials = argc > 2 ? std::atoi(argv[2]) : 10;
    workload::Workload subject = workload::makeRacyBug(id);
    std::printf("subject: %s — %s\n%8s %12s %14s %12s\n", id.c_str(),
                subject.description.c_str(), "period", "overhead",
                "detection", "trace KB");

    for (uint64_t period : {100ull, 1000ull, 10000ull, 100000ull}) {
        double overhead_sum = 0, bytes = 0;
        int detected = 0;
        for (int t = 0; t < trials; ++t) {
            core::PipelineConfig config = core::proRaceConfig(
                period, 40 + 17 * t, subject.pt_filter);
            config.session.run_baseline = true;
            core::PipelineResult r = core::runPipeline(
                *subject.program, subject.setup, config);
            overhead_sum += r.online.overhead();
            bytes += static_cast<double>(r.online.trace.totalBytes());
            detected += workload::bugDetected(subject.bugs[0],
                                              r.offline.report);
        }
        std::printf("%8llu %11.2f%% %10d/%-3d %12.0f\n",
                    static_cast<unsigned long long>(period),
                    100.0 * overhead_sum / trials, detected, trials,
                    bytes / trials / 1024.0);
        std::fflush(stdout);
    }
    std::printf("\nPick the smallest period whose overhead fits your "
                "budget; detection probability is what it buys.\n");
    return 0;
}

/**
 * @file
 * Command-line front end for the two-phase deployment:
 *
 *   prorace_cli list
 *       List every built-in workload (PARSEC / real-app / racy-bug).
 *   prorace_cli trace <workload> <trace-file> [--period N] [--seed N]
 *               [--driver prorace|vanilla] [--scale X]
 *       Online phase: run the workload under tracing and write the
 *       trace file (what the production machine does).
 *   prorace_cli analyze <workload> <trace-file> [--racez] [--scale X]
 *       Offline phase: load the trace and run the analysis pipeline
 *       (what the analysis machine does). --racez limits
 *       reconstruction to basic blocks, as the RaceZ baseline does.
 *   prorace_cli run <workload> [--period N] [--seed N] [--scale X]
 *       Both phases in one process.
 *   prorace_cli oracle [--count K] [--period N] [--seed N] [--jobs N]
 *       Generate K seeded planted-race workloads, run the full
 *       pipeline on each, and score the reports against the
 *       generator's exact ground truth (recall / precision / false
 *       positives). The quantitative health check for the whole
 *       reconstruction + detection stack.
 *   prorace_cli static-report <workload> [--scale X]
 *       Static binary analysis only: build the CFG, dataflow and
 *       escape passes over the workload binary and dump the results
 *       as JSONL on stdout (one summary record, one site-class
 *       record) with a human-readable digest on stderr.
 *   prorace_cli serve [--producers N] [--sessions N] [--workers N]
 *               [--slots N] [--credit BYTES] [--shed] [--chunk BYTES]
 *               [--subjects a,b,c] [--scale X] [--period N] [--seed N]
 *               [--stats]
 *       Fleet-service mode (also spelled --serve): run the streaming
 *       multi-tenant analysis service against a simulated fleet of
 *       producers and dump the deduplicated cross-tenant race store
 *       as JSONL on stdout, with throughput and per-tenant counters
 *       on stderr.
 *   prorace_cli submit <workload> <trace-file> [--tenant NAME]
 *               [--chunk BYTES] [--scale X] [--state-dir DIR]
 *       Producer side of the service (also spelled --submit): stream
 *       an existing trace file into an in-process service session in
 *       chunks and print the analysis outcome — what a production
 *       machine's uploader does against a real service endpoint.
 *       With --state-dir, resubmitting the identical trace warm-starts
 *       from the saved detector checkpoint.
 *   prorace_cli store <state-dir> [--verify]
 *       Replay the report journal in <state-dir> offline and dump the
 *       rebuilt store as JSONL — the crash-recovery inspection tool.
 *       --verify exits nonzero when a CRC-valid record fails to apply.
 *
 * The <workload> program must be identical between trace and analyze
 * (same name and --scale), exactly as the offline phase needs the
 * production binary.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <filesystem>
#include <fstream>

#include "analysis/analysis.hh"
#include "baseline/racez.hh"
#include "core/parallel_offline.hh"
#include "core/pipeline.hh"
#include "detect/fasttrack.hh"
#include "oracle/generator.hh"
#include "oracle/scorer.hh"
#include "replay/program_map.hh"
#include "service/fleet.hh"
#include "service/service.hh"
#include "support/journal.hh"
#include "trace/trace_file.hh"
#include "workload/registry.hh"

using namespace prorace;

namespace {

struct Args {
    std::string command;
    std::string workload;
    std::string trace_file;
    uint64_t period = 10000;
    uint64_t seed = 1;
    double scale = 1.0;
    unsigned jobs = 0; ///< offline analysis threads (0 = serial)
    size_t count = 5;  ///< generated workloads for the oracle command
    bool racez = false;
    bool sync_battery = false; ///< oracle: rich-sync-vocabulary configs
    bool vanilla = false;
    bool stats = false;        ///< dump shadow-structure counters
    bool no_prefilter = false; ///< disable the static access prefilter
    bool no_pointsto = false;  ///< disable the Andersen points-to layer
    bool no_run_summary = false; ///< dispatch folded runs one by one

    // Fleet-service knobs (serve / submit commands).
    unsigned producers = 4;
    unsigned sessions = 2;     ///< sessions per producer
    unsigned workers = 2;      ///< analysis pool threads
    unsigned slots = 2;        ///< resident sessions per tenant
    uint64_t credit = 1u << 20;///< ingest credit bytes per tenant
    size_t chunk = 4096;       ///< submission chunk size
    bool shed = false;         ///< shed instead of stalling producers
    std::string subjects;      ///< comma-separated workload names
    std::string tenant = "cli";
    std::string state_dir;     ///< durable-state dir (serve / submit)
    unsigned poison = 0;       ///< poison producers (serve)
    double deadline = 0;       ///< per-session analysis deadline (s)
    bool verify = false;       ///< store command: verify the journal
};

/**
 * `--stats` dump: the paged-ProgramMap and FastTrack shadow counters
 * behind one offline analysis, for eyeballing structure behavior on
 * real workloads without a profiler.
 */
void
printShadowStats(const core::OfflineResult &result)
{
    const replay::ProgramMapStats &pm = result.replay_stats.program_map;
    const double hit_rate = pm.page_lookups
        ? 100.0 * static_cast<double>(pm.cache_hits) /
            static_cast<double>(pm.page_lookups)
        : 0.0;
    const double pm_probe = pm.page_lookups
        ? static_cast<double>(pm.probe_steps) /
            static_cast<double>(pm.page_lookups)
        : 0.0;
    std::printf("program map: %llu pages, %llu lookups "
                "(%.1f%% last-page cache hits, %.2f probes/lookup), "
                "%llu bulk invalidations\n",
                static_cast<unsigned long long>(pm.pages_allocated),
                static_cast<unsigned long long>(pm.page_lookups),
                hit_rate, pm_probe,
                static_cast<unsigned long long>(pm.mem_invalidations));

    const core::PrefilterStats &pf = result.prefilter;
    if (pf.enabled) {
        const double frac = pf.events_seen
            ? 100.0 * static_cast<double>(pf.pruned()) /
                static_cast<double>(pf.events_seen)
            : 0.0;
        std::printf("prefilter: %llu/%llu sites thread-local, "
                    "%llu/%llu events pruned (%.1f%%: %llu implicit "
                    "stack, %llu direct stack)\n",
                    static_cast<unsigned long long>(
                        pf.sites_thread_local),
                    static_cast<unsigned long long>(pf.sites_total),
                    static_cast<unsigned long long>(pf.pruned()),
                    static_cast<unsigned long long>(pf.events_seen),
                    frac,
                    static_cast<unsigned long long>(
                        pf.pruned_stack_implicit),
                    static_cast<unsigned long long>(
                        pf.pruned_stack_direct));
        if (pf.pointsto_objects) {
            std::printf("points-to: %llu objects, %llu constraints, "
                        "%llu solver iterations; %llu heap-local sites"
                        "\n",
                        static_cast<unsigned long long>(
                            pf.pointsto_objects),
                        static_cast<unsigned long long>(
                            pf.pointsto_constraints),
                        static_cast<unsigned long long>(
                            pf.pointsto_iterations),
                        static_cast<unsigned long long>(
                            pf.sites_heap_local));
            std::printf("heap pruning: %llu events in %llu private "
                        "[malloc,free) intervals (%llu intervals "
                        "defeated by a cross-thread access)\n",
                        static_cast<unsigned long long>(pf.pruned_heap),
                        static_cast<unsigned long long>(
                            pf.heap_intervals),
                        static_cast<unsigned long long>(
                            pf.heap_defeated));
        } else {
            std::printf("points-to: off\n");
        }
        if (result.replay_stats.recovered_constant) {
            std::printf("constant recovery: %llu loads from immutable "
                        "globals recovered in replay\n",
                        static_cast<unsigned long long>(
                            result.replay_stats.recovered_constant));
        }
    } else {
        std::printf("prefilter: off (%s), %llu events seen\n",
                    pf.analysis_sound ? "disabled by flag"
                                      : "analysis not sound",
                    static_cast<unsigned long long>(pf.events_seen));
    }

    const detect::FastTrackStats &ft = result.detect_stats;
    const double ft_probe = ft.shadow_lookups
        ? static_cast<double>(ft.shadow_probe_steps) /
            static_cast<double>(ft.shadow_lookups)
        : 0.0;
    std::printf("fasttrack: %llu/%llu shadow slots, %llu lookups "
                "(%.2f probes/lookup), %llu epoch fast path, "
                "%llu read shares, %llu clock spills\n",
                static_cast<unsigned long long>(ft.shadow_slots),
                static_cast<unsigned long long>(ft.shadow_capacity),
                static_cast<unsigned long long>(ft.shadow_lookups),
                ft_probe,
                static_cast<unsigned long long>(ft.epoch_fast_path),
                static_cast<unsigned long long>(ft.read_shares),
                static_cast<unsigned long long>(ft.vc_spills));
    std::printf("run summary: %llu blocks folded, %llu iterations "
                "folded\n",
                static_cast<unsigned long long>(ft.run_blocks_folded),
                static_cast<unsigned long long>(
                    ft.run_iterations_folded));

    const trace::CompressionStats &cm = result.compression;
    if (cm.pebs_raw_bytes || cm.sync_raw_bytes) {
        std::printf("compression: pebs %llu -> %llu bytes (%.2fx), "
                    "sync %llu -> %llu bytes, %llu run blocks "
                    "(%llu iterations elided)\n",
                    static_cast<unsigned long long>(cm.pebs_raw_bytes),
                    static_cast<unsigned long long>(
                        cm.pebs_encoded_bytes),
                    cm.pebsRatio(),
                    static_cast<unsigned long long>(cm.sync_raw_bytes),
                    static_cast<unsigned long long>(
                        cm.sync_encoded_bytes),
                    static_cast<unsigned long long>(cm.run_blocks),
                    static_cast<unsigned long long>(
                        cm.run_iterations_folded));
    }
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: prorace_cli list\n"
                 "       prorace_cli trace <workload> <file> [--period N]"
                 " [--seed N] [--driver prorace|vanilla] [--scale X]\n"
                 "       prorace_cli analyze <workload> <file> [--racez]"
                 " [--scale X] [--jobs N] [--stats] [--no-prefilter]"
                 " [--no-pointsto] [--no-run-summary]\n"
                 "       prorace_cli run <workload> [--period N]"
                 " [--seed N] [--scale X] [--jobs N] [--stats]"
                 " [--no-prefilter] [--no-pointsto] [--no-run-summary]\n"
                 "       prorace_cli oracle [--count K] [--period N]"
                 " [--seed N] [--jobs N] [--sync] [--no-run-summary]\n"
                 "       prorace_cli static-report <workload>"
                 " [--scale X] [--no-pointsto]\n"
                 "       prorace_cli serve [--producers N] [--sessions "
                 "N] [--workers N] [--slots N] [--credit BYTES] "
                 "[--shed] [--chunk BYTES] [--subjects a,b,c]"
                 " [--scale X] [--period N] [--seed N] [--stats]"
                 " [--no-run-summary] [--state-dir DIR] [--poison N]"
                 " [--deadline SECS]\n"
                 "       prorace_cli submit <workload> <trace-file>"
                 " [--tenant NAME] [--chunk BYTES] [--scale X]"
                 " [--state-dir DIR]\n"
                 "       prorace_cli store <state-dir> [--verify]\n"
                 "\n"
                 "--state-dir DIR makes the service durable: the report "
                 "store rides a write-ahead journal in DIR and detector "
                 "checkpoints enable warm starts; `store` replays that "
                 "journal offline (--verify checks every record)\n"
                 "--poison N adds N garbage-streaming tenants to the "
                 "fleet (chaos soak; their failures are expected and "
                 "exempt from the health gate)\n"
                 "--sync draws the oracle battery from the rich-sync-"
                 "vocabulary families (rwlock upgrade, semaphore "
                 "misuse, spinlock publication, relaxed atomics) "
                 "instead of the lock/atomic standard battery\n"
                 "--jobs N runs the offline analysis on N worker threads"
                 " (0 = serial; results are identical either way)\n"
                 "--stats dumps the shadow-structure counters (program-"
                 "map pages and probes, FastTrack table and clocks)\n"
                 "and the static-prefilter event counters\n"
                 "--no-prefilter keeps definitely-thread-local accesses "
                 "in the detector feed (the race report is identical; "
                 "detection just costs more)\n"
                 "--no-pointsto disables the Andersen points-to layer "
                 "(heap-locality pruning, indirect-branch sharpening, "
                 "replay constant recovery; the race report is identical "
                 "either way)\n"
                 "--no-run-summary dispatches every iteration of a "
                 "compressed run block through the detector instead of "
                 "folding proven-absorbed repeats (the race report is "
                 "identical; detection just costs more)\n");
    return 2;
}

bool
parseFlags(int argc, char **argv, int first, Args &args)
{
    for (int i = first; i < argc; ++i) {
        const std::string flag = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (flag == "--period") {
            const char *v = next();
            if (!v)
                return false;
            args.period = std::strtoull(v, nullptr, 10);
        } else if (flag == "--seed") {
            const char *v = next();
            if (!v)
                return false;
            args.seed = std::strtoull(v, nullptr, 10);
        } else if (flag == "--scale") {
            const char *v = next();
            if (!v)
                return false;
            args.scale = std::atof(v);
        } else if (flag == "--jobs") {
            const char *v = next();
            if (!v)
                return false;
            args.jobs = static_cast<unsigned>(std::strtoul(v, nullptr,
                                                           10));
        } else if (flag == "--count") {
            const char *v = next();
            if (!v)
                return false;
            args.count = std::strtoul(v, nullptr, 10);
        } else if (flag == "--racez") {
            args.racez = true;
        } else if (flag == "--sync") {
            args.sync_battery = true;
        } else if (flag == "--stats") {
            args.stats = true;
        } else if (flag == "--no-prefilter") {
            args.no_prefilter = true;
        } else if (flag == "--no-pointsto") {
            args.no_pointsto = true;
        } else if (flag == "--no-run-summary") {
            args.no_run_summary = true;
        } else if (flag == "--driver") {
            const char *v = next();
            if (!v)
                return false;
            args.vanilla = std::strcmp(v, "vanilla") == 0;
        } else if (flag == "--producers") {
            const char *v = next();
            if (!v)
                return false;
            args.producers =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (flag == "--sessions") {
            const char *v = next();
            if (!v)
                return false;
            args.sessions =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (flag == "--workers") {
            const char *v = next();
            if (!v)
                return false;
            args.workers =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (flag == "--slots") {
            const char *v = next();
            if (!v)
                return false;
            args.slots =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (flag == "--credit") {
            const char *v = next();
            if (!v)
                return false;
            args.credit = std::strtoull(v, nullptr, 10);
        } else if (flag == "--chunk") {
            const char *v = next();
            if (!v)
                return false;
            args.chunk = std::strtoul(v, nullptr, 10);
        } else if (flag == "--shed") {
            args.shed = true;
        } else if (flag == "--subjects") {
            const char *v = next();
            if (!v)
                return false;
            args.subjects = v;
        } else if (flag == "--tenant") {
            const char *v = next();
            if (!v)
                return false;
            args.tenant = v;
        } else if (flag == "--state-dir") {
            const char *v = next();
            if (!v)
                return false;
            args.state_dir = v;
        } else if (flag == "--poison") {
            const char *v = next();
            if (!v)
                return false;
            args.poison =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (flag == "--deadline") {
            const char *v = next();
            if (!v)
                return false;
            args.deadline = std::atof(v);
        } else if (flag == "--verify") {
            args.verify = true;
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
            return false;
        }
    }
    return true;
}

int
cmdList()
{
    for (const std::string &name : workload::allWorkloadNames()) {
        auto w = workload::findWorkload(name, 0.01);
        std::printf("%-16s %s\n", name.c_str(),
                    w ? w->description.c_str() : "");
    }
    return 0;
}

int
cmdTrace(const Args &args)
{
    auto w = workload::findWorkload(args.workload, args.scale);
    if (!w) {
        std::fprintf(stderr, "unknown workload: %s\n",
                     args.workload.c_str());
        return 1;
    }
    core::PipelineConfig cfg =
        core::proRaceConfig(args.period, args.seed, w->pt_filter);
    if (args.vanilla)
        cfg.session.tracing.driver = driver::DriverKind::kVanilla;
    cfg.session.run_baseline = true;
    core::RunArtifacts run =
        core::Session::run(*w->program, w->setup, cfg.session);
    trace::saveTrace(run.trace, args.trace_file);
    std::printf("traced %s: %llu insns, overhead %.2f%%, %llu samples "
                "(%llu dropped), %.1f KB -> %s\n",
                args.workload.c_str(),
                static_cast<unsigned long long>(run.total_insns),
                100.0 * run.overhead(),
                static_cast<unsigned long long>(run.stats.samples_taken),
                static_cast<unsigned long long>(
                    run.stats.samplesDropped()),
                run.trace.totalBytes() / 1024.0,
                args.trace_file.c_str());
    return 0;
}

int
cmdAnalyze(const Args &args)
{
    auto w = workload::findWorkload(args.workload, args.scale);
    if (!w) {
        std::fprintf(stderr, "unknown workload: %s\n",
                     args.workload.c_str());
        return 1;
    }
    core::OfflineOptions opt;
    opt.pt_filter = w->pt_filter;
    opt.num_threads = args.jobs;
    opt.static_prefilter = !args.no_prefilter;
    opt.pointsto = !args.no_pointsto;
    opt.run_summary = !args.no_run_summary;
    if (args.racez)
        opt.replay.mode = replay::ReplayMode::kBasicBlock;
    core::ParallelOfflineAnalyzer analyzer(*w->program, opt);
    auto analyzed = analyzer.analyzeFile(args.trace_file);
    if (!analyzed.ok()) {
        std::fprintf(stderr, "cannot analyze trace: %s\n",
                     analyzed.error().format().c_str());
        return 1;
    }
    core::OfflineResult result = std::move(analyzed.value());
    if (result.ingest_loss.hasLoss()) {
        std::printf("trace damaged; analyzing what survives (%s)\n",
                    result.ingest_loss.summary().c_str());
    }
    if (result.quarantine.windows_quarantined) {
        std::printf("quarantined %llu replay windows (%llu retried)\n",
                    static_cast<unsigned long long>(
                        result.quarantine.windows_quarantined),
                    static_cast<unsigned long long>(
                        result.quarantine.window_retries));
    }

    std::printf("decode %.3fs  reconstruct %.3fs  detect %.3fs  "
                "(%llu events, recovery %.1fx, %d regeneration "
                "rounds)\n",
                result.decode_seconds, result.reconstruct_seconds,
                result.detect_seconds,
                static_cast<unsigned long long>(
                    result.extended_trace_events),
                result.replay_stats.recoveryRatio(),
                result.regeneration_rounds);
    if (args.jobs > 0) {
        const exec::ExecutorStats &es = analyzer.executorStats();
        std::printf("executor: %llu tasks (%llu stolen), max queue %llu, "
                    "mean task %.1fus\n",
                    static_cast<unsigned long long>(es.executed),
                    static_cast<unsigned long long>(es.stolen),
                    static_cast<unsigned long long>(es.max_queue_depth),
                    es.task_seconds.mean() * 1e6);
    }
    if (args.stats)
        printShadowStats(result);
    std::printf("%s", result.report.format(w->program.get()).c_str());
    for (const workload::RacyBug &bug : w->bugs) {
        std::printf("ground truth %s: %s\n", bug.id.c_str(),
                    workload::bugDetected(bug, result.report)
                        ? "DETECTED"
                        : "not detected in this trace");
    }
    return result.report.empty() ? 1 : 0;
}

int
cmdRun(const Args &args)
{
    auto w = workload::findWorkload(args.workload, args.scale);
    if (!w) {
        std::fprintf(stderr, "unknown workload: %s\n",
                     args.workload.c_str());
        return 1;
    }
    core::PipelineConfig cfg = args.racez
        ? baseline::raceZConfig(args.period, args.seed)
        : core::proRaceConfig(args.period, args.seed, w->pt_filter);
    cfg.offline.num_threads = args.jobs;
    cfg.offline.static_prefilter = !args.no_prefilter;
    cfg.offline.pointsto = !args.no_pointsto;
    cfg.offline.run_summary = !args.no_run_summary;
    core::PipelineResult result =
        core::runPipeline(*w->program, w->setup, cfg);
    if (args.stats)
        printShadowStats(result.offline);
    std::printf("%s", result.offline.report.format(w->program.get())
                          .c_str());
    for (const workload::RacyBug &bug : w->bugs) {
        std::printf("ground truth %s: %s\n", bug.id.c_str(),
                    workload::bugDetected(bug, result.offline.report)
                        ? "DETECTED"
                        : "not detected in this trace");
    }
    return 0;
}

int
cmdOracle(const Args &args)
{
    const auto battery = args.sync_battery
        ? oracle::syncBattery(args.seed, args.count)
        : oracle::standardBattery(args.seed, args.count);
    oracle::ScoreAccumulator acc;
    std::printf("%-18s %-34s %7s %7s %6s %4s\n", "workload",
                "sites", "recall", "precis", "pairs", "fp");
    for (const oracle::GeneratorConfig &cfg : battery) {
        const oracle::GeneratedWorkload gw = oracle::generate(cfg);
        core::PipelineConfig pc = core::proRaceConfig(
            args.period, args.seed + 7, gw.workload.pt_filter);
        pc.offline.num_threads = args.jobs;
        pc.offline.run_summary = !args.no_run_summary;
        core::PipelineResult result = core::runPipeline(
            *gw.workload.program, gw.workload.setup, pc);
        const oracle::OracleScore score =
            oracle::scoreReport(gw.truth, result.offline.report);
        acc.add(score);
        std::printf("%-18s %-34s %7.3f %7.3f %6zu %4zu\n",
                    gw.workload.name.c_str(),
                    gw.workload.description.c_str(), score.recall(),
                    score.precision(), score.truth_pairs,
                    score.false_positives);
        for (const auto &pair : score.missed)
            std::printf("  missed (%u, %u)\n", pair.first, pair.second);
        for (const auto &pair : score.spurious)
            std::printf("  spurious (%u, %u)\n", pair.first,
                        pair.second);
    }
    std::printf("\nperiod %llu over %zu workloads: recall %.3f, "
                "precision %.3f, %zu false positives\n",
                static_cast<unsigned long long>(args.period),
                battery.size(), acc.recall(), acc.precision(),
                acc.false_positives);
    return 0;
}

int
cmdStaticReport(const Args &args)
{
    auto w = workload::findWorkload(args.workload, args.scale);
    if (!w) {
        std::fprintf(stderr, "unknown workload: %s\n",
                     args.workload.c_str());
        return 1;
    }
    const analysis::ProgramAnalysis pa(*w->program, !args.no_pointsto);
    const analysis::StaticSummary s = pa.summary();

    // JSONL on stdout: one summary record, one site-class record.
    std::printf(
        "{\"type\":\"summary\",\"workload\":\"%s\",\"insns\":%llu,"
        "\"blocks\":%llu,\"edges\":%llu,\"reachable_blocks\":%llu,"
        "\"address_taken\":%llu,\"mem_sites\":%llu,"
        "\"thread_local_sites\":%llu,\"thread_local_fraction\":%.4f,"
        "\"invertible_insns\":%llu,\"learn_insns\":%llu,"
        "\"rsp_integrity\":%s,\"no_stack_escape\":%s,\"sound\":%s}\n",
        args.workload.c_str(),
        static_cast<unsigned long long>(s.insns),
        static_cast<unsigned long long>(s.blocks),
        static_cast<unsigned long long>(s.edges),
        static_cast<unsigned long long>(s.reachable_blocks),
        static_cast<unsigned long long>(s.address_taken),
        static_cast<unsigned long long>(s.mem_sites),
        static_cast<unsigned long long>(s.thread_local_sites),
        s.threadLocalFraction(),
        static_cast<unsigned long long>(s.invertible_insns),
        static_cast<unsigned long long>(s.learn_insns),
        s.rsp_integrity ? "true" : "false",
        s.no_stack_escape ? "true" : "false",
        s.rsp_integrity && s.no_stack_escape ? "true" : "false");

    // Merged classification: escape's, upgraded to kHeapLocal where
    // the points-to layer confined a site to private heap objects.
    uint64_t by_class[5] = {0, 0, 0, 0, 0};
    for (uint32_t i = 0; i < s.insns; ++i)
        ++by_class[static_cast<unsigned>(pa.siteClass(i))];
    std::printf(
        "{\"type\":\"sites\",\"workload\":\"%s\",\"no_access\":%llu,"
        "\"stack_implicit\":%llu,\"stack_direct\":%llu,"
        "\"may_shared\":%llu,\"heap_local\":%llu}\n",
        args.workload.c_str(),
        static_cast<unsigned long long>(by_class[static_cast<unsigned>(
            analysis::SiteClass::kNoAccess)]),
        static_cast<unsigned long long>(by_class[static_cast<unsigned>(
            analysis::SiteClass::kStackImplicit)]),
        static_cast<unsigned long long>(by_class[static_cast<unsigned>(
            analysis::SiteClass::kStackDirect)]),
        static_cast<unsigned long long>(by_class[static_cast<unsigned>(
            analysis::SiteClass::kMayShared)]),
        static_cast<unsigned long long>(by_class[static_cast<unsigned>(
            analysis::SiteClass::kHeapLocal)]));

    if (s.pointsto_enabled) {
        const analysis::PointsToStats &pt = s.pointsto;
        std::printf(
            "{\"type\":\"pointsto\",\"workload\":\"%s\",\"objects\":%llu,"
            "\"alloc_sites\":%llu,\"constraints\":%llu,"
            "\"iterations\":%llu,\"cycles_collapsed\":%llu,"
            "\"thread_local_allocs\":%llu,\"heap_local_sites\":%llu,"
            "\"immutable_globals\":%llu,\"indirect_sites\":%llu,"
            "\"resolved_indirect_sites\":%llu,\"fanout_blunt\":%llu,"
            "\"fanout_sharp\":%llu,\"sharp_edges\":%llu,"
            "\"sharp_reachable\":%llu,\"no_heap_forgery\":%s,"
            "\"top_store\":%s,\"heap_sound\":%s}\n",
            args.workload.c_str(),
            static_cast<unsigned long long>(pt.objects),
            static_cast<unsigned long long>(pt.alloc_sites),
            static_cast<unsigned long long>(pt.constraints),
            static_cast<unsigned long long>(pt.iterations),
            static_cast<unsigned long long>(pt.cycles_collapsed),
            static_cast<unsigned long long>(pt.thread_local_allocs),
            static_cast<unsigned long long>(pt.heap_local_sites),
            static_cast<unsigned long long>(pt.immutable_globals),
            static_cast<unsigned long long>(pt.indirect_sites),
            static_cast<unsigned long long>(pt.resolved_indirect_sites),
            static_cast<unsigned long long>(pt.fanout_blunt),
            static_cast<unsigned long long>(pt.fanout_sharp),
            static_cast<unsigned long long>(s.sharp_edges),
            static_cast<unsigned long long>(s.sharp_reachable),
            pt.no_heap_forgery ? "true" : "false",
            pt.top_store ? "true" : "false",
            pt.heap_sound ? "true" : "false");
    }

    // Human digest on stderr so stdout stays machine-parseable.
    std::fprintf(stderr,
                 "%s: %llu insns in %llu blocks (%llu reachable), "
                 "%llu edges, %llu address-taken\n"
                 "  %llu memory sites, %llu thread-local (%.1f%%), "
                 "%llu invertible insns, %llu learn insns\n"
                 "  rsp integrity %s, no stack escape %s\n",
                 args.workload.c_str(),
                 static_cast<unsigned long long>(s.insns),
                 static_cast<unsigned long long>(s.blocks),
                 static_cast<unsigned long long>(s.reachable_blocks),
                 static_cast<unsigned long long>(s.edges),
                 static_cast<unsigned long long>(s.address_taken),
                 static_cast<unsigned long long>(s.mem_sites),
                 static_cast<unsigned long long>(s.thread_local_sites),
                 100.0 * s.threadLocalFraction(),
                 static_cast<unsigned long long>(s.invertible_insns),
                 static_cast<unsigned long long>(s.learn_insns),
                 s.rsp_integrity ? "held" : "VIOLATED",
                 s.no_stack_escape ? "held" : "VIOLATED");
    if (s.pointsto_enabled) {
        const analysis::PointsToStats &pt = s.pointsto;
        std::fprintf(stderr,
                     "  points-to: %llu objects, %llu constraints; "
                     "%llu/%llu allocs thread-local, %llu heap-local "
                     "sites, %llu immutable globals, %llu/%llu indirect "
                     "sites resolved (fan-out %llu -> %llu), heap "
                     "soundness %s, top store %s\n",
                     static_cast<unsigned long long>(pt.objects),
                     static_cast<unsigned long long>(pt.constraints),
                     static_cast<unsigned long long>(
                         pt.thread_local_allocs),
                     static_cast<unsigned long long>(pt.alloc_sites),
                     static_cast<unsigned long long>(pt.heap_local_sites),
                     static_cast<unsigned long long>(
                         pt.immutable_globals),
                     static_cast<unsigned long long>(
                         pt.resolved_indirect_sites),
                     static_cast<unsigned long long>(pt.indirect_sites),
                     static_cast<unsigned long long>(pt.fanout_blunt),
                     static_cast<unsigned long long>(pt.fanout_sharp),
                     pt.heap_sound ? "held" : "degraded",
                     pt.top_store ? "seen" : "none");
    }
    return 0;
}

/** One tenant's row in the serve/stats dump. */
void
printTenantRow(const std::string &name,
               const service::TenantServiceStats &ts)
{
    std::fprintf(stderr,
                 "  %-12s %3llu opened, %3llu completed, %llu failed, "
                 "%llu events, %llu gc sweeps (%llu granules, "
                 "%llu clocks reclaimed), latency %.1fms mean / "
                 "%.1fms max\n",
                 name.c_str(),
                 static_cast<unsigned long long>(ts.sessions_opened),
                 static_cast<unsigned long long>(ts.sessions_completed),
                 static_cast<unsigned long long>(ts.sessions_failed),
                 static_cast<unsigned long long>(ts.incremental.events),
                 static_cast<unsigned long long>(
                     ts.incremental.gc_sweeps),
                 static_cast<unsigned long long>(
                     ts.incremental.granules_reclaimed),
                 static_cast<unsigned long long>(
                     ts.incremental.clocks_reclaimed),
                 ts.latency_seconds.mean() * 1e3,
                 ts.latency_seconds.max() * 1e3);
    if (ts.prefilter.enabled) {
        std::fprintf(stderr,
                     "  %-12s prefilter: %llu/%llu events pruned "
                     "(%llu implicit stack, %llu direct stack, %llu "
                     "heap-local in %llu intervals), points-to "
                     "%llu objects / %llu constraints\n",
                     "",
                     static_cast<unsigned long long>(
                         ts.prefilter.pruned()),
                     static_cast<unsigned long long>(
                         ts.prefilter.events_seen),
                     static_cast<unsigned long long>(
                         ts.prefilter.pruned_stack_implicit),
                     static_cast<unsigned long long>(
                         ts.prefilter.pruned_stack_direct),
                     static_cast<unsigned long long>(
                         ts.prefilter.pruned_heap),
                     static_cast<unsigned long long>(
                         ts.prefilter.heap_intervals),
                     static_cast<unsigned long long>(
                         ts.prefilter.pointsto_objects),
                     static_cast<unsigned long long>(
                         ts.prefilter.pointsto_constraints));
    }
    const trace::CompressionStats &cm = ts.compression;
    if (cm.pebs_raw_bytes || cm.sync_raw_bytes) {
        std::fprintf(stderr,
                     "  %-12s pebs %llu -> %llu bytes (%.2fx), sync "
                     "%llu -> %llu bytes, %llu run blocks (%llu "
                     "iterations), %llu folded by detector\n",
                     "",
                     static_cast<unsigned long long>(cm.pebs_raw_bytes),
                     static_cast<unsigned long long>(
                         cm.pebs_encoded_bytes),
                     cm.pebsRatio(),
                     static_cast<unsigned long long>(cm.sync_raw_bytes),
                     static_cast<unsigned long long>(
                         cm.sync_encoded_bytes),
                     static_cast<unsigned long long>(cm.run_blocks),
                     static_cast<unsigned long long>(
                         cm.run_iterations_folded),
                     static_cast<unsigned long long>(
                         ts.detect.run_iterations_folded));
    }
    // Salvage/loss accounting: what this tenant's streams lost to
    // damage. Only printed when there was any, so clean runs stay
    // clean.
    if (ts.segments_dropped || ts.bytes_skipped || ts.pebs_dropped ||
        ts.sync_dropped || ts.pt_streams_dropped ||
        ts.pt_streams_damaged || ts.truncated_streams) {
        std::fprintf(stderr,
                     "  %-12s loss: %llu/%llu segments dropped, %llu "
                     "bytes skipped, %llu samples, %llu sync events "
                     "lost, %llu PT streams lost, %llu damaged, %llu "
                     "truncated streams\n",
                     "",
                     static_cast<unsigned long long>(ts.segments_dropped),
                     static_cast<unsigned long long>(ts.segments_seen),
                     static_cast<unsigned long long>(ts.bytes_skipped),
                     static_cast<unsigned long long>(ts.pebs_dropped),
                     static_cast<unsigned long long>(ts.sync_dropped),
                     static_cast<unsigned long long>(
                         ts.pt_streams_dropped),
                     static_cast<unsigned long long>(
                         ts.pt_streams_damaged),
                     static_cast<unsigned long long>(
                         ts.truncated_streams));
    }
    // Supervision: retries, deadline kills, quarantine, warm starts.
    if (ts.sessions_quarantined || ts.analysis_retries ||
        ts.deadline_timeouts || ts.warm_starts ||
        ts.checkpoints_written || ts.quarantined) {
        std::fprintf(stderr,
                     "  %-12s supervision: %llu quarantined%s, %llu "
                     "retries, %llu deadline timeouts, %llu warm "
                     "starts, %llu checkpoints\n",
                     "",
                     static_cast<unsigned long long>(
                         ts.sessions_quarantined),
                     ts.quarantined ? " (TENANT QUARANTINED)" : "",
                     static_cast<unsigned long long>(ts.analysis_retries),
                     static_cast<unsigned long long>(
                         ts.deadline_timeouts),
                     static_cast<unsigned long long>(ts.warm_starts),
                     static_cast<unsigned long long>(
                         ts.checkpoints_written));
    }
}

int
cmdServe(const Args &args)
{
    service::FleetConfig cfg;
    cfg.producers = args.producers;
    cfg.sessions_per_producer = args.sessions;
    cfg.scale = args.scale;
    cfg.period = args.period;
    cfg.seed = args.seed;
    cfg.chunk_bytes = args.chunk;
    cfg.service.num_workers = args.workers;
    cfg.service.session_slots = args.slots;
    cfg.service.ingest.credit_bytes = args.credit;
    cfg.service.ingest.shed_on_full = args.shed;
    cfg.service.offline.run_summary = !args.no_run_summary;
    cfg.service.offline.pointsto = !args.no_pointsto;
    cfg.service.state_dir = args.state_dir;
    cfg.service.supervision.session_deadline_seconds = args.deadline;
    cfg.poison_producers = args.poison;
    if (!args.subjects.empty()) {
        cfg.subjects.clear();
        std::string rest = args.subjects;
        while (!rest.empty()) {
            const size_t comma = rest.find(',');
            cfg.subjects.push_back(rest.substr(0, comma));
            rest = comma == std::string::npos ? ""
                                              : rest.substr(comma + 1);
        }
    }

    const service::FleetResult result = service::runFleet(cfg);
    const service::TenantServiceStats &roll = result.stats.rollup;
    std::fprintf(stderr,
                 "fleet: %llu sessions over %u tenants in %.2fs "
                 "(%llu shed), %.1f MB streamed, %llu events "
                 "analyzed (%.0f events/s)\n",
                 static_cast<unsigned long long>(
                     result.sessions_opened),
                 cfg.producers, result.wall_seconds,
                 static_cast<unsigned long long>(
                     result.sessions_rejected),
                 static_cast<double>(result.bytes_submitted) / 1.0e6,
                 static_cast<unsigned long long>(
                     roll.incremental.events),
                 result.wall_seconds > 0
                     ? static_cast<double>(roll.incremental.events) /
                         result.wall_seconds
                     : 0.0);
    std::fprintf(stderr,
                 "ingest: peak buffered %.1f KB (credit %.1f KB/tenant),"
                 " %llu stalls, %llu chunks shed, open stalls %llu\n",
                 static_cast<double>(
                     result.stats.ingest.peak_buffered_bytes) / 1024.0,
                 static_cast<double>(cfg.service.ingest.credit_bytes) /
                     1024.0,
                 static_cast<unsigned long long>(
                     result.stats.ingest.total().stalls),
                 static_cast<unsigned long long>(
                     result.stats.ingest.total().shed_chunks),
                 static_cast<unsigned long long>(
                     result.stats.open_stalls));
    std::fprintf(stderr,
                 "store: %llu distinct races from %llu session reports; "
                 "detector peak residency %llu granules\n",
                 static_cast<unsigned long long>(
                     result.stats.distinct_races),
                 static_cast<unsigned long long>(
                     result.stats.report_observations),
                 static_cast<unsigned long long>(
                     roll.incremental.peak_live_granules));
    if (result.stats.durable) {
        std::fprintf(
            stderr,
            "durability: %llu reports recovered at boot, %llu journal "
            "records appended (%llu bytes, %llu syncs), %llu "
            "checkpoints, %llu warm starts\n",
            static_cast<unsigned long long>(
                result.stats.recovered_reports),
            static_cast<unsigned long long>(
                result.stats.journal.appended_records),
            static_cast<unsigned long long>(
                result.stats.journal.appended_bytes),
            static_cast<unsigned long long>(result.stats.journal.syncs),
            static_cast<unsigned long long>(roll.checkpoints_written),
            static_cast<unsigned long long>(roll.warm_starts));
    }
    if (result.stats.tenants_quarantined ||
        result.stats.quarantine_rejected_opens || result.poison_sessions) {
        std::fprintf(
            stderr,
            "quarantine: %llu poison sessions streamed, %llu tenants "
            "quarantined, %llu opens rejected, %llu open sessions "
            "aborted\n",
            static_cast<unsigned long long>(result.poison_sessions),
            static_cast<unsigned long long>(
                result.stats.tenants_quarantined),
            static_cast<unsigned long long>(
                result.stats.quarantine_rejected_opens),
            static_cast<unsigned long long>(
                result.stats.quarantine_aborted_sessions));
    }
    if (args.stats) {
        for (const auto &[name, ts] : result.tenants)
            printTenantRow(name, ts);
        service::TenantServiceStats check;
        for (const auto &[name, ts] : result.tenants)
            check.merge(ts);
        std::fprintf(stderr,
                     "  %-12s %3llu opened, %3llu completed "
                     "(rollup check: %s)\n",
                     "ALL",
                     static_cast<unsigned long long>(
                         roll.sessions_opened),
                     static_cast<unsigned long long>(
                         roll.sessions_completed),
                     check.sessions_completed ==
                             roll.sessions_completed
                         ? "consistent"
                         : "MISMATCH");
    }
    std::printf("%s", result.report_jsonl.c_str());

    // Health gate for CI soak runs: structural invariants only (race
    // presence depends on the subjects chosen, so it is the caller's
    // business). Under the default stall policy no session may be
    // shed; failed sessions and a rollup that disagrees with the
    // per-tenant sum are always bugs. Poison tenants are *expected* to
    // fail — their job is proving the healthy ones don't — so their
    // failures are exempt; a failure on a healthy tenant still trips
    // the gate.
    service::TenantServiceStats sum;
    uint64_t healthy_failed = 0;
    for (const auto &[name, ts] : result.tenants) {
        sum.merge(ts);
        if (name.rfind("poison-", 0) != 0)
            healthy_failed += ts.sessions_failed;
    }
    bool healthy = healthy_failed == 0 &&
                   sum.sessions_completed == roll.sessions_completed &&
                   sum.incremental.events == roll.incremental.events;
    if (!args.shed)
        healthy = healthy && result.sessions_rejected == 0;
    if (!healthy) {
        std::fprintf(stderr, "serve: health check FAILED\n");
        return 1;
    }
    return 0;
}

int
cmdSubmit(const Args &args)
{
    auto w = workload::findWorkload(args.workload, args.scale);
    if (!w) {
        std::fprintf(stderr, "unknown workload: %s\n",
                     args.workload.c_str());
        return 1;
    }
    // Pre-flight the path before any service machinery spins up, so a
    // bad invocation gets a precise diagnostic instead of a misleading
    // "not a ProRace trace file" from an empty stream.
    std::error_code ec;
    const auto status = std::filesystem::status(args.trace_file, ec);
    if (ec || !std::filesystem::exists(status)) {
        std::fprintf(stderr, "cannot read %s: no such file\n",
                     args.trace_file.c_str());
        return 1;
    }
    if (std::filesystem::is_directory(status)) {
        std::fprintf(stderr, "cannot read %s: is a directory\n",
                     args.trace_file.c_str());
        return 1;
    }
    std::ifstream in(args.trace_file, std::ios::binary);
    if (!in) {
        std::fprintf(stderr,
                     "cannot read %s: permission denied or unreadable\n",
                     args.trace_file.c_str());
        return 1;
    }
    std::vector<uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (bytes.empty()) {
        std::fprintf(stderr,
                     "cannot read %s: empty file (zero bytes) — not a "
                     "recorded trace\n",
                     args.trace_file.c_str());
        return 1;
    }

    service::ServiceOptions options;
    options.offline.pt_filter = w->pt_filter;
    options.state_dir = args.state_dir;
    service::AnalysisService svc(options);
    svc.registerProgram(args.workload, w->program);
    const uint64_t id = svc.openSession(args.tenant, args.workload);
    for (size_t off = 0; off < bytes.size(); off += args.chunk) {
        const size_t len =
            std::min(args.chunk, bytes.size() - off);
        svc.submit(id, bytes.data() + off, len);
    }
    svc.closeSession(id);
    svc.drain();

    const std::vector<service::SessionOutcome> outcomes =
        svc.outcomes();
    if (outcomes.empty()) {
        std::fprintf(stderr, "no session completed\n");
        return 1;
    }
    const service::SessionOutcome &outcome = outcomes.front();
    if (!outcome.ok) {
        std::fprintf(stderr, "cannot analyze trace: %s\n",
                     outcome.error.c_str());
        return 1;
    }
    if (outcome.loss.hasLoss()) {
        std::printf("trace damaged; analyzed what survives (%s)\n",
                    outcome.loss.summary().c_str());
    }
    if (outcome.warm_started) {
        std::printf("warm start: resumed from a saved detector "
                    "checkpoint (%llu checkpoints written)\n",
                    static_cast<unsigned long long>(
                        outcome.checkpoints_written));
    }
    std::printf("session %llu (%s): %llu events, %llu batches, "
                "%llu gc sweeps, %.1fms ingest-to-report\n",
                static_cast<unsigned long long>(outcome.session_id),
                args.tenant.c_str(),
                static_cast<unsigned long long>(
                    outcome.incremental.events),
                static_cast<unsigned long long>(
                    outcome.incremental.batches),
                static_cast<unsigned long long>(
                    outcome.incremental.gc_sweeps),
                outcome.ingest_to_report_seconds * 1e3);
    std::printf("%s", outcome.report.format(w->program.get()).c_str());
    for (const workload::RacyBug &bug : w->bugs) {
        std::printf("ground truth %s: %s\n", bug.id.c_str(),
                    workload::bugDetected(bug, outcome.report)
                        ? "DETECTED"
                        : "not detected in this trace");
    }
    return outcome.report.empty() ? 1 : 0;
}

/**
 * Offline journal inspection: rebuild the report store by replaying
 * the journal's valid prefix through the scan path (independent of the
 * service's own recovery code) and dump it as JSONL. With --verify,
 * any record in the valid prefix that fails to apply is an error —
 * that is the crash-consistency invariant CI asserts after SIGKILLing
 * a serve run at a random moment.
 */
int
cmdStore(const Args &args)
{
    const std::string path = args.state_dir + "/reports.jrnl";
    const support::JournalScan scan = support::scanJournalFile(path);

    service::ReportStore store;
    uint64_t applied = 0, malformed = 0, foreign = 0;
    for (const support::JournalRecord &record : scan.records) {
        if (record.type != service::kReportIngestRecord) {
            ++foreign;
            continue;
        }
        if (store.applyIngestRecord(record.payload))
            ++applied;
        else
            ++malformed;
    }

    std::fprintf(stderr,
                 "journal %s: %zu records in valid prefix (%llu bytes)"
                 "%s, %llu applied, %llu malformed, %llu foreign; "
                 "%zu distinct races, max sequence %llu\n",
                 path.c_str(), scan.records.size(),
                 static_cast<unsigned long long>(
                     scan.valid_prefix_bytes),
                 scan.clean ? "" : " + torn/corrupt tail",
                 static_cast<unsigned long long>(applied),
                 static_cast<unsigned long long>(malformed),
                 static_cast<unsigned long long>(foreign),
                 store.distinctRaces(),
                 static_cast<unsigned long long>(store.maxSequence()));
    std::printf("%s", store.toJsonl().c_str());

    if (args.verify && malformed > 0) {
        std::fprintf(stderr,
                     "store: VERIFY FAILED — %llu CRC-valid records "
                     "did not apply\n",
                     static_cast<unsigned long long>(malformed));
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    Args args;
    args.command = argv[1];
    // The service commands are also spelled as flags (--serve,
    // --submit), matching how deployments typically invoke daemons.
    if (args.command == "--serve")
        args.command = "serve";
    if (args.command == "--submit")
        args.command = "submit";

    if (args.command == "list")
        return cmdList();
    if (args.command == "serve") {
        if (!parseFlags(argc, argv, 2, args))
            return usage();
        return cmdServe(args);
    }
    if (args.command == "oracle") {
        if (!parseFlags(argc, argv, 2, args))
            return usage();
        return cmdOracle(args);
    }
    if (argc < 3)
        return usage();
    if (args.command == "store") {
        args.state_dir = argv[2];
        if (!parseFlags(argc, argv, 3, args))
            return usage();
        return cmdStore(args);
    }
    args.workload = argv[2];

    if (args.command == "trace" || args.command == "analyze" ||
        args.command == "submit") {
        if (argc < 4)
            return usage();
        args.trace_file = argv[3];
        if (!parseFlags(argc, argv, 4, args))
            return usage();
        if (args.command == "submit")
            return cmdSubmit(args);
        return args.command == "trace" ? cmdTrace(args)
                                       : cmdAnalyze(args);
    }
    if (args.command == "run") {
        if (!parseFlags(argc, argv, 3, args))
            return usage();
        return cmdRun(args);
    }
    if (args.command == "static-report") {
        if (!parseFlags(argc, argv, 3, args))
            return usage();
        return cmdStaticReport(args);
    }
    return usage();
}
